// Set-associative cache with true-LRU replacement and an MSHR file.
//
// Used for both the 32KB 8-way L1 per SM and the 128KB 16-way L2 slice per
// memory partition (paper Table II; 128B lines in both).  The cache is a
// tag store only — the simulator carries no data — so the interesting
// state is presence, dirtiness and recency.
//
// Write policies follow the GPU norm the paper assumes:
//   L1: write-through, no write-allocate (stores bypass to the partition);
//       loads allocate.
//   L2: write-back, write-allocate.  Coalesced stores write whole 128B
//       lines, so a store miss installs the line dirty without a fill
//       read (the read-modify-write path for partial lines is not
//       modelled; coalesced GPGPU stores are full-line in the common
//       case).
// The policy choice lives in the partition/SM code; this class only
// provides the mechanisms (probe/touch/fill/mark_dirty).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace latdiv {

struct CacheConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 128;
  std::uint32_t ways = 8;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Lookup with LRU update; counts in stats.  `addr` may be any byte in
  /// the line.
  bool touch(Addr addr);

  /// Tag check without side effects (no LRU update, no stats).
  [[nodiscard]] bool probe(Addr addr) const;

  /// Install `addr`'s line (e.g. on fill or full-line store-allocate).
  /// Returns the address of an evicted *dirty* line needing writeback,
  /// if the victim was dirty.
  std::optional<Addr> fill(Addr addr, bool dirty = false);

  /// Mark the line dirty (store hit).  The line must be present.
  void mark_dirty(Addr addr);

  /// Drop the line if present (L1 write-evict on stores).  Returns true
  /// if a line was invalidated.  L1 lines are never dirty, so no
  /// writeback results.
  bool invalidate(Addr addr);

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint32_t sets() const noexcept { return sets_; }

  /// Snapshot serialization of tags/LRU/stats (src/ckpt); geometry comes
  /// from construction.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t last_use = 0;
  };

  [[nodiscard]] std::uint32_t set_of(Addr addr) const noexcept;
  [[nodiscard]] Addr tag_of(Addr addr) const noexcept;
  [[nodiscard]] Line* find(Addr addr) noexcept;
  [[nodiscard]] const Line* find(Addr addr) const noexcept;

  CacheConfig cfg_;
  std::uint32_t sets_;
  std::uint64_t use_clock_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, set-major
  CacheStats stats_;
};

}  // namespace latdiv
