#include "cache/cache.hpp"

#include <bit>

#include "common/log.hpp"

namespace latdiv {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  LATDIV_ASSERT(cfg.line_bytes > 0 && std::has_single_bit(cfg.line_bytes),
                "line size must be a power of two");
  LATDIV_ASSERT(cfg.ways > 0, "need at least one way");
  LATDIV_ASSERT(cfg.size_bytes % (cfg.line_bytes * cfg.ways) == 0,
                "size must divide into sets evenly");
  sets_ = cfg.size_bytes / (cfg.line_bytes * cfg.ways);
  LATDIV_ASSERT(std::has_single_bit(sets_), "set count must be a power of 2");
  lines_.resize(static_cast<std::size_t>(sets_) * cfg.ways);
}

std::uint32_t Cache::set_of(Addr addr) const noexcept {
  return static_cast<std::uint32_t>((addr / cfg_.line_bytes) & (sets_ - 1));
}

Addr Cache::tag_of(Addr addr) const noexcept {
  return addr / cfg_.line_bytes / sets_;
}

Cache::Line* Cache::find(Addr addr) noexcept {
  const Addr tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set_of(addr)) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(Addr addr) const noexcept {
  return const_cast<Cache*>(this)->find(addr);
}

bool Cache::touch(Addr addr) {
  Line* line = find(addr);
  if (line != nullptr) {
    line->last_use = ++use_clock_;
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::probe(Addr addr) const { return find(addr) != nullptr; }

std::optional<Addr> Cache::fill(Addr addr, bool dirty) {
  Line* line = find(addr);
  if (line != nullptr) {  // already present (racing fills merge)
    line->dirty = line->dirty || dirty;
    line->last_use = ++use_clock_;
    return std::nullopt;
  }
  Line* base = &lines_[static_cast<std::size_t>(set_of(addr)) * cfg_.ways];
  Line* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }
  std::optional<Addr> writeback;
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) {
      ++stats_.dirty_evictions;
      // Reconstruct the victim's line base address from its tag and the
      // set index (shared with the incoming line).
      writeback = (victim->tag * sets_ + set_of(addr)) * cfg_.line_bytes;
    }
  }
  victim->tag = tag_of(addr);
  victim->valid = true;
  victim->dirty = dirty;
  victim->last_use = ++use_clock_;
  return writeback;
}

bool Cache::invalidate(Addr addr) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->valid = false;
  line->dirty = false;
  return true;
}

void Cache::mark_dirty(Addr addr) {
  Line* line = find(addr);
  LATDIV_ASSERT(line != nullptr, "mark_dirty on absent line");
  line->dirty = true;
}

}  // namespace latdiv
