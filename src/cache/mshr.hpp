// Miss-Status Holding Register file.
//
// Tracks outstanding line fetches and merges secondary misses to the same
// line.  Each entry holds the waiting requests so the owner (SM or L2
// partition) can replay them when the fill returns.  A full MSHR file (or
// a full merge list) back-pressures the requester, exactly like hardware.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "mem/request.hpp"

namespace latdiv {

struct MshrConfig {
  std::uint32_t entries = 32;
  std::uint32_t max_merged = 8;  ///< waiters per entry, primary included
};

struct MshrStats {
  std::uint64_t allocations = 0;
  std::uint64_t merges = 0;
  std::uint64_t releases = 0;  ///< fills delivered; allocations - releases
                               ///< must equal outstanding() (no leaks)
  std::uint64_t stalls_full = 0;
};

class MshrFile {
 public:
  explicit MshrFile(const MshrConfig& cfg) : cfg_(cfg) {}

  [[nodiscard]] bool tracking(Addr line) const {
    return entries_.contains(line);
  }

  /// Can `line` accept a new request (fresh entry or merge slot)?
  [[nodiscard]] bool can_accept(Addr line) const {
    auto it = entries_.find(line);
    if (it != entries_.end()) return it->second.size() < cfg_.max_merged;
    return entries_.size() < cfg_.entries;
  }

  /// Register `req` as waiting on `line`.  Returns true if this created a
  /// new entry (i.e. the caller must send a fetch downstream); false if
  /// it merged into an outstanding fetch.
  bool add(Addr line, const MemRequest& req) {
    LATDIV_ASSERT(can_accept(line), "MSHR overflow (check can_accept)");
    auto [it, inserted] = entries_.try_emplace(line);
    it->second.push_back(req);
    if (inserted) {
      ++stats_.allocations;
    } else {
      ++stats_.merges;
    }
    return inserted;
  }

  /// The fill for `line` arrived: remove and return all waiters.
  [[nodiscard]] std::vector<MemRequest> release(Addr line) {
    auto it = entries_.find(line);
    LATDIV_ASSERT(it != entries_.end(), "fill for untracked line");
    std::vector<MemRequest> waiters = std::move(it->second);
    entries_.erase(it);
    ++stats_.releases;
    return waiters;
  }

  void count_stall() { ++stats_.stalls_full; }

  [[nodiscard]] std::size_t outstanding() const { return entries_.size(); }
  [[nodiscard]] std::size_t free_entries() const {
    return cfg_.entries - entries_.size();
  }
  [[nodiscard]] const MshrStats& stats() const { return stats_; }

  /// Snapshot serialization of outstanding entries + stats (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  MshrConfig cfg_;
  // Ordered map by determinism policy (latdiv-lint unordered-iter): no
  // current call site iterates entries_, but an ordered structure keeps
  // any future walk (drain-on-flush, debug dumps) address-ordered for
  // free.  At <= 32 entries the lookup-cost difference is noise.
  std::map<Addr, std::vector<MemRequest>> entries_;
  MshrStats stats_;
};

}  // namespace latdiv
