// Full-simulator snapshot serialization (see snapshot.hpp for the file
// format and the determinism contract).
//
// All component ckpt_io member-template definitions live in this single
// translation unit: each is declared in its component's header (so private
// members stay reachable) and defined here, next to the framing and the
// helpers, so the field walk for every class can be reviewed in one place.
// The explicit instantiations of Simulator::ckpt_io at the bottom pull in
// every component instantiation this file defines.

#include "ckpt/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "check/invariant_checker.hpp"
#include "check/protocol_checker.hpp"
#include "ckpt/archive.hpp"
#include "common/crc32.hpp"
#include "common/endian.hpp"
#include "core/coordination.hpp"
#include "core/ideal.hpp"
#include "core/policy_wg.hpp"
#include "dram/channel.hpp"
#include "gpu/coalescer.hpp"
#include "gpu/partition.hpp"
#include "gpu/sm.hpp"
#include "gpu/tracker.hpp"
#include "icnt/crossbar.hpp"
#include "mc/controller.hpp"
#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "sim/config.hpp"
#include "sim/simulator.hpp"
#include "workload/instr.hpp"

namespace latdiv {
namespace {

// --- field helpers ---------------------------------------------------
// All take mutating references like the archive primitives, so one call
// site serves both directions; `if constexpr (Ar::kIsWriter)` branches
// the rare asymmetric step.

template <class Ar, class E>
void io_enum8(Ar& ar, E& e) {
  std::uint8_t v = static_cast<std::uint8_t>(e);
  ar.u8(v);
  if constexpr (!Ar::kIsWriter) e = static_cast<E>(v);
}

template <class Ar>
void io_size(Ar& ar, std::size_t& v) {
  std::uint64_t wide = v;
  ar.u64(wide);
  if constexpr (!Ar::kIsWriter) v = static_cast<std::size_t>(wide);
}

/// Serialize a count that load may not change: geometry fixed at
/// construction (bank arrays, warp arrays, cache lines).  A mismatch
/// means the snapshot disagrees with the constructed simulator in a way
/// the config fingerprint failed to capture.
template <class Ar>
void io_check_count(Ar& ar, std::size_t expect, const char* what) {
  std::uint64_t n = expect;
  ar.u64(n);
  if (n != expect) {
    throw ckpt::CkptError(std::string("snapshot geometry mismatch: ") + what);
  }
}

/// Resizable sequence (vector / deque, any allocator): count, then one
/// callback per element.  Load resizes in place, so arena-backed deques
/// keep their allocator — the container object itself is never replaced.
template <class Ar, class Seq, class Fn>
void io_seq(Ar& ar, Seq& seq, Fn&& fn) {
  std::uint64_t n = seq.size();
  ar.u64(n);
  if constexpr (!Ar::kIsWriter) seq.resize(static_cast<std::size_t>(n));
  for (auto& item : seq) fn(item);
}

template <class Ar>
void io_tag(Ar& ar, WarpTag& tag) {
  ar.u16(tag.sm);
  ar.u16(tag.warp);
  ar.u64(tag.instr);
}

template <class Ar>
void io_loc(Ar& ar, DramLoc& loc) {
  ar.u8(loc.channel);
  ar.u8(loc.bank);
  ar.u8(loc.bank_group);
  ar.u32(loc.row);
  ar.u32(loc.col);
}

template <class Ar>
void io_req(Ar& ar, MemRequest& req) {
  ar.u64(req.addr);
  io_enum8(ar, req.kind);
  io_tag(ar, req.tag);
  io_loc(ar, req.loc);
  ar.u16(req.reqs_in_instr);
  ar.b(req.last_of_group_at_mc);
  io_enum8(ar, req.row_outcome);
  ar.u64(req.issued_by_sm);
  ar.u64(req.arrived_at_mc);
  ar.u64(req.cas_issued);
  ar.u64(req.completed);
}

template <class Ar>
void io_resp(Ar& ar, MemResponse& resp) {
  ar.u64(resp.addr);
  io_tag(ar, resp.tag);
  ar.u64(resp.completed);
  ar.u16(resp.reqs_in_instr);
}

template <class Ar>
void io_instr(Ar& ar, WarpInstr& instr) {
  io_enum8(ar, instr.kind);
  ar.u32(instr.latency);
  ar.u8(instr.active_lanes);
  if constexpr (!Ar::kIsWriter) {
    if (instr.active_lanes > kWarpLanes) {
      throw ckpt::CkptError(
          "snapshot corrupt: warp instruction lane count out of range");
    }
    instr.lane_addr.fill(0);
  }
  for (std::uint8_t i = 0; i < instr.active_lanes; ++i) {
    ar.u64(instr.lane_addr[i]);
  }
}

template <class Ar>
void io_coordmsg(Ar& ar, CoordMsg& msg) {
  ar.u8(msg.source);
  io_tag(ar, msg.tag);
  ar.u32(msg.score);
}

template <class Ar>
void io_dram_cmd(Ar& ar, DramCommand& cmd) {
  io_enum8(ar, cmd.cmd);
  ar.u8(cmd.bank);
  ar.u32(cmd.row);
}

/// BoundedQueue<MemRequest, ...> through its public pop/push interface
/// (capacities are construction-time geometry, so load only refills).
template <class Ar, class Q>
void io_request_queue(Ar& ar, Q& q, const char* what) {
  if constexpr (Ar::kIsWriter) {
    std::uint64_t n = q.size();
    ar.u64(n);
    for (auto& req : q) io_req(ar, req);
  } else {
    while (!q.empty()) (void)q.pop();
    std::uint64_t n = 0;
    ar.u64(n);
    if (n > q.capacity()) {
      throw ckpt::CkptError(std::string("snapshot geometry mismatch: ") +
                            what);
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      MemRequest req;
      io_req(ar, req);
      q.push(std::move(req));
    }
  }
}

/// std::priority_queue exposes no container access; the standard-blessed
/// workaround reaches the protected member through a derived class.  The
/// heap vector is serialized verbatim — both sides build it through the
/// same push sequence, so the layout is deterministic.
template <class PQ>
struct HeapAccess : PQ {
  static typename PQ::container_type& container(PQ& q) {
    return q.*(&HeapAccess::c);
  }
};

template <class Ar>
void io_wg_meta(Ar& ar, WgGroupMeta& meta) {
  io_tag(ar, meta.tag);
  ar.u64(meta.first_arrival);
  ar.u32(meta.seen);
  ar.u32(meta.pushed);
  ar.u32(meta.coord_bonus);
  ar.b(meta.complete);
  io_seq(ar, meta.slots, [&ar](WgGroupMeta::BankSlot& slot) {
    ar.u8(slot.bank);
    io_seq(ar, slot.items, [&ar](WgGroupMeta::QueuedReq& qr) {
      ar.u64(qr.seq);
      ar.u64(qr.arrival);
      ar.u32(qr.row);
    });
    ar.u64(slot.score_epoch);
  });
  ar.u64(meta.version);
  ar.b(meta.in_active);
  ar.u64(meta.score_version);
  ar.u32(meta.score_completion);
  ar.u32(meta.score_row_hits);
}

}  // namespace

// --- cache ------------------------------------------------------------

template <class Ar>
void Cache::ckpt_io(Ar& ar) {
  ar.u64(use_clock_);
  io_check_count(ar, lines_.size(), "cache line count");
  for (auto& line : lines_) {
    ar.u64(line.tag);
    ar.b(line.valid);
    ar.b(line.dirty);
    ar.u64(line.last_use);
  }
  ar.u64(stats_.hits);
  ar.u64(stats_.misses);
  ar.u64(stats_.evictions);
  ar.u64(stats_.dirty_evictions);
}

template <class Ar>
void MshrFile::ckpt_io(Ar& ar) {
  // entries_ is a std::map: iteration is address-ordered on both sides,
  // so it round-trips without a sort step.
  if constexpr (Ar::kIsWriter) {
    std::uint64_t n = entries_.size();
    ar.u64(n);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      ar.u64(it->first);
      io_seq(ar, it->second, [&ar](MemRequest& req) { io_req(ar, req); });
    }
  } else {
    entries_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      Addr line = 0;
      ar.u64(line);
      io_seq(ar, entries_[line], [&ar](MemRequest& req) { io_req(ar, req); });
    }
  }
  ar.u64(stats_.allocations);
  ar.u64(stats_.merges);
  ar.u64(stats_.releases);
  ar.u64(stats_.stalls_full);
}

// --- GPU core ---------------------------------------------------------

template <class Ar>
void Coalescer::ckpt_io(Ar& ar) {
  ar.u64(stats_.loads);
  ar.u64(stats_.divergent_loads);
  ar.u64(stats_.load_requests);
  ar.u64(stats_.stores);
  ar.u64(stats_.store_requests);
}

template <class Ar>
void Sm::ckpt_io(Ar& ar) {
  l1_.ckpt_io(ar);
  mshr_.ckpt_io(ar);
  coalescer_.ckpt_io(ar);
  io_check_count(ar, warps_.size(), "warp count");
  for (auto& w : warps_) {
    ar.u64(w.ready_at);
    ar.u32(w.pending_lines);
    ar.b(w.waiting_lsu);
    ar.b(w.has_next);
    io_instr(ar, w.next);
    ar.u64(w.issue_fail_epoch);
    io_seq(ar, w.lines, [&ar](Addr& line) { ar.u64(line); });
  }
  ar.b(lsu_.active);
  ar.b(lsu_.is_store);
  ar.u16(lsu_.warp);
  io_seq(ar, lsu_.queue, [&ar](MemRequest& req) { io_req(ar, req); });
  io_size(ar, lsu_.next);
  ar.u64(mem_epoch_);
  ar.u64(idle_until_);
  ar.u16(last_issued_);
  ar.u64(next_uid_);
  ar.u64(stats_.instructions);
  ar.u64(stats_.loads);
  ar.u64(stats_.stores);
  ar.u64(stats_.issue_stall_mshr);
  ar.u64(stats_.no_ready_warp_cycles);
}

template <class Ar>
void InstrTracker::ckpt_io(Ar& ar) {
  if constexpr (Ar::kIsWriter) {
    // Collect-then-sort: records_ is unordered, the byte stream must not
    // be (classic iterator loop; the sorted key walk below is the only
    // iteration order the archive sees).
    std::vector<WarpInstrUid> keys;
    keys.reserve(records_.size());
    for (auto it = records_.begin(); it != records_.end(); ++it) {
      keys.push_back(it->first);
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = keys.size();
    ar.u64(n);
    for (WarpInstrUid uid : keys) {
      ar.u64(uid);
      Record& rec = records_.at(uid);
      ar.u64(rec.issued);
      ar.u64(rec.first_done);
      ar.u64(rec.last_done);
      ar.u16(rec.sm);
      ar.u16(rec.warp);
      io_seq(ar, rec.locs, [&ar](DramLoc& loc) { io_loc(ar, loc); });
    }
  } else {
    records_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      WarpInstrUid uid = 0;
      ar.u64(uid);
      Record& rec = records_[uid];
      ar.u64(rec.issued);
      ar.u64(rec.first_done);
      ar.u64(rec.last_done);
      ar.u16(rec.sm);
      ar.u16(rec.warp);
      io_seq(ar, rec.locs, [&ar](DramLoc& loc) { io_loc(ar, loc); });
    }
  }
  ar.u64(summary_.loads_finalized);
  ar.u64(summary_.loads_touching_dram);
  summary_.dram_reqs_per_load.ckpt_io(ar);
  summary_.channels_per_load.ckpt_io(ar);
  summary_.banks_per_load.ckpt_io(ar);
  summary_.same_row_frac.ckpt_io(ar);
  summary_.first_req_latency.ckpt_io(ar);
  summary_.last_req_latency.ckpt_io(ar);
  summary_.last_to_first_ratio.ckpt_io(ar);
  summary_.divergence_gap.ckpt_io(ar);
}

// --- interconnect -----------------------------------------------------

template <class Ar>
void Crossbar::ckpt_io(Ar& ar) {
  io_check_count(ar, sm_queues_.size(), "crossbar SM count");
  for (auto& q : sm_queues_) {
    io_seq(ar, q, [&ar](MemRequest& req) { io_req(ar, req); });
  }
  io_check_count(ar, part_in_.size(), "crossbar partition count");
  for (auto& q : part_in_) {
    io_seq(ar, q, [&ar](Timed<MemRequest>& t) {
      ar.u64(t.ready_at);
      io_req(ar, t.payload);
    });
  }
  for (auto& q : part_out_) {
    io_seq(ar, q, [&ar](MemResponse& resp) { io_resp(ar, resp); });
  }
  for (auto& q : sm_in_) {
    io_seq(ar, q, [&ar](Timed<MemResponse>& t) {
      ar.u64(t.ready_at);
      io_resp(ar, t.payload);
    });
  }
  for (auto& rr : part_rr_) ar.u32(rr);
  for (auto& rr : part_sticky_) ar.u32(rr);
  for (auto& rr : sm_rr_) ar.u32(rr);
  ar.u64(stats_.requests_moved);
  ar.u64(stats_.responses_moved);
  ar.u64(stats_.inject_stalls);
}

template <class Ar>
void CoordinationNetwork::ckpt_io(Ar& ar) {
  io_seq(ar, in_flight_, [&ar](Pending& p) {
    ar.u64(p.due);
    io_coordmsg(ar, p.msg);
  });
  ar.u64(sent_);
}

// --- DRAM channel -----------------------------------------------------

template <class Ar>
void Channel::ckpt_io(Ar& ar) {
  io_check_count(ar, bank_row_.size(), "DRAM bank count");
  for (auto& row : bank_row_) ar.u32(row);
  for (auto& at : bank_earliest_act_) ar.u64(at);
  for (auto& at : bank_earliest_cas_) ar.u64(at);
  for (auto& at : bank_earliest_pre_) ar.u64(at);
  ar.u64(last_act_);
  for (auto& at : act_window_) ar.u64(at);
  io_size(ar, act_window_pos_);
  ar.u64(last_rd_cmd_);
  ar.u64(last_wr_cmd_);
  ar.u8(last_rd_group_);
  ar.u8(last_wr_group_);
  ar.u64(last_cmd_cycle_);
  ar.u64(data_bus_free_at_);
  ar.u64(next_refresh_at_);
  ar.u64(stats_.activates);
  ar.u64(stats_.precharges);
  ar.u64(stats_.reads);
  ar.u64(stats_.writes);
  ar.u64(stats_.refreshes);
  ar.u64(stats_.data_bus_busy_cycles);
  ar.u64(stats_.all_banks_idle_cycles);
  for (auto& n : stats_.per_bank_activates) ar.u64(n);
  for (auto& n : stats_.per_bank_precharges) ar.u64(n);
}

// --- memory controller ------------------------------------------------

template <class Ar>
void MemoryController::ckpt_io(Ar& ar) {
  io_size(ar, wq_at_drain_start_);
  ar.u64(writes_arrived_in_drain_);
  io_request_queue(ar, read_q_, "read queue exceeds its capacity");
  io_request_queue(ar, write_q_, "write queue exceeds its capacity");
  io_check_count(ar, bank_q_.size(), "controller bank count");
  for (auto& q : bank_q_) {
    io_seq(ar, q, [&ar](MemRequest& req) { io_req(ar, req); });
  }
  for (auto& row : bank_tail_row_) ar.u32(row);
  for (auto& streak : bank_tail_streak_) ar.u32(streak);
  io_size(ar, cmdq_total_);
  ar.u32(nonempty_banks_);
  for (auto& epoch : bank_epoch_) ar.u64(epoch);
  ar.u64(mutation_epoch_);
  ar.b(write_mode_);
  ar.b(opportunistic_mode_);
  ar.u32(rr_group_);
  for (auto& rr : rr_bank_in_group_) ar.u32(rr);
  auto& heap =
      HeapAccess<std::priority_queue<Inflight>>::container(inflight_reads_);
  io_seq(ar, heap, [&ar](Inflight& f) {
    ar.u64(f.done);
    io_req(ar, f.req);
  });
  io_seq(ar, outbox_, [&ar](CoordMsg& msg) { io_coordmsg(ar, msg); });
  ar.u64(stats_.reads_accepted);
  ar.u64(stats_.writes_accepted);
  ar.u64(stats_.reads_served);
  ar.u64(stats_.writes_served);
  ar.u64(stats_.drains_started);
  stats_.read_queueing_cycles.ckpt_io(ar);
  stats_.read_service_cycles.ckpt_io(ar);
  ar.u64(stats_.drain_stalled_groups);
  ar.u64(stats_.drain_stalled_small_groups);
  for (auto& n : stats_.bank_row_hits) ar.u64(n);
  for (auto& n : stats_.bank_row_misses) ar.u64(n);
  for (auto& n : stats_.bank_row_conflicts) ar.u64(n);
  channel_.ckpt_io(ar);
  if constexpr (Ar::kIsWriter) {
    policy_->ckpt_save(ar);
  } else {
    policy_->ckpt_load(ar);
  }
}

// --- memory partition -------------------------------------------------

template <class Ar>
void Partition::ckpt_io(Ar& ar) {
  l2_.ckpt_io(ar);
  mshr_.ckpt_io(ar);
  io_seq(ar, pipeline_, [&ar](Delayed& d) {
    ar.u64(d.ready_at);
    io_req(ar, d.req);
  });
  io_seq(ar, fills_, [&ar](MemRequest& req) { io_req(ar, req); });
  io_seq(ar, responses_, [&ar](MemResponse& resp) { io_resp(ar, resp); });
  ar.u64(stats_.read_hits);
  ar.u64(stats_.read_misses);
  ar.u64(stats_.write_hits);
  ar.u64(stats_.write_misses);
  ar.u64(stats_.writebacks);
  ar.u64(stats_.mshr_merges);
  ar.u64(stats_.stall_cycles);
  mc_->ckpt_io(ar);
}

// --- scheduling policies ----------------------------------------------

template <class Ar>
void ZldCoordinator::ckpt_io(Ar& ar) {
  if constexpr (Ar::kIsWriter) {
    std::vector<WarpInstrUid> keys(started_.begin(), started_.end());
    std::sort(keys.begin(), keys.end());
    io_seq(ar, keys, [&ar](WarpInstrUid& uid) { ar.u64(uid); });
  } else {
    started_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      WarpInstrUid uid = 0;
      ar.u64(uid);
      started_.insert(uid);
    }
  }
}

template <class Ar>
void WgPolicy::ckpt_io(Ar& ar) {
  if constexpr (Ar::kIsWriter) {
    // Collect-then-sort (classic iterator loop over the unordered map;
    // the archive only sees the sorted walk).
    std::vector<WarpInstrUid> keys;
    keys.reserve(groups_.size());
    for (auto it = groups_.begin(); it != groups_.end(); ++it) {
      keys.push_back(it->first);
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = keys.size();
    ar.u64(n);
    for (WarpInstrUid uid : keys) {
      ar.u64(uid);
      io_wg_meta(ar, groups_.at(uid));
    }
  } else {
    groups_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      WarpInstrUid uid = 0;
      ar.u64(uid);
      io_wg_meta(ar, groups_[uid]);
    }
  }
  if constexpr (Ar::kIsWriter) {
    bool has = current_.has_value();
    ar.b(has);
    if (has) ar.u64(*current_);
  } else {
    bool has = false;
    ar.b(has);
    if (has) {
      WarpInstrUid uid = 0;
      ar.u64(uid);
      current_ = uid;
    } else {
      current_.reset();
    }
  }
  // active_ travels as a uid list in vector order; the meta pointers are
  // rebuilt against the freshly loaded group table.
  if constexpr (Ar::kIsWriter) {
    std::uint64_t n = active_.size();
    ar.u64(n);
    for (auto& entry : active_) ar.u64(entry.first);
  } else {
    active_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    active_.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      WarpInstrUid uid = 0;
      ar.u64(uid);
      auto it = groups_.find(uid);
      if (it == groups_.end()) {
        throw ckpt::CkptError(
            "snapshot corrupt: active warp-group not in the group table");
      }
      active_.emplace_back(uid, &it->second);
    }
  }
  ar.u64(next_seq_);
  ar.u64(skip_epoch_);
  ar.u64(skip_until_);
  io_seq(ar, bqs_cache_, [&ar](std::pair<std::uint64_t, std::uint32_t>& e) {
    ar.u64(e.first);
    ar.u32(e.second);
  });
  // row_counts_ / census_ (WG-Bw / shared-boost indexes): sorted-key walk
  // like groups_ above.
  if constexpr (Ar::kIsWriter) {
    std::vector<std::uint64_t> keys;
    keys.reserve(row_counts_.size());
    for (auto it = row_counts_.begin(); it != row_counts_.end(); ++it) {
      keys.push_back(it->first);
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = keys.size();
    ar.u64(n);
    for (std::uint64_t key : keys) {
      ar.u64(key);
      ar.u32(row_counts_.at(key));
    }
  } else {
    row_counts_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t key = 0;
      ar.u64(key);
      ar.u32(row_counts_[key]);
    }
  }
  if constexpr (Ar::kIsWriter) {
    std::vector<std::uint32_t> keys;
    keys.reserve(census_.size());
    for (auto it = census_.begin(); it != census_.end(); ++it) {
      keys.push_back(it->first);
    }
    std::sort(keys.begin(), keys.end());
    std::uint64_t n = keys.size();
    ar.u64(n);
    for (std::uint32_t key : keys) {
      ar.u32(key);
      io_seq(ar, census_.at(key),
             [&ar](std::pair<WarpInstrUid, std::uint32_t>& e) {
               ar.u64(e.first);
               ar.u32(e.second);
             });
    }
  } else {
    census_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint32_t key = 0;
      ar.u32(key);
      io_seq(ar, census_[key],
             [&ar](std::pair<WarpInstrUid, std::uint32_t>& e) {
               ar.u64(e.first);
               ar.u32(e.second);
             });
    }
  }
  io_seq(ar, recent_msgs_, [&ar](RecentMsg& m) {
    ar.u64(m.instr);
    ar.u32(m.score);
    ar.u64(m.at);
  });
  ar.u64(stats_.groups_completed);
  ar.u64(stats_.groups_selected);
  ar.u64(stats_.fallback_selections);
  ar.u64(stats_.merb_deferrals);
  ar.u64(stats_.orphan_topups);
  ar.u64(stats_.coord_msgs_applied);
  ar.u64(stats_.writeaware_selections);
  ar.u64(stats_.shared_boosts);
  stats_.group_size.ckpt_io(ar);
}

void WgPolicy::ckpt_save(ckpt::CkptWriter& ar) const {
  // ckpt_io mutates nothing with a writer archive; the shared body needs
  // a non-const *this only for the reader direction.
  const_cast<WgPolicy*>(this)->ckpt_io(ar);
}

void WgPolicy::ckpt_load(ckpt::CkptReader& ar) { ckpt_io(ar); }

// --- checkers ---------------------------------------------------------

template <class Ar>
void ProtocolChecker::ckpt_io(Ar& ar) {
  io_check_count(ar, banks_.size(), "checker bank count");
  for (auto& sb : banks_) {
    ar.u32(sb.row);
    ar.u64(sb.last_act);
    ar.u64(sb.last_pre);
    ar.u64(sb.last_rd);
    ar.u64(sb.last_wr);
  }
  io_seq(ar, recent_acts_, [&ar](Cycle& at) { ar.u64(at); });
  ar.u64(last_rd_any_);
  ar.u64(last_wr_any_);
  ar.u8(last_rd_group_);
  ar.u8(last_wr_group_);
  ar.u64(last_ref_);
  ar.u64(last_cmd_);
  ar.u64(data_busy_until_);
  ar.u64(refresh_due_);
  ar.b(overdue_reported_);
  io_seq(ar, history_, [&ar](std::pair<Cycle, DramCommand>& h) {
    ar.u64(h.first);
    io_dram_cmd(ar, h.second);
  });
  ar.u64(commands_checked_);
  io_seq(ar, violations_, [&ar](ProtocolViolation& v) {
    ar.u64(v.cycle);
    io_dram_cmd(ar, v.cmd);
    ar.str(v.rule);
    ar.str(v.detail);
  });
}

template <class Ar>
void InvariantChecker::ckpt_io(Ar& ar) {
  ar.u64(audits_run_);
  io_seq(ar, violations_, [&ar](InvariantViolation& v) {
    ar.u64(v.cycle);
    ar.str(v.invariant);
    ar.str(v.detail);
  });
}

}  // namespace latdiv

// --- observability ----------------------------------------------------

namespace latdiv::obs {

template <class Ar>
void Counter::ckpt_io(Ar& ar) {
  ar.u64(value_);
}

template <class Ar>
void Gauge::ckpt_io(Ar& ar) {
  ar.u64(value_);
}

template <class Ar>
void Log2Histogram::ckpt_io(Ar& ar) {
  for (auto& count : counts_) ar.u64(count);
  ar.u64(total_);
  ar.u64(sum_);
  ar.u64(min_);
  ar.u64(max_);
}

template <class Ar>
void MetricRegistry::ckpt_io(Ar& ar) {
  // Saved in creation order; loading find-or-creates by name, so
  // instruments registered by the hub's constructor keep their hot-path
  // pointers and export order is reproduced exactly.
  if constexpr (Ar::kIsWriter) {
    std::uint64_t n = counters_.size();
    ar.u64(n);
    for (auto& named : counters_) {
      ar.str(named.name);
      named.instrument->ckpt_io(ar);
    }
    n = gauges_.size();
    ar.u64(n);
    for (auto& named : gauges_) {
      ar.str(named.name);
      named.instrument->ckpt_io(ar);
    }
    n = histograms_.size();
    ar.u64(n);
    for (auto& named : histograms_) {
      ar.str(named.name);
      named.instrument->ckpt_io(ar);
    }
  } else {
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name;
      ar.str(name);
      counter(name).ckpt_io(ar);
    }
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name;
      ar.str(name);
      gauge(name).ckpt_io(ar);
    }
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::string name;
      ar.str(name);
      histogram(name).ckpt_io(ar);
    }
  }
}

template <class Ar>
void ChromeTraceSink::ckpt_io(Ar& ar) {
  ar.str(out_);
  ar.u64(events_);
  ar.b(finished_);
}

template <class Ar>
void AttributionProfiler::ckpt_io(Ar& ar) {
  // Registry instruments (hists/counters) ride in the hub's
  // MetricRegistry section; this serializes only the join state.
  io_seq(ar, drains_, [&ar](DrainWin& w) {
    ar.u64(w.cum);
    ar.u64(w.open);
  });
  const auto io_state = [&ar](ReqState& st) {
    ar.u64(st.t0);
    ar.u64(st.t1);
    ar.u64(st.t2);
    ar.u64(st.t3);
    ar.u64(st.drain_at_t1);
    ar.u64(st.drain_at_t2);
    io_enum8(ar, st.outcome);
  };
  const auto io_acc = [&ar](Acc& a) {
    ar.u32(a.n);
    ar.b(a.poisoned);
    ar.u64(a.sum_t0);
    ar.u64(a.sum_xbar);
    ar.u64(a.sum_queue);
    ar.u64(a.sum_drain);
    ar.u64(a.sum_bus);
    for (auto& b : a.sum_bank) ar.u64(b);
    ar.u64(a.sl_completed);
    ar.u64(a.sl_t0);
    ar.u64(a.sl_xbar);
    ar.u64(a.sl_queue);
    ar.u64(a.sl_drain);
    ar.u64(a.sl_bank);
    ar.u64(a.sl_bus);
    io_enum8(ar, a.sl_outcome);
  };
  if constexpr (Ar::kIsWriter) {
    std::uint64_t n = inflight_.size();
    ar.u64(n);
    for (auto& [key, st] : inflight_) {
      std::uint64_t uid = key.first;
      std::uint64_t addr = key.second;
      ar.u64(uid);
      ar.u64(addr);
      io_state(st);
    }
    n = accs_.size();
    ar.u64(n);
    for (auto& [uid, acc] : accs_) {
      std::uint64_t u = uid;
      ar.u64(u);
      io_acc(acc);
    }
  } else {
    inflight_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t uid = 0;
      std::uint64_t addr = 0;
      ar.u64(uid);
      ar.u64(addr);
      ReqState st;
      io_state(st);
      inflight_.emplace(std::make_pair(uid, addr), st);
    }
    accs_.clear();
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t uid = 0;
      ar.u64(uid);
      Acc acc;
      io_acc(acc);
      accs_.emplace(uid, acc);
    }
  }
}

template <class Ar>
void ObsHub::ckpt_io(Ar& ar) {
  chrome_.ckpt_io(ar);
  registry_.ckpt_io(ar);
  if constexpr (Ar::kIsWriter) {
    std::vector<std::uint64_t> tracks(named_tracks_.begin(),
                                      named_tracks_.end());
    std::sort(tracks.begin(), tracks.end());
    io_seq(ar, tracks, [&ar](std::uint64_t& key) { ar.u64(key); });
    std::vector<std::uint32_t> pids(named_pids_.begin(), named_pids_.end());
    std::sort(pids.begin(), pids.end());
    io_seq(ar, pids, [&ar](std::uint32_t& pid) { ar.u32(pid); });
  } else {
    named_tracks_.clear();
    std::uint64_t n = 0;
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t key = 0;
      ar.u64(key);
      named_tracks_.insert(key);
    }
    named_pids_.clear();
    ar.u64(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint32_t pid = 0;
      ar.u32(pid);
      named_pids_.insert(pid);
    }
  }
  io_seq(ar, drain_start_, [&ar](Cycle& at) { ar.u64(at); });
  ar.str(series_);
  ar.b(finalized_);
  bool have_attrib = attrib_ != nullptr;
  ar.b(have_attrib);
  if (have_attrib != (attrib_ != nullptr)) {
    throw ckpt::CkptError(
        "snapshot attribution configuration does not match");
  }
  if (attrib_) attrib_->ckpt_io(ar);
}

}  // namespace latdiv::obs

// --- simulator section walk -------------------------------------------

namespace latdiv {

template <class Ar>
void Simulator::ckpt_io(Ar& ar) {
  ar.section("CORE");
  ar.u64(now_);
  ar.u64(warmup_instructions_);
  ar.u64(warmup_done_at_);
  ar.u64(series_prev_instr_);
  io_check_count(ar, series_prev_.size(), "time-series channel count");
  for (auto& prev : series_prev_) {
    ar.u64(prev.reads);
    ar.u64(prev.writes);
    ar.u64(prev.activates);
    ar.u64(prev.row_hits);
    ar.u64(prev.row_misses);
    ar.u64(prev.row_conflicts);
    ar.u64(prev.merb_deferrals);
  }
  zld_->ckpt_io(ar);

  ar.section("SRCE");
  {
    // The source chain is rebuilt from the config at construction; the
    // archive pins which link is active and then defers to its virtual
    // save/load hooks (cursors, RNG streams).
    const std::uint8_t kind = replayer_ ? 2 : (custom_source_ ? 1 : 0);
    if constexpr (Ar::kIsWriter) {
      ar.u8(kind);
      source_->ckpt_save(ar);
    } else {
      std::uint8_t stored = 0;
      ar.u8(stored);
      if (stored != kind) {
        throw ckpt::CkptError(
            "snapshot instruction-source kind does not match the "
            "configuration");
      }
      source_->ckpt_load(ar);
    }
  }

  ar.section("GPUS");
  tracker_.ckpt_io(ar);
  io_check_count(ar, sms_.size(), "SM count");
  for (auto& core : sms_) core->ckpt_io(ar);

  ar.section("ICNT");
  xbar_.ckpt_io(ar);
  coord_->ckpt_io(ar);

  ar.section("MCTL");
  io_check_count(ar, partitions_.size(), "partition count");
  for (auto& part : partitions_) part->ckpt_io(ar);

  ar.section("CHKR");
  {
    std::uint64_t n = protocol_checkers_.size();
    ar.u64(n);
    if (n != protocol_checkers_.size()) {
      throw ckpt::CkptError("snapshot checker configuration does not match");
    }
    for (auto& checker : protocol_checkers_) checker->ckpt_io(ar);
    bool have_inv = invariant_checker_ != nullptr;
    ar.b(have_inv);
    if (have_inv != (invariant_checker_ != nullptr)) {
      throw ckpt::CkptError("snapshot checker configuration does not match");
    }
    if (invariant_checker_) invariant_checker_->ckpt_io(ar);
  }

  ar.section("OBSV");
  {
    bool have_obs = obs_hub_ != nullptr;
    ar.b(have_obs);
    if (have_obs != (obs_hub_ != nullptr)) {
      throw ckpt::CkptError(
          "snapshot observability configuration does not match");
    }
    if (obs_hub_) obs_hub_->ckpt_io(ar);
  }
}

}  // namespace latdiv

// --- free functions ---------------------------------------------------

namespace latdiv::ckpt {

std::uint32_t config_fingerprint(const SimConfig& cfg) {
  std::vector<unsigned char> buf;
  buf.reserve(64 + cfg.workload.name.size() + cfg.replay_trace_path.size());
  const auto add32 = [&buf](std::uint32_t v) {
    unsigned char le[4];
    put_le32(le, v);
    buf.insert(buf.end(), le, le + 4);
  };
  const auto add64 = [&buf](std::uint64_t v) {
    unsigned char le[8];
    put_le64(le, v);
    buf.insert(buf.end(), le, le + 8);
  };
  const auto add_str = [&](const std::string& s) {
    add32(static_cast<std::uint32_t>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
  };
  add32(cfg.num_sms);
  add32(cfg.sm.warps);
  add32(cfg.sm.core_clock_ratio);
  add32(cfg.icnt.partitions);
  add32(cfg.dram.banks);
  add32(cfg.dram.banks_per_group);
  buf.push_back(static_cast<unsigned char>(cfg.scheduler));
  add64(cfg.seed);
  add64(cfg.warmup_cycles);
  add_str(cfg.workload.name);
  add_str(cfg.replay_trace_path);
  return crc32(buf.data(), buf.size());
}

namespace {

/// Shared save/load refusals: state the snapshot cannot capture (custom
/// policies hold arbitrary private state behind a type-erased factory)
/// or must not capture (an open trace-capture file).
void check_snapshotable(const SimConfig& cfg) {
  if (cfg.custom_policy) {
    throw CkptError("cannot snapshot a run with a custom scheduling policy");
  }
  if (!cfg.record_trace_path.empty()) {
    throw CkptError("cannot snapshot a trace-recording run");
  }
}

}  // namespace

std::vector<unsigned char> save_snapshot(const Simulator& sim) {
  check_snapshotable(sim.config());
  CkptWriter writer;
  // The writer archive only reads simulator state; ckpt_io takes a
  // mutable *this solely so the reader direction can overwrite in place.
  const_cast<Simulator&>(sim).ckpt_io(writer);
  const std::vector<unsigned char> body = writer.finish();

  std::vector<unsigned char> out(kSnapshotHeaderBytes);
  out[0] = 'L';
  out[1] = 'D';
  out[2] = 'S';
  out[3] = 'N';
  put_le32(out.data() + 4, kSnapshotVersion);
  put_le32(out.data() + 8, config_fingerprint(sim.config()));
  put_le64(out.data() + 12, sim.now());
  put_le32(out.data() + 20, crc32(out.data(), 20));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

namespace {

struct SnapshotHeader {
  std::uint32_t version = 0;
  std::uint32_t fingerprint = 0;
  Cycle cycle = 0;
};

SnapshotHeader parse_header(const unsigned char* data, std::size_t size) {
  if (size < kSnapshotHeaderBytes) {
    throw CkptError("snapshot truncated: missing header");
  }
  if (std::memcmp(data, "LDSN", 4) != 0) {
    throw CkptError("not a latdiv snapshot (bad magic)");
  }
  if (crc32(data, 20) != get_le32(data + 20)) {
    throw CkptError("snapshot corrupt: header CRC mismatch");
  }
  SnapshotHeader h;
  h.version = get_le32(data + 4);
  h.fingerprint = get_le32(data + 8);
  h.cycle = get_le64(data + 12);
  return h;
}

}  // namespace

void load_snapshot(Simulator& sim, const unsigned char* data,
                   std::size_t size) {
  check_snapshotable(sim.config());
  const SnapshotHeader h = parse_header(data, size);
  if (h.version != kSnapshotVersion) {
    throw CkptError("unsupported snapshot version " +
                    std::to_string(h.version) + " (expected " +
                    std::to_string(kSnapshotVersion) + ")");
  }
  if (h.fingerprint != config_fingerprint(sim.config())) {
    throw CkptError(
        "snapshot configuration fingerprint mismatch: the snapshot was "
        "taken under a different simulation configuration");
  }
  CkptReader reader(data + kSnapshotHeaderBytes, size - kSnapshotHeaderBytes);
  sim.ckpt_io(reader);
  reader.finish();
  if (sim.now() != h.cycle) {
    throw CkptError(
        "snapshot corrupt: header cycle does not match the serialized state");
  }
}

SnapshotInfo inspect_snapshot(const unsigned char* data, std::size_t size) {
  const SnapshotHeader h = parse_header(data, size);
  SnapshotInfo info;
  info.version = h.version;
  info.fingerprint = h.fingerprint;
  info.cycle = h.cycle;
  info.file_bytes = size;
  std::size_t pos = kSnapshotHeaderBytes;
  while (pos < size) {
    if (pos + kSectionHeaderBytes > size) {
      throw CkptError("snapshot truncated: partial section header");
    }
    const std::string tag(reinterpret_cast<const char*>(data + pos), 4);
    const std::uint32_t len = get_le32(data + pos + 4);
    pos += kSectionHeaderBytes;
    if (pos + len + kSectionTrailerBytes > size) {
      throw CkptError("snapshot truncated: section '" + tag +
                      "' overruns the file");
    }
    if (crc32(data + pos, len) != get_le32(data + pos + len)) {
      throw CkptError("snapshot corrupt: CRC mismatch in section '" + tag +
                      "'");
    }
    info.sections.push_back(SnapshotSectionInfo{tag, len});
    pos += len + kSectionTrailerBytes;
  }
  return info;
}

void save_snapshot_file(const Simulator& sim, const std::string& path) {
  const std::vector<unsigned char> bytes = save_snapshot(sim);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw CkptError("cannot write snapshot file: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) throw CkptError("cannot write snapshot file: " + path);
}

namespace {

std::vector<unsigned char> read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw CkptError("cannot read snapshot file: " + path);
  std::vector<unsigned char> bytes{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
  if (in.bad()) throw CkptError("cannot read snapshot file: " + path);
  return bytes;
}

}  // namespace

void load_snapshot_file(Simulator& sim, const std::string& path) {
  const std::vector<unsigned char> bytes = read_snapshot_file(path);
  load_snapshot(sim, bytes.data(), bytes.size());
}

SnapshotInfo inspect_snapshot_file(const std::string& path) {
  const std::vector<unsigned char> bytes = read_snapshot_file(path);
  return inspect_snapshot(bytes.data(), bytes.size());
}

}  // namespace latdiv::ckpt

// Instantiate the full component tree for both archive directions; every
// other ckpt_io in this file is reached from these two.
namespace latdiv {
template void Simulator::ckpt_io(ckpt::CkptWriter&);
template void Simulator::ckpt_io(ckpt::CkptReader&);
}  // namespace latdiv
