// Checkpointed simulation state — save/load of a full Simulator.
//
// A snapshot is a byte-portable image of everything that determines the
// rest of a run: SM/warp/MSHR state, crossbar and coordination queues,
// controller queues (including the warp-group policy's private index),
// per-bank DRAM timing state, instruction-source cursors and RNG streams,
// checker shadow state and observability buffers.  The determinism
// contract, enforced by tests/test_ckpt.cpp and CI: constructing a fresh
// Simulator from the same SimConfig, loading a snapshot taken at cycle C,
// and running to the end produces a RunResult (and obs artifacts)
// byte-identical to the run that never paused.
//
// File layout ("LDSN" format, version 1):
//
//   header (24 bytes, all multi-byte fields little-endian):
//     magic "LDSN", u32 version, u32 config fingerprint, u64 cycle,
//     u32 header_crc (CRC-32 of the preceding 20 bytes)
//   sections (ckpt/archive.hpp framing, in fixed order):
//     "CORE" clock, warmup capture, time-series deltas, ZLD coordinator
//     "SRCE" instruction-source kind tag + source cursors/RNG streams
//     "GPUS" instruction tracker + every SM
//     "ICNT" crossbar queues + coordination network
//     "MCTL" every partition (L2, MSHRs, controller, channel, policy)
//     "CHKR" protocol/invariant checker shadow state (presence flags)
//     "OBSV" obs hub registry/trace/series buffers (presence flag)
//
// The fingerprint is a CRC-32 over the configuration fields that shape
// the serialized structures (GPU geometry, scheduler, seed, workload
// identity).  It deliberately excludes execution-policy knobs — shards,
// idle_fast_forward, max_cycles — which do not affect simulated state, so
// a snapshot can resume under a different shard count or a longer run.
// Deeper mismatches the fingerprint cannot see are caught by the
// per-section geometry checks during load.
//
// All malformed input (bad magic, truncation, CRC mismatch, wrong
// version, wrong fingerprint, geometry mismatch) throws ckpt::CkptError
// with a specific message — never silent UB (mirrors TraceError).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/error.hpp"
#include "common/types.hpp"

namespace latdiv {
class Simulator;
struct SimConfig;
}  // namespace latdiv

namespace latdiv::ckpt {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderBytes = 24;

/// CRC-32 over the curated configuration fields above.  Two configs with
/// equal fingerprints produce structurally compatible snapshots.
[[nodiscard]] std::uint32_t config_fingerprint(const SimConfig& cfg);

/// Serialize the simulator's full state at its current cycle.  Throws
/// CkptError for runs whose state cannot round-trip: custom scheduling
/// policies, trace-recording runs, and non-checkpointable custom
/// instruction sources.
[[nodiscard]] std::vector<unsigned char> save_snapshot(const Simulator& sim);
void save_snapshot_file(const Simulator& sim, const std::string& path);

/// Overwrite `sim`'s state from a snapshot.  `sim` must be freshly
/// constructed from a SimConfig whose fingerprint matches the snapshot's;
/// afterwards sim.now() equals the snapshot cycle and run_to()/finish()
/// continue exactly where the saved run left off.
void load_snapshot(Simulator& sim, const unsigned char* data,
                   std::size_t size);
void load_snapshot_file(Simulator& sim, const std::string& path);

/// Header + section walk without a Simulator (the latdiv-ckpt CLI).
/// Verifies the header CRC and every section frame's CRC; throws
/// CkptError on the first problem.
struct SnapshotSectionInfo {
  std::string tag;
  std::uint64_t payload_bytes = 0;
};
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint32_t fingerprint = 0;
  Cycle cycle = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};
[[nodiscard]] SnapshotInfo inspect_snapshot(const unsigned char* data,
                                            std::size_t size);
[[nodiscard]] SnapshotInfo inspect_snapshot_file(const std::string& path);

}  // namespace latdiv::ckpt
