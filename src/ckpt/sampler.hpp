// SMARTS-style interval sampling for billion-cycle runs.
//
// Detailed simulation of the full run is the accuracy gold standard but
// scales linearly with cycles.  The sampled runner instead alternates
//
//   [ detailed warm-up | measured window |   functional warming   ] ...
//   '---- warm_cycles --'-- detail_cycles --'-- rest of the period --'
//
// over every `period_cycles` span: the warm-up re-heats microarchitectural
// state the previous skip could not track (MSHRs, queue occupancy, bank
// timing), the measured window contributes to the metric estimates, and
// the remainder of the period is skipped via Simulator::teleport() after
// *functional* warming — the instruction source is drained at each SM's
// measured issue rate, touching L1 tags and DRAM row buffers, so cursors
// and long-lived locality survive the jump even though no timing is
// modelled.  The per-SM issue-rate estimator is an integer per-mille
// accumulator refreshed from each detailed segment, which keeps the whole
// procedure deterministic and snapshot-friendly (no floating-point state,
// no wall-clock input).
//
// Accuracy/throughput contract (enforced by bench_throughput and
// tests/test_ckpt_sampling.cpp): on >= 1M-cycle scenario runs the default
// schedule simulates less than a fifth of the cycles in detail (>= 5x
// throughput gain) while keeping the geomean IPC error within 2% of the
// straight-through run.  Sampled mode reports *estimates*, never feeds
// artifacts: it requires checkers and the obs hub disabled (teleport's
// precondition), and refuses configs where the measured windows would not
// fit the period.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/address_map.hpp"

namespace latdiv {
class Simulator;
struct SimConfig;
}  // namespace latdiv

namespace latdiv::ckpt {

struct SamplingConfig {
  /// Measured window length, in global (DRAM command clock) cycles.
  Cycle detail_cycles = 8'000;
  /// Detailed-but-unmeasured warm-up preceding each measured window.
  Cycle warm_cycles = 4'000;
  /// Spacing between window starts; the tail beyond warm-up + window is
  /// skipped.  period == warm + detail degenerates to full detail.
  Cycle period_cycles = 120'000;
  /// Drain the instruction source at the estimated issue rate while
  /// skipping (off = plain teleport; cursors then lag simulated time).
  bool functional_warming = true;
  /// Upper bound on functional-warming draws per SM per skip, so a
  /// mis-estimated rate cannot turn a skip into a slow replay.
  std::uint64_t max_warm_instr_per_sm = 50'000;
};

/// One measured window's raw deltas (cycle spans in global cycles).
struct SampledWindow {
  Cycle start = 0;          ///< first measured cycle
  Cycle cycles = 0;         ///< measured span (== detail_cycles unless clipped)
  std::uint64_t instructions = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_activates = 0;
  std::uint64_t data_bus_busy_cycles = 0;
  double ipc = 0.0;         ///< instructions per *core* cycle in the window
};

struct SampledResult {
  std::vector<SampledWindow> windows;
  Cycle start = 0;  ///< sim.now() when sampling began
  Cycle end = 0;    ///< final cycle (== cfg.max_cycles)
  /// Cycles simulated in detail (warm-ups + windows) — the cost; the
  /// throughput gain over full detail is roughly (end-start)/detailed.
  Cycle detailed_cycles = 0;
  std::uint64_t warm_instructions = 0;  ///< functional-warming draws

  // Whole-run estimates, extrapolated from the measured windows.
  double ipc = 0.0;
  double instructions = 0.0;
  double row_hit_rate = 0.0;
  double bandwidth_utilization = 0.0;
};

/// Drives one prepared simulator (fresh, or restored from a snapshot)
/// from sim.now() to cfg.max_cycles under the sampling schedule.  The
/// simulator must have been constructed with checkers and observability
/// disabled; throws std::invalid_argument otherwise, or for a schedule
/// whose windows do not fit its period.
class SampledRunner {
 public:
  SampledRunner(Simulator& sim, const SamplingConfig& cfg);

  /// Run the whole schedule and aggregate the estimates.  Deterministic:
  /// the same simulator state and config produce the same result (and
  /// leave the simulator in the same state) on every host.
  SampledResult run();

  // Fan-out plumbing (run_sampled, bench): one detailed segment or one
  // warming skip at a time, with the issue-rate estimator optionally
  // frozen so independent workers replay identical skip chains.

  /// Detailed segment [now, now+warm+detail): warm-up, then measure.
  /// Refreshes the issue-rate estimator unless rates are frozen.
  SampledWindow measure_window(Cycle warm, Cycle detail);
  /// Functionally warm the span [now, target), then teleport there.
  void skip_to(Cycle target);
  /// Per-SM issue rates (instructions per 1000 global cycles).
  [[nodiscard]] const std::vector<std::uint64_t>& issue_rates() const {
    return rate_pm_;
  }
  /// Install fixed issue rates; measure_window stops refreshing them.
  void freeze_issue_rates(std::vector<std::uint64_t> rates);
  [[nodiscard]] std::uint64_t warm_instructions() const {
    return warm_instructions_;
  }

 private:
  Simulator& sim_;
  SamplingConfig cfg_;
  AddressMap amap_;
  std::vector<std::uint64_t> rate_pm_;   ///< per-SM instr per 1000 cycles
  std::vector<std::uint64_t> warm_rr_;   ///< per-SM warp round-robin cursor
  std::uint64_t warm_instructions_ = 0;
  bool rates_frozen_ = false;
};

/// Whole-run sampled simulation of `cfg` with `jobs`-way parallelism over
/// the measured windows.  jobs <= 1 runs the sequential SampledRunner
/// schedule.  jobs > 1 is the fan-out mode: simulate the first (priming)
/// window in detail, snapshot once, freeze the issue-rate estimator, and
/// measure every remaining window on a par::WorkerPool — each worker
/// restores the one snapshot, functionally skips to its own window start
/// and measures independently.  The result is deterministic in `cfg` and
/// `scfg` and *independent of the jobs count* (each window's chain never
/// sees another worker); it differs from the sequential schedule only
/// through the frozen rate estimator.
[[nodiscard]] SampledResult run_sampled(const SimConfig& cfg,
                                        const SamplingConfig& scfg,
                                        unsigned jobs = 1);

}  // namespace latdiv::ckpt
