#include "ckpt/sampler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ckpt/snapshot.hpp"
#include "par/worker_pool.hpp"
#include "sim/simulator.hpp"

namespace latdiv::ckpt {

namespace {

struct DramDeltas {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t activates = 0;
  std::uint64_t data_bus_busy = 0;
};

DramDeltas dram_totals(Simulator& sim) {
  DramDeltas t;
  for (std::size_t p = 0; p < sim.config().icnt.partitions; ++p) {
    const ChannelStats& cs = sim.partition(p).mc().channel().stats();
    t.reads += cs.reads;
    t.writes += cs.writes;
    t.activates += cs.activates;
    t.data_bus_busy += cs.data_bus_busy_cycles;
  }
  return t;
}

std::uint64_t total_instructions(Simulator& sim) {
  std::uint64_t n = 0;
  for (std::size_t s = 0; s < sim.config().num_sms; ++s) {
    n += sim.sm(s).stats().instructions;
  }
  return n;
}

/// Extrapolate whole-run estimates from the measured windows.  Each
/// window speaks for its full period (the last period's span may be
/// clipped by the run end), so rates are weighted by covered span; the
/// DRAM fractions pool the window deltas instead (windows are equal
/// length, and ratios of pooled counts are robust to near-idle windows).
void aggregate(SampledResult& r, const SimConfig& sc, Cycle period) {
  double instr_estimate = 0.0;
  double covered = 0.0;
  std::uint64_t cas = 0, acts = 0, busy = 0, win_cycles = 0;
  for (const SampledWindow& w : r.windows) {
    const Cycle period_start = w.start - (w.start - r.start) % period;
    const Cycle period_end = std::min(period_start + period, r.end);
    const double period_span = static_cast<double>(period_end - period_start);
    if (w.cycles > 0) {
      instr_estimate += static_cast<double>(w.instructions) /
                        static_cast<double>(w.cycles) * period_span;
    }
    covered += period_span;
    cas += w.dram_reads + w.dram_writes;
    acts += w.dram_activates;
    busy += w.data_bus_busy_cycles;
    win_cycles += w.cycles;
  }
  r.instructions = instr_estimate;
  if (covered > 0.0) {
    r.ipc = instr_estimate * sc.sm.core_clock_ratio / covered;
  }
  if (cas > 0) {
    // Window edges can split an activate from its column accesses, so the
    // pooled ratio can dip below zero on near-zero-locality workloads;
    // clamp like the detailed metric (which never goes negative).
    r.row_hit_rate = std::max(
        0.0, 1.0 - static_cast<double>(acts) / static_cast<double>(cas));
  }
  if (win_cycles > 0) {
    r.bandwidth_utilization =
        static_cast<double>(busy) /
        (static_cast<double>(win_cycles) * sc.icnt.partitions);
  }
}

}  // namespace

SampledRunner::SampledRunner(Simulator& sim, const SamplingConfig& cfg)
    : sim_(sim), cfg_(cfg), amap_(sim.config().amap) {
  if (cfg_.detail_cycles == 0) {
    throw std::invalid_argument("sampling requires a positive detailed window");
  }
  if (cfg_.period_cycles < cfg_.warm_cycles + cfg_.detail_cycles) {
    throw std::invalid_argument(
        "sampling period must cover warm-up plus the detailed window");
  }
  const SimConfig& sc = sim.config();
  if (sc.check.protocol || sc.check.invariants || sc.obs.enabled()) {
    throw std::invalid_argument(
        "sampled mode requires checkers and the obs hub disabled");
  }
  rate_pm_.assign(sc.num_sms, 0);
  warm_rr_.assign(sc.num_sms, 0);
}

void SampledRunner::freeze_issue_rates(std::vector<std::uint64_t> rates) {
  rate_pm_ = std::move(rates);
  rate_pm_.resize(sim_.config().num_sms, 0);
  rates_frozen_ = true;
}

SampledWindow SampledRunner::measure_window(Cycle warm, Cycle detail) {
  const SimConfig& sc = sim_.config();
  sim_.run_to(sim_.now() + warm);

  SampledWindow w;
  w.start = sim_.now();
  const std::uint64_t instr0 = total_instructions(sim_);
  const DramDeltas d0 = dram_totals(sim_);
  // Per-SM starting counts for the issue-rate estimator.
  std::vector<std::uint64_t> sm0(sc.num_sms);
  for (std::size_t s = 0; s < sc.num_sms; ++s) {
    sm0[s] = sim_.sm(s).stats().instructions;
  }

  sim_.run_to(w.start + detail);
  w.cycles = sim_.now() - w.start;
  w.instructions = total_instructions(sim_) - instr0;
  const DramDeltas d1 = dram_totals(sim_);
  w.dram_reads = d1.reads - d0.reads;
  w.dram_writes = d1.writes - d0.writes;
  w.dram_activates = d1.activates - d0.activates;
  w.data_bus_busy_cycles = d1.data_bus_busy - d0.data_bus_busy;
  if (w.cycles > 0) {
    w.ipc = static_cast<double>(w.instructions) * sc.sm.core_clock_ratio /
            static_cast<double>(w.cycles);
  }

  // Refresh the per-mille issue-rate estimate from this window.
  if (!rates_frozen_ && w.cycles > 0) {
    for (std::size_t s = 0; s < sc.num_sms; ++s) {
      rate_pm_[s] =
          (sim_.sm(s).stats().instructions - sm0[s]) * 1'000 / w.cycles;
    }
  }
  return w;
}

void SampledRunner::skip_to(Cycle target) {
  const SimConfig& sc = sim_.config();
  const Cycle span = target - sim_.now();
  if (cfg_.functional_warming) {
    InstrSource& src = sim_.instr_source();
    for (std::uint32_t s = 0; s < sc.num_sms; ++s) {
      const std::uint64_t want = std::min(rate_pm_[s] * span / 1'000,
                                          cfg_.max_warm_instr_per_sm);
      for (std::uint64_t i = 0; i < want; ++i) {
        const WarpId warp =
            static_cast<WarpId>(warm_rr_[s]++ % sc.sm.warps);
        const WarpInstr instr = src.next(static_cast<SmId>(s), warp);
        ++warm_instructions_;
        if (instr.kind == WarpInstr::Kind::kCompute) continue;
        for (std::uint8_t lane = 0; lane < instr.active_lanes; ++lane) {
          const Addr line = amap_.line_base(instr.lane_addr[lane]);
          if (instr.kind == WarpInstr::Kind::kLoad) {
            // L1 allocates on loads only (write-through no-allocate).
            sim_.sm(s).warm_line(line);
          }
          const DramLoc loc = amap_.decode(line);
          sim_.partition(loc.channel)
              .mc()
              .channel_mut()
              .warm_row(loc.bank, loc.row);
        }
      }
    }
  }
  sim_.teleport(target);
}

SampledResult SampledRunner::run() {
  const SimConfig& sc = sim_.config();
  SampledResult r;
  r.start = sim_.now();
  r.end = sc.max_cycles;

  for (Cycle p = r.start; p < r.end; p += cfg_.period_cycles) {
    const Cycle period_end = std::min(p + cfg_.period_cycles, r.end);
    const Cycle warm = std::min(cfg_.warm_cycles, period_end - p);
    const Cycle detail =
        std::min(cfg_.detail_cycles, period_end - p - warm);
    if (detail == 0) {
      // Degenerate tail: nothing left to measure, finish in detail.
      sim_.run_to(period_end);
      r.detailed_cycles += period_end - p;
      continue;
    }
    const SampledWindow w = measure_window(warm, detail);
    r.detailed_cycles += warm + w.cycles;
    r.windows.push_back(w);
    if (sim_.now() < period_end) skip_to(period_end);
  }

  r.warm_instructions = warm_instructions_;
  aggregate(r, sc, cfg_.period_cycles);
  return r;
}

SampledResult run_sampled(const SimConfig& cfg, const SamplingConfig& scfg,
                          unsigned jobs) {
  if (jobs <= 1) {
    Simulator sim(cfg);
    SampledRunner runner(sim, scfg);
    return runner.run();
  }

  // Fan-out: prime, snapshot once, measure the rest in parallel.
  SampledResult r;
  r.start = 0;
  r.end = cfg.max_cycles;

  const Cycle period = scfg.period_cycles;
  const Cycle prime_span =
      std::min<Cycle>(scfg.warm_cycles + scfg.detail_cycles, cfg.max_cycles);

  Simulator lead(cfg);
  SampledRunner prime(lead, scfg);
  const SampledWindow first = prime.measure_window(
      std::min(scfg.warm_cycles, prime_span),
      prime_span - std::min(scfg.warm_cycles, prime_span));
  r.windows.push_back(first);
  r.detailed_cycles += prime_span;
  const std::vector<unsigned char> snap = save_snapshot(lead);
  const std::vector<std::uint64_t> rates = prime.issue_rates();

  // Remaining period starts, one window each.
  std::vector<Cycle> starts;
  for (Cycle p = period; p < cfg.max_cycles; p += period) starts.push_back(p);
  std::vector<SampledWindow> windows(starts.size());
  std::vector<std::uint64_t> warm_draws(starts.size(), 0);

  par::WorkerPool pool(std::min<unsigned>(jobs - 1, starts.size()));
  pool.run(starts.size(), [&](std::size_t k) {
    Simulator sim(cfg);
    load_snapshot(sim, snap.data(), snap.size());
    SampledRunner worker(sim, scfg);
    worker.freeze_issue_rates(rates);
    worker.skip_to(starts[k]);
    const Cycle period_end = std::min(starts[k] + period, cfg.max_cycles);
    const Cycle warm = std::min(scfg.warm_cycles, period_end - starts[k]);
    const Cycle detail =
        std::min(scfg.detail_cycles, period_end - starts[k] - warm);
    if (detail == 0) return;  // clipped tail: nothing measurable
    windows[k] = worker.measure_window(warm, detail);
    warm_draws[k] = worker.warm_instructions();
  });

  for (std::size_t k = 0; k < windows.size(); ++k) {
    if (windows[k].cycles == 0) continue;  // clipped tail
    r.windows.push_back(windows[k]);
    r.detailed_cycles +=
        std::min(scfg.warm_cycles, cfg.max_cycles - starts[k]) +
        windows[k].cycles;
    r.warm_instructions += warm_draws[k];
  }
  aggregate(r, cfg, period);
  return r;
}

}  // namespace latdiv::ckpt
