// Byte-stream archives for snapshot serialization.
//
// CkptWriter and CkptReader expose the *same* mutating interface — every
// primitive takes a reference, writing it on save and overwriting it on
// load — so one `template <class Ar> void ckpt_io(Ar&)` function per
// component serves both directions and the two can never drift apart.
// `Ar::kIsWriter` lets the rare asymmetric step (sorting an unordered
// container on save, rebuilding a pointer on load) branch at compile
// time.
//
// Encoding is explicit little-endian via common/endian.hpp, so a
// snapshot taken on one machine resumes bit-identically on any other.
// Floating-point values travel as their IEEE-754 bit patterns — a
// restored accumulator is the *same double*, not a near one.
//
// The stream is divided into named sections ("CORE", "SMS ", ...), each
// framed as  fourcc + u32 payload length + payload + u32 CRC-32.  The
// reader verifies tag, length, and CRC per section and every primitive
// is bounds-checked against its section, so a truncated or corrupted
// snapshot raises ckpt::CkptError (error.hpp) instead of reading
// garbage.  tools/latdiv-ckpt walks the same framing generically.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/error.hpp"
#include "common/crc32.hpp"
#include "common/endian.hpp"

namespace latdiv::ckpt {

/// Section frame: 4-byte tag + u32 payload length (header), u32 CRC-32
/// of the payload (trailer).
inline constexpr std::size_t kSectionHeaderBytes = 8;
inline constexpr std::size_t kSectionTrailerBytes = 4;

class CkptWriter {
 public:
  static constexpr bool kIsWriter = true;

  /// Open a new section; closes (length-patches and CRC-stamps) the
  /// previous one.  `tag` must be exactly 4 characters.
  void section(const char* tag) {
    close_section();
    section_start_ = out_.size();
    out_.insert(out_.end(), tag, tag + 4);
    out_.resize(out_.size() + 4);  // length, patched by close_section()
  }

  void u8(const std::uint8_t& v) { out_.push_back(v); }
  void u16(const std::uint16_t& v) {
    unsigned char b[2];
    put_le16(b, v);
    out_.insert(out_.end(), b, b + 2);
  }
  void u32(const std::uint32_t& v) {
    unsigned char b[4];
    put_le32(b, v);
    out_.insert(out_.end(), b, b + 4);
  }
  void u64(const std::uint64_t& v) {
    unsigned char b[8];
    put_le64(b, v);
    out_.insert(out_.end(), b, b + 8);
  }
  void b(const bool& v) { out_.push_back(v ? 1 : 0); }
  /// IEEE-754 bit pattern: the restored value is bit-identical.
  void f64(const double& v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    const std::uint32_t n = static_cast<std::uint32_t>(s.size());
    u32(n);
    out_.insert(out_.end(), s.begin(), s.end());
  }

  /// Finish the stream: closes the open section and returns the bytes.
  [[nodiscard]] std::vector<unsigned char> finish() {
    close_section();
    return std::move(out_);
  }

 private:
  void close_section() {
    if (section_start_ == kNone) return;
    const std::size_t payload_at = section_start_ + kSectionHeaderBytes;
    const std::size_t payload_len = out_.size() - payload_at;
    put_le32(out_.data() + section_start_ + 4,
             static_cast<std::uint32_t>(payload_len));
    unsigned char crc[4];
    put_le32(crc, crc32(out_.data() + payload_at, payload_len));
    out_.insert(out_.end(), crc, crc + 4);
    section_start_ = kNone;
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<unsigned char> out_;
  std::size_t section_start_ = kNone;
};

class CkptReader {
 public:
  static constexpr bool kIsWriter = false;

  CkptReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  /// Enter the next section; the previous one must be fully consumed.
  /// Verifies tag, bounds, and payload CRC before any field is read.
  void section(const char* tag) {
    if (section_end_ != 0 && pos_ != section_end_) {
      throw CkptError("snapshot corrupt: trailing bytes in section '" +
                      current_tag_ + "'");
    }
    if (section_end_ != 0) pos_ += kSectionTrailerBytes;  // skip verified CRC
    if (pos_ + kSectionHeaderBytes > size_) {
      throw CkptError(std::string("snapshot truncated: expected section '") +
                      tag + "'");
    }
    const std::string found(reinterpret_cast<const char*>(data_ + pos_), 4);
    if (found != std::string(tag, 4)) {
      throw CkptError("snapshot corrupt: expected section '" +
                      std::string(tag, 4) + "', found '" + found + "'");
    }
    const std::uint32_t len = get_le32(data_ + pos_ + 4);
    pos_ += kSectionHeaderBytes;
    if (pos_ + len + kSectionTrailerBytes > size_) {
      throw CkptError("snapshot truncated: section '" + found +
                      "' overruns the file");
    }
    if (crc32(data_ + pos_, len) != get_le32(data_ + pos_ + len)) {
      throw CkptError("snapshot corrupt: CRC mismatch in section '" + found +
                      "'");
    }
    current_tag_ = found;
    section_end_ = pos_ + len;
  }

  void u8(std::uint8_t& v) { v = take(1)[0]; }
  void u16(std::uint16_t& v) { v = get_le16(take(2)); }
  void u32(std::uint32_t& v) { v = get_le32(take(4)); }
  void u64(std::uint64_t& v) { v = get_le64(take(8)); }
  void b(bool& v) { v = take(1)[0] != 0; }
  void f64(double& v) {
    std::uint64_t bits = 0;
    u64(bits);
    std::memcpy(&v, &bits, sizeof(v));
  }
  void str(std::string& s) {
    std::uint32_t n = 0;
    u32(n);
    const unsigned char* p = take(n);
    s.assign(reinterpret_cast<const char*>(p), n);
  }

  /// All sections consumed?  Called by load_snapshot after the last read.
  void finish() {
    if (pos_ != section_end_) {
      throw CkptError("snapshot corrupt: trailing bytes in section '" +
                      current_tag_ + "'");
    }
    if (section_end_ != 0) pos_ += kSectionTrailerBytes;
    if (pos_ != size_) {
      throw CkptError("snapshot corrupt: trailing bytes after final section");
    }
  }

 private:
  const unsigned char* take(std::size_t n) {
    if (pos_ + n > section_end_) {
      throw CkptError("snapshot truncated: read past end of section '" +
                      current_tag_ + "'");
    }
    const unsigned char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t section_end_ = 0;
  std::string current_tag_;
};

}  // namespace latdiv::ckpt
