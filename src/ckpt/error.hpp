// Snapshot I/O error type (mirrors workload/trace.hpp's TraceError).
//
// Every malformed, truncated, version-mismatched or otherwise unusable
// snapshot raises a CkptError with a pinned, human-readable message —
// never silent UB, never a partial load.  Sweep points resuming from a
// bad snapshot fail in isolation (the executor catches std::exception);
// CLI tools print the message and exit nonzero.
#pragma once

#include <stdexcept>

namespace latdiv::ckpt {

class CkptError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace latdiv::ckpt
