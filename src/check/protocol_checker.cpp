#include "check/protocol_checker.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace latdiv {

namespace {

/// Format "<cycle> <CMD> bank=<b> row=<r>" into a std::string.
std::string format_cmd(Cycle cycle, const DramCommand& cmd) {
  char buf[96];
  if (cmd.row == kNoRow) {
    std::snprintf(buf, sizeof(buf), "%10" PRIu64 "  %-3s bank=%u", cycle,
                  to_string(cmd.cmd), static_cast<unsigned>(cmd.bank));
  } else {
    std::snprintf(buf, sizeof(buf), "%10" PRIu64 "  %-3s bank=%u row=%u",
                  cycle, to_string(cmd.cmd), static_cast<unsigned>(cmd.bank),
                  static_cast<unsigned>(cmd.row));
  }
  return buf;
}

/// "now=<n> needs <base>+<gap> (<rule> since <event> at <base>)"
std::string gap_detail(const char* what, Cycle now, Cycle base, Cycle gap) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s: now=%" PRIu64 " earliest legal=%" PRIu64
                " (reference event at %" PRIu64 ", required gap %" PRIu64 ")",
                what, now, base + gap, base, gap);
  return buf;
}

}  // namespace

ProtocolChecker::ProtocolChecker(const DramTiming& timing,
                                 bool abort_on_violation)
    : t_(timing),
      abort_on_violation_(abort_on_violation),
      banks_(timing.banks) {
  refresh_due_ = t_.trefi;
}

BankGroupId ProtocolChecker::group_of(BankId bank) const {
  return static_cast<BankGroupId>(bank / t_.banks_per_group);
}

std::string ProtocolChecker::history_string() const {
  std::string out = "recent command history (oldest first):\n";
  for (const auto& [cycle, cmd] : history_) {
    out += "  " + format_cmd(cycle, cmd) + "\n";
  }
  return out;
}

void ProtocolChecker::report(const DramCommand& cmd, Cycle now,
                             const char* rule, const std::string& detail) {
  ProtocolViolation v;
  v.cycle = now;
  v.cmd = cmd;
  v.rule = rule;
  v.detail = detail + "\n" + history_string();
  if (abort_on_violation_) {
    std::fprintf(stderr,
                 "latdiv: GDDR5 protocol violation [%s] at cycle %" PRIu64
                 ": %s\n%s",
                 rule, now, format_cmd(now, cmd).c_str(), v.detail.c_str());
    std::abort();
  }
  violations_.push_back(std::move(v));
}

void ProtocolChecker::on_command(const DramCommand& cmd, Cycle now) {
  ++commands_checked_;

  // Single command bus: strictly one command per cycle, time monotonic.
  if (last_cmd_ != kNoCycle && now <= last_cmd_) {
    report(cmd, now, "command-bus",
           gap_detail("one command per cycle", now, last_cmd_, 1));
  }
  last_cmd_ = now;

  if (cmd.cmd != DramCmd::kRefresh && cmd.bank >= banks_.size()) {
    report(cmd, now, "bank-range", "bank index out of range");
    history_.emplace_back(now, cmd);
    if (history_.size() > kHistoryDepth) history_.pop_front();
    return;
  }

  // tREFI cadence watchdog: the scheduler owes a REF once refresh_due_
  // passes; missing it by a whole further interval is a lost refresh.
  if (t_.refresh_enabled && !overdue_reported_ &&
      cmd.cmd != DramCmd::kRefresh && now >= refresh_due_ + t_.trefi) {
    overdue_reported_ = true;
    report(cmd, now, "tREFI-overdue",
           gap_detail("refresh overdue by a full interval", now,
                      refresh_due_, t_.trefi));
  }

  switch (cmd.cmd) {
    case DramCmd::kActivate:
      check_activate(cmd, now);
      break;
    case DramCmd::kPrecharge:
      check_precharge(cmd, now);
      break;
    case DramCmd::kRead:
    case DramCmd::kWrite:
      check_cas(cmd, now);
      break;
    case DramCmd::kRefresh:
      check_refresh(cmd, now);
      break;
  }

  history_.emplace_back(now, cmd);
  if (history_.size() > kHistoryDepth) history_.pop_front();
}

void ProtocolChecker::check_activate(const DramCommand& cmd, Cycle now) {
  ShadowBank& b = banks_[cmd.bank];
  if (cmd.row == kNoRow) {
    report(cmd, now, "ACT-row", "ACT carries no target row");
    return;
  }
  if (b.row != kNoRow) {
    report(cmd, now, "ACT-open",
           "ACT to a bank with row " + std::to_string(b.row) +
               " still open (missing PRE)");
  }
  if (b.last_act != kNoCycle && now < b.last_act + t_.trc) {
    report(cmd, now, "tRC", gap_detail("ACT->ACT same bank", now, b.last_act,
                                       t_.trc));
  }
  if (b.last_pre != kNoCycle && now < b.last_pre + t_.trp) {
    report(cmd, now, "tRP", gap_detail("PRE->ACT", now, b.last_pre, t_.trp));
  }
  if (last_ref_ != kNoCycle && now < last_ref_ + t_.trfc) {
    report(cmd, now, "tRFC", gap_detail("REF->ACT", now, last_ref_, t_.trfc));
  }
  if (!recent_acts_.empty() && now < recent_acts_.back() + t_.trrd) {
    report(cmd, now, "tRRD",
           gap_detail("ACT->ACT any bank", now, recent_acts_.back(), t_.trrd));
  }
  if (recent_acts_.size() == 4 && now < recent_acts_.front() + t_.tfaw) {
    report(cmd, now, "tFAW",
           gap_detail("fifth ACT inside the four-activate window", now,
                      recent_acts_.front(), t_.tfaw));
  }
  b.row = cmd.row;
  b.last_act = now;
  recent_acts_.push_back(now);
  if (recent_acts_.size() > 4) recent_acts_.pop_front();
}

void ProtocolChecker::check_precharge(const DramCommand& cmd, Cycle now) {
  ShadowBank& b = banks_[cmd.bank];
  if (b.row == kNoRow) {
    report(cmd, now, "PRE-closed",
           "PRE to an already-precharged bank (wasted command slot)");
  }
  if (b.last_act != kNoCycle && now < b.last_act + t_.tras) {
    report(cmd, now, "tRAS", gap_detail("ACT->PRE", now, b.last_act, t_.tras));
  }
  if (b.last_rd != kNoCycle && now < b.last_rd + t_.trtp) {
    report(cmd, now, "tRTP", gap_detail("RD->PRE", now, b.last_rd, t_.trtp));
  }
  if (b.last_wr != kNoCycle) {
    // Write recovery counts from the end of write data, not the command.
    const Cycle data_end = b.last_wr + t_.twl + t_.tburst;
    if (now < data_end + t_.twr) {
      report(cmd, now, "tWR",
             gap_detail("write-data-end->PRE", now, data_end, t_.twr));
    }
  }
  b.row = kNoRow;
  b.last_pre = now;
}

void ProtocolChecker::check_cas(const DramCommand& cmd, Cycle now) {
  ShadowBank& b = banks_[cmd.bank];
  const bool is_read = cmd.cmd == DramCmd::kRead;
  const char* name = is_read ? "RD" : "WR";
  if (b.row == kNoRow) {
    report(cmd, now, is_read ? "RD-closed" : "WR-closed",
           std::string(name) + " to a precharged bank (no open row)");
  } else if (b.row != cmd.row) {
    report(cmd, now, is_read ? "RD-row" : "WR-row",
           std::string(name) + " to row " + std::to_string(cmd.row) +
               " but row " + std::to_string(b.row) + " is open");
  }
  if (b.last_act != kNoCycle && now < b.last_act + t_.trcd) {
    report(cmd, now, "tRCD", gap_detail("ACT->CAS", now, b.last_act, t_.trcd));
  }

  const BankGroupId group = group_of(cmd.bank);
  const Cycle last_same = is_read ? last_rd_any_ : last_wr_any_;
  const BankGroupId last_same_group = is_read ? last_rd_group_ : last_wr_group_;
  if (last_same != kNoCycle) {
    const bool same_group = group == last_same_group;
    const Cycle ccd = same_group ? t_.tccdl : t_.tccds;
    if (now < last_same + ccd) {
      report(cmd, now, same_group ? "tCCDL" : "tCCDS",
             gap_detail("CAS->CAS", now, last_same, ccd));
    }
  }
  if (is_read) {
    // Write-to-read turnaround: WL + BL + tWTR from the WR command.
    const Cycle wtr = t_.twl + t_.tburst + t_.twtr;
    if (last_wr_any_ != kNoCycle && now < last_wr_any_ + wtr) {
      report(cmd, now, "tWTR",
             gap_detail("WR->RD turnaround", now, last_wr_any_, wtr));
    }
  } else {
    // Read-to-write: read data must clear the bus: CL + BL + tRTRS - WL.
    const Cycle rtw = t_.tcas + t_.tburst + t_.trtrs - t_.twl;
    if (last_rd_any_ != kNoCycle && now < last_rd_any_ + rtw) {
      report(cmd, now, "RTW",
             gap_detail("RD->WR turnaround", now, last_rd_any_, rtw));
    }
  }

  // Data-bus occupancy: bursts must not overlap.
  const Cycle data_start = now + (is_read ? t_.tcas : t_.twl);
  if (data_start < data_busy_until_) {
    report(cmd, now, "data-bus",
           gap_detail("data burst overlaps previous burst", data_start,
                      data_busy_until_, 0));
  }
  if (data_start + t_.tburst > data_busy_until_) {
    data_busy_until_ = data_start + t_.tburst;
  }

  if (is_read) {
    b.last_rd = now;
    last_rd_any_ = now;
    last_rd_group_ = group;
  } else {
    b.last_wr = now;
    last_wr_any_ = now;
    last_wr_group_ = group;
  }
}

void ProtocolChecker::check_refresh(const DramCommand& cmd, Cycle now) {
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    const ShadowBank& b = banks_[i];
    if (b.row != kNoRow) {
      report(cmd, now, "REF-open",
             "REF with row " + std::to_string(b.row) + " open in bank " +
                 std::to_string(i));
    }
    if (b.last_pre != kNoCycle && now < b.last_pre + t_.trp) {
      report(cmd, now, "REF-tRP",
             gap_detail("REF before bank finished precharging", now,
                        b.last_pre, t_.trp));
    }
  }
  if (last_ref_ != kNoCycle && now < last_ref_ + t_.trfc) {
    report(cmd, now, "REF-tRFC",
           gap_detail("REF->REF", now, last_ref_, t_.trfc));
  }
  if (t_.refresh_enabled) {
    if (now < refresh_due_) {
      report(cmd, now, "tREFI-early",
             gap_detail("REF before the interval elapsed", now,
                        refresh_due_ - t_.trefi, t_.trefi));
    }
    refresh_due_ += t_.trefi;
    overdue_reported_ = false;
  }
  last_ref_ = now;
}

void ProtocolChecker::finalize(Cycle end) {
  if (t_.refresh_enabled && !overdue_reported_ &&
      end >= refresh_due_ + t_.trefi) {
    overdue_reported_ = true;
    report(DramCommand{DramCmd::kRefresh, 0, kNoRow}, end, "tREFI-missed",
           gap_detail("run ended with a refresh a full interval overdue",
                      end, refresh_due_, t_.trefi));
  }
}

}  // namespace latdiv
