// Independent GDDR5 protocol-conformance checker.
//
// The Channel both answers can_issue() and enforces it, so a bug in its
// timing bookkeeping is invisible to the controller that queries it — the
// two agree by construction.  ProtocolChecker breaks that correlation: it
// observes the raw command stream through Channel::add_command_observer()
// and re-validates every JEDEC constraint from the paper's Table II with
// its own shadow state machine, written directly from the rule definitions
// (last-event timestamps per bank) rather than the Channel's derived
// earliest-next-command representation.
//
// Checked rules:
//   per-bank:   tRC, tRCD, tRP, tRAS, tRTP, tWR, row open/closed state
//   inter-bank: tRRD, tFAW (four-activate window)
//   CAS-to-CAS: tCCDL (same bank group), tCCDS (different groups)
//   turnaround: tWTR (write->read), CL+BL+tRTRS-WL (read->write),
//               data-bus burst overlap
//   refresh:    all banks precharged with tRP elapsed, tRFC occupancy,
//               tREFI cadence (early and overdue)
//   bus:        at most one command per cycle, monotonic time
//
// Violations are recorded with the recent command history attached; with
// abort_on_violation the first one is printed and the process aborts, so
// any simulation wired through the checker turns into a conformance test.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dram/command.hpp"
#include "dram/params.hpp"

namespace latdiv {

struct ProtocolViolation {
  Cycle cycle = 0;
  DramCommand cmd;
  std::string rule;    ///< short rule tag, e.g. "tFAW", "RD-row"
  std::string detail;  ///< human-readable report incl. command history
};

class ProtocolChecker {
 public:
  explicit ProtocolChecker(const DramTiming& timing,
                           bool abort_on_violation = false);

  /// Observe one command (wire as the Channel's command observer).
  void on_command(const DramCommand& cmd, Cycle now);

  /// End-of-run checks that no single command can trigger (a refresh that
  /// simply never happened).
  void finalize(Cycle end);

  [[nodiscard]] const std::vector<ProtocolViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t commands_checked() const {
    return commands_checked_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  /// Formatted dump of the retained command history (newest last).
  [[nodiscard]] std::string history_string() const;

  /// Snapshot serialization of the shadow state machine (src/ckpt), so a
  /// resumed checked run validates the same constraints a straight-through
  /// run would.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct ShadowBank {
    RowId row = kNoRow;
    Cycle last_act = kNoCycle;
    Cycle last_pre = kNoCycle;
    Cycle last_rd = kNoCycle;
    Cycle last_wr = kNoCycle;
  };

  void check_activate(const DramCommand& cmd, Cycle now);
  void check_precharge(const DramCommand& cmd, Cycle now);
  void check_cas(const DramCommand& cmd, Cycle now);
  void check_refresh(const DramCommand& cmd, Cycle now);
  [[nodiscard]] BankGroupId group_of(BankId bank) const;
  void report(const DramCommand& cmd, Cycle now, const char* rule,
              const std::string& detail);

  DramTiming t_;
  bool abort_on_violation_;

  std::vector<ShadowBank> banks_;
  std::deque<Cycle> recent_acts_;  ///< newest at back; at most 4 kept
  Cycle last_rd_any_ = kNoCycle;
  Cycle last_wr_any_ = kNoCycle;
  BankGroupId last_rd_group_ = 0;
  BankGroupId last_wr_group_ = 0;
  Cycle last_ref_ = kNoCycle;
  Cycle last_cmd_ = kNoCycle;
  Cycle data_busy_until_ = 0;
  Cycle refresh_due_ = 0;
  bool overdue_reported_ = false;

  static constexpr std::size_t kHistoryDepth = 32;
  std::deque<std::pair<Cycle, DramCommand>> history_;

  std::uint64_t commands_checked_ = 0;
  std::vector<ProtocolViolation> violations_;
};

}  // namespace latdiv
