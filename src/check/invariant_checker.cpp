#include "check/invariant_checker.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "cache/mshr.hpp"
#include "gpu/partition.hpp"
#include "gpu/tracker.hpp"
#include "mc/controller.hpp"
#include "obs/attrib.hpp"

namespace latdiv {

InvariantChecker::InvariantChecker(bool abort_on_violation)
    : abort_on_violation_(abort_on_violation) {}

void InvariantChecker::report(Cycle now, const char* invariant,
                              const std::string& detail) {
  if (abort_on_violation_) {
    std::fprintf(stderr,
                 "latdiv: invariant violation [%s] at cycle %" PRIu64 ": %s\n",
                 invariant, now, detail.c_str());
    std::abort();
  }
  violations_.push_back(InvariantViolation{now, invariant, detail});
}

void InvariantChecker::expect_eq(std::uint64_t lhs, std::uint64_t rhs,
                                 Cycle now, const char* invariant,
                                 const char* equation) {
  if (lhs == rhs) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 " != %" PRIu64, equation, lhs,
                rhs);
  report(now, invariant, buf);
}

void InvariantChecker::expect_le(std::uint64_t lhs, std::uint64_t rhs,
                                 Cycle now, const char* invariant,
                                 const char* equation) {
  if (lhs <= rhs) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %" PRIu64 " > %" PRIu64, equation, lhs,
                rhs);
  report(now, invariant, buf);
}

void InvariantChecker::audit_controller(const MemoryController& mc,
                                        Cycle now) {
  ++audits_run_;
  const McStats& s = mc.stats();
  const DramTiming& t = mc.channel().timing();

  // Walk the bank command queues once, counting composition and depth.
  std::uint64_t bankq_total = 0;
  std::uint64_t bankq_reads = 0;
  std::uint64_t bankq_writes = 0;
  for (BankId b = 0; b < static_cast<BankId>(t.banks); ++b) {
    const auto& q = mc.bank_queue(b);
    expect_le(q.size(), mc.config().bank_queue_depth, now, "bankq-bound",
              "bank queue depth within configured bound");
    bankq_total += q.size();
    for (const MemRequest& req : q) {
      if (req.kind == ReqKind::kRead) {
        ++bankq_reads;
      } else {
        ++bankq_writes;
      }
    }
  }
  expect_eq(mc.commands_pending(), bankq_total, now, "cmdq-count",
            "commands_pending() == sum of bank queue sizes");
  expect_le(mc.read_queue().size(), mc.read_queue().capacity(), now,
            "readq-bound", "read queue within capacity");
  expect_le(mc.write_queue().size(), mc.write_queue().capacity(), now,
            "writeq-bound", "write queue within capacity");

  // Read conservation: everything accepted is in a queue, in flight on the
  // data bus, or served — nothing lost, nothing duplicated.
  expect_eq(s.reads_accepted,
            mc.read_queue().size() + bankq_reads + mc.inflight_reads() +
                s.reads_served,
            now, "mc-read-conservation",
            "reads_accepted == read_q + bankq reads + inflight + served");
  expect_eq(s.writes_accepted,
            mc.write_queue().size() + bankq_writes + s.writes_served, now,
            "mc-write-conservation",
            "writes_accepted == write_q + bankq writes + served");

  // Channel cross-check: every RD burst completes exactly once, every WR
  // command was counted as served exactly once.
  const ChannelStats& cs = mc.channel().stats();
  expect_eq(cs.reads, s.reads_served + mc.inflight_reads(), now,
            "channel-read-conservation",
            "channel RD commands == reads_served + inflight");
  expect_eq(cs.writes, s.writes_served, now, "channel-write-conservation",
            "channel WR commands == writes_served");
}

void InvariantChecker::audit_partition(const Partition& part, Cycle now) {
  audit_controller(part.mc(), now);

  // MSHR ledger: allocations leave only through release().
  const MshrStats& ms = part.l2_mshr().stats();
  expect_eq(ms.allocations, ms.releases + part.l2_mshr().outstanding(), now,
            "mshr-ledger", "MSHR allocations == releases + outstanding");

  // Every outstanding L2 MSHR line is either a read the controller still
  // owes or a completed fill waiting to install; fills and misses cannot
  // leak between the two structures.
  const McStats& s = part.mc().stats();
  expect_eq(part.l2_mshr().outstanding(),
            (s.reads_accepted - s.reads_served) + part.fills_pending(), now,
            "mshr-mc-conservation",
            "MSHR outstanding == MC reads outstanding + fills pending");
}

void InvariantChecker::audit_tracker(const InstrTracker& tracker,
                                     std::size_t blocked_warps, Cycle now) {
  ++audits_run_;
  expect_eq(tracker.inflight(), blocked_warps, now, "tracker-liveness",
            "live tracker records == warps blocked on loads");
}

void InvariantChecker::audit_attribution(const obs::AttributionProfiler& prof,
                                         Cycle now) {
  ++audits_run_;
  const obs::AttribSummary s = prof.summary();
  // Sum exactness holds per load by construction; a mismatch means a
  // load's components did not telescope to its end-to-end latency.
  expect_eq(s.mismatches, 0, now, "attrib-sum-exact",
            "loads with non-telescoping components == 0");
  // Every finalized DRAM-touching load must join all its request records.
  expect_eq(s.unmatched, 0, now, "attrib-join",
            "warp loads without matching request records == 0");
  expect_eq(s.dropped, 0, now, "attrib-ingest",
            "read requests declined at attribution ingest == 0");
  // Aggregate conservation: per-cause histogram mass == end-to-end mass.
  std::uint64_t cause_sum = 0;
  for (std::size_t i = 0; i < obs::kAttribCauseCount; ++i) {
    cause_sum += s.cause_cycles[i];
  }
  expect_eq(cause_sum, s.total_cycles, now, "attrib-conservation",
            "sum of per-cause cycles == total attributed cycles");
}

}  // namespace latdiv
