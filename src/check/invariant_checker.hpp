// Cross-component conservation auditor for the request path.
//
// The simulator moves every MemRequest through coalescer -> L1/L2 MSHRs ->
// crossbar -> controller queues -> bank command queues -> DRAM channel and
// back.  Each hop hands the request to a different structure, and a bug
// that drops or duplicates a request at a hand-off is silent: the run
// completes and merely reports slightly wrong IPC.  This auditor closes
// the loop with conservation laws that must hold at every cycle boundary:
//
//   controller:  reads_accepted  == read_q + bank-queue reads
//                                   + inflight bursts + reads_served
//                writes_accepted == write_q + bank-queue writes
//                                   + writes_served
//                channel RD commands == reads_served + inflight bursts
//                channel WR commands == writes_served
//                commands_pending() == sum of bank-queue depths, each
//                within its configured bound (no silent overflow)
//   partition:   L2 MSHR allocations == releases + outstanding (no leak)
//                outstanding MSHR lines == controller reads outstanding
//                                           + fills awaiting install
//   tracker:     live InstrTracker records == warps blocked on loads
//
// Violations carry the failing equation with both sides evaluated; with
// abort_on_violation the first one aborts the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace latdiv {

namespace obs {
class AttributionProfiler;
}

class MemoryController;
class Partition;
class InstrTracker;

struct InvariantViolation {
  Cycle cycle = 0;
  std::string invariant;  ///< short tag, e.g. "mc-read-conservation"
  std::string detail;     ///< the equation with both sides evaluated
};

class InvariantChecker {
 public:
  explicit InvariantChecker(bool abort_on_violation = false);

  /// Audit one controller's queues against its channel (callable between
  /// ticks; all invariants hold at cycle boundaries).
  void audit_controller(const MemoryController& mc, Cycle now);

  /// Audit a partition: its controller plus the L2 MSHR <-> controller
  /// conservation law.
  void audit_partition(const Partition& part, Cycle now);

  /// Audit the warp tracker against the number of warps blocked on loads
  /// (sum of Sm::warps_blocked_on_loads() over all SMs).
  void audit_tracker(const InstrTracker& tracker, std::size_t blocked_warps,
                     Cycle now);

  /// Audit the attribution profiler's sum-exactness contract: no load was
  /// ever excluded for a broken telescope or a failed request join, and
  /// the per-cause histogram mass equals the end-to-end mass exactly.
  void audit_attribution(const obs::AttributionProfiler& prof, Cycle now);

  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  /// Snapshot serialization (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  void expect_eq(std::uint64_t lhs, std::uint64_t rhs, Cycle now,
                 const char* invariant, const char* equation);
  void expect_le(std::uint64_t lhs, std::uint64_t rhs, Cycle now,
                 const char* invariant, const char* equation);
  void report(Cycle now, const char* invariant, const std::string& detail);

  bool abort_on_violation_;
  std::uint64_t audits_run_ = 0;
  std::vector<InvariantViolation> violations_;
};

}  // namespace latdiv
