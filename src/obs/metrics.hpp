// Deterministic metric primitives for the introspection layer.
//
// Unlike common/stats.hpp (plain members on hot-path components, mean-only
// accumulators), these are *registry* metrics: named, created on demand,
// exported wholesale as JSON/CSV at end of run.  They exist for
// distribution-shaped questions — "what does the warp latency-divergence
// histogram look like" (the paper's Fig. 3 quantity as a distribution,
// not a mean) — that scalar aggregates cannot answer.
//
// Determinism rules:
//   * histograms use fixed log2 bucket edges — no data-dependent binning,
//     so two runs that see the same samples produce the same buckets and
//     the same (bucket-upper-edge) percentile estimates;
//   * the registry preserves creation order and exports are rendered with
//     integer-only formatting, so exports are byte-stable;
//   * no wall-clock anywhere.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace latdiv::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Snapshot serialization (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (levels: occupancy high-water marks and the like).
class Gauge {
 public:
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

  /// Snapshot serialization (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::uint64_t value_ = 0;
};

/// Histogram over uint64 samples with fixed log2 bucketing:
///   bucket 0      holds exactly the value 0
///   bucket i >= 1 holds [2^(i-1), 2^i)   (i.e. values of bit-width i)
/// 65 buckets cover the full uint64 range, so there is no overflow bin to
/// tune and no sample is ever dropped.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) noexcept {
    ++counts_[bucket_of(v)];
    ++total_;
    sum_ += v;
    if (total_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (other.total_ > 0) {
      if (total_ == 0 || other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
    total_ += other.total_;
    sum_ += other.sum_;
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    std::size_t w = 0;
    while (v != 0) {
      v >>= 1;
      ++w;
    }
    return w;  // == std::bit_width(v)
  }

  /// Smallest value in bucket `i`.
  [[nodiscard]] static std::uint64_t lower_edge(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  /// Largest value in bucket `i` (inclusive).
  [[nodiscard]] static std::uint64_t upper_edge(std::size_t i) noexcept {
    if (i == 0) return 0;
    if (i >= 64) return ~std::uint64_t{0};
    return (std::uint64_t{1} << i) - 1;
  }

  /// Value below-or-at which a fraction `q` (clamped to [0,1]) of the
  /// samples fall, estimated as the inclusive upper edge of the bucket
  /// containing the ceil(q * total)-th sample.  0 for an empty histogram.
  /// Bucket-granular by design: deterministic, and log2 resolution is
  /// right for latency tails.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (total_ == 0) return 0;
    if (q <= 0.0) q = 0.0;
    if (q >= 1.0) q = 1.0;
    auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    if (target < static_cast<double>(total_) * q) ++target;  // ceil
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return upper_edge(i);
    }
    return upper_edge(kBuckets - 1);  // unreachable (total_ > 0)
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return total_ ? min_ : 0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t count_in(std::size_t bucket) const noexcept {
    return counts_[bucket];
  }

  /// Snapshot serialization (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named metric store.  find-or-create by name; pointers returned are
/// stable for the registry's lifetime (instruments are heap nodes), so
/// hot paths resolve a name once and keep the pointer.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Log2Histogram& histogram(const std::string& name);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Log2Histogram* find_histogram(
      const std::string& name) const;

  /// Deterministic JSON dump: counters/gauges as name:value, histograms
  /// with count/sum/min/max, the standard percentile ladder and the
  /// non-empty buckets ([lo, hi] edge pairs).
  [[nodiscard]] std::string to_json() const;

  /// Long-format CSV: kind,name,key,value — one row per scalar, per
  /// percentile, per non-empty bucket.
  [[nodiscard]] std::string to_csv() const;

  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  /// Snapshot serialization (src/ckpt): saved in creation order; loading
  /// find-or-creates by name, so instrument pointers cached by hot paths
  /// before the load stay valid and export order is reproduced.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  // Creation order is export order; lookup is linear (registries hold a
  // handful of instruments and hot paths cache the returned pointer).
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Log2Histogram>> histograms_;
};

}  // namespace latdiv::obs
