#include "obs/trace_sink.hpp"

#include <cinttypes>
#include <cstdio>

namespace latdiv::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

// Event names and categories are static identifiers and track names are
// built from [A-Za-z0-9._-] parts, so escaping is the identity today;
// this keeps the sink honest if a future name sneaks a quote in.
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

ChromeTraceSink::ChromeTraceSink() {
  out_ = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

void ChromeTraceSink::begin_event(char ph, const char* name, const char* cat,
                                  std::uint32_t pid, std::uint32_t tid,
                                  Cycle ts) {
  out_ += events_ == 0 ? "\n" : ",\n";
  ++events_;
  out_ += "{\"ph\":\"";
  out_.push_back(ph);
  out_ += "\",\"name\":\"";
  append_escaped(out_, name);
  out_ += "\",\"cat\":\"";
  append_escaped(out_, cat);
  out_ += "\",\"pid\":";
  append_u64(out_, pid);
  out_ += ",\"tid\":";
  append_u64(out_, tid);
  out_ += ",\"ts\":";
  append_u64(out_, ts);
}

void ChromeTraceSink::emit(const TraceEvent& ev) {
  begin_event(static_cast<char>(ev.ph), ev.name, ev.cat, ev.pid, ev.tid,
              ev.ts);
  if (ev.ph == TraceEvent::Phase::kComplete) {
    out_ += ",\"dur\":";
    append_u64(out_, ev.dur);
  }
  if (!ev.args.empty()) {
    out_ += ",\"args\":{";
    bool first = true;
    for (const TraceArg& a : ev.args) {
      if (!first) out_.push_back(',');
      first = false;
      out_.push_back('"');
      append_escaped(out_, a.key);
      out_ += "\":";
      append_u64(out_, a.value);
    }
    out_.push_back('}');
  }
  out_.push_back('}');
}

void ChromeTraceSink::process_name(std::uint32_t pid, std::string_view name) {
  begin_event('M', "process_name", "__metadata", pid, 0, 0);
  out_ += ",\"args\":{\"name\":\"";
  append_escaped(out_, name);
  out_ += "\"}}";
}

void ChromeTraceSink::thread_name(std::uint32_t pid, std::uint32_t tid,
                                  std::string_view name) {
  begin_event('M', "thread_name", "__metadata", pid, tid, 0);
  out_ += ",\"args\":{\"name\":\"";
  append_escaped(out_, name);
  out_ += "\"}}";
}

const std::string& ChromeTraceSink::finish() {
  if (!finished_) {
    out_ += "\n]}\n";
    finished_ = true;
  }
  return out_;
}

}  // namespace latdiv::obs
