// Trace sinks: where lifecycle events go.
//
// The hub (src/obs/hub.hpp) narrates the simulation as TraceEvents; a
// TraceSink decides their fate.  ChromeTraceSink renders the Chrome
// trace_event JSON that Perfetto / chrome://tracing load directly;
// CountingTraceSink swallows events and counts them (overhead benches,
// tests that only care that emission happened).
//
// ChromeTraceSink buffers the whole rendering in memory: runs are tens of
// thousands of cycles (a few MB of events at worst) and an in-memory
// byte-exact artifact is what the determinism tests and golden checks
// diff.  write_to() persists the buffer at end of run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/event.hpp"

namespace latdiv::obs {

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void emit(const TraceEvent& ev) = 0;

  /// Track naming (trace_event "M" metadata). Names may be built on the
  /// caller's stack; sinks must not retain the view past the call.
  virtual void process_name(std::uint32_t pid, std::string_view name) = 0;
  virtual void thread_name(std::uint32_t pid, std::uint32_t tid,
                           std::string_view name) = 0;
};

/// Chrome trace_event JSON ("JSON Object Format": {"traceEvents": [...]}).
/// Timestamps are emitted in raw simulation cycles; the trace declares
/// "displayTimeUnit":"ns" so viewers show them on a compact scale (one
/// GDDR5 command cycle is 0.667 ns — close enough for reading a
/// timeline; exact conversion is the summarizer's job).
class ChromeTraceSink final : public TraceSink {
 public:
  ChromeTraceSink();

  void emit(const TraceEvent& ev) override;
  void process_name(std::uint32_t pid, std::string_view name) override;
  void thread_name(std::uint32_t pid, std::uint32_t tid,
                   std::string_view name) override;

  /// Close the JSON document (idempotent) and return the full rendering.
  [[nodiscard]] const std::string& finish();

  [[nodiscard]] std::uint64_t events() const { return events_; }

  /// Snapshot serialization (src/ckpt): the rendered buffer travels
  /// verbatim so a resumed trace stays byte-identical.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  void begin_event(char ph, const char* name, const char* cat,
                   std::uint32_t pid, std::uint32_t tid, Cycle ts);

  std::string out_;
  std::uint64_t events_ = 0;
  bool finished_ = false;
};

/// Counts emissions, keeps nothing — the "enabled but weightless" sink
/// used to price the emission path itself.
class CountingTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override { ++events_; }
  void process_name(std::uint32_t, std::string_view) override { ++meta_; }
  void thread_name(std::uint32_t, std::uint32_t, std::string_view) override {
    ++meta_;
  }

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t metadata() const { return meta_; }

 private:
  std::uint64_t events_ = 0;
  std::uint64_t meta_ = 0;
};

}  // namespace latdiv::obs
