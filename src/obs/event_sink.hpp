// McEventSink — the controller-side slice of the introspection surface.
//
// MemoryController narrates request lifecycle events through this
// interface instead of a concrete ObsHub so the sharded core can
// interpose: on worker threads each partition's controller writes into a
// par::ShardEffectBuffer (which implements this interface by recording),
// and the epoch merge replays the buffered events into the real ObsHub in
// deterministic (cycle, phase, partition) order.  In serial runs the
// controller points straight at the hub and behaviour is unchanged.
//
// The pointer stays nullable: a null sink is the disabled path, one
// branch per would-be event, exactly as before.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/command.hpp"
#include "mem/request.hpp"

namespace latdiv::obs {

class McEventSink {
 public:
  virtual ~McEventSink() = default;

  /// Request entered the controller's read/write queue.
  virtual void req_enqueued(const MemRequest& req, Cycle now) = 0;
  /// Request left the controller request queue for its bank's command
  /// queue (end of scheduler queue wait, start of bank service).
  virtual void req_to_bank(const MemRequest& req, Cycle now) = 0;
  /// Read CAS issued for the request (head of its bank's command queue).
  virtual void req_cas(const MemRequest& req, Cycle now) = 0;
  /// Read data burst fully returned to the controller.
  virtual void req_data(const MemRequest& req, Cycle done) = 0;
  /// Write data accepted by the DRAM (the write's terminal event).
  virtual void req_write_retired(const MemRequest& req, Cycle done) = 0;
  /// Row-state command observed on a channel (ACT/PRE/REF).
  virtual void dram_command(ChannelId ch, const DramCommand& cmd,
                            Cycle now) = 0;
  /// Write-drain episode boundaries.
  virtual void drain_begin(ChannelId ch, Cycle now) = 0;
  virtual void drain_end(ChannelId ch, Cycle now, std::uint64_t writes) = 0;
};

}  // namespace latdiv::obs
