// ObsHub — the introspection layer's front door.
//
// One hub per simulation.  Instrumented components (memory controllers,
// the instruction tracker, the simulator's sampler) hold a nullable
// `obs::ObsHub*` and narrate what happens to it; the hub fans events out
// to a TraceSink and folds distributions into a MetricRegistry.  A null
// hub pointer is the disabled path — one branch per would-be event, no
// allocation, no virtual call — which is what keeps observability free
// when off (bench/bench_throughput.cpp prices this).
//
// The hub is strictly an *observer*: it never feeds anything back into
// the simulation, so enabling it cannot perturb simulated state.  All
// event timestamps are true global cycle numbers; idle fast-forward only
// affects *when* the sampler runs (the simulator clamps jumps to sample
// boundaries), never the cycle arithmetic inside events.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "mem/request.hpp"
#include "obs/attrib.hpp"
#include "obs/event_sink.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace latdiv::obs {

/// User-facing switches, embedded in SimConfig as `obs`.
struct ObsConfig {
  bool trace = false;       ///< request-lifecycle tracing (Chrome JSON)
  bool timeseries = false;  ///< sampled per-epoch CSV
  bool attrib = false;      ///< per-warp-load latency attribution
  /// Cycles between time-series samples.  Idle fast-forward is clamped to
  /// these boundaries when sampling, so every epoch is observed.
  Cycle sample_interval = 500;
  std::string trace_path;       ///< write trace JSON here at end of run
  std::string timeseries_path;  ///< write time-series CSV here
  std::string metrics_path;     ///< write MetricRegistry JSON here
  std::string attrib_path;      ///< write attribution JSON here (implies attrib)

  /// Anything on?  Gates hub construction in the Simulator.
  [[nodiscard]] bool enabled() const {
    return trace || timeseries || attrib || !metrics_path.empty() ||
           !attrib_path.empty();
  }
};

class ObsHub : public McEventSink {
 public:
  explicit ObsHub(const ObsConfig& cfg);
  ObsHub(const ObsHub&) = delete;
  ObsHub& operator=(const ObsHub&) = delete;

  /// Replace the trace sink with a caller-owned one (benchmarks price the
  /// emission path with a CountingTraceSink).  Pass nullptr to restore
  /// the configured sink.
  void override_sink(TraceSink* sink);

  [[nodiscard]] bool tracing() const noexcept { return sink_ != nullptr; }
  [[nodiscard]] bool sampling() const noexcept { return cfg_.timeseries; }
  [[nodiscard]] Cycle sample_interval() const noexcept {
    return cfg_.sample_interval;
  }

  // --- request lifecycle (McEventSink; called by mc::MemoryController
  // directly in serial runs, via the epoch-merge replay when sharded) ---
  void req_enqueued(const MemRequest& req, Cycle now) override;
  /// Request moved into its bank's command queue.  Feeds the attribution
  /// profiler only; deliberately emits no trace event, so trace artifacts
  /// are unchanged by the attrib layer.
  void req_to_bank(const MemRequest& req, Cycle now) override;
  void req_cas(const MemRequest& req, Cycle now) override;
  void req_data(const MemRequest& req, Cycle done) override;
  void req_write_retired(const MemRequest& req, Cycle done) override;
  /// Row-state command observed on a channel (ACT/PRE/REF; RD/WR arrive
  /// via req_cas / req_write_retired with request context attached).
  void dram_command(ChannelId ch, const DramCommand& cmd, Cycle now) override;
  /// Write-drain episode boundaries (controller entered / left write mode).
  void drain_begin(ChannelId ch, Cycle now) override;
  void drain_end(ChannelId ch, Cycle now, std::uint64_t writes) override;

  // --- warp lifecycle (called by gpu::InstrTracker) ---
  /// One warp load retired: issue cycle, first/last DRAM completion, the
  /// cycle the warp actually woke, and its coalesced request count.
  /// Feeds the divergence histograms, the attribution profiler (keyed by
  /// `uid`) and (when tracing) the warp track.
  void warp_load(SmId sm, WarpId warp, WarpInstrUid uid, Cycle issued,
                 Cycle first_done, Cycle last_done, Cycle woke,
                 std::uint32_t reqs);

  // --- time series (called by sim::Simulator) ---
  /// Declare column names once before the first sample().  Names must be
  /// stable for the hub's lifetime.
  void set_series_columns(std::vector<std::string> names);
  /// Record one row; `values` must match the declared columns.  Also
  /// mirrored as trace counter events when tracing.
  void sample(Cycle now, std::span<const std::uint64_t> values);

  [[nodiscard]] MetricRegistry& metrics() noexcept { return registry_; }
  [[nodiscard]] const MetricRegistry& metrics() const noexcept {
    return registry_;
  }

  /// Close open episodes at `end` and write all configured output files.
  void finalize(Cycle end);

  // --- artifact access (tests and tools read these in-memory) ---
  /// Finished Chrome JSON (empty string when not tracing to the built-in
  /// sink).  Finishes the sink on first call.
  [[nodiscard]] const std::string& trace_json();
  [[nodiscard]] const std::string& timeseries_csv() const { return series_; }
  [[nodiscard]] std::string metrics_json() const {
    return registry_.to_json();
  }
  [[nodiscard]] std::uint64_t trace_events() const;
  [[nodiscard]] const ObsConfig& config() const noexcept { return cfg_; }

  /// The attribution profiler, or nullptr when `cfg.attrib` is off.
  [[nodiscard]] AttributionProfiler* attrib() noexcept {
    return attrib_.get();
  }
  [[nodiscard]] const AttributionProfiler* attrib() const noexcept {
    return attrib_.get();
  }
  /// Finished attribution artifact ("" when attribution is off).
  [[nodiscard]] std::string attrib_json() const {
    return attrib_ != nullptr ? attrib_->to_json() : std::string{};
  }

  /// Snapshot serialization (src/ckpt): registry, trace buffer, series CSV
  /// and episode state all round-trip so an obs-enabled resume produces
  /// byte-identical artifacts; the sink override and hot-path handles are
  /// re-established at construction.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  void name_warp_track(SmId sm, WarpId warp);
  void name_bank_track(ChannelId ch, std::uint32_t tid);
  [[nodiscard]] bool first_use(std::uint32_t pid, std::uint32_t tid);

  ObsConfig cfg_;
  ChromeTraceSink chrome_;   ///< built-in backend (used when cfg_.trace)
  /// Active sink; null when not tracing.  A sharded core gives each
  /// simulation its own hub, so the sink is never written cross-thread.
  TraceSink* sink_ LATDIV_SHARD_LOCAL = nullptr;

  MetricRegistry registry_;
  /// Latency-attribution layer; null when off (cfg_.attrib gates it).
  std::unique_ptr<AttributionProfiler> attrib_;
  // Hot-path handles into registry_ (stable pointers).
  Log2Histogram* h_gap_ = nullptr;
  Log2Histogram* h_first_ = nullptr;
  Log2Histogram* h_last_ = nullptr;
  Log2Histogram* h_queue_ = nullptr;
  Log2Histogram* h_service_ = nullptr;
  Counter* c_drains_ = nullptr;

  // Track-naming metadata already emitted, keyed (pid << 32) | tid.
  std::unordered_set<std::uint64_t> named_tracks_;
  std::unordered_set<std::uint32_t> named_pids_;

  // Open write-drain episodes, indexed by channel (kNoCycle = closed).
  std::vector<Cycle> drain_start_;

  std::vector<std::string> columns_;
  std::string series_;  ///< CSV buffer (header + one row per sample)
  bool finalized_ = false;
};

}  // namespace latdiv::obs
