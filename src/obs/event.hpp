// Observability event model — the unit flowing from instrumented
// components to a TraceSink.
//
// The taxonomy mirrors Chrome's trace_event format (the only backend we
// ship renders to it directly), because that format is the lingua franca
// of timeline viewers: a file of these events opens unmodified in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
//   kComplete ("X")  a named span [ts, ts+dur) on one track
//   kInstant  ("i")  a point event at ts on one track
//   kCounter  ("C")  a sampled numeric series at ts
//   (metadata  "M"   — track naming — is a dedicated sink call, because
//    its payload is a string, not cycle counters)
//
// Tracks are (pid, tid) pairs.  The simulator's track map:
//
//   pid 0                 counters (time-series samples)
//   pid kPidWarps         one tid per (SM, warp): warp-load lifecycles
//   pid kPidMcBase + ch   memory controller `ch`: one tid per bank for
//                         request stages and DRAM commands, tid kTidCtrl
//                         for controller-wide spans (write drains)
//
// Determinism contract: every field is an integer (cycles, ids, counts).
// Components emit in simulation order, the simulation is single-threaded
// and deterministic, so a run's event stream — and any byte-level
// rendering of it — is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <span>

#include "common/types.hpp"

namespace latdiv::obs {

/// Track-id conventions (see header comment).
inline constexpr std::uint32_t kPidCounters = 0;
inline constexpr std::uint32_t kPidWarps = 1;
inline constexpr std::uint32_t kPidMcBase = 16;
inline constexpr std::uint32_t kTidCtrl = 0xFFFF;

/// One key/value annotation on an event.  Values are integers only —
/// floating-point formatting is a portability hazard for byte-stable
/// traces, and every quantity we record is a cycle count or an id.
struct TraceArg {
  const char* key;
  std::uint64_t value;
};

struct TraceEvent {
  enum class Phase : char {
    kComplete = 'X',
    kInstant = 'i',
    kCounter = 'C',
  };

  Phase ph = Phase::kInstant;
  const char* name = "";  ///< static string (event vocabulary is fixed)
  const char* cat = "";   ///< category for viewer filtering
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  Cycle ts = 0;   ///< start cycle (true simulation time, never rebased)
  Cycle dur = 0;  ///< kComplete only
  std::span<const TraceArg> args;
};

}  // namespace latdiv::obs
