#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace latdiv::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

constexpr double kQuantiles[] = {0.50, 0.90, 0.99};
constexpr const char* kQuantileNames[] = {"p50", "p90", "p99"};

}  // namespace

template <typename T>
static T& find_or_create(std::vector<MetricRegistry::Named<T>>& vec,
                         const std::string& name) {
  for (auto& n : vec) {
    if (n.name == name) return *n.instrument;
  }
  vec.push_back({name, std::make_unique<T>()});
  return *vec.back().instrument;
}

template <typename T>
static const T* find_existing(const std::vector<MetricRegistry::Named<T>>& vec,
                              const std::string& name) {
  for (const auto& n : vec) {
    if (n.name == name) return n.instrument.get();
  }
  return nullptr;
}

Counter& MetricRegistry::counter(const std::string& name) {
  return find_or_create(counters_, name);
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  return find_or_create(gauges_, name);
}

Log2Histogram& MetricRegistry::histogram(const std::string& name) {
  return find_or_create(histograms_, name);
}

const Counter* MetricRegistry::find_counter(const std::string& name) const {
  return find_existing(counters_, name);
}

const Gauge* MetricRegistry::find_gauge(const std::string& name) const {
  return find_existing(gauges_, name);
}

const Log2Histogram* MetricRegistry::find_histogram(
    const std::string& name) const {
  return find_existing(histograms_, name);
}

std::string MetricRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + c.name + "\": ";
    append_u64(out, c.instrument->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& g : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + g.name + "\": ";
    append_u64(out, g.instrument->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& h : histograms_) {
    const Log2Histogram& hist = *h.instrument;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + h.name + "\": {\"count\": ";
    append_u64(out, hist.total());
    out += ", \"sum\": ";
    append_u64(out, hist.sum());
    out += ", \"min\": ";
    append_u64(out, hist.min());
    out += ", \"max\": ";
    append_u64(out, hist.max());
    for (std::size_t q = 0; q < 3; ++q) {
      out += ", \"";
      out += kQuantileNames[q];
      out += "\": ";
      append_u64(out, hist.quantile(kQuantiles[q]));
    }
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (hist.count_in(i) == 0) continue;
      if (!bfirst) out += ", ";
      bfirst = false;
      out += "[";
      append_u64(out, Log2Histogram::lower_edge(i));
      out += ", ";
      append_u64(out, Log2Histogram::upper_edge(i));
      out += ", ";
      append_u64(out, hist.count_in(i));
      out += "]";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricRegistry::to_csv() const {
  std::string out = "kind,name,key,value\n";
  auto row = [&out](const char* kind, const std::string& name,
                    const std::string& key, std::uint64_t value) {
    out += kind;
    out.push_back(',');
    out += name;
    out.push_back(',');
    out += key;
    out.push_back(',');
    append_u64(out, value);
    out.push_back('\n');
  };
  for (const auto& c : counters_) {
    row("counter", c.name, "value", c.instrument->value());
  }
  for (const auto& g : gauges_) {
    row("gauge", g.name, "value", g.instrument->value());
  }
  for (const auto& h : histograms_) {
    const Log2Histogram& hist = *h.instrument;
    row("histogram", h.name, "count", hist.total());
    row("histogram", h.name, "sum", hist.sum());
    row("histogram", h.name, "min", hist.min());
    row("histogram", h.name, "max", hist.max());
    for (std::size_t q = 0; q < 3; ++q) {
      row("histogram", h.name, kQuantileNames[q], hist.quantile(kQuantiles[q]));
    }
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (hist.count_in(i) == 0) continue;
      std::string key = "bucket_le_";
      append_u64(key, Log2Histogram::upper_edge(i));
      row("histogram", h.name, key, hist.count_in(i));
    }
  }
  return out;
}

}  // namespace latdiv::obs
