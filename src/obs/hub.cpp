#include "obs/hub.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/log.hpp"

namespace latdiv::obs {

namespace {

/// Warp-track tid: one lane per (SM, warp).  Warp counts are far below
/// 256 (Table II: 48/SM), so the packing never collides.
[[nodiscard]] std::uint32_t warp_tid(SmId sm, WarpId warp) {
  return (static_cast<std::uint32_t>(sm) << 8) |
         (static_cast<std::uint32_t>(warp) & 0xFF);
}

[[nodiscard]] std::uint32_t mc_pid(ChannelId ch) {
  return kPidMcBase + static_cast<std::uint32_t>(ch);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

ObsHub::ObsHub(const ObsConfig& cfg) : cfg_(cfg) {
  if (cfg_.trace) sink_ = &chrome_;
  if (!cfg_.attrib_path.empty()) cfg_.attrib = true;
  h_gap_ = &registry_.histogram("warp.divergence_gap");
  h_first_ = &registry_.histogram("warp.first_latency");
  h_last_ = &registry_.histogram("warp.last_latency");
  h_queue_ = &registry_.histogram("req.read_queue_wait");
  h_service_ = &registry_.histogram("req.read_service");
  c_drains_ = &registry_.counter("mc.drain_episodes");
  // Created after the base instruments so the metrics-export order of
  // attrib-off runs is untouched.
  if (cfg_.attrib) attrib_ = std::make_unique<AttributionProfiler>(registry_);
}

void ObsHub::override_sink(TraceSink* sink) {
  sink_ = sink != nullptr ? sink : (cfg_.trace ? &chrome_ : nullptr);
}

bool ObsHub::first_use(std::uint32_t pid, std::uint32_t tid) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(pid) << 32) | tid;
  return named_tracks_.insert(key).second;
}

void ObsHub::name_warp_track(SmId sm, WarpId warp) {
  if (named_pids_.insert(kPidWarps).second) {
    sink_->process_name(kPidWarps, "warps");
  }
  const std::uint32_t tid = warp_tid(sm, warp);
  if (!first_use(kPidWarps, tid)) return;
  char buf[32];
  std::snprintf(buf, sizeof buf, "sm%u.w%u", static_cast<unsigned>(sm),
                static_cast<unsigned>(warp));
  sink_->thread_name(kPidWarps, tid, buf);
}

void ObsHub::name_bank_track(ChannelId ch, std::uint32_t tid) {
  const std::uint32_t pid = mc_pid(ch);
  if (named_pids_.insert(pid).second) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "mc%u", static_cast<unsigned>(ch));
    sink_->process_name(pid, buf);
  }
  if (!first_use(pid, tid)) return;
  if (tid == kTidCtrl) {
    sink_->thread_name(pid, tid, "ctrl");
  } else {
    char buf[16];
    std::snprintf(buf, sizeof buf, "bank%u", tid);
    sink_->thread_name(pid, tid, buf);
  }
}

void ObsHub::req_enqueued(const MemRequest& req, Cycle now) {
  if (attrib_ != nullptr) attrib_->req_enqueued(req, now);
  if (sink_ == nullptr) return;
  const std::uint32_t tid = req.loc.bank;
  name_bank_track(req.loc.channel, tid);
  const std::array<TraceArg, 4> args{{
      {"addr", req.addr},
      {"uid", req.tag.instr},
      {"transit",
       req.issued_by_sm == kNoCycle ? 0 : now - req.issued_by_sm},
      {"write", req.kind == ReqKind::kWrite ? 1u : 0u},
  }};
  sink_->emit({TraceEvent::Phase::kInstant, "enq", "req",
               mc_pid(req.loc.channel), tid, now, 0, args});
}

void ObsHub::req_to_bank(const MemRequest& req, Cycle now) {
  // Attribution-only event; no trace emission (see hub.hpp).
  if (attrib_ != nullptr) attrib_->req_to_bank(req, now);
}

void ObsHub::req_cas(const MemRequest& req, Cycle now) {
  if (attrib_ != nullptr) attrib_->req_cas(req, now);
  if (sink_ == nullptr) return;
  const std::uint32_t tid = req.loc.bank;
  name_bank_track(req.loc.channel, tid);
  const Cycle queue_wait =
      req.arrived_at_mc == kNoCycle ? 0 : now - req.arrived_at_mc;
  if (req.kind == ReqKind::kRead) h_queue_->add(queue_wait);
  const std::array<TraceArg, 3> args{{
      {"uid", req.tag.instr},
      {"queue", queue_wait},
      {"row", req.loc.row},
  }};
  sink_->emit({TraceEvent::Phase::kInstant, "cas", "req",
               mc_pid(req.loc.channel), tid, now, 0, args});
}

void ObsHub::req_data(const MemRequest& req, Cycle done) {
  if (attrib_ != nullptr) attrib_->req_data(req, done);
  const Cycle service =
      req.arrived_at_mc == kNoCycle ? 0 : done - req.arrived_at_mc;
  h_service_->add(service);
  if (sink_ == nullptr) return;
  const std::uint32_t tid = req.loc.bank;
  name_bank_track(req.loc.channel, tid);
  const std::array<TraceArg, 3> args{{
      {"uid", req.tag.instr},
      {"service", service},
      {"sm", req.tag.sm},
  }};
  sink_->emit({TraceEvent::Phase::kInstant, "data", "req",
               mc_pid(req.loc.channel), tid, done, 0, args});
}

void ObsHub::req_write_retired(const MemRequest& req, Cycle done) {
  if (sink_ == nullptr) return;
  const std::uint32_t tid = req.loc.bank;
  name_bank_track(req.loc.channel, tid);
  const std::array<TraceArg, 1> args{{{"addr", req.addr}}};
  sink_->emit({TraceEvent::Phase::kInstant, "wr", "req",
               mc_pid(req.loc.channel), tid, done, 0, args});
}

void ObsHub::dram_command(ChannelId ch, const DramCommand& cmd, Cycle now) {
  if (sink_ == nullptr) return;
  switch (cmd.cmd) {
    case DramCmd::kActivate: {
      name_bank_track(ch, cmd.bank);
      const std::array<TraceArg, 1> args{{{"row", cmd.row}}};
      sink_->emit({TraceEvent::Phase::kInstant, "ACT", "dram", mc_pid(ch),
                   cmd.bank, now, 0, args});
      break;
    }
    case DramCmd::kPrecharge: {
      name_bank_track(ch, cmd.bank);
      sink_->emit({TraceEvent::Phase::kInstant, "PRE", "dram", mc_pid(ch),
                   cmd.bank, now, 0, {}});
      break;
    }
    case DramCmd::kRefresh:
      name_bank_track(ch, kTidCtrl);
      sink_->emit({TraceEvent::Phase::kInstant, "REF", "dram", mc_pid(ch),
                   kTidCtrl, now, 0, {}});
      break;
    case DramCmd::kRead:
    case DramCmd::kWrite:
      break;  // carried by req_cas / req_write_retired with context
  }
}

void ObsHub::drain_begin(ChannelId ch, Cycle now) {
  if (attrib_ != nullptr) attrib_->drain_begin(ch, now);
  if (drain_start_.size() <= ch) drain_start_.resize(ch + 1, kNoCycle);
  drain_start_[ch] = now;
  c_drains_->add();
}

void ObsHub::drain_end(ChannelId ch, Cycle now, std::uint64_t writes) {
  if (attrib_ != nullptr) attrib_->drain_end(ch, now);
  if (drain_start_.size() <= ch || drain_start_[ch] == kNoCycle) return;
  const Cycle start = drain_start_[ch];
  drain_start_[ch] = kNoCycle;
  if (sink_ == nullptr) return;
  name_bank_track(ch, kTidCtrl);
  const std::array<TraceArg, 1> args{{{"writes", writes}}};
  sink_->emit({TraceEvent::Phase::kComplete, "drain", "mc", mc_pid(ch),
               kTidCtrl, start, now - start, args});
}

void ObsHub::warp_load(SmId sm, WarpId warp, WarpInstrUid uid, Cycle issued,
                       Cycle first_done, Cycle last_done, Cycle woke,
                       std::uint32_t reqs) {
  if (attrib_ != nullptr) {
    attrib_->warp_load(uid, issued, woke == kNoCycle ? last_done : woke,
                       reqs);
  }
  if (issued == kNoCycle || last_done == kNoCycle) return;
  const Cycle first_lat =
      first_done == kNoCycle ? 0 : first_done - issued;
  const Cycle last_lat = last_done - issued;
  const Cycle gap = last_lat - first_lat;
  h_gap_->add(gap);
  h_first_->add(first_lat);
  h_last_->add(last_lat);
  if (sink_ == nullptr) return;
  name_warp_track(sm, warp);
  const std::array<TraceArg, 4> args{{
      {"reqs", reqs},
      {"first", first_lat},
      {"last", last_lat},
      {"gap", gap},
  }};
  const Cycle end = woke == kNoCycle ? last_done : woke;
  sink_->emit({TraceEvent::Phase::kComplete, "load", "warp", kPidWarps,
               warp_tid(sm, warp), issued, end - issued, args});
}

void ObsHub::set_series_columns(std::vector<std::string> names) {
  LATDIV_ASSERT(columns_.empty(), "series columns declared twice");
  columns_ = std::move(names);
  series_ = "cycle";
  for (const auto& c : columns_) {
    series_.push_back(',');
    series_ += c;
  }
  series_.push_back('\n');
}

void ObsHub::sample(Cycle now, std::span<const std::uint64_t> values) {
  LATDIV_ASSERT(values.size() == columns_.size(),
                "sample width != declared columns");
  append_u64(series_, now);
  for (const std::uint64_t v : values) {
    series_.push_back(',');
    append_u64(series_, v);
  }
  series_.push_back('\n');
  if (sink_ == nullptr) return;
  if (named_pids_.insert(kPidCounters).second) {
    sink_->process_name(kPidCounters, "counters");
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const std::array<TraceArg, 1> args{{{"value", values[i]}}};
    sink_->emit({TraceEvent::Phase::kCounter, columns_[i].c_str(), "ts",
                 kPidCounters, 0, now, 0, args});
  }
}

void ObsHub::finalize(Cycle end) {
  if (finalized_) return;
  finalized_ = true;
  for (ChannelId ch = 0; ch < drain_start_.size(); ++ch) {
    drain_end(ch, end, 0);
  }
  if (!cfg_.trace_path.empty() && cfg_.trace) {
    std::ofstream f(cfg_.trace_path, std::ios::binary);
    if (f) f << chrome_.finish();
  }
  if (!cfg_.timeseries_path.empty() && cfg_.timeseries) {
    std::ofstream f(cfg_.timeseries_path, std::ios::binary);
    if (f) f << series_;
  }
  if (!cfg_.metrics_path.empty()) {
    std::ofstream f(cfg_.metrics_path, std::ios::binary);
    if (f) f << registry_.to_json();
  }
  if (attrib_ != nullptr) {
    attrib_->finalize(end);
    if (!cfg_.attrib_path.empty()) {
      std::ofstream f(cfg_.attrib_path, std::ios::binary);
      if (f) f << attrib_->to_json();
    }
  }
}

const std::string& ObsHub::trace_json() {
  return chrome_.finish();
}

std::uint64_t ObsHub::trace_events() const {
  return chrome_.events();
}

}  // namespace latdiv::obs
