#include "obs/attrib.hpp"

#include <cinttypes>
#include <cstdio>

#include "common/log.hpp"

namespace latdiv::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out.append(buf, static_cast<std::size_t>(n));
}

constexpr const char* kCauseNames[kAttribCauseCount] = {
    "coalescer", "xbar",          "queue", "drain",  "bank_hit",
    "bank_miss", "bank_conflict", "bus",   "return",
};

/// Index into the hit/miss/conflict triple, or 3 for kNone.
std::size_t outcome_index(RowOutcome o) {
  switch (o) {
    case RowOutcome::kHit:
      return 0;
    case RowOutcome::kMiss:
      return 1;
    case RowOutcome::kConflict:
      return 2;
    case RowOutcome::kNone:
      break;
  }
  return 3;
}

}  // namespace

const char* attrib_cause_name(AttribCause c) {
  return kCauseNames[static_cast<std::size_t>(c)];
}

AttributionProfiler::AttributionProfiler(MetricRegistry& registry)
    : registry_(registry) {
  h_total_ = &registry_.histogram("attrib.total");
  for (std::size_t i = 0; i < kAttribCauseCount; ++i) {
    h_cause_[i] = &registry_.histogram(std::string("attrib.") + kCauseNames[i]);
  }
  c_loads_ = &registry_.counter("attrib.loads");
  c_mismatch_ = &registry_.counter("attrib.mismatches");
  c_unmatched_ = &registry_.counter("attrib.unmatched");
  c_dropped_ = &registry_.counter("attrib.dropped");
  c_clamps_ = &registry_.counter("attrib.drain_clamps");
  c_inflight_end_ = &registry_.counter("attrib.inflight_at_end");
  for (std::size_t i = 0; i < kAttribBlameCauses; ++i) {
    c_blame_[i] =
        &registry_.counter(std::string("attrib.blame.") + kCauseNames[i]);
  }
  c_blame_none_ = &registry_.counter("attrib.blame.none");
}

void AttributionProfiler::ensure_channel(ChannelId ch) {
  if (drains_.size() <= ch) drains_.resize(ch + std::size_t{1});
}

std::uint64_t AttributionProfiler::drain_cycles(ChannelId ch,
                                                Cycle now) const {
  if (ch >= drains_.size()) return 0;
  const DrainWin& w = drains_[ch];
  std::uint64_t d = w.cum;
  if (w.open != kNoCycle && now > w.open) d += now - w.open;
  return d;
}

void AttributionProfiler::drain_begin(ChannelId ch, Cycle now) {
  ensure_channel(ch);
  if (drains_[ch].open == kNoCycle) drains_[ch].open = now;
}

void AttributionProfiler::drain_end(ChannelId ch, Cycle now) {
  ensure_channel(ch);
  DrainWin& w = drains_[ch];
  if (w.open == kNoCycle) return;  // episode opened before attach
  if (now > w.open) w.cum += now - w.open;
  w.open = kNoCycle;
}

void AttributionProfiler::req_enqueued(const MemRequest& req, Cycle now) {
  if (req.kind != ReqKind::kRead) return;  // writes have no owning warp load
  if (req.tag.instr == kNoWarpInstr || req.issued_by_sm == kNoCycle ||
      req.issued_by_sm > now) {
    c_dropped_->add();
    return;
  }
  ReqState st;
  st.t0 = req.issued_by_sm;
  st.t1 = now;
  st.drain_at_t1 = drain_cycles(req.loc.channel, now);
  const auto [it, inserted] =
      inflight_.try_emplace({req.tag.instr, req.addr}, st);
  if (!inserted) c_dropped_->add();  // duplicate (uid, line): keep the first
  (void)it;
}

void AttributionProfiler::req_to_bank(const MemRequest& req, Cycle now) {
  if (req.kind != ReqKind::kRead) return;
  const auto it = inflight_.find({req.tag.instr, req.addr});
  if (it == inflight_.end()) return;
  it->second.t2 = now;
  it->second.drain_at_t2 = drain_cycles(req.loc.channel, now);
}

void AttributionProfiler::req_cas(const MemRequest& req, Cycle now) {
  if (req.kind != ReqKind::kRead) return;
  const auto it = inflight_.find({req.tag.instr, req.addr});
  if (it == inflight_.end()) return;
  it->second.t3 = now;
  // The row outcome is classified when the request reaches the head of
  // its bank queue, i.e. strictly after req_to_bank — sample it here.
  it->second.outcome = req.row_outcome;
}

void AttributionProfiler::req_data(const MemRequest& req, Cycle done) {
  if (req.kind != ReqKind::kRead) return;
  const auto it = inflight_.find({req.tag.instr, req.addr});
  if (it == inflight_.end()) return;
  const ReqState st = it->second;
  inflight_.erase(it);

  Acc& a = accs_[req.tag.instr];
  ++a.n;
  const bool monotone = st.t0 != kNoCycle && st.t1 != kNoCycle &&
                        st.t2 != kNoCycle && st.t3 != kNoCycle &&
                        st.t0 <= st.t1 && st.t1 <= st.t2 && st.t2 <= st.t3 &&
                        st.t3 <= done && outcome_index(st.outcome) < 3;
  if (!monotone) {
    a.poisoned = true;
    return;
  }
  const std::uint64_t xbar = st.t1 - st.t0;
  const std::uint64_t queue_raw = st.t2 - st.t1;
  std::uint64_t drain = st.drain_at_t2 >= st.drain_at_t1
                            ? st.drain_at_t2 - st.drain_at_t1
                            : 0;
  if (drain > queue_raw) {  // defensive: D is 1-Lipschitz, cannot happen
    drain = queue_raw;
    c_clamps_->add();
  }
  const std::uint64_t queue = queue_raw - drain;
  const std::uint64_t bank = st.t3 - st.t2;
  const std::uint64_t bus = done - st.t3;

  a.sum_t0 += st.t0;
  a.sum_xbar += xbar;
  a.sum_queue += queue;
  a.sum_drain += drain;
  a.sum_bus += bus;
  a.sum_bank[outcome_index(st.outcome)] += bank;

  if (a.sl_completed == kNoCycle || done > a.sl_completed) {
    a.sl_completed = done;
    a.sl_t0 = st.t0;
    a.sl_xbar = xbar;
    a.sl_queue = queue;
    a.sl_drain = drain;
    a.sl_bank = bank;
    a.sl_bus = bus;
    a.sl_outcome = st.outcome;
  }
}

void AttributionProfiler::warp_load(WarpInstrUid uid, Cycle issued, Cycle woke,
                                    std::uint32_t reqs) {
  const auto it = accs_.find(uid);
  if (it == accs_.end()) {
    c_unmatched_->add();
    return;
  }
  const Acc a = it->second;
  accs_.erase(it);
  if (a.poisoned || a.n != reqs || a.sl_completed == kNoCycle ||
      issued == kNoCycle || woke == kNoCycle || issued > a.sl_t0 ||
      woke < a.sl_completed) {
    c_mismatch_->add();
    return;
  }

  const std::uint64_t total = woke - issued;
  const std::uint64_t coal = a.sl_t0 - issued;
  const std::uint64_t ret = woke - a.sl_completed;
  // The telescope: holds by construction over the slowest lane's stamps.
  if (coal + a.sl_xbar + a.sl_queue + a.sl_drain + a.sl_bank + a.sl_bus +
          ret !=
      total) {
    c_mismatch_->add();
    return;
  }

  h_total_->add(total);
  h_cause_[static_cast<std::size_t>(AttribCause::kCoalescer)]->add(coal);
  h_cause_[static_cast<std::size_t>(AttribCause::kXbar)]->add(a.sl_xbar);
  h_cause_[static_cast<std::size_t>(AttribCause::kQueue)]->add(a.sl_queue);
  h_cause_[static_cast<std::size_t>(AttribCause::kDrain)]->add(a.sl_drain);
  // The slowest lane saw exactly one row outcome; only that histogram
  // takes its bank component (sums stay conserved, counts differ).
  h_cause_[static_cast<std::size_t>(AttribCause::kBankHit) +
           outcome_index(a.sl_outcome)]
      ->add(a.sl_bank);
  h_cause_[static_cast<std::size_t>(AttribCause::kBus)]->add(a.sl_bus);
  h_cause_[static_cast<std::size_t>(AttribCause::kReturn)]->add(ret);
  c_loads_->add();

  // Blame: score(c) = n·comp_c(slowest) − Σ comp_c(lane); positive iff the
  // slowest lane's component exceeds the lane mean.  Integer, division-free
  // (scores share the factor n), ties toward the earlier stage.
  if (a.n >= 2) {
    const auto n64 = static_cast<std::int64_t>(a.n);
    std::int64_t score[kAttribBlameCauses];
    score[0] = n64 * static_cast<std::int64_t>(a.sl_t0) -
               static_cast<std::int64_t>(a.sum_t0);  // issued cancels out
    score[1] = n64 * static_cast<std::int64_t>(a.sl_xbar) -
               static_cast<std::int64_t>(a.sum_xbar);
    score[2] = n64 * static_cast<std::int64_t>(a.sl_queue) -
               static_cast<std::int64_t>(a.sum_queue);
    score[3] = n64 * static_cast<std::int64_t>(a.sl_drain) -
               static_cast<std::int64_t>(a.sum_drain);
    for (std::size_t o = 0; o < 3; ++o) {
      const std::int64_t sl =
          outcome_index(a.sl_outcome) == o
              ? n64 * static_cast<std::int64_t>(a.sl_bank)
              : 0;
      score[4 + o] = sl - static_cast<std::int64_t>(a.sum_bank[o]);
    }
    score[7] = n64 * static_cast<std::int64_t>(a.sl_bus) -
               static_cast<std::int64_t>(a.sum_bus);

    std::size_t best = kAttribBlameCauses;
    for (std::size_t c = 0; c < kAttribBlameCauses; ++c) {
      if (score[c] > 0 && (best == kAttribBlameCauses ||
                           score[c] > score[best])) {
        best = c;
      }
    }
    if (best != kAttribBlameCauses) {
      c_blame_[best]->add();
      return;
    }
  }
  c_blame_none_->add();
}

void AttributionProfiler::finalize(Cycle end) {
  (void)end;
  c_inflight_end_->add(inflight_.size() + accs_.size());
  inflight_.clear();
  accs_.clear();
}

AttribSummary AttributionProfiler::summary() const {
  AttribSummary s;
  s.enabled = true;
  s.loads = c_loads_->value();
  s.mismatches = c_mismatch_->value();
  s.unmatched = c_unmatched_->value();
  s.dropped = c_dropped_->value();
  s.drain_clamps = c_clamps_->value();
  s.inflight_at_end = c_inflight_end_->value();
  s.total_cycles = h_total_->sum();
  for (std::size_t i = 0; i < kAttribCauseCount; ++i) {
    s.cause_cycles[i] = h_cause_[i]->sum();
    s.cause_p99[i] = h_cause_[i]->quantile(0.99);
  }
  for (std::size_t i = 0; i < kAttribBlameCauses; ++i) {
    s.blame[i] = c_blame_[i]->value();
  }
  s.blame_none = c_blame_none_->value();
  return s;
}

std::string AttributionProfiler::to_json() const {
  const AttribSummary s = summary();
  std::uint64_t cause_sum = 0;
  for (std::size_t i = 0; i < kAttribCauseCount; ++i) {
    cause_sum += s.cause_cycles[i];
  }
  std::string out = "{\n  \"attrib\": {\n";
  const auto field = [&out](const char* name, std::uint64_t v,
                            bool comma = true) {
    out += "    \"";
    out += name;
    out += "\": ";
    append_u64(out, v);
    if (comma) out += ",";
    out += "\n";
  };
  field("loads", s.loads);
  field("mismatches", s.mismatches);
  field("unmatched", s.unmatched);
  field("dropped", s.dropped);
  field("drain_clamps", s.drain_clamps);
  field("inflight_at_end", s.inflight_at_end);
  field("total_cycles", s.total_cycles);
  field("cause_cycles_sum", cause_sum);
  out += "    \"residual\": ";
  append_i64(out, static_cast<std::int64_t>(s.total_cycles) -
                      static_cast<std::int64_t>(cause_sum));
  out += ",\n    \"causes\": {";
  for (std::size_t i = 0; i < kAttribCauseCount; ++i) {
    const Log2Histogram& h = *h_cause_[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      \"";
    out += kCauseNames[i];
    out += "\": {\"count\": ";
    append_u64(out, h.total());
    out += ", \"sum\": ";
    append_u64(out, h.sum());
    out += ", \"min\": ";
    append_u64(out, h.min());
    out += ", \"max\": ";
    append_u64(out, h.max());
    out += ", \"p50\": ";
    append_u64(out, h.quantile(0.50));
    out += ", \"p90\": ";
    append_u64(out, h.quantile(0.90));
    out += ", \"p99\": ";
    append_u64(out, h.quantile(0.99));
    out += "}";
  }
  out += "\n    },\n    \"blame\": {";
  for (std::size_t i = 0; i < kAttribBlameCauses; ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "      \"";
    out += kCauseNames[i];
    out += "\": ";
    append_u64(out, s.blame[i]);
  }
  out += ",\n      \"none\": ";
  append_u64(out, s.blame_none);
  out += "\n    }\n  }\n}\n";
  return out;
}

}  // namespace latdiv::obs
