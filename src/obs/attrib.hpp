// AttributionProfiler — per-warp-load latency decomposition.
//
// The paper's argument is causal: warp-aware scheduling wins because it
// removes *queueing-induced* divergence, not row-conflict or bus
// divergence.  This profiler turns that claim into a measured quantity.
// It timestamps every read request through its lifecycle phases
// (coalescer serialization, crossbar transit, controller queue wait with
// the write-drain overlap split out, bank ACT/PRE service classified by
// row outcome, data-bus transfer, and return/coordination delay) and
// decomposes each warp-load's observed latency into those causes.
//
// Contract: the per-cause components of every attributed load sum
// *exactly* to its end-to-end latency (woke − issued).  The decomposition
// telescopes over the slowest lane's timestamps
//
//   issued ≤ t0 (left coalescer) ≤ t1 (entered MC queue)
//          ≤ t2 (entered bank queue) ≤ t3 (CAS) ≤ t4 (data) ≤ woke
//
// so the invariant holds by construction in integer arithmetic; loads
// whose timestamps are ever non-monotonic (there are none in practice)
// are counted in `attrib.mismatches` and excluded wholesale, which keeps
// the aggregate conservation law
//
//   Σ_cause hist(cause).sum() == hist(total).sum()
//
// exact as well.  Both are enforced by InvariantChecker::audit_attribution
// during every audited run and property-tested across policies.
//
// Divergence blame: for each load with ≥ 2 requests, the cause whose
// slowest-lane component exceeds the per-lane mean component by the
// largest margin — evaluated division-free as
//   score(c) = n · comp_c(slowest) − Σ_lanes comp_c(lane)
// (the sign of score/n is the slowest-vs-mean excess) — is charged one
// blame count.  Ties break toward the earlier pipeline stage; loads with
// no positive score (perfectly uniform lanes) count as `blame.none`.
//
// Strictly an observer: every entry point takes const refs, folds into
// private maps and MetricRegistry instruments, and feeds nothing back.
// Integer arithmetic only; std::map only — exports are byte-stable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"
#include "obs/metrics.hpp"

namespace latdiv::obs {

/// Latency causes, in pipeline order (blame ties break toward the lower
/// index, i.e. the earlier stage).
enum class AttribCause : std::uint8_t {
  kCoalescer = 0,  ///< SM coalescer serialization (warp issue → left SM)
  kXbar,           ///< crossbar + L2 transit (left SM → MC request queue)
  kQueue,          ///< MC request-queue wait, minus the drain overlap
  kDrain,          ///< write-drain episodes overlapping the queue wait
  kBankHit,        ///< bank service, row already open (CAS only)
  kBankMiss,       ///< bank service, ACT required
  kBankConflict,   ///< bank service, PRE + ACT required
  kBus,            ///< CAS → last data beat
  kReturn,         ///< slowest data → warp wake (fill + response transit)
};

inline constexpr std::size_t kAttribCauseCount = 9;
/// Causes eligible for blame (kReturn is load-level, not per-lane).
inline constexpr std::size_t kAttribBlameCauses = 8;

[[nodiscard]] const char* attrib_cause_name(AttribCause c);

/// Plain-value roll-up mirrored onto RunResult and the exp executor.
struct AttribSummary {
  bool enabled = false;
  std::uint64_t loads = 0;           ///< warp loads fully attributed
  std::uint64_t mismatches = 0;      ///< loads excluded: broken telescope
  std::uint64_t unmatched = 0;       ///< loads with no/incomplete lane data
  std::uint64_t dropped = 0;         ///< requests declined at ingest
  std::uint64_t drain_clamps = 0;    ///< drain overlap clamped to queue wait
  std::uint64_t inflight_at_end = 0; ///< requests/loads still open at finalize
  std::uint64_t total_cycles = 0;    ///< Σ end-to-end latency over loads
  std::uint64_t cause_cycles[kAttribCauseCount] = {};
  std::uint64_t cause_p99[kAttribCauseCount] = {};
  std::uint64_t blame[kAttribBlameCauses] = {};
  std::uint64_t blame_none = 0;
};

class AttributionProfiler {
 public:
  /// Registers the attrib.* instruments (stable creation order — part of
  /// the metrics-export byte format).
  explicit AttributionProfiler(MetricRegistry& registry);
  AttributionProfiler(const AttributionProfiler&) = delete;
  AttributionProfiler& operator=(const AttributionProfiler&) = delete;

  // --- request lifecycle (forwarded by ObsHub; const — observer purity) ---
  void req_enqueued(const MemRequest& req, Cycle now);
  void req_to_bank(const MemRequest& req, Cycle now);
  void req_cas(const MemRequest& req, Cycle now);
  void req_data(const MemRequest& req, Cycle done);
  void drain_begin(ChannelId ch, Cycle now);
  void drain_end(ChannelId ch, Cycle now);

  // --- warp lifecycle (forwarded by ObsHub from the InstrTracker) ---
  void warp_load(WarpInstrUid uid, Cycle issued, Cycle woke,
                 std::uint32_t reqs);

  /// Count still-open requests/loads (truncated runs) into
  /// attrib.inflight_at_end.  Idempotent per run end.
  void finalize(Cycle end);

  [[nodiscard]] AttribSummary summary() const;

  /// Deterministic attribution artifact: integer-only JSON with the
  /// per-cause distribution table, blame counts and the audit fields
  /// (mismatches / unmatched / residual) CI greps for.
  [[nodiscard]] std::string to_json() const;

  /// Snapshot serialization (src/ckpt): drain windows and open request /
  /// load state round-trip so a resume attributes byte-identically; the
  /// registry instruments ride in the hub's MetricRegistry section.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  /// Per-read lifecycle timestamps (t0/t1 from the request's own stamps,
  /// t2/t3 observed, drain counter sampled at t1/t2).
  struct ReqState {
    Cycle t0 = kNoCycle;  ///< left coalescer (issued_by_sm)
    Cycle t1 = kNoCycle;  ///< entered MC request queue (arrived_at_mc)
    Cycle t2 = kNoCycle;  ///< entered bank command queue
    Cycle t3 = kNoCycle;  ///< CAS issued
    std::uint64_t drain_at_t1 = 0;
    std::uint64_t drain_at_t2 = 0;
    RowOutcome outcome = RowOutcome::kNone;
  };

  /// Per-load accumulator, folded lane by lane as reads complete.
  struct Acc {
    std::uint32_t n = 0;
    bool poisoned = false;  ///< a lane broke monotonicity; exclude the load
    std::uint64_t sum_t0 = 0;
    std::uint64_t sum_xbar = 0;
    std::uint64_t sum_queue = 0;
    std::uint64_t sum_drain = 0;
    std::uint64_t sum_bus = 0;
    std::uint64_t sum_bank[3] = {};  ///< by outcome: hit, miss, conflict
    // Slowest lane (max completion; first-seen wins ties — event delivery
    // order is the serial order, so this is shard-invariant).
    Cycle sl_completed = kNoCycle;
    Cycle sl_t0 = 0;
    std::uint64_t sl_xbar = 0;
    std::uint64_t sl_queue = 0;
    std::uint64_t sl_drain = 0;
    std::uint64_t sl_bank = 0;
    std::uint64_t sl_bus = 0;
    RowOutcome sl_outcome = RowOutcome::kNone;
  };

  /// Per-channel cumulative write-drain cycles: closed episodes plus the
  /// open one up to `now`.  1-Lipschitz in now, so an interval's overlap
  /// D(t2) − D(t1) never exceeds t2 − t1.
  struct DrainWin {
    std::uint64_t cum = 0;
    Cycle open = kNoCycle;  ///< episode start, kNoCycle = closed
  };

  [[nodiscard]] std::uint64_t drain_cycles(ChannelId ch, Cycle now) const;
  void ensure_channel(ChannelId ch);

  MetricRegistry& registry_;
  // Hot-path handles (stable registry pointers).
  Log2Histogram* h_total_ = nullptr;
  Log2Histogram* h_cause_[kAttribCauseCount] = {};
  Counter* c_loads_ = nullptr;
  Counter* c_mismatch_ = nullptr;
  Counter* c_unmatched_ = nullptr;
  Counter* c_dropped_ = nullptr;
  Counter* c_clamps_ = nullptr;
  Counter* c_inflight_end_ = nullptr;
  Counter* c_blame_[kAttribBlameCauses] = {};
  Counter* c_blame_none_ = nullptr;

  std::vector<DrainWin> drains_;
  // std::map (ordered) so snapshot serialization iterates deterministically.
  std::map<std::pair<WarpInstrUid, Addr>, ReqState> inflight_;
  std::map<WarpInstrUid, Acc> accs_;
};

}  // namespace latdiv::obs
