// GDDR5 power model following the Micron power-calculator methodology
// (TN-41-01) with GDDR5-class current/voltage constants, as the paper does
// in §VI-B.
//
// Energy is attributed per event class from the ChannelStats counters:
//   activate/precharge pairs   (IDD0 net of background)
//   read / write bursts        (IDD4R/IDD4W net of active standby)
//   background                 (IDD3N when any bank open, IDD2N otherwise)
//   refresh                    (IDD5 net of precharge standby)
//   I/O + termination          (pJ/bit on the 64-bit POD15 interface —
//                               the dominant term in GDDR5, which is why
//                               the paper finds a 16% row-hit-rate drop
//                               costs only ~1.8% device power)
//
// Two x32 devices operate in tandem per channel; array terms are scaled by
// the device count, I/O is modelled per channel.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/channel.hpp"
#include "dram/params.hpp"

namespace latdiv {

struct Gddr5PowerParams {
  double vdd = 1.5;      ///< volts
  double idd0 = 0.090;   ///< amps, one-bank ACT->PRE cycling
  double idd2n = 0.035;  ///< amps, precharge standby
  double idd3n = 0.045;  ///< amps, active standby
  double idd4r = 0.180;  ///< amps, burst read
  double idd4w = 0.175;  ///< amps, burst write
  double idd5 = 0.150;   ///< amps, refresh
  double io_pj_per_bit = 8.0;  ///< driver + ODT energy per transferred bit
  std::uint32_t devices_per_channel = 2;
};

/// Average power in watts over the measured interval, per channel.
struct PowerBreakdown {
  double background = 0.0;
  double activate = 0.0;
  double read = 0.0;
  double write = 0.0;
  double refresh = 0.0;
  double io = 0.0;

  [[nodiscard]] double total() const noexcept {
    return background + activate + read + write + refresh + io;
  }
};

class PowerModel {
 public:
  PowerModel(const Gddr5PowerParams& params, const DramParams& dram);

  /// Average power for one channel whose counters are `stats`, observed
  /// over `elapsed_cycles` command-clock cycles.
  [[nodiscard]] PowerBreakdown compute(const ChannelStats& stats,
                                       Cycle elapsed_cycles,
                                       std::uint32_t line_bytes = 128) const;

 private:
  Gddr5PowerParams p_;
  DramParams d_;
};

}  // namespace latdiv
