// GDDR5 device timing and geometry parameters (paper Table II; Hynix
// H5GQ1H24AFR-class part).
//
// Parameters are specified in nanoseconds or command-clock cycles exactly
// as the datasheet/paper gives them, then converted once into integer
// command-clock cycles (tCK = 0.667 ns) by `DramTiming::from()`.  All
// runtime timing math is integer cycles.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace latdiv {

/// Raw parameters in datasheet units.
struct DramParams {
  double tck_ns = 0.667;  ///< command/address clock period (1.5 GHz)

  // Core array timings (ns).
  double trc_ns = 40.0;    ///< ACT to ACT, same bank
  double trcd_ns = 12.0;   ///< ACT to RD/WR
  double trp_ns = 12.0;    ///< PRE to ACT
  double tcas_ns = 12.0;   ///< RD to first data (CL)
  double tras_ns = 28.0;   ///< ACT to PRE
  double trrd_ns = 5.5;    ///< ACT to ACT, different banks
  double twtr_ns = 5.0;    ///< end of write data to RD
  double tfaw_ns = 23.0;   ///< four-activate window
  double trtp_ns = 2.0;    ///< RD to PRE
  double twr_ns = 12.0;    ///< end of write data to PRE (datasheet value;
                           ///< not listed in the paper's table but required
                           ///< for a legal WR->PRE sequence)

  // Interface timings (command-clock cycles).
  std::uint32_t twl_ck = 4;    ///< WR to first data (write latency)
  std::uint32_t tburst_ck = 2; ///< data burst occupancy per 128B access
  std::uint32_t trtrs_ck = 1;  ///< rank-to-rank / bus turnaround gap
  std::uint32_t tccdl_ck = 3;  ///< CAS to CAS, same bank group
  std::uint32_t tccds_ck = 2;  ///< CAS to CAS, different bank groups

  // Geometry.
  std::uint32_t banks = 16;
  std::uint32_t banks_per_group = 4;

  /// Refresh: GDDR5 tREFI ~ 1.9 us, tRFC ~ 65 ns for a 1Gb part.  Refresh
  /// is modelled (it steals bank time) but can be disabled for unit tests
  /// that need exact cycle arithmetic.
  double trefi_ns = 1900.0;
  double trfc_ns = 65.0;
  bool refresh_enabled = true;
};

/// The paper's GDDR5 part (Table II defaults).
[[nodiscard]] DramParams gddr5_params();

/// A DDR3-1600 part for the §II-B contrast study: half the banks, no
/// bank-group fast path (tCCD is uniformly long), longer bursts, a much
/// tighter activate budget (higher tFAW relative to row service time) —
/// the properties the paper cites to motivate GDDR5's suitability for
/// frequent row activations.
[[nodiscard]] DramParams ddr3_1600_params();

/// All timings converted to integer command-clock cycles (ceil).
struct DramTiming {
  Cycle trc, trcd, trp, tcas, tras, trrd, twtr, tfaw, trtp, twr;
  Cycle twl, tburst, trtrs, tccdl, tccds;
  Cycle trefi, trfc;
  std::uint32_t banks, banks_per_group;
  bool refresh_enabled;

  static DramTiming from(const DramParams& p) noexcept;

  /// Read-to-write command gap on a shared bus:
  /// data bus must be clear: CL + BL + turnaround - WL.
  [[nodiscard]] Cycle read_to_write() const noexcept {
    return tcas + tburst + trtrs - twl;
  }
  /// Write-to-read gap (same rank): WL + BL + tWTR.
  [[nodiscard]] Cycle write_to_read() const noexcept {
    return twl + tburst + twtr;
  }
};

}  // namespace latdiv
