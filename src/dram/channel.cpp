#include "dram/channel.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace latdiv {

Channel::Channel(const DramTiming& timing)
    : timing_(timing),
      bank_row_(timing.banks, kNoRow),
      bank_earliest_act_(timing.banks, 0),
      bank_earliest_cas_(timing.banks, 0),
      bank_earliest_pre_(timing.banks, 0) {
  next_refresh_at_ = timing_.trefi;
  stats_.per_bank_activates.assign(timing.banks, 0);
  stats_.per_bank_precharges.assign(timing.banks, 0);
}

RowId Channel::open_row(BankId bank) const {
  LATDIV_ASSERT(bank < bank_row_.size(), "bank index out of range");
  return bank_row_[bank];
}

bool Channel::all_banks_closed() const {
  return std::all_of(bank_row_.begin(), bank_row_.end(),
                     [](RowId row) { return row == kNoRow; });
}

bool Channel::refresh_due(Cycle now) const {
  return timing_.refresh_enabled && now >= next_refresh_at_;
}

bool Channel::act_legal(BankId bank, Cycle now) const {
  if (bank_row_[bank] != kNoRow) return false;       // must be precharged
  if (now < bank_earliest_act_[bank]) return false;  // tRP / tRC / tRFC
  if (last_act_ != kNoCycle && now < last_act_ + timing_.trrd) return false;
  const Cycle fourth_newest = act_window_[act_window_pos_];
  if (fourth_newest != kNoCycle && now < fourth_newest + timing_.tfaw) {
    return false;
  }
  return true;
}

bool Channel::cas_legal(const DramCommand& cmd, Cycle now) const {
  const RowId row = bank_row_[cmd.bank];
  if (row == kNoRow || row != cmd.row) return false;  // row must be open
  if (now < bank_earliest_cas_[cmd.bank]) return false;  // tRCD
  const auto group = static_cast<BankGroupId>(cmd.bank / timing_.banks_per_group);
  if (cmd.cmd == DramCmd::kRead) {
    if (last_rd_cmd_ != kNoCycle) {
      const Cycle ccd = (group == last_rd_group_) ? timing_.tccdl : timing_.tccds;
      if (now < last_rd_cmd_ + ccd) return false;
    }
    if (last_wr_cmd_ != kNoCycle &&
        now < last_wr_cmd_ + timing_.write_to_read()) {
      return false;
    }
  } else {
    if (last_wr_cmd_ != kNoCycle) {
      const Cycle ccd = (group == last_wr_group_) ? timing_.tccdl : timing_.tccds;
      if (now < last_wr_cmd_ + ccd) return false;
    }
    if (last_rd_cmd_ != kNoCycle &&
        now < last_rd_cmd_ + timing_.read_to_write()) {
      return false;
    }
  }
  return true;
}

bool Channel::can_issue(const DramCommand& cmd, Cycle now) const {
  LATDIV_ASSERT(cmd.bank < bank_row_.size() || cmd.cmd == DramCmd::kRefresh,
                "bank index out of range");
  switch (cmd.cmd) {
    case DramCmd::kActivate:
      return act_legal(cmd.bank, now);
    case DramCmd::kPrecharge:
      return bank_row_[cmd.bank] != kNoRow &&
             now >= bank_earliest_pre_[cmd.bank];
    case DramCmd::kRead:
    case DramCmd::kWrite:
      return cas_legal(cmd, now);
    case DramCmd::kRefresh:
      if (!all_banks_closed()) return false;
      // Every bank's precharge must have completed (earliest_act embeds
      // tRP after a PRE).
      return std::all_of(bank_earliest_act_.begin(), bank_earliest_act_.end(),
                         [now](Cycle at) { return now >= at; });
  }
  LATDIV_UNREACHABLE("bad DramCmd");
}

Cycle Channel::issue(const DramCommand& cmd, Cycle now) {
  for (const CommandObserver& obs : observers_) obs(cmd, now);
  LATDIV_ASSERT(can_issue(cmd, now), "illegal DRAM command issued");
  LATDIV_ASSERT(last_cmd_cycle_ == kNoCycle || now > last_cmd_cycle_,
                "two commands in one cycle on a single command bus");
  last_cmd_cycle_ = now;

  switch (cmd.cmd) {
    case DramCmd::kActivate: {
      LATDIV_ASSERT(cmd.row != kNoRow, "ACT needs a row");
      bank_row_[cmd.bank] = cmd.row;
      bank_earliest_cas_[cmd.bank] = now + timing_.trcd;
      bank_earliest_pre_[cmd.bank] = now + timing_.tras;
      bank_earliest_act_[cmd.bank] = now + timing_.trc;
      last_act_ = now;
      act_window_[act_window_pos_] = now;
      act_window_pos_ = (act_window_pos_ + 1) % act_window_.size();
      ++stats_.activates;
      ++stats_.per_bank_activates[cmd.bank];
      return kNoCycle;
    }
    case DramCmd::kPrecharge: {
      bank_row_[cmd.bank] = kNoRow;
      bank_earliest_act_[cmd.bank] =
          std::max(bank_earliest_act_[cmd.bank], now + timing_.trp);
      ++stats_.precharges;
      ++stats_.per_bank_precharges[cmd.bank];
      return kNoCycle;
    }
    case DramCmd::kRead: {
      bank_earliest_pre_[cmd.bank] =
          std::max(bank_earliest_pre_[cmd.bank], now + timing_.trtp);
      last_rd_cmd_ = now;
      last_rd_group_ =
          static_cast<BankGroupId>(cmd.bank / timing_.banks_per_group);
      const Cycle data_start = now + timing_.tcas;
      LATDIV_ASSERT(data_start >= data_bus_free_at_,
                    "read data bus collision (CCD/turnaround bug)");
      data_bus_free_at_ = data_start + timing_.tburst;
      stats_.data_bus_busy_cycles += timing_.tburst;
      ++stats_.reads;
      return data_start + timing_.tburst;
    }
    case DramCmd::kWrite: {
      const Cycle data_start = now + timing_.twl;
      const Cycle data_end = data_start + timing_.tburst;
      bank_earliest_pre_[cmd.bank] =
          std::max(bank_earliest_pre_[cmd.bank], data_end + timing_.twr);
      last_wr_cmd_ = now;
      last_wr_group_ =
          static_cast<BankGroupId>(cmd.bank / timing_.banks_per_group);
      LATDIV_ASSERT(data_start >= data_bus_free_at_,
                    "write data bus collision (CCD/turnaround bug)");
      data_bus_free_at_ = data_end;
      stats_.data_bus_busy_cycles += timing_.tburst;
      ++stats_.writes;
      return data_end;
    }
    case DramCmd::kRefresh: {
      for (Cycle& at : bank_earliest_act_) {
        at = std::max(at, now + timing_.trfc);
      }
      next_refresh_at_ += timing_.trefi;
      ++stats_.refreshes;
      return kNoCycle;
    }
  }
  LATDIV_UNREACHABLE("bad DramCmd");
}

void Channel::on_cycle_end(Cycle) {
  if (all_banks_closed()) ++stats_.all_banks_idle_cycles;
}

}  // namespace latdiv
