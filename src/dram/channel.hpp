// One GDDR5 channel: 16 banks in 4 bank groups behind a shared 64-bit
// command/data interface (two x32 chips operated in tandem as one rank).
//
// The channel is a pure timing legality-checker and state machine: the
// memory controller decides *what* to issue; the channel answers *whether*
// a command is legal this cycle and applies its effects.  Every constraint
// from the paper's Table II is enforced:
//
//   per-bank:   tRC, tRCD, tRP, tRAS, tRTP, tWR
//   inter-bank: tRRD, tFAW (sliding 4-activate window)
//   CAS-to-CAS: tCCDL (same bank group), tCCDS (different bank group)
//   turnaround: tWTR (write->read), tCAS+tBURST+tRTRS-tWL (read->write)
//   refresh:    tREFI cadence, tRFC occupancy, all banks precharged
//
// At most one command may issue per cycle (single command bus).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "dram/params.hpp"

namespace latdiv {

/// Counters consumed by the power model and the bench reports.
struct ChannelStats {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t data_bus_busy_cycles = 0;  ///< cycles a burst occupied the bus
  std::uint64_t all_banks_idle_cycles = 0; ///< sampled by on_cycle_end()
  // Per-bank breakdowns (sum over banks == the aggregate above).  Sized by
  // the channel to timing.banks; ground truth for the tracing layer's
  // per-bank ACT/PRE event counts.
  std::vector<std::uint64_t> per_bank_activates;
  std::vector<std::uint64_t> per_bank_precharges;
};

class Channel {
 public:
  explicit Channel(const DramTiming& timing);

  /// Is `cmd` legal at cycle `now`?  Never mutates state.
  [[nodiscard]] bool can_issue(const DramCommand& cmd, Cycle now) const;

  /// Apply `cmd` at cycle `now` (caller must have checked can_issue).
  /// Returns the cycle the command's data transfer completes: for RD the
  /// cycle read data is fully at the controller, for WR the cycle write
  /// data has been accepted; kNoCycle for non-data commands.
  Cycle issue(const DramCommand& cmd, Cycle now);

  /// Observers invoked at the top of issue() for every command, before any
  /// state change, in attachment order.  Used by the protocol-conformance
  /// checker (src/check) to shadow-validate the command stream
  /// independently of can_issue(), and by the introspection layer
  /// (src/obs) to narrate ACT/PRE/REF onto the trace timeline.
  using CommandObserver = std::function<void(const DramCommand&, Cycle)>;
  void add_command_observer(CommandObserver obs) {
    observers_.push_back(std::move(obs));
  }

  /// Row currently open in `bank` (kNoRow if precharged).
  [[nodiscard]] RowId open_row(BankId bank) const;

  /// Would a column access to (bank,row) be a row hit right now?
  [[nodiscard]] bool is_open(BankId bank, RowId row) const {
    return open_row(bank) == row;
  }

  /// True once the refresh interval has elapsed; the command scheduler
  /// must drain/precharge and issue kRefresh.
  [[nodiscard]] bool refresh_due(Cycle now) const;

  /// True if every bank is precharged (prerequisite for kRefresh).
  [[nodiscard]] bool all_banks_closed() const;

  /// Bookkeeping sampled once per cycle by the owning controller (idle
  /// accounting only; no timing effects).
  void on_cycle_end(Cycle now);

  /// Cycle the next refresh becomes due (kNoCycle when refresh is off).
  /// Idle fast-forward must not skip past it: refresh_due() flipping is a
  /// scheduling event even on an otherwise empty controller.
  [[nodiscard]] Cycle next_refresh_at() const {
    return timing_.refresh_enabled ? next_refresh_at_ : kNoCycle;
  }

  /// Credit `n` cycles of all-banks-idle accounting in bulk (idle
  /// fast-forward skipped the per-cycle on_cycle_end calls; the caller
  /// guarantees no command issued in the skipped span, so the banks'
  /// open/closed state was constant throughout).
  void note_idle_cycles(std::uint64_t n) {
    if (all_banks_closed()) stats_.all_banks_idle_cycles += n;
  }

  [[nodiscard]] const ChannelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DramTiming& timing() const noexcept { return timing_; }

  /// Functional row warming during a sampled-mode skip interval
  /// (ckpt::SampledRunner): open `row` in `bank` without issuing commands
  /// or consuming bus time.  Sampled mode runs with the protocol checker
  /// off; this is never called on a detailed-timing path.
  void warm_row(BankId bank, RowId row) { bank_row_[bank] = row; }

  /// Re-anchor the refresh cadence after a sampled-mode jump to `now`:
  /// keeps tREFI-multiple spacing while skipping the due times inside the
  /// interval (whose bank time the skip did not model anyway).
  void rebase_refresh(Cycle now) {
    if (!timing_.refresh_enabled || next_refresh_at_ >= now) return;
    const Cycle behind = now - next_refresh_at_;
    next_refresh_at_ += (behind / timing_.trefi + 1) * timing_.trefi;
  }

  /// Snapshot serialization of bank/bus/refresh timing state (src/ckpt);
  /// observers are re-attached at construction.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  [[nodiscard]] bool act_legal(BankId bank, Cycle now) const;
  [[nodiscard]] bool cas_legal(const DramCommand& cmd, Cycle now) const;

  DramTiming timing_;
  // Per-bank row-buffer state, SoA: the hottest probes scan exactly one
  // attribute across all banks (all_banks_closed over rows, refresh
  // legality over earliest-ACT), so parallel arrays keep each scan dense
  // instead of striding over 32-byte bank structs.
  std::vector<RowId> bank_row_;           ///< open row (kNoRow = precharged)
  std::vector<Cycle> bank_earliest_act_;  ///< tRP after PRE, tRC after ACT, tRFC after REF
  std::vector<Cycle> bank_earliest_cas_;  ///< tRCD after ACT
  std::vector<Cycle> bank_earliest_pre_;  ///< tRAS after ACT, tRTP after RD, tWR after WR

  // Inter-bank activate tracking: last activate (tRRD) and the last four
  // activates (tFAW sliding window); kNoCycle = "no such activate yet".
  Cycle last_act_ = kNoCycle;
  std::array<Cycle, 4> act_window_ = {kNoCycle, kNoCycle, kNoCycle, kNoCycle};
  std::size_t act_window_pos_ = 0;

  // CAS-to-CAS and bus-turnaround tracking.
  Cycle last_rd_cmd_ = kNoCycle;
  Cycle last_wr_cmd_ = kNoCycle;
  BankGroupId last_rd_group_ = 0;
  BankGroupId last_wr_group_ = 0;

  Cycle last_cmd_cycle_ = kNoCycle;  // single-command-bus assertion
  Cycle data_bus_free_at_ = 0;
  Cycle next_refresh_at_ = 0;

  // Observers are registered at construction by this channel's controller
  // and invoked synchronously on its tick; under a sharded core the whole
  // chain stays on the channel's own thread.
  std::vector<CommandObserver> observers_ LATDIV_SHARD_LOCAL;
  ChannelStats stats_;
};

}  // namespace latdiv
