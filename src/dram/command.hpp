// DRAM command vocabulary on the command/address bus.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace latdiv {

enum class DramCmd : std::uint8_t {
  kActivate,   ///< open a row into the bank's row buffer
  kPrecharge,  ///< close the open row
  kRead,       ///< column read, one 128B burst
  kWrite,      ///< column write, one 128B burst
  kRefresh,    ///< all-bank refresh
};

[[nodiscard]] constexpr const char* to_string(DramCmd cmd) noexcept {
  switch (cmd) {
    case DramCmd::kActivate: return "ACT";
    case DramCmd::kPrecharge: return "PRE";
    case DramCmd::kRead: return "RD";
    case DramCmd::kWrite: return "WR";
    case DramCmd::kRefresh: return "REF";
  }
  return "?";
}

/// One command as issued by the command scheduler.
struct DramCommand {
  DramCmd cmd = DramCmd::kActivate;
  BankId bank = 0;
  RowId row = kNoRow;  ///< target row for ACT; open-row check for RD/WR
};

}  // namespace latdiv
