#include "dram/power.hpp"

#include "common/log.hpp"

namespace latdiv {

PowerModel::PowerModel(const Gddr5PowerParams& params, const DramParams& dram)
    : p_(params), d_(dram) {}

PowerBreakdown PowerModel::compute(const ChannelStats& stats,
                                   Cycle elapsed_cycles,
                                   std::uint32_t line_bytes) const {
  LATDIV_ASSERT(elapsed_cycles > 0, "power over an empty interval");
  PowerBreakdown out;
  const double devices = p_.devices_per_channel;
  const double elapsed_ns =
      static_cast<double>(elapsed_cycles) * d_.tck_ns;
  const double elapsed_s = elapsed_ns * 1e-9;

  // Background: IDD3N while any bank holds an open row, IDD2N otherwise.
  const double open_ns =
      static_cast<double>(elapsed_cycles - stats.all_banks_idle_cycles) *
      d_.tck_ns;
  const double closed_ns = elapsed_ns - open_ns;
  const double e_bg =
      (p_.idd3n * open_ns + p_.idd2n * closed_ns) * 1e-9 * p_.vdd * devices;
  out.background = e_bg / elapsed_s;

  // Activate/precharge: IDD0 covers one full tRC cycle of ACT+PRE; subtract
  // the background current already accounted for over that window.
  const double e_act_one =
      (p_.idd0 * d_.trc_ns - p_.idd3n * d_.tras_ns -
       p_.idd2n * (d_.trc_ns - d_.tras_ns)) *
      1e-9 * p_.vdd;
  out.activate = static_cast<double>(stats.activates) * e_act_one * devices /
                 elapsed_s;

  // Burst terms: incremental current over active standby, for tBURST.
  const double burst_ns = static_cast<double>(d_.tburst_ck) * d_.tck_ns;
  out.read = static_cast<double>(stats.reads) * (p_.idd4r - p_.idd3n) *
             burst_ns * 1e-9 * p_.vdd * devices / elapsed_s;
  out.write = static_cast<double>(stats.writes) * (p_.idd4w - p_.idd3n) *
              burst_ns * 1e-9 * p_.vdd * devices / elapsed_s;

  // Refresh: incremental over precharge standby for tRFC.
  out.refresh = static_cast<double>(stats.refreshes) *
                (p_.idd5 - p_.idd2n) * d_.trfc_ns * 1e-9 * p_.vdd * devices /
                elapsed_s;

  // I/O: per-bit energy on the channel interface.
  const double bits = static_cast<double>(stats.reads + stats.writes) *
                      static_cast<double>(line_bytes) * 8.0;
  out.io = bits * p_.io_pj_per_bit * 1e-12 / elapsed_s;

  return out;
}

}  // namespace latdiv
