#include "dram/params.hpp"

#include <cmath>

#include "common/log.hpp"

namespace latdiv {

namespace {

/// Convert nanoseconds to command-clock cycles, rounding up (a constraint
/// satisfied at a fractional cycle is not satisfied until the next edge).
Cycle ns_to_ck(double ns, double tck_ns) noexcept {
  return static_cast<Cycle>(std::ceil(ns / tck_ns - 1e-9));
}

}  // namespace

DramParams gddr5_params() { return DramParams{}; }

DramParams ddr3_1600_params() {
  DramParams p;
  p.tck_ns = 1.25;  // 800 MHz command clock, 1600 MT/s data
  p.trc_ns = 48.75;
  p.trcd_ns = 13.75;
  p.trp_ns = 13.75;
  p.tcas_ns = 13.75;
  p.tras_ns = 35.0;
  p.trrd_ns = 6.0;
  p.twtr_ns = 7.5;
  p.tfaw_ns = 40.0;
  p.trtp_ns = 7.5;
  p.twr_ns = 15.0;
  p.twl_ck = 8;
  p.tburst_ck = 4;   // BL8 on a 64-bit channel
  p.trtrs_ck = 2;
  p.tccdl_ck = 4;    // no bank groups: tCCD is uniformly 4 tCK
  p.tccds_ck = 4;
  p.banks = 8;
  p.banks_per_group = 8;  // a single "group": no fast cross-group path
  p.trefi_ns = 7800.0;
  p.trfc_ns = 160.0;
  return p;
}

DramTiming DramTiming::from(const DramParams& p) noexcept {
  LATDIV_ASSERT(p.tck_ns > 0.0, "tCK must be positive");
  LATDIV_ASSERT(p.banks % p.banks_per_group == 0, "bank-group geometry");
  DramTiming t{};
  t.trc = ns_to_ck(p.trc_ns, p.tck_ns);
  t.trcd = ns_to_ck(p.trcd_ns, p.tck_ns);
  t.trp = ns_to_ck(p.trp_ns, p.tck_ns);
  t.tcas = ns_to_ck(p.tcas_ns, p.tck_ns);
  t.tras = ns_to_ck(p.tras_ns, p.tck_ns);
  t.trrd = ns_to_ck(p.trrd_ns, p.tck_ns);
  t.twtr = ns_to_ck(p.twtr_ns, p.tck_ns);
  t.tfaw = ns_to_ck(p.tfaw_ns, p.tck_ns);
  t.trtp = ns_to_ck(p.trtp_ns, p.tck_ns);
  t.twr = ns_to_ck(p.twr_ns, p.tck_ns);
  t.twl = p.twl_ck;
  t.tburst = p.tburst_ck;
  t.trtrs = p.trtrs_ck;
  t.tccdl = p.tccdl_ck;
  t.tccds = p.tccds_ck;
  t.trefi = ns_to_ck(p.trefi_ns, p.tck_ns);
  t.trfc = ns_to_ck(p.trfc_ns, p.tck_ns);
  t.banks = p.banks;
  t.banks_per_group = p.banks_per_group;
  t.refresh_enabled = p.refresh_enabled;
  return t;
}

}  // namespace latdiv
