// Minimum Efficient Row Burst (paper §IV-D, Table I).
//
// MERB(b) is the number of row-hit data transfers that must be scheduled
// to other banks to fully hide the overhead of one row-miss (precharge +
// activate) in a given bank, as a function of the number of banks with
// pending work b:
//
//             /  max( (tRTP + tRP + tRCD) / ((b-1) * tBURST),
//   MERB(b) = |       max(tRRD, tFAW/4) / tBURST )                 b > 1
//             \  31  (5-bit counter limit; single-bank case cannot
//                     hide the overhead at all)                    b = 1
//
// With the paper's GDDR5 timings this evaluates to Table I:
//   banks:  1   2   3   4   5   6..16
//   MERB : 31  20  10   7   5   5
//
// The table is computed once from the timing parameters (the paper notes
// it "can be computed at boot-time or loaded from the boot ROM").
#pragma once

#include <cstdint>
#include <vector>

#include "dram/params.hpp"

namespace latdiv {

class MerbTable {
 public:
  /// Counter width is 5 bits in the paper's hardware budget.
  static constexpr std::uint32_t kSingleBankMerb = 31;

  explicit MerbTable(const DramTiming& timing);

  /// MERB threshold given the number of banks with pending traffic.
  /// Values above the table range clamp to the last entry; 0 pending
  /// banks is treated as 1 (the caller is about to create pending work).
  [[nodiscard]] std::uint32_t value(std::uint32_t banks_with_pending) const;

  [[nodiscard]] const std::vector<std::uint32_t>& table() const {
    return values_;
  }

 private:
  std::vector<std::uint32_t> values_;  // index 0 => b=1
};

}  // namespace latdiv
