#include "core/coordination.hpp"

#include "common/log.hpp"

namespace latdiv {

CoordinationNetwork::CoordinationNetwork(
    std::vector<MemoryController*> controllers, Cycle latency)
    : controllers_(std::move(controllers)), latency_(latency) {
  LATDIV_ASSERT(!controllers_.empty(), "empty coordination network");
}

void CoordinationNetwork::collect_due(Cycle start, Cycle end,
                                      std::vector<Pending>& out) {
  while (!in_flight_.empty() && in_flight_.front().due < end) {
    LATDIV_DCHECK(in_flight_.front().due >= start,
                  "coordination delivery skipped by a prior epoch");
    out.push_back(in_flight_.front());
    in_flight_.pop_front();
  }
}

void CoordinationNetwork::tick(Cycle now) {
  for (MemoryController* mc : controllers_) {
    for (const CoordMsg& msg : mc->outbox()) {
      in_flight_.push_back(Pending{now + latency_, msg});
      ++sent_;
    }
    mc->outbox().clear();
  }
  while (!in_flight_.empty() && in_flight_.front().due <= now) {
    const CoordMsg msg = in_flight_.front().msg;
    in_flight_.pop_front();
    for (MemoryController* mc : controllers_) {
      if (mc->id() != msg.source) mc->deliver_coordination(msg, now);
    }
  }
}

}  // namespace latdiv
