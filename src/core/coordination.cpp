#include "core/coordination.hpp"

#include "common/log.hpp"

namespace latdiv {

CoordinationNetwork::CoordinationNetwork(
    std::vector<MemoryController*> controllers, Cycle latency)
    : controllers_(std::move(controllers)), latency_(latency) {
  LATDIV_ASSERT(!controllers_.empty(), "empty coordination network");
}

void CoordinationNetwork::tick(Cycle now) {
  for (MemoryController* mc : controllers_) {
    for (const CoordMsg& msg : mc->outbox()) {
      in_flight_.push_back(Pending{now + latency_, msg});
      ++sent_;
    }
    mc->outbox().clear();
  }
  while (!in_flight_.empty() && in_flight_.front().due <= now) {
    const CoordMsg msg = in_flight_.front().msg;
    in_flight_.pop_front();
    for (MemoryController* mc : controllers_) {
      if (mc->id() != msg.source) mc->deliver_coordination(msg, now);
    }
  }
}

}  // namespace latdiv
