// Idealised Zero-Latency-Divergence memory model (paper §III-B, Fig. 4).
//
// The paper's opportunity study asks: what if all of a warp's memory
// requests returned in close succession once the first is serviced?  The
// model "abstracts away the bank conflicts for all but one request for
// each warp, but still faithfully models DRAM bus bandwidth and
// contention."
//
// Realisation: per dynamic warp instruction, the globally-first request to
// reach a transaction scheduler is the *primary* and is scheduled through
// the full DRAM timing path (GMC-like).  Once any request of the
// instruction has been dispatched anywhere, the instruction is *started*
// (shared ZldCoordinator) and every other request of that instruction is
// retargeted to a currently-open row on the least-loaded bank of its
// channel — it costs exactly one data burst of bus bandwidth and queueing,
// but no precharge/activate serialisation.  The warp's completion is thus
// governed by its one real request, which is the definition of zero
// latency divergence.
#pragma once

#include <memory>
#include <unordered_set>

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

/// Shared across the six controllers: which warp instructions have had a
/// request dispatched somewhere already.
class ZldCoordinator {
 public:
  void mark_started(WarpInstrUid instr) { started_.insert(instr); }
  [[nodiscard]] bool started(WarpInstrUid instr) const {
    return started_.contains(instr);
  }

  /// Snapshot serialization (src/ckpt): shared across controllers, so the
  /// Simulator serializes the coordinator exactly once, not per policy.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::unordered_set<WarpInstrUid> started_;
};

class ZldPolicy final : public TransactionScheduler {
 public:
  explicit ZldPolicy(std::shared_ptr<ZldCoordinator> coord)
      : coord_(std::move(coord)) {}

  [[nodiscard]] const char* name() const override { return "ZLD-ideal"; }

  void schedule_reads(MemoryController& mc, Cycle now) override;

 private:
  /// Rewrite a secondary request onto an open row of the least-loaded
  /// bank so it is a pure bandwidth cost.
  static void retarget(const MemoryController& mc, MemRequest& req);

  std::shared_ptr<ZldCoordinator> coord_;
};

}  // namespace latdiv
