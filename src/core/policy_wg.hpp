// Warp-group scheduling — the paper's contribution (§IV).
//
// One policy class implements the whole WG family; the paper's four design
// points are feature flags layered bottom-up exactly as in the evaluation:
//
//   WG     (§IV-B)  bank-aware shortest-job-first over *warp-groups*: all
//                   requests of one warp at this controller are scheduled
//                   as a unit; groups are ranked by an estimated completion
//                   time (row-hit=1 / row-miss=3 per request, plus the
//                   score of everything already queued at each bank; the
//                   group score is the max over its banks) and the lowest
//                   score wins, ties broken by most row-hits.
//   WG-M   (§IV-C)  + controllers broadcast (warp id, local score) when
//                   they select a group; a receiver holding the same
//                   warp's group lowers its local score by (LC - RC) when
//                   the local estimate LC exceeds the remote RC.
//   WG-Bw  (§IV-D)  + MERB: a row-miss from the selected group is admitted
//                   to a bank only after that bank's planned row-hit run
//                   reaches the MERB threshold; pending row hits from
//                   other (nearly-complete first) warps fill the gap, and
//                   the "orphan control" rule tops up runs that would
//                   leave only 1-2 stranded hits behind.
//   WG-W   (§IV-E)  + write awareness: once the write queue is within 8
//                   entries of its high watermark, warp-groups with a
//                   single remaining request are served first regardless
//                   of score, so an imminent drain does not strand
//                   almost-finished warps.
//
// Requests physically stay in the controller's 64-entry read queue until
// pulled; the warp sorter here is the paper's 128-entry <SM-id, Warp-id>
// tracking structure (we key it by the dynamic warp instruction, which is
// unique per in-flight load since warps block on loads).
//
// Liveness beyond the paper's text: if the read queue fills with requests
// of groups that are all incomplete, no group would ever become eligible
// and the controller would deadlock (the remaining requests of every group
// are stuck behind the full queue).  When no complete group exists and the
// queue is under pressure — or the oldest request exceeds an age bound —
// the policy falls back to draining the group that contains the oldest
// request.  Such partially-serviced groups are the "orphaned" groups of
// Fig. 12; their leftover requests are scheduled when their completion
// signal eventually arrives.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/merb.hpp"
#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

struct WgConfig {
  bool multi_channel = false;  ///< WG-M coordination
  bool merb = false;           ///< WG-Bw bandwidth optimisation
  bool write_aware = false;    ///< WG-W drain awareness
  /// Extension (paper Conclusions): prioritise warp-groups that touch
  /// DRAM rows other pending warp-groups also need — serving them opens
  /// rows that benefit multiple warps.  Off in all paper configurations.
  bool shared_data_boost = false;
  std::uint32_t shared_weight = 1;  ///< score discount per shared request

  std::uint32_t score_hit = 1;   ///< ~tCAS (12 ns)
  std::uint32_t score_miss = 3;  ///< ~tRP+tRCD+tCAS (36 ns)
  std::uint32_t orphan_limit = 2;
  std::uint32_t wq_guard = 8;  ///< WG-W arms at (high watermark - guard)
  /// Liveness fallback: drain an incomplete group once the oldest request
  /// is this old, or when the read queue is nearly full.
  Cycle fallback_age = 8192;
  /// WG-M: how long a remote-selection message stays matchable against
  /// not-yet-arrived warp-groups.
  Cycle coord_msg_ttl = 256;
  std::size_t rq_pressure_slack = 4;
  std::uint32_t max_pushes_per_cycle = 8;
};

/// Per-warp-group bookkeeping (the warp sorter / bank table entry).
struct WgGroupMeta {
  WarpTag tag;
  Cycle first_arrival = kNoCycle;
  std::uint32_t seen = 0;    ///< requests received at this controller
  std::uint32_t pushed = 0;  ///< requests already sent to bank queues
  std::uint32_t coord_bonus = 0;  ///< accumulated WG-M score reduction
  bool complete = false;
};

struct WgStats {
  std::uint64_t groups_completed = 0;
  std::uint64_t groups_selected = 0;
  std::uint64_t fallback_selections = 0;
  std::uint64_t merb_deferrals = 0;   ///< row-miss postponed for fillers
  std::uint64_t orphan_topups = 0;    ///< orphan-control filler pushes
  std::uint64_t coord_msgs_applied = 0;
  std::uint64_t writeaware_selections = 0;
  std::uint64_t shared_boosts = 0;  ///< selections aided by shared rows
  Accumulator group_size;             ///< requests per warp-group at this MC
};

class WgPolicy final : public TransactionScheduler {
 public:
  WgPolicy(const WgConfig& cfg, const DramTiming& timing)
      : cfg_(cfg), merb_(timing) {}

  [[nodiscard]] const char* name() const override {
    if (cfg_.shared_data_boost) return "WG-Sh";
    if (cfg_.write_aware) return "WG-W";
    if (cfg_.merb) return "WG-Bw";
    if (cfg_.multi_channel) return "WG-M";
    return "WG";
  }

  void schedule_reads(MemoryController& mc, Cycle now) override;
  void on_push(MemoryController& mc, const MemRequest& req,
               Cycle now) override;
  void on_group_complete(MemoryController& mc, const WarpTag& tag,
                         Cycle now) override;
  void on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                           Cycle now) override;
  void on_drain_start(MemoryController& mc, Cycle now) override;

  [[nodiscard]] const WgStats& wg_stats() const { return stats_; }
  [[nodiscard]] const WgConfig& config() const { return cfg_; }

 private:
  struct Score {
    std::uint32_t completion = 0;  ///< estimated completion-time score
    std::uint32_t row_hits = 0;    ///< tie-breaker
  };

  /// Completion-time estimate for the requests of `instr` currently in
  /// the read queue (paper §IV-B1), including each touched bank's queued
  /// backlog.  Request hit/miss status is evaluated against the bank's
  /// *planned* row sequence: predicted row, advanced per queued request.
  [[nodiscard]] Score score_group(const MemoryController& mc,
                                  WarpInstrUid instr) const;
  /// Sum of request scores pending in `bank`'s command queue.
  [[nodiscard]] std::uint32_t bank_queue_score(const MemoryController& mc,
                                               BankId bank) const;

  void select_next_group(MemoryController& mc, Cycle now);
  /// Drain the current group's read-queue requests into bank queues,
  /// applying MERB admission for row misses when WG-Bw is on.  Returns
  /// the number of requests pushed.
  std::uint32_t drain_current(MemoryController& mc, Cycle now);
  /// Push one row-hit filler to `bank` from the group nearest completion.
  bool push_filler(MemoryController& mc, BankId bank, Cycle now);
  void forget_if_done(WarpInstrUid instr);

  [[nodiscard]] bool write_pressure(const MemoryController& mc) const;

  WgConfig cfg_;
  MerbTable merb_;
  std::unordered_map<WarpInstrUid, WgGroupMeta> groups_;
  std::optional<WarpInstrUid> current_;
  /// WG-M: recent remote selections kept briefly so a coordination
  /// message can still boost a warp-group whose requests arrive here a
  /// few cycles *after* the remote controller selected it (the crossbar
  /// and the coordination network race; hardware would hold the message
  /// in the 128-entry tracking structure either way).
  struct RecentMsg {
    WarpInstrUid instr;
    std::uint32_t score;
    Cycle at;
  };
  std::deque<RecentMsg> recent_msgs_;
  WgStats stats_;
};

}  // namespace latdiv
