// Warp-group scheduling — the paper's contribution (§IV).
//
// One policy class implements the whole WG family; the paper's four design
// points are feature flags layered bottom-up exactly as in the evaluation:
//
//   WG     (§IV-B)  bank-aware shortest-job-first over *warp-groups*: all
//                   requests of one warp at this controller are scheduled
//                   as a unit; groups are ranked by an estimated completion
//                   time (row-hit=1 / row-miss=3 per request, plus the
//                   score of everything already queued at each bank; the
//                   group score is the max over its banks) and the lowest
//                   score wins, ties broken by most row-hits.
//   WG-M   (§IV-C)  + controllers broadcast (warp id, local score) when
//                   they select a group; a receiver holding the same
//                   warp's group lowers its local score by (LC - RC) when
//                   the local estimate LC exceeds the remote RC.
//   WG-Bw  (§IV-D)  + MERB: a row-miss from the selected group is admitted
//                   to a bank only after that bank's planned row-hit run
//                   reaches the MERB threshold; pending row hits from
//                   other (nearly-complete first) warps fill the gap, and
//                   the "orphan control" rule tops up runs that would
//                   leave only 1-2 stranded hits behind.
//   WG-W   (§IV-E)  + write awareness: once the write queue is within 8
//                   entries of its high watermark, warp-groups with a
//                   single remaining request are served first regardless
//                   of score, so an imminent drain does not strand
//                   almost-finished warps.
//
// Requests physically stay in the controller's 64-entry read queue until
// pulled; the warp sorter here is the paper's 128-entry <SM-id, Warp-id>
// tracking structure (we key it by the dynamic warp instruction, which is
// unique per in-flight load since warps block on loads).
//
// Liveness beyond the paper's text: if the read queue fills with requests
// of groups that are all incomplete, no group would ever become eligible
// and the controller would deadlock (the remaining requests of every group
// are stuck behind the full queue).  When no complete group exists and the
// queue is under pressure — or the oldest request exceeds an age bound —
// the policy falls back to draining the group that contains the oldest
// request.  Such partially-serviced groups are the "orphaned" groups of
// Fig. 12; their leftover requests are scheduled when their completion
// signal eventually arrives.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/log.hpp"
#include "core/merb.hpp"
#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

struct WgConfig {
  bool multi_channel = false;  ///< WG-M coordination
  bool merb = false;           ///< WG-Bw bandwidth optimisation
  bool write_aware = false;    ///< WG-W drain awareness
  /// Extension (paper Conclusions): prioritise warp-groups that touch
  /// DRAM rows other pending warp-groups also need — serving them opens
  /// rows that benefit multiple warps.  Off in all paper configurations.
  bool shared_data_boost = false;
  std::uint32_t shared_weight = 1;  ///< score discount per shared request

  std::uint32_t score_hit = 1;   ///< ~tCAS (12 ns)
  std::uint32_t score_miss = 3;  ///< ~tRP+tRCD+tCAS (36 ns)
  std::uint32_t orphan_limit = 2;
  std::uint32_t wq_guard = 8;  ///< WG-W arms at (high watermark - guard)
  /// Liveness fallback: drain an incomplete group once the oldest request
  /// is this old, or when the read queue is nearly full.
  Cycle fallback_age = 8192;
  /// WG-M: how long a remote-selection message stays matchable against
  /// not-yet-arrived warp-groups.
  Cycle coord_msg_ttl = 256;
  std::size_t rq_pressure_slack = 4;
  std::uint32_t max_pushes_per_cycle = 8;
};

/// Per-warp-group bookkeeping (the warp sorter / bank table entry).
///
/// Besides the paper's counters this carries the incremental read-queue
/// index: one entry per request of the group still waiting in the
/// controller's read queue, grouped by bank and kept in arrival order.
/// WgPolicy maintains it in on_push and at every read-queue erase, so
/// selection and scoring never rescan the read queue.
struct WgGroupMeta {
  WarpTag tag;
  Cycle first_arrival = kNoCycle;
  std::uint32_t seen = 0;    ///< requests received at this controller
  std::uint32_t pushed = 0;  ///< requests already sent to bank queues
  std::uint32_t coord_bonus = 0;  ///< accumulated WG-M score reduction
  bool complete = false;

  struct QueuedReq {
    std::uint64_t seq;  ///< controller-wide arrival sequence number
    Cycle arrival;      ///< == arrived_at_mc (non-decreasing in seq)
    RowId row;
  };
  struct BankSlot {
    BankId bank;
    std::vector<QueuedReq> items;  ///< this group's queued requests, in
                                   ///< read-queue (= seq) order
    /// bank_epoch(bank)+1 when cached_score was computed (score cache).
    mutable std::uint64_t score_epoch = 0;
  };
  /// Per-bank slots in first-touch order; a slot may drain empty.
  std::vector<BankSlot> slots;
  std::uint64_t version = 0;  ///< bumped on every index add/remove
  /// Listed in WgPolicy::active_ (groups with queued requests); cleared
  /// lazily when a sweep finds the group drained.
  bool in_active = false;

  /// Group score cache (see WgPolicy::score_group): valid while
  /// score_version matches `version` and every non-empty slot's
  /// score_epoch matches the controller's current bank epoch.
  mutable std::uint64_t score_version = ~std::uint64_t{0};
  mutable std::uint32_t score_completion = 0;
  mutable std::uint32_t score_row_hits = 0;

  /// Requests of this group currently in the read queue (== the old
  /// O(read-queue) pending_in_queue scan).
  [[nodiscard]] std::uint32_t queued() const { return seen - pushed; }
};

struct WgStats {
  std::uint64_t groups_completed = 0;
  std::uint64_t groups_selected = 0;
  std::uint64_t fallback_selections = 0;
  std::uint64_t merb_deferrals = 0;   ///< row-miss postponed for fillers
  std::uint64_t orphan_topups = 0;    ///< orphan-control filler pushes
  std::uint64_t coord_msgs_applied = 0;
  std::uint64_t writeaware_selections = 0;
  std::uint64_t shared_boosts = 0;  ///< selections aided by shared rows
  Accumulator group_size;             ///< requests per warp-group at this MC
};

class WgPolicy final : public TransactionScheduler {
 public:
  WgPolicy(const WgConfig& cfg, const DramTiming& timing)
      : cfg_(cfg), merb_(timing), banks_(timing.banks) {
    // The per-group bank footprint uses 32-bit bank masks (and the WG
    // paper's GDDR5 devices have 16 banks); wider devices need a wider
    // opens_row_mask before this policy can run on them.
    LATDIV_ASSERT(timing.banks <= 32,
                  "WgPolicy bank masks support at most 32 banks");
  }

  [[nodiscard]] const char* name() const override {
    if (cfg_.shared_data_boost) return "WG-Sh";
    if (cfg_.write_aware) return "WG-W";
    if (cfg_.merb) return "WG-Bw";
    if (cfg_.multi_channel) return "WG-M";
    return "WG";
  }

  void schedule_reads(MemoryController& mc, Cycle now) override;
  void on_push(MemoryController& mc, const MemRequest& req,
               Cycle now) override;
  void on_group_complete(MemoryController& mc, const WarpTag& tag,
                         Cycle now) override;
  void on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                           Cycle now) override;
  void on_drain_start(MemoryController& mc, Cycle now) override;

  [[nodiscard]] const WgStats* wg_stats() const override { return &stats_; }
  /// A selected-but-undrained group is scheduler state the controller's
  /// queues don't show; schedule_reads clears it whenever the group's
  /// queued requests run out, so with an empty read queue this holds.
  [[nodiscard]] bool quiescent() const override { return !current_; }
  [[nodiscard]] const WgConfig& config() const { return cfg_; }

  struct Score {
    std::uint32_t completion = 0;  ///< estimated completion-time score
    std::uint32_t row_hits = 0;    ///< tie-breaker
  };

  /// Completion-time estimate for the requests of `instr` currently in
  /// the read queue (paper §IV-B1), including each touched bank's queued
  /// backlog.  Request hit/miss status is evaluated against the bank's
  /// *planned* row sequence: predicted row, advanced per queued request.
  [[nodiscard]] Score score_group(const MemoryController& mc,
                                  WarpInstrUid instr) const;

  // Differential-test hooks (tests/test_wg_incremental.cpp): read-only
  // views of the incremental index so reference scans of the real read
  // queue can be checked against it after arbitrary event sequences.
  [[nodiscard]] const std::unordered_map<WarpInstrUid, WgGroupMeta>& groups()
      const {
    return groups_;
  }
  [[nodiscard]] const std::optional<WarpInstrUid>& current() const {
    return current_;
  }

  /// Snapshot serialization (src/ckpt): the warp sorter, the incremental
  /// read-queue index, caches and stats all round-trip; merb_ is a pure
  /// function of the DRAM timing and is rebuilt at construction.
  void ckpt_save(ckpt::CkptWriter& ar) const override;
  void ckpt_load(ckpt::CkptReader& ar) override;

 private:
  /// Shared save/load body behind ckpt_save/ckpt_load (src/ckpt owns the
  /// definition; member access keeps the private index reachable).
  template <class Ar>
  void ckpt_io(Ar& ar);

  /// Sum of request scores pending in `bank`'s command queue (cached per
  /// bank, invalidated by the controller's bank epoch).
  [[nodiscard]] std::uint32_t bank_queue_score(const MemoryController& mc,
                                               BankId bank) const;

  void select_next_group(MemoryController& mc, Cycle now);
  /// Drain the current group's read-queue requests into bank queues,
  /// applying MERB admission for row misses when WG-Bw is on.  Returns
  /// the number of requests pushed.
  std::uint32_t drain_current(MemoryController& mc, Cycle now);
  /// Push one row-hit filler to `bank` from the group nearest completion.
  bool push_filler(MemoryController& mc, BankId bank, Cycle now);
  void forget_if_done(WarpInstrUid instr);

  [[nodiscard]] bool write_pressure(const MemoryController& mc) const;

  // --- incremental index maintenance -----------------------------------
  /// Record a read request entering the read queue (called from on_push,
  /// when the request is already queued).
  void index_add(WgGroupMeta& meta, const MemRequest& req);
  /// Record a read request leaving the read queue (called at every
  /// policy-side erase, immediately before send_to_bank).
  void index_remove(WgGroupMeta& meta, const MemRequest& req);
  /// Queued requests of `instr` matching (bank, row) — MERB orphan count.
  [[nodiscard]] std::uint32_t group_row_count(const WgGroupMeta& meta,
                                              BankId bank, RowId row) const;

  WgConfig cfg_;
  MerbTable merb_;
  std::uint32_t banks_;
  std::unordered_map<WarpInstrUid, WgGroupMeta> groups_;
  std::optional<WarpInstrUid> current_;
  /// Groups that (may) have queued requests — the candidate universe for
  /// selection and filler searches, so neither walks the groups_ hash
  /// table.  Entries are appended by index_add when a drained group gains
  /// a request, swept out lazily when found empty, and removed eagerly in
  /// forget_if_done (the meta pointer must not dangle).  Order is
  /// irrelevant: every consumer totally orders candidates itself.
  std::vector<std::pair<WarpInstrUid, WgGroupMeta*>> active_;

  /// Controller-wide arrival sequence for read requests; slot items carry
  /// it so the read queue's relative order (a deque: push-back + erase)
  /// can be reconstructed from the index alone.
  std::uint64_t next_seq_ = 0;

  // Select-skip memo: when select_next_group fails, it records the
  // controller mutation epoch (and, for age-gated fallback failures, the
  // cycle the age bound is reached).  Until either changes, re-running
  // the selection is provably futile and is skipped.
  std::uint64_t skip_epoch_ = ~std::uint64_t{0};
  Cycle skip_until_ = 0;

  /// Per-bank queue-score cache: (bank_epoch+1, score); 0 = invalid.
  mutable std::vector<std::pair<std::uint64_t, std::uint32_t>> bqs_cache_;

  /// WG-Bw orphan control: total queued read requests per exact
  /// (bank, row), across all groups.  Maintained only when cfg_.merb.
  std::unordered_map<std::uint64_t, std::uint32_t> row_counts_;
  /// Shared-row census for the shared-data extension: per truncated
  /// (bank, row24) key, the distinct groups with queued requests on it
  /// (and their counts).  Maintained only when cfg_.shared_data_boost;
  /// a key is "shared" when two or more groups appear.
  std::unordered_map<std::uint32_t,
                     std::vector<std::pair<WarpInstrUid, std::uint32_t>>>
      census_;

  /// Scratch candidate list reused across select_next_group calls.
  struct Cand {
    WarpInstrUid instr;
    const WgGroupMeta* meta;
    std::uint64_t head_seq;  ///< seq of the group's earliest queued request
    std::uint32_t count;
    Cycle oldest;
    std::uint32_t opens_row_mask;  ///< banks where this group row-misses
  };
  std::vector<Cand> cands_;
  /// WG-M: recent remote selections kept briefly so a coordination
  /// message can still boost a warp-group whose requests arrive here a
  /// few cycles *after* the remote controller selected it (the crossbar
  /// and the coordination network race; hardware would hold the message
  /// in the 128-entry tracking structure either way).
  struct RecentMsg {
    WarpInstrUid instr;
    std::uint32_t score;
    Cycle at;
  };
  std::deque<RecentMsg> recent_msgs_;
  WgStats stats_;
};

}  // namespace latdiv
