#include "core/policy_wg.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace latdiv {

namespace {

/// Exact (bank, row) key for the MERB orphan-control counts.
inline std::uint64_t row_key(BankId bank, RowId row) {
  return (static_cast<std::uint64_t>(bank) << 32) | row;
}

/// Truncated (bank, row) key for the shared-row census — must match the
/// historical census exactly, including its 24-bit row truncation.
inline std::uint32_t census_key(BankId bank, RowId row) {
  return (static_cast<std::uint32_t>(bank) << 24) | (row & 0xFFFFFF);
}

}  // namespace

// ---- incremental read-queue index -------------------------------------
//
// The index mirrors the read queue: every read request of a group is one
// QueuedReq in that group's per-bank slot, in queue (arrival-sequence)
// order.  The queue is a deque that only ever push_backs and erases, so
// relative order is stable and `seq` reconstructs it exactly: a group's
// position among the selection candidates is the minimum seq over its
// slots' front items (the old code's first-occurrence-in-queue order).

void WgPolicy::index_add(WgGroupMeta& meta, const MemRequest& req) {
  const std::uint64_t seq = next_seq_++;
  auto it = std::find_if(
      meta.slots.begin(), meta.slots.end(),
      [&](const WgGroupMeta::BankSlot& s) { return s.bank == req.loc.bank; });
  if (it == meta.slots.end()) {
    meta.slots.push_back(WgGroupMeta::BankSlot{req.loc.bank, {}, 0});
    it = meta.slots.end() - 1;
  }
  it->items.push_back(
      WgGroupMeta::QueuedReq{seq, req.arrived_at_mc, req.loc.row});
  ++meta.version;
  if (!meta.in_active) {
    active_.emplace_back(req.tag.instr, &meta);
    meta.in_active = true;
  }
  if (cfg_.merb) ++row_counts_[row_key(req.loc.bank, req.loc.row)];
  if (cfg_.shared_data_boost) {
    auto& users = census_[census_key(req.loc.bank, req.loc.row)];
    auto uit = std::find_if(users.begin(), users.end(), [&](const auto& u) {
      return u.first == req.tag.instr;
    });
    if (uit == users.end()) {
      users.emplace_back(req.tag.instr, 1u);
    } else {
      ++uit->second;
    }
  }
}

void WgPolicy::index_remove(WgGroupMeta& meta, const MemRequest& req) {
  auto it = std::find_if(
      meta.slots.begin(), meta.slots.end(),
      [&](const WgGroupMeta::BankSlot& s) { return s.bank == req.loc.bank; });
  LATDIV_ASSERT(it != meta.slots.end(), "index_remove: unknown bank slot");
  // The erased queue element is always the earliest remaining request of
  // this (group, bank) matching its row, so the first (row, arrival)
  // match in the seq-ordered slot is the right one.
  auto rit = std::find_if(
      it->items.begin(), it->items.end(), [&](const WgGroupMeta::QueuedReq& q) {
        return q.row == req.loc.row && q.arrival == req.arrived_at_mc;
      });
  LATDIV_ASSERT(rit != it->items.end(), "index_remove: request not indexed");
  it->items.erase(rit);
  ++meta.version;
  if (cfg_.merb) {
    auto cit = row_counts_.find(row_key(req.loc.bank, req.loc.row));
    LATDIV_ASSERT(cit != row_counts_.end() && cit->second > 0,
                  "index_remove: row count underflow");
    if (--cit->second == 0) row_counts_.erase(cit);
  }
  if (cfg_.shared_data_boost) {
    auto kit = census_.find(census_key(req.loc.bank, req.loc.row));
    LATDIV_ASSERT(kit != census_.end(), "index_remove: census key missing");
    auto& users = kit->second;
    auto uit = std::find_if(users.begin(), users.end(), [&](const auto& u) {
      return u.first == req.tag.instr;
    });
    LATDIV_ASSERT(uit != users.end() && uit->second > 0,
                  "index_remove: census count underflow");
    if (--uit->second == 0) users.erase(uit);
    if (users.empty()) census_.erase(kit);
  }
}

std::uint32_t WgPolicy::group_row_count(const WgGroupMeta& meta, BankId bank,
                                        RowId row) const {
  auto it = std::find_if(
      meta.slots.begin(), meta.slots.end(),
      [&](const WgGroupMeta::BankSlot& s) { return s.bank == bank; });
  if (it == meta.slots.end()) return 0;
  std::uint32_t n = 0;
  for (const WgGroupMeta::QueuedReq& q : it->items) {
    if (q.row == row) ++n;
  }
  return n;
}

// ---- notifications ----------------------------------------------------

void WgPolicy::on_push(MemoryController& mc, const MemRequest& req,
                       Cycle now) {
  if (req.kind != ReqKind::kRead) return;  // warp-groups are read-only
  WgGroupMeta& meta = groups_[req.tag.instr];
  const bool first = meta.seen == 0;
  // Index before the WG-M replay below: the replay scores this group, and
  // the request is already in the read queue when on_push fires.
  index_add(meta, req);
  if (first) {
    meta.tag = req.tag;
    meta.first_arrival = now;
    // A remote controller may have selected this warp before its
    // requests reached us; replay any matching recent message.
    if (cfg_.multi_channel) {
      while (!recent_msgs_.empty() &&
             recent_msgs_.front().at + cfg_.coord_msg_ttl < now) {
        recent_msgs_.pop_front();
      }
      for (const RecentMsg& m : recent_msgs_) {
        if (m.instr == req.tag.instr) {
          CoordMsg replay;
          replay.tag = req.tag;
          replay.score = m.score;
          ++meta.seen;  // count first so the handler sees it pending
          on_remote_selection(mc, replay, now);
          --meta.seen;
          break;
        }
      }
    }
  }
  ++meta.seen;
}

void WgPolicy::on_group_complete(MemoryController&, const WarpTag& tag,
                                 Cycle) {
  auto it = groups_.find(tag.instr);
  if (it == groups_.end()) return;  // every request hit in the caches
  it->second.complete = true;
  ++stats_.groups_completed;
  forget_if_done(tag.instr);
}

void WgPolicy::on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                                   Cycle now) {
  if (!cfg_.multi_channel) return;
  auto it = groups_.find(msg.tag.instr);
  if (it == groups_.end() || it->second.pushed >= it->second.seen) {
    // Nothing to boost yet — remember the message briefly in case this
    // warp's requests are still in flight towards us.
    recent_msgs_.push_back(RecentMsg{msg.tag.instr, msg.score, now});
    if (recent_msgs_.size() > 64) recent_msgs_.pop_front();
    return;
  }
  WgGroupMeta& meta = it->second;
  const Score local = score_group(mc, msg.tag.instr);
  const std::uint32_t lc = local.completion > meta.coord_bonus
                               ? local.completion - meta.coord_bonus
                               : 0;
  // Another controller expects to finish this warp's requests at RC; if
  // we are the laggard (LC > RC), boost the group by the difference.
  if (lc > msg.score) {
    meta.coord_bonus += lc - msg.score;
    ++stats_.coord_msgs_applied;
  }
}

void WgPolicy::on_drain_start(MemoryController& mc, Cycle) {
  std::size_t stalled = 0;
  std::size_t small = 0;
  // lint: order-independent (pure counting; no selection by position)
  for (const auto& [instr, meta] : groups_) {
    const std::uint32_t remaining = meta.queued();
    if (remaining == 0) continue;
    ++stalled;
    const bool unit_sized = meta.seen == 1;
    const bool orphaned = meta.pushed > 0 && remaining <= cfg_.orphan_limit;
    if (unit_sized || orphaned) ++small;
  }
  mc.record_drain_stall(stalled, small);
}

bool WgPolicy::write_pressure(const MemoryController& mc) const {
  if (!cfg_.write_aware) return false;
  // Only the window BEFORE a drain matters: once the drain is underway
  // the stalled groups are already stalled, and right after it the
  // occupancy passes back down through the band harmlessly.
  if (mc.in_write_drain()) return false;
  return mc.write_queue().size() + cfg_.wq_guard >=
         mc.config().wq_high_watermark;
}

// ---- scoring ----------------------------------------------------------

std::uint32_t WgPolicy::bank_queue_score(const MemoryController& mc,
                                         BankId bank) const {
  if (bqs_cache_.empty()) bqs_cache_.assign(banks_, {0, 0});
  auto& entry = bqs_cache_[bank];
  const std::uint64_t epoch = mc.bank_epoch(bank) + 1;  // 0 = never cached
  if (entry.first == epoch) return entry.second;
  std::uint32_t score = 0;
  RowId running = mc.channel().open_row(bank);
  for (const MemRequest& queued : mc.bank_queue(bank)) {
    score += (queued.loc.row == running) ? cfg_.score_hit : cfg_.score_miss;
    running = queued.loc.row;
  }
  entry = {epoch, score};
  return score;
}

WgPolicy::Score WgPolicy::score_group(const MemoryController& mc,
                                      WarpInstrUid instr) const {
  const auto git = groups_.find(instr);
  if (git == groups_.end()) return {};
  const WgGroupMeta& meta = git->second;

  if (meta.score_version == meta.version) {
    bool valid = true;
    for (const WgGroupMeta::BankSlot& slot : meta.slots) {
      if (!slot.items.empty() &&
          slot.score_epoch != mc.bank_epoch(slot.bank) + 1) {
        valid = false;
        break;
      }
    }
    if (valid) return Score{meta.score_completion, meta.score_row_hits};
  }

  // Walk the group's queued requests per touched bank, simulating the
  // bank's planned row sequence starting from the controller's predictor.
  Score out;
  for (const WgGroupMeta::BankSlot& slot : meta.slots) {
    if (slot.items.empty()) continue;
    RowId running = mc.predicted_row(slot.bank);
    std::uint32_t score = bank_queue_score(mc, slot.bank);
    for (const WgGroupMeta::QueuedReq& q : slot.items) {
      const bool hit = q.row == running;
      score += hit ? cfg_.score_hit : cfg_.score_miss;
      if (hit) ++out.row_hits;
      running = q.row;
    }
    out.completion = std::max(out.completion, score);
    slot.score_epoch = mc.bank_epoch(slot.bank) + 1;
  }
  meta.score_version = meta.version;
  meta.score_completion = out.completion;
  meta.score_row_hits = out.row_hits;
  return out;
}

void WgPolicy::forget_if_done(WarpInstrUid instr) {
  auto it = groups_.find(instr);
  if (it == groups_.end()) return;
  const WgGroupMeta& meta = it->second;
  if (meta.complete && meta.pushed >= meta.seen &&
      (!current_ || *current_ != instr)) {
    if (meta.in_active) {
      // The lazy sweep may not have run since the group drained; its
      // active_ entry points into the node being erased.
      const auto ait = std::find_if(
          active_.begin(), active_.end(),
          [&](const auto& e) { return e.first == instr; });
      LATDIV_ASSERT(ait != active_.end(), "in_active group not listed");
      *ait = active_.back();
      active_.pop_back();
    }
    groups_.erase(it);
  }
}

// ---- selection --------------------------------------------------------

void WgPolicy::select_next_group(MemoryController& mc, Cycle now) {
  auto& rq = mc.read_queue();
  const std::uint64_t epoch = mc.mutation_epoch();
  if (skip_epoch_ == epoch && now < skip_until_) return;
  if (rq.empty()) {
    skip_epoch_ = epoch;
    skip_until_ = kNoCycle;  // only new state can change the answer
    return;
  }

  // Candidates come from the incremental per-group index (one entry per
  // group with queued requests), sorted by each group's earliest queued
  // request so the list reproduces the read queue's first-occurrence
  // order — the final tie-breaker of every selection rule below.
  cands_.clear();
  for (std::size_t i = 0; i < active_.size();) {
    const WarpInstrUid instr = active_[i].first;
    WgGroupMeta& meta = *active_[i].second;
    if (meta.queued() == 0) {  // drained since listing: sweep out
      meta.in_active = false;
      active_[i] = active_.back();
      active_.pop_back();
      continue;
    }
    ++i;
    Cand c{instr, &meta, ~std::uint64_t{0}, 0, kNoCycle, 0};
    for (const WgGroupMeta::BankSlot& slot : meta.slots) {
      if (slot.items.empty()) continue;
      const WgGroupMeta::QueuedReq& front = slot.items.front();
      c.head_seq = std::min(c.head_seq, front.seq);
      c.oldest = std::min(c.oldest, front.arrival);
      c.count += static_cast<std::uint32_t>(slot.items.size());
      if (mc.predicted_row(slot.bank) != front.row) {
        c.opens_row_mask |= 1u << slot.bank;
      }
    }
    cands_.push_back(c);
  }
  std::sort(cands_.begin(), cands_.end(),
            [](const Cand& a, const Cand& b) { return a.head_seq < b.head_seq; });

  // A group is selectable when (a) its requests fit the bank command
  // queues and (b) any bank whose row it would close has drained — the
  // same stream hysteresis the GMC row sorter applies: a hit for the
  // still-open row may be one arrival away, and closing early forfeits
  // it.  The liveness fallback below ignores (b).
  const auto depth_cap = mc.config().bank_queue_depth;
  auto fits = [&](const Cand& c, bool require_drained) {
    for (const WgGroupMeta::BankSlot& slot : c.meta->slots) {
      if (slot.items.empty()) continue;
      // Groups larger than a bank's command queue can never fit whole;
      // they become selectable once the full queue depth is free and
      // then drain incrementally (drain_current keeps them current).
      const auto need = std::min<std::size_t>(slot.items.size(), depth_cap);
      if (!mc.bank_queue_has_space(slot.bank, need)) {
        return false;
      }
      if (require_drained && (c.opens_row_mask & (1u << slot.bank)) != 0 &&
          mc.bank_queue_size(slot.bank) != 0) {
        return false;
      }
    }
    return true;
  };

  // WG-W: imminent write drain — unit-remaining complete groups first.
  // Two tiers: unit groups that respect the stream hysteresis are
  // preferred; only when none exists does drain-imminence justify
  // closing a row early to finish a warp before the drain.
  if (write_pressure(mc)) {
    const Cand* best = nullptr;
    for (const bool require_drained : {true, false}) {
      for (const Cand& c : cands_) {
        if (!c.meta->complete) continue;
        if (c.count != 1 || !fits(c, require_drained)) continue;
        if (best == nullptr || c.oldest < best->oldest) best = &c;
      }
      if (best != nullptr) break;
    }
    if (best != nullptr) {
      current_ = best->instr;
      skip_epoch_ = ~std::uint64_t{0};
      ++stats_.groups_selected;
      ++stats_.writeaware_selections;
      stats_.group_size.add(best->meta->seen);
      if (cfg_.multi_channel) {
        mc.announce_selection(best->meta->tag, 0);
      }
      return;
    }
  }

  // Shared-data extension: how many of the group's queued requests touch
  // a (bank, row) that at least one other pending group also needs.  The
  // census is maintained incrementally by index_add/index_remove.
  auto shared_requests = [&](const Cand& c) -> std::uint32_t {
    if (!cfg_.shared_data_boost) return 0;
    std::uint32_t n = 0;
    for (const WgGroupMeta::BankSlot& slot : c.meta->slots) {
      for (const WgGroupMeta::QueuedReq& q : slot.items) {
        const auto kit = census_.find(census_key(slot.bank, q.row));
        if (kit != census_.end() && kit->second.size() >= 2) ++n;
      }
    }
    return n;
  };

  // BASJF: lowest effective completion score among complete groups; ties
  // go to the group with more row hits, then the older group.
  const Cand* best = nullptr;
  Score best_score{};
  std::uint32_t best_effective = 0;
  bool best_was_boosted = false;
  for (const Cand& c : cands_) {
    if (!c.meta->complete || !fits(c, /*require_drained=*/true)) continue;
    const Score s = score_group(mc, c.instr);
    std::uint32_t bonus = c.meta->coord_bonus;
    std::uint32_t shared_bonus = 0;
    if (cfg_.shared_data_boost) {
      shared_bonus = cfg_.shared_weight * shared_requests(c);
      bonus += shared_bonus;
    }
    const std::uint32_t eff = s.completion > bonus ? s.completion - bonus : 0;
    const bool better =
        best == nullptr || eff < best_effective ||
        (eff == best_effective &&
         (s.row_hits > best_score.row_hits ||
          (s.row_hits == best_score.row_hits && c.oldest < best->oldest)));
    if (better) {
      best = &c;
      best_score = s;
      best_effective = eff;
      best_was_boosted = shared_bonus > 0;
    }
  }
  if (best != nullptr && best_was_boosted) ++stats_.shared_boosts;

  if (best == nullptr) {
    // No fully-formed warp-group.  Liveness fallback: under queue pressure
    // or age limit, drain the group holding the oldest request so the
    // remaining members of other groups can reach the controller.
    const bool pressure = rq.size() + cfg_.rq_pressure_slack >= rq.capacity();
    const Cand* oldest = nullptr;
    for (const Cand& c : cands_) {
      if (!fits(c, /*require_drained=*/false)) continue;
      if (oldest == nullptr || c.oldest < oldest->oldest) oldest = &c;
    }
    if (oldest == nullptr) {
      // Every candidate waits on bank space; only a state change helps.
      skip_epoch_ = epoch;
      skip_until_ = kNoCycle;
      return;
    }
    if (!pressure && now - oldest->oldest < cfg_.fallback_age) {
      // Time alone can flip this outcome: wake when the age bound hits.
      skip_epoch_ = epoch;
      skip_until_ = oldest->oldest + cfg_.fallback_age;
      return;
    }
    current_ = oldest->instr;
    skip_epoch_ = ~std::uint64_t{0};
    ++stats_.groups_selected;
    ++stats_.fallback_selections;
    stats_.group_size.add(oldest->meta->seen);
    return;
  }

  current_ = best->instr;
  skip_epoch_ = ~std::uint64_t{0};
  ++stats_.groups_selected;
  stats_.group_size.add(best->meta->seen);
  if (cfg_.multi_channel) {
    mc.announce_selection(best->meta->tag, best_effective);
  }
}

// ---- draining ---------------------------------------------------------

bool WgPolicy::push_filler(MemoryController& mc, BankId bank, Cycle now) {
  auto& rq = mc.read_queue();
  const RowId target_row = mc.predicted_row(bank);
  if (target_row == kNoRow || !mc.bank_queue_has_space(bank)) return false;

  // Prefer the filler whose warp-group is closest to completion at this
  // controller (paper: overlap the miss with hits from nearly-complete
  // warps); among ties, the group whose matching request is oldest in
  // the queue.  The winner minimises (remaining, earliest matching seq),
  // which is exactly what the old oldest-first queue scan selected.
  const WgGroupMeta* best_meta = nullptr;
  WarpInstrUid best_instr = 0;
  std::uint32_t best_remaining = 0;
  std::uint64_t best_seq = 0;
  // Winner minimises a unique (remaining, seq) key, so active_ order is
  // irrelevant here too.
  for (std::size_t i = 0; i < active_.size();) {
    const WarpInstrUid instr = active_[i].first;
    WgGroupMeta& ameta = *active_[i].second;
    if (ameta.queued() == 0) {  // drained since listing: sweep out
      ameta.in_active = false;
      active_[i] = active_.back();
      active_.pop_back();
      continue;
    }
    ++i;
    const WgGroupMeta& meta = ameta;
    if (current_ && instr == *current_) continue;  // not a filler
    const auto sit = std::find_if(
        meta.slots.begin(), meta.slots.end(),
        [&](const WgGroupMeta::BankSlot& s) { return s.bank == bank; });
    if (sit == meta.slots.end()) continue;
    std::uint64_t seq = ~std::uint64_t{0};
    for (const WgGroupMeta::QueuedReq& q : sit->items) {
      if (q.row == target_row) {
        seq = q.seq;
        break;
      }
    }
    if (seq == ~std::uint64_t{0}) continue;
    const std::uint32_t rem = meta.queued();
    if (best_meta == nullptr || rem < best_remaining ||
        (rem == best_remaining && seq < best_seq)) {
      best_meta = &meta;
      best_instr = instr;
      best_remaining = rem;
      best_seq = seq;
    }
  }
  if (best_meta == nullptr) return false;

  // One targeted scan to erase the chosen request from the real queue
  // (the index has no iterators into it); the first match is the
  // earliest, which is the indexed winner.
  auto it = rq.begin();
  for (; it != rq.end(); ++it) {
    if (it->tag.instr == best_instr && it->loc.bank == bank &&
        it->loc.row == target_row) {
      break;
    }
  }
  LATDIV_ASSERT(it != rq.end(), "push_filler: indexed request not in queue");
  MemRequest req = *it;
  rq.erase(it);
  index_remove(groups_.at(best_instr), req);
  mc.send_to_bank(req, now);
  ++groups_.at(best_instr).pushed;
  return true;
}

std::uint32_t WgPolicy::drain_current(MemoryController& mc, Cycle now) {
  LATDIV_ASSERT(current_.has_value(), "drain without a selected group");
  auto& rq = mc.read_queue();
  std::uint32_t pushes = 0;

  // The bank table services each bank's slice of the warp-group as a
  // row-sorted stream: requests extending a bank's current row go first,
  // so the group's intra-warp row locality survives the (arbitrary)
  // arrival order.  Two passes: row-extending requests, then the rest.
  for (int pass = 0; pass < 2; ++pass) {
    auto it = rq.begin();
    while (it != rq.end() && pushes < cfg_.max_pushes_per_cycle) {
      if (it->tag.instr != *current_) {
        ++it;
        continue;
      }
      if (pass == 0 && mc.predicted_row(it->loc.bank) != it->loc.row) {
        ++it;  // misses wait for the second pass
        continue;
      }
    const BankId bank = it->loc.bank;
    if (!mc.bank_queue_has_space(bank)) {
      ++it;  // this bank is saturated; other banks of the group may go
      continue;
    }
    const bool miss = mc.predicted_row(bank) != it->loc.row;
    if (cfg_.merb && miss) {
      const std::uint32_t threshold = merb_.value(mc.banks_with_work());
      if (mc.tail_streak(bank) < threshold) {
        if (push_filler(mc, bank, now)) {
          ++stats_.merb_deferrals;
          ++pushes;
          it = rq.begin();  // erase invalidated iterators; rescan
          continue;
        }
        // No fillers available: nothing to hide behind; admit the miss.
      } else {
        // Threshold met — orphan control: if only 1..orphan_limit hits to
        // the outgoing row remain, service them before closing it.
        const RowId target = mc.predicted_row(bank);
        const auto cit = row_counts_.find(row_key(bank, target));
        const std::uint32_t total =
            cit != row_counts_.end() ? cit->second : 0;
        const std::uint32_t own =
            group_row_count(groups_.at(*current_), bank, target);
        LATDIV_ASSERT(total >= own, "orphan count underflow");
        const std::uint32_t fillers = total - own;
        if (fillers >= 1 && fillers <= cfg_.orphan_limit) {
          bool pushed_any = false;
          while (pushes < cfg_.max_pushes_per_cycle &&
                 push_filler(mc, bank, now)) {
            ++stats_.orphan_topups;
            ++pushes;
            pushed_any = true;
          }
          if (pushed_any) {
            it = rq.begin();
            continue;
          }
        }
      }
      if (!mc.bank_queue_has_space(bank)) {
        ++it;
        continue;
      }
    }
      MemRequest req = *it;
      it = rq.erase(it);
      index_remove(groups_.at(req.tag.instr), req);
      mc.send_to_bank(req, now);
      ++groups_.at(req.tag.instr).pushed;
      ++pushes;
      if (pass == 0) it = rq.begin();  // a new tail row may unlock more hits
    }
  }
  return pushes;
}

void WgPolicy::schedule_reads(MemoryController& mc, Cycle now) {
  // Several rounds per cycle: each selected group now fits its bank
  // queues by construction, so a round either pulls a whole group or
  // stops — multiple small groups can be pulled in one cycle, keeping
  // every bank fed (the GMC feeds all banks in parallel; the warp-aware
  // scheduler must not fall behind on sheer insertion throughput).
  for (int round = 0; round < 4; ++round) {
    if (!current_) select_next_group(mc, now);
    if (!current_) return;
    const WarpInstrUid instr = *current_;
    drain_current(mc, now);
    if (groups_.at(instr).queued() == 0) {
      // Fully pulled (or, for a fallback-selected incomplete group, all
      // of its received requests pulled) — move on.
      current_.reset();
      forget_if_done(instr);
      continue;
    }
    return;
  }
}

}  // namespace latdiv
