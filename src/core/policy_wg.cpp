#include "core/policy_wg.hpp"

#include <algorithm>
#include <array>

#include "common/log.hpp"

namespace latdiv {

namespace {

/// Requests of `instr` currently waiting in the read queue.
std::uint32_t pending_in_queue(const MemoryController& mc, WarpInstrUid instr) {
  std::uint32_t n = 0;
  for (const MemRequest& req :
       mc.read_queue()) {
    if (req.tag.instr == instr) ++n;
  }
  return n;
}

}  // namespace

void WgPolicy::on_push(MemoryController& mc, const MemRequest& req,
                       Cycle now) {
  if (req.kind != ReqKind::kRead) return;  // warp-groups are read-only
  WgGroupMeta& meta = groups_[req.tag.instr];
  if (meta.seen == 0) {
    meta.tag = req.tag;
    meta.first_arrival = now;
    // A remote controller may have selected this warp before its
    // requests reached us; replay any matching recent message.
    if (cfg_.multi_channel) {
      while (!recent_msgs_.empty() &&
             recent_msgs_.front().at + cfg_.coord_msg_ttl < now) {
        recent_msgs_.pop_front();
      }
      for (const RecentMsg& m : recent_msgs_) {
        if (m.instr == req.tag.instr) {
          CoordMsg replay;
          replay.tag = req.tag;
          replay.score = m.score;
          ++meta.seen;  // count first so the handler sees it pending
          on_remote_selection(mc, replay, now);
          --meta.seen;
          break;
        }
      }
    }
  }
  ++meta.seen;
}

void WgPolicy::on_group_complete(MemoryController&, const WarpTag& tag,
                                 Cycle) {
  auto it = groups_.find(tag.instr);
  if (it == groups_.end()) return;  // every request hit in the caches
  it->second.complete = true;
  ++stats_.groups_completed;
  forget_if_done(tag.instr);
}

void WgPolicy::on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                                   Cycle now) {
  if (!cfg_.multi_channel) return;
  auto it = groups_.find(msg.tag.instr);
  if (it == groups_.end() || it->second.pushed >= it->second.seen) {
    // Nothing to boost yet — remember the message briefly in case this
    // warp's requests are still in flight towards us.
    recent_msgs_.push_back(RecentMsg{msg.tag.instr, msg.score, now});
    if (recent_msgs_.size() > 64) recent_msgs_.pop_front();
    return;
  }
  WgGroupMeta& meta = it->second;
  const Score local = score_group(mc, msg.tag.instr);
  const std::uint32_t lc = local.completion > meta.coord_bonus
                               ? local.completion - meta.coord_bonus
                               : 0;
  // Another controller expects to finish this warp's requests at RC; if
  // we are the laggard (LC > RC), boost the group by the difference.
  if (lc > msg.score) {
    meta.coord_bonus += lc - msg.score;
    ++stats_.coord_msgs_applied;
  }
}

void WgPolicy::on_drain_start(MemoryController& mc, Cycle) {
  std::size_t stalled = 0;
  std::size_t small = 0;
  // lint: order-independent (pure counting; no selection by position)
  for (const auto& [instr, meta] : groups_) {
    const std::uint32_t remaining = meta.seen - meta.pushed;
    if (remaining == 0) continue;
    ++stalled;
    const bool unit_sized = meta.seen == 1;
    const bool orphaned = meta.pushed > 0 && remaining <= cfg_.orphan_limit;
    if (unit_sized || orphaned) ++small;
  }
  mc.record_drain_stall(stalled, small);
}

bool WgPolicy::write_pressure(const MemoryController& mc) const {
  if (!cfg_.write_aware) return false;
  // Only the window BEFORE a drain matters: once the drain is underway
  // the stalled groups are already stalled, and right after it the
  // occupancy passes back down through the band harmlessly.
  if (mc.in_write_drain()) return false;
  return mc.write_queue().size() + cfg_.wq_guard >=
         mc.config().wq_high_watermark;
}

std::uint32_t WgPolicy::bank_queue_score(const MemoryController& mc,
                                         BankId bank) const {
  std::uint32_t score = 0;
  RowId running = mc.channel().open_row(bank);
  for (const MemRequest& queued : mc.bank_queue(bank)) {
    score += (queued.loc.row == running) ? cfg_.score_hit : cfg_.score_miss;
    running = queued.loc.row;
  }
  return score;
}

WgPolicy::Score WgPolicy::score_group(const MemoryController& mc,
                                      WarpInstrUid instr) const {
  // Walk the group's queued requests in order, simulating each touched
  // bank's planned row sequence starting from the controller's predictor.
  struct BankAccum {
    BankId bank;
    RowId running;
    std::uint32_t score;
  };
  // A warp touches ~2 banks per controller on average; linear scan of a
  // tiny vector beats a map here.
  std::vector<BankAccum> banks;
  Score out;
  for (const MemRequest& req :
       mc.read_queue()) {
    if (req.tag.instr != instr) continue;
    auto it = std::find_if(banks.begin(), banks.end(), [&](const BankAccum& a) {
      return a.bank == req.loc.bank;
    });
    if (it == banks.end()) {
      banks.push_back(BankAccum{req.loc.bank, mc.predicted_row(req.loc.bank),
                                bank_queue_score(mc, req.loc.bank)});
      it = banks.end() - 1;
    }
    const bool hit = req.loc.row == it->running;
    it->score += hit ? cfg_.score_hit : cfg_.score_miss;
    if (hit) ++out.row_hits;
    it->running = req.loc.row;
  }
  for (const BankAccum& a : banks) {
    out.completion = std::max(out.completion, a.score);
  }
  return out;
}

void WgPolicy::forget_if_done(WarpInstrUid instr) {
  auto it = groups_.find(instr);
  if (it == groups_.end()) return;
  const WgGroupMeta& meta = it->second;
  if (meta.complete && meta.pushed >= meta.seen &&
      (!current_ || *current_ != instr)) {
    groups_.erase(it);
  }
}

void WgPolicy::select_next_group(MemoryController& mc, Cycle now) {
  auto& rq = mc.read_queue();
  if (rq.empty()) return;

  // Bucket the read queue by warp instruction (one pass), tracking the
  // per-bank footprint so a group is only eligible when its requests FIT
  // the bank command queues right now.  Selecting a group that cannot be
  // pulled would head-of-line-block the transaction scheduler behind one
  // saturated bank while other banks starve.
  struct Cand {
    WarpInstrUid instr;
    std::uint32_t count = 0;
    Cycle oldest = kNoCycle;
    std::array<std::uint8_t, 32> per_bank{};
    std::uint32_t opens_row_mask = 0;  ///< banks where this group row-misses
  };
  std::vector<Cand> cands;
  for (const MemRequest& req : rq) {
    auto it = std::find_if(cands.begin(), cands.end(), [&](const Cand& c) {
      return c.instr == req.tag.instr;
    });
    if (it == cands.end()) {
      cands.push_back(Cand{req.tag.instr, 1, req.arrived_at_mc, {}, 0});
      it = cands.end() - 1;
    } else {
      ++it->count;
      it->oldest = std::min(it->oldest, req.arrived_at_mc);
    }
    if (it->per_bank[req.loc.bank] == 0 &&
        mc.predicted_row(req.loc.bank) != req.loc.row) {
      it->opens_row_mask |= 1u << req.loc.bank;
    }
    ++it->per_bank[req.loc.bank];
  }
  const auto banks = static_cast<std::size_t>(mc.channel().timing().banks);
  // A group is selectable when (a) its requests fit the bank command
  // queues and (b) any bank whose row it would close has drained — the
  // same stream hysteresis the GMC row sorter applies: a hit for the
  // still-open row may be one arrival away, and closing early forfeits
  // it.  The liveness fallback below ignores (b).
  const auto depth_cap = mc.config().bank_queue_depth;
  auto fits = [&](const Cand& c, bool require_drained) {
    for (std::size_t b = 0; b < banks; ++b) {
      if (c.per_bank[b] == 0) continue;
      // Groups larger than a bank's command queue can never fit whole;
      // they become selectable once the full queue depth is free and
      // then drain incrementally (drain_current keeps them current).
      const auto need = std::min<std::uint32_t>(c.per_bank[b], depth_cap);
      if (!mc.bank_queue_has_space(static_cast<BankId>(b), need)) {
        return false;
      }
      if (require_drained && (c.opens_row_mask & (1u << b)) != 0 &&
          mc.bank_queue_size(static_cast<BankId>(b)) != 0) {
        return false;
      }
    }
    return true;
  };

  // WG-W: imminent write drain — unit-remaining complete groups first.
  // Two tiers: unit groups that respect the stream hysteresis are
  // preferred; only when none exists does drain-imminence justify
  // closing a row early to finish a warp before the drain.
  if (write_pressure(mc)) {
    const Cand* best = nullptr;
    for (const bool require_drained : {true, false}) {
      for (const Cand& c : cands) {
        const auto git = groups_.find(c.instr);
        if (git == groups_.end() || !git->second.complete) continue;
        if (c.count != 1 || !fits(c, require_drained)) continue;
        if (best == nullptr || c.oldest < best->oldest) best = &c;
      }
      if (best != nullptr) break;
    }
    if (best != nullptr) {
      current_ = best->instr;
      ++stats_.groups_selected;
      ++stats_.writeaware_selections;
      stats_.group_size.add(groups_.at(best->instr).seen);
      if (cfg_.multi_channel) {
        mc.announce_selection(groups_.at(best->instr).tag, 0);
      }
      return;
    }
  }

  // Shared-row census for the shared-data extension: how many groups
  // touch each (bank, row) pair in the queue.
  struct RowUse {
    std::uint32_t key;
    WarpInstrUid first_instr;
    bool shared;
  };
  std::vector<RowUse> row_uses;
  if (cfg_.shared_data_boost) {
    for (const MemRequest& req : rq) {
      const std::uint32_t key =
          (static_cast<std::uint32_t>(req.loc.bank) << 24) |
          (req.loc.row & 0xFFFFFF);
      auto it = std::find_if(row_uses.begin(), row_uses.end(),
                             [&](const RowUse& u) { return u.key == key; });
      if (it == row_uses.end()) {
        row_uses.push_back(RowUse{key, req.tag.instr, false});
      } else if (it->first_instr != req.tag.instr) {
        it->shared = true;
      }
    }
  }
  auto shared_requests = [&](WarpInstrUid instr) -> std::uint32_t {
    if (!cfg_.shared_data_boost) return 0;
    std::uint32_t n = 0;
    for (const MemRequest& req : rq) {
      if (req.tag.instr != instr) continue;
      const std::uint32_t key =
          (static_cast<std::uint32_t>(req.loc.bank) << 24) |
          (req.loc.row & 0xFFFFFF);
      for (const RowUse& u : row_uses) {
        if (u.key == key && u.shared) {
          ++n;
          break;
        }
      }
    }
    return n;
  };

  // BASJF: lowest effective completion score among complete groups; ties
  // go to the group with more row hits, then the older group.
  const Cand* best = nullptr;
  Score best_score{};
  std::uint32_t best_effective = 0;
  bool best_was_boosted = false;
  for (const Cand& c : cands) {
    const auto git = groups_.find(c.instr);
    LATDIV_ASSERT(git != groups_.end(), "queued request without group meta");
    if (!git->second.complete || !fits(c, /*require_drained=*/true)) continue;
    const Score s = score_group(mc, c.instr);
    std::uint32_t bonus = git->second.coord_bonus;
    std::uint32_t shared_bonus = 0;
    if (cfg_.shared_data_boost) {
      shared_bonus = cfg_.shared_weight * shared_requests(c.instr);
      bonus += shared_bonus;
    }
    const std::uint32_t eff = s.completion > bonus ? s.completion - bonus : 0;
    const bool better =
        best == nullptr || eff < best_effective ||
        (eff == best_effective &&
         (s.row_hits > best_score.row_hits ||
          (s.row_hits == best_score.row_hits && c.oldest < best->oldest)));
    if (better) {
      best = &c;
      best_score = s;
      best_effective = eff;
      best_was_boosted = shared_bonus > 0;
    }
  }
  if (best != nullptr && best_was_boosted) ++stats_.shared_boosts;

  if (best == nullptr) {
    // No fully-formed warp-group.  Liveness fallback: under queue pressure
    // or age limit, drain the group holding the oldest request so the
    // remaining members of other groups can reach the controller.
    const bool pressure = rq.size() + cfg_.rq_pressure_slack >= rq.capacity();
    const Cand* oldest = nullptr;
    for (const Cand& c : cands) {
      if (!fits(c, /*require_drained=*/false)) continue;
      if (oldest == nullptr || c.oldest < oldest->oldest) oldest = &c;
    }
    if (oldest == nullptr) return;  // every candidate waits on bank space
    if (!pressure && now - oldest->oldest < cfg_.fallback_age) return;
    current_ = oldest->instr;
    ++stats_.groups_selected;
    ++stats_.fallback_selections;
    stats_.group_size.add(groups_.at(oldest->instr).seen);
    return;
  }

  current_ = best->instr;
  ++stats_.groups_selected;
  stats_.group_size.add(groups_.at(best->instr).seen);
  if (cfg_.multi_channel) {
    mc.announce_selection(groups_.at(best->instr).tag, best_effective);
  }
}

bool WgPolicy::push_filler(MemoryController& mc, BankId bank, Cycle now) {
  auto& rq = mc.read_queue();
  const RowId target_row = mc.predicted_row(bank);
  if (target_row == kNoRow || !mc.bank_queue_has_space(bank)) return false;

  // Prefer the filler whose warp-group is closest to completion at this
  // controller (paper: overlap the miss with hits from nearly-complete
  // warps); among ties, the oldest request.
  std::unordered_map<WarpInstrUid, std::uint32_t> remaining;
  for (const MemRequest& req : rq) ++remaining[req.tag.instr];

  auto best = rq.end();
  std::uint32_t best_remaining = 0;
  for (auto it = rq.begin(); it != rq.end(); ++it) {
    if (it->loc.bank != bank || it->loc.row != target_row) continue;
    if (current_ && it->tag.instr == *current_) continue;  // not a filler
    const std::uint32_t rem = remaining.at(it->tag.instr);
    if (best == rq.end() || rem < best_remaining) {
      best = it;
      best_remaining = rem;
    }
  }
  if (best == rq.end()) return false;
  MemRequest req = *best;
  rq.erase(best);
  mc.send_to_bank(req, now);
  ++groups_.at(req.tag.instr).pushed;
  return true;
}

std::uint32_t WgPolicy::drain_current(MemoryController& mc, Cycle now) {
  LATDIV_ASSERT(current_.has_value(), "drain without a selected group");
  auto& rq = mc.read_queue();
  std::uint32_t pushes = 0;

  // The bank table services each bank's slice of the warp-group as a
  // row-sorted stream: requests extending a bank's current row go first,
  // so the group's intra-warp row locality survives the (arbitrary)
  // arrival order.  Two passes: row-extending requests, then the rest.
  for (int pass = 0; pass < 2; ++pass) {
    auto it = rq.begin();
    while (it != rq.end() && pushes < cfg_.max_pushes_per_cycle) {
      if (it->tag.instr != *current_) {
        ++it;
        continue;
      }
      if (pass == 0 && mc.predicted_row(it->loc.bank) != it->loc.row) {
        ++it;  // misses wait for the second pass
        continue;
      }
    const BankId bank = it->loc.bank;
    if (!mc.bank_queue_has_space(bank)) {
      ++it;  // this bank is saturated; other banks of the group may go
      continue;
    }
    const bool miss = mc.predicted_row(bank) != it->loc.row;
    if (cfg_.merb && miss) {
      const std::uint32_t threshold = merb_.value(mc.banks_with_work());
      if (mc.tail_streak(bank) < threshold) {
        if (push_filler(mc, bank, now)) {
          ++stats_.merb_deferrals;
          ++pushes;
          it = rq.begin();  // erase invalidated iterators; rescan
          continue;
        }
        // No fillers available: nothing to hide behind; admit the miss.
      } else {
        // Threshold met — orphan control: if only 1..orphan_limit hits to
        // the outgoing row remain, service them before closing it.
        std::uint32_t fillers = 0;
        const RowId target = mc.predicted_row(bank);
        for (const MemRequest& req : rq) {
          if (req.loc.bank == bank && req.loc.row == target &&
              req.tag.instr != *current_) {
            ++fillers;
          }
        }
        if (fillers >= 1 && fillers <= cfg_.orphan_limit) {
          bool pushed_any = false;
          while (pushes < cfg_.max_pushes_per_cycle &&
                 push_filler(mc, bank, now)) {
            ++stats_.orphan_topups;
            ++pushes;
            pushed_any = true;
          }
          if (pushed_any) {
            it = rq.begin();
            continue;
          }
        }
      }
      if (!mc.bank_queue_has_space(bank)) {
        ++it;
        continue;
      }
    }
      MemRequest req = *it;
      it = rq.erase(it);
      mc.send_to_bank(req, now);
      ++groups_.at(req.tag.instr).pushed;
      ++pushes;
      if (pass == 0) it = rq.begin();  // a new tail row may unlock more hits
    }
  }
  return pushes;
}

void WgPolicy::schedule_reads(MemoryController& mc, Cycle now) {
  // Several rounds per cycle: each selected group now fits its bank
  // queues by construction, so a round either pulls a whole group or
  // stops — multiple small groups can be pulled in one cycle, keeping
  // every bank fed (the GMC feeds all banks in parallel; the warp-aware
  // scheduler must not fall behind on sheer insertion throughput).
  for (int round = 0; round < 4; ++round) {
    if (!current_) select_next_group(mc, now);
    if (!current_) return;
    const WarpInstrUid instr = *current_;
    drain_current(mc, now);
    if (pending_in_queue(mc, instr) == 0) {
      // Fully pulled (or, for a fallback-selected incomplete group, all
      // of its received requests pulled) — move on.
      current_.reset();
      forget_if_done(instr);
      continue;
    }
    return;
  }
}

}  // namespace latdiv
