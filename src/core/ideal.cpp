#include "core/ideal.hpp"

#include <algorithm>

namespace latdiv {

void ZldPolicy::retarget(const MemoryController& mc, MemRequest& req) {
  const auto banks = static_cast<BankId>(mc.channel().timing().banks);
  BankId best = 0;
  bool best_open = false;
  std::size_t best_depth = static_cast<std::size_t>(-1);
  for (BankId b = 0; b < banks; ++b) {
    if (!mc.bank_queue_has_space(b)) continue;
    const bool open = mc.predicted_row(b) != kNoRow;
    const std::size_t depth = mc.bank_queue_size(b);
    // Prefer banks with an open/predicted row (no activate needed), then
    // the shallowest queue.
    if (best_depth == static_cast<std::size_t>(-1) ||
        (open && !best_open) ||
        (open == best_open && depth < best_depth)) {
      best = b;
      best_open = open;
      best_depth = depth;
    }
  }
  req.loc.bank = best;
  req.loc.bank_group = static_cast<BankGroupId>(
      best / mc.channel().timing().banks_per_group);
  const RowId row = mc.predicted_row(best);
  req.loc.row = (row == kNoRow) ? 0 : row;
}

void ZldPolicy::schedule_reads(MemoryController& mc, Cycle now) {
  auto& rq = mc.read_queue();
  if (rq.empty()) return;

  // 1) Flush secondaries of started instructions: pure bus transfers.
  for (auto it = rq.begin(); it != rq.end();) {
    if (!coord_->started(it->tag.instr)) {
      ++it;
      continue;
    }
    MemRequest req = *it;
    retarget(mc, req);
    if (!mc.bank_queue_has_space(req.loc.bank)) {
      ++it;
      continue;
    }
    it = rq.erase(it);
    mc.send_to_bank(req, now);
  }

  // 2) Dispatch one primary (GMC-flavoured: oldest row-hit, else oldest).
  auto best = rq.end();
  for (auto it = rq.begin(); it != rq.end(); ++it) {
    if (!mc.bank_queue_has_space(it->loc.bank)) continue;
    if (mc.predicted_row(it->loc.bank) == it->loc.row) {
      best = it;
      break;
    }
    if (best == rq.end()) best = it;
  }
  if (best == rq.end()) return;
  MemRequest req = *best;
  rq.erase(best);
  coord_->mark_started(req.tag.instr);
  mc.send_to_bank(req, now);
}

}  // namespace latdiv
