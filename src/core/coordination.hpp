// Inter-controller coordination network (paper §IV-C).
//
// A narrow dedicated all-to-all interconnect (30 16-bit links in the
// paper): when a controller's transaction scheduler selects a warp-group,
// a 32-bit message — SM id, warp id, local completion-time score — is
// broadcast to the other controllers.  Receivers compare the remote score
// against their own estimate for the same warp and boost their local
// warp-group when they are the laggard.
//
// The network is modelled with a fixed delivery latency (two 16-bit flits
// plus wire/arbitration; default 4 command-clock cycles) and infinite
// bandwidth per link — each controller selects at most one group every few
// cycles, so a 16-bit link is never a bottleneck and modelling credit flow
// would add state without changing behaviour.
#pragma once

#include <deque>
#include <vector>

#include "common/types.hpp"
#include "mc/controller.hpp"

namespace latdiv {

class CoordinationNetwork {
 public:
  struct Pending {
    Cycle due;
    CoordMsg msg;
  };

  CoordinationNetwork(std::vector<MemoryController*> controllers,
                      Cycle latency = 4);

  /// Collect this cycle's broadcasts and deliver messages whose latency
  /// has elapsed.  Call once per command-clock cycle after all
  /// controllers have ticked.
  void tick(Cycle now);

  // --- sharded-core hooks (par::ShardEngine) ---
  /// Enqueue one broadcast exactly as tick(sent_at) would have collected
  /// it.  The epoch merge calls this in (cycle, controller) order, which
  /// is the order tick() drains outboxes, so in_flight_ stays FIFO-sorted
  /// and messages_sent() counts identically to a serial run.
  void enqueue(const CoordMsg& msg, Cycle sent_at) {
    in_flight_.push_back(Pending{sent_at + latency_, msg});
    ++sent_;
  }
  /// Move every in-flight message due before `end` into `out` (FIFO
  /// order, appended).  Called at the start of an epoch [start, end); the
  /// shards apply each delivery to their own controllers at its due
  /// cycle.  A leftover due before `start` would mean a prior epoch
  /// skipped a delivery, which the implementation checks against.
  void collect_due(Cycle start, Cycle end, std::vector<Pending>& out);

  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }

  /// Earliest cycle >= now at which a tick can move a message (idle
  /// fast-forward): `now` while any controller outbox awaits pickup,
  /// else the due time of the oldest in-flight message (kNoCycle when
  /// the network is empty; constant latency keeps in_flight_ sorted).
  [[nodiscard]] Cycle next_event(Cycle now) const {
    for (const MemoryController* mc : controllers_) {
      if (!mc->outbox().empty()) return now;
    }
    return in_flight_.empty() ? kNoCycle : in_flight_.front().due;
  }

  /// Snapshot serialization of in-flight messages (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::vector<MemoryController*> controllers_;
  Cycle latency_;
  std::deque<Pending> in_flight_;  // FIFO: constant latency keeps it sorted
  std::uint64_t sent_ = 0;
};

}  // namespace latdiv
