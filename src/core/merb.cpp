#include "core/merb.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace latdiv {

MerbTable::MerbTable(const DramTiming& timing) {
  LATDIV_ASSERT(timing.banks >= 1, "need at least one bank");
  values_.reserve(timing.banks);
  values_.push_back(kSingleBankMerb);  // b = 1

  const double miss_overhead =
      static_cast<double>(timing.trtp + timing.trp + timing.trcd);
  const double act_gap =
      std::max(static_cast<double>(timing.trrd),
               static_cast<double>(timing.tfaw) / 4.0);
  const double burst = static_cast<double>(timing.tburst);

  for (std::uint32_t b = 2; b <= timing.banks; ++b) {
    const double per_other_bank =
        miss_overhead / (static_cast<double>(b - 1) * burst);
    const double floor_by_act_rate = act_gap / burst;
    const double merb = std::max(per_other_bank, floor_by_act_rate);
    const auto rounded =
        static_cast<std::uint32_t>(std::ceil(merb - 1e-9));
    values_.push_back(std::min(rounded, kSingleBankMerb));
  }
}

std::uint32_t MerbTable::value(std::uint32_t banks_with_pending) const {
  if (banks_with_pending == 0) banks_with_pending = 1;
  const std::size_t idx =
      std::min<std::size_t>(banks_with_pending - 1, values_.size() - 1);
  return values_[idx];
}

}  // namespace latdiv
