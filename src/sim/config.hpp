// Top-level simulation configuration (paper Table II defaults).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/policy_wg.hpp"
#include "dram/params.hpp"
#include "gpu/partition.hpp"
#include "gpu/sm.hpp"
#include "icnt/crossbar.hpp"
#include "mc/controller.hpp"
#include "mc/policy_gmc.hpp"
#include "mc/policy_sbwas.hpp"
#include "mem/address_map.hpp"
#include "obs/hub.hpp"
#include "workload/instr_source.hpp"
#include "workload/profile.hpp"

namespace latdiv {

/// Every scheduler evaluated in the paper, plus the idealised models.
enum class SchedulerKind : std::uint8_t {
  kFcfs,
  kFrFcfs,
  kGmc,     ///< baseline (§II-C)
  kWafcfs,  ///< Yuan et al. (§VI-C2); also flips the interconnect mode
  kSbwas,   ///< Lakshminarayana et al. (§VI-C1)
  kWg,      ///< §IV-B
  kWgM,     ///< §IV-C
  kWgBw,    ///< §IV-D
  kWgW,     ///< §IV-E
  kWgShared,///< extension: Conclusions' shared-data-aware priority
  kZld,     ///< Fig. 4 zero-latency-divergence ideal
};

[[nodiscard]] const char* to_string(SchedulerKind kind);

/// Runtime correctness checkers (src/check).  Both are off by default for
/// benchmarking runs; shrink_for_tests() turns them on so the whole unit
/// suite doubles as a protocol-conformance harness.
struct CheckConfig {
  bool protocol = false;    ///< shadow GDDR5 timing verifier per channel
  bool invariants = false;  ///< request-path conservation audits
  /// Abort (with a full report) on the first violation.  Tests that probe
  /// the checkers themselves set this false and inspect violations().
  bool abort_on_violation = true;
  /// Global cycles between invariant audits (audits are O(queued work)).
  Cycle audit_interval = 64;
};

struct SimConfig {
  // GPU organisation (Table II).
  std::uint32_t num_sms = 30;
  SmConfig sm;
  PartitionConfig partition;
  IcntConfig icnt;
  McConfig mc;
  DramParams dram;
  AddressMapConfig amap;

  // Scheduler under test and its policy knobs.
  SchedulerKind scheduler = SchedulerKind::kGmc;
  GmcConfig gmc;
  SbwasConfig sbwas;
  WgConfig wg;  ///< flags are overridden to match `scheduler`
  Cycle coordination_latency = 4;

  /// Escape hatch for user-defined schedulers: when set, this factory is
  /// used for every controller instead of `scheduler` (which is then only
  /// used for the result label).  See examples/custom_policy.cpp.
  std::function<std::unique_ptr<TransactionScheduler>(ChannelId,
                                                      const DramTiming&)>
      custom_policy;

  // Workload.
  WorkloadProfile workload;
  std::uint64_t seed = 1;
  /// Escape hatch for user-defined instruction streams, mirroring
  /// custom_policy: when set, the factory's source replaces the
  /// statistical generator (`workload` is then only used for the result
  /// label).  The scenario microkernels plug in through this
  /// (src/scenario/scenario.hpp).  Sources must be deterministic from
  /// (factory, seed) and independent of warp interleaving order.
  std::function<std::unique_ptr<InstrSource>(
      std::uint32_t sms, std::uint32_t warps_per_sm, std::uint64_t seed)>
      instr_source;
  /// When non-empty, replay this instruction trace instead of the
  /// statistical generator (the trace's geometry must cover num_sms x
  /// sm.warps).  See src/workload/trace.hpp.
  std::string replay_trace_path;
  /// When non-empty, record the instruction stream consumed by this run.
  std::string record_trace_path;

  // Run length (global DRAM command-clock cycles).
  Cycle max_cycles = 300'000;
  Cycle warmup_cycles = 30'000;

  /// Logical shard count for the parallel channel-sharded core (src/par):
  /// the memory partitions are divided into `shards` contiguous groups
  /// advanced concurrently between epoch barriers.  Artifacts are
  /// byte-identical to `shards = 1` at any value — the epoch merge
  /// replays cross-shard effects in the serial order — so this is purely
  /// a wall-clock knob.  Clamped to the partition count; the simulator
  /// falls back to the serial core when a configuration shares state
  /// across channels (kZld's coordinator, custom_policy factories) or
  /// when coordination_latency < sm.core_clock_ratio (the epoch-barrier
  /// correctness precondition).  Worker threads are a separate, purely
  /// physical choice: min(shards, hardware threads), overridable with
  /// the LATDIV_SHARD_THREADS env var.
  std::uint32_t shards = 1;

  /// Skip cycles in which no component can act (Simulator::run only;
  /// step() always advances one cycle).  Cycle numbering, statistics and
  /// results are bit-identical either way — the skipped cycles are
  /// provably dead and their idle-accounting counters are credited in
  /// bulk.  Disable to cross-check (tests/test_fast_forward.cpp) or to
  /// drive time-sensitive custom policies that cannot report
  /// quiescent() == false.
  bool idle_fast_forward = true;

  // Correctness checkers.
  CheckConfig check;

  /// Introspection layer (src/obs): request-lifecycle tracing, sampled
  /// time-series, divergence histograms.  Off by default — the hub is not
  /// even constructed, leaving null-pointer checks as the only footprint.
  obs::ObsConfig obs;

  /// Scale all structure counts down for fast unit tests.
  void shrink_for_tests();
};

}  // namespace latdiv
