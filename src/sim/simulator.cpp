#include "sim/simulator.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "mc/policy_fcfs.hpp"
#include "mc/policy_frfcfs.hpp"
#include "mc/policy_wafcfs.hpp"

namespace latdiv {

const char* to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "FCFS";
    case SchedulerKind::kFrFcfs: return "FR-FCFS";
    case SchedulerKind::kGmc: return "GMC";
    case SchedulerKind::kWafcfs: return "WAFCFS";
    case SchedulerKind::kSbwas: return "SBWAS";
    case SchedulerKind::kWg: return "WG";
    case SchedulerKind::kWgM: return "WG-M";
    case SchedulerKind::kWgBw: return "WG-Bw";
    case SchedulerKind::kWgW: return "WG-W";
    case SchedulerKind::kWgShared: return "WG-Sh";
    case SchedulerKind::kZld: return "ZLD-ideal";
  }
  return "?";
}

void SimConfig::shrink_for_tests() {
  num_sms = 4;
  sm.warps = 8;
  icnt.sms = 4;
  max_cycles = 20'000;
  warmup_cycles = 2'000;
  dram.refresh_enabled = false;
  // Unit-test runs double as conformance runs: any illegal DRAM command
  // or conservation break aborts the test.
  check.protocol = true;
  check.invariants = true;
  check.abort_on_violation = true;
}

std::unique_ptr<TransactionScheduler> Simulator::make_policy(ChannelId id) {
  if (cfg_.custom_policy) return cfg_.custom_policy(id, timing_);
  switch (cfg_.scheduler) {
    case SchedulerKind::kFcfs:
      return std::make_unique<FcfsPolicy>();
    case SchedulerKind::kFrFcfs:
      return std::make_unique<FrFcfsPolicy>();
    case SchedulerKind::kGmc:
      return std::make_unique<GmcPolicy>(cfg_.gmc);
    case SchedulerKind::kWafcfs:
      return std::make_unique<WafcfsPolicy>();
    case SchedulerKind::kSbwas:
      return std::make_unique<SbwasPolicy>(cfg_.sbwas);
    case SchedulerKind::kWg:
    case SchedulerKind::kWgM:
    case SchedulerKind::kWgBw:
    case SchedulerKind::kWgW:
    case SchedulerKind::kWgShared: {
      WgConfig wg = cfg_.wg;
      wg.multi_channel = cfg_.scheduler != SchedulerKind::kWg;
      wg.merb = cfg_.scheduler == SchedulerKind::kWgBw ||
                cfg_.scheduler == SchedulerKind::kWgW ||
                cfg_.scheduler == SchedulerKind::kWgShared;
      wg.write_aware = cfg_.scheduler == SchedulerKind::kWgW ||
                       cfg_.scheduler == SchedulerKind::kWgShared;
      wg.shared_data_boost = cfg_.scheduler == SchedulerKind::kWgShared;
      return std::make_unique<WgPolicy>(wg, timing_);
    }
    case SchedulerKind::kZld:
      return std::make_unique<ZldPolicy>(zld_);
  }
  LATDIV_UNREACHABLE("bad SchedulerKind");
}

Simulator::Simulator(const SimConfig& cfg)
    : cfg_(cfg),
      timing_(DramTiming::from(cfg.dram)),
      amap_([&] {
        AddressMapConfig a = cfg.amap;
        a.channels = cfg.icnt.partitions;
        a.banks_per_channel = cfg.dram.banks;
        a.banks_per_group = cfg.dram.banks_per_group;
        return a;
      }()),
      gen_(cfg.workload, cfg.num_sms, cfg.sm.warps, cfg.seed),
      xbar_([&] {
        IcntConfig i = cfg.icnt;
        i.sms = cfg.num_sms;
        i.sticky_arbitration = cfg.scheduler == SchedulerKind::kWafcfs;
        return i;
      }()) {
  zld_ = std::make_shared<ZldCoordinator>();

  // Instruction source: generator by default, displaced by a custom
  // factory source, displaced by trace replay; trace capture wraps
  // whichever source is active.
  source_ = &gen_;
  if (cfg_.instr_source) {
    custom_source_ = cfg_.instr_source(cfg_.num_sms, cfg_.sm.warps, cfg_.seed);
    LATDIV_ASSERT(custom_source_ != nullptr,
                  "instr_source factory returned null");
    source_ = custom_source_.get();
  }
  if (!cfg_.replay_trace_path.empty()) {
    replayer_ = std::make_unique<TraceReplayer>(cfg_.replay_trace_path);
    LATDIV_ASSERT(replayer_->sms() >= cfg_.num_sms &&
                      replayer_->warps_per_sm() >= cfg_.sm.warps,
                  "trace geometry smaller than the simulated GPU");
    source_ = replayer_.get();
  }
  if (!cfg_.record_trace_path.empty()) {
    trace_writer_ = std::make_unique<TraceWriter>(
        cfg_.record_trace_path, cfg_.num_sms, cfg_.sm.warps);
    recorder_ = std::make_unique<RecordingSource>(*source_, *trace_writer_);
    source_ = recorder_.get();
  }

  // Introspection hub — constructed before the partitions so controllers
  // can capture the pointer.  Strictly an observer: simulated behaviour is
  // identical with or without it (tests/test_obs_trace.cpp asserts this).
  if (cfg_.obs.enabled()) {
    LATDIV_ASSERT(cfg_.obs.sample_interval > 0,
                  "time-series sampling needs a positive interval");
    obs_hub_ = std::make_unique<obs::ObsHub>(cfg_.obs);
    tracker_.set_obs(obs_hub_.get());
  }

  // Parallel channel-sharded core (src/par).  Constructed before the
  // partitions so each partition can be bound to its shard's effect
  // buffer instead of the shared tracker/hub.  Configurations that share
  // scheduler state across channels (the ZLD coordinator, arbitrary
  // custom_policy factories) fall back to the serial core, as does a
  // coordination latency shorter than an epoch (the barrier correctness
  // precondition — see par/engine.hpp).
  // pick_worker_threads == 0 means every shard would run on the main
  // thread anyway (shards == 1, a single-core host, or LATDIV_SHARD_THREADS
  // pinned to 1): the epoch machinery would only add effect-buffer and
  // merge overhead for zero parallelism, so take the serial core instead.
  // Results are identical either way (tests/test_shard.cpp asserts it).
  const bool sharded =
      cfg_.shards > 1 && cfg_.icnt.partitions > 1 &&
      cfg_.scheduler != SchedulerKind::kZld && !cfg_.custom_policy &&
      cfg_.coordination_latency >= cfg_.sm.core_clock_ratio &&
      par::pick_worker_threads(std::min(cfg_.shards, cfg_.icnt.partitions)) >
          0;
  if (sharded) {
    engine_ =
        std::make_unique<par::ShardEngine>(cfg_.icnt.partitions, cfg_.shards);
  }

  for (std::uint32_t p = 0; p < cfg_.icnt.partitions; ++p) {
    TrackerSink& tsink =
        engine_ ? static_cast<TrackerSink&>(*engine_->buffer(p)) : tracker_;
    obs::McEventSink* osink =
        obs_hub_ ? (engine_ ? static_cast<obs::McEventSink*>(engine_->buffer(p))
                            : static_cast<obs::McEventSink*>(obs_hub_.get()))
                 : nullptr;
    partitions_.push_back(std::make_unique<Partition>(
        static_cast<ChannelId>(p), cfg_.partition, cfg_.mc, timing_,
        make_policy(static_cast<ChannelId>(p)), amap_, xbar_, tsink, osink));
  }
  if (obs_hub_ && obs_hub_->tracing()) {
    for (auto& part : partitions_) {
      const ChannelId ch = part->id();
      // Under sharding, command events are staged in the partition's
      // effect buffer and replayed into the hub at the epoch merge, in
      // the exact serial order.
      obs::McEventSink* sink =
          engine_ ? static_cast<obs::McEventSink*>(engine_->buffer(ch))
                  : static_cast<obs::McEventSink*>(obs_hub_.get());
      part->mc().channel_mut().add_command_observer(
          [sink, ch](const DramCommand& cmd, Cycle at) {
            sink->dram_command(ch, cmd, at);
          });
    }
  }
  for (std::uint32_t s = 0; s < cfg_.num_sms; ++s) {
    sms_.push_back(std::make_unique<Sm>(
        static_cast<SmId>(s), cfg_.sm, *source_, amap_, xbar_, tracker_,
        /*uid_base=*/s + 1, /*uid_stride=*/cfg_.num_sms));
  }
  // Coordination network (only WG-M and above broadcast, but wiring it
  // unconditionally is harmless: outboxes stay empty for other policies).
  std::vector<MemoryController*> mcs;
  mcs.reserve(partitions_.size());
  for (auto& part : partitions_) mcs.push_back(&part->mc());
  coord_ = std::make_unique<CoordinationNetwork>(std::move(mcs),
                                                 cfg_.coordination_latency);
  if (engine_) {
    std::vector<Partition*> raw;
    raw.reserve(partitions_.size());
    for (auto& part : partitions_) raw.push_back(part.get());
    engine_->bind(std::move(raw), coord_.get(), &tracker_, obs_hub_.get());
  }

  // Correctness checkers: a shadow protocol verifier per channel, one
  // conservation auditor across the whole request path.
  if (cfg_.check.protocol) {
    for (auto& part : partitions_) {
      auto checker = std::make_unique<ProtocolChecker>(
          timing_, cfg_.check.abort_on_violation);
      ProtocolChecker* raw = checker.get();
      part->mc().channel_mut().add_command_observer(
          [raw](const DramCommand& cmd, Cycle at) {
            raw->on_command(cmd, at);
          });
      protocol_checkers_.push_back(std::move(checker));
    }
  }
  if (cfg_.check.invariants) {
    LATDIV_ASSERT(cfg_.check.audit_interval > 0,
                  "invariant audits need a positive interval");
    invariant_checker_ =
        std::make_unique<InvariantChecker>(cfg_.check.abort_on_violation);
  }

  if (obs_hub_ && obs_hub_->sampling()) {
    std::vector<std::string> cols{"d_instr", "inflight_loads", "icnt_req_q",
                                  "icnt_resp_q"};
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      const std::string pre = "ch" + std::to_string(p) + ".";
      for (const char* c :
           {"rdq", "wrq", "cmdq", "inflight", "drain", "d_reads", "d_writes",
            "d_acts", "d_row_hits", "d_row_misses", "d_row_conflicts",
            "d_merb"}) {
        cols.push_back(pre + c);
      }
    }
    series_prev_.assign(partitions_.size(), ChannelSeriesPrev{});
    obs_hub_->set_series_columns(std::move(cols));
    sample_timeseries();  // baseline row at cycle 0
  }
}

void Simulator::audit_invariants() {
  for (const auto& part : partitions_) {
    invariant_checker_->audit_partition(*part, now_);
  }
  std::size_t blocked = 0;
  for (const auto& sm : sms_) blocked += sm->warps_blocked_on_loads();
  invariant_checker_->audit_tracker(tracker_, blocked, now_);
  if (obs_hub_ && obs_hub_->attrib() != nullptr) {
    invariant_checker_->audit_attribution(*obs_hub_->attrib(), now_);
  }
}

void Simulator::step() {
  if (engine_) {
    // One-cycle epoch: incremental drivers and the sharded run() loop go
    // through the same machinery, so per-cycle state is identical.
    advance_epoch(now_ + 1);
    return;
  }
  const bool core_tick = now_ % cfg_.sm.core_clock_ratio == 0;
  if (core_tick) {
    for (auto& sm : sms_) sm->tick(now_);
    xbar_.tick(now_);
    for (auto& part : partitions_) part->tick_core(now_);
  }
  for (auto& part : partitions_) part->tick_dram(now_);
  coord_->tick(now_);
  ++now_;
  boundary_checks();
}

void Simulator::boundary_checks() {
  if (invariant_checker_ && now_ % cfg_.check.audit_interval == 0) {
    audit_invariants();
  }
  if (obs_hub_ && obs_hub_->sampling() &&
      now_ % cfg_.obs.sample_interval == 0) {
    sample_timeseries();
  }
  if (warmup_done_at_ == 0 && now_ >= cfg_.warmup_cycles) {
    warmup_done_at_ = now_;
    warmup_instructions_ = total_instructions();
  }
}

Cycle Simulator::epoch_end() const {
  const Cycle ratio = cfg_.sm.core_clock_ratio;
  // Longest epoch: up to the next core tick strictly after now_, so each
  // epoch contains at most one SM/crossbar/L2 front-end tick (which runs
  // on the main thread at the epoch start).
  Cycle end = (now_ / ratio + 1) * ratio;
  end = std::min(end, run_limit_);
  // Boundary events fire at exact now_ values in the serial core; end the
  // epoch there so boundary_checks() sees identical cycles.
  if (invariant_checker_) {
    end = std::min(end, (now_ / cfg_.check.audit_interval + 1) *
                            cfg_.check.audit_interval);
  }
  if (obs_hub_ && obs_hub_->sampling()) {
    end = std::min(end, (now_ / cfg_.obs.sample_interval + 1) *
                            cfg_.obs.sample_interval);
  }
  // Serial warmup capture happens at the first step end >= warmup_cycles,
  // i.e. at cycle max(now_ + 1, warmup_cycles) when still pending.
  if (warmup_done_at_ == 0) {
    end = std::min(end, std::max(now_ + 1, cfg_.warmup_cycles));
  }
  return end;
}

void Simulator::advance_epoch(Cycle end) {
  LATDIV_DCHECK(engine_ != nullptr, "advance_epoch without a shard engine");
  LATDIV_DCHECK(end > now_ && end - now_ <= cfg_.sm.core_clock_ratio,
                "epoch must advance and fit one core-clock period");
  const bool core_tick = now_ % cfg_.sm.core_clock_ratio == 0;
  if (core_tick) {
    // Front end on the main thread: SMs then crossbar, exactly as in the
    // serial step.  Partition core ticks move to the shard workers.
    for (auto& sm : sms_) sm->tick(now_);
    xbar_.tick(now_);
  }
  engine_->advance(now_, end, core_tick);
  now_ = end;
  boundary_checks();
}

void Simulator::sample_timeseries() {
  series_row_.clear();
  const std::uint64_t instr = total_instructions();
  series_row_.push_back(instr - series_prev_instr_);
  series_prev_instr_ = instr;
  series_row_.push_back(tracker_.inflight());
  series_row_.push_back(xbar_.requests_queued());
  series_row_.push_back(xbar_.responses_queued());
  for (std::size_t p = 0; p < partitions_.size(); ++p) {
    const MemoryController& mc = partitions_[p]->mc();
    const ChannelStats& cs = mc.channel().stats();
    const McStats& ms = mc.stats();
    ChannelSeriesPrev& prev = series_prev_[p];
    std::uint64_t hits = 0, misses = 0, conflicts = 0;
    for (std::size_t b = 0; b < ms.bank_row_hits.size(); ++b) {
      hits += ms.bank_row_hits[b];
      misses += ms.bank_row_misses[b];
      conflicts += ms.bank_row_conflicts[b];
    }
    const WgStats* wg = mc.policy().wg_stats();
    const std::uint64_t merb = wg != nullptr ? wg->merb_deferrals : 0;

    series_row_.push_back(mc.read_queue().size());
    series_row_.push_back(mc.write_queue().size());
    series_row_.push_back(mc.commands_pending());
    series_row_.push_back(mc.inflight_reads());
    series_row_.push_back(mc.in_write_drain() ? 1 : 0);
    series_row_.push_back(cs.reads - prev.reads);
    series_row_.push_back(cs.writes - prev.writes);
    series_row_.push_back(cs.activates - prev.activates);
    series_row_.push_back(hits - prev.row_hits);
    series_row_.push_back(misses - prev.row_misses);
    series_row_.push_back(conflicts - prev.row_conflicts);
    series_row_.push_back(merb - prev.merb_deferrals);
    prev = {cs.reads, cs.writes,  cs.activates, hits,
            misses,   conflicts, merb};
  }
  obs_hub_->sample(now_, series_row_);
}

std::uint64_t Simulator::total_instructions() const {
  std::uint64_t total = 0;
  for (const auto& sm : sms_) total += sm->stats().instructions;
  return total;
}

RunResult Simulator::run() {
  run_to(cfg_.max_cycles);
  return finish();
}

void Simulator::run_to(Cycle stop) {
  // Clamping epoch ends and fast-forward jumps to run_limit_ is the whole
  // pause mechanism: the cycles on either side of the boundary execute
  // exactly as they would mid-run (a shortened epoch contains the same
  // single front-end tick; a shortened skip crosses only dead cycles), so
  // stopping here and continuing later is byte-identical to not stopping.
  run_limit_ = std::min(stop, cfg_.max_cycles);
  while (now_ < run_limit_) {
    if (engine_) {
      advance_epoch(epoch_end());
    } else {
      step();
    }
    if (cfg_.idle_fast_forward) fast_forward();
  }
}

RunResult Simulator::finish() {
  for (auto& checker : protocol_checkers_) checker->finalize(now_);
  if (invariant_checker_) audit_invariants();
  if (obs_hub_) obs_hub_->finalize(now_);
  return collect();
}

void Simulator::teleport(Cycle target) {
  LATDIV_ASSERT(target >= now_ && target <= cfg_.max_cycles,
                "teleport target outside [now, max_cycles]");
  LATDIV_ASSERT(protocol_checkers_.empty() && !invariant_checker_ &&
                    !obs_hub_,
                "teleport requires checkers and the obs hub disabled");
  now_ = target;
  for (auto& part : partitions_) {
    part->mc().channel_mut().rebase_refresh(now_);
  }
  if (warmup_done_at_ == 0 && now_ >= cfg_.warmup_cycles) {
    warmup_done_at_ = now_;
    warmup_instructions_ = total_instructions();
  }
}

void Simulator::fast_forward() {
  // Earliest cycle >= now_ at which any component can change state.  Each
  // probe early-outs: one component busy now means no skip at all.  The
  // DRAM side is probed first — it is the cheapest check and the most
  // likely to be busy.
  Cycle target = kNoCycle;
  for (const auto& part : partitions_) {
    const Cycle e = part->mc().next_event(now_);
    if (e <= now_) return;
    target = std::min(target, e);
  }
  const Cycle coord_ev = coord_->next_event(now_);
  if (coord_ev <= now_) return;
  target = std::min(target, coord_ev);

  // Core-domain events only take effect at a core tick; align them up.
  Cycle core = xbar_.next_event(now_);
  for (const auto& sm : sms_) {
    if (core <= now_) break;
    core = std::min(core, sm->next_event(now_));
  }
  for (const auto& part : partitions_) {
    if (core <= now_) break;
    core = std::min(core, part->next_core_event(now_));
  }
  const Cycle ratio = cfg_.sm.core_clock_ratio;
  if (core != kNoCycle) {
    const Cycle at = std::max(core, now_);
    target = std::min(target, (at + ratio - 1) / ratio * ratio);
  }
  if (target <= now_) return;

  // Never skip past the end of this run_to() call, the warmup-capture
  // cycle, or the next scheduled invariant audit — those fire at exact
  // now_ values.
  Cycle limit = std::min(target, run_limit_);
  if (warmup_done_at_ == 0) limit = std::min(limit, cfg_.warmup_cycles);
  if (invariant_checker_) {
    limit = std::min(
        limit, (now_ / cfg_.check.audit_interval + 1) * cfg_.check.audit_interval);
  }
  // Time-series rows must be taken at their exact cycles too; the skipped
  // span is dead, so sampling at the boundary sees the same state a
  // stepped run would — artifacts stay byte-identical under fast-forward.
  if (obs_hub_ && obs_hub_->sampling()) {
    limit = std::min(limit, (now_ / cfg_.obs.sample_interval + 1) *
                                cfg_.obs.sample_interval);
  }
  if (limit <= now_) return;

  // Cycles [now_, limit) are dead: no instruction issues, no packet
  // moves, no DRAM command is legal-and-wanted.  The only per-cycle
  // effects of stepping through them are the idle counters — credit
  // those in bulk and jump.
  const std::uint64_t skipped = limit - now_;
  for (auto& part : partitions_) part->mc().note_idle_cycles(skipped);
  const Cycle first_core_tick = (now_ + ratio - 1) / ratio * ratio;
  if (first_core_tick < limit) {
    const std::uint64_t core_ticks = (limit - 1 - first_core_tick) / ratio + 1;
    for (auto& sm : sms_) sm->note_idle_core_ticks(core_ticks);
  }
  now_ = limit;

  if (invariant_checker_ && now_ % cfg_.check.audit_interval == 0) {
    audit_invariants();
  }
  if (obs_hub_ && obs_hub_->sampling() &&
      now_ % cfg_.obs.sample_interval == 0) {
    sample_timeseries();
  }
  if (warmup_done_at_ == 0 && now_ >= cfg_.warmup_cycles) {
    warmup_done_at_ = now_;
    warmup_instructions_ = total_instructions();
  }
}

RunResult Simulator::collect() const {
  RunResult r;
  r.workload = cfg_.workload.name;
  r.scheduler = cfg_.custom_policy ? partitions_[0]->mc().policy().name()
                                   : to_string(cfg_.scheduler);
  r.dram_cycles = now_;
  r.core_cycles = now_ / cfg_.sm.core_clock_ratio;
  r.instructions = total_instructions();

  const std::uint64_t measured_instr = r.instructions - warmup_instructions_;
  const Cycle measured_cycles = now_ - warmup_done_at_;
  const double measured_core_cycles =
      static_cast<double>(measured_cycles) / cfg_.sm.core_clock_ratio;
  r.ipc = safe_ratio(static_cast<double>(measured_instr), measured_core_cycles);

  // Coalescer + L1 aggregates.
  CoalescerStats co;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  for (const auto& sm : sms_) {
    const CoalescerStats& s = sm->coalescer().stats();
    co.loads += s.loads;
    co.divergent_loads += s.divergent_loads;
    co.load_requests += s.load_requests;
    co.stores += s.stores;
    co.store_requests += s.store_requests;
    l1_hits += sm->l1().stats().hits;
    l1_misses += sm->l1().stats().misses;
    r.sm_issue_stall_mshr += sm->stats().issue_stall_mshr;
    r.sm_no_ready_warp_cycles += sm->stats().no_ready_warp_cycles;
  }
  r.icnt_inject_stalls = xbar_.stats().inject_stalls;
  r.loads = static_cast<double>(co.loads);
  r.divergent_load_frac = co.divergent_frac();
  r.requests_per_load = co.requests_per_load();
  r.l1_hit_rate = safe_ratio(static_cast<double>(l1_hits),
                             static_cast<double>(l1_hits + l1_misses));

  r.tracker = tracker_.summary();
  r.effective_mem_latency_ns =
      r.tracker.last_req_latency.mean() * cfg_.dram.tck_ns;
  r.divergence_gap_ns = r.tracker.divergence_gap.mean() * cfg_.dram.tck_ns;
  r.first_req_latency_ns =
      r.tracker.first_req_latency.mean() * cfg_.dram.tck_ns;
  r.last_to_first_ratio = r.tracker.last_to_first_ratio.mean();
  r.mcs_per_warp = r.tracker.channels_per_load.mean();
  r.banks_per_warp = r.tracker.banks_per_load.mean();
  r.same_row_frac = r.tracker.same_row_frac.mean();
  // Core clock in GHz: one core cycle every core_clock_ratio command-clock
  // ticks of tck_ns each.  IPC * GHz = instructions per ns; x1000 -> /us.
  const double core_ghz =
      1.0 / (cfg_.dram.tck_ns * static_cast<double>(cfg_.sm.core_clock_ratio));
  r.instr_per_usec = r.ipc * core_ghz * 1000.0;

  // DRAM-side aggregates across channels.
  std::uint64_t busy = 0, acts = 0, reads = 0, writes = 0, refs = 0;
  std::uint64_t idle = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  std::uint64_t drain_groups = 0, drain_small = 0;
  Accumulator mc_queueing, mc_service;
  for (const auto& part : partitions_) {
    const ChannelStats& cs = part->mc().channel().stats();
    busy += cs.data_bus_busy_cycles;
    acts += cs.activates;
    reads += cs.reads;
    writes += cs.writes;
    refs += cs.refreshes;
    idle += cs.all_banks_idle_cycles;
    l2_hits += part->l2().stats().hits;
    l2_misses += part->l2().stats().misses;
    drain_groups += part->mc().stats().drain_stalled_groups;
    drain_small += part->mc().stats().drain_stalled_small_groups;
    mc_queueing.merge(part->mc().stats().read_queueing_cycles);
    mc_service.merge(part->mc().stats().read_service_cycles);
    r.mc_drains_started += part->mc().stats().drains_started;

    if (const WgStats* wg = part->mc().policy().wg_stats()) {
      r.wg_groups_selected += wg->groups_selected;
      r.wg_fallback_selections += wg->fallback_selections;
      r.wg_merb_deferrals += wg->merb_deferrals;
      r.wg_writeaware_selections += wg->writeaware_selections;
      r.wg_shared_boosts += wg->shared_boosts;
    }
  }
  const double chans = static_cast<double>(partitions_.size());
  r.bandwidth_utilization =
      safe_ratio(static_cast<double>(busy), static_cast<double>(now_) * chans);
  r.row_hit_rate = 1.0 - safe_ratio(static_cast<double>(acts),
                                    static_cast<double>(reads + writes));
  r.write_intensity = safe_ratio(static_cast<double>(writes),
                                 static_cast<double>(reads + writes));
  r.drain_small_group_frac = safe_ratio(static_cast<double>(drain_small),
                                        static_cast<double>(drain_groups));
  r.dram_reads = reads;
  r.dram_writes = writes;
  r.dram_activates = acts;
  r.l2_hit_rate = safe_ratio(static_cast<double>(l2_hits),
                             static_cast<double>(l2_hits + l2_misses));
  r.mc_read_queueing_cycles = mc_queueing.mean();
  r.mc_read_service_cycles = mc_service.mean();
  r.coord_messages = coord_->messages_sent();

  // Per-bank breakdown (satellite of the introspection layer; always
  // collected — the counters are maintained unconditionally and cheap).
  r.bank_breakdown.reserve(partitions_.size());
  for (const auto& part : partitions_) {
    const ChannelStats& cs = part->mc().channel().stats();
    const McStats& ms = part->mc().stats();
    std::vector<BankCounters> banks(cs.per_bank_activates.size());
    for (std::size_t b = 0; b < banks.size(); ++b) {
      banks[b] = BankCounters{cs.per_bank_activates[b],
                              cs.per_bank_precharges[b], ms.bank_row_hits[b],
                              ms.bank_row_misses[b], ms.bank_row_conflicts[b]};
    }
    r.bank_breakdown.push_back(std::move(banks));
  }

  // Average per-channel power (scale the merged counters down).
  ChannelStats per_chan{};
  per_chan.activates = acts / partitions_.size();
  per_chan.reads = reads / partitions_.size();
  per_chan.writes = writes / partitions_.size();
  per_chan.refreshes = refs / partitions_.size();
  per_chan.data_bus_busy_cycles = busy / partitions_.size();
  per_chan.all_banks_idle_cycles = idle / partitions_.size();
  const PowerModel power(Gddr5PowerParams{}, cfg_.dram);
  if (now_ > 0) r.power = power.compute(per_chan, now_);

  if (obs_hub_ && obs_hub_->attrib() != nullptr) {
    r.attrib = obs_hub_->attrib()->summary();
  }

  return r;
}

}  // namespace latdiv
