// Aggregated results of one simulation run — the inputs to every bench
// table and figure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/power.hpp"
#include "gpu/tracker.hpp"
#include "obs/attrib.hpp"

namespace latdiv {

/// Per-bank DRAM behaviour (one entry per bank of one channel).  ACT/PRE
/// come from the channel state machine; the row hit/miss/conflict triple
/// is classified by the memory controller when a request reaches the head
/// of its bank command queue.  This is the ground truth the tracing
/// layer's per-bank event counts are validated against.
struct BankCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
};

struct RunResult {
  std::string workload;
  std::string scheduler;

  // Performance.
  double ipc = 0.0;  ///< warp instructions per core cycle, post-warmup
  std::uint64_t instructions = 0;
  std::uint64_t core_cycles = 0;
  std::uint64_t dram_cycles = 0;

  // Coalescing (Fig. 2).
  double loads = 0.0;
  double divergent_load_frac = 0.0;
  double requests_per_load = 0.0;

  // Divergence & latency (Figs. 3, 9, 10).
  TrackerSummary tracker;
  double effective_mem_latency_ns = 0.0;  ///< issue -> last DRAM completion
  double divergence_gap_ns = 0.0;         ///< first -> last DRAM completion
  // Scalar per-warp divergence means, surfaced so reporters can emit them
  // without reaching into the tracker accumulators (Fig. 3 columns).
  double first_req_latency_ns = 0.0;  ///< issue -> first DRAM completion
  double last_to_first_ratio = 0.0;   ///< Fig. 3 divergence ratio
  double mcs_per_warp = 0.0;          ///< memory controllers per warp load
  double banks_per_warp = 0.0;        ///< distinct (channel,bank) per load
  double same_row_frac = 0.0;         ///< §III-A "~30% share a row"
  /// Instructions per microsecond of wall time — IPC rebased onto the
  /// device-independent core clock so different DRAM devices compare on
  /// the same time base (the device-ablation bench's "Mi/s" column).
  double instr_per_usec = 0.0;

  // DRAM-side (Figs. 11, 12; §VI-B).
  double bandwidth_utilization = 0.0;  ///< data-bus busy fraction
  double row_hit_rate = 0.0;           ///< 1 - activates / column accesses
  double write_intensity = 0.0;        ///< writes / (reads + writes)
  double drain_small_group_frac = 0.0; ///< Fig. 12 right axis
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t dram_activates = 0;
  /// [channel][bank] breakdown of the aggregates above.
  std::vector<std::vector<BankCounters>> bank_breakdown;
  PowerBreakdown power;  ///< per-channel average power

  // Cache behaviour.
  double l1_hit_rate = 0.0;
  double l2_hit_rate = 0.0;

  // Pipeline back-pressure (previously visible only via component stats).
  std::uint64_t sm_issue_stall_mshr = 0;     ///< loads blocked on L1 MSHRs
  std::uint64_t sm_no_ready_warp_cycles = 0; ///< SM cycles with no ready warp
  std::uint64_t icnt_inject_stalls = 0;      ///< SM found its xbar queue full
  double mc_read_queueing_cycles = 0.0;      ///< mean arrival -> CAS issue
  double mc_read_service_cycles = 0.0;       ///< mean arrival -> data done
  std::uint64_t mc_drains_started = 0;       ///< write-drain episodes

  // Policy-internal counters (WG family; zero otherwise).
  std::uint64_t wg_groups_selected = 0;
  std::uint64_t wg_fallback_selections = 0;
  std::uint64_t wg_merb_deferrals = 0;
  std::uint64_t wg_writeaware_selections = 0;
  std::uint64_t wg_shared_boosts = 0;
  std::uint64_t coord_messages = 0;

  /// Latency-attribution roll-up (enabled == false unless the run had
  /// cfg.obs.attrib on; see src/obs/attrib.hpp).
  obs::AttribSummary attrib;
};

}  // namespace latdiv
