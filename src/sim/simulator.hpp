// Top-level simulator: wires SMs, crossbar, partitions (L2 + memory
// controller), the coordination network and the workload generator, then
// advances the two clock domains to completion.
//
// One global tick = one GDDR5 command-clock cycle (1.5 GHz).  The core
// domain (SMs, crossbar, L2 pipelines) ticks every
// SmConfig::core_clock_ratio-th global cycle.
#pragma once

#include <memory>
#include <vector>

#include "check/invariant_checker.hpp"
#include "check/protocol_checker.hpp"
#include "common/annotations.hpp"
#include "core/coordination.hpp"
#include "core/ideal.hpp"
#include "gpu/partition.hpp"
#include "gpu/sm.hpp"
#include "gpu/tracker.hpp"
#include "icnt/crossbar.hpp"
#include "par/engine.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace latdiv {

class Simulator {
 public:
  explicit Simulator(const SimConfig& cfg);

  /// Run to cfg.max_cycles and aggregate results.  Equivalent to
  /// run_to(cfg.max_cycles) followed by finish() — pausing at any
  /// intermediate cycle and continuing is byte-identical to running
  /// straight through (tests/test_ckpt.cpp enforces this).
  RunResult run();

  /// Advance until now() == min(stop, cfg.max_cycles), using the same
  /// epoch/fast-forward machinery as run().  May be called repeatedly
  /// with increasing stops; does not finalize anything.
  void run_to(Cycle stop);

  /// End-of-run finalization (checker sweeps, obs artifact writes) and
  /// result aggregation.  Call once, after the last run_to().
  RunResult finish();

  /// Jump the clock to `target` without simulating the span (sampled-mode
  /// functional warming, src/ckpt/sampler.cpp).  The skipped interval's
  /// timing is deliberately not modelled: per-channel refresh cadences
  /// are re-anchored past `target`.  Only legal with checkers and the
  /// obs hub disabled — those observe per-cycle state the jump skips.
  void teleport(Cycle target);

  /// The instruction stream the SMs consume (sampled-mode warming draws
  /// from it; snapshot save/load serializes its cursors).
  [[nodiscard]] InstrSource& instr_source() { return *source_; }

  // Component access for tests and custom drivers.
  [[nodiscard]] Partition& partition(std::size_t i) { return *partitions_[i]; }
  [[nodiscard]] Sm& sm(std::size_t i) { return *sms_[i]; }
  [[nodiscard]] InstrTracker& tracker() { return tracker_; }
  [[nodiscard]] const SimConfig& config() const { return cfg_; }

  /// Advance exactly one global cycle (exposed for incremental tests).
  void step();
  [[nodiscard]] Cycle now() const { return now_; }

  // Checker access (null / empty unless enabled via cfg.check).
  [[nodiscard]] const ProtocolChecker* protocol_checker(std::size_t i) const {
    return i < protocol_checkers_.size() ? protocol_checkers_[i].get()
                                         : nullptr;
  }
  [[nodiscard]] const InvariantChecker* invariant_checker() const {
    return invariant_checker_.get();
  }

  /// Introspection hub (null unless cfg.obs enables something).  Tests
  /// and tools read the trace/time-series/metrics artifacts through it.
  [[nodiscard]] obs::ObsHub* obs() { return obs_hub_.get(); }
  [[nodiscard]] const obs::ObsHub* obs() const { return obs_hub_.get(); }

  /// Active logical shard count: cfg.shards clamped to the partition
  /// count, or 1 when the serial core is in use (cfg.shards == 1, or a
  /// configuration that shares scheduler state across channels — see
  /// SimConfig::shards).
  [[nodiscard]] std::uint32_t shards() const {
    return engine_ ? engine_->shards() : 1;
  }
  /// Worker threads backing the sharded core (0 = serial or main-thread
  /// execution; purely an execution-policy detail).
  [[nodiscard]] unsigned shard_worker_threads() const {
    return engine_ ? engine_->worker_threads() : 0;
  }

  /// Snapshot serialization of the full simulator state (src/ckpt owns
  /// the framing; this walks every component in a fixed order).  Public
  /// so ckpt::save_snapshot / load_snapshot stay free functions; not a
  /// stable API for anything else.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  void audit_invariants();
  /// Post-cycle work shared by the serial step and the sharded epoch:
  /// invariant audits, time-series samples, warmup capture.  Both paths
  /// only cross the trigger cycles at an epoch/step boundary, so the
  /// modulo checks fire at identical now_ values.
  void boundary_checks();
  /// Sharded core: largest legal epoch end after now_ — the next core
  /// tick, clamped to run end and to every exact-cycle boundary event.
  [[nodiscard]] Cycle epoch_end() const;
  /// Sharded core: run one epoch [now_, end) — front end (SMs, crossbar)
  /// on the main thread, partitions on the shard workers, then the
  /// deterministic merge — and advance now_ to `end`.
  void advance_epoch(Cycle end);
  /// Idle fast-forward (run() only): when every component reports its
  /// next event strictly after now_, jump now_ there directly, crediting
  /// the skipped cycles' idle accounting in bulk.  Clamped so warmup
  /// capture and invariant audits still happen at their exact cycles.
  void fast_forward();
  [[nodiscard]] std::unique_ptr<TransactionScheduler> make_policy(ChannelId id);
  [[nodiscard]] std::uint64_t total_instructions() const;
  RunResult collect() const;
  /// Record one time-series row at now_ (called on sample boundaries).
  void sample_timeseries();

  SimConfig cfg_;
  DramTiming timing_;
  AddressMap amap_;
  WorkloadGenerator gen_;
  std::unique_ptr<InstrSource> custom_source_;  ///< from cfg.instr_source
  std::unique_ptr<TraceReplayer> replayer_;
  std::unique_ptr<TraceWriter> trace_writer_;
  std::unique_ptr<RecordingSource> recorder_;
  /// The source SMs actually consume; drained only from the simulator's
  /// issue loop, which stays on the main/core thread under sharding.
  InstrSource* source_ LATDIV_SHARD_LOCAL = nullptr;
  InstrTracker tracker_;
  Crossbar xbar_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<std::unique_ptr<Sm>> sms_;
  std::unique_ptr<CoordinationNetwork> coord_;
  std::shared_ptr<ZldCoordinator> zld_;
  std::vector<std::unique_ptr<ProtocolChecker>> protocol_checkers_;
  std::unique_ptr<InvariantChecker> invariant_checker_;
  std::unique_ptr<obs::ObsHub> obs_hub_;
  /// Parallel channel-sharded core; null = serial per-cycle loop.
  std::unique_ptr<par::ShardEngine> engine_;

  Cycle now_ = 0;
  /// Stop cycle of the current run_to() call (== cfg.max_cycles inside
  /// run()).  Epoch ends and idle fast-forward clamp to it so pausing at
  /// an arbitrary cycle is indistinguishable from never stopping.
  Cycle run_limit_ = 0;
  std::uint64_t warmup_instructions_ = 0;
  Cycle warmup_done_at_ = 0;

  // Time-series sampling state: previous cumulative counter values, so
  // each row reports per-epoch deltas alongside instantaneous occupancy.
  struct ChannelSeriesPrev {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t activates = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    std::uint64_t row_conflicts = 0;
    std::uint64_t merb_deferrals = 0;
  };
  std::vector<ChannelSeriesPrev> series_prev_;
  std::uint64_t series_prev_instr_ = 0;
  std::vector<std::uint64_t> series_row_;  ///< reused sample buffer
};

}  // namespace latdiv
