// Memory partition: one L2 slice + one GDDR5 channel controller.
//
// The partition is the glue between the crossbar and the memory
// controller:
//   * incoming reads probe the L2 after a pipeline delay; hits respond
//     directly, misses allocate an MSHR and enter the controller's read
//     queue (merging secondary misses to an outstanding line);
//   * incoming writes are absorbed by the write-back write-allocate L2;
//     DRAM writes are exclusively dirty evictions, which is why the
//     controller's write queue sees cache-filtered traffic as in the
//     paper's model;
//   * the warp-group completion tag (last request of a warp-group for
//     this partition) is forwarded to the controller even when the tagged
//     request itself hits in the L2 — the controller must learn that the
//     group is fully formed either way (§IV-B2).
//
// The L2 pipeline and crossbar interfaces run in the core clock domain;
// the controller ticks every DRAM command-clock cycle.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/types.hpp"
#include "gpu/tracker_sink.hpp"
#include "icnt/crossbar.hpp"
#include "mc/controller.hpp"
#include "par/arena.hpp"

namespace latdiv {

struct PartitionConfig {
  CacheConfig l2{128 * 1024, 128, 16};  // paper Table II
  MshrConfig l2_mshr{64, 8};
  Cycle l2_latency = 16;  ///< core-domain pipeline cycles for a lookup
  std::uint32_t lookups_per_cycle = 2;
};

struct PartitionStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t mshr_merges = 0;
  std::uint64_t stall_cycles = 0;  ///< head blocked on a full resource
};

class Partition {
 public:
  /// `obs` (optional) is handed to the memory controller for
  /// request-lifecycle tracing; the partition itself never consults it.
  /// Under a sharded core `tracker` and `obs` are the partition's
  /// ShardEffectBuffer (the serial core passes the real InstrTracker /
  /// ObsHub); the partition cannot tell the difference.
  Partition(ChannelId id, const PartitionConfig& cfg, const McConfig& mc_cfg,
            const DramTiming& timing,
            std::unique_ptr<TransactionScheduler> policy,
            const AddressMap& amap, Crossbar& xbar, TrackerSink& tracker,
            obs::McEventSink* obs = nullptr);

  /// Core-domain tick: pull requests from the crossbar through the L2
  /// pipeline, process fills, send responses.
  void tick_core(Cycle now);

  /// DRAM-domain tick.
  void tick_dram(Cycle now) { mc_->tick(now); }

  /// Earliest core-domain cycle >= now at which tick_core can act on
  /// state the partition itself holds (idle fast-forward): pending fills
  /// or staged responses mean `now`; otherwise the front of the L2
  /// pipeline; kNoCycle when all three are empty.  New crossbar arrivals
  /// are the crossbar's event, not ours.
  [[nodiscard]] Cycle next_core_event(Cycle now) const {
    if (!fills_.empty() || !responses_.empty()) return now;
    if (pipeline_.empty()) return kNoCycle;
    return pipeline_.front().ready_at <= now ? now
                                             : pipeline_.front().ready_at;
  }

  [[nodiscard]] MemoryController& mc() { return *mc_; }
  [[nodiscard]] const MemoryController& mc() const { return *mc_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }
  [[nodiscard]] const MshrFile& l2_mshr() const { return mshr_; }
  /// Completed DRAM reads awaiting L2 install (conservation audits).
  [[nodiscard]] std::size_t fills_pending() const { return fills_.size(); }
  /// Slabs backing this partition's queue arena (tests assert steady-state
  /// allocation: slab count stops growing once the queues reach their
  /// high-water mark).
  [[nodiscard]] std::size_t arena_slabs() const { return arena_.slabs(); }
  [[nodiscard]] const PartitionStats& stats() const { return stats_; }
  [[nodiscard]] ChannelId id() const { return id_; }

  /// Snapshot serialization of L2/MSHR/pipeline/controller state
  /// (src/ckpt); the arena keeps backing the refilled queues.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct Delayed {
    Cycle ready_at;
    MemRequest req;
  };

  void process_fills(Cycle now);
  void process_requests(Cycle now);
  void drain_responses(Cycle now);
  /// Handle one request after its L2 pipeline delay.  Returns false if a
  /// full downstream resource forces a retry next cycle.
  bool handle(const MemRequest& req, Cycle now);

  ChannelId id_;
  PartitionConfig cfg_;
  Cache l2_;
  MshrFile mshr_;
  const AddressMap& amap_;
  // Shared with every partition, but partition-side calls (peek/pop of
  // this partition's request queue, response injection) touch only
  // per-partition deques; the crossbar's cross-partition state is
  // advanced exclusively by the main thread's xbar.tick().
  Crossbar& xbar_;  // lint: shard-boundary-ok
  /// Serial core: the shared InstrTracker.  Sharded core: this
  /// partition's own ShardEffectBuffer — never another shard's state.
  TrackerSink& tracker_ LATDIV_SHARD_LOCAL;
  /// Node storage for the partition's and controller's hot queues.
  /// Declared before every container built on it — members are destroyed
  /// in reverse order, so the arena outlives its allocations.
  par::ShardArena arena_;
  std::unique_ptr<MemoryController> mc_;

  std::deque<Delayed, par::ArenaAllocator<Delayed>> pipeline_;
  std::deque<MemRequest, par::ArenaAllocator<MemRequest>> fills_;
  std::deque<MemResponse, par::ArenaAllocator<MemResponse>> responses_;
  PartitionStats stats_;
};

}  // namespace latdiv
