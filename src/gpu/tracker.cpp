#include "gpu/tracker.hpp"

#include <algorithm>
#include <bit>

#include "common/log.hpp"
#include "obs/hub.hpp"

namespace latdiv {

void InstrTracker::on_issue(WarpInstrUid uid, Cycle now) {
  auto [it, inserted] = records_.try_emplace(uid);
  LATDIV_ASSERT(inserted, "duplicate load issue for one uid");
  it->second.issued = now;
}

void InstrTracker::on_issue(const WarpTag& tag, Cycle now) {
  auto [it, inserted] = records_.try_emplace(tag.instr);
  LATDIV_ASSERT(inserted, "duplicate load issue for one uid");
  it->second.issued = now;
  it->second.sm = tag.sm;
  it->second.warp = tag.warp;
}

void InstrTracker::on_dram_request(WarpInstrUid uid, const DramLoc& loc) {
  auto it = records_.find(uid);
  if (it == records_.end()) return;  // stores and untracked traffic
  it->second.locs.push_back(loc);
}

void InstrTracker::on_dram_complete(WarpInstrUid uid, Cycle done) {
  auto it = records_.find(uid);
  if (it == records_.end()) return;
  Record& r = it->second;
  if (r.first_done == kNoCycle) r.first_done = done;
  r.last_done = std::max(r.last_done == kNoCycle ? 0 : r.last_done, done);
}

void InstrTracker::finalize(WarpInstrUid uid, Cycle now) {
  auto it = records_.find(uid);
  if (it == records_.end()) return;
  Record& r = it->second;
  ++summary_.loads_finalized;

  if (!r.locs.empty() && r.first_done != kNoCycle) {
    ++summary_.loads_touching_dram;
    summary_.dram_reqs_per_load.add(static_cast<double>(r.locs.size()));

    // Distinct channels and (channel, bank) pairs.
    std::uint64_t chan_mask = 0;
    std::vector<std::uint32_t> bank_keys;
    bank_keys.reserve(r.locs.size());
    std::uint32_t same_row = 0;
    for (std::size_t i = 0; i < r.locs.size(); ++i) {
      const DramLoc& loc = r.locs[i];
      chan_mask |= 1ULL << loc.channel;
      const std::uint32_t key =
          (static_cast<std::uint32_t>(loc.channel) << 8) | loc.bank;
      if (std::find(bank_keys.begin(), bank_keys.end(), key) ==
          bank_keys.end()) {
        bank_keys.push_back(key);
      }
      // A request "shares a row" if any other request of the warp targets
      // the same (channel, bank, row).
      for (std::size_t j = 0; j < r.locs.size(); ++j) {
        if (j == i) continue;
        if (r.locs[j].channel == loc.channel && r.locs[j].bank == loc.bank &&
            r.locs[j].row == loc.row) {
          ++same_row;
          break;
        }
      }
    }
    summary_.channels_per_load.add(
        static_cast<double>(std::popcount(chan_mask)));
    summary_.banks_per_load.add(static_cast<double>(bank_keys.size()));
    summary_.same_row_frac.add(static_cast<double>(same_row) /
                               static_cast<double>(r.locs.size()));

    const auto first_lat = static_cast<double>(r.first_done - r.issued);
    const auto last_lat = static_cast<double>(r.last_done - r.issued);
    summary_.first_req_latency.add(first_lat);
    summary_.last_req_latency.add(last_lat);
    if (first_lat > 0.0) {
      summary_.last_to_first_ratio.add(last_lat / first_lat);
    }
    summary_.divergence_gap.add(static_cast<double>(r.last_done - r.first_done));

    if (obs_ != nullptr) {
      obs_->warp_load(r.sm, r.warp, uid, r.issued, r.first_done, r.last_done,
                      /*woke=*/now,
                      static_cast<std::uint32_t>(r.locs.size()));
    }
  }
  (void)now;
  records_.erase(it);
}

}  // namespace latdiv
