#include "gpu/partition.hpp"

#include "common/log.hpp"

namespace latdiv {

Partition::Partition(ChannelId id, const PartitionConfig& cfg,
                     const McConfig& mc_cfg, const DramTiming& timing,
                     std::unique_ptr<TransactionScheduler> policy,
                     const AddressMap& amap, Crossbar& xbar,
                     TrackerSink& tracker, obs::McEventSink* obs)
    : id_(id),
      cfg_(cfg),
      l2_(cfg.l2),
      mshr_(cfg.l2_mshr),
      amap_(amap),
      xbar_(xbar),
      tracker_(tracker),
      pipeline_(par::ArenaAllocator<Delayed>(&arena_)),
      fills_(par::ArenaAllocator<MemRequest>(&arena_)),
      responses_(par::ArenaAllocator<MemResponse>(&arena_)) {
  mc_ = std::make_unique<MemoryController>(
      id, mc_cfg, timing, std::move(policy),
      [this](const MemRequest& req, Cycle) {
        tracker_.on_dram_complete(req.tag.instr, req.completed);
        fills_.push_back(req);
      },
      obs, &arena_);
}

void Partition::process_fills(Cycle now) {
  while (!fills_.empty()) {
    const MemRequest& fill = fills_.front();
    // Installing the line may evict a dirty victim; that writeback needs
    // write-queue space before we commit the fill.
    if (!mc_->can_accept_write()) {
      ++stats_.stall_cycles;
      return;
    }
    if (auto victim = l2_.fill(fill.addr, /*dirty=*/false)) {
      MemRequest wb;
      wb.addr = *victim;
      wb.kind = ReqKind::kWrite;
      wb.loc = amap_.decode(*victim);
      LATDIV_ASSERT(wb.loc.channel == id_, "writeback crossed partitions");
      mc_->push(wb, now);
      ++stats_.writebacks;
    }
    for (MemRequest& waiter : mshr_.release(fill.addr)) {
      responses_.push_back(MemResponse{waiter.addr, waiter.tag, now,
                                       waiter.reqs_in_instr});
    }
    fills_.pop_front();
  }
}

bool Partition::handle(const MemRequest& req, Cycle now) {
  if (req.kind == ReqKind::kRead) {
    if (l2_.touch(req.addr)) {
      ++stats_.read_hits;
      responses_.push_back(
          MemResponse{req.addr, req.tag, now, req.reqs_in_instr});
    } else if (mshr_.tracking(req.addr)) {
      if (!mshr_.can_accept(req.addr)) {
        mshr_.count_stall();
        return false;
      }
      mshr_.add(req.addr, req);  // merge into the outstanding fetch
      ++stats_.mshr_merges;
      ++stats_.read_misses;
    } else {
      if (!mshr_.can_accept(req.addr) || !mc_->can_accept_read()) {
        if (!mshr_.can_accept(req.addr)) mshr_.count_stall();
        return false;
      }
      mshr_.add(req.addr, req);
      ++stats_.read_misses;
      tracker_.on_dram_request(req.tag.instr, req.loc);
      mc_->push(req, now);
    }
    // The warp-group tag must reach the controller whether or not the
    // tagged request itself needed DRAM.
    if (req.last_of_group_at_mc) mc_->notify_group_complete(req.tag, now);
    return true;
  }

  // Store: write-back write-allocate L2; coalesced stores write whole
  // lines, so a miss installs the line dirty without a fill read.
  if (l2_.probe(req.addr)) {
    l2_.touch(req.addr);  // recency update
    l2_.mark_dirty(req.addr);
    ++stats_.write_hits;
    return true;
  }
  if (!mc_->can_accept_write()) return false;  // eviction might need space
  ++stats_.write_misses;
  if (auto victim = l2_.fill(req.addr, /*dirty=*/true)) {
    MemRequest wb;
    wb.addr = *victim;
    wb.kind = ReqKind::kWrite;
    wb.loc = amap_.decode(*victim);
    mc_->push(wb, now);
    ++stats_.writebacks;
  }
  return true;
}

void Partition::process_requests(Cycle now) {
  // Accept new arrivals into the L2 pipeline.
  for (std::uint32_t n = 0; n < cfg_.lookups_per_cycle; ++n) {
    if (pipeline_.size() >= 2 * cfg_.l2_latency) break;  // pipeline depth
    const MemRequest* head = xbar_.peek_request(id_, now);
    if (head == nullptr) break;
    pipeline_.push_back(Delayed{now + cfg_.l2_latency, xbar_.pop_request(id_, now)});
  }
  // Retire lookups whose latency elapsed.
  for (std::uint32_t n = 0; n < cfg_.lookups_per_cycle; ++n) {
    if (pipeline_.empty() || pipeline_.front().ready_at > now) break;
    if (!handle(pipeline_.front().req, now)) {
      ++stats_.stall_cycles;
      break;  // head retries next cycle; order is preserved
    }
    pipeline_.pop_front();
  }
}

void Partition::drain_responses(Cycle now) {
  while (!responses_.empty() && xbar_.can_inject_response(id_)) {
    xbar_.inject_response(id_, responses_.front(), now);
    responses_.pop_front();
  }
}

void Partition::tick_core(Cycle now) {
  process_fills(now);
  process_requests(now);
  drain_responses(now);
}

}  // namespace latdiv
