#include "gpu/coalescer.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace latdiv {

void Coalescer::coalesce(const WarpInstr& instr, std::vector<Addr>& out) const {
  LATDIV_ASSERT(instr.kind != WarpInstr::Kind::kCompute,
                "coalescing a compute instruction");
  LATDIV_ASSERT(instr.active_lanes > 0 && instr.active_lanes <= kWarpLanes,
                "bad lane count");
  out.clear();
  const Addr mask = ~static_cast<Addr>(line_bytes_ - 1);
  for (std::uint32_t lane = 0; lane < instr.active_lanes; ++lane) {
    const Addr line = instr.lane_addr[lane] & mask;
    if (std::find(out.begin(), out.end(), line) == out.end()) {
      out.push_back(line);
    }
    if (perfect_ && !out.empty()) break;  // ideal: one request per instr
  }
}

void Coalescer::record(WarpInstr::Kind kind, std::size_t requests) {
  LATDIV_ASSERT(requests > 0, "memory instruction with no requests");
  if (kind == WarpInstr::Kind::kLoad) {
    ++stats_.loads;
    stats_.load_requests += requests;
    if (requests > 1) ++stats_.divergent_loads;
  } else {
    ++stats_.stores;
    stats_.store_requests += requests;
  }
}

}  // namespace latdiv
