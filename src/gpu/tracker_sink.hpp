// TrackerSink — the partition-side slice of InstrTracker's interface.
//
// A Partition reports per-request tracker events (request reached DRAM,
// request completed) through this interface rather than InstrTracker
// directly.  The serial core binds it to the real tracker; the sharded
// core binds each partition to its shard's par::ShardEffectBuffer, which
// records the calls and replays them into the tracker at the epoch merge
// in deterministic order.  Issue/finalize stay SM-side (main thread) and
// go straight to InstrTracker — only the two calls that originate inside
// a partition cross the shard boundary.
#pragma once

#include "common/types.hpp"
#include "mem/address_map.hpp"

namespace latdiv {

class TrackerSink {
 public:
  virtual ~TrackerSink() = default;

  /// A request of `uid` entered a memory controller's read queue.
  virtual void on_dram_request(WarpInstrUid uid, const DramLoc& loc) = 0;
  /// A DRAM request of `uid` finished its data burst.
  virtual void on_dram_complete(WarpInstrUid uid, Cycle done) = 0;
};

}  // namespace latdiv
