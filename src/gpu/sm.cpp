#include "gpu/sm.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace latdiv {

Sm::Sm(SmId id, const SmConfig& cfg, InstrSource& gen,
       const AddressMap& amap, Crossbar& xbar, InstrTracker& tracker,
       WarpInstrUid uid_base, WarpInstrUid uid_stride)
    : id_(id),
      cfg_(cfg),
      gen_(gen),
      amap_(amap),
      xbar_(xbar),
      tracker_(tracker),
      l1_(cfg.l1),
      mshr_(cfg.l1_mshr),
      coalescer_(cfg.l1.line_bytes, cfg.perfect_coalescing),
      warps_(cfg.warps),
      next_uid_(uid_base),
      uid_stride_(uid_stride) {
  LATDIV_ASSERT(cfg.warps > 0, "SM needs warps");
  LATDIV_ASSERT(uid_stride > 0, "uid stride must be positive");
}

void Sm::accept_response(Cycle now) {
  auto resp = xbar_.pop_response(id_, now);
  if (!resp) return;
  ++mem_epoch_;
  idle_until_ = 0;  // the fill below may wake a warp
  l1_.fill(resp->addr, /*dirty=*/false);
  for (const MemRequest& waiter : mshr_.release(resp->addr)) {
    Warp& w = warps_[waiter.tag.warp];
    LATDIV_ASSERT(w.pending_lines > 0, "fill for a warp with no loads");
    if (--w.pending_lines == 0) {
      w.ready_at = now + cfg_.fill_ready_delay;
      tracker_.finalize(waiter.tag.instr, now);
    }
  }
}

void Sm::dispatch_lsu(Cycle now) {
  if (!lsu_.active) return;
  for (std::uint32_t i = 0; i < cfg_.lsu_width; ++i) {
    if (lsu_.next >= lsu_.queue.size()) break;
    if (!xbar_.can_inject_request(id_)) {
      xbar_.count_inject_stall();
      break;
    }
    MemRequest req = lsu_.queue[lsu_.next++];
    req.issued_by_sm = now;
    xbar_.inject_request(id_, req, now);
  }
  if (lsu_.next >= lsu_.queue.size()) {
    if (lsu_.is_store) {
      Warp& w = warps_[lsu_.warp];
      w.waiting_lsu = false;
      w.ready_at = now + cfg_.core_clock_ratio;
    }
    lsu_.active = false;
    lsu_.queue.clear();
    lsu_.next = 0;
  }
}

bool Sm::issuable(const Warp& w, Cycle now) const {
  if (w.pending_lines > 0 || w.waiting_lsu || w.ready_at > now) return false;
  if (w.has_next && w.next.kind != WarpInstr::Kind::kCompute && lsu_.active) {
    return false;  // one memory instruction dispatches at a time
  }
  return true;
}

void Sm::generate_next(WarpId wid) {
  Warp& w = warps_[wid];
  w.next = gen_.next(id_, wid);
  w.has_next = true;
  w.issue_fail_epoch = 0;
  if (w.next.kind != WarpInstr::Kind::kCompute) {
    coalescer_.coalesce(w.next, w.lines);
  }
}

bool Sm::issue_memory(WarpId wid, Cycle now) {
  Warp& w = warps_[wid];
  // Since the last failed attempt for this very instruction, nothing the
  // classify loop reads has changed: fail again without re-probing (the
  // stall accounting stays cycle-accurate).
  if (w.issue_fail_epoch == mem_epoch_ + 1) {
    ++stats_.issue_stall_mshr;
    return false;
  }
  const WarpInstr& instr = w.next;
  const std::vector<Addr>& lines = w.lines;
  const WarpInstrUid uid = next_uid_;
  const WarpTag tag{id_, wid, uid};

  if (instr.kind == WarpInstr::Kind::kStore) {
    // Write-through, no-allocate: evict any L1 copy, send every line.
    ++mem_epoch_;
    lsu_.queue.clear();
    for (Addr line : lines) {
      l1_.invalidate(line);
      MemRequest req;
      req.addr = line;
      req.kind = ReqKind::kWrite;
      req.tag = tag;
      req.loc = amap_.decode(line);
      req.reqs_in_instr = static_cast<std::uint16_t>(lines.size());
      lsu_.queue.push_back(req);
    }
    lsu_.active = true;
    lsu_.is_store = true;
    lsu_.warp = wid;
    lsu_.next = 0;
    w.waiting_lsu = true;
    next_uid_ += uid_stride_;
    ++stats_.stores;
    coalescer_.record(WarpInstr::Kind::kStore, lines.size());
    return true;
  }

  // Load: classify every line first so MSHR space for the whole access
  // can be reserved atomically (a half-issued vector load cannot replay).
  std::uint32_t new_fetches = 0;
  std::uint32_t merges = 0;
  std::uint32_t hits = 0;
  for (Addr line : lines) {
    if (l1_.probe(line)) {
      ++hits;
    } else if (mshr_.tracking(line)) {
      if (!mshr_.can_accept(line)) {
        w.issue_fail_epoch = mem_epoch_ + 1;
        ++stats_.issue_stall_mshr;
        return false;
      }
      ++merges;
    } else {
      ++new_fetches;
    }
  }
  if (new_fetches > mshr_.free_entries()) {
    w.issue_fail_epoch = mem_epoch_ + 1;
    ++stats_.issue_stall_mshr;
    return false;
  }

  // Committed: touch hits (LRU + stats), register waiters, queue fetches.
  ++mem_epoch_;
  lsu_.queue.clear();
  std::uint32_t sent_per_channel[256] = {};
  std::uint32_t seen_per_channel[256] = {};
  for (Addr line : lines) {
    if (l1_.touch(line)) {  // counts the hit or miss and updates LRU
      continue;
    }
    MemRequest req;
    req.addr = line;
    req.kind = ReqKind::kRead;
    req.tag = tag;
    req.loc = amap_.decode(line);
    req.reqs_in_instr = static_cast<std::uint16_t>(lines.size());
    const bool fresh = mshr_.add(line, req);
    if (fresh) {
      lsu_.queue.push_back(req);
      ++sent_per_channel[req.loc.channel];
    }
  }
  // Tag the last injected request per memory partition (§IV-B2).
  for (MemRequest& req : lsu_.queue) {
    if (++seen_per_channel[req.loc.channel] ==
        sent_per_channel[req.loc.channel]) {
      req.last_of_group_at_mc = true;
    }
  }

  w.pending_lines = new_fetches + merges;
  if (w.pending_lines == 0) {
    w.ready_at = now + cfg_.l1_hit_latency;
  } else {
    tracker_.on_issue(tag, now);
  }
  if (!lsu_.queue.empty()) {
    lsu_.active = true;
    lsu_.is_store = false;
    lsu_.warp = wid;
    lsu_.next = 0;
  }
  next_uid_ += uid_stride_;
  ++stats_.loads;
  coalescer_.record(WarpInstr::Kind::kLoad, lines.size());
  return true;
}

void Sm::try_issue(Cycle now) {
  // The SM has one LSU issue port: after a memory instruction fails to
  // issue this cycle (MSHR or LSU pressure), further memory candidates
  // are skipped, but compute instructions may still dual-issue the slot.
  bool mem_tried = false;
  auto attempt = [&](WarpId wid) -> bool {
    Warp& w = warps_[wid];
    if (!w.has_next) generate_next(wid);
    if (!issuable(w, now)) return false;
    if (w.next.kind == WarpInstr::Kind::kCompute) {
      w.ready_at = now + static_cast<Cycle>(w.next.latency) *
                             cfg_.core_clock_ratio;
    } else {
      if (mem_tried) return false;
      mem_tried = true;
      if (!issue_memory(wid, now)) return false;
    }
    w.has_next = false;
    ++stats_.instructions;
    last_issued_ = wid;
    return true;
  };

  if (cfg_.warp_sched == WarpSchedPolicy::kGto) {
    // Greedy-then-oldest: stick with the last issuer, else lowest warp id.
    if (attempt(last_issued_)) return;
    for (WarpId wid = 0; wid < warps_.size(); ++wid) {
      if (wid != last_issued_ && attempt(wid)) return;
    }
  } else {
    // Loose round-robin: resume scanning after the last issuer, spreading
    // issue slots (and therefore memory divergence) across all warps.
    const auto n = static_cast<WarpId>(warps_.size());
    for (WarpId off = 1; off <= n; ++off) {
      const auto wid = static_cast<WarpId>((last_issued_ + off) % n);
      if (attempt(wid)) return;
    }
  }
  ++stats_.no_ready_warp_cycles;
  // Nothing issued and every warp holds a pre-generated instruction: the
  // scan is a no-op until the earliest wake-up (next_event returns `now`
  // whenever any state — LSU, MSHR stall, missing instruction — makes a
  // retry meaningful, so this memo never skips a tick that could act).
  idle_until_ = next_event(now);
}

void Sm::tick(Cycle now) {
  accept_response(now);
  dispatch_lsu(now);
  if (now < idle_until_) {
    // Provably idle scheduler tick (see try_issue): same accounting,
    // no warp scan.
    ++stats_.no_ready_warp_cycles;
    return;
  }
  try_issue(now);
}

Cycle Sm::next_event(Cycle now) const {
  if (lsu_.active) return now;
  Cycle ev = kNoCycle;
  for (const Warp& w : warps_) {
    if (!w.has_next) return now;  // a tick would draw from the shared stream
    if (w.pending_lines > 0 || w.waiting_lsu) continue;  // response-driven
    if (w.ready_at <= now) return now;
    ev = std::min(ev, w.ready_at);
  }
  return ev;
}

}  // namespace latdiv
