// Memory coalescer (paper §III-A).
//
// Combines the per-lane addresses of one warp memory instruction into as
// few 128B cache-line requests as possible, preserving first-lane order.
// Also the measurement point for the paper's Fig. 2 (coalescing
// efficiency): fraction of loads producing more than one request and the
// mean requests per load.
//
// `perfect` mode implements the Fig. 4 "Perfect Coalescing" ideal: every
// memory instruction collapses to exactly one request (its first lane's
// line), which bounds the performance cost of divergence itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "workload/instr.hpp"

namespace latdiv {

struct CoalescerStats {
  std::uint64_t loads = 0;
  std::uint64_t divergent_loads = 0;  ///< loads producing > 1 request
  std::uint64_t load_requests = 0;
  std::uint64_t stores = 0;
  std::uint64_t store_requests = 0;

  [[nodiscard]] double divergent_frac() const noexcept {
    return safe_ratio(static_cast<double>(divergent_loads),
                      static_cast<double>(loads));
  }
  [[nodiscard]] double requests_per_load() const noexcept {
    return safe_ratio(static_cast<double>(load_requests),
                      static_cast<double>(loads));
  }
};

class Coalescer {
 public:
  Coalescer(std::uint32_t line_bytes = 128, bool perfect = false)
      : line_bytes_(line_bytes), perfect_(perfect) {}

  /// Unique line base addresses of `instr`, in first-appearance order.
  /// `out` is cleared first; reuse one vector across calls to avoid
  /// per-instruction allocation.  Pure function of the instruction — call
  /// record() separately when the instruction actually issues, so retried
  /// issue attempts (e.g. on MSHR pressure) are not double-counted.
  void coalesce(const WarpInstr& instr, std::vector<Addr>& out) const;

  /// Account one successfully issued memory instruction.
  void record(WarpInstr::Kind kind, std::size_t requests);

  [[nodiscard]] const CoalescerStats& stats() const { return stats_; }

  /// Snapshot serialization of the counters (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  std::uint32_t line_bytes_;
  bool perfect_;
  CoalescerStats stats_;
};

}  // namespace latdiv
