// Per-warp-load-instruction lifetime tracking — the measurement substrate
// for the paper's divergence metrics.
//
// Every dynamic load that reaches DRAM is tracked from SM issue to the
// completion of its last DRAM request, yielding:
//   Fig. 3  — ratio of last-request latency to first-request latency and
//             memory controllers touched per warp;
//   §III-A  — banks touched per warp and the fraction of a warp's
//             requests that share a DRAM row;
//   Fig. 9  — effective memory latency (issue -> last DRAM completion);
//   Fig. 10 — absolute divergence gap (first -> last DRAM completion).
//
// Records live only while the load is in flight (~1k concurrent warps);
// finalisation folds them into running aggregates.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/annotations.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/tracker_sink.hpp"
#include "mem/address_map.hpp"

namespace latdiv::obs {
class ObsHub;
}

namespace latdiv {

struct TrackerSummary {
  std::uint64_t loads_finalized = 0;
  std::uint64_t loads_touching_dram = 0;
  Accumulator dram_reqs_per_load;     ///< among DRAM-touching loads
  Accumulator channels_per_load;      ///< Fig. 3 right axis
  Accumulator banks_per_load;         ///< distinct (channel,bank) pairs
  Accumulator same_row_frac;          ///< §III-A "30% in same row"
  Accumulator first_req_latency;      ///< issue -> first DRAM completion
  Accumulator last_req_latency;       ///< issue -> last DRAM completion
  Accumulator last_to_first_ratio;    ///< Fig. 3 divergence ratio
  Accumulator divergence_gap;         ///< Fig. 10 (cycles)
};

class InstrTracker : public TrackerSink {
 public:
  /// Attach the introspection hub (nullable).  Finalised loads feed the
  /// hub's divergence histograms and, when tracing, the warp timeline.
  void set_obs(obs::ObsHub* hub) { obs_ = hub; }

  /// SM issued a load that produced `lines` coalesced requests.
  void on_issue(WarpInstrUid uid, Cycle now);
  /// Same, with the owning <SM, warp> retained for the trace track.
  void on_issue(const WarpTag& tag, Cycle now);

  /// A request of `uid` entered a memory controller's read queue
  /// (TrackerSink; direct in serial runs, merge-replayed when sharded).
  void on_dram_request(WarpInstrUid uid, const DramLoc& loc) override;

  /// A DRAM request of `uid` finished its data burst.
  void on_dram_complete(WarpInstrUid uid, Cycle done) override;

  /// All of the load's lines have returned to the SM: fold and forget.
  void finalize(WarpInstrUid uid, Cycle now);

  [[nodiscard]] const TrackerSummary& summary() const { return summary_; }
  [[nodiscard]] std::size_t inflight() const { return records_.size(); }

  /// Snapshot serialization of in-flight records + aggregates (src/ckpt);
  /// the hub pointer is re-attached at construction.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct Record {
    Cycle issued = kNoCycle;
    Cycle first_done = kNoCycle;
    Cycle last_done = kNoCycle;
    SmId sm = 0;
    WarpId warp = 0;
    std::vector<DramLoc> locs;  ///< one per DRAM request (<= 32)
  };

  std::unordered_map<WarpInstrUid, Record> records_;
  TrackerSummary summary_;
  // The tracker lives on the SM side of the crossbar; a sharded core
  // keeps it (and its hub pointer) on the GPU-core thread.
  obs::ObsHub* obs_ LATDIV_SHARD_LOCAL = nullptr;
};

}  // namespace latdiv
