// Streaming multiprocessor (SIMT core) timing model.
//
// Captures exactly the behaviours the paper's memory study depends on:
//   * 32-lane warps execute in lockstep; a warp that issues a load BLOCKS
//     until every coalesced request returns (the latency-divergence
//     mechanism under study);
//   * greedy-then-oldest warp scheduling hides latency with TLP until all
//     warps are blocked (§III-A "Multithreading");
//   * the coalescer merges lanes into 128B line requests (§III-A);
//   * an L1 with MSHRs filters and merges traffic; loads allocate, stores
//     write through without allocating (write-evict);
//   * a load/store unit dispatches a divergent access's requests over
//     multiple cycles, in order, so the interconnect sees each warp's
//     requests as an ordered train and the *last* request per memory
//     partition can carry the warp-group completion tag (§IV-B2).
//
// Functional execution (register values, control flow) is delegated to
// the workload generator; the SM is purely a timing model, which is all
// the paper's evaluation requires (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/types.hpp"
#include "gpu/coalescer.hpp"
#include "gpu/tracker.hpp"
#include "icnt/crossbar.hpp"
#include "mem/address_map.hpp"
#include "workload/instr_source.hpp"

namespace latdiv {

enum class WarpSchedPolicy : std::uint8_t {
  kGto,  ///< greedy-then-oldest (default; GPGPU-Sim's strongest baseline)
  kLrr,  ///< loose round-robin: rotate the start point every issue
};

struct SmConfig {
  std::uint32_t warps = 32;  ///< 1024 threads / 32 lanes (paper Table II)
  WarpSchedPolicy warp_sched = WarpSchedPolicy::kGto;
  CacheConfig l1{32 * 1024, 128, 8};
  MshrConfig l1_mshr{32, 8};
  /// All latencies in global (DRAM command-clock) cycles.
  Cycle l1_hit_latency = 8;
  Cycle fill_ready_delay = 2;
  std::uint32_t lsu_width = 2;  ///< line dispatches per core cycle
  std::uint32_t core_clock_ratio = 2;  ///< DRAM cycles per core cycle
  bool perfect_coalescing = false;     ///< Fig. 4 ideal
};

struct SmStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t issue_stall_mshr = 0;  ///< load couldn't reserve MSHRs
  std::uint64_t no_ready_warp_cycles = 0;
};

class Sm {
 public:
  Sm(SmId id, const SmConfig& cfg, InstrSource& gen,
     const AddressMap& amap, Crossbar& xbar, InstrTracker& tracker,
     WarpInstrUid uid_base, WarpInstrUid uid_stride);

  /// Core-domain tick.
  void tick(Cycle now);

  /// Earliest core-domain cycle >= now at which a tick can change this
  /// SM's own state (idle fast-forward): `now` while the LSU is busy, a
  /// warp lacks a pre-generated instruction (the next draw from the
  /// shared instruction stream is globally ordered and must not move), or
  /// any unblocked warp is ready; otherwise the earliest ready_at of the
  /// unblocked warps.  Warps blocked on loads are woken externally (the
  /// crossbar's response queues carry that event), so they contribute
  /// nothing; kNoCycle when every warp is blocked.
  [[nodiscard]] Cycle next_event(Cycle now) const;

  /// Credit `n` skipped core ticks of scheduler-idle accounting: a
  /// skipped tick is precisely one in which no warp could issue.
  void note_idle_core_ticks(std::uint64_t n) {
    stats_.no_ready_warp_cycles += n;
  }

  [[nodiscard]] const SmStats& stats() const { return stats_; }
  [[nodiscard]] const Coalescer& coalescer() const { return coalescer_; }
  [[nodiscard]] const Cache& l1() const { return l1_; }
  [[nodiscard]] const MshrFile& mshr() const { return mshr_; }

  /// Warps blocked on an in-flight divergent load.  Each such warp owns
  /// exactly one live InstrTracker record, so the sum over all SMs must
  /// equal InstrTracker::inflight() (checked by the invariant auditor).
  [[nodiscard]] std::size_t warps_blocked_on_loads() const {
    std::size_t n = 0;
    for (const Warp& w : warps_) {
      if (w.pending_lines > 0) ++n;
    }
    return n;
  }

  /// Functional L1 warming during a sampled-mode skip interval
  /// (ckpt::SampledRunner): install recency/presence for `line` without
  /// issuing any request.  Counts in cache stats like a normal access —
  /// sampled-mode estimates never read hit rates across a skip.
  void warm_line(Addr line) {
    if (!l1_.touch(line)) l1_.fill(line);
  }

  /// Snapshot serialization of the full core state (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct Warp {
    Cycle ready_at = 0;
    std::uint32_t pending_lines = 0;  ///< outstanding loads block the warp
    bool waiting_lsu = false;         ///< store dispatch in progress
    bool has_next = false;
    WarpInstr next;
    /// mem_epoch_+1 when issue_memory last failed for `next` (0 = never):
    /// until the L1/MSHR state changes, re-running the classify loop
    /// would fail identically, so the retry short-circuits (it still
    /// counts its issue_stall_mshr tick).
    std::uint64_t issue_fail_epoch = 0;
    /// Coalesced line set of `next`, computed once at generation time
    /// (issue retries must not re-run the coalescer: it is pure, and
    /// re-running it would double-count statistics and burn host time).
    std::vector<Addr> lines;
  };

  struct Lsu {
    bool active = false;
    bool is_store = false;
    WarpId warp = 0;
    std::vector<MemRequest> queue;
    std::size_t next = 0;
  };

  void accept_response(Cycle now);
  void dispatch_lsu(Cycle now);
  void try_issue(Cycle now);
  [[nodiscard]] bool issuable(const Warp& w, Cycle now) const;
  bool issue_memory(WarpId wid, Cycle now);
  void generate_next(WarpId wid);

  SmId id_;
  SmConfig cfg_;
  InstrSource& gen_;
  const AddressMap& amap_;
  Crossbar& xbar_;
  InstrTracker& tracker_;

  Cache l1_;
  MshrFile mshr_;
  Coalescer coalescer_;
  std::vector<Warp> warps_;
  Lsu lsu_;
  /// Bumped whenever L1 or MSHR contents change (fills, releases,
  /// invalidates, reservations) — the entire state the issue_memory
  /// classify loop reads.  Keys the per-warp issue_fail_epoch memo.
  std::uint64_t mem_epoch_ = 0;
  /// Until this cycle no warp can issue (set by a fully-failed scheduler
  /// scan via next_event(); reset whenever a response wakes a warp).  A
  /// tick before it skips the warp scan and just counts the idle cycle.
  Cycle idle_until_ = 0;
  WarpId last_issued_ = 0;
  WarpInstrUid next_uid_;
  WarpInstrUid uid_stride_;
  SmStats stats_;
};

}  // namespace latdiv
