// Warp-Aware FCFS (Yuan et al., MICRO 2008) — paper §VI-C2.
//
// Yuan et al.'s complexity-effective design relies on an interconnect that
// does not interleave requests from different SMs, so that a simple FCFS
// controller sees each warp's requests contiguously and can harvest their
// spatial locality in order.  The controller-side policy is therefore plain
// FCFS; the non-interleaving interconnect is enabled separately via
// IcntConfig::sticky_arbitration when the sim preset selects WAFCFS.
#pragma once

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

class WafcfsPolicy final : public TransactionScheduler {
 public:
  [[nodiscard]] const char* name() const override { return "WAFCFS"; }

  void schedule_reads(MemoryController& mc, Cycle now) override {
    auto& rq = mc.read_queue();
    if (rq.empty()) return;
    const MemRequest& head = rq.front();
    if (!mc.bank_queue_has_space(head.loc.bank)) return;
    MemRequest req = rq.pop();
    mc.send_to_bank(req, now);
  }
};

}  // namespace latdiv
