// The throughput-optimized GPU memory controller baseline (paper §II-C).
//
// The GMC's row sorter forms streams of row-hit requests per bank; the
// transaction scheduler "picks a row-hit stream from the row sorter to
// service in each bank and interleaves requests to different banks" — so
// unlike classic FR-FCFS (one global pick), the GMC keeps EVERY bank's
// command queue fed with that bank's best stream each cycle.  Two
// fairness valves bound the reordering:
//   * an age threshold — a request older than `age_threshold` cycles is
//     scheduled next regardless of row locality;
//   * a maximum row-hit streak — a bank's planned same-row run is capped
//     so one stream cannot monopolise a bank.
//
// The streak state lives in the controller's per-bank insertion metadata
// (tail_streak), which is exactly the row sorter's "current stream length"
// without duplicating the bookkeeping here.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

struct GmcConfig {
  /// Cycles after which a pending request pre-empts row-hit streaming
  /// (~680 ns at tCK=0.667ns, ~1.4x the typical loaded round trip).
  Cycle age_threshold = 1024;
  /// Maximum consecutive same-row transactions planned per bank.
  std::uint32_t max_hit_streak = 16;
  /// Per-bank lookahead: how many transactions may sit in a bank's
  /// command queue before the row sorter stops feeding it.  Committing
  /// decisions early into a deep in-order queue would forfeit row hits
  /// from requests that arrive a few cycles later; the row sorter keeps
  /// the choice open until the bank is nearly ready (double-buffering).
  std::uint32_t bank_lookahead = 2;
};

class GmcPolicy : public TransactionScheduler {
 public:
  explicit GmcPolicy(const GmcConfig& cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const char* name() const override { return "GMC"; }

  void schedule_reads(MemoryController& mc, Cycle now) override {
    auto& rq = mc.read_queue();
    if (rq.empty()) return;

    // One pass: per bank, remember the queue position of the best
    // candidate in each priority class (positions are stable until we
    // erase, which happens afterwards in descending order).
    constexpr std::size_t kMaxBanks = 32;
    constexpr std::size_t kNone = static_cast<std::size_t>(-1);
    struct Cand {
      std::size_t aged, hit, breaker, oldest;
    };
    std::array<Cand, kMaxBanks> cands;
    cands.fill(Cand{kNone, kNone, kNone, kNone});
    const auto banks = static_cast<std::size_t>(mc.channel().timing().banks);
    LATDIV_ASSERT(banks <= kMaxBanks, "bank count above candidate table");

    std::size_t pos = 0;
    for (auto it = rq.begin(); it != rq.end(); ++it, ++pos) {
      const BankId bank = it->loc.bank;
      const std::size_t depth = mc.bank_queue_size(bank);
      if (depth >= cfg_.bank_lookahead) continue;
      Cand& c = cands[bank];
      const bool extends = mc.predicted_row(bank) == it->loc.row;
      // Row-closing candidates only go in once the bank has fully drained:
      // a hit for the still-open row may be one arrival away, and closing
      // early forfeits it (the row sorter's stream hysteresis).
      const bool miss_ok = depth == 0;
      const bool under_cap = mc.tail_streak(bank) < cfg_.max_hit_streak;
      if (c.oldest == kNone && ((extends && under_cap) || miss_ok)) {
        c.oldest = pos;
      }
      // The starvation valve overrides the hysteresis: an over-age
      // request is inserted as soon as the bank can take it at all.
      if (c.aged == kNone && now - it->arrived_at_mc > cfg_.age_threshold) {
        c.aged = pos;
      }
      if (c.hit == kNone && extends && under_cap) c.hit = pos;
      if (c.breaker == kNone && !extends && miss_ok) c.breaker = pos;
    }

    // Per bank: starvation valve, then row-hit streaming below the streak
    // cap, then (streak capped) the oldest stream-breaking request, then
    // arrival order.  Collect the picks and erase from the back so the
    // recorded positions stay valid.
    std::array<std::size_t, kMaxBanks> picks;
    std::size_t n_picks = 0;
    for (std::size_t b = 0; b < banks; ++b) {
      const Cand& c = cands[b];
      std::size_t pick = c.aged;
      if (pick == kNone) pick = c.hit;
      if (pick == kNone) pick = c.breaker;
      if (pick == kNone) pick = c.oldest;
      if (pick != kNone) picks[n_picks++] = pick;
    }
    std::sort(picks.begin(), picks.begin() + n_picks);
    for (std::size_t i = n_picks; i-- > 0;) {
      auto it = rq.begin() + static_cast<std::ptrdiff_t>(picks[i]);
      MemRequest req = *it;
      rq.erase(it);
      mc.send_to_bank(req, now);
    }
  }

 private:
  GmcConfig cfg_;
};

}  // namespace latdiv
