// Transaction-scheduler policy interface (paper Fig. 1, block 4).
//
// A MemoryController owns the fixed microarchitecture — read/write queues,
// per-bank command queues, the command scheduler, the write-drain state
// machine — and delegates exactly one decision to a TransactionScheduler:
// *which request(s) move from the request queues into the per-bank command
// queues this cycle*.  Every scheduler in the paper (GMC, FCFS, FR-FCFS,
// WAFCFS, SBWAS, WG and its variants) is one implementation of this
// interface, so all of them share identical DRAM timing and queue plumbing
// and differ only in the policy under test.
#pragma once

#include "common/types.hpp"
#include "mem/request.hpp"

namespace latdiv {

namespace ckpt {
class CkptWriter;
class CkptReader;
}  // namespace ckpt

class MemoryController;
struct WgStats;

/// Coordination message exchanged between controllers (WG-M, §IV-C):
/// 32 bits on the wire — SM id, warp id, and the local completion-time
/// score of the warp-group the sender just selected.
struct CoordMsg {
  ChannelId source = 0;
  WarpTag tag;
  std::uint32_t score = 0;  ///< sender's local completion-time estimate
};

class TransactionScheduler {
 public:
  virtual ~TransactionScheduler() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Move zero or more read requests from mc.read_queue() into bank
  /// command queues via mc.send_to_bank().  Called once per controller
  /// cycle while the controller is in read mode.
  virtual void schedule_reads(MemoryController& mc, Cycle now) = 0;

  /// Write-drain scheduling.  The default implementation drains the write
  /// queue oldest-first with a row-hit preference (FR-FCFS over writes),
  /// which is the paper's baseline behaviour for every policy except WG-W
  /// (which alters the *read* priorities leading up to a drain, not the
  /// drain order itself).
  virtual void schedule_writes(MemoryController& mc, Cycle now);

  /// Notification: a request was accepted into the read or write queue.
  virtual void on_push(MemoryController& mc, const MemRequest& req,
                       Cycle now);

  /// Notification: the partition has seen the last request of warp-group
  /// `tag` for this controller (the request itself may have hit in L2 and
  /// never arrived here).
  virtual void on_group_complete(MemoryController& mc, const WarpTag& tag,
                                 Cycle now);

  /// Notification: another controller selected a warp-group (WG-M).
  virtual void on_remote_selection(MemoryController& mc, const CoordMsg& msg,
                                   Cycle now);

  /// Notification: a high-watermark write drain is about to begin.  WG-W
  /// uses the *approach* to the watermark (see WgPolicy); this hook exists
  /// so warp-aware policies can record Fig. 12's stalled-group statistics.
  virtual void on_drain_start(MemoryController& mc, Cycle now);

  /// SBWAS interleaves writes with reads instead of using drain bursts.
  [[nodiscard]] virtual bool wants_interleaved_writes() const { return false; }

  /// Warp-group statistics view, for policies that keep warp-group
  /// bookkeeping (the WG family).  Wrapper policies should forward to the
  /// wrapped scheduler so Simulator::collect() can aggregate WG counters
  /// without downcasting concrete types.  Null when the policy has none.
  [[nodiscard]] virtual const WgStats* wg_stats() const { return nullptr; }

  /// True when the policy is a pure function of the controller's queue
  /// and bank state: with no queued work it does nothing until new work
  /// arrives.  Idle fast-forward (Simulator::run) skips a controller's
  /// cycles only while this holds; a custom policy with internal
  /// time-driven state must return false.
  [[nodiscard]] virtual bool quiescent() const { return true; }

  /// Snapshot hooks (src/ckpt).  Policies with cross-cycle private state
  /// override both sides (WgPolicy); stateless schedulers — everything
  /// that decides purely from the controller's queues and bank state —
  /// inherit the no-ops and round-trip through a snapshot for free.
  virtual void ckpt_save(ckpt::CkptWriter&) const {}
  virtual void ckpt_load(ckpt::CkptReader&) {}
};

}  // namespace latdiv
