// The GPU memory controller (paper Fig. 1): one per channel.
//
//   Read Queue (64) ─┐
//                    ├─ TransactionScheduler ─ per-bank Command Queues (8)
//   Write Queue (64)─┘         (policy)               │
//                                              Command Scheduler
//                                       (multi-level RR over bank groups,
//                                        in-order within a bank)
//                                                     │
//                                               GDDR5 Channel
//
// Writes are buffered and drained in batches between watermarks (32/16) to
// amortise bus turnaround (tWTR); an opportunistic drain runs when the read
// side is idle.  The command scheduler issues at most one DRAM command per
// cycle, interleaving across bank groups first (GDDR5's tCCDS < tCCDL
// rewards this) and servicing each bank's command queue strictly in order
// so that the transaction scheduler's decisions are preserved.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/annotations.hpp"
#include "common/bounded_queue.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "dram/channel.hpp"
#include "dram/params.hpp"
#include "mc/policy.hpp"
#include "mem/request.hpp"
#include "par/arena.hpp"

namespace latdiv::obs {
class McEventSink;
}

namespace latdiv {

/// Arena-backed queue types: node storage comes from the owning
/// partition's ShardArena (a null arena falls back to the global heap —
/// see par/arena.hpp).  Consumers use `auto&` / range-for, so the alias
/// is the only place the allocator appears.
using McRequestQueue = BoundedQueue<MemRequest, par::ArenaAllocator<MemRequest>>;
using McBankQueue = std::deque<MemRequest, par::ArenaAllocator<MemRequest>>;

struct McConfig {
  std::uint32_t read_queue_size = 64;
  std::uint32_t write_queue_size = 64;
  std::uint32_t wq_high_watermark = 32;
  std::uint32_t wq_low_watermark = 16;
  std::uint32_t bank_queue_depth = 8;
  bool opportunistic_drain = true;
};

/// Controller-level counters (DRAM-level counters live in ChannelStats).
struct McStats {
  std::uint64_t reads_accepted = 0;   ///< pushes into the read queue
  std::uint64_t writes_accepted = 0;  ///< pushes into the write queue
  std::uint64_t reads_served = 0;
  std::uint64_t writes_served = 0;
  std::uint64_t drains_started = 0;
  Accumulator read_queueing_cycles;   ///< arrival -> CAS issue
  Accumulator read_service_cycles;    ///< arrival -> data complete
  // Fig. 12 inputs: at each drain start, how many fully-formed warp-groups
  // were stalled, and how many of those were unit-sized or orphaned
  // (1-2 requests remaining).
  std::uint64_t drain_stalled_groups = 0;
  std::uint64_t drain_stalled_small_groups = 0;
  // Per-bank row-buffer outcomes, classified when a request reaches the
  // head of its bank command queue (see RowOutcome).  Sum over banks
  // covers every CAS this controller issued; requests still queued or
  // in flight at end of run are simply unclassified.
  std::vector<std::uint64_t> bank_row_hits;
  std::vector<std::uint64_t> bank_row_misses;
  std::vector<std::uint64_t> bank_row_conflicts;
};

class MemoryController {
 public:
  /// `on_read_done(req, now)` fires the cycle read data is fully returned.
  using ResponseFn = std::function<void(const MemRequest&, Cycle)>;

  /// `obs` (optional) receives request-lifecycle events; it is strictly
  /// an observer — scheduling behaviour is identical with or without it.
  /// Under a sharded core it is the partition's ShardEffectBuffer rather
  /// than the hub itself.  `arena` (optional) backs the request/command
  /// queues' node storage.
  MemoryController(ChannelId id, const McConfig& cfg, const DramTiming& timing,
                   std::unique_ptr<TransactionScheduler> policy,
                   ResponseFn on_read_done, obs::McEventSink* obs = nullptr,
                   par::ShardArena* arena = nullptr);

  // --- ingress (called by the partition) ---
  [[nodiscard]] bool can_accept_read() const { return !read_q_.full(); }
  [[nodiscard]] bool can_accept_write() const { return !write_q_.full(); }
  void push(MemRequest req, Cycle now);
  /// The partition saw the last request of `tag`'s warp-group for this
  /// controller (it may have been filtered by an L2 hit).
  void notify_group_complete(const WarpTag& tag, Cycle now);
  /// Deliver a coordination-network message (WG-M).
  void deliver_coordination(const CoordMsg& msg, Cycle now);

  /// Advance one command-clock cycle.
  void tick(Cycle now);

  // --- policy-facing API ---
  [[nodiscard]] McRequestQueue& read_queue() { return read_q_; }
  [[nodiscard]] const McRequestQueue& read_queue() const { return read_q_; }
  [[nodiscard]] McRequestQueue& write_queue() { return write_q_; }
  [[nodiscard]] const McRequestQueue& write_queue() const { return write_q_; }
  [[nodiscard]] bool bank_queue_has_space(BankId bank,
                                          std::size_t n = 1) const;
  [[nodiscard]] std::size_t bank_queue_size(BankId bank) const;
  [[nodiscard]] const McBankQueue& bank_queue(BankId bank) const;
  /// Row a new transaction on `bank` would find "open": the row of the
  /// last transaction enqueued to that bank, falling back to the row open
  /// in the DRAM array (paper §IV-B1's hit/miss estimate).
  [[nodiscard]] RowId predicted_row(BankId bank) const;
  /// Consecutive same-row transactions at the tail of `bank`'s planned
  /// sequence (the WG-Bw MERB counter, maintained at insertion time).
  [[nodiscard]] std::uint32_t tail_streak(BankId bank) const;
  /// Move a request (already removed from a request queue) into its bank's
  /// command queue.  Caller must have checked bank_queue_has_space().
  void send_to_bank(MemRequest req, Cycle now);
  [[nodiscard]] const Channel& channel() const { return channel_; }
  /// Mutable channel access, needed to attach a command observer
  /// (src/check protocol checker).  Scheduling code must use the const
  /// accessor.
  [[nodiscard]] Channel& channel_mut() { return channel_; }
  /// Reads that issued their CAS but whose data burst has not completed
  /// (conservation audits: accepted == queued + pending + inflight + served).
  [[nodiscard]] std::size_t inflight_reads() const {
    return inflight_reads_.size();
  }
  [[nodiscard]] bool in_write_drain() const { return write_mode_; }
  [[nodiscard]] const McConfig& config() const { return cfg_; }
  [[nodiscard]] ChannelId id() const { return id_; }
  /// Broadcast queue drained by the owning coordination network each cycle.
  [[nodiscard]] std::vector<CoordMsg>& outbox() { return outbox_; }
  /// Policies call this when they select a warp-group (WG-M broadcast).
  void announce_selection(const WarpTag& tag, std::uint32_t score);
  /// Total requests sitting in all bank command queues.
  [[nodiscard]] std::size_t commands_pending() const { return cmdq_total_; }
  /// Number of banks with a non-empty command queue (MERB table index).
  [[nodiscard]] std::uint32_t banks_with_work() const {
    return nonempty_banks_;
  }

  // --- change tracking (policy score caches) ---
  /// Bumped whenever `bank`'s scheduling-visible state changes: its
  /// command queue contents, its insertion metadata (predicted row /
  /// tail streak) or its DRAM array state (open row).  Policies key
  /// per-bank score caches on this.
  [[nodiscard]] std::uint64_t bank_epoch(BankId bank) const {
    LATDIV_DCHECK(bank < bank_epoch_.size(), "bank out of range");
    return bank_epoch_[bank];
  }
  /// Bumped on every controller-state change a transaction scheduler can
  /// observe (queue pushes and pulls, command issue, drain-mode flips,
  /// group-completion and coordination deliveries).  A scheduling
  /// decision that failed at epoch E cannot succeed at epoch E unless
  /// time alone changes the answer.
  [[nodiscard]] std::uint64_t mutation_epoch() const {
    return mutation_epoch_;
  }

  // --- idle fast-forward (Simulator::run) ---
  /// Earliest cycle >= now at which a tick can change controller state:
  /// `now` while any queue holds work, a drain-mode flip is pending, the
  /// policy is not quiescent, or coordination messages await pickup;
  /// otherwise the earliest of the next in-flight read completion and the
  /// next refresh deadline (kNoCycle when fully drained and refresh-free).
  [[nodiscard]] Cycle next_event(Cycle now) const {
    if (!read_q_.empty() || !write_q_.empty() || cmdq_total_ != 0 ||
        !outbox_.empty() || write_mode_ || !policy_->quiescent()) {
      return now;
    }
    Cycle ev = channel_.next_refresh_at();
    if (!inflight_reads_.empty()) {
      ev = std::min(ev, inflight_reads_.top().done);
    }
    return ev;
  }
  /// Credit `n` skipped cycles of per-cycle idle accounting.
  void note_idle_cycles(std::uint64_t n) { channel_.note_idle_cycles(n); }
  [[nodiscard]] const std::vector<CoordMsg>& outbox() const {
    return outbox_;
  }

  // Fig. 12 accounting: policies report the warp-groups stalled when a
  // drain begins.
  void record_drain_stall(std::size_t groups, std::size_t small_groups);

  [[nodiscard]] const McStats& stats() const { return stats_; }
  [[nodiscard]] TransactionScheduler& policy() { return *policy_; }
  [[nodiscard]] const TransactionScheduler& policy() const { return *policy_; }

  /// Snapshot serialization of queues, drain state, DRAM timing state and
  /// the policy's private state (src/ckpt); the callback/sink/arena wiring
  /// comes from construction.
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  struct Inflight {
    Cycle done;
    MemRequest req;
    friend bool operator<(const Inflight& a, const Inflight& b) {
      return a.done > b.done;  // min-heap on completion time
    }
  };

  void update_drain_mode(Cycle now);
  void issue_one_command(Cycle now);
  void complete_reads(Cycle now);
  [[nodiscard]] bool all_bank_queues_empty() const { return cmdq_total_ == 0; }
  /// Writes the current drain episode pulled out of the write queue so
  /// far: start depth plus arrivals absorbed, minus what is still queued.
  [[nodiscard]] std::uint64_t drained_writes() const {
    return wq_at_drain_start_ + writes_arrived_in_drain_ - write_q_.size();
  }

  ChannelId id_;
  McConfig cfg_;
  Channel channel_;
  std::unique_ptr<TransactionScheduler> policy_;
  // The response callback re-enters the coordination network / tracker;
  // under a sharded core responses are queued to the owning shard rather
  // than invoked cross-thread, so the callback itself stays shard-local.
  ResponseFn on_read_done_ LATDIV_SHARD_LOCAL;
  // Nullable; never consulted for decisions.  Observation is serialised
  // per-channel, so the sink pointer is only dereferenced on this
  // controller's own tick (the sharded core binds it to the partition's
  // ShardEffectBuffer, the serial core to the ObsHub).
  obs::McEventSink* obs_ LATDIV_SHARD_LOCAL = nullptr;
  // Drain-episode accounting for obs_->drain_end's flushed-write count.
  std::size_t wq_at_drain_start_ = 0;
  std::uint64_t writes_arrived_in_drain_ = 0;

  McRequestQueue read_q_;
  McRequestQueue write_q_;
  std::vector<McBankQueue> bank_q_;
  // Per-bank insertion metadata, SoA: predicted_row()/tail_streak() are
  // the policies' hottest probes and each touches exactly one of the two
  // arrays, so splitting them keeps the scanned array dense in cache.
  std::vector<RowId> bank_tail_row_;
  std::vector<std::uint32_t> bank_tail_streak_;
  std::size_t cmdq_total_ = 0;
  std::uint32_t nonempty_banks_ = 0;

  // Change counters for policy-side caches (see bank_epoch()).
  std::vector<std::uint64_t> bank_epoch_;
  std::uint64_t mutation_epoch_ = 0;

  bool write_mode_ = false;
  bool opportunistic_mode_ = false;

  // Multi-level round-robin pointers for the command scheduler.
  std::uint32_t rr_group_ = 0;
  std::vector<std::uint32_t> rr_bank_in_group_;

  std::priority_queue<Inflight> inflight_reads_;
  std::vector<CoordMsg> outbox_;
  McStats stats_;
};

}  // namespace latdiv
