#include "mc/policy_sbwas.hpp"

#include <algorithm>

namespace latdiv {

void SbwasPolicy::rebuild_remaining(MemoryController& mc) {
  remaining_.clear();
  for (const MemRequest& req : mc.read_queue()) {
    ++remaining_[req.tag.instr];
  }
}

bool SbwasPolicy::try_schedule_write(MemoryController& mc, Cycle now,
                                     bool force) {
  auto& wq = mc.write_queue();
  if (wq.empty()) return false;
  auto best = wq.end();
  for (auto it = wq.begin(); it != wq.end(); ++it) {
    if (!mc.bank_queue_has_space(it->loc.bank)) continue;
    if (mc.predicted_row(it->loc.bank) == it->loc.row) {
      best = it;
      break;  // oldest row-hit write
    }
    if (force && best == wq.end()) best = it;
  }
  if (best == wq.end()) return false;
  MemRequest req = *best;
  wq.erase(best);
  mc.send_to_bank(req, now);
  return true;
}

void SbwasPolicy::schedule_reads(MemoryController& mc, Cycle now) {
  // Interleaved-write model: under write pressure, a write goes first;
  // otherwise writes only piggyback as row hits when no read candidate
  // exists (handled at the end).
  if (mc.write_queue().size() >= cfg_.write_pressure &&
      try_schedule_write(mc, now, /*force=*/true)) {
    return;
  }

  auto& rq = mc.read_queue();
  if (rq.empty()) {
    try_schedule_write(mc, now, /*force=*/true);
    return;
  }
  rebuild_remaining(mc);

  // Candidate (a): oldest schedulable row-hit.
  // Candidate (b): schedulable request from the warp with the fewest
  // requests remaining in this controller (oldest among ties).
  auto hit = rq.end();
  auto shortest = rq.end();
  std::uint32_t shortest_remaining = 0;
  for (auto it = rq.begin(); it != rq.end(); ++it) {
    const BankId bank = it->loc.bank;
    if (mc.bank_queue_size(bank) >= 2) continue;  // decide near issue time
    if (hit == rq.end() && mc.predicted_row(bank) == it->loc.row) hit = it;
    const std::uint32_t rem = remaining_.at(it->tag.instr);
    if (shortest == rq.end() || rem < shortest_remaining) {
      shortest = it;
      shortest_remaining = rem;
    }
  }
  if (shortest == rq.end()) {
    // Nothing schedulable (all target banks full); let writes use the slot.
    try_schedule_write(mc, now, /*force=*/false);
    return;
  }

  auto pick = shortest;
  if (hit != rq.end()) {
    const double pot_hit = 1.0 - cfg_.alpha;
    const double pot_short =
        cfg_.alpha / static_cast<double>(shortest_remaining);
    if (pot_hit >= pot_short) pick = hit;
  }
  MemRequest req = *pick;
  rq.erase(pick);
  mc.send_to_bank(req, now);
}

}  // namespace latdiv
