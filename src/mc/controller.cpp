#include "mc/controller.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "obs/event_sink.hpp"

namespace latdiv {

// ---- TransactionScheduler defaults -----------------------------------

void TransactionScheduler::schedule_writes(MemoryController& mc, Cycle now) {
  auto& wq = mc.write_queue();
  if (wq.empty()) return;
  // FR-FCFS over the write queue: oldest row-hit, else oldest schedulable.
  auto best = wq.end();
  for (auto it = wq.begin(); it != wq.end(); ++it) {
    if (!mc.bank_queue_has_space(it->loc.bank)) continue;
    if (mc.predicted_row(it->loc.bank) == it->loc.row) {
      best = it;
      break;
    }
    if (best == wq.end()) best = it;
  }
  if (best != wq.end()) {
    MemRequest req = *best;
    wq.erase(best);
    mc.send_to_bank(req, now);
  }
}

void TransactionScheduler::on_push(MemoryController&, const MemRequest&,
                                   Cycle) {}
void TransactionScheduler::on_group_complete(MemoryController&,
                                             const WarpTag&, Cycle) {}
void TransactionScheduler::on_remote_selection(MemoryController&,
                                               const CoordMsg&, Cycle) {}
void TransactionScheduler::on_drain_start(MemoryController&, Cycle) {}

// ---- MemoryController -------------------------------------------------

MemoryController::MemoryController(ChannelId id, const McConfig& cfg,
                                   const DramTiming& timing,
                                   std::unique_ptr<TransactionScheduler> policy,
                                   ResponseFn on_read_done,
                                   obs::McEventSink* obs,
                                   par::ShardArena* arena)
    : id_(id),
      cfg_(cfg),
      channel_(timing),
      policy_(std::move(policy)),
      on_read_done_(std::move(on_read_done)),
      obs_(obs),
      read_q_(cfg.read_queue_size, par::ArenaAllocator<MemRequest>(arena)),
      write_q_(cfg.write_queue_size, par::ArenaAllocator<MemRequest>(arena)),
      bank_q_(timing.banks,
              McBankQueue(par::ArenaAllocator<MemRequest>(arena))),
      bank_tail_row_(timing.banks, kNoRow),
      bank_tail_streak_(timing.banks, 0),
      bank_epoch_(timing.banks, 0),
      rr_bank_in_group_(timing.banks / timing.banks_per_group, 0) {
  LATDIV_ASSERT(policy_ != nullptr, "controller needs a policy");
  LATDIV_ASSERT(cfg.wq_low_watermark < cfg.wq_high_watermark &&
                    cfg.wq_high_watermark <= cfg.write_queue_size,
                "bad write watermarks");
  stats_.bank_row_hits.assign(timing.banks, 0);
  stats_.bank_row_misses.assign(timing.banks, 0);
  stats_.bank_row_conflicts.assign(timing.banks, 0);
}

void MemoryController::push(MemRequest req, Cycle now) {
  req.arrived_at_mc = now;
  ++mutation_epoch_;
  if (req.kind == ReqKind::kRead) {
    LATDIV_ASSERT(!read_q_.full(), "read queue overflow");
    read_q_.push(req);
    ++stats_.reads_accepted;
  } else {
    LATDIV_ASSERT(!write_q_.full(), "write queue overflow");
    write_q_.push(req);
    ++stats_.writes_accepted;
    if (write_mode_) ++writes_arrived_in_drain_;
  }
  if (obs_ != nullptr) obs_->req_enqueued(req, now);
  policy_->on_push(*this, req, now);
}

void MemoryController::notify_group_complete(const WarpTag& tag, Cycle now) {
  ++mutation_epoch_;
  policy_->on_group_complete(*this, tag, now);
}

void MemoryController::deliver_coordination(const CoordMsg& msg, Cycle now) {
  ++mutation_epoch_;
  policy_->on_remote_selection(*this, msg, now);
}

bool MemoryController::bank_queue_has_space(BankId bank, std::size_t n) const {
  LATDIV_ASSERT(bank < bank_q_.size(), "bank out of range");
  return bank_q_[bank].size() + n <= cfg_.bank_queue_depth;
}

std::size_t MemoryController::bank_queue_size(BankId bank) const {
  LATDIV_ASSERT(bank < bank_q_.size(), "bank out of range");
  return bank_q_[bank].size();
}

const McBankQueue& MemoryController::bank_queue(BankId bank) const {
  LATDIV_ASSERT(bank < bank_q_.size(), "bank out of range");
  return bank_q_[bank];
}

RowId MemoryController::predicted_row(BankId bank) const {
  LATDIV_ASSERT(bank < bank_q_.size(), "bank out of range");
  const RowId tail = bank_tail_row_[bank];
  return tail != kNoRow ? tail : channel_.open_row(bank);
}

std::uint32_t MemoryController::tail_streak(BankId bank) const {
  LATDIV_ASSERT(bank < bank_q_.size(), "bank out of range");
  return bank_tail_streak_[bank];
}

void MemoryController::send_to_bank(MemRequest req, Cycle now) {
  const BankId bank = req.loc.bank;
  LATDIV_ASSERT(bank_queue_has_space(bank), "bank command queue overflow");
  LATDIV_ASSERT(req.arrived_at_mc != kNoCycle && req.arrived_at_mc <= now,
                "request never entered a request queue");
  if (req.loc.row == bank_tail_row_[bank]) {
    ++bank_tail_streak_[bank];
  } else {
    bank_tail_row_[bank] = req.loc.row;
    bank_tail_streak_[bank] = 1;
  }
  if (bank_q_[bank].empty()) ++nonempty_banks_;
  bank_q_[bank].push_back(req);
  ++cmdq_total_;
  ++mutation_epoch_;
  ++bank_epoch_[bank];
  if (obs_ != nullptr) obs_->req_to_bank(req, now);
}

void MemoryController::announce_selection(const WarpTag& tag,
                                          std::uint32_t score) {
  outbox_.push_back(CoordMsg{id_, tag, score});
}

void MemoryController::record_drain_stall(std::size_t groups,
                                          std::size_t small_groups) {
  stats_.drain_stalled_groups += groups;
  stats_.drain_stalled_small_groups += small_groups;
}

void MemoryController::update_drain_mode(Cycle now) {
  if (policy_->wants_interleaved_writes()) return;  // SBWAS-style
  if (!write_mode_) {
    if (write_q_.size() >= cfg_.wq_high_watermark) {
      write_mode_ = true;
      opportunistic_mode_ = false;
      ++stats_.drains_started;
      ++mutation_epoch_;
      wq_at_drain_start_ = write_q_.size();
      writes_arrived_in_drain_ = 0;
      if (obs_ != nullptr) obs_->drain_begin(id_, now);
      policy_->on_drain_start(*this, now);
    } else if (cfg_.opportunistic_drain && read_q_.empty() &&
               !write_q_.empty() && all_bank_queues_empty()) {
      write_mode_ = true;
      opportunistic_mode_ = true;
      ++mutation_epoch_;
      wq_at_drain_start_ = write_q_.size();
      writes_arrived_in_drain_ = 0;
      if (obs_ != nullptr) obs_->drain_begin(id_, now);
    }
  } else {
    if (write_q_.size() <= cfg_.wq_low_watermark) {
      write_mode_ = false;
      ++mutation_epoch_;
      if (obs_ != nullptr) obs_->drain_end(id_, now, drained_writes());
    } else if (opportunistic_mode_ && !read_q_.empty() &&
               write_q_.size() < cfg_.wq_high_watermark) {
      // A read arrived during an opportunistic drain: yield to it.
      write_mode_ = false;
      ++mutation_epoch_;
      if (obs_ != nullptr) obs_->drain_end(id_, now, drained_writes());
    }
  }
}

void MemoryController::complete_reads(Cycle now) {
  while (!inflight_reads_.empty() && inflight_reads_.top().done <= now) {
    Inflight done = inflight_reads_.top();
    inflight_reads_.pop();
    LATDIV_DCHECK(done.req.completed == kNoCycle,
                  "read completing a second time");
    LATDIV_DCHECK(done.done >= done.req.arrived_at_mc,
                  "read completed before it arrived");
    done.req.completed = done.done;
    stats_.read_service_cycles.add(
        static_cast<double>(done.done - done.req.arrived_at_mc));
    ++stats_.reads_served;
    if (obs_ != nullptr) obs_->req_data(done.req, done.done);
    if (on_read_done_) on_read_done_(done.req, now);
  }
}

void MemoryController::issue_one_command(Cycle now) {
  // Refresh has absolute priority once due: close banks, then REF.
  if (channel_.refresh_due(now)) {
    if (channel_.all_banks_closed()) {
      const DramCommand ref{DramCmd::kRefresh, 0, kNoRow};
      if (channel_.can_issue(ref, now)) {
        channel_.issue(ref, now);
        ++mutation_epoch_;
      }
      return;
    }
    const auto banks = static_cast<BankId>(channel_.timing().banks);
    for (BankId b = 0; b < banks; ++b) {
      const DramCommand pre{DramCmd::kPrecharge, b, kNoRow};
      if (channel_.open_row(b) != kNoRow && channel_.can_issue(pre, now)) {
        channel_.issue(pre, now);
        ++mutation_epoch_;
        ++bank_epoch_[b];
        return;
      }
    }
    return;  // waiting on tRAS/tRTP/tWR before banks can close
  }

  if (cmdq_total_ == 0) return;  // every bank queue is empty

  const DramTiming& t = channel_.timing();
  const std::uint32_t groups = t.banks / t.banks_per_group;
  for (std::uint32_t g_off = 0; g_off < groups; ++g_off) {
    const std::uint32_t g = (rr_group_ + g_off) % groups;
    for (std::uint32_t b_off = 0; b_off < t.banks_per_group; ++b_off) {
      const std::uint32_t in_group =
          (rr_bank_in_group_[g] + b_off) % t.banks_per_group;
      const auto bank = static_cast<BankId>(g * t.banks_per_group + in_group);
      if (bank_q_[bank].empty()) continue;
      MemRequest& head = bank_q_[bank].front();

      DramCommand cmd;
      const RowId open = channel_.open_row(bank);
      if (open == head.loc.row) {
        cmd = {head.kind == ReqKind::kRead ? DramCmd::kRead : DramCmd::kWrite,
               bank, head.loc.row};
      } else if (open != kNoRow) {
        cmd = {DramCmd::kPrecharge, bank, kNoRow};
      } else {
        cmd = {DramCmd::kActivate, bank, head.loc.row};
      }
      if (!channel_.can_issue(cmd, now)) continue;

      const Cycle done = channel_.issue(cmd, now);
      ++mutation_epoch_;
      ++bank_epoch_[bank];
      // The first command issued on behalf of a still-unclassified head
      // fixes its row-buffer outcome: straight CAS = the row was already
      // open (hit), ACT from precharged = miss, PRE of another row =
      // conflict.  Later commands for the same head (the ACT after a
      // conflict's PRE, the CAS after either) leave it untouched.
      if (head.row_outcome == RowOutcome::kNone) {
        switch (cmd.cmd) {
          case DramCmd::kRead:
          case DramCmd::kWrite:
            head.row_outcome = RowOutcome::kHit;
            ++stats_.bank_row_hits[bank];
            break;
          case DramCmd::kActivate:
            head.row_outcome = RowOutcome::kMiss;
            ++stats_.bank_row_misses[bank];
            break;
          case DramCmd::kPrecharge:
            head.row_outcome = RowOutcome::kConflict;
            ++stats_.bank_row_conflicts[bank];
            break;
          case DramCmd::kRefresh:
            break;  // never reaches here (refresh handled above)
        }
      }
      if (cmd.cmd == DramCmd::kRead || cmd.cmd == DramCmd::kWrite) {
        MemRequest req = bank_q_[bank].front();
        bank_q_[bank].pop_front();
        if (bank_q_[bank].empty()) --nonempty_banks_;
        LATDIV_DCHECK(req.loc.bank == bank && req.loc.row == cmd.row,
                      "CAS issued for a request other than the bank head");
        --cmdq_total_;
        req.cas_issued = now;
        if (obs_ != nullptr) obs_->req_cas(req, now);
        if (cmd.cmd == DramCmd::kRead) {
          stats_.read_queueing_cycles.add(
              static_cast<double>(now - req.arrived_at_mc));
          inflight_reads_.push(Inflight{done, req});
        } else {
          ++stats_.writes_served;
          if (obs_ != nullptr) obs_->req_write_retired(req, done);
        }
        // Advance the round-robin pointers past the bank that got data
        // service, so other bank groups / banks get the next slot.
        rr_bank_in_group_[g] = (in_group + 1) % t.banks_per_group;
        rr_group_ = (g + 1) % groups;
      }
      return;  // one command per cycle on the command bus
    }
  }
}

void MemoryController::tick(Cycle now) {
  complete_reads(now);
  update_drain_mode(now);
  if (policy_->wants_interleaved_writes()) {
    policy_->schedule_reads(*this, now);  // policy manages both queues
  } else if (write_mode_) {
    policy_->schedule_writes(*this, now);
  } else {
    policy_->schedule_reads(*this, now);
  }
  issue_one_command(now);
  channel_.on_cycle_end(now);
}

}  // namespace latdiv
