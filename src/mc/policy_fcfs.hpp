// First-Come First-Served transaction scheduling (paper §III-A).
//
// Strictly in arrival order: the head of the read queue moves to its bank's
// command queue when there is space; nothing else happens.  Head-of-line
// blocking when the target bank queue is full is intentional — it is why
// the paper calls naive FCFS "extremely poor" for bandwidth.
#pragma once

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

class FcfsPolicy final : public TransactionScheduler {
 public:
  [[nodiscard]] const char* name() const override { return "FCFS"; }

  void schedule_reads(MemoryController& mc, Cycle now) override {
    auto& rq = mc.read_queue();
    if (rq.empty()) return;
    const MemRequest& head = rq.front();
    if (!mc.bank_queue_has_space(head.loc.bank)) return;
    MemRequest req = rq.pop();
    mc.send_to_bank(req, now);
  }
};

}  // namespace latdiv
