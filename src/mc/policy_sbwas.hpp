// Single-Bank Warp-Aware Scheduling (Lakshminarayana et al., CAL 2011) —
// the paper's closest prior work, compared in §VI-C1.
//
// Per bank, SBWAS chooses between (a) the oldest row-hit request and
// (b) the request from the warp with the fewest requests remaining, using
// a potential function biased by a profiled parameter alpha:
//
//     potential(hit)   = (1 - alpha)
//     potential(short) = alpha / remaining_requests(warp)
//
// alpha is profiled offline per workload over {0.25, 0.5, 0.75} exactly as
// the paper describes.  Unlike WG, SBWAS has no notion of bank occupancy
// or cross-bank/cross-channel warp state, and it interleaves writes with
// reads instead of using drain bursts — both differences the paper calls
// out when explaining why SBWAS trails WG-W.
#pragma once

#include <map>

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

struct SbwasConfig {
  double alpha = 0.5;  ///< profiled per workload over {0.25, 0.5, 0.75}
  /// Write pressure point at which a write is scheduled unconditionally
  /// (interleaved-write model: no drain hysteresis, so the policy itself
  /// must keep the write queue from overflowing).
  std::size_t write_pressure = 48;
};

class SbwasPolicy final : public TransactionScheduler {
 public:
  explicit SbwasPolicy(const SbwasConfig& cfg = {}) : cfg_(cfg) {}

  [[nodiscard]] const char* name() const override { return "SBWAS"; }
  [[nodiscard]] bool wants_interleaved_writes() const override { return true; }

  void schedule_reads(MemoryController& mc, Cycle now) override;

 private:
  /// Count of read-queue requests per dynamic warp instruction, rebuilt
  /// each scheduling step (the queue holds at most 64 entries).
  void rebuild_remaining(MemoryController& mc);
  bool try_schedule_write(MemoryController& mc, Cycle now, bool force);

  SbwasConfig cfg_;
  // Ordered map by determinism policy (latdiv-lint unordered-iter):
  // rebuild_remaining only does point lookups/increments today, but the
  // table is tiny (<= 64 read-queue entries) and an ordered structure
  // keeps any future tie-break walk deterministic by construction.
  std::map<WarpInstrUid, std::uint32_t> remaining_;
};

}  // namespace latdiv
