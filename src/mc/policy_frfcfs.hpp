// First-Ready FCFS (Rixner et al., ISCA 2000).
//
// Each cycle: the oldest request that would be a row hit on its bank's
// predicted row is scheduled; if no schedulable hit exists, the oldest
// schedulable request is.  This is the classic bandwidth-greedy policy the
// GMC baseline refines.
#pragma once

#include "mc/controller.hpp"
#include "mc/policy.hpp"

namespace latdiv {

class FrFcfsPolicy final : public TransactionScheduler {
 public:
  [[nodiscard]] const char* name() const override { return "FR-FCFS"; }

  void schedule_reads(MemoryController& mc, Cycle now) override {
    auto& rq = mc.read_queue();
    if (rq.empty()) return;
    auto best = rq.end();
    for (auto it = rq.begin(); it != rq.end(); ++it) {
      // Classic FR-FCFS re-evaluates row state at issue time; bounding
      // the per-bank backlog keeps the decision near service time.
      if (mc.bank_queue_size(it->loc.bank) >= 2) continue;
      if (mc.predicted_row(it->loc.bank) == it->loc.row) {
        best = it;  // oldest row-hit wins outright
        break;
      }
      if (best == rq.end()) best = it;  // remember oldest schedulable
    }
    if (best == rq.end()) return;
    MemRequest req = *best;
    rq.erase(best);
    mc.send_to_bank(req, now);
  }
};

}  // namespace latdiv
