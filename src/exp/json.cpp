#include "exp/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace latdiv::exp {

namespace {

[[noreturn]] void fail(const char* what, std::size_t offset) {
  throw std::runtime_error("json: " + std::string(what) + " at byte " +
                           std::to_string(offset));
}

/// Recursive-descent parser over a string_view; tracks its offset for
/// error messages.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters", pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos_);
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal", pos_);
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal", pos_);
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal", pos_);
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(obj));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_codepoint(out); break;
        default: fail("bad escape", pos_ - 1);
      }
    }
  }

  void append_codepoint(std::string& out) {
    const std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDFFF) {
      // The artifacts this parser reads are ASCII; surrogate pairs are
      // out of scope and rejected rather than silently mangled.
      fail("surrogate escapes unsupported", pos_);
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape", pos_);
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("bad hex digit", pos_ - 1);
    }
    return cp;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value", start);
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number", start);
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return num_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return str_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return arr_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("an object");
  obj_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push_back(JsonValue value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("an array");
  arr_.push_back(std::move(value));
}

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Exact integers (the counter metrics) print without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  // Shortest form that round-trips: try increasing precision until
  // strtod() returns the identical bits.  Deterministic for given bits.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonValue::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += json_number(num_); return;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      return;
    case Kind::kArray: {
      if (arr_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad_in;
        arr_[i].dump_to(out, indent + 1);
        out += i + 1 < arr_.size() ? ",\n" : "\n";
      }
      out += pad;
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (obj_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad_in;
        out += '"';
        out += json_escape(obj_[i].first);
        out += "\": ";
        obj_[i].second.dump_to(out, indent + 1);
        out += i + 1 < obj_.size() ? ",\n" : "\n";
      }
      out += pad;
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

}  // namespace latdiv::exp
