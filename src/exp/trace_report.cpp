#include "exp/trace_report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace latdiv::exp {

namespace {

/// printf into the report (all format strings below are literal).
template <class... Args>
void line(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof buf, fmt, args...);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof buf - 1));
}

/// Integer view of a numeric member (0 when absent / non-numeric —
/// callers validate first where it matters).
std::uint64_t num_u64(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) return 0;
  return static_cast<std::uint64_t>(v->as_number());
}

std::int64_t num_i64(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) return 0;
  return static_cast<std::int64_t>(v->as_number());
}

const std::string* str_member(const JsonValue& ev, const char* key) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kString) return nullptr;
  return &v->as_string();
}

struct LoadSlice {
  std::uint64_t dur = 0;
  std::uint64_t ts = 0;
  std::uint64_t pid = 0;
  std::uint64_t tid = 0;
  std::uint64_t reqs = 0;
  std::uint64_t first = 0;
  std::uint64_t last = 0;
  std::uint64_t gap = 0;
};

struct BankCmds {
  std::uint64_t act = 0;
  std::uint64_t pre = 0;
};

}  // namespace

std::string trace_summary(const JsonValue& doc, const std::string& label,
                          std::size_t top_n) {
  const JsonValue* events =
      doc.is_object() ? doc.find("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error("missing 'traceEvents' array member");
  }

  std::vector<LoadSlice> loads;
  // (pid, tid) -> track name from metadata events, emitted before first use.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> tracks;
  std::map<std::pair<std::uint64_t, std::uint64_t>, BankCmds> banks;
  std::uint64_t refreshes = 0;
  std::uint64_t drains = 0, drain_cycles = 0, drain_writes = 0;
  std::uint64_t enq = 0, cas = 0, data = 0, wr = 0, samples = 0;
  std::uint64_t end_ts = 0;

  for (const JsonValue& ev : events->as_array()) {
    if (!ev.is_object()) continue;
    const std::string* name = str_member(ev, "name");
    const std::string* ph = str_member(ev, "ph");
    if (name == nullptr || ph == nullptr || ph->empty()) continue;
    const char phase = (*ph)[0];
    const std::uint64_t pid = num_u64(ev, "pid");
    const std::uint64_t tid = num_u64(ev, "tid");
    const std::uint64_t ts = num_u64(ev, "ts");
    end_ts = std::max(end_ts, ts + num_u64(ev, "dur"));

    if (phase == 'M') {
      if (*name == "thread_name") {
        if (const JsonValue* a = ev.find("args")) {
          if (const std::string* n = str_member(*a, "name")) {
            tracks[{pid, tid}] = *n;
          }
        }
      }
      continue;
    }
    if (phase == 'X' && *name == "load") {
      LoadSlice s;
      s.dur = num_u64(ev, "dur");
      s.ts = ts;
      s.pid = pid;
      s.tid = tid;
      if (const JsonValue* a = ev.find("args")) {
        s.reqs = num_u64(*a, "reqs");
        s.first = num_u64(*a, "first");
        s.last = num_u64(*a, "last");
        s.gap = num_u64(*a, "gap");
      }
      loads.push_back(s);
    } else if (phase == 'X' && *name == "drain") {
      ++drains;
      drain_cycles += num_u64(ev, "dur");
      if (const JsonValue* a = ev.find("args")) {
        drain_writes += num_u64(*a, "writes");
      }
    } else if (*name == "ACT") {
      ++banks[{pid, tid}].act;
    } else if (*name == "PRE") {
      ++banks[{pid, tid}].pre;
    } else if (*name == "REF") {
      ++refreshes;
    } else if (*name == "enq") {
      ++enq;
    } else if (*name == "cas") {
      ++cas;
    } else if (*name == "data") {
      ++data;
    } else if (*name == "wr") {
      ++wr;
    } else if (phase == 'C') {
      ++samples;
    }
  }

  std::string out;
  line(out, "trace: %s\n", label.c_str());
  line(out, "  span       : %" PRIu64 " cycles, %zu events\n", end_ts,
       events->as_array().size());
  line(out,
       "  requests   : %" PRIu64 " enqueued, %" PRIu64 " CAS, %" PRIu64
       " reads returned, %" PRIu64 " writes retired\n",
       enq, cas, data, wr);
  line(out,
       "  drains     : %" PRIu64 " episodes, %" PRIu64 " cycles, %" PRIu64
       " writes flushed\n",
       drains, drain_cycles, drain_writes);
  line(out, "  counters   : %" PRIu64 " sampled values\n", samples);

  // Top-N slowest warp loads (issue -> wakeup duration).
  std::sort(loads.begin(), loads.end(),
            [](const LoadSlice& a, const LoadSlice& b) {
              if (a.dur != b.dur) return a.dur > b.dur;
              if (a.ts != b.ts) return a.ts < b.ts;
              return a.tid < b.tid;
            });
  const std::size_t n = std::min(top_n, loads.size());
  line(out, "  slowest warp loads (%zu of %zu):\n", n, loads.size());
  if (n == 0) out += "    (none)\n";
  for (std::size_t i = 0; i < n; ++i) {
    const LoadSlice& s = loads[i];
    const auto it = tracks.find({s.pid, s.tid});
    line(out,
         "    %-10s issue@%-10" PRIu64 " total %-8" PRIu64 " first %-8" PRIu64
         " gap %-8" PRIu64 " reqs %" PRIu64 "\n",
         it != tracks.end() ? it->second.c_str() : "?", s.ts, s.dur, s.first,
         s.gap, s.reqs);
  }

  // Per-bank DRAM command breakdown (channel = pid - kPidMcBase).
  line(out, "  per-bank ACT/PRE (%" PRIu64 " REF):\n", refreshes);
  if (banks.empty()) out += "    (none)\n";
  for (const auto& [key, cmds] : banks) {
    const std::uint64_t ch = key.first >= latdiv::obs::kPidMcBase
                                 ? key.first - latdiv::obs::kPidMcBase
                                 : key.first;
    line(out,
         "    ch%" PRIu64 " bank%-3" PRIu64 " ACT %-8" PRIu64 " PRE %" PRIu64
         "\n",
         ch, key.second, cmds.act, cmds.pre);
  }
  return out;
}

std::string attrib_summary(const JsonValue& doc, const std::string& label) {
  const JsonValue* a = doc.is_object() ? doc.find("attrib") : nullptr;
  if (a == nullptr || !a->is_object()) {
    throw std::runtime_error("missing 'attrib' object member");
  }

  const std::uint64_t total = num_u64(*a, "total_cycles");
  std::string out;
  line(out, "attrib: %s\n", label.c_str());
  line(out,
       "  loads      : %" PRIu64 " attributed, %" PRIu64
       " mismatched, %" PRIu64 " unmatched, %" PRIu64 " dropped\n",
       num_u64(*a, "loads"), num_u64(*a, "mismatches"),
       num_u64(*a, "unmatched"), num_u64(*a, "dropped"));
  line(out,
       "  audit      : residual %" PRId64 " cycles, %" PRIu64
       " drain clamps, %" PRIu64 " in flight at end\n",
       num_i64(*a, "residual"), num_u64(*a, "drain_clamps"),
       num_u64(*a, "inflight_at_end"));
  line(out, "  total      : %" PRIu64 " slowest-lane cycles\n", total);

  out += "  cause         cycles       share     p50       p99\n";
  const JsonValue* causes = a->find("causes");
  bool any_cause = false;
  if (causes != nullptr && causes->is_object()) {
    for (const auto& [name, row] : causes->as_object()) {
      if (!row.is_object()) continue;
      any_cause = true;
      const std::uint64_t sum = num_u64(row, "sum");
      const double share =
          total > 0 ? 100.0 * static_cast<double>(sum) /
                          static_cast<double>(total)
                    : 0.0;
      line(out,
           "    %-13s %-12" PRIu64 " %5.1f%%   %-9" PRIu64 " %" PRIu64 "\n",
           name.c_str(), sum, share, num_u64(row, "p50"),
           num_u64(row, "p99"));
    }
  }
  if (!any_cause) out += "    (none)\n";

  out += "  blame      :";
  const JsonValue* blame = a->find("blame");
  bool any_blame = false;
  if (blame != nullptr && blame->is_object()) {
    for (const auto& [name, v] : blame->as_object()) {
      if (v.kind() != JsonValue::Kind::kNumber) continue;
      line(out, "%s %s %" PRIu64, any_blame ? "," : "", name.c_str(),
           static_cast<std::uint64_t>(v.as_number()));
      any_blame = true;
    }
  }
  out += any_blame ? "\n" : " (none)\n";
  return out;
}

}  // namespace latdiv::exp
