// Named figure manifests.
//
// A manifest binds a paper figure/table to a concrete sweep: its grid
// (workloads x schedulers/variants x seeds) plus the presentation spec
// (title, column order, baseline for the normalized view).  The four
// re-plumbed bench binaries and the `latdiv-sweep` CLI all resolve their
// experiments here, so there is exactly one definition of each figure's
// configuration in the repo.
#pragma once

#include <string>
#include <vector>

#include "exp/point.hpp"
#include "exp/reporter.hpp"

namespace latdiv::exp {

/// Sweep-wide options (the CLI surface shared by latdiv-sweep and the
/// bench binaries).
struct SweepOptions {
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  std::uint64_t seed = 1;
  std::uint32_t seeds = 1;
  bool quick = false;   ///< quarter-length runs for smoke testing
  std::string filter;   ///< substring filter on point ids
  unsigned jobs = 1;    ///< executor threads

  /// Run-length knobs after applying --quick.
  [[nodiscard]] RunShape shape() const;
};

struct Manifest {
  SweepSpec spec;
  ExpGrid grid;
};

/// Every figure manifest this build knows, in presentation order.
[[nodiscard]] const std::vector<std::string>& manifest_names();

/// One-line description for `latdiv-sweep list`.
[[nodiscard]] std::string manifest_summary(const std::string& name);

/// Build the named manifest with opts applied (including the filter).
/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] Manifest make_manifest(const std::string& name,
                                     const SweepOptions& opts);

}  // namespace latdiv::exp
