// Parallel sweep executor.
//
// Runs every point of an ExpGrid on a pool of `jobs` threads.  Each point
// constructs its own Simulator (the simulator has no global mutable
// state — every stochastic choice flows through the per-instance Rng
// seeded from the point), so points are embarrassingly parallel and the
// result of a sweep is bit-identical regardless of thread count or
// completion order:
//
//   * results are stored at the point's grid index, never appended in
//     completion order;
//   * per-point seeding is fixed at grid-build time (trial t of a cell
//     runs seed base+t), not derived from any shared RNG;
//   * wall-time measurements are captured per point but excluded from
//     deterministic artifacts (reporter opt-in).
//
// Failure isolation: a point whose config hook, analytic function, or
// simulation throws is recorded as failed with the exception message;
// sibling points are unaffected.  (LATDIV_ASSERT violations still abort
// the process by design — those are simulator bugs, not experiment
// errors.)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/point.hpp"
#include "sim/metrics.hpp"

namespace latdiv::exp {

struct PointResult {
  std::string id;
  std::string row;
  std::string col;
  std::string workload;
  std::string scheduler;  ///< display name ("" for analytic points)
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;    ///< exception message when !ok
  double wall_ms = 0.0; ///< measurement only; not part of the artifact bytes
  MetricMap metrics;    ///< empty when !ok
};

/// Called after each point completes, under the executor's lock, with a
/// strictly increasing `done` count (1..total).  Safe to print from.
using ProgressFn =
    std::function<void(std::size_t done, std::size_t total,
                       const PointResult& result)>;

/// Flatten a simulation result into the artifact metric namespace.  This
/// is the single place that defines which RunResult fields reporters
/// emit — examples/run_json and every sweep artifact share it.
[[nodiscard]] MetricMap metrics_from(const RunResult& r);

/// Execute one point in isolation (exposed for tests).
[[nodiscard]] PointResult execute_point(const ExpPoint& p);

/// Run the whole grid on `jobs` threads (clamped to >= 1); results are
/// returned in grid order.
[[nodiscard]] std::vector<PointResult> run_grid(
    const ExpGrid& grid, unsigned jobs, const ProgressFn& progress = {});

}  // namespace latdiv::exp
