// Structured sweep artifacts.
//
// An Artifact is the machine-readable output of one sweep: the run shape,
// every per-point result in grid order, per-cell aggregates (mean/stddev
// over seeds, speedup vs. the manifest's baseline column — the paper's
// normalized presentation), and a per-column geomean summary.  One schema
// ("latdiv-sweep/1") serves every figure, the `latdiv-sweep` CLI, the
// golden-regression checker and examples/run_json.
//
// Serialisation is byte-deterministic (see exp/json.hpp): identical
// simulation results produce identical artifact files regardless of
// --jobs.  Wall-clock timings are only emitted when explicitly requested
// (include_timing), because they are the one non-deterministic field.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/point.hpp"

namespace latdiv::exp {

inline constexpr const char* kSchemaVersion = "latdiv-sweep/1";

/// Presentation metadata of one sweep (a manifest minus its grid).
struct SweepSpec {
  std::string name;            ///< manifest name, e.g. "fig8"
  std::string title;           ///< banner line
  std::string reference;       ///< the paper's headline claim
  std::string primary_metric = "ipc";  ///< table cell + speedup metric
  std::string baseline_col;    ///< speedup base column ("" = absolute)
  std::vector<std::string> col_order;  ///< explicit column order (optional)
};

struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;  ///< population stddev over the cell's ok points
};

struct CellAggregate {
  std::string row;
  std::string col;
  std::uint32_t n = 0;       ///< ok points aggregated
  std::uint32_t failed = 0;  ///< failed points in this cell
  /// speedup of the primary metric vs. the baseline column of the same
  /// row (0.0 when there is no baseline, or either mean is unusable).
  double speedup = 0.0;
  std::map<std::string, MeanStd> metrics;
};

struct Artifact {
  std::string schema = kSchemaVersion;
  SweepSpec spec;
  RunShape shape;
  std::vector<PointResult> points;  ///< grid order
  std::vector<CellAggregate> cells; ///< first-appearance order
  /// Per column: geomean over rows of the speedup (baseline set) or of
  /// the primary metric's mean (no baseline).  Baseline column omitted.
  std::map<std::string, double> col_geomean;
};

/// Aggregate point results (grid order) into a full artifact.
[[nodiscard]] Artifact make_artifact(const SweepSpec& spec,
                                     const RunShape& shape,
                                     std::vector<PointResult> points);

/// Serialise; `include_timing` adds per-point wall_ms (non-deterministic).
[[nodiscard]] std::string to_json(const Artifact& a,
                                  bool include_timing = false);

/// Parse an artifact (throws std::runtime_error on malformed input or a
/// schema version this build does not understand).
[[nodiscard]] Artifact artifact_from_json(const std::string& text);

/// Long-format CSV: one row per (point, metric) and per (cell, metric),
/// discriminated by the leading "kind" column.
[[nodiscard]] std::string to_csv(const Artifact& a);

/// Render the figure table (baseline column absolute, others normalized,
/// geomean footer) the way the retired per-figure mains printed it.
void print_table(const Artifact& a, std::FILE* out = stdout);

/// Count of failed points (nonzero => the sweep's exit code should be 1).
[[nodiscard]] std::size_t failed_points(const Artifact& a);

}  // namespace latdiv::exp
