// Experiment job model.
//
// An ExpPoint is one independent unit of work in a sweep: either a full
// Simulator run (workload x scheduler x seed, plus an optional SimConfig
// override hook for ablation knobs) or an analytic evaluation (Table I's
// MERB values need no simulation).  An ExpGrid is an ordered list of
// points; builders expand the cross-products the paper's figures are made
// of.  Grid order is the canonical order: executors may complete points
// in any order on any number of threads, but every artifact is emitted in
// grid order, which is what makes sweep output byte-deterministic.
//
// Presentation metadata rides on each point: `row` and `col` name the
// cell of the figure the point belongs to.  All seeds of one (row, col)
// pair collapse into a single reported cell (mean/stddev).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ckpt/sampler.hpp"
#include "sim/config.hpp"
#include "workload/profile.hpp"

namespace latdiv::exp {

/// Named scalar results of one point, sorted by key (deterministic).
using MetricMap = std::map<std::string, double>;

/// Adjusts the SimConfig before Simulator construction (ablation knobs).
/// Must be safe to invoke concurrently from multiple executor threads.
using ConfigHook = std::function<void(SimConfig&)>;

/// Computes a point's metrics without a simulation.  Throwing marks the
/// point failed (the same isolation contract as a simulated point).
using AnalyticFn = std::function<MetricMap()>;

struct ExpPoint {
  /// How a simulated point is executed.  kDetailed is the default full
  /// simulation; kSampled runs the SMARTS-style interval schedule in
  /// `sampling` (src/ckpt/sampler.hpp) and reports estimate metrics
  /// under the `sampled.` prefix alongside ipc / row_hit_rate /
  /// bandwidth_utilization.
  enum class Runner : std::uint8_t { kDetailed, kSampled };

  std::string id;   ///< unique within a grid; stable across runs
  std::string row;  ///< figure row (usually the workload)
  std::string col;  ///< figure column (scheduler or ablation variant)

  WorkloadProfile workload;  ///< ignored for analytic points
  SchedulerKind scheduler = SchedulerKind::kGmc;
  std::uint64_t seed = 1;
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  ConfigHook hook;      ///< optional SimConfig override
  AnalyticFn analytic;  ///< when set, evaluated instead of a Simulator

  Runner runner = Runner::kDetailed;
  ckpt::SamplingConfig sampling;  ///< schedule when runner == kSampled
  /// Restore this snapshot before running ("" = start fresh).  The file
  /// must have been taken under a fingerprint-identical configuration.
  std::string load_snapshot_path;
  /// Snapshot the final state after the last simulated cycle, before
  /// metric aggregation ("" = no snapshot).  Detailed runner only.
  std::string save_snapshot_path;
};

/// Run-length knobs shared by every point a grid builder expands.
struct RunShape {
  Cycle cycles = 50'000;
  Cycle warmup = 5'000;
  std::uint64_t base_seed = 1;  ///< seed of trial 0; trial t uses base + t
  std::uint32_t seeds = 1;      ///< independent trials per (row, col) cell
};

class ExpGrid {
 public:
  /// Append one point; its id must be unique within the grid.
  ExpGrid& add(ExpPoint p);

  /// One figure column of simulated points: every workload x every seed,
  /// all under `scheduler` (+ optional hook).  Point ids are
  /// "<row>/<col>/s<seed>".
  ExpGrid& add_column(const std::string& col,
                      const std::vector<WorkloadProfile>& workloads,
                      SchedulerKind scheduler, const RunShape& shape,
                      const ConfigHook& hook = {});

  /// Cross-product workloads x schedulers x seeds; each scheduler's
  /// display name becomes its column.
  ExpGrid& add_matrix(const std::vector<WorkloadProfile>& workloads,
                      const std::vector<SchedulerKind>& schedulers,
                      const RunShape& shape, const ConfigHook& hook = {});

  /// Keep only points whose id contains `substr` (empty keeps all).
  ExpGrid& keep_matching(const std::string& substr);

  [[nodiscard]] const std::vector<ExpPoint>& points() const {
    return points_;
  }
  /// Mutable access for post-build adjustments (the sweep driver wraps
  /// point hooks to attach per-point observability outputs).
  [[nodiscard]] std::vector<ExpPoint>& points_mut() { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

 private:
  std::vector<ExpPoint> points_;
};

}  // namespace latdiv::exp
