#include "exp/manifest.hpp"

#include <stdexcept>

#include "core/merb.hpp"
#include "dram/params.hpp"
#include "scenario/scenario.hpp"

namespace latdiv::exp {

RunShape SweepOptions::shape() const {
  RunShape s;
  s.cycles = quick ? cycles / 4 : cycles;
  s.warmup = quick ? warmup / 4 : warmup;
  if (s.warmup >= s.cycles) s.warmup = s.cycles / 10;
  s.base_seed = seed;
  s.seeds = seeds;
  return s;
}

namespace {

std::vector<WorkloadProfile> profiles(
    const std::vector<std::string>& names) {
  std::vector<WorkloadProfile> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(profile_by_name(n));
  return out;
}

/// Fig. 8 — the paper's headline IPC ladder, normalized to GMC.
Manifest fig8(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "fig8";
  m.spec.title = "Fig. 8 — Performance normalized to the GMC baseline";
  m.spec.reference =
      "WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (geomean, IPC)";
  m.spec.primary_metric = "ipc";
  m.spec.baseline_col = "GMC";
  m.spec.col_order = {"GMC", "WG", "WG-M", "WG-Bw", "WG-W"};
  m.grid.add_matrix(irregular_suite(),
                    {SchedulerKind::kGmc, SchedulerKind::kWg,
                     SchedulerKind::kWgM, SchedulerKind::kWgBw,
                     SchedulerKind::kWgW},
                    opts.shape());
  return m;
}

/// Table I — boot-time MERB values for GDDR5 (analytic, no simulation).
/// The MERB column *validates* against the paper by throwing on a
/// mismatch, so a regression shows up as a failed point.
Manifest tab1(const SweepOptions&) {
  Manifest m;
  m.spec.name = "tab1";
  m.spec.title = "Table I — MERB table for GDDR5";
  m.spec.reference = "banks {1,2,3,4,5,6-16} -> MERB {31,20,10,7,5,5}";
  m.spec.primary_metric = "merb";
  m.spec.col_order = {"MERB", "paper"};
  static constexpr std::uint32_t kPaper[] = {31, 20, 10, 7, 5};
  for (std::uint32_t b = 1; b <= 16; ++b) {
    const std::uint32_t expect = b <= 5 ? kPaper[b - 1] : 5;
    const std::string row = "banks=" + std::to_string(b);
    ExpPoint computed;
    computed.id = row + "/MERB";
    computed.row = row;
    computed.col = "MERB";
    computed.analytic = [b, expect]() -> MetricMap {
      const MerbTable merb(DramTiming::from(DramParams{}));
      const std::uint32_t got = merb.value(b);
      if (got != expect) {
        throw std::runtime_error(
            "MERB mismatch at banks=" + std::to_string(b) + ": got " +
            std::to_string(got) + ", paper says " + std::to_string(expect));
      }
      return {{"merb", static_cast<double>(got)}};
    };
    m.grid.add(std::move(computed));

    ExpPoint paper;
    paper.id = row + "/paper";
    paper.row = row;
    paper.col = "paper";
    paper.analytic = [expect]() -> MetricMap {
      return {{"merb", static_cast<double>(expect)}};
    };
    m.grid.add(std::move(paper));
  }
  return m;
}

/// Ablation — WG-M coordination-network delivery latency (§IV-C).
Manifest coord(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "coord";
  m.spec.title =
      "Ablation — WG-M coordination latency (paper: ~2 flits on 16-bit "
      "links; we default to 4 cycles)";
  m.spec.reference =
      "stale remote scores reduce the laggard boosts that land in time";
  m.spec.primary_metric = "ipc";
  // The multi-controller apps are where coordination can matter.
  const auto workloads = profiles({"cfd", "sp", "sssp", "spmv"});
  for (const Cycle lat : {Cycle{1}, Cycle{4}, Cycle{16}, Cycle{64},
                          Cycle{256}}) {
    m.spec.col_order.push_back("lat=" + std::to_string(lat));
    m.grid.add_column(
        "lat=" + std::to_string(lat), workloads, SchedulerKind::kWgM,
        opts.shape(),
        [lat](SimConfig& c) { c.coordination_latency = lat; });
  }
  m.spec.col_order.emplace_back("WG");
  m.grid.add_column("WG", workloads, SchedulerKind::kWg, opts.shape());
  return m;
}

/// Ablation — GDDR5 vs DDR3-1600 device model (§II-B).  Cells report
/// instructions per microsecond (IPC is per core cycle and the core
/// clock derives from the device clock, so raw IPC is not comparable
/// across devices).
Manifest device(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "device";
  m.spec.title = "Ablation — GDDR5 vs DDR3-1600 device model";
  m.spec.reference =
      "§II-B: bank groups + low tFAW make GDDR5 suit frequent activates; "
      "warp-aware gains persist on both devices";
  m.spec.primary_metric = "instr_per_usec";
  m.spec.col_order = {"GMC@GDDR5", "WG-W@GDDR5", "GMC@DDR3", "WG-W@DDR3"};
  const auto workloads = profiles({"bfs", "nw", "sssp", "spmv"});
  const ConfigHook ddr3 = [](SimConfig& c) { c.dram = ddr3_1600_params(); };
  m.grid.add_column("GMC@GDDR5", workloads, SchedulerKind::kGmc,
                    opts.shape());
  m.grid.add_column("WG-W@GDDR5", workloads, SchedulerKind::kWgW,
                    opts.shape());
  m.grid.add_column("GMC@DDR3", workloads, SchedulerKind::kGmc, opts.shape(),
                    ddr3);
  m.grid.add_column("WG-W@DDR3", workloads, SchedulerKind::kWgW,
                    opts.shape(), ddr3);
  return m;
}

/// Scenario microkernel library x the full scheduler policy ladder.
/// Rows are the six scenario kernels (src/scenario), which exercise
/// access structures the statistical profiles cannot express; columns
/// are all nine policies, normalized to GMC.
Manifest kernels(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "kernels";
  m.spec.title =
      "Scenario microkernels — all scheduler policies, normalized to GMC";
  m.spec.reference =
      "second workload frontend (ROADMAP item 2): adversarial and "
      "structured kernels beyond the Table III statistics";
  m.spec.primary_metric = "ipc";
  m.spec.baseline_col = "GMC";
  static constexpr SchedulerKind kPolicies[] = {
      SchedulerKind::kFcfs,  SchedulerKind::kFrFcfs, SchedulerKind::kGmc,
      SchedulerKind::kWafcfs, SchedulerKind::kSbwas, SchedulerKind::kWg,
      SchedulerKind::kWgM,   SchedulerKind::kWgBw,   SchedulerKind::kWgW};
  for (const SchedulerKind kind : kPolicies) {
    m.spec.col_order.emplace_back(to_string(kind));
  }
  const RunShape shape = opts.shape();
  for (const scenario::ScenarioSpec& spec : scenario::scenario_catalog()) {
    for (const SchedulerKind kind : kPolicies) {
      for (std::uint32_t t = 0; t < shape.seeds; ++t) {
        ExpPoint p;
        p.row = spec.name;
        p.col = to_string(kind);
        p.seed = shape.base_seed + t;
        p.id = p.row + "/" + p.col + "/s" + std::to_string(p.seed);
        p.workload.name = spec.name;  // result label only
        p.scheduler = kind;
        p.cycles = shape.cycles;
        p.warmup = shape.warmup;
        // The catalog has static storage duration, so capturing the spec
        // by pointer is safe across executor threads.
        const scenario::ScenarioSpec* s = &spec;
        p.hook = [s](SimConfig& c) {
          c.instr_source = [s](std::uint32_t sms, std::uint32_t warps,
                               std::uint64_t seed) {
            return scenario::make_scenario(*s, sms, warps, seed);
          };
        };
        m.grid.add(std::move(p));
      }
    }
  }
  return m;
}

}  // namespace

const std::vector<std::string>& manifest_names() {
  static const std::vector<std::string> kNames = {"fig8", "tab1", "coord",
                                                  "device", "kernels"};
  return kNames;
}

std::string manifest_summary(const std::string& name) {
  if (name == "fig8") {
    return "IPC of the warp-aware scheduler ladder vs GMC, 11 irregular "
           "workloads";
  }
  if (name == "tab1") return "boot-time MERB table vs the paper (analytic)";
  if (name == "coord") {
    return "WG-M coordination-latency sweep on the multi-controller apps";
  }
  if (name == "device") {
    return "GDDR5 vs DDR3-1600 throughput under GMC and WG-W";
  }
  if (name == "kernels") {
    return "scenario microkernel library x all 9 scheduler policies";
  }
  return "";
}

Manifest make_manifest(const std::string& name, const SweepOptions& opts) {
  Manifest m;
  if (name == "fig8") m = fig8(opts);
  else if (name == "tab1") m = tab1(opts);
  else if (name == "coord") m = coord(opts);
  else if (name == "device") m = device(opts);
  else if (name == "kernels") m = kernels(opts);
  else throw std::invalid_argument("unknown manifest '" + name + "'");
  m.grid.keep_matching(opts.filter);
  return m;
}

}  // namespace latdiv::exp
