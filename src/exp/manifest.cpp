#include "exp/manifest.hpp"

#include <stdexcept>

#include "core/merb.hpp"
#include "dram/params.hpp"

namespace latdiv::exp {

RunShape SweepOptions::shape() const {
  RunShape s;
  s.cycles = quick ? cycles / 4 : cycles;
  s.warmup = quick ? warmup / 4 : warmup;
  if (s.warmup >= s.cycles) s.warmup = s.cycles / 10;
  s.base_seed = seed;
  s.seeds = seeds;
  return s;
}

namespace {

std::vector<WorkloadProfile> profiles(
    const std::vector<std::string>& names) {
  std::vector<WorkloadProfile> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(profile_by_name(n));
  return out;
}

/// Fig. 8 — the paper's headline IPC ladder, normalized to GMC.
Manifest fig8(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "fig8";
  m.spec.title = "Fig. 8 — Performance normalized to the GMC baseline";
  m.spec.reference =
      "WG +3.4%, WG-M +6.2%, WG-Bw +8.4%, WG-W +10.1% (geomean, IPC)";
  m.spec.primary_metric = "ipc";
  m.spec.baseline_col = "GMC";
  m.spec.col_order = {"GMC", "WG", "WG-M", "WG-Bw", "WG-W"};
  m.grid.add_matrix(irregular_suite(),
                    {SchedulerKind::kGmc, SchedulerKind::kWg,
                     SchedulerKind::kWgM, SchedulerKind::kWgBw,
                     SchedulerKind::kWgW},
                    opts.shape());
  return m;
}

/// Table I — boot-time MERB values for GDDR5 (analytic, no simulation).
/// The MERB column *validates* against the paper by throwing on a
/// mismatch, so a regression shows up as a failed point.
Manifest tab1(const SweepOptions&) {
  Manifest m;
  m.spec.name = "tab1";
  m.spec.title = "Table I — MERB table for GDDR5";
  m.spec.reference = "banks {1,2,3,4,5,6-16} -> MERB {31,20,10,7,5,5}";
  m.spec.primary_metric = "merb";
  m.spec.col_order = {"MERB", "paper"};
  static constexpr std::uint32_t kPaper[] = {31, 20, 10, 7, 5};
  for (std::uint32_t b = 1; b <= 16; ++b) {
    const std::uint32_t expect = b <= 5 ? kPaper[b - 1] : 5;
    const std::string row = "banks=" + std::to_string(b);
    ExpPoint computed;
    computed.id = row + "/MERB";
    computed.row = row;
    computed.col = "MERB";
    computed.analytic = [b, expect]() -> MetricMap {
      const MerbTable merb(DramTiming::from(DramParams{}));
      const std::uint32_t got = merb.value(b);
      if (got != expect) {
        throw std::runtime_error(
            "MERB mismatch at banks=" + std::to_string(b) + ": got " +
            std::to_string(got) + ", paper says " + std::to_string(expect));
      }
      return {{"merb", static_cast<double>(got)}};
    };
    m.grid.add(std::move(computed));

    ExpPoint paper;
    paper.id = row + "/paper";
    paper.row = row;
    paper.col = "paper";
    paper.analytic = [expect]() -> MetricMap {
      return {{"merb", static_cast<double>(expect)}};
    };
    m.grid.add(std::move(paper));
  }
  return m;
}

/// Ablation — WG-M coordination-network delivery latency (§IV-C).
Manifest coord(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "coord";
  m.spec.title =
      "Ablation — WG-M coordination latency (paper: ~2 flits on 16-bit "
      "links; we default to 4 cycles)";
  m.spec.reference =
      "stale remote scores reduce the laggard boosts that land in time";
  m.spec.primary_metric = "ipc";
  // The multi-controller apps are where coordination can matter.
  const auto workloads = profiles({"cfd", "sp", "sssp", "spmv"});
  for (const Cycle lat : {Cycle{1}, Cycle{4}, Cycle{16}, Cycle{64},
                          Cycle{256}}) {
    m.spec.col_order.push_back("lat=" + std::to_string(lat));
    m.grid.add_column(
        "lat=" + std::to_string(lat), workloads, SchedulerKind::kWgM,
        opts.shape(),
        [lat](SimConfig& c) { c.coordination_latency = lat; });
  }
  m.spec.col_order.emplace_back("WG");
  m.grid.add_column("WG", workloads, SchedulerKind::kWg, opts.shape());
  return m;
}

/// Ablation — GDDR5 vs DDR3-1600 device model (§II-B).  Cells report
/// instructions per microsecond (IPC is per core cycle and the core
/// clock derives from the device clock, so raw IPC is not comparable
/// across devices).
Manifest device(const SweepOptions& opts) {
  Manifest m;
  m.spec.name = "device";
  m.spec.title = "Ablation — GDDR5 vs DDR3-1600 device model";
  m.spec.reference =
      "§II-B: bank groups + low tFAW make GDDR5 suit frequent activates; "
      "warp-aware gains persist on both devices";
  m.spec.primary_metric = "instr_per_usec";
  m.spec.col_order = {"GMC@GDDR5", "WG-W@GDDR5", "GMC@DDR3", "WG-W@DDR3"};
  const auto workloads = profiles({"bfs", "nw", "sssp", "spmv"});
  const ConfigHook ddr3 = [](SimConfig& c) { c.dram = ddr3_1600_params(); };
  m.grid.add_column("GMC@GDDR5", workloads, SchedulerKind::kGmc,
                    opts.shape());
  m.grid.add_column("WG-W@GDDR5", workloads, SchedulerKind::kWgW,
                    opts.shape());
  m.grid.add_column("GMC@DDR3", workloads, SchedulerKind::kGmc, opts.shape(),
                    ddr3);
  m.grid.add_column("WG-W@DDR3", workloads, SchedulerKind::kWgW,
                    opts.shape(), ddr3);
  return m;
}

}  // namespace

const std::vector<std::string>& manifest_names() {
  static const std::vector<std::string> kNames = {"fig8", "tab1", "coord",
                                                  "device"};
  return kNames;
}

std::string manifest_summary(const std::string& name) {
  if (name == "fig8") {
    return "IPC of the warp-aware scheduler ladder vs GMC, 11 irregular "
           "workloads";
  }
  if (name == "tab1") return "boot-time MERB table vs the paper (analytic)";
  if (name == "coord") {
    return "WG-M coordination-latency sweep on the multi-controller apps";
  }
  if (name == "device") {
    return "GDDR5 vs DDR3-1600 throughput under GMC and WG-W";
  }
  return "";
}

Manifest make_manifest(const std::string& name, const SweepOptions& opts) {
  Manifest m;
  if (name == "fig8") m = fig8(opts);
  else if (name == "tab1") m = tab1(opts);
  else if (name == "coord") m = coord(opts);
  else if (name == "device") m = device(opts);
  else throw std::invalid_argument("unknown manifest '" + name + "'");
  m.grid.keep_matching(opts.filter);
  return m;
}

}  // namespace latdiv::exp
