#include "exp/driver.hpp"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace latdiv::exp {

namespace {

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

bool read_file(const std::string& path, std::string& contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  contents = buf.str();
  return true;
}

/// Peak resident set size in MiB (0.0 if unavailable).  Linux reports
/// ru_maxrss in KiB.
double peak_rss_mib() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

/// File-name-safe form of a point id ("fig8/gmc/s1" -> "fig8_gmc_s1").
std::string sanitize_id(const std::string& id) {
  std::string s = id;
  for (char& c : s) {
    if (c == '/' || c == '\\' || c == ' ') c = '_';
  }
  return s;
}

/// Wraps every simulated point's config hook so the run writes per-point
/// trace / time-series artifacts under the requested directories.  The
/// base hook (ablation knobs) runs first; obs settings are applied on
/// top and never alter simulated behaviour.
void attach_obs_outputs(Manifest& manifest, const SweepRunArgs& args) {
  if (args.trace_dir.empty() && args.timeseries_dir.empty() &&
      args.attrib_dir.empty()) {
    return;
  }
  for (ExpPoint& p : manifest.grid.points_mut()) {
    if (p.analytic) continue;  // no simulator, nothing to trace
    const std::string fname = sanitize_id(p.id);
    const std::string trace_path =
        args.trace_dir.empty() ? std::string{}
                               : args.trace_dir + "/" + fname + ".trace.json";
    const std::string ts_path =
        args.timeseries_dir.empty()
            ? std::string{}
            : args.timeseries_dir + "/" + fname + ".timeseries.csv";
    const std::string attrib_path =
        args.attrib_dir.empty()
            ? std::string{}
            : args.attrib_dir + "/" + fname + ".attrib.json";
    const std::uint64_t interval = args.sample_interval;
    const ConfigHook base = p.hook;
    p.hook = [base, trace_path, ts_path, attrib_path,
              interval](SimConfig& cfg) {
      if (base) base(cfg);
      if (!trace_path.empty()) {
        cfg.obs.trace = true;
        cfg.obs.trace_path = trace_path;
      }
      if (!ts_path.empty()) {
        cfg.obs.timeseries = true;
        cfg.obs.timeseries_path = ts_path;
      }
      if (!attrib_path.empty()) {
        cfg.obs.attrib = true;
        cfg.obs.attrib_path = attrib_path;
      }
      cfg.obs.sample_interval = interval;
    };
  }
}

/// Wraps every simulated point's hook to force idle fast-forward off
/// (--no-fast-forward).  Applied after the base hook, so it also
/// overrides manifests that set the knob themselves.
void disable_fast_forward(Manifest& manifest) {
  for (ExpPoint& p : manifest.grid.points_mut()) {
    if (p.analytic) continue;
    const ConfigHook base = p.hook;
    p.hook = [base](SimConfig& cfg) {
      if (base) base(cfg);
      cfg.idle_fast_forward = false;
    };
  }
}

/// Wraps every simulated point's hook to run on the channel-sharded core
/// (--shards / LATDIV_SHARDS).  Applied after the base hook, so it also
/// overrides manifests that set the knob themselves; artifact bytes are
/// contractually unchanged (tests/test_shard.cpp).
void apply_shards(Manifest& manifest, std::uint32_t shards) {
  for (ExpPoint& p : manifest.grid.points_mut()) {
    if (p.analytic) continue;
    const ConfigHook base = p.hook;
    p.hook = [base, shards](SimConfig& cfg) {
      if (base) base(cfg);
      cfg.shards = shards;
    };
  }
}

/// Attaches per-point snapshot save/restore paths (--snapshot /
/// --resume): `<dir>/<point-id>.snap`, same naming scheme as the obs
/// artifacts.  Analytic points have no simulator state and are skipped.
void attach_snapshots(Manifest& manifest, const SweepRunArgs& args) {
  if (args.snapshot_dir.empty() && args.resume_dir.empty()) return;
  for (ExpPoint& p : manifest.grid.points_mut()) {
    if (p.analytic) continue;
    const std::string fname = sanitize_id(p.id) + ".snap";
    if (!args.snapshot_dir.empty()) {
      p.save_snapshot_path = args.snapshot_dir + "/" + fname;
    }
    if (!args.resume_dir.empty()) {
      p.load_snapshot_path = args.resume_dir + "/" + fname;
    }
  }
}

/// Switches every simulated point to the sampled runner (--sampling).
void apply_sampling(Manifest& manifest, const ckpt::SamplingConfig& sc) {
  for (ExpPoint& p : manifest.grid.points_mut()) {
    if (p.analytic) continue;
    p.runner = ExpPoint::Runner::kSampled;
    p.sampling = sc;
  }
}

}  // namespace

int run_manifest(const std::string& name, const SweepRunArgs& args) {
  const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  Manifest manifest;
  try {
    manifest = make_manifest(name, args.opts);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "latdiv-sweep: %s (try `latdiv-sweep list`)\n",
                 e.what());
    return 2;
  }
  if (manifest.grid.empty()) {
    std::fprintf(stderr,
                 "latdiv-sweep: filter '%s' matched no points of '%s'\n",
                 args.opts.filter.c_str(), name.c_str());
    return 2;
  }
  if (args.sample_interval == 0) {
    std::fprintf(stderr, "latdiv-sweep: --sample-interval must be > 0\n");
    return 2;
  }
  if (args.sampled && (!args.trace_dir.empty() ||
                       !args.timeseries_dir.empty() ||
                       !args.attrib_dir.empty())) {
    std::fprintf(stderr,
                 "latdiv-sweep: --sampling cannot be combined with "
                 "--trace/--timeseries/--attrib (sampled runs require the "
                 "obs hub disabled)\n");
    return 2;
  }
  if (args.sampled && !args.snapshot_dir.empty()) {
    std::fprintf(stderr,
                 "latdiv-sweep: --sampling cannot be combined with "
                 "--snapshot (a sampled run does not simulate the final "
                 "state in detail)\n");
    return 2;
  }
  for (const std::string& dir : {args.trace_dir, args.timeseries_dir,
                                 args.attrib_dir, args.snapshot_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "latdiv-sweep: cannot create '%s': %s\n",
                   dir.c_str(), ec.message().c_str());
      return 2;
    }
  }
  attach_obs_outputs(manifest, args);
  attach_snapshots(manifest, args);
  if (args.sampled) apply_sampling(manifest, args.sampling);
  if (!args.fast_forward) disable_fast_forward(manifest);
  if (args.shards != 1) apply_shards(manifest, args.shards);

  const ProgressFn progress =
      args.progress
          ? ProgressFn([](std::size_t done, std::size_t total,
                          const PointResult& r) {
              std::fprintf(stderr, "[%zu/%zu] %-32s %s (%.0f ms)\n", done,
                           total, r.id.c_str(), r.ok ? "ok" : "FAILED",
                           r.wall_ms);
            })
          : ProgressFn{};

  // Sweep timing is progress reporting only, never artifact content.
  const auto start = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const double build_s =
      std::chrono::duration<double>(start - t0).count();
  std::vector<PointResult> results =
      run_grid(manifest.grid, args.opts.jobs, progress);
  const double wall_s =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now() - start)  // lint: wall-clock-ok
          .count();

  // Simulated DRAM cycles across the sweep (for --profile throughput);
  // analytic points carry no dram_cycles metric and contribute zero.
  double sim_cycles = 0.0;
  double point_wall_ms = 0.0;
  for (const PointResult& r : results) {
    const auto it = r.metrics.find("dram_cycles");
    if (r.ok && it != r.metrics.end()) sim_cycles += it->second;
    point_wall_ms += r.wall_ms;
  }

  const auto report_start =
      std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const Artifact artifact =
      make_artifact(manifest.spec, args.opts.shape(), std::move(results));
  print_table(artifact);
  std::fprintf(stderr, "ran %zu point(s) in %.2f s (jobs=%u)\n",
               artifact.points.size(), wall_s, args.opts.jobs);

  // Artifact-write failures are recorded, not returned immediately, so
  // the --profile block below still prints (it is diagnostic output and
  // most useful exactly when something went wrong).
  bool write_failed = false;
  if (!args.out_json.empty() &&
      !write_file(args.out_json, to_json(artifact, args.timings))) {
    std::fprintf(stderr, "latdiv-sweep: cannot write '%s'\n",
                 args.out_json.c_str());
    write_failed = true;
  }
  if (!args.out_csv.empty() &&
      !write_file(args.out_csv, to_csv(artifact))) {
    std::fprintf(stderr, "latdiv-sweep: cannot write '%s'\n",
                 args.out_csv.c_str());
    write_failed = true;
  }

  if (args.profile) {
    const double report_s =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() -  // lint: wall-clock-ok
            report_start)
            .count();
    const double mcycles = sim_cycles / 1e6;
    std::fprintf(stderr,
                 "profile: build     %8.3f s\n"
                 "profile: simulate  %8.3f s  (%zu points, %.1f simulated "
                 "Mcycles, %.2f Mcycles/s wall, %.2f Mcycles/s cpu)\n"
                 "profile: report    %8.3f s\n"
                 "profile: peak rss  %8.1f MiB\n",
                 build_s, wall_s, artifact.points.size(), mcycles,
                 wall_s > 0.0 ? mcycles / wall_s : 0.0,
                 point_wall_ms > 0.0 ? mcycles / (point_wall_ms / 1e3) : 0.0,
                 report_s, peak_rss_mib());
  }
  if (write_failed) return 2;

  int rc = failed_points(artifact) > 0 ? 1 : 0;
  if (!args.check.empty()) {
    std::string golden_text;
    if (!read_file(args.check, golden_text)) {
      std::fprintf(stderr, "latdiv-sweep: cannot read baseline '%s'\n",
                   args.check.c_str());
      return 2;
    }
    Artifact golden;
    try {
      golden = artifact_from_json(golden_text);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "latdiv-sweep: bad baseline '%s': %s\n",
                   args.check.c_str(), e.what());
      return 2;
    }
    const GoldenReport report =
        check_golden(artifact, golden, args.golden);
    if (!print_golden_report(report, stdout)) rc = 1;
  }
  return rc;
}

}  // namespace latdiv::exp
