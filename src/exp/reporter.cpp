#include "exp/reporter.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"
#include "exp/json.hpp"

namespace latdiv::exp {

namespace {

/// Stable first-appearance index of (row, col) cells.
std::size_t cell_index(std::vector<CellAggregate>& cells,
                       const std::string& row, const std::string& col) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].row == row && cells[i].col == col) return i;
  }
  CellAggregate c;
  c.row = row;
  c.col = col;
  cells.push_back(std::move(c));
  return cells.size() - 1;
}

const CellAggregate* find_cell(const std::vector<CellAggregate>& cells,
                               const std::string& row,
                               const std::string& col) {
  for (const CellAggregate& c : cells) {
    if (c.row == row && c.col == col) return &c;
  }
  return nullptr;
}

std::vector<std::string> first_appearance_rows(
    const std::vector<CellAggregate>& cells) {
  std::vector<std::string> rows;
  for (const CellAggregate& c : cells) {
    if (std::find(rows.begin(), rows.end(), c.row) == rows.end()) {
      rows.push_back(c.row);
    }
  }
  return rows;
}

std::vector<std::string> column_order(const Artifact& a) {
  if (!a.spec.col_order.empty()) return a.spec.col_order;
  std::vector<std::string> cols;
  for (const CellAggregate& c : a.cells) {
    if (std::find(cols.begin(), cols.end(), c.col) == cols.end()) {
      cols.push_back(c.col);
    }
  }
  return cols;
}

}  // namespace

Artifact make_artifact(const SweepSpec& spec, const RunShape& shape,
                       std::vector<PointResult> points) {
  Artifact a;
  a.spec = spec;
  a.shape = shape;
  a.points = std::move(points);

  // Pass 1: accumulate per-cell sums over ok points.
  struct Sums {
    std::map<std::string, std::pair<double, double>> sum_sq;  // sum, sum^2
  };
  std::vector<Sums> sums;
  for (const PointResult& p : a.points) {
    const std::size_t i = cell_index(a.cells, p.row, p.col);
    if (i >= sums.size()) sums.resize(i + 1);
    if (!p.ok) {
      ++a.cells[i].failed;
      continue;
    }
    ++a.cells[i].n;
    for (const auto& [key, v] : p.metrics) {
      auto& [sum, sq] = sums[i].sum_sq[key];
      sum += v;
      sq += v * v;
    }
  }
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    CellAggregate& c = a.cells[i];
    if (c.n == 0) continue;
    const double n = static_cast<double>(c.n);
    for (const auto& [key, acc] : sums[i].sum_sq) {
      MeanStd ms;
      ms.mean = acc.first / n;
      ms.stddev = std::sqrt(std::max(0.0, acc.second / n - ms.mean * ms.mean));
      c.metrics[key] = ms;
    }
  }

  // Pass 2: speedups vs. the baseline column of the same row.
  if (!a.spec.baseline_col.empty()) {
    for (CellAggregate& c : a.cells) {
      if (c.col == a.spec.baseline_col) continue;
      const CellAggregate* base =
          find_cell(a.cells, c.row, a.spec.baseline_col);
      if (base == nullptr) continue;
      const auto mine = c.metrics.find(a.spec.primary_metric);
      const auto theirs = base->metrics.find(a.spec.primary_metric);
      if (mine == c.metrics.end() || theirs == base->metrics.end()) continue;
      if (theirs->second.mean != 0.0) {
        c.speedup = mine->second.mean / theirs->second.mean;
      }
    }
  }

  // Pass 3: per-column geomean summary.
  for (const std::string& col : column_order(a)) {
    if (col == a.spec.baseline_col) continue;
    std::vector<double> series;
    for (const CellAggregate& c : a.cells) {
      if (c.col != col || c.n == 0) continue;
      if (!a.spec.baseline_col.empty()) {
        if (c.speedup > 0.0) series.push_back(c.speedup);
      } else {
        const auto it = c.metrics.find(a.spec.primary_metric);
        if (it != c.metrics.end() && it->second.mean > 0.0) {
          series.push_back(it->second.mean);
        }
      }
    }
    if (!series.empty()) a.col_geomean[col] = geomean(series);
  }
  return a;
}

std::string to_json(const Artifact& a, bool include_timing) {
  JsonValue root;
  root.set("schema", a.schema);

  JsonValue spec;
  spec.set("name", a.spec.name);
  spec.set("title", a.spec.title);
  spec.set("reference", a.spec.reference);
  spec.set("primary_metric", a.spec.primary_metric);
  spec.set("baseline_col", a.spec.baseline_col);
  JsonValue cols;
  for (const std::string& c : a.spec.col_order) cols.push_back(c);
  if (a.spec.col_order.empty()) cols = JsonValue(JsonValue::Array{});
  spec.set("col_order", std::move(cols));
  root.set("sweep", std::move(spec));

  JsonValue shape;
  shape.set("cycles", static_cast<std::uint64_t>(a.shape.cycles));
  shape.set("warmup", static_cast<std::uint64_t>(a.shape.warmup));
  shape.set("base_seed", a.shape.base_seed);
  shape.set("seeds", static_cast<std::uint64_t>(a.shape.seeds));
  root.set("shape", std::move(shape));

  JsonValue points{JsonValue::Array{}};
  for (const PointResult& p : a.points) {
    JsonValue jp;
    jp.set("id", p.id);
    jp.set("row", p.row);
    jp.set("col", p.col);
    jp.set("workload", p.workload);
    jp.set("scheduler", p.scheduler);
    jp.set("seed", p.seed);
    jp.set("status", p.ok ? "ok" : "failed");
    if (!p.ok) jp.set("error", p.error);
    if (include_timing) jp.set("wall_ms", p.wall_ms);
    JsonValue metrics;
    for (const auto& [key, v] : p.metrics) metrics.set(key, v);
    if (p.metrics.empty()) metrics = JsonValue(JsonValue::Object{});
    jp.set("metrics", std::move(metrics));
    points.push_back(std::move(jp));
  }
  root.set("points", std::move(points));

  JsonValue cells{JsonValue::Array{}};
  for (const CellAggregate& c : a.cells) {
    JsonValue jc;
    jc.set("row", c.row);
    jc.set("col", c.col);
    jc.set("n", static_cast<std::uint64_t>(c.n));
    jc.set("failed", static_cast<std::uint64_t>(c.failed));
    jc.set("speedup", c.speedup);
    JsonValue metrics;
    for (const auto& [key, ms] : c.metrics) {
      JsonValue jm;
      jm.set("mean", ms.mean);
      jm.set("stddev", ms.stddev);
      metrics.set(key, std::move(jm));
    }
    if (c.metrics.empty()) metrics = JsonValue(JsonValue::Object{});
    jc.set("metrics", std::move(metrics));
    cells.push_back(std::move(jc));
  }
  root.set("cells", std::move(cells));

  JsonValue summary;
  JsonValue geo;
  for (const auto& [col, g] : a.col_geomean) geo.set(col, g);
  if (a.col_geomean.empty()) geo = JsonValue(JsonValue::Object{});
  summary.set("col_geomean", std::move(geo));
  root.set("summary", std::move(summary));

  return root.dump();
}

Artifact artifact_from_json(const std::string& text) {
  const JsonValue root = JsonValue::parse(text);
  Artifact a;
  a.schema = root.at("schema").as_string();
  if (a.schema != kSchemaVersion) {
    throw std::runtime_error("unsupported artifact schema '" + a.schema +
                             "' (this build reads " + kSchemaVersion + ")");
  }
  const JsonValue& spec = root.at("sweep");
  a.spec.name = spec.at("name").as_string();
  a.spec.title = spec.at("title").as_string();
  a.spec.reference = spec.at("reference").as_string();
  a.spec.primary_metric = spec.at("primary_metric").as_string();
  a.spec.baseline_col = spec.at("baseline_col").as_string();
  for (const JsonValue& c : spec.at("col_order").as_array()) {
    a.spec.col_order.push_back(c.as_string());
  }
  const JsonValue& shape = root.at("shape");
  a.shape.cycles = static_cast<Cycle>(shape.at("cycles").as_number());
  a.shape.warmup = static_cast<Cycle>(shape.at("warmup").as_number());
  a.shape.base_seed =
      static_cast<std::uint64_t>(shape.at("base_seed").as_number());
  a.shape.seeds = static_cast<std::uint32_t>(shape.at("seeds").as_number());

  for (const JsonValue& jp : root.at("points").as_array()) {
    PointResult p;
    p.id = jp.at("id").as_string();
    p.row = jp.at("row").as_string();
    p.col = jp.at("col").as_string();
    p.workload = jp.at("workload").as_string();
    p.scheduler = jp.at("scheduler").as_string();
    p.seed = static_cast<std::uint64_t>(jp.at("seed").as_number());
    p.ok = jp.at("status").as_string() == "ok";
    if (const JsonValue* err = jp.find("error")) p.error = err->as_string();
    if (const JsonValue* ms = jp.find("wall_ms")) p.wall_ms = ms->as_number();
    for (const auto& [key, v] : jp.at("metrics").as_object()) {
      p.metrics[key] = v.as_number();
    }
    a.points.push_back(std::move(p));
  }
  for (const JsonValue& jc : root.at("cells").as_array()) {
    CellAggregate c;
    c.row = jc.at("row").as_string();
    c.col = jc.at("col").as_string();
    c.n = static_cast<std::uint32_t>(jc.at("n").as_number());
    c.failed = static_cast<std::uint32_t>(jc.at("failed").as_number());
    c.speedup = jc.at("speedup").as_number();
    for (const auto& [key, jm] : jc.at("metrics").as_object()) {
      MeanStd ms;
      ms.mean = jm.at("mean").as_number();
      ms.stddev = jm.at("stddev").as_number();
      c.metrics[key] = ms;
    }
    a.cells.push_back(std::move(c));
  }
  for (const auto& [col, g] :
       root.at("summary").at("col_geomean").as_object()) {
    a.col_geomean[col] = g.as_number();
  }
  return a;
}

std::string to_csv(const Artifact& a) {
  std::string out =
      "kind,id,row,col,workload,scheduler,seed,status,metric,value,stddev,"
      "n,failed\n";
  const auto csv = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string quoted = "\"";
    for (const char c : s) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    return quoted + "\"";
  };
  for (const PointResult& p : a.points) {
    const std::string prefix = "point," + csv(p.id) + "," + csv(p.row) + "," +
                               csv(p.col) + "," + csv(p.workload) + "," +
                               csv(p.scheduler) + "," +
                               std::to_string(p.seed) + "," +
                               (p.ok ? "ok" : "failed") + ",";
    if (!p.ok) {
      out += prefix + ",,,,\n";
      continue;
    }
    for (const auto& [key, v] : p.metrics) {
      out += prefix + key + "," + json_number(v) + ",,,\n";
    }
  }
  for (const CellAggregate& c : a.cells) {
    const std::string prefix = "cell,," + csv(c.row) + "," + csv(c.col) +
                               ",,,," + (c.failed == 0 ? "ok" : "failed") +
                               ",";
    const std::string counts =
        std::to_string(c.n) + "," + std::to_string(c.failed);
    for (const auto& [key, ms] : c.metrics) {
      out += prefix + key + "," + json_number(ms.mean) + "," +
             json_number(ms.stddev) + "," + counts + "\n";
    }
    if (c.speedup > 0.0) {
      out += prefix + "speedup_vs_" + a.spec.baseline_col + "," +
             json_number(c.speedup) + ",," + counts + "\n";
    }
  }
  return out;
}

void print_table(const Artifact& a, std::FILE* out) {
  std::fprintf(out,
               "\n================================================"
               "================\n");
  std::fprintf(out, "%s\n", a.spec.title.c_str());
  if (!a.spec.reference.empty()) {
    std::fprintf(out, "paper reference: %s\n", a.spec.reference.c_str());
  }
  std::fprintf(out,
               "==================================================="
               "=============\n");
  std::fprintf(out,
               "shape: %llu cycles (%llu warmup), base seed %llu, "
               "%u seed(s)/cell",
               static_cast<unsigned long long>(a.shape.cycles),
               static_cast<unsigned long long>(a.shape.warmup),
               static_cast<unsigned long long>(a.shape.base_seed),
               a.shape.seeds);
  if (!a.spec.baseline_col.empty()) {
    std::fprintf(out, "; %s absolute %s, other columns normalized to it",
                 a.spec.baseline_col.c_str(), a.spec.primary_metric.c_str());
  } else {
    std::fprintf(out, "; cells show %s", a.spec.primary_metric.c_str());
  }
  std::fprintf(out, "\n");

  const std::vector<std::string> cols = column_order(a);
  const std::vector<std::string> rows = first_appearance_rows(a.cells);
  std::fprintf(out, "%-16s", "");
  for (const std::string& c : cols) std::fprintf(out, "%10s", c.c_str());
  std::fprintf(out, "\n");

  for (const std::string& row : rows) {
    std::fprintf(out, "%-16s", row.c_str());
    for (const std::string& col : cols) {
      const CellAggregate* c = find_cell(a.cells, row, col);
      if (c == nullptr) {
        std::fprintf(out, "%10s", "-");
      } else if (c->n == 0) {
        std::fprintf(out, "%10s", "FAILED");
      } else if (!a.spec.baseline_col.empty() &&
                 col != a.spec.baseline_col) {
        std::fprintf(out, "%10.3f", c->speedup);
      } else {
        const auto it = c->metrics.find(a.spec.primary_metric);
        const double v = it == c->metrics.end() ? 0.0 : it->second.mean;
        std::fprintf(out, "%10.3f", v);
      }
    }
    std::fprintf(out, "\n");
  }

  if (!a.col_geomean.empty()) {
    std::fprintf(out, "%-16s", "geomean");
    for (const std::string& col : cols) {
      const auto it = a.col_geomean.find(col);
      if (it == a.col_geomean.end()) {
        std::fprintf(out, "%10s", "-");
      } else {
        std::fprintf(out, "%10.3f", it->second);
      }
    }
    std::fprintf(out, "\n");
  }
  if (const std::size_t failed = failed_points(a); failed > 0) {
    std::fprintf(out, "\n%zu point(s) FAILED:\n", failed);
    for (const PointResult& p : a.points) {
      if (!p.ok) {
        std::fprintf(out, "  %s: %s\n", p.id.c_str(), p.error.c_str());
      }
    }
  }
}

std::size_t failed_points(const Artifact& a) {
  std::size_t n = 0;
  for (const PointResult& p : a.points) n += p.ok ? 0 : 1;
  return n;
}

}  // namespace latdiv::exp
