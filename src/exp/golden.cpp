#include "exp/golden.hpp"

#include <cmath>

namespace latdiv::exp {

namespace {

void issue(GoldenReport& report, std::string cell, std::string metric,
           std::string what, double golden = 0.0, double current = 0.0) {
  report.issues.push_back({std::move(cell), std::move(metric),
                           std::move(what), golden, current});
}

const CellAggregate* find_cell(const Artifact& a, const std::string& row,
                               const std::string& col) {
  for (const CellAggregate& c : a.cells) {
    if (c.row == row && c.col == col) return &c;
  }
  return nullptr;
}

}  // namespace

GoldenReport check_golden(const Artifact& current, const Artifact& golden,
                          const GoldenOptions& opts) {
  GoldenReport report;

  if (current.spec.name != golden.spec.name) {
    issue(report, "", "",
          "sweep mismatch: current '" + current.spec.name + "' vs golden '" +
              golden.spec.name + "'");
  }
  if (current.shape.cycles != golden.shape.cycles ||
      current.shape.warmup != golden.shape.warmup ||
      current.shape.base_seed != golden.shape.base_seed ||
      current.shape.seeds != golden.shape.seeds) {
    issue(report, "", "",
          "run shape differs from the baseline (cycles/warmup/seed/seeds) — "
          "not comparable");
  }
  for (const PointResult& p : current.points) {
    if (!p.ok) issue(report, p.id, "", "point failed: " + p.error);
  }

  for (const CellAggregate& g : golden.cells) {
    const std::string cell_name = g.row + "/" + g.col;
    const CellAggregate* c = find_cell(current, g.row, g.col);
    if (c == nullptr) {
      issue(report, cell_name, "", "cell missing from current artifact");
      continue;
    }
    ++report.cells_checked;
    if (c->n != g.n) {
      issue(report, cell_name, "",
            "aggregated point count differs", g.n, c->n);
    }
    for (const auto& [metric, gm] : g.metrics) {
      const auto it = c->metrics.find(metric);
      if (it == c->metrics.end()) {
        issue(report, cell_name, metric, "metric missing from current cell",
              gm.mean, 0.0);
        continue;
      }
      ++report.metrics_checked;
      const auto tol_it = opts.per_metric.find(metric);
      const GoldenTolerance tol =
          tol_it == opts.per_metric.end() ? opts.default_tol : tol_it->second;
      const double drift = std::fabs(it->second.mean - gm.mean);
      const double allowed =
          std::max(tol.abs, tol.rel * std::fabs(gm.mean));
      if (drift > allowed) {
        issue(report, cell_name, metric, "drift beyond tolerance", gm.mean,
              it->second.mean);
      }
    }
  }
  return report;
}

bool print_golden_report(const GoldenReport& report, std::FILE* out) {
  if (report.ok()) {
    std::fprintf(out,
                 "golden check OK: %zu cell(s), %zu metric(s) within "
                 "tolerance\n",
                 report.cells_checked, report.metrics_checked);
    return true;
  }
  std::fprintf(out, "golden check FAILED: %zu issue(s)\n",
               report.issues.size());
  for (const GoldenIssue& i : report.issues) {
    if (i.metric.empty()) {
      std::fprintf(out, "  [%s] %s\n",
                   i.cell.empty() ? "artifact" : i.cell.c_str(),
                   i.what.c_str());
    } else {
      std::fprintf(out, "  [%s] %s: %s (golden %.6g, current %.6g)\n",
                   i.cell.c_str(), i.metric.c_str(), i.what.c_str(), i.golden,
                   i.current);
    }
  }
  return false;
}

}  // namespace latdiv::exp
