#include <algorithm>

#include "common/log.hpp"
#include "exp/point.hpp"

namespace latdiv::exp {

ExpGrid& ExpGrid::add(ExpPoint p) {
  LATDIV_ASSERT(!p.id.empty(), "ExpPoint needs an id");
  for (const ExpPoint& existing : points_) {
    LATDIV_ASSERT(existing.id != p.id, "duplicate ExpPoint id");
  }
  points_.push_back(std::move(p));
  return *this;
}

ExpGrid& ExpGrid::add_column(const std::string& col,
                             const std::vector<WorkloadProfile>& workloads,
                             SchedulerKind scheduler, const RunShape& shape,
                             const ConfigHook& hook) {
  LATDIV_ASSERT(shape.seeds > 0, "a cell needs at least one seed");
  for (const WorkloadProfile& w : workloads) {
    for (std::uint32_t t = 0; t < shape.seeds; ++t) {
      ExpPoint p;
      p.seed = shape.base_seed + t;
      p.id = w.name + "/" + col + "/s" + std::to_string(p.seed);
      p.row = w.name;
      p.col = col;
      p.workload = w;
      p.scheduler = scheduler;
      p.cycles = shape.cycles;
      p.warmup = shape.warmup;
      p.hook = hook;
      add(std::move(p));
    }
  }
  return *this;
}

ExpGrid& ExpGrid::add_matrix(const std::vector<WorkloadProfile>& workloads,
                             const std::vector<SchedulerKind>& schedulers,
                             const RunShape& shape, const ConfigHook& hook) {
  for (const SchedulerKind s : schedulers) {
    add_column(to_string(s), workloads, s, shape, hook);
  }
  return *this;
}

ExpGrid& ExpGrid::keep_matching(const std::string& substr) {
  if (substr.empty()) return *this;
  std::erase_if(points_, [&](const ExpPoint& p) {
    return p.id.find(substr) == std::string::npos;
  });
  return *this;
}

}  // namespace latdiv::exp
