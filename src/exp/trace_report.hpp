// Renderers for the latdiv-trace summariser: a human-readable digest of
// a Chrome trace_event document and of a latency-attribution artifact
// (`latdiv-sweep --attrib`).
//
// Library code rather than CLI code so the reports are testable: the
// tool parses files and prints, these functions turn parsed documents
// into deterministic strings.  Empty sections render explicit "(none)"
// placeholders — a trace with zero warp loads still produces the full,
// well-formed report (drain totals included).
#pragma once

#include <cstddef>
#include <string>

#include "exp/json.hpp"

namespace latdiv::exp {

/// Summary of a parsed trace_event document: span, request totals,
/// write-drain totals, the top-N slowest warp loads and the per-bank
/// ACT/PRE breakdown.  `label` is echoed in the header (the tool passes
/// the file path).  Ties in the top-N ranking break on (start cycle,
/// track id) so the same trace always renders the same report.  Throws
/// std::runtime_error when the document has no `traceEvents` array.
[[nodiscard]] std::string trace_summary(const JsonValue& doc,
                                        const std::string& label,
                                        std::size_t top_n);

/// The `attrib` section: per-cause cycle shares and percentiles, blame
/// counts, and the audit fields (mismatches / unmatched / residual) of
/// an attribution artifact written by `latdiv-sweep --attrib`.  Throws
/// std::runtime_error when the document has no `attrib` object.
[[nodiscard]] std::string attrib_summary(const JsonValue& doc,
                                         const std::string& label);

}  // namespace latdiv::exp
