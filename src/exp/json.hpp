// Minimal JSON document model for the experiment subsystem's artifacts.
//
// The sweep engine both *writes* result artifacts and *reads* them back
// (golden-regression baselines, `latdiv-sweep check`), so it needs a
// parser as well as a serialiser.  The repo deliberately has no external
// dependencies beyond the toolchain; this is a small, strict JSON
// implementation sized to the artifact schema rather than a general
// library.
//
// Determinism contract: serialisation is byte-deterministic.  Objects
// preserve insertion order (they are vectors of pairs, not hash maps),
// and numbers are rendered with the shortest decimal form that parses
// back to the identical double — so two runs that produce bit-identical
// values produce bit-identical artifact files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace latdiv::exp {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                // NOLINT
  JsonValue(double n) : kind_(Kind::kNumber), num_(n) {}             // NOLINT
  JsonValue(std::uint64_t n)                                         // NOLINT
      : kind_(Kind::kNumber), num_(static_cast<double>(n)) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}        // NOLINT
  JsonValue(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}    // NOLINT
  JsonValue(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}  // NOLINT

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  // Typed accessors; throw std::runtime_error on a kind mismatch so that
  // malformed artifacts surface as clean errors, not UB.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup; throws std::runtime_error when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

  /// Append a member to an object under construction.
  void set(std::string key, JsonValue value);
  /// Append an element to an array under construction.
  void push_back(JsonValue value);

  /// Parse a complete JSON document (throws std::runtime_error with a
  /// byte offset on malformed input or trailing garbage).
  static JsonValue parse(std::string_view text);

  /// Serialise with 2-space indentation and a trailing newline.
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Shortest decimal rendering of `v` that strtod()s back to the same
/// bits; integers within the exact-double range render without a point.
/// Non-finite values render as "null" (JSON has no inf/nan).
[[nodiscard]] std::string json_number(double v);

/// `s` with JSON string escapes applied, without surrounding quotes.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace latdiv::exp
