// Golden-figure regression checking.
//
// Compares a freshly produced sweep artifact against a committed baseline
// ("golden") artifact cell by cell.  The committed files live under
// bench/golden/; CI regenerates the quick fig8 sweep on every push and
// fails if any cell metric drifts outside its tolerance — turning the
// paper's figures into regression tests for the simulator itself.
//
// Tolerances are per metric with a default fallback; a metric passes when
//   |current - golden| <= max(abs_tol, rel_tol * |golden|).
// Exact-count metrics can be pinned with rel 0; noisy means get a few
// percent of slack (libm and FMA differences across toolchains perturb
// double aggregation in the last ulps, never the simulated cycle counts).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "exp/reporter.hpp"

namespace latdiv::exp {

struct GoldenTolerance {
  double rel = 0.02;
  double abs = 1e-9;
};

struct GoldenOptions {
  GoldenTolerance default_tol;
  std::map<std::string, GoldenTolerance> per_metric;
};

struct GoldenIssue {
  std::string cell;    ///< "row/col" ("" for artifact-level issues)
  std::string metric;  ///< "" for structural issues
  std::string what;    ///< human-readable description
  double golden = 0.0;
  double current = 0.0;
};

struct GoldenReport {
  std::vector<GoldenIssue> issues;
  std::size_t cells_checked = 0;
  std::size_t metrics_checked = 0;
  [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Check `current` against `golden`.  Structural mismatches (different
/// sweep, different shape, missing cells, failed points) and metric
/// drifts beyond tolerance all become issues.  Metrics present only in
/// `current` are ignored (the schema may grow).
[[nodiscard]] GoldenReport check_golden(const Artifact& current,
                                        const Artifact& golden,
                                        const GoldenOptions& opts = {});

/// Render a report for the console; returns report.ok().
bool print_golden_report(const GoldenReport& report, std::FILE* out);

}  // namespace latdiv::exp
