// End-to-end sweep driver: manifest -> executor -> artifacts -> console.
//
// This is the single code path behind both the `latdiv-sweep` CLI and
// the re-plumbed per-figure bench binaries; it owns progress reporting,
// artifact writing and the golden-regression hook so every entry point
// behaves identically.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/sampler.hpp"
#include "exp/golden.hpp"
#include "exp/manifest.hpp"

namespace latdiv::exp {

struct SweepRunArgs {
  SweepOptions opts;
  std::string out_json;  ///< write the JSON artifact here ("" = skip)
  std::string out_csv;   ///< write the CSV artifact here ("" = skip)
  std::string check;     ///< golden baseline to compare against ("" = skip)
  GoldenOptions golden;  ///< tolerances for --check
  bool timings = false;  ///< include wall_ms in the JSON (non-deterministic)
  bool progress = true;  ///< per-point progress lines on stderr
  /// Disable idle-cycle fast-forward in every simulated point
  /// (--no-fast-forward).  Results are contractually byte-identical with
  /// it on or off; CI sweeps both ways and compares the artifacts.
  bool fast_forward = true;
  /// Print a per-phase wall-clock and simulation-throughput breakdown
  /// (build / simulate / report phases, simulated Mcycles/s, peak RSS)
  /// on stderr.  Emitted even when points fail or artifact writes fail.
  /// Measurement only — artifact bytes are unaffected.
  bool profile = false;
  /// When non-empty, every simulated point writes a Chrome trace_event
  /// JSON (`<dir>/<point-id>.trace.json`, '/' in ids becomes '_').
  std::string trace_dir;
  /// When non-empty, every simulated point writes a time-series CSV
  /// (`<dir>/<point-id>.timeseries.csv`).
  std::string timeseries_dir;
  /// When non-empty, every simulated point runs the latency-attribution
  /// profiler and writes its artifact (`<dir>/<point-id>.attrib.json`);
  /// the sweep artifact additionally carries attrib.* point metrics.
  std::string attrib_dir;
  /// Sampling epoch (DRAM cycles) for --timeseries rows.
  std::uint64_t sample_interval = 500;
  /// Logical shard count for the parallel channel-sharded core in every
  /// simulated point (--shards / LATDIV_SHARDS).  Artifact bytes are
  /// contractually identical at any value (SimConfig::shards); CI sweeps
  /// several counts and compares.  0 is rejected at the CLI.
  std::uint32_t shards = 1;
  /// When non-empty, every simulated point snapshots its final state to
  /// `<dir>/<point-id>.snap` (--snapshot; '/' in ids becomes '_').
  std::string snapshot_dir;
  /// When non-empty, every simulated point restores
  /// `<dir>/<point-id>.snap` before running (--resume).  Points whose
  /// snapshot is missing fail with a CkptError like any other point
  /// error; fingerprints guard against configuration drift.
  std::string resume_dir;
  /// Run every simulated point under the SMARTS sampling schedule in
  /// `sampling` instead of full detail (--sampling[=D,W,P]).  Mutually
  /// exclusive with --trace/--timeseries (sampling requires the obs hub
  /// off) and with --snapshot (a sampled run teleports past the state a
  /// final snapshot would have to contain).
  bool sampled = false;
  ckpt::SamplingConfig sampling;
};

/// Run the named manifest and print its figure table.  Returns the
/// process exit code: 0 on success, 1 when any point failed or the
/// golden check found regressions, 2 on setup errors (unknown manifest,
/// empty filtered grid, unwritable output).
int run_manifest(const std::string& name, const SweepRunArgs& args);

}  // namespace latdiv::exp
