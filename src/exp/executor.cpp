#include "exp/executor.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "ckpt/sampler.hpp"
#include "ckpt/snapshot.hpp"
#include "common/annotations.hpp"
#include "sim/simulator.hpp"

namespace latdiv::exp {

namespace {

/// Estimate metrics of a sampled point.  Deliberately a small, prefixed
/// set: sampled runs produce *estimates* of the headline rates, not the
/// full detailed metric census, and artifacts must make the difference
/// impossible to miss.
MetricMap metrics_from_sampled(const ckpt::SampledResult& s) {
  MetricMap m;
  m["ipc"] = s.ipc;
  m["instructions"] = s.instructions;
  m["row_hit_rate"] = s.row_hit_rate;
  m["bandwidth_utilization"] = s.bandwidth_utilization;
  m["sampled.windows"] = static_cast<double>(s.windows.size());
  m["sampled.detailed_cycles"] = static_cast<double>(s.detailed_cycles);
  m["sampled.warm_instructions"] =
      static_cast<double>(s.warm_instructions);
  const Cycle total = s.end - s.start;
  m["sampled.speedup"] =
      s.detailed_cycles > 0
          ? static_cast<double>(total) /
                static_cast<double>(s.detailed_cycles)
          : 1.0;
  return m;
}

}  // namespace

MetricMap metrics_from(const RunResult& r) {
  MetricMap m;
  // Performance.
  m["ipc"] = r.ipc;
  m["instr_per_usec"] = r.instr_per_usec;
  m["instructions"] = static_cast<double>(r.instructions);
  m["core_cycles"] = static_cast<double>(r.core_cycles);
  m["dram_cycles"] = static_cast<double>(r.dram_cycles);
  // Coalescing (Fig. 2).
  m["loads"] = r.loads;
  m["divergent_load_frac"] = r.divergent_load_frac;
  m["requests_per_load"] = r.requests_per_load;
  // Divergence & latency (Figs. 3, 9, 10).
  m["effective_mem_latency_ns"] = r.effective_mem_latency_ns;
  m["first_req_latency_ns"] = r.first_req_latency_ns;
  m["divergence_gap_ns"] = r.divergence_gap_ns;
  m["last_to_first_ratio"] = r.last_to_first_ratio;
  m["mcs_per_warp"] = r.mcs_per_warp;
  m["banks_per_warp"] = r.banks_per_warp;
  m["same_row_frac"] = r.same_row_frac;
  // DRAM-side (Figs. 11, 12; §VI-B).
  m["bandwidth_utilization"] = r.bandwidth_utilization;
  m["row_hit_rate"] = r.row_hit_rate;
  m["write_intensity"] = r.write_intensity;
  m["drain_small_group_frac"] = r.drain_small_group_frac;
  m["dram_reads"] = static_cast<double>(r.dram_reads);
  m["dram_writes"] = static_cast<double>(r.dram_writes);
  m["dram_activates"] = static_cast<double>(r.dram_activates);
  m["power_total_w"] = r.power.total();
  m["power_io_w"] = r.power.io;
  // Caches.
  m["l1_hit_rate"] = r.l1_hit_rate;
  m["l2_hit_rate"] = r.l2_hit_rate;
  // Back-pressure.
  m["sm_issue_stall_mshr"] = static_cast<double>(r.sm_issue_stall_mshr);
  m["sm_no_ready_warp_cycles"] =
      static_cast<double>(r.sm_no_ready_warp_cycles);
  m["icnt_inject_stalls"] = static_cast<double>(r.icnt_inject_stalls);
  m["mc_read_queueing_cycles"] = r.mc_read_queueing_cycles;
  m["mc_read_service_cycles"] = r.mc_read_service_cycles;
  m["mc_drains_started"] = static_cast<double>(r.mc_drains_started);
  // Policy-internal counters.
  m["wg_groups_selected"] = static_cast<double>(r.wg_groups_selected);
  m["wg_fallback_selections"] =
      static_cast<double>(r.wg_fallback_selections);
  m["wg_merb_deferrals"] = static_cast<double>(r.wg_merb_deferrals);
  m["wg_writeaware_selections"] =
      static_cast<double>(r.wg_writeaware_selections);
  m["wg_shared_boosts"] = static_cast<double>(r.wg_shared_boosts);
  m["coord_messages"] = static_cast<double>(r.coord_messages);
  return m;
}

PointResult execute_point(const ExpPoint& p) {
  PointResult res;
  res.id = p.id;
  res.row = p.row;
  res.col = p.col;
  res.seed = p.seed;
  // wall_ms is a measurement, excluded from deterministic artifacts.
  const auto start = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  try {
    if (p.analytic) {
      res.metrics = p.analytic();
    } else {
      res.workload = p.workload.name;
      SimConfig cfg;
      cfg.workload = p.workload;
      cfg.scheduler = p.scheduler;
      cfg.max_cycles = p.cycles;
      cfg.warmup_cycles = p.warmup;
      cfg.seed = p.seed;
      if (p.hook) p.hook(cfg);
      Simulator sim(cfg);
      if (!p.load_snapshot_path.empty()) {
        ckpt::load_snapshot_file(sim, p.load_snapshot_path);
      }
      if (p.runner == ExpPoint::Runner::kSampled) {
        ckpt::SampledRunner runner(sim, p.sampling);
        const ckpt::SampledResult s = runner.run();
        res.scheduler = to_string(cfg.scheduler);
        res.metrics = metrics_from_sampled(s);
        res.ok = true;
        res.wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() -  // lint: wall-clock-ok
                start)
                .count();
        return res;
      }
      // Detailed runner; the optional snapshot is taken after the last
      // simulated cycle so a later point (or a resumed sweep) can pick
      // up exactly where this one stopped.
      sim.run_to(cfg.max_cycles);
      if (!p.save_snapshot_path.empty()) {
        ckpt::save_snapshot_file(sim, p.save_snapshot_path);
      }
      const RunResult r = sim.finish();
      res.scheduler = r.scheduler;
      res.metrics = metrics_from(r);
      // Observability percentiles ride along only when the point opted
      // into the obs layer — base artifacts (and committed goldens) keep
      // their exact metric set.
      if (const obs::ObsHub* hub = sim.obs()) {
        const auto add_percentiles = [&res, hub](const std::string& key,
                                                 const char* hist) {
          const obs::Log2Histogram* h = hub->metrics().find_histogram(hist);
          if (h == nullptr || h->total() == 0) return;
          res.metrics[key + "_p50"] = static_cast<double>(h->quantile(0.50));
          res.metrics[key + "_p90"] = static_cast<double>(h->quantile(0.90));
          res.metrics[key + "_p99"] = static_cast<double>(h->quantile(0.99));
        };
        add_percentiles("obs.divergence_gap", "warp.divergence_gap");
        add_percentiles("obs.last_latency", "warp.last_latency");
        add_percentiles("obs.read_service", "req.read_service");
        // Attribution point metrics, only for points that opted in —
        // attrib-off artifacts keep their exact metric set.
        if (r.attrib.enabled) {
          const obs::AttribSummary& a = r.attrib;
          res.metrics["attrib.loads"] = static_cast<double>(a.loads);
          res.metrics["attrib.mismatches"] =
              static_cast<double>(a.mismatches);
          res.metrics["attrib.unmatched"] = static_cast<double>(a.unmatched);
          res.metrics["attrib.total_cycles"] =
              static_cast<double>(a.total_cycles);
          for (std::size_t c = 0; c < obs::kAttribCauseCount; ++c) {
            const std::string name =
                obs::attrib_cause_name(static_cast<obs::AttribCause>(c));
            res.metrics["attrib." + name + "_cycles"] =
                static_cast<double>(a.cause_cycles[c]);
            res.metrics["attrib." + name + "_p99"] =
                static_cast<double>(a.cause_p99[c]);
          }
          for (std::size_t c = 0; c < obs::kAttribBlameCauses; ++c) {
            const std::string name =
                obs::attrib_cause_name(static_cast<obs::AttribCause>(c));
            res.metrics["attrib.blame." + name] =
                static_cast<double>(a.blame[c]);
          }
          res.metrics["attrib.blame.none"] =
              static_cast<double>(a.blame_none);
        }
      }
    }
    res.ok = true;
  } catch (const std::exception& e) {
    res.ok = false;
    res.error = e.what();
    res.metrics.clear();
  } catch (...) {
    res.ok = false;
    res.error = "unknown exception";
    res.metrics.clear();
  }
  res.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)  // lint: wall-clock-ok
          .count();
  return res;
}

std::vector<PointResult> run_grid(const ExpGrid& grid, unsigned jobs,
                                  const ProgressFn& progress) {
  const std::vector<ExpPoint>& points = grid.points();
  std::vector<PointResult> results(points.size());
  if (points.empty()) return results;

  std::atomic<std::size_t> next{0};
  latdiv::Mutex mu;
  std::size_t done = 0;  // guarded by mu

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      results[i] = execute_point(points[i]);
      {
        const latdiv::MutexLock lock(mu);
        ++done;  // monotonic: one increment per completed point
        if (progress) progress(done, points.size(), results[i]);
      }
    }
  };

  if (jobs <= 1) {
    worker();
    return results;
  }
  std::vector<std::thread> pool;
  const unsigned n = std::min<std::size_t>(jobs, points.size());
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace latdiv::exp
