// SM <-> memory-partition crossbar.
//
// Request side: each SM owns a FIFO injection queue; every interconnect
// cycle each partition grants one SM whose queue head targets it
// (round-robin).  Per-SM order is preserved end to end — the paper's
// warp-group tagging depends on it (§IV-B2: "the interconnect between the
// SMs and GMCs does not re-order requests from a single SM, even though it
// can interleave requests from different SMs").  Head-of-line blocking on
// a busy partition is intentional: it is what preserves the order.
//
// Sticky arbitration (IcntConfig::sticky_arbitration) models the
// non-interleaving network of Yuan et al. used by the WAFCFS comparison:
// a partition keeps granting the same SM while that SM keeps requests for
// it at its queue head, so one warp's requests arrive contiguously.
//
// Response side: symmetric — per-partition output FIFOs, one response
// delivered per SM per cycle, fixed pipeline latency each way.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"
#include "mem/request.hpp"

namespace latdiv {

struct IcntConfig {
  std::uint32_t sms = 30;
  std::uint32_t partitions = 6;
  Cycle request_latency = 8;   ///< interconnect cycles, injection->ejection
  Cycle response_latency = 8;
  std::uint32_t sm_queue_depth = 16;
  std::uint32_t partition_in_depth = 8;
  std::uint32_t partition_out_depth = 16;
  bool sticky_arbitration = false;  ///< WAFCFS (Yuan et al.) mode
};

struct IcntStats {
  std::uint64_t requests_moved = 0;
  std::uint64_t responses_moved = 0;
  std::uint64_t inject_stalls = 0;  ///< SM found its queue full
};

class Crossbar {
 public:
  explicit Crossbar(const IcntConfig& cfg);

  // --- SM side ---
  [[nodiscard]] bool can_inject_request(SmId sm) const;
  void inject_request(SmId sm, MemRequest req, Cycle now);
  /// Response available for `sm` this cycle, if any (at most one).
  std::optional<MemResponse> pop_response(SmId sm, Cycle now);

  // --- partition side ---
  /// Front request for `part` if its delivery latency has elapsed; the
  /// partition may decline to pop (back-pressure stalls the arbiter).
  [[nodiscard]] const MemRequest* peek_request(ChannelId part,
                                               Cycle now) const;
  MemRequest pop_request(ChannelId part, Cycle now);
  [[nodiscard]] bool can_inject_response(ChannelId part) const;
  void inject_response(ChannelId part, MemResponse resp, Cycle now);

  /// Arbitrate and move packets; call once per interconnect cycle.
  void tick(Cycle now);

  /// Earliest core-domain cycle >= now at which the crossbar can move or
  /// deliver a packet (idle fast-forward): `now` while any injection or
  /// partition-output queue holds work, else the earliest in-flight
  /// delivery time; kNoCycle when completely empty.
  [[nodiscard]] Cycle next_event(Cycle now) const;

  void count_inject_stall() { ++stats_.inject_stalls; }
  [[nodiscard]] const IcntStats& stats() const { return stats_; }
  [[nodiscard]] const IcntConfig& config() const { return cfg_; }

  // Occupancy snapshots (time-series sampling; no timing effects).
  /// Requests waiting in SM injection queues.
  [[nodiscard]] std::size_t requests_queued() const {
    std::size_t n = 0;
    for (const auto& q : sm_queues_) n += q.size();
    return n;
  }
  /// Responses waiting in partition output queues.
  [[nodiscard]] std::size_t responses_queued() const {
    std::size_t n = 0;
    for (const auto& q : part_out_) n += q.size();
    return n;
  }

  /// Snapshot serialization of every queue + arbiter pointer (src/ckpt).
  template <class Ar>
  void ckpt_io(Ar& ar);

 private:
  template <typename T>
  struct Timed {
    Cycle ready_at;
    T payload;
  };

  IcntConfig cfg_;
  std::vector<std::deque<MemRequest>> sm_queues_;
  std::vector<std::deque<Timed<MemRequest>>> part_in_;
  std::vector<std::deque<MemResponse>> part_out_;
  std::vector<std::deque<Timed<MemResponse>>> sm_in_;
  std::vector<std::uint32_t> part_rr_;      ///< per-partition SM pointer
  std::vector<std::uint32_t> part_sticky_;  ///< last granted SM (sticky mode)
  std::vector<std::uint32_t> sm_rr_;        ///< per-SM partition pointer
  // No shared occupancy counters: inject_response() runs on worker
  // threads under sharding (each partition touches only its own
  // part_out_ deque), so tick()/next_event() recount locally instead of
  // maintaining cross-shard totals.
  IcntStats stats_;
};

}  // namespace latdiv
