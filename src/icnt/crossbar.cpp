#include "icnt/crossbar.hpp"

#include <algorithm>

namespace latdiv {

Crossbar::Crossbar(const IcntConfig& cfg)
    : cfg_(cfg),
      sm_queues_(cfg.sms),
      part_in_(cfg.partitions),
      part_out_(cfg.partitions),
      sm_in_(cfg.sms),
      part_rr_(cfg.partitions, 0),
      part_sticky_(cfg.partitions, cfg.sms),  // sms = "no sticky grant yet"
      sm_rr_(cfg.sms, 0) {
  LATDIV_ASSERT(cfg.sms > 0 && cfg.partitions > 0, "empty crossbar");
}

bool Crossbar::can_inject_request(SmId sm) const {
  LATDIV_ASSERT(sm < sm_queues_.size(), "sm out of range");
  return sm_queues_[sm].size() < cfg_.sm_queue_depth;
}

void Crossbar::inject_request(SmId sm, MemRequest req, Cycle now) {
  LATDIV_ASSERT(can_inject_request(sm), "SM injection queue overflow");
  (void)now;
  sm_queues_[sm].push_back(req);
}

const MemRequest* Crossbar::peek_request(ChannelId part, Cycle now) const {
  LATDIV_ASSERT(part < part_in_.size(), "partition out of range");
  const auto& q = part_in_[part];
  if (q.empty() || q.front().ready_at > now) return nullptr;
  return &q.front().payload;
}

MemRequest Crossbar::pop_request(ChannelId part, Cycle now) {
  LATDIV_ASSERT(peek_request(part, now) != nullptr, "pop without peek");
  MemRequest req = part_in_[part].front().payload;
  part_in_[part].pop_front();
  return req;
}

bool Crossbar::can_inject_response(ChannelId part) const {
  LATDIV_ASSERT(part < part_out_.size(), "partition out of range");
  return part_out_[part].size() < cfg_.partition_out_depth;
}

void Crossbar::inject_response(ChannelId part, MemResponse resp, Cycle now) {
  LATDIV_ASSERT(can_inject_response(part), "partition response overflow");
  (void)now;
  part_out_[part].push_back(resp);
}

std::optional<MemResponse> Crossbar::pop_response(SmId sm, Cycle now) {
  LATDIV_ASSERT(sm < sm_in_.size(), "sm out of range");
  auto& q = sm_in_[sm];
  if (q.empty() || q.front().ready_at > now) return std::nullopt;
  MemResponse resp = q.front().payload;
  q.pop_front();
  return resp;
}

void Crossbar::tick(Cycle now) {
  // Request crossbar: each partition grants one SM whose head targets it.
  // With no queued injections no grant is possible and the arbitration
  // pointers cannot move — skip the whole grant scan.  Occupancy is
  // recounted here (main thread) rather than kept as shared counters the
  // partition-side injectors would race on.
  std::size_t sm_queued = requests_queued();
  for (std::uint32_t p = 0; sm_queued != 0 && p < cfg_.partitions; ++p) {
    if (part_in_[p].size() >= cfg_.partition_in_depth) continue;

    auto head_targets_p = [&](std::uint32_t sm) {
      return !sm_queues_[sm].empty() &&
             sm_queues_[sm].front().loc.channel == p;
    };

    std::uint32_t granted = cfg_.sms;  // sentinel: none
    if (cfg_.sticky_arbitration && part_sticky_[p] < cfg_.sms &&
        head_targets_p(part_sticky_[p])) {
      granted = part_sticky_[p];
    } else {
      for (std::uint32_t off = 0; off < cfg_.sms; ++off) {
        const std::uint32_t sm = (part_rr_[p] + off) % cfg_.sms;
        if (head_targets_p(sm)) {
          granted = sm;
          part_rr_[p] = (sm + 1) % cfg_.sms;
          break;
        }
      }
    }
    if (granted == cfg_.sms) continue;
    part_sticky_[p] = granted;
    part_in_[p].push_back(
        {now + cfg_.request_latency, sm_queues_[granted].front()});
    sm_queues_[granted].pop_front();
    --sm_queued;
    ++stats_.requests_moved;
  }

  // Response crossbar: each SM accepts one response per cycle.
  std::size_t part_out_queued = responses_queued();
  for (std::uint32_t sm = 0; part_out_queued != 0 && sm < cfg_.sms; ++sm) {
    for (std::uint32_t off = 0; off < cfg_.partitions; ++off) {
      const std::uint32_t p = (sm_rr_[sm] + off) % cfg_.partitions;
      if (part_out_[p].empty() || part_out_[p].front().tag.sm != sm) continue;
      sm_in_[sm].push_back(
          {now + cfg_.response_latency, part_out_[p].front()});
      part_out_[p].pop_front();
      --part_out_queued;
      sm_rr_[sm] = (p + 1) % cfg_.partitions;
      ++stats_.responses_moved;
      break;
    }
  }
}

Cycle Crossbar::next_event(Cycle now) const {
  if (requests_queued() != 0 || responses_queued() != 0) return now;
  Cycle ev = kNoCycle;
  for (const auto& q : part_in_) {
    if (!q.empty()) ev = std::min(ev, q.front().ready_at);
  }
  for (const auto& q : sm_in_) {
    if (!q.empty()) ev = std::min(ev, q.front().ready_at);
  }
  return ev;
}

}  // namespace latdiv
