#include "par/worker_pool.hpp"

#include <cstdlib>

namespace latdiv::par {

WorkerPool::WorkerPool(unsigned workers) {
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : threads_) t.join();
}

// The cv waits need a movable lock, which the annotated MutexLock is not;
// the locking discipline here is the classic generation-counter barrier
// and is exercised under TSan by CI's tsan-smoke job.
void WorkerPool::run(std::size_t tasks, const Task& fn) LATDIV_NO_TSA {
  if (threads_.empty()) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  {
    std::unique_lock<Mutex> lock(mu_);
    fn_ = &fn;
    tasks_ = tasks;
    next_task_.store(0, std::memory_order_relaxed);
    busy_ = threads_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  // The caller works too: claim indices until the counter runs dry.
  for (std::size_t i;
       (i = next_task_.fetch_add(1, std::memory_order_relaxed)) < tasks;) {
    fn(i);
  }
  std::unique_lock<Mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return busy_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::worker_loop() LATDIV_NO_TSA {
  std::uint64_t seen = 0;
  std::unique_lock<Mutex> lock(mu_);
  while (true) {
    cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const Task* fn = fn_;
    const std::size_t tasks = tasks_;
    lock.unlock();
    for (std::size_t i;
         (i = next_task_.fetch_add(1, std::memory_order_relaxed)) < tasks;) {
      (*fn)(i);
    }
    lock.lock();
    if (--busy_ == 0) cv_done_.notify_one();
  }
}

unsigned pick_worker_threads(unsigned shards) {
  if (shards <= 1) return 0;
  unsigned want = 0;
  if (const char* env = std::getenv("LATDIV_SHARD_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      want = static_cast<unsigned>(v);
    }
  }
  if (want == 0) {
    want = std::thread::hardware_concurrency();
    if (want == 0) want = 1;
  }
  if (want > shards) want = shards;
  // The calling thread participates in run(), so N-way execution needs
  // N-1 spawned workers.
  return want - 1;
}

}  // namespace latdiv::par
