// Per-shard arena allocation for the hot queue path.
//
// Every memory partition owns a ShardArena; its controller's read/write
// queues, per-bank command queues, and the partition's pipeline/fill/
// response deques draw their node storage from it.  Two effects:
//
//   * no allocator contention: a sharded run never routes two shards'
//     queue churn through one global malloc arena, so worker threads do
//     not serialize on heap locks or ping-pong allocator metadata
//     cache lines;
//   * locality: one shard's queue nodes pack into the same few slabs
//     instead of interleaving with every other shard's allocations.
//
// The arena is a segregated power-of-two free-list over 64 KiB slabs.
// Freed blocks are recycled by size class, never returned to the OS until
// the arena dies; steady-state simulation reaches a fixed working set
// after warmup and stops allocating entirely.  Blocks larger than half a
// slab fall through to operator new (deque bulk maps, rare).
//
// Thread contract: an arena is LATDIV_SHARD_LOCAL by construction — it is
// owned by exactly one Partition and only that partition's containers
// allocate from it, so no locking is needed or provided.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "common/annotations.hpp"
#include "common/log.hpp"

namespace latdiv::par {

class ShardArena {
 public:
  static constexpr std::size_t kSlabBytes = 64 * 1024;
  /// Smallest serviced block; also the alignment of every arena block.
  static constexpr std::size_t kMinBlock = 16;

  ShardArena() = default;
  ShardArena(const ShardArena&) = delete;
  ShardArena& operator=(const ShardArena&) = delete;
  ~ShardArena() {
    for (void* slab : slabs_) ::operator delete(slab);
  }

  void* allocate(std::size_t bytes, std::size_t align) {
    LATDIV_DCHECK(align <= kMinBlock, "over-aligned arena allocation");
    const std::size_t cls = size_class(bytes);
    if (cls >= kClasses) return ::operator new(bytes);
    if (FreeNode* node = free_[cls]) {
      free_[cls] = node->next;
      return node;
    }
    const std::size_t block = kMinBlock << cls;
    if (left_ < block) {
      cur_ = static_cast<std::byte*>(::operator new(kSlabBytes));
      slabs_.push_back(cur_);
      left_ = kSlabBytes;
    }
    void* p = cur_;
    cur_ += block;
    left_ -= block;
    return p;
  }

  void deallocate(void* p, std::size_t bytes) noexcept {
    const std::size_t cls = size_class(bytes);
    if (cls >= kClasses) {
      ::operator delete(p);
      return;
    }
    auto* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
  }

  /// Slabs held (tests assert steady-state allocation stops growing).
  [[nodiscard]] std::size_t slabs() const noexcept { return slabs_.size(); }

 private:
  struct FreeNode {
    // Intrusive link inside a freed block; reachable only through the
    // owning arena's free_ lists, so it shares the arena's ownership.
    FreeNode* next LATDIV_SHARD_LOCAL;
  };
  // Size classes kMinBlock << c for c in [0, kClasses): 16 B .. 32 KiB.
  static constexpr std::size_t kClasses = 12;

  [[nodiscard]] static std::size_t size_class(std::size_t bytes) noexcept {
    std::size_t cls = 0;
    std::size_t block = kMinBlock;
    while (block < bytes) {
      block <<= 1;
      ++cls;
    }
    return cls;
  }

  std::vector<void*> slabs_ LATDIV_SHARD_LOCAL;
  FreeNode* free_[kClasses] LATDIV_SHARD_LOCAL = {};
  std::byte* cur_ LATDIV_SHARD_LOCAL = nullptr;
  std::size_t left_ = 0;
};

/// std::allocator-compatible handle onto a ShardArena.  A null arena falls
/// back to the global heap, so arena-typed containers behave identically
/// in serial builds and in contexts (tests, tools) that never construct
/// an arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(ShardArena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ != nullptr) {
      arena_->deallocate(p, n * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  [[nodiscard]] ShardArena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const noexcept {
    return arena_ != o.arena();
  }

 private:
  /// Non-owning; the arena outlives every container built on it (members
  /// are declared after their arena in the owning class).
  ShardArena* arena_ LATDIV_SHARD_LOCAL = nullptr;
};

}  // namespace latdiv::par
