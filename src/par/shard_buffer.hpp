// ShardEffectBuffer — a partition's deferred cross-shard side effects.
//
// Inside an epoch a worker thread may not touch anything owned by the
// main thread: the ObsHub, the InstrTracker, the coordination network's
// in-flight queue.  Each partition therefore points its controller-side
// sinks (obs::McEventSink, TrackerSink) at its own ShardEffectBuffer,
// which records the calls verbatim — stamped with the cycle and intra-
// cycle phase they occurred in — and the epoch merge replays them into
// the real consumers afterwards.
//
// Determinism hinges on one property: a buffer's event stream is already
// sorted by (cycle, phase) because a shard executes its partitions
// monotonically (tick_core at the epoch's core tick, then tick_dram for
// each cycle in order).  The merge therefore never sorts; it walks
// cycles × phases × partitions with a cursor per buffer and replays
// matching prefixes.  That reproduces the serial call order exactly:
// within one cycle the serial core runs every partition's core phase
// (partition order), then every dram phase (partition order), then the
// coordination pickup (partition order again — see pop_send).
//
// The buffer records the sink calls' arguments verbatim (all flat PODs)
// and is cleared every epoch; vectors keep their capacity, so the
// steady-state epoch allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "common/annotations.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "dram/command.hpp"
#include "gpu/tracker_sink.hpp"
#include "mc/policy.hpp"
#include "mem/address_map.hpp"
#include "mem/request.hpp"
#include "obs/event_sink.hpp"

namespace latdiv::par {

/// Intra-cycle phase of the serial step order.  Core (SM/crossbar/L2
/// ingress) precedes DRAM within a cycle; the merge replays in this
/// order.
enum class Phase : std::uint8_t { kCore = 0, kDram = 1 };

class ShardEffectBuffer final : public obs::McEventSink, public TrackerSink {
 public:
  /// Stamp subsequent events with (cycle, phase).  The owning shard task
  /// calls this before each tick_core / tick_dram of the partition;
  /// stamps must be non-decreasing within an epoch (merge precondition).
  void begin(Cycle cycle, Phase phase) {
    LATDIV_DCHECK(events_.empty() || cycle > cycle_ ||
                      (cycle == cycle_ && phase >= phase_),
                  "shard effect stamps must be monotonic");
    cycle_ = cycle;
    phase_ = phase;
  }

  // --- McEventSink (recorded) ---
  void req_enqueued(const MemRequest& req, Cycle now) override {
    push(Event::Kind::kReqEnqueued, now).req = req;
  }
  void req_to_bank(const MemRequest& req, Cycle now) override {
    push(Event::Kind::kReqToBank, now).req = req;
  }
  void req_cas(const MemRequest& req, Cycle now) override {
    push(Event::Kind::kReqCas, now).req = req;
  }
  void req_data(const MemRequest& req, Cycle done) override {
    push(Event::Kind::kReqData, done).req = req;
  }
  void req_write_retired(const MemRequest& req, Cycle done) override {
    push(Event::Kind::kReqWriteRetired, done).req = req;
  }
  void dram_command(ChannelId ch, const DramCommand& cmd,
                    Cycle now) override {
    Event& e = push(Event::Kind::kDramCommand, now);
    e.ch = ch;
    e.cmd = cmd;
  }
  void drain_begin(ChannelId ch, Cycle now) override {
    push(Event::Kind::kDrainBegin, now).ch = ch;
  }
  void drain_end(ChannelId ch, Cycle now, std::uint64_t writes) override {
    Event& e = push(Event::Kind::kDrainEnd, now);
    e.ch = ch;
    e.writes = writes;
  }

  // --- TrackerSink (recorded) ---
  void on_dram_request(WarpInstrUid uid, const DramLoc& loc) override {
    Event& e = push(Event::Kind::kTrackRequest, cycle_);
    e.uid = uid;
    e.loc = loc;
  }
  void on_dram_complete(WarpInstrUid uid, Cycle done) override {
    Event& e = push(Event::Kind::kTrackComplete, done);
    e.uid = uid;
  }

  /// Record a coordination broadcast drained from the controller's outbox
  /// after its dram tick at `sent_at`.
  void coord_send(Cycle sent_at, const CoordMsg& msg) {
    sends_.push_back(Send{sent_at, msg});
  }

  // --- merge side (main thread, workers joined) ---

  /// Replay the events stamped exactly (cycle, phase) — a prefix at the
  /// cursor — into the real consumers, in record order.  `obs` may be
  /// null only if no obs events were recorded.
  void replay(Cycle cycle, Phase phase, obs::McEventSink* obs,
              TrackerSink& tracker) {
    while (replay_cursor_ < events_.size()) {
      const Event& e = events_[replay_cursor_];
      if (e.cycle != cycle || e.phase != phase) break;
      ++replay_cursor_;
      switch (e.kind) {
        case Event::Kind::kTrackRequest:
          tracker.on_dram_request(e.uid, e.loc);
          break;
        case Event::Kind::kTrackComplete:
          tracker.on_dram_complete(e.uid, e.when);
          break;
        case Event::Kind::kReqEnqueued:
          LATDIV_DCHECK(obs != nullptr, "obs event without a hub");
          obs->req_enqueued(e.req, e.when);
          break;
        case Event::Kind::kReqToBank:
          obs->req_to_bank(e.req, e.when);
          break;
        case Event::Kind::kReqCas:
          obs->req_cas(e.req, e.when);
          break;
        case Event::Kind::kReqData:
          obs->req_data(e.req, e.when);
          break;
        case Event::Kind::kReqWriteRetired:
          obs->req_write_retired(e.req, e.when);
          break;
        case Event::Kind::kDramCommand:
          obs->dram_command(e.ch, e.cmd, e.when);
          break;
        case Event::Kind::kDrainBegin:
          obs->drain_begin(e.ch, e.when);
          break;
        case Event::Kind::kDrainEnd:
          obs->drain_end(e.ch, e.when, e.writes);
          break;
      }
    }
  }

  /// Next coordination send stamped `cycle` (FIFO), or nullptr.  Advances
  /// the send cursor on a hit.
  [[nodiscard]] const CoordMsg* pop_send(Cycle cycle) {
    if (send_cursor_ < sends_.size() && sends_[send_cursor_].sent == cycle) {
      return &sends_[send_cursor_++].msg;
    }
    return nullptr;
  }

  /// Reset for the next epoch.  DCHECKs that the merge consumed
  /// everything — a leftover means the epoch ended before an event's
  /// stamp, i.e. a buffered effect would be silently dropped.
  void clear() {
    LATDIV_DCHECK(replay_cursor_ == events_.size(),
                  "unreplayed shard effects at epoch end");
    LATDIV_DCHECK(send_cursor_ == sends_.size(),
                  "unmerged coordination sends at epoch end");
    events_.clear();
    sends_.clear();
    replay_cursor_ = 0;
    send_cursor_ = 0;
  }

  [[nodiscard]] bool empty() const noexcept {
    return events_.empty() && sends_.empty();
  }

 private:
  // Flat record — no union; all payload types are small PODs and the
  // buffer only lives one epoch, so clarity beats the few spare bytes.
  struct Event {
    enum class Kind : std::uint8_t {
      kReqEnqueued,
      kReqToBank,
      kReqCas,
      kReqData,
      kReqWriteRetired,
      kDramCommand,
      kDrainBegin,
      kDrainEnd,
      kTrackRequest,
      kTrackComplete,
    };
    Kind kind;
    Phase phase;
    ChannelId ch = 0;
    Cycle cycle = 0;  ///< stamp: when in the epoch this was recorded
    Cycle when = 0;   ///< the sink call's own cycle argument, verbatim
    MemRequest req;
    DramCommand cmd;
    std::uint64_t writes = 0;
    WarpInstrUid uid = 0;
    DramLoc loc;
  };
  struct Send {
    Cycle sent;
    CoordMsg msg;
  };

  Event& push(Event::Kind kind, Cycle when) {
    Event& e = events_.emplace_back();
    e.kind = kind;
    e.phase = phase_;
    e.cycle = cycle_;
    e.when = when;
    return e;
  }

  // Written only by the owning shard's worker inside an epoch, read only
  // by the main thread after the barrier.
  std::vector<Event> events_ LATDIV_SHARD_LOCAL;
  std::vector<Send> sends_ LATDIV_SHARD_LOCAL;
  Cycle cycle_ LATDIV_SHARD_LOCAL = 0;
  Phase phase_ LATDIV_SHARD_LOCAL = Phase::kCore;
  std::size_t replay_cursor_ LATDIV_SHARD_LOCAL = 0;
  std::size_t send_cursor_ LATDIV_SHARD_LOCAL = 0;
};

}  // namespace latdiv::par
