// ShardEngine — the deterministic channel-sharded epoch core.
//
// The six memory partitions (L2 slice + controller + DRAM channel + the
// policy's per-channel MERB/warp-group index) are divided into contiguous
// shards.  Each epoch [start, end) — always bounded by the next core-
// domain tick, so never longer than SmConfig::core_clock_ratio cycles —
// runs in three strictly ordered stages:
//
//   1. front end (main thread, before advance()): if `start` is a core
//      tick, the simulator runs the SMs and the crossbar exactly as the
//      serial core would;
//   2. shards (worker pool): each shard advances its partitions through
//      the whole epoch — tick_core at the core tick, then tick_dram for
//      every cycle — recording all cross-shard effects (tracker events,
//      obs events, coordination broadcasts) into per-partition
//      ShardEffectBuffers, and applying the coordination deliveries that
//      fall due inside the epoch to its own controllers;
//   3. merge (main thread): replay the buffered effects into the real
//      InstrTracker / ObsHub / CoordinationNetwork in (cycle, phase,
//      partition, record) order — the exact call order of the serial
//      per-cycle loop — then return to the simulator for boundary work
//      (audits, sampling, fast-forward).
//
// Why the partitions may run the whole epoch unsynchronized: within an
// epoch nothing flows *between* partitions.  The crossbar hand-off is
// per-partition FIFOs written only by the main-thread front end (stage 1
// precedes stage 2); coordination messages have a delivery latency of at
// least core_clock_ratio cycles (checked by the simulator before it
// enables sharding), so a broadcast sent inside an epoch is never due
// inside it — collect_due() at epoch start sees every delivery the epoch
// needs.  Everything else a partition touches, it owns.
//
// Determinism contract: artifacts are byte-identical to the serial core
// for any shard count and any worker-thread count, because the merge
// order depends only on (cycle, phase, partition) — never on shard
// boundaries or thread scheduling.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "common/types.hpp"
#include "core/coordination.hpp"
#include "par/shard_buffer.hpp"
#include "par/worker_pool.hpp"

namespace latdiv {
class Partition;
}

namespace latdiv::par {

class ShardEngine {
 public:
  /// `shards` is clamped to [1, partitions].  Worker threads are chosen
  /// by pick_worker_threads() — a pure execution policy that never
  /// affects artifacts.
  ShardEngine(std::uint32_t partitions, std::uint32_t shards);

  /// Per-partition effect buffer; partitions bind their controller-side
  /// sinks (TrackerSink, obs::McEventSink, channel command observer) to
  /// this at construction.
  [[nodiscard]] ShardEffectBuffer* buffer(std::size_t partition) {
    return &buffers_[partition];
  }

  /// Late-bind the simulation's shared consumers (the simulator
  /// constructs partitions and the coordination network after the
  /// engine).  `hub` may be null when observability is off.
  void bind(std::vector<Partition*> partitions, CoordinationNetwork* coord,
            TrackerSink* tracker, obs::McEventSink* hub);

  /// Advance every partition over [start, end); `core_tick` is whether
  /// `start` is a core-domain tick (the front end has already run it).
  void advance(Cycle start, Cycle end, bool core_tick);

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  [[nodiscard]] unsigned worker_threads() const noexcept {
    return pool_->workers();
  }

 private:
  void run_shard(std::size_t s, Cycle start, Cycle end, bool core_tick);
  void merge(Cycle start, Cycle end, bool core_tick);

  struct Range {
    std::uint32_t first;
    std::uint32_t last;  ///< exclusive
  };

  std::uint32_t shards_;
  std::vector<Range> ranges_;  ///< partition range per shard
  std::vector<ShardEffectBuffer> buffers_;
  std::unique_ptr<WorkerPool> pool_;

  // Bound once on the main thread before any worker exists and never
  // reassigned; each worker dereferences only the partitions of its own
  // range, and coord_/tracker_/hub_ are touched only from the main
  // thread's merge.
  std::vector<Partition*> partitions_;  // lint: shard-boundary-ok
  CoordinationNetwork* coord_ LATDIV_SHARD_LOCAL = nullptr;
  TrackerSink* tracker_ LATDIV_SHARD_LOCAL = nullptr;
  obs::McEventSink* hub_ LATDIV_SHARD_LOCAL = nullptr;

  /// Deliveries falling due inside the current epoch (FIFO).  Filled by
  /// the main thread before the shards start, read-only inside the epoch.
  std::vector<CoordinationNetwork::Pending> deliveries_;
};

}  // namespace latdiv::par
