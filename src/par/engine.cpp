#include "par/engine.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "gpu/partition.hpp"

namespace latdiv::par {

ShardEngine::ShardEngine(std::uint32_t partitions, std::uint32_t shards)
    : shards_(std::clamp<std::uint32_t>(shards, 1, partitions)),
      buffers_(partitions),
      pool_(std::make_unique<WorkerPool>(pick_worker_threads(shards_))) {
  // Contiguous, balanced ranges: channel locality within a shard, and a
  // fixed partition->shard map for any given (partitions, shards) pair.
  const std::uint32_t base = partitions / shards_;
  const std::uint32_t rem = partitions % shards_;
  std::uint32_t next = 0;
  ranges_.reserve(shards_);
  for (std::uint32_t s = 0; s < shards_; ++s) {
    const std::uint32_t len = base + (s < rem ? 1 : 0);
    ranges_.push_back(Range{next, next + len});
    next += len;
  }
  LATDIV_DCHECK(next == partitions, "shard ranges must cover partitions");
}

void ShardEngine::bind(std::vector<Partition*> partitions,
                       CoordinationNetwork* coord, TrackerSink* tracker,
                       obs::McEventSink* hub) {
  LATDIV_ASSERT(partitions.size() == buffers_.size(),
                "engine bound to a different partition count");
  partitions_ = std::move(partitions);
  coord_ = coord;
  tracker_ = tracker;
  hub_ = hub;
}

void ShardEngine::advance(Cycle start, Cycle end, bool core_tick) {
  LATDIV_DCHECK(end > start, "empty epoch");
  deliveries_.clear();
  coord_->collect_due(start, end, deliveries_);

  pool_->run(shards_, [this, start, end, core_tick](std::size_t s) {
    run_shard(s, start, end, core_tick);
  });

  merge(start, end, core_tick);
}

void ShardEngine::run_shard(std::size_t s, Cycle start, Cycle end,
                            bool core_tick) {
  const Range range = ranges_[s];
  for (std::uint32_t p = range.first; p < range.last; ++p) {
    Partition& part = *partitions_[p];
    ShardEffectBuffer& buf = buffers_[p];
    if (core_tick) {
      buf.begin(start, Phase::kCore);
      part.tick_core(start);
    }
    for (Cycle t = start; t < end; ++t) {
      buf.begin(t, Phase::kDram);
      part.tick_dram(t);
      // Broadcasts drained here instead of by CoordinationNetwork::tick;
      // the merge enqueues them in the same controller order.
      std::vector<CoordMsg>& outbox = part.mc().outbox();
      for (const CoordMsg& msg : outbox) buf.coord_send(t, msg);
      outbox.clear();
      // Deliveries due this cycle (sent >= one epoch ago; the latency
      // floor guarantees nothing sent above is due below).  Serial order:
      // tick(t) delivers after all controllers ticked at t.
      for (const CoordinationNetwork::Pending& pd : deliveries_) {
        if (pd.due == t && pd.msg.source != part.id()) {
          part.mc().deliver_coordination(pd.msg, t);
        }
      }
    }
  }
}

void ShardEngine::merge(Cycle start, Cycle end, bool core_tick) {
  const std::size_t n = buffers_.size();
  for (Cycle t = start; t < end; ++t) {
    if (t == start && core_tick) {
      for (std::size_t p = 0; p < n; ++p) {
        buffers_[p].replay(t, Phase::kCore, hub_, *tracker_);
      }
    }
    for (std::size_t p = 0; p < n; ++p) {
      buffers_[p].replay(t, Phase::kDram, hub_, *tracker_);
    }
    for (std::size_t p = 0; p < n; ++p) {
      while (const CoordMsg* msg = buffers_[p].pop_send(t)) {
        coord_->enqueue(*msg, t);
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) buffers_[p].clear();
}

}  // namespace latdiv::par
