// Persistent worker pool for the channel-sharded simulation core.
//
// One pool per sharded Simulator.  Each epoch the simulator calls run():
// worker threads plus the calling (main) thread claim shard indices from a
// shared atomic counter and execute the epoch task for each; run() returns
// when every index is done.  Two condition variables give one wake/sleep
// round trip per epoch.
//
// Waits are *blocking*, never spinning: a simulation point may be
// oversubscribed (more shards than cores, TSan CI forcing 6 threads on a
// 2-core runner, or many sharded points inside a --jobs sweep), and a
// spin barrier would turn every oversubscribed epoch into a scheduler
// fight.  With zero worker threads the pool degrades to a plain serial
// loop on the caller — the same code path the determinism tests compare
// against, with no threads created at all.
//
// Determinism: the pool imposes *no* ordering on task execution, and does
// not need to — shard effects are buffered per partition and replayed in
// a fixed order by the merge (see engine.hpp), so artifacts are identical
// for any worker count, including zero.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/annotations.hpp"

namespace latdiv::par {

class WorkerPool {
 public:
  using Task = std::function<void(std::size_t)>;

  /// Spawn `workers` persistent threads (0 = serial fallback).
  explicit WorkerPool(unsigned workers);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Run fn(i) for every i in [0, tasks).  The calling thread
  /// participates; returns once all indices have completed.  The
  /// completed work of every task happens-before the return (the join is
  /// a full synchronization point — the merge may read shard state
  /// without locks afterwards).
  void run(std::size_t tasks, const Task& fn);

  [[nodiscard]] unsigned workers() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> threads_;

  // condition_variable_any: latdiv::Mutex is BasicLockable but not a
  // std::mutex, which is what plain condition_variable requires.
  latdiv::Mutex mu_;
  std::condition_variable_any cv_start_;
  std::condition_variable_any cv_done_;
  std::uint64_t generation_ LATDIV_GUARDED_BY(mu_) = 0;
  std::size_t tasks_ LATDIV_GUARDED_BY(mu_) = 0;
  /// Current epoch's task; only valid for the generation published with
  /// it.  Set under mu_ before the start broadcast, cleared after join.
  const Task* fn_ LATDIV_GUARDED_BY(mu_) = nullptr;
  /// Workers that have not yet finished the current generation.
  std::size_t busy_ LATDIV_GUARDED_BY(mu_) = 0;
  bool stop_ LATDIV_GUARDED_BY(mu_) = false;

  /// Next unclaimed task index (shared work-stealing counter; claiming is
  /// lock-free so an idle worker never blocks a busy one).
  std::atomic<std::size_t> next_task_{0};
};

/// Worker-thread count for a run with `shards` logical shards: the
/// LATDIV_SHARD_THREADS env var when set (clamped to [1, shards]; 0 or
/// invalid = auto), else min(shards, hardware_concurrency).  Logical
/// shard count is a determinism-contract parameter; thread count is pure
/// execution policy — artifacts never depend on it.
[[nodiscard]] unsigned pick_worker_threads(unsigned shards);

}  // namespace latdiv::par
