// The microkernel models behind make_scenario().  Each class emits the
// characteristic access structure documented in scenario.hpp; all of
// them share the KernelBase issue machinery (per-warp Rng + integer
// per-mille accumulator that enforces mem_instr_frac exactly).
#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "ckpt/archive.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "scenario/scenario.hpp"
#include "workload/instr.hpp"

namespace latdiv::scenario {

namespace {

constexpr std::uint64_t kLineBytes = 128;
constexpr std::uint64_t kRowLines = 16;  // 2048B DRAM row / 128B line

/// SplitMix64 finalizer — the "next pointer" hash of the chase chains.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shared machinery: per-warp state, the compute/memory mix, latency
/// draws.  Subclasses implement memory_instr() only.
class KernelBase : public InstrSource {
 public:
  KernelBase(const ScenarioParams& p, std::uint32_t sms,
             std::uint32_t warps_per_sm, std::uint64_t seed)
      : params_(p),
        warps_per_sm_(warps_per_sm),
        total_warps_(std::uint64_t{sms} * warps_per_sm),
        footprint_lines_(std::max<std::uint64_t>(
            p.footprint_bytes / kLineBytes, 3 * 1024)),
        mem_per_mille_(static_cast<std::uint32_t>(
            std::clamp(p.mem_instr_frac, 0.001, 1.0) * 1000.0 + 0.5)) {
    LATDIV_ASSERT(sms > 0 && warps_per_sm > 0, "empty GPU");
    warps_.reserve(total_warps_);
    for (std::uint64_t i = 0; i < total_warps_; ++i) {
      // Same per-warp seeding scheme as WorkloadGenerator: streams are a
      // function of the warp id, never of warp interleaving order.
      warps_.emplace_back(seed * 0x9e3779b97f4a7c15ULL + i + 1);
    }
  }

  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) final {
    const std::size_t g = std::size_t{sm} * warps_per_sm_ + warp;
    LATDIV_ASSERT(g < warps_.size(), "warp index out of range");
    Warp& w = warps_[g];
    w.credit += mem_per_mille_;
    if (w.credit < 1000) {
      WarpInstr instr;
      instr.kind = WarpInstr::Kind::kCompute;
      instr.latency = static_cast<std::uint32_t>(w.rng.geometric(
          std::max<std::uint32_t>(params_.compute_latency_mean, 1), 64));
      return instr;
    }
    w.credit -= 1000;
    return memory_instr(w, g);
  }

  // Snapshot hooks (src/ckpt): the per-warp state below is the only
  // mutable state any kernel has (PowerLawRows' Zipf table is a pure
  // function of the params, rebuilt at construction), so one
  // implementation covers all six kernels.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void ckpt_save(ckpt::CkptWriter& ar) const override {
    const_cast<KernelBase*>(this)->warps_io(ar);  // writer never mutates
  }
  void ckpt_load(ckpt::CkptReader& ar) override { warps_io(ar); }

 protected:
  struct Warp {
    Rng rng;
    std::uint64_t iter = 0;    ///< kernel-grid iteration counter
    std::uint64_t cursor = 0;  ///< kernel-specific running position
    std::uint32_t credit = 0;  ///< memory-issue accumulator (per mille)
    std::uint32_t op = 0;      ///< position in the kernel's op cycle
    std::array<std::uint64_t, kWarpLanes> lane_state{};
    bool init = false;
    explicit Warp(std::uint64_t seed) : rng(seed) {}
  };

  [[nodiscard]] virtual WarpInstr memory_instr(Warp& w, std::uint64_t g) = 0;

  template <class Ar>
  void warps_io(Ar& ar) {
    std::uint64_t n = warps_.size();
    ar.u64(n);
    if (n != warps_.size()) {
      throw ckpt::CkptError(
          "snapshot kernel warp count does not match the configured GPU");
    }
    for (Warp& w : warps_) {
      w.rng.ckpt_io(ar);
      ar.u64(w.iter);
      ar.u64(w.cursor);
      ar.u32(w.credit);
      ar.u32(w.op);
      for (auto& lane : w.lane_state) ar.u64(lane);
      ar.b(w.init);
    }
  }

  /// Byte address of `line` (wrapped into the footprint) with a per-lane
  /// 4B subword offset, matching the generator's address shape.
  [[nodiscard]] Addr line_addr(std::uint64_t line, std::uint32_t lane) const {
    return (line % footprint_lines_) * kLineBytes + (lane * 4) % kLineBytes;
  }

  ScenarioParams params_;
  std::uint32_t warps_per_sm_;
  std::uint64_t total_warps_;
  std::uint64_t footprint_lines_;
  std::uint32_t mem_per_mille_;
  std::vector<Warp> warps_;
};

// ---------------------------------------------------------------------------

/// c[i] = a[i] + b[i] with a pathological lane-to-address mapping: lane
/// l of element block e touches line e*32*S + l*S, so every access is 32
/// distinct lines S lines apart.  Op cycle per block: load a, load b,
/// store c in three same-sized regions.
class VecAddUncoalesced final : public KernelBase {
 public:
  using KernelBase::KernelBase;

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t g) override {
    const std::uint64_t region = footprint_lines_ / 3;
    const std::uint64_t stride = std::max(params_.stride_lines, 1u);
    const std::uint64_t elem = g + w.iter * total_warps_;
    WarpInstr instr;
    instr.kind = w.op == 2 ? WarpInstr::Kind::kStore : WarpInstr::Kind::kLoad;
    instr.active_lanes = kWarpLanes;
    const std::uint64_t base = elem * kWarpLanes * stride;
    const std::uint64_t region_start = w.op * region;
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
      const std::uint64_t line = region_start + (base + lane * stride) % region;
      instr.lane_addr[lane] = line_addr(line, lane);
    }
    if (++w.op == 3) {
      w.op = 0;
      ++w.iter;
    }
    return instr;
  }
};

/// Stream compaction: coalesced input loads, then a store whose active
/// lane count is data-dependent (each lane survives with p = threshold)
/// and whose packed destination drifts across line boundaries.
class ThresholdCompact final : public KernelBase {
 public:
  using KernelBase::KernelBase;

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t g) override {
    const std::uint64_t in_region = footprint_lines_ / 2;
    const std::uint64_t out_region = footprint_lines_ - in_region;
    WarpInstr instr;
    if (w.op == 0) {
      // Input block: 32 lanes packed into two consecutive lines.
      const std::uint64_t base = ((g + w.iter * total_warps_) * 2) % in_region;
      instr.kind = WarpInstr::Kind::kLoad;
      instr.active_lanes = kWarpLanes;
      for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
        instr.lane_addr[lane] = line_addr(base + lane / 16, lane);
      }
      w.op = 1;
      return instr;
    }
    // Compacted output: k surviving lanes write consecutive 8B slots at
    // the warp's private output cursor (16 slots per line, so the write
    // footprint wanders over 1-3 lines and is rarely line-aligned).
    std::uint32_t k = 0;
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
      if (w.rng.chance(params_.threshold)) ++k;
    }
    k = std::max(k, 1u);  // an empty store would be a no-op instruction
    instr.kind = WarpInstr::Kind::kStore;
    instr.active_lanes = static_cast<std::uint8_t>(k);
    for (std::uint32_t j = 0; j < k; ++j) {
      const std::uint64_t slot = w.cursor + j;
      const std::uint64_t line = in_region + (slot / 16) % out_region;
      instr.lane_addr[j] =
          (line % footprint_lines_) * kLineBytes + (slot % 16) * 8;
    }
    w.cursor += k;
    w.op = 0;
    ++w.iter;
    return instr;
  }
};

/// Tiled framebuffer blit: a divergent texture gather, then two stores
/// painting the warp's tile.  Lanes of one store share scanlines (good
/// coalescing) but the scanlines sit fb_width_lines apart (row spread).
class Framebuffer final : public KernelBase {
 public:
  using KernelBase::KernelBase;

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t g) override {
    const std::uint64_t width = std::max(params_.fb_width_lines, 8u);
    const std::uint64_t tile_rows = std::max(params_.tile, 2u);
    const std::uint64_t fb_lines = footprint_lines_ / 2;
    const std::uint64_t tex_lines = footprint_lines_ - fb_lines;
    const std::uint64_t rows = std::max<std::uint64_t>(fb_lines / width, tile_rows);
    const std::uint64_t tiles_x = std::max<std::uint64_t>(width / 4, 1);
    const std::uint64_t tiles_y = std::max<std::uint64_t>(rows / tile_rows, 1);
    const std::uint64_t t = g + w.iter * total_warps_;
    const std::uint64_t tx = t % tiles_x;
    const std::uint64_t ty = (t / tiles_x) % tiles_y;

    WarpInstr instr;
    instr.active_lanes = kWarpLanes;
    if (w.op == 0) {
      // Texture gather: each lane samples an unpredictable texel line.
      instr.kind = WarpInstr::Kind::kLoad;
      for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
        instr.lane_addr[lane] =
            line_addr(fb_lines + w.rng.below(tex_lines), lane);
      }
      w.op = 1;
      return instr;
    }
    // Paint half the tile: 4 scanline rows x 4 line columns, 2 lanes per
    // line (upper half on op 1, lower half on op 2).
    const std::uint64_t half = w.op - 1;
    instr.kind = WarpInstr::Kind::kStore;
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
      const std::uint64_t row =
          ty * tile_rows + half * (tile_rows / 2) + lane / 8;
      const std::uint64_t col = tx * 4 + (lane % 8) / 2;
      instr.lane_addr[lane] = line_addr((row % rows) * width + col, lane);
    }
    if (++w.op == 3) {
      w.op = 0;
      ++w.iter;
    }
    return instr;
  }
};

/// Independent hash-chain walks: chase_lanes lanes each follow their own
/// pointer chain, so every load gathers that many unrelated lines.
class PointerChase final : public KernelBase {
 public:
  using KernelBase::KernelBase;

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t /*g*/) override {
    const auto lanes = static_cast<std::uint8_t>(
        std::clamp<std::uint32_t>(params_.chase_lanes, 1, kWarpLanes));
    if (!w.init) {
      for (std::uint32_t l = 0; l < kWarpLanes; ++l) {
        w.lane_state[l] = w.rng.next();
      }
      w.init = true;
    }
    WarpInstr instr;
    instr.kind = WarpInstr::Kind::kLoad;
    instr.active_lanes = lanes;
    for (std::uint32_t l = 0; l < lanes; ++l) {
      w.lane_state[l] = mix64(w.lane_state[l]);
      instr.lane_addr[l] = line_addr(w.lane_state[l] % footprint_lines_, l);
    }
    ++w.iter;
    return instr;
  }
};

/// Alternates streaming (contiguous, coalesced) and divergent (random
/// gather) behaviour every phase_len memory instructions.
class PhaseShift final : public KernelBase {
 public:
  using KernelBase::KernelBase;

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t g) override {
    const std::uint64_t phase_len = std::max(params_.phase_len, 1u);
    const bool divergent = (w.iter / phase_len) % 2 == 1;
    WarpInstr instr;
    instr.kind = w.iter % 4 == 3 ? WarpInstr::Kind::kStore
                                 : WarpInstr::Kind::kLoad;
    instr.active_lanes = kWarpLanes;
    if (divergent) {
      for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
        instr.lane_addr[lane] =
            line_addr(w.rng.below(footprint_lines_), lane);
      }
    } else {
      // Streaming phase: the warp sweeps its private contiguous segment
      // two lines per access (16 lanes per line).
      const std::uint64_t seg =
          std::max<std::uint64_t>(footprint_lines_ / total_warps_, 64);
      const std::uint64_t base = footprint_lines_ * g / total_warps_;
      const std::uint64_t line = base + w.cursor % seg;
      w.cursor += 2;
      for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
        instr.lane_addr[lane] = line_addr(line + lane / 16, lane);
      }
    }
    ++w.iter;
    return instr;
  }
};

/// Zipf-skewed row popularity: lanes mostly hit a few hot 2KB rows (deep
/// same-row queues for a row-hit-seeking scheduler to exploit), with a
/// uniform cold tail over the whole footprint.
class PowerLawRows final : public KernelBase {
 public:
  PowerLawRows(const ScenarioParams& p, std::uint32_t sms,
               std::uint32_t warps_per_sm, std::uint64_t seed)
      : KernelBase(p, sms, warps_per_sm, seed) {
    const std::uint32_t rows = std::max(params_.hot_rows, 1u);
    const double s = std::max(params_.zipf_s, 0.0);
    cum_.reserve(rows);
    std::uint64_t sum = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
      // Integer-scaled Zipf weights: exact cumulative table, no float
      // accumulation at issue time.
      const auto weight = std::max<std::uint64_t>(
          static_cast<std::uint64_t>(1e9 * std::pow(r + 1.0, -s)), 1);
      sum += weight;
      cum_.push_back(sum);
    }
  }

 private:
  WarpInstr memory_instr(Warp& w, std::uint64_t /*g*/) override {
    WarpInstr instr;
    instr.kind = w.rng.chance(0.125) ? WarpInstr::Kind::kStore
                                     : WarpInstr::Kind::kLoad;
    instr.active_lanes = kWarpLanes;
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
      std::uint64_t line;
      if (w.rng.chance(0.1)) {
        line = w.rng.below(footprint_lines_);  // cold tail
      } else {
        const std::uint64_t pick = w.rng.below(cum_.back());
        const auto row = static_cast<std::uint64_t>(
            std::lower_bound(cum_.begin(), cum_.end(), pick + 1) -
            cum_.begin());
        line = row * kRowLines + w.rng.below(kRowLines);
      }
      instr.lane_addr[lane] = line_addr(line, lane);
    }
    ++w.iter;
    return instr;
  }

  std::vector<std::uint64_t> cum_;  ///< cumulative Zipf weights (const)
};

}  // namespace

std::unique_ptr<InstrSource> make_scenario(const ScenarioSpec& spec,
                                           std::uint32_t sms,
                                           std::uint32_t warps_per_sm,
                                           std::uint64_t seed) {
  switch (spec.kind) {
    case ScenarioKind::kVecAddUncoalesced:
      return std::make_unique<VecAddUncoalesced>(spec.params, sms,
                                                 warps_per_sm, seed);
    case ScenarioKind::kThresholdCompact:
      return std::make_unique<ThresholdCompact>(spec.params, sms,
                                                warps_per_sm, seed);
    case ScenarioKind::kFramebuffer:
      return std::make_unique<Framebuffer>(spec.params, sms, warps_per_sm,
                                           seed);
    case ScenarioKind::kPointerChase:
      return std::make_unique<PointerChase>(spec.params, sms, warps_per_sm,
                                            seed);
    case ScenarioKind::kPhaseShift:
      return std::make_unique<PhaseShift>(spec.params, sms, warps_per_sm,
                                          seed);
    case ScenarioKind::kPowerLawRows:
      return std::make_unique<PowerLawRows>(spec.params, sms, warps_per_sm,
                                            seed);
  }
  LATDIV_UNREACHABLE("bad ScenarioKind");
}

}  // namespace latdiv::scenario
