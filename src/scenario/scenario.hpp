// Scenario microkernel library: the simulator's second workload frontend.
//
// The statistical generator (workload/generator.hpp) reproduces the
// paper's Table III *statistics*; the scenarios here model the *access
// structure* of concrete GPGPU kernels instead — loop shapes, array
// layouts, pointer chains — so the scheduler comparison is validated
// against request streams the profile knobs cannot express (grid-stride
// strided vector ops, stream compaction with data-dependent store sizes,
// tiled framebuffer writes, hash-chain pointer chasing, phase-alternating
// kernels, and power-law row popularity).
//
// Every scenario emits a deterministic per-warp instruction stream
// through the InstrSource interface.  Determinism contract (shared with
// the generator): all state is strictly per-warp — each warp owns its
// own Rng and cursors, nothing is keyed by call order — so the stream a
// warp sees is a pure function of (spec, geometry, seed, warp id), no
// matter how the simulator interleaves warps.  This is what makes
// byte-identical sweep artifacts across --jobs and fast-forward on/off
// possible, and what makes a recorded trace of a scenario equal the
// scenario itself.
//
// Scenarios plug into a simulation through SimConfig::instr_source:
//
//   const ScenarioSpec& spec = scenario_by_name("pointer-chase");
//   cfg.instr_source = [&spec](std::uint32_t sms, std::uint32_t warps,
//                              std::uint64_t seed) {
//     return make_scenario(spec, sms, warps, seed);
//   };
//
// or are captured to a portable v2 trace with tools/latdiv-tracegen and
// replayed anywhere.  The `kernels` sweep manifest (src/exp/manifest.cpp)
// evaluates every scheduler policy across this catalogue.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/instr_source.hpp"

namespace latdiv::scenario {

enum class ScenarioKind : std::uint8_t {
  /// Grid-stride vector add where each lane strides `stride_lines` lines
  /// from its neighbour: every load/store splits into 32 distinct lines
  /// spread across many DRAM rows (worst-case uncoalesced SIMT access).
  kVecAddUncoalesced,
  /// Stream compaction: coalesced input loads, then data-dependent
  /// stores — only the lanes whose element passes `threshold` write, and
  /// the packed output cursor drifts across line boundaries.
  kThresholdCompact,
  /// Store-heavy tiled framebuffer blit: each warp owns a 2D tile per
  /// iteration, writing tile rows that are `fb_width_lines` lines apart
  /// (same-row locality within a tile row, row conflicts across them),
  /// plus a divergent texture-gather load.
  kFramebuffer,
  /// `chase_lanes` independent hash-chain walks: every load is a 32-way
  /// (or narrower) gather of pseudo-random lines — maximum latency
  /// divergence, near-zero row locality, the paper's adversarial case.
  kPointerChase,
  /// Alternates between a streaming phase (contiguous coalesced lines)
  /// and a divergent phase (random gathers) every `phase_len` memory
  /// instructions, so schedulers see abrupt behaviour changes instead of
  /// a stationary mixture.
  kPhaseShift,
  /// Zipf-distributed row popularity over `hot_rows` 2 KB DRAM rows:
  /// most lanes hit a few hot rows (deep same-row queues), the tail
  /// scatters — the skewed reuse of graph frontiers and hash tables.
  kPowerLawRows,
};

/// Tuning knobs.  The first block applies to every kernel; the rest are
/// kind-specific (unused knobs are ignored by the other kernels).
struct ScenarioParams {
  std::uint64_t footprint_bytes = 64ull << 20;
  /// Long-run fraction of issued instructions that touch memory
  /// (enforced exactly via an integer per-mille accumulator).
  double mem_instr_frac = 0.4;
  std::uint32_t compute_latency_mean = 12;

  std::uint32_t stride_lines = 32;    ///< VecAddUncoalesced: lane stride
  double threshold = 0.35;            ///< ThresholdCompact: survivor frac
  std::uint32_t fb_width_lines = 256; ///< Framebuffer: scanline width
  std::uint32_t tile = 8;             ///< Framebuffer: tile rows
  std::uint32_t chase_lanes = 32;     ///< PointerChase: parallel chains
  std::uint32_t phase_len = 96;       ///< PhaseShift: mem instrs per phase
  double zipf_s = 1.2;                ///< PowerLawRows: skew exponent
  std::uint32_t hot_rows = 64;        ///< PowerLawRows: hot-row population
};

struct ScenarioSpec {
  std::string name;     ///< stable CLI / manifest identifier
  ScenarioKind kind = ScenarioKind::kVecAddUncoalesced;
  ScenarioParams params;
  std::string summary;  ///< one-line description for --list output
};

/// The built-in scenario library, in stable presentation order.
[[nodiscard]] const std::vector<ScenarioSpec>& scenario_catalog();

/// Lookup by ScenarioSpec::name; throws std::invalid_argument listing
/// the valid names when not found.
[[nodiscard]] const ScenarioSpec& scenario_by_name(const std::string& name);

/// Instantiate the microkernel for a GPU geometry.  The returned source
/// never exhausts (scenarios iterate their kernel grid indefinitely).
[[nodiscard]] std::unique_ptr<InstrSource> make_scenario(
    const ScenarioSpec& spec, std::uint32_t sms, std::uint32_t warps_per_sm,
    std::uint64_t seed);

}  // namespace latdiv::scenario
