// The built-in scenario library.  Parameter choices aim for distinct,
// recognisable pressure profiles rather than calibration to any one
// device — the statistical generator covers the paper's Table III
// workloads; these cover access *structures* it cannot express.
#include <stdexcept>

#include "scenario/scenario.hpp"

namespace latdiv::scenario {

const std::vector<ScenarioSpec>& scenario_catalog() {
  static const std::vector<ScenarioSpec> kCatalog = [] {
    std::vector<ScenarioSpec> specs;

    {
      ScenarioSpec s;
      s.name = "vecadd-uncoal";
      s.kind = ScenarioKind::kVecAddUncoalesced;
      s.params.mem_instr_frac = 0.5;
      s.params.stride_lines = 32;
      s.summary =
          "grid-stride vector add, every access 32 lines spread over many "
          "rows (fully uncoalesced)";
      specs.push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "threshold-compact";
      s.kind = ScenarioKind::kThresholdCompact;
      s.params.mem_instr_frac = 0.45;
      s.params.threshold = 0.35;
      s.summary =
          "stream compaction: coalesced loads, data-dependent store sizes "
          "at a drifting packed cursor";
      specs.push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "framebuffer";
      s.kind = ScenarioKind::kFramebuffer;
      s.params.mem_instr_frac = 0.5;
      s.params.fb_width_lines = 256;
      s.params.tile = 8;
      s.summary =
          "store-heavy tiled blit: scanline-coalesced writes one image "
          "row apart, plus divergent texture gathers";
      specs.push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "pointer-chase";
      s.kind = ScenarioKind::kPointerChase;
      s.params.mem_instr_frac = 0.35;
      s.params.compute_latency_mean = 20;
      s.params.chase_lanes = 32;
      s.summary =
          "32 independent hash-chain walks per warp: every load a full "
          "random gather (maximum latency divergence)";
      specs.push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "phase-shift";
      s.kind = ScenarioKind::kPhaseShift;
      s.params.mem_instr_frac = 0.45;
      s.params.phase_len = 96;
      s.summary =
          "alternates coalesced streaming and random-gather phases every "
          "96 memory instructions";
      specs.push_back(s);
    }
    {
      ScenarioSpec s;
      s.name = "powerlaw-rows";
      s.kind = ScenarioKind::kPowerLawRows;
      s.params.mem_instr_frac = 0.4;
      s.params.zipf_s = 1.2;
      s.params.hot_rows = 64;
      s.summary =
          "Zipf row popularity over 64 hot DRAM rows with a uniform cold "
          "tail (graph-frontier reuse skew)";
      specs.push_back(s);
    }

    return specs;
  }();
  return kCatalog;
}

const ScenarioSpec& scenario_by_name(const std::string& name) {
  for (const ScenarioSpec& spec : scenario_catalog()) {
    if (spec.name == name) return spec;
  }
  std::string valid;
  for (const ScenarioSpec& spec : scenario_catalog()) {
    if (!valid.empty()) valid += ", ";
    valid += spec.name;
  }
  throw std::invalid_argument("unknown scenario '" + name +
                              "' (valid: " + valid + ")");
}

}  // namespace latdiv::scenario
