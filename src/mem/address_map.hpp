// GPU physical-address → DRAM-coordinate mapping (paper §II-C).
//
// The paper's policy, reproduced here exactly where it is specified:
//   * consecutive 128B cache lines map to the same row in the same bank;
//   * blocks of consecutive cache lines are interleaved across channels and
//     banks at a granularity of 256 bytes;
//   * the channel index is   {addr[47:11] : (addr[10:8] XOR addr[13:11])} % 6
//     (the XOR prevents "channel camping" by strided access patterns);
//   * the bank index is XOR-permuted with higher-order cache-set-index bits
//     (Zhang et al., MICRO 2000) to prevent bank camping.
//
// Field layout of a byte address (kLineBytes = 128, kRowBytes = 2048):
//   [6:0]    byte within cache line
//   [7]      line within 256B interleave granule
//   [10:8]   granule bits — folded into the channel hash
//   [14:11]  bank bits (XORed with [18:15])
//   [31:15]  row bits
// The column index of a line within its row is bits [10:7].
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace latdiv {

/// Decoded DRAM coordinates for one cache-line request.
struct DramLoc {
  ChannelId channel = 0;
  BankId bank = 0;
  BankGroupId bank_group = 0;
  RowId row = 0;
  std::uint32_t col = 0;

  friend bool operator==(const DramLoc&, const DramLoc&) = default;
};

/// Geometry constants shared by the mapper and the DRAM model.
struct AddressMapConfig {
  std::uint32_t channels = 6;
  std::uint32_t banks_per_channel = 16;
  std::uint32_t banks_per_group = 4;
  std::uint32_t line_bytes = 128;
  /// Enable the XOR hashes (the paper's anti-camping measures).  Disabling
  /// them is used by tests and by the channel-camping ablation.
  bool xor_channel_hash = true;
  bool xor_bank_permutation = true;
};

/// Stateless mapper; construct once per simulation.
class AddressMap {
 public:
  explicit AddressMap(const AddressMapConfig& cfg);

  [[nodiscard]] DramLoc decode(Addr addr) const noexcept;

  /// Align an address down to its cache-line base.
  [[nodiscard]] Addr line_base(Addr addr) const noexcept {
    return addr & ~static_cast<Addr>(cfg_.line_bytes - 1);
  }

  [[nodiscard]] const AddressMapConfig& config() const noexcept { return cfg_; }

 private:
  AddressMapConfig cfg_;
};

}  // namespace latdiv
