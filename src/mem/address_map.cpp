#include "mem/address_map.hpp"

#include "common/log.hpp"

namespace latdiv {

AddressMap::AddressMap(const AddressMapConfig& cfg) : cfg_(cfg) {
  LATDIV_ASSERT(cfg.channels >= 1 && cfg.channels <= 255, "channel count");
  LATDIV_ASSERT(cfg.banks_per_channel > 0 &&
                    cfg.banks_per_channel % cfg.banks_per_group == 0,
                "banks must divide evenly into bank groups");
  LATDIV_ASSERT(cfg.line_bytes == 128, "model assumes 128B lines");
}

DramLoc AddressMap::decode(Addr addr) const noexcept {
  DramLoc loc;

  // Channel: {addr[47:11] : (addr[10:8] XOR addr[13:11])} % channels.
  if (cfg_.xor_channel_hash) {
    const Addr high = (addr >> 11) & ((Addr{1} << 37) - 1);  // addr[47:11]
    const Addr low3 = ((addr >> 8) & 0x7) ^ ((addr >> 11) & 0x7);
    const Addr hashed = (high << 3) | low3;
    loc.channel = static_cast<ChannelId>(hashed % cfg_.channels);
  } else {
    loc.channel = static_cast<ChannelId>((addr >> 8) % cfg_.channels);
  }

  // Bank: addr[14:11], permuted with higher-order set-index bits.
  std::uint32_t bank = static_cast<std::uint32_t>((addr >> 11) & 0xF);
  if (cfg_.xor_bank_permutation) {
    bank ^= static_cast<std::uint32_t>((addr >> 15) & 0xF);
  }
  bank %= cfg_.banks_per_channel;
  loc.bank = static_cast<BankId>(bank);
  loc.bank_group = static_cast<BankGroupId>(bank / cfg_.banks_per_group);

  loc.row = static_cast<RowId>((addr >> 15) & 0x1FFFF);  // addr[31:15]
  loc.col = static_cast<std::uint32_t>((addr >> 7) & 0xF);
  return loc;
}

}  // namespace latdiv
