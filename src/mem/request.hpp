// The memory request — the unit that flows from coalescer to DRAM and back.
//
// One SIMT vector load produces up to 32 of these after coalescing; the
// subset landing in one memory controller is that controller's *warp-group*
// for the instruction.  Requests carry timestamps at each pipeline point so
// the sim layer can attribute latency and compute the paper's divergence
// metrics (gap between first and last service within a warp instruction).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "mem/address_map.hpp"

namespace latdiv {

enum class ReqKind : std::uint8_t { kRead, kWrite };

/// How the request's first DRAM command found its bank's row buffer
/// (classified by the command scheduler when the request reaches the head
/// of its bank queue): hit = row already open, miss = bank precharged,
/// conflict = another row open (PRE + ACT required).
enum class RowOutcome : std::uint8_t { kNone, kHit, kMiss, kConflict };

struct MemRequest {
  Addr addr = 0;          ///< cache-line-aligned byte address
  ReqKind kind = ReqKind::kRead;
  WarpTag tag;            ///< owning <SM, warp, dynamic-instruction>
  DramLoc loc;            ///< decoded DRAM coordinates

  /// Number of coalesced requests the owning instruction produced in
  /// total (all channels).  Lets a controller know warp-group sizes and
  /// lets stats normalise per-instruction.
  std::uint16_t reqs_in_instr = 1;

  /// True on the last request of this instruction's warp-group *for the
  /// destination controller* (paper §IV-B2: the interconnect preserves
  /// per-SM order, so tagging the last request tells the controller when
  /// the warp-group is fully formed).
  bool last_of_group_at_mc = false;

  /// Row-buffer outcome at the head of the bank command queue.
  RowOutcome row_outcome = RowOutcome::kNone;

  // --- timestamps (global command-clock cycles) ---
  Cycle issued_by_sm = kNoCycle;   ///< left the coalescer
  Cycle arrived_at_mc = kNoCycle;  ///< entered the read/write queue
  Cycle cas_issued = kNoCycle;     ///< column command left for the DRAM
  Cycle completed = kNoCycle;      ///< data burst finished (reads) / retired
};

/// Response routed back through the interconnect to the issuing SM.
struct MemResponse {
  Addr addr = 0;
  WarpTag tag;
  Cycle completed = kNoCycle;
  std::uint16_t reqs_in_instr = 1;
};

}  // namespace latdiv
