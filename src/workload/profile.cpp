#include "workload/profile.hpp"

#include "common/log.hpp"

namespace latdiv {

namespace {

WorkloadProfile base_irregular(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  return p;
}

WorkloadProfile base_regular(std::string name) {
  WorkloadProfile p;
  p.name = std::move(name);
  p.divergent_load_frac = 0.04;
  p.divergent_lines_mean = 2.0;
  p.cluster_len_mean = 4.0;
  p.streaming_frac = 0.9;
  p.mem_instr_frac = 0.35;
  p.store_frac = 0.15;
  p.hot_frac = 0.05;
  return p;
}

}  // namespace

std::vector<WorkloadProfile> irregular_suite() {
  std::vector<WorkloadProfile> suite;

  // Rodinia: Breadth-First Search — frontier expansion; modest divergent
  // line counts, short clusters keep a warp on < 2 channels (paper Fig 10
  // discussion groups bfs with the few-controller apps).
  {
    WorkloadProfile p = base_irregular("bfs");
    p.divergent_load_frac = 0.50;
    p.divergent_lines_mean = 8.0;
    p.cluster_len_mean = 3.4;
    p.store_frac = 0.12;
    p.streaming_frac = 0.30;
    p.mem_instr_frac = 0.22;
    p.footprint_bytes = 192ULL << 20;
    p.hot_frac = 0.30;  // frontier reuse
    p.hot_bytes = 256ULL << 10;
    suite.push_back(p);
  }
  // Rodinia: CFD solver — indirect neighbour gathers over an unstructured
  // mesh; wide spread (~3.2 controllers per warp).
  {
    WorkloadProfile p = base_irregular("cfd");
    p.divergent_load_frac = 0.60;
    p.divergent_lines_mean = 11.0;
    p.cluster_len_mean = 2.2;
    p.store_frac = 0.20;
    p.hot_frac = 0.30;
    p.hot_bytes = 256ULL << 10;
    p.streaming_frac = 0.40;
    p.mem_instr_frac = 0.20;
    p.footprint_bytes = 384ULL << 20;
    suite.push_back(p);
  }
  // Rodinia: Needleman-Wunsch — diagonal wavefront; clustered accesses on
  // few channels, strongly write-intensive (Fig. 12).
  {
    WorkloadProfile p = base_irregular("nw");
    p.divergent_load_frac = 0.45;
    p.divergent_lines_mean = 6.0;
    p.cluster_len_mean = 3.6;
    p.store_frac = 0.40;
    p.streaming_frac = 0.50;
    p.mem_instr_frac = 0.25;
    p.footprint_bytes = 128ULL << 20;
    p.hot_frac = 0.35;
    p.hot_bytes = 128ULL << 10;
    suite.push_back(p);
  }
  // Rodinia: K-means — streaming points with scattered centroid updates.
  {
    WorkloadProfile p = base_irregular("kmeans");
    p.divergent_load_frac = 0.40;
    p.divergent_lines_mean = 10.0;
    p.cluster_len_mean = 2.4;
    p.store_frac = 0.10;
    p.mem_instr_frac = 0.20;
    p.streaming_frac = 0.50;
    p.footprint_bytes = 256ULL << 20;
    suite.push_back(p);
  }
  // MARS: PageViewCount — hash-table scatter/gather, bandwidth hungry.
  {
    WorkloadProfile p = base_irregular("PVC");
    p.divergent_load_frac = 0.60;
    p.divergent_lines_mean = 13.0;
    p.cluster_len_mean = 2.0;
    p.store_frac = 0.25;
    p.hot_frac = 0.30;
    p.hot_bytes = 256ULL << 10;
    p.streaming_frac = 0.35;
    p.mem_instr_frac = 0.24;
    p.footprint_bytes = 320ULL << 20;
    suite.push_back(p);
  }
  // MARS: SimilarityScore — pairwise scoring, write-intensive, clustered.
  {
    WorkloadProfile p = base_irregular("SS");
    p.divergent_load_frac = 0.55;
    p.divergent_lines_mean = 8.0;
    p.cluster_len_mean = 3.4;
    p.store_frac = 0.35;
    p.hot_frac = 0.30;
    p.hot_bytes = 128ULL << 10;
    p.streaming_frac = 0.40;
    p.mem_instr_frac = 0.23;
    p.footprint_bytes = 192ULL << 20;
    suite.push_back(p);
  }
  // LonestarGPU: Survey Propagation — random factor-graph walks.
  {
    WorkloadProfile p = base_irregular("sp");
    p.divergent_load_frac = 0.60;
    p.divergent_lines_mean = 11.0;
    p.cluster_len_mean = 2.0;
    p.store_frac = 0.10;
    p.streaming_frac = 0.30;
    p.mem_instr_frac = 0.21;
    p.hot_frac = 0.30;
    p.hot_bytes = 256ULL << 10;
    p.footprint_bytes = 256ULL << 20;
    suite.push_back(p);
  }
  // LonestarGPU: Barnes-Hut — irregular oct-tree walks with a hot root.
  {
    WorkloadProfile p = base_irregular("bh");
    p.divergent_load_frac = 0.60;
    p.divergent_lines_mean = 10.0;
    p.cluster_len_mean = 2.2;
    p.store_frac = 0.15;
    p.streaming_frac = 0.30;
    p.mem_instr_frac = 0.21;
    p.footprint_bytes = 256ULL << 20;
    p.hot_frac = 0.40;  // upper tree levels shared by all warps
    p.hot_bytes = 128ULL << 10;
    suite.push_back(p);
  }
  // LonestarGPU: Single-Source Shortest Paths — worklist over CSR graph.
  {
    WorkloadProfile p = base_irregular("sssp");
    p.divergent_load_frac = 0.65;
    p.divergent_lines_mean = 13.0;
    p.cluster_len_mean = 2.0;
    p.store_frac = 0.15;
    p.streaming_frac = 0.35;
    p.mem_instr_frac = 0.22;
    p.hot_frac = 0.30;
    p.hot_bytes = 256ULL << 10;
    p.footprint_bytes = 384ULL << 20;
    suite.push_back(p);
  }
  // Parboil: SpMV — row-pointer streaming plus scattered column gathers.
  {
    WorkloadProfile p = base_irregular("spmv");
    p.divergent_load_frac = 0.70;
    p.divergent_lines_mean = 15.0;
    p.cluster_len_mean = 1.8;
    p.store_frac = 0.05;
    p.mem_instr_frac = 0.23;
    p.streaming_frac = 0.45;
    p.footprint_bytes = 448ULL << 20;
    suite.push_back(p);
  }
  // Parboil: Sum of Absolute Differences — block matching; long clusters
  // keep each warp on 1-2 channels; write-heavy result stores.
  {
    WorkloadProfile p = base_irregular("sad");
    p.divergent_load_frac = 0.50;
    p.divergent_lines_mean = 8.0;
    p.cluster_len_mean = 4.0;
    p.store_frac = 0.35;
    p.streaming_frac = 0.50;
    p.mem_instr_frac = 0.24;
    p.footprint_bytes = 128ULL << 20;
    suite.push_back(p);
  }
  return suite;
}

std::vector<WorkloadProfile> regular_suite() {
  std::vector<WorkloadProfile> suite;
  suite.push_back(base_regular("streamcluster"));
  {
    WorkloadProfile p = base_regular("srad2");
    p.mem_instr_frac = 0.24;
    p.store_frac = 0.25;
    suite.push_back(p);
  }
  {
    WorkloadProfile p = base_regular("bp");
    p.store_frac = 0.20;
    p.footprint_bytes = 128ULL << 20;
    suite.push_back(p);
  }
  {
    WorkloadProfile p = base_regular("hotspot");
    p.mem_instr_frac = 0.20;
    p.hot_frac = 0.15;
    suite.push_back(p);
  }
  {
    WorkloadProfile p = base_regular("invertedindex");
    p.divergent_load_frac = 0.10;
    p.divergent_lines_mean = 3.0;
    p.store_frac = 0.18;
    suite.push_back(p);
  }
  {
    WorkloadProfile p = base_regular("pageviewrank");
    p.divergent_load_frac = 0.08;
    p.store_frac = 0.12;
    suite.push_back(p);
  }
  return suite;
}

WorkloadProfile profile_by_name(const std::string& name) {
  for (const auto& suite : {irregular_suite(), regular_suite()}) {
    for (const WorkloadProfile& p : suite) {
      if (p.name == name) return p;
    }
  }
  LATDIV_UNREACHABLE("unknown workload profile name");
}

}  // namespace latdiv
