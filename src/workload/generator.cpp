#include "workload/generator.hpp"

#include <algorithm>

#include "ckpt/archive.hpp"
#include "common/log.hpp"

namespace latdiv {

namespace {

/// Shared save/load body: the per-warp RNG streams plus the per-SM
/// streaming cursors are the generator's entire mutable state.
template <class Ar>
void generator_io(Ar& ar, std::vector<Rng*> rngs, std::vector<Addr>& pos) {
  std::uint64_t warps = rngs.size();
  std::uint64_t sms = pos.size();
  ar.u64(warps);
  ar.u64(sms);
  if (warps != rngs.size() || sms != pos.size()) {
    throw ckpt::CkptError(
        "snapshot generator geometry does not match the configured GPU");
  }
  for (Rng* rng : rngs) rng->ckpt_io(ar);
  for (Addr& p : pos) ar.u64(p);
}

}  // namespace

void WorkloadGenerator::ckpt_save(ckpt::CkptWriter& ar) const {
  auto* self = const_cast<WorkloadGenerator*>(this);  // writer never mutates
  std::vector<Rng*> rngs;
  rngs.reserve(self->warps_.size());
  for (WarpState& ws : self->warps_) rngs.push_back(&ws.rng);
  generator_io(ar, std::move(rngs), self->sm_stream_pos_);
}

void WorkloadGenerator::ckpt_load(ckpt::CkptReader& ar) {
  std::vector<Rng*> rngs;
  rngs.reserve(warps_.size());
  for (WarpState& ws : warps_) rngs.push_back(&ws.rng);
  generator_io(ar, std::move(rngs), sm_stream_pos_);
}

namespace {
constexpr std::uint64_t kLineBytes = 128;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile& profile,
                                     std::uint32_t sms,
                                     std::uint32_t warps_per_sm,
                                     std::uint64_t seed)
    : profile_(profile), warps_per_sm_(warps_per_sm) {
  LATDIV_ASSERT(sms > 0 && warps_per_sm > 0, "empty GPU");
  footprint_lines_ = std::max<std::uint64_t>(profile.footprint_bytes / kLineBytes, 64);
  hot_lines_ = std::clamp<std::uint64_t>(profile.hot_bytes / kLineBytes, 1,
                                         footprint_lines_);
  const std::uint64_t total = std::uint64_t{sms} * warps_per_sm;
  warps_.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) {
    warps_.emplace_back(seed * 0x9e3779b97f4a7c15ULL + i + 1);
  }
  // Each SM's warps share one streaming sweep over an SM-private segment.
  sm_stream_pos_.reserve(sms);
  for (std::uint32_t s = 0; s < sms; ++s) {
    sm_stream_pos_.push_back((footprint_lines_ * s / sms) * kLineBytes);
  }
}

WorkloadGenerator::WarpState& WorkloadGenerator::state(SmId sm, WarpId warp) {
  const std::size_t idx =
      static_cast<std::size_t>(sm) * warps_per_sm_ + warp;
  LATDIV_ASSERT(idx < warps_.size(), "warp index out of range");
  return warps_[idx];
}

Addr WorkloadGenerator::random_line(Rng& rng) const {
  const std::uint64_t line = rng.chance(profile_.hot_frac)
                                 ? rng.below(hot_lines_)
                                 : rng.below(footprint_lines_);
  return line * kLineBytes;
}

Addr WorkloadGenerator::stream_line(SmId sm) {
  Addr& pos = sm_stream_pos_[sm];
  const Addr line = pos;
  pos += kLineBytes;
  if (pos >= footprint_lines_ * kLineBytes) pos = 0;
  return line;
}

void WorkloadGenerator::fill_memory_instr(WarpInstr& instr, SmId sm,
                                          WarpState& ws) {
  Rng& rng = ws.rng;
  instr.active_lanes = kWarpLanes;

  if (!rng.chance(profile_.divergent_load_frac)) {
    // Fully coalesced: all 32 lanes inside one 128B line (4B words).
    const Addr base = rng.chance(profile_.streaming_frac) ? stream_line(sm)
                                                          : random_line(rng);
    for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
      instr.lane_addr[lane] = base + lane * 4;
    }
    return;
  }

  // Divergent: k distinct lines arranged in clusters of consecutive lines.
  // Consecutive lines share the 256B channel-interleave granule, so the
  // cluster length tunes channels-touched and intra-warp row locality.
  const auto k = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
      1 + rng.geometric(std::max(profile_.divergent_lines_mean - 1.0, 1.0),
                        kWarpLanes - 1),
      2, kWarpLanes));
  std::array<Addr, kWarpLanes> lines{};
  std::uint32_t count = 0;
  while (count < k) {
    const auto clen = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        rng.geometric(profile_.cluster_len_mean, 8), k - count));
    Addr cluster_base;
    if (rng.chance(profile_.streaming_frac)) {
      // Streamed cluster: the structured part of an irregular kernel
      // (CSR row walks, frame traversal) — warps of an SM collectively
      // sweep a region, creating the cross-warp DRAM row locality a
      // throughput-optimized scheduler feeds on.
      cluster_base = stream_line(sm);
      // Advance the stream cursor past the cluster (addresses discarded:
      // the cluster is materialised from cluster_base below).
      for (std::uint32_t j = 1; j < clen; ++j) (void)stream_line(sm);
    } else {
      cluster_base = random_line(rng);
    }
    // Align multi-line clusters to the 256B channel-interleave granule so
    // line pairs land on the same channel/bank/row (gathered structures
    // are allocator-aligned in practice; unaligned clusters would split
    // every pair across two channels and erase intra-warp row locality).
    if (clen >= 2) cluster_base &= ~static_cast<Addr>(255);
    for (std::uint32_t j = 0; j < clen; ++j) {
      lines[count++] = cluster_base + j * kLineBytes;
    }
  }
  // Gathered elements land in *lane* order, which bears no relation to
  // address order: shuffle the line list before assigning lanes.  This
  // preserves every locality statistic (the same lines are touched) but
  // means same-row lines are NOT adjacent in the coalescer's emission
  // order — the property that separates schedulers that search for row
  // hits (GMC, WG's bank table) from ones that rely on arrival order
  // (FCFS, WAFCFS), exactly as the paper's §VI-C2 discussion requires.
  for (std::uint32_t i = k - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.below(i + 1));
    std::swap(lines[i], lines[j]);
  }
  // Spread the 32 lanes over the k lines in contiguous groups (the usual
  // pattern when each thread indexes its own element of a gathered set).
  for (std::uint32_t lane = 0; lane < kWarpLanes; ++lane) {
    const std::uint32_t line_idx = lane * k / kWarpLanes;
    instr.lane_addr[lane] = lines[line_idx] + (lane % 32) * 4 % kLineBytes;
  }
}

WarpInstr WorkloadGenerator::next(SmId sm, WarpId warp) {
  WarpState& ws = state(sm, warp);
  WarpInstr instr;
  if (!ws.rng.chance(profile_.mem_instr_frac)) {
    instr.kind = WarpInstr::Kind::kCompute;
    instr.latency = static_cast<std::uint32_t>(
        ws.rng.geometric(profile_.compute_latency_mean, 64));
    return instr;
  }
  instr.kind = ws.rng.chance(profile_.store_frac) ? WarpInstr::Kind::kStore
                                                  : WarpInstr::Kind::kLoad;
  fill_memory_instr(instr, sm, ws);
  return instr;
}

}  // namespace latdiv
