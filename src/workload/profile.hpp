// Synthetic workload profiles (paper Table III).
//
// The paper evaluates CUDA binaries under GPGPU-Sim; we substitute
// statistical generators calibrated to the per-benchmark memory behaviour
// the paper itself reports (see DESIGN.md):
//   * Fig. 2 — fraction of divergent loads (56% average) and coalesced
//     requests per load (5.9 average across the irregular suite);
//   * Fig. 3 — memory controllers touched per warp (cfd/spmv/sssp/sp
//     ~3.2; sad/nw/SS/bfs < 2), which the generator controls through the
//     cluster length (consecutive cache lines share a 256B channel
//     granule) and the divergent line count;
//   * §III-A — ~30% of a warp's requests fall in the same DRAM row,
//     controlled by cluster length and the hot-region fraction;
//   * Fig. 12 — write intensity (nw and SS write-heavy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace latdiv {

struct WorkloadProfile {
  std::string name;

  /// Probability a load coalesces into >1 cache-line request.
  double divergent_load_frac = 0.56;
  /// Mean distinct cache lines per divergent load (geometric-ish, <=32).
  double divergent_lines_mean = 8.0;
  /// Mean length (in consecutive cache lines) of each address cluster
  /// within a divergent load.  Consecutive lines share the 256B channel
  /// interleave granule, so longer clusters concentrate a warp on fewer
  /// channels and raise intra-warp row locality.
  double cluster_len_mean = 1.5;
  /// Fraction of memory instructions that are stores.
  double store_frac = 0.1;
  /// Fraction of instructions that touch memory (the rest are compute).
  double mem_instr_frac = 0.3;
  /// Mean latency of a compute instruction (cycles of warp back-off).
  double compute_latency_mean = 12.0;
  /// Total data footprint; large vs. the 768KB aggregate L2 by design.
  std::uint64_t footprint_bytes = 256ULL << 20;
  /// Fraction of accesses steered into a small hot region (creates cache
  /// hits and cross-warp row sharing).
  double hot_frac = 0.1;
  std::uint64_t hot_bytes = 256ULL << 10;
  /// Fraction of loads that stream sequentially per warp instead of
  /// jumping randomly (regular benchmarks set this near 1).
  double streaming_frac = 0.0;

  [[nodiscard]] bool is_divergent() const { return divergent_load_frac > 0.2; }
};

/// The 11 irregular (memory-access-irregular, MAI) benchmarks of Table III.
[[nodiscard]] std::vector<WorkloadProfile> irregular_suite();

/// The 6 regular, bandwidth-bound benchmarks of §VI-A.
[[nodiscard]] std::vector<WorkloadProfile> regular_suite();

/// Look up one profile by its paper abbreviation (e.g. "bfs", "spmv").
[[nodiscard]] WorkloadProfile profile_by_name(const std::string& name);

}  // namespace latdiv
