// Dynamic warp instructions produced by the workload generators and
// consumed by the SM model.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace latdiv {

inline constexpr std::uint32_t kWarpLanes = 32;

struct WarpInstr {
  enum class Kind : std::uint8_t { kCompute, kLoad, kStore };

  Kind kind = Kind::kCompute;
  /// Compute: cycles until the warp may issue again (issue + dependent
  /// ALU latency collapsed into one number).
  std::uint32_t latency = 1;
  /// Memory: per-lane byte addresses; lanes [active_lanes, 32) are off
  /// (predicated or exited threads).
  std::array<Addr, kWarpLanes> lane_addr{};
  std::uint8_t active_lanes = 0;
};

}  // namespace latdiv
