// Default snapshot hooks for instruction sources.
//
// A source that does not opt in (checkpointable() == false) cannot be
// part of a snapshot: saving through it must fail loudly rather than
// silently produce a snapshot that replays a different instruction
// stream.  The messages are pinned by tests/test_ckpt.cpp.
#include "workload/instr_source.hpp"

#include "ckpt/error.hpp"

namespace latdiv {

void InstrSource::ckpt_save(ckpt::CkptWriter& /*ar*/) const {
  throw ckpt::CkptError(
      "instruction source does not support checkpointing (save)");
}

void InstrSource::ckpt_load(ckpt::CkptReader& /*ar*/) {
  throw ckpt::CkptError(
      "instruction source does not support checkpointing (load)");
}

}  // namespace latdiv
