// Statistical warp-instruction generator.
//
// Produces per-warp instruction streams matching a WorkloadProfile.  Every
// warp owns an independently-seeded RNG, so simulations are reproducible
// bit-for-bit from (profile, seed) regardless of scheduling order, and the
// same workload is presented to every memory scheduler under comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "workload/instr.hpp"
#include "workload/instr_source.hpp"
#include "workload/profile.hpp"

namespace latdiv {

class WorkloadGenerator : public InstrSource {
 public:
  WorkloadGenerator(const WorkloadProfile& profile, std::uint32_t sms,
                    std::uint32_t warps_per_sm, std::uint64_t seed);

  /// Next instruction for (sm, warp).  Never exhausts: the synthetic
  /// kernels are unbounded; the simulation decides when to stop.
  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) override;

  [[nodiscard]] const WorkloadProfile& profile() const { return profile_; }

  /// Snapshot hooks (src/ckpt): per-warp RNG streams + per-SM stream
  /// cursors fully determine the remaining instruction sequence.
  [[nodiscard]] bool checkpointable() const override { return true; }
  void ckpt_save(ckpt::CkptWriter& ar) const override;
  void ckpt_load(ckpt::CkptReader& ar) override;

 private:
  struct WarpState {
    Rng rng;
    explicit WarpState(std::uint64_t seed) : rng(seed) {}
  };

  [[nodiscard]] WarpState& state(SmId sm, WarpId warp);
  /// A line-aligned address, hot-region biased.
  [[nodiscard]] Addr random_line(Rng& rng) const;
  /// Next line of the SM's shared streaming sweep.  Streaming kernels
  /// assign consecutive elements to consecutive threads *across* warps,
  /// so the warps of one SM collectively walk a contiguous region — this
  /// is what creates cross-warp DRAM row locality for regular workloads.
  [[nodiscard]] Addr stream_line(SmId sm);
  void fill_memory_instr(WarpInstr& instr, SmId sm, WarpState& ws);

  WorkloadProfile profile_;
  std::uint32_t warps_per_sm_;
  std::uint64_t footprint_lines_;
  std::uint64_t hot_lines_;
  std::vector<WarpState> warps_;
  std::vector<Addr> sm_stream_pos_;
};

}  // namespace latdiv
