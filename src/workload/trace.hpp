// Instruction-trace capture and replay.
//
// A trace records the per-warp instruction stream (kind, latency, lane
// addresses) in a compact binary format, so a workload can be:
//   * captured once from the statistical generator or a scenario
//     microkernel and replayed bit-identically across scheduler
//     comparisons or library versions;
//   * produced by an external tool (e.g. converted from a real
//     GPGPU-Sim/NVBit trace) and fed into latdiv's memory system.
//
// Format v2 (current, written by TraceWriter) — explicitly little-endian
// with byte-order conversion helpers (common/endian.hpp), so traces are
// machine-portable interchange files; every multi-byte field below is LE:
//
//   header (40 bytes):
//     magic "LDTR", u32 version=2, u32 sms, u32 warps_per_sm,
//     u32 chunk_records, u64 total_records, u64 index_offset,
//     u32 header_crc (CRC-32 of the preceding 36 bytes)
//   chunks (one warp's consecutive records per chunk; every chunk of a
//   warp holds exactly chunk_records records except the last):
//     magic "LDCK", u16 sm, u16 warp, u32 record_count, u32 payload_bytes,
//     payload, u32 payload_crc (CRC-32 of payload)
//   record encoding inside a payload (sm/warp live on the chunk, not the
//   record):
//     u8 kind, u8 active_lanes, u32 latency,
//     then active_lanes u64 lane addresses (memory records only)
//   index (at index_offset):
//     magic "LDIX", then per warp stream in SM-major order:
//       u64 record_count, u32 chunk_count, chunk_count u64 chunk offsets
//     u32 index_crc (CRC-32 of everything between "LDIX" and the crc)
//
// The per-warp chunk index is what lets TraceReplayer stream from disk
// with bounded memory — O(active warps x chunk bytes), independent of
// trace length — and expose a checkpointable cursor (per-warp record
// positions) that restores mid-stream without a linear rescan.
//
// Format v1 (read-compat only): magic "LDTR", u32 version=1, u32 sms,
// u32 warps_per_sm, then flat host-order records prefixed with u16 sm,
// u16 warp.  v1 was a local-machine format; it is always loaded fully
// into memory and is only portable between same-endian hosts.
//
// Replay is keyed by (sm, warp): each warp consumes its own subsequence
// in order and wraps when it runs out, so a trace captured on a machine
// configuration can drive longer runs too.  All malformed input (bad
// magic, truncated records, CRC mismatch, ids outside the declared
// geometry) throws TraceError with a specific message — never silent UB.
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/instr.hpp"
#include "workload/instr_source.hpp"

namespace latdiv {

/// Thrown on any malformed, truncated, or unwritable trace file.  Sweep
/// points replaying a bad trace fail in isolation (the executor catches
/// std::exception); CLI tools print the message and exit nonzero.
class TraceError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Records per chunk when the writer is not told otherwise.  Chunk bytes
/// bound the replayer's per-warp memory; 64 records is ~17 KB worst case
/// (all 32-lane memory records) per active warp.
inline constexpr std::uint32_t kTraceChunkRecords = 64;

/// Streams instruction records to a v2 trace file as they are recorded.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, std::uint32_t sms,
              std::uint32_t warps_per_sm,
              std::uint32_t chunk_records = kTraceChunkRecords);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void record(SmId sm, WarpId warp, const WarpInstr& instr);
  /// Flush partial chunks, write the index, patch the header and close;
  /// called by the destructor if not called earlier.  A trace is not a
  /// complete v2 file until close() has run.
  void close();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  struct WarpBuf {
    std::vector<unsigned char> payload;  ///< encoded records of open chunk
    std::uint32_t count = 0;             ///< records in the open chunk
  };
  struct WarpIndex {
    std::uint64_t records = 0;
    std::vector<std::uint64_t> chunk_offsets;
  };

  void flush_chunk(std::size_t warp_idx);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint32_t sms_ = 0;
  std::uint32_t warps_per_sm_ = 0;
  std::uint32_t chunk_records_ = 0;
  std::uint64_t records_ = 0;
  std::vector<WarpBuf> bufs_;
  std::vector<WarpIndex> index_;
};

/// Wraps another source, recording everything that passes through.
class RecordingSource final : public InstrSource {
 public:
  RecordingSource(InstrSource& inner, TraceWriter& writer)
      : inner_(inner), writer_(writer) {}

  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) override {
    WarpInstr instr = inner_.next(sm, warp);
    writer_.record(sm, warp, instr);
    return instr;
  }

 private:
  InstrSource& inner_;
  TraceWriter& writer_;
};

/// How TraceReplayer holds a v2 trace (v1 traces are always in-memory —
/// the flat record stream has no index to seek by).
enum class ReplayMode : std::uint8_t {
  /// Stream chunks from disk on demand: O(active warps x chunk bytes)
  /// memory regardless of trace length.  The default.
  kStreaming,
  /// Decode the whole trace up front (cross-check for the streaming path
  /// and for tests; memory is O(total records)).
  kInMemory,
};

/// Replays each warp's recorded stream in order, wrapping at the end of
/// that warp's subsequence.  Reads v1 and v2 traces (dispatched on the
/// header version field).
class TraceReplayer final : public InstrSource {
 public:
  explicit TraceReplayer(const std::string& path,
                         ReplayMode mode = ReplayMode::kStreaming);
  ~TraceReplayer();
  TraceReplayer(const TraceReplayer&) = delete;
  TraceReplayer& operator=(const TraceReplayer&) = delete;

  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) override;

  [[nodiscard]] std::uint32_t version() const { return version_; }
  [[nodiscard]] std::uint32_t sms() const { return sms_; }
  [[nodiscard]] std::uint32_t warps_per_sm() const { return warps_per_sm_; }
  [[nodiscard]] std::uint64_t total_records() const { return total_; }
  /// True when this instance streams chunks from disk on demand.
  [[nodiscard]] bool streaming() const { return file_ != nullptr; }

  /// Checkpointable replay cursor: the current record position of every
  /// warp stream (SM-major order), already wrapped into [0, records).
  /// restore() on a fresh replayer of the same trace resumes the exact
  /// stream — byte-identical to having never stopped.
  [[nodiscard]] std::vector<std::uint64_t> cursor() const;
  void restore(const std::vector<std::uint64_t>& cursor);

  /// Snapshot hooks (src/ckpt): the warp cursors fully determine replay
  /// state, so save/load are thin wrappers around cursor()/restore().
  [[nodiscard]] bool checkpointable() const override { return true; }
  void ckpt_save(ckpt::CkptWriter& ar) const override;
  void ckpt_load(ckpt::CkptReader& ar) override;

 private:
  /// In-memory stream (v1 always; v2 under ReplayMode::kInMemory).
  struct WarpStream {
    std::vector<WarpInstr> instrs;
    std::uint64_t pos = 0;
  };
  /// Streaming v2 state: the index entry plus one open chunk.
  struct WarpCursor {
    std::uint64_t records = 0;               ///< stream length (from index)
    std::vector<std::uint64_t> chunk_offsets;
    std::uint64_t pos = 0;                   ///< next record to replay
    std::uint64_t loaded_chunk = 0;
    bool loaded = false;
    std::uint32_t chunk_count = 0;    ///< records in the loaded chunk
    std::uint32_t chunk_pos = 0;      ///< records decoded so far
    std::size_t byte_pos = 0;         ///< decode offset into payload
    std::vector<unsigned char> payload;
  };

  void load_v1(std::FILE* f);
  void load_v2(std::FILE* f, ReplayMode mode);
  void read_index(std::FILE* f, std::uint64_t index_offset);
  void load_chunk(std::size_t warp_idx, std::uint64_t chunk);
  [[nodiscard]] std::size_t warp_index(SmId sm, WarpId warp) const;

  std::string path_;
  std::FILE* file_ = nullptr;  ///< open while streaming, null otherwise
  std::uint32_t version_ = 0;
  std::uint32_t sms_ = 0;
  std::uint32_t warps_per_sm_ = 0;
  std::uint32_t chunk_records_ = 0;
  std::uint64_t total_ = 0;
  std::vector<WarpStream> streams_;  ///< in-memory replay state
  std::vector<WarpCursor> cursors_;  ///< streaming replay state
};

/// Full-file scan results (the `latdiv-tracegen inspect/validate/stats`
/// surface).  Produced by scan_trace, which decodes and verifies the
/// whole file: header and index CRCs, every chunk CRC, every record's
/// bounds, and index/chunk cross-consistency.
struct TraceStats {
  std::uint32_t version = 0;
  std::uint32_t sms = 0;
  std::uint32_t warps_per_sm = 0;
  std::uint32_t chunk_records = 0;  ///< 0 for v1
  std::uint64_t total_records = 0;
  std::uint64_t chunks = 0;         ///< 0 for v1
  std::uint64_t file_bytes = 0;
  std::uint64_t payload_bytes = 0;  ///< encoded record bytes
  std::uint64_t computes = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t mem_lanes = 0;      ///< active lanes over memory records
  std::uint64_t distinct_lines = 0; ///< unique 128B lines touched
  std::uint64_t active_warps = 0;   ///< warp streams with >= 1 record
  std::uint64_t min_warp_records = 0;  ///< over active warps
  std::uint64_t max_warp_records = 0;
  double mean_compute_latency = 0.0;

  [[nodiscard]] double mem_frac() const {
    const std::uint64_t total = computes + loads + stores;
    return total == 0 ? 0.0
                      : static_cast<double>(loads + stores) /
                            static_cast<double>(total);
  }
  /// Mean distinct active lanes per memory record.
  [[nodiscard]] double lanes_per_mem() const {
    const std::uint64_t mem = loads + stores;
    return mem == 0 ? 0.0
                    : static_cast<double>(mem_lanes) /
                          static_cast<double>(mem);
  }
};

/// Decode and verify `path` end to end; throws TraceError on the first
/// problem.  Reads both format versions.
[[nodiscard]] TraceStats scan_trace(const std::string& path);

}  // namespace latdiv
