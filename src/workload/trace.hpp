// Instruction-trace capture and replay.
//
// A trace records the per-warp instruction stream (kind, latency, lane
// addresses) in a compact binary format, so a workload can be:
//   * captured once from the statistical generator and replayed
//     bit-identically across scheduler comparisons or library versions;
//   * produced by an external tool (e.g. converted from a real
//     GPGPU-Sim/NVBit trace) and fed into latdiv's memory system.
//
// File layout (little-endian, host-order — traces are a local-machine
// interchange format, not an archival one):
//   header:  magic "LDTR", u32 version, u32 sms, u32 warps_per_sm
//   records: u16 sm, u16 warp, u8 kind, u8 active_lanes, u32 latency,
//            then active_lanes u64 lane addresses (memory records only)
//
// Replay is keyed by (sm, warp): each warp consumes its own subsequence
// in order and wraps when it runs out, so a trace captured on a machine
// configuration can drive longer runs too.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "workload/instr.hpp"
#include "workload/instr_source.hpp"

namespace latdiv {

/// Streams instruction records to a file as they are recorded.
class TraceWriter {
 public:
  TraceWriter(const std::string& path, std::uint32_t sms,
              std::uint32_t warps_per_sm);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void record(SmId sm, WarpId warp, const WarpInstr& instr);
  /// Flush and close; called by the destructor if not called earlier.
  void close();

  [[nodiscard]] std::uint64_t records_written() const { return records_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t records_ = 0;
};

/// Wraps another source, recording everything that passes through.
class RecordingSource final : public InstrSource {
 public:
  RecordingSource(InstrSource& inner, TraceWriter& writer)
      : inner_(inner), writer_(writer) {}

  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) override {
    WarpInstr instr = inner_.next(sm, warp);
    writer_.record(sm, warp, instr);
    return instr;
  }

 private:
  InstrSource& inner_;
  TraceWriter& writer_;
};

/// Loads a trace into memory and replays each warp's stream in order,
/// wrapping at the end of that warp's subsequence.
class TraceReplayer final : public InstrSource {
 public:
  explicit TraceReplayer(const std::string& path);

  [[nodiscard]] WarpInstr next(SmId sm, WarpId warp) override;

  [[nodiscard]] std::uint32_t sms() const { return sms_; }
  [[nodiscard]] std::uint32_t warps_per_sm() const { return warps_per_sm_; }
  [[nodiscard]] std::uint64_t total_records() const { return total_; }

 private:
  struct WarpStream {
    std::vector<WarpInstr> instrs;
    std::size_t pos = 0;
  };

  [[nodiscard]] WarpStream& stream(SmId sm, WarpId warp);

  std::uint32_t sms_ = 0;
  std::uint32_t warps_per_sm_ = 0;
  std::uint64_t total_ = 0;
  std::vector<WarpStream> streams_;
};

}  // namespace latdiv
