#include "workload/trace.hpp"

#include <cstring>

#include "common/log.hpp"

namespace latdiv {

namespace {

constexpr char kMagic[4] = {'L', 'D', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

void write_bytes(std::FILE* f, const void* data, std::size_t n) {
  const std::size_t written = std::fwrite(data, 1, n, f);
  LATDIV_ASSERT(written == n, "trace write failed (disk full?)");
}

void read_bytes(std::FILE* f, void* data, std::size_t n) {
  const std::size_t got = std::fread(data, 1, n, f);
  LATDIV_ASSERT(got == n, "trace truncated or unreadable");
}

template <typename T>
void write_pod(std::FILE* f, const T& value) {
  write_bytes(f, &value, sizeof value);
}

template <typename T>
T read_pod(std::FILE* f) {
  T value;
  read_bytes(f, &value, sizeof value);
  return value;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, std::uint32_t sms,
                         std::uint32_t warps_per_sm) {
  file_ = std::fopen(path.c_str(), "wb");
  LATDIV_ASSERT(file_ != nullptr, "cannot open trace file for writing");
  write_bytes(file_, kMagic, sizeof kMagic);
  write_pod(file_, kVersion);
  write_pod(file_, sms);
  write_pod(file_, warps_per_sm);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void TraceWriter::record(SmId sm, WarpId warp, const WarpInstr& instr) {
  LATDIV_ASSERT(file_ != nullptr, "record after close");
  write_pod(file_, sm);
  write_pod(file_, warp);
  write_pod(file_, static_cast<std::uint8_t>(instr.kind));
  write_pod(file_, instr.active_lanes);
  write_pod(file_, instr.latency);
  if (instr.kind != WarpInstr::Kind::kCompute) {
    write_bytes(file_, instr.lane_addr.data(),
                sizeof(Addr) * instr.active_lanes);
  }
  ++records_;
}

TraceReplayer::TraceReplayer(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  LATDIV_ASSERT(f != nullptr, "cannot open trace file for reading");
  char magic[4];
  read_bytes(f, magic, sizeof magic);
  LATDIV_ASSERT(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                "not a latdiv trace file");
  const auto version = read_pod<std::uint32_t>(f);
  LATDIV_ASSERT(version == kVersion, "unsupported trace version");
  sms_ = read_pod<std::uint32_t>(f);
  warps_per_sm_ = read_pod<std::uint32_t>(f);
  LATDIV_ASSERT(sms_ > 0 && warps_per_sm_ > 0, "empty trace geometry");
  streams_.resize(static_cast<std::size_t>(sms_) * warps_per_sm_);

  while (true) {
    SmId sm;
    const std::size_t got = std::fread(&sm, 1, sizeof sm, f);
    if (got == 0) break;  // clean EOF
    LATDIV_ASSERT(got == sizeof sm, "trace truncated mid-record");
    const auto warp = read_pod<WarpId>(f);
    WarpInstr instr;
    instr.kind = static_cast<WarpInstr::Kind>(read_pod<std::uint8_t>(f));
    instr.active_lanes = read_pod<std::uint8_t>(f);
    instr.latency = read_pod<std::uint32_t>(f);
    LATDIV_ASSERT(instr.active_lanes <= kWarpLanes, "corrupt lane count");
    if (instr.kind != WarpInstr::Kind::kCompute) {
      read_bytes(f, instr.lane_addr.data(), sizeof(Addr) * instr.active_lanes);
    }
    LATDIV_ASSERT(sm < sms_ && warp < warps_per_sm_,
                  "trace record outside declared geometry");
    stream(sm, warp).instrs.push_back(instr);
    ++total_;
  }
  std::fclose(f);
  LATDIV_ASSERT(total_ > 0, "trace contains no records");
}

TraceReplayer::WarpStream& TraceReplayer::stream(SmId sm, WarpId warp) {
  return streams_[static_cast<std::size_t>(sm) * warps_per_sm_ + warp];
}

WarpInstr TraceReplayer::next(SmId sm, WarpId warp) {
  LATDIV_ASSERT(sm < sms_ && warp < warps_per_sm_,
                "replay outside trace geometry");
  WarpStream& ws = stream(sm, warp);
  if (ws.instrs.empty()) {
    // A warp with no recorded activity idles on compute.
    WarpInstr idle;
    idle.kind = WarpInstr::Kind::kCompute;
    idle.latency = 16;
    return idle;
  }
  const WarpInstr& instr = ws.instrs[ws.pos];
  ws.pos = (ws.pos + 1) % ws.instrs.size();
  return instr;
}

}  // namespace latdiv
