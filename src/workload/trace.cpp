#include "workload/trace.hpp"

#include <cstring>
#include <set>

#include "ckpt/archive.hpp"
#include "common/crc32.hpp"
#include "common/endian.hpp"
#include "common/log.hpp"

namespace latdiv {

namespace {

constexpr char kMagic[4] = {'L', 'D', 'T', 'R'};
constexpr char kChunkMagic[4] = {'L', 'D', 'C', 'K'};
constexpr char kIndexMagic[4] = {'L', 'D', 'I', 'X'};
constexpr std::uint32_t kVersion2 = 2;
constexpr std::size_t kHeaderBytes = 40;
constexpr std::size_t kChunkHeaderBytes = 16;
/// kind + lanes + latency + up to 32 addresses.
constexpr std::size_t kMaxRecordBytes = 6 + sizeof(Addr) * kWarpLanes;
/// Caps decoded from untrusted headers so a corrupt geometry or chunk
/// size cannot drive a giant allocation before validation catches it.
constexpr std::uint64_t kMaxWarpStreams = 1ull << 22;
constexpr std::uint32_t kMaxChunkRecords = 1u << 20;

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw TraceError("trace: " + what + ": " + path);
}

void write_exact(std::FILE* f, const void* data, std::size_t n,
                 const std::string& path) {
  if (std::fwrite(data, 1, n, f) != n) {
    fail("write failed (disk full?)", path);
  }
}

void read_exact(std::FILE* f, void* data, std::size_t n,
                const std::string& path) {
  if (std::fread(data, 1, n, f) != n) {
    fail("truncated or unreadable", path);
  }
}

void seek_to(std::FILE* f, std::uint64_t offset, const std::string& path) {
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
    fail("seek failed", path);
  }
}

std::uint64_t file_size(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) fail("seek failed", path);
  const long at = std::ftell(f);
  if (at < 0) fail("seek failed", path);
  return static_cast<std::uint64_t>(at);
}

/// Closes the file on scope exit unless release()d into a member.
struct FileGuard {
  std::FILE* f = nullptr;
  ~FileGuard() {
    if (f != nullptr) std::fclose(f);
  }
  std::FILE* release() {
    std::FILE* r = f;
    f = nullptr;
    return r;
  }
};

/// Decode one record at `pos` (advanced past it).  Validates kind, lane
/// count, and that the encoded bytes actually fit in the payload.
WarpInstr decode_record(const unsigned char* data, std::size_t size,
                        std::size_t& pos, const std::string& path) {
  if (size < pos + 6) fail("record truncated", path);
  const std::uint8_t kind = data[pos];
  const std::uint8_t lanes = data[pos + 1];
  if (kind > static_cast<std::uint8_t>(WarpInstr::Kind::kStore)) {
    fail("corrupt record kind", path);
  }
  if (lanes > kWarpLanes) fail("corrupt lane count", path);
  WarpInstr instr;
  instr.kind = static_cast<WarpInstr::Kind>(kind);
  instr.active_lanes = lanes;
  instr.latency = get_le32(data + pos + 2);
  pos += 6;
  if (instr.kind != WarpInstr::Kind::kCompute) {
    const std::size_t need = sizeof(Addr) * lanes;
    if (size - pos < need) fail("record truncated", path);
    for (std::uint8_t i = 0; i < lanes; ++i) {
      instr.lane_addr[i] = get_le64(data + pos + sizeof(Addr) * i);
    }
    pos += need;
  }
  return instr;
}

/// 36 header bytes (everything before the CRC field) for a v2 file.
void encode_header_prefix(unsigned char* hdr, std::uint32_t sms,
                          std::uint32_t warps_per_sm,
                          std::uint32_t chunk_records, std::uint64_t total,
                          std::uint64_t index_offset) {
  std::memcpy(hdr, kMagic, 4);
  put_le32(hdr + 4, kVersion2);
  put_le32(hdr + 8, sms);
  put_le32(hdr + 12, warps_per_sm);
  put_le32(hdr + 16, chunk_records);
  put_le64(hdr + 20, total);
  put_le64(hdr + 28, index_offset);
}

/// One warp stream's entry parsed back out of the index section.
struct IndexEntry {
  std::uint64_t records = 0;
  std::vector<std::uint64_t> chunk_offsets;
};

std::vector<IndexEntry> parse_index(std::FILE* f, std::uint64_t index_offset,
                                    std::uint64_t bytes,
                                    std::size_t warp_count,
                                    std::uint32_t chunk_records,
                                    std::uint64_t total,
                                    const std::string& path) {
  if (bytes < index_offset || bytes - index_offset < 8) {
    fail("index truncated", path);
  }
  const std::size_t n = static_cast<std::size_t>(bytes - index_offset);
  std::vector<unsigned char> raw(n);
  seek_to(f, index_offset, path);
  read_exact(f, raw.data(), n, path);
  if (std::memcmp(raw.data(), kIndexMagic, 4) != 0) {
    fail("bad index magic", path);
  }
  if (crc32(raw.data() + 4, n - 8) != get_le32(raw.data() + n - 4)) {
    fail("index CRC mismatch", path);
  }

  std::vector<IndexEntry> entries(warp_count);
  std::size_t pos = 4;
  const std::size_t end = n - 4;
  std::uint64_t sum = 0;
  for (IndexEntry& e : entries) {
    if (end - pos < 12) fail("index truncated", path);
    e.records = get_le64(raw.data() + pos);
    const std::uint32_t chunks = get_le32(raw.data() + pos + 8);
    pos += 12;
    const std::uint64_t expect =
        (e.records + chunk_records - 1) / chunk_records;
    if (chunks != expect) fail("index chunk count mismatch", path);
    if ((end - pos) / 8 < chunks) fail("index truncated", path);
    e.chunk_offsets.resize(chunks);
    for (std::uint32_t c = 0; c < chunks; ++c) {
      const std::uint64_t off = get_le64(raw.data() + pos + 8ull * c);
      if (off < kHeaderBytes || off >= index_offset) {
        fail("index chunk offset out of range", path);
      }
      e.chunk_offsets[c] = off;
    }
    pos += 8ull * chunks;
    sum += e.records;
  }
  if (pos != end) fail("index has trailing bytes", path);
  if (sum != total) fail("index record count disagrees with header", path);
  return entries;
}

/// Read and fully validate the chunk at `offset` (magic, warp identity,
/// record count against the index, payload CRC).
std::vector<unsigned char> read_chunk(std::FILE* f, std::uint64_t offset,
                                      std::size_t warp_idx,
                                      std::uint32_t warps_per_sm,
                                      std::uint32_t expected_records,
                                      const std::string& path) {
  seek_to(f, offset, path);
  unsigned char hdr[kChunkHeaderBytes];
  read_exact(f, hdr, sizeof hdr, path);
  if (std::memcmp(hdr, kChunkMagic, 4) != 0) fail("bad chunk magic", path);
  const std::uint16_t sm = get_le16(hdr + 4);
  const std::uint16_t warp = get_le16(hdr + 6);
  const std::uint32_t count = get_le32(hdr + 8);
  const std::uint32_t payload_bytes = get_le32(hdr + 12);
  if (sm != warp_idx / warps_per_sm || warp != warp_idx % warps_per_sm) {
    fail("chunk belongs to a different warp than the index claims", path);
  }
  if (count != expected_records) fail("chunk record count mismatch", path);
  if (payload_bytes < 6ull * count ||
      payload_bytes > kMaxRecordBytes * static_cast<std::uint64_t>(count)) {
    fail("implausible chunk payload size", path);
  }
  std::vector<unsigned char> payload(payload_bytes);
  read_exact(f, payload.data(), payload_bytes, path);
  unsigned char crc_raw[4];
  read_exact(f, crc_raw, sizeof crc_raw, path);
  if (crc32(payload.data(), payload.size()) != get_le32(crc_raw)) {
    fail("chunk CRC mismatch", path);
  }
  return payload;
}

std::uint32_t chunk_record_count(std::uint64_t records,
                                 std::uint32_t chunk_records,
                                 std::uint64_t chunk,
                                 std::uint64_t chunk_count) {
  return chunk + 1 < chunk_count
             ? chunk_records
             : static_cast<std::uint32_t>(records -
                                          chunk * chunk_records);
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(const std::string& path, std::uint32_t sms,
                         std::uint32_t warps_per_sm,
                         std::uint32_t chunk_records)
    : path_(path),
      sms_(sms),
      warps_per_sm_(warps_per_sm),
      chunk_records_(chunk_records) {
  if (sms == 0 || warps_per_sm == 0 ||
      static_cast<std::uint64_t>(sms) * warps_per_sm > kMaxWarpStreams) {
    fail("invalid trace geometry", path);
  }
  if (chunk_records == 0 || chunk_records > kMaxChunkRecords) {
    fail("invalid chunk size", path);
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail("cannot open trace file for writing", path);
  bufs_.resize(static_cast<std::size_t>(sms) * warps_per_sm);
  index_.resize(bufs_.size());
  // Placeholder header; total_records / index_offset / CRC are patched in
  // close() once they are known.
  unsigned char hdr[kHeaderBytes] = {};
  encode_header_prefix(hdr, sms_, warps_per_sm_, chunk_records_, 0, 0);
  write_exact(file_, hdr, sizeof hdr, path_);
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (const TraceError& e) {
    // A destructor must not throw; close() explicitly to handle this.
    std::fprintf(stderr, "latdiv: %s\n", e.what());
  }
}

void TraceWriter::record(SmId sm, WarpId warp, const WarpInstr& instr) {
  LATDIV_ASSERT(file_ != nullptr, "record after close");
  if (sm >= sms_ || warp >= warps_per_sm_) {
    fail("record outside declared trace geometry", path_);
  }
  if (instr.active_lanes > kWarpLanes) {
    fail("record with more than 32 active lanes", path_);
  }
  unsigned char rec[kMaxRecordBytes];
  rec[0] = static_cast<unsigned char>(instr.kind);
  rec[1] = instr.active_lanes;
  put_le32(rec + 2, instr.latency);
  std::size_t size = 6;
  if (instr.kind != WarpInstr::Kind::kCompute) {
    for (std::uint8_t i = 0; i < instr.active_lanes; ++i) {
      put_le64(rec + size, instr.lane_addr[i]);
      size += sizeof(Addr);
    }
  }
  const std::size_t wi =
      static_cast<std::size_t>(sm) * warps_per_sm_ + warp;
  WarpBuf& buf = bufs_[wi];
  buf.payload.insert(buf.payload.end(), rec, rec + size);
  ++buf.count;
  ++records_;
  if (buf.count == chunk_records_) flush_chunk(wi);
}

void TraceWriter::flush_chunk(std::size_t warp_idx) {
  WarpBuf& buf = bufs_[warp_idx];
  if (buf.count == 0) return;
  const long at = std::ftell(file_);
  if (at < 0) fail("seek failed", path_);
  unsigned char hdr[kChunkHeaderBytes];
  std::memcpy(hdr, kChunkMagic, 4);
  put_le16(hdr + 4, static_cast<std::uint16_t>(warp_idx / warps_per_sm_));
  put_le16(hdr + 6, static_cast<std::uint16_t>(warp_idx % warps_per_sm_));
  put_le32(hdr + 8, buf.count);
  put_le32(hdr + 12, static_cast<std::uint32_t>(buf.payload.size()));
  write_exact(file_, hdr, sizeof hdr, path_);
  write_exact(file_, buf.payload.data(), buf.payload.size(), path_);
  unsigned char crc_raw[4];
  put_le32(crc_raw, crc32(buf.payload.data(), buf.payload.size()));
  write_exact(file_, crc_raw, sizeof crc_raw, path_);

  WarpIndex& idx = index_[warp_idx];
  idx.records += buf.count;
  idx.chunk_offsets.push_back(static_cast<std::uint64_t>(at));
  buf.payload.clear();
  buf.count = 0;
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  for (std::size_t wi = 0; wi < bufs_.size(); ++wi) flush_chunk(wi);

  const long index_at = std::ftell(file_);
  if (index_at < 0) fail("seek failed", path_);
  std::vector<unsigned char> body;
  for (const WarpIndex& idx : index_) {
    unsigned char entry[12];
    put_le64(entry, idx.records);
    put_le32(entry + 8, static_cast<std::uint32_t>(idx.chunk_offsets.size()));
    body.insert(body.end(), entry, entry + sizeof entry);
    for (const std::uint64_t off : idx.chunk_offsets) {
      unsigned char raw[8];
      put_le64(raw, off);
      body.insert(body.end(), raw, raw + sizeof raw);
    }
  }
  write_exact(file_, kIndexMagic, 4, path_);
  write_exact(file_, body.data(), body.size(), path_);
  unsigned char crc_raw[4];
  put_le32(crc_raw, crc32(body.data(), body.size()));
  write_exact(file_, crc_raw, sizeof crc_raw, path_);

  unsigned char hdr[kHeaderBytes];
  encode_header_prefix(hdr, sms_, warps_per_sm_, chunk_records_, records_,
                       static_cast<std::uint64_t>(index_at));
  put_le32(hdr + 36, crc32(hdr, 36));
  seek_to(file_, 0, path_);
  write_exact(file_, hdr, sizeof hdr, path_);

  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) fail("close failed (disk full?)", path_);
}

// ---------------------------------------------------------------------------
// TraceReplayer

TraceReplayer::TraceReplayer(const std::string& path, ReplayMode mode)
    : path_(path) {
  FileGuard guard{std::fopen(path.c_str(), "rb")};
  if (guard.f == nullptr) fail("cannot open trace file for reading", path);
  unsigned char head[8];
  read_exact(guard.f, head, sizeof head, path_);
  if (std::memcmp(head, kMagic, 4) != 0) {
    fail("not a latdiv trace file", path_);
  }
  std::uint32_t version_host = 0;
  std::memcpy(&version_host, head + 4, 4);
  if (get_le32(head + 4) == kVersion2) {
    version_ = kVersion2;
    load_v2(guard.f, mode);
    if (mode == ReplayMode::kStreaming) file_ = guard.release();
  } else if (version_host == 1) {
    version_ = 1;
    load_v1(guard.f);
  } else {
    fail("unsupported trace version", path_);
  }
}

TraceReplayer::~TraceReplayer() {
  if (file_ != nullptr) std::fclose(file_);
}

void TraceReplayer::load_v1(std::FILE* f) {
  // v1 is the legacy host-order flat format: no index, so it is always
  // decoded fully into memory.
  unsigned char geom[8];
  read_exact(f, geom, sizeof geom, path_);
  std::memcpy(&sms_, geom, 4);
  std::memcpy(&warps_per_sm_, geom + 4, 4);
  if (sms_ == 0 || warps_per_sm_ == 0 ||
      static_cast<std::uint64_t>(sms_) * warps_per_sm_ > kMaxWarpStreams) {
    fail("invalid trace geometry", path_);
  }
  streams_.resize(static_cast<std::size_t>(sms_) * warps_per_sm_);

  while (true) {
    SmId sm;
    const std::size_t got = std::fread(&sm, 1, sizeof sm, f);
    if (got == 0) break;  // clean EOF
    if (got != sizeof sm) fail("truncated mid-record", path_);
    WarpId warp;
    std::uint8_t kind_raw;
    WarpInstr instr;
    read_exact(f, &warp, sizeof warp, path_);
    read_exact(f, &kind_raw, sizeof kind_raw, path_);
    read_exact(f, &instr.active_lanes, sizeof instr.active_lanes, path_);
    read_exact(f, &instr.latency, sizeof instr.latency, path_);
    if (kind_raw > static_cast<std::uint8_t>(WarpInstr::Kind::kStore)) {
      fail("corrupt record kind", path_);
    }
    if (instr.active_lanes > kWarpLanes) fail("corrupt lane count", path_);
    instr.kind = static_cast<WarpInstr::Kind>(kind_raw);
    if (instr.kind != WarpInstr::Kind::kCompute) {
      read_exact(f, instr.lane_addr.data(),
                 sizeof(Addr) * instr.active_lanes, path_);
    }
    if (sm >= sms_ || warp >= warps_per_sm_) {
      fail("record outside declared geometry", path_);
    }
    streams_[warp_index(sm, warp)].instrs.push_back(instr);
    ++total_;
  }
  if (total_ == 0) fail("contains no records", path_);
}

void TraceReplayer::load_v2(std::FILE* f, ReplayMode mode) {
  unsigned char hdr[kHeaderBytes];
  std::memcpy(hdr, kMagic, 4);
  put_le32(hdr + 4, kVersion2);
  read_exact(f, hdr + 8, kHeaderBytes - 8, path_);
  if (crc32(hdr, 36) != get_le32(hdr + 36)) {
    fail("header CRC mismatch", path_);
  }
  sms_ = get_le32(hdr + 8);
  warps_per_sm_ = get_le32(hdr + 12);
  chunk_records_ = get_le32(hdr + 16);
  total_ = get_le64(hdr + 20);
  const std::uint64_t index_offset = get_le64(hdr + 28);
  if (sms_ == 0 || warps_per_sm_ == 0 ||
      static_cast<std::uint64_t>(sms_) * warps_per_sm_ > kMaxWarpStreams) {
    fail("invalid trace geometry", path_);
  }
  if (chunk_records_ == 0 || chunk_records_ > kMaxChunkRecords) {
    fail("invalid chunk size", path_);
  }
  const std::uint64_t bytes = file_size(f, path_);
  const std::size_t warp_count =
      static_cast<std::size_t>(sms_) * warps_per_sm_;
  std::vector<IndexEntry> entries = parse_index(
      f, index_offset, bytes, warp_count, chunk_records_, total_, path_);

  if (mode == ReplayMode::kInMemory) {
    streams_.resize(warp_count);
    for (std::size_t wi = 0; wi < warp_count; ++wi) {
      const IndexEntry& e = entries[wi];
      streams_[wi].instrs.reserve(e.records);
      for (std::uint64_t c = 0; c < e.chunk_offsets.size(); ++c) {
        const std::uint32_t count = chunk_record_count(
            e.records, chunk_records_, c, e.chunk_offsets.size());
        const std::vector<unsigned char> payload = read_chunk(
            f, e.chunk_offsets[c], wi, warps_per_sm_, count, path_);
        std::size_t pos = 0;
        for (std::uint32_t r = 0; r < count; ++r) {
          streams_[wi].instrs.push_back(
              decode_record(payload.data(), payload.size(), pos, path_));
        }
        if (pos != payload.size()) {
          fail("chunk payload has trailing bytes", path_);
        }
      }
    }
    return;
  }

  cursors_.resize(warp_count);
  for (std::size_t wi = 0; wi < warp_count; ++wi) {
    cursors_[wi].records = entries[wi].records;
    cursors_[wi].chunk_offsets = std::move(entries[wi].chunk_offsets);
  }
}

void TraceReplayer::load_chunk(std::size_t warp_idx, std::uint64_t chunk) {
  WarpCursor& c = cursors_[warp_idx];
  const std::uint32_t count = chunk_record_count(
      c.records, chunk_records_, chunk, c.chunk_offsets.size());
  c.payload = read_chunk(file_, c.chunk_offsets[chunk], warp_idx,
                         warps_per_sm_, count, path_);
  c.loaded = true;
  c.loaded_chunk = chunk;
  c.chunk_count = count;
  c.chunk_pos = 0;
  c.byte_pos = 0;
}

std::size_t TraceReplayer::warp_index(SmId sm, WarpId warp) const {
  return static_cast<std::size_t>(sm) * warps_per_sm_ + warp;
}

WarpInstr TraceReplayer::next(SmId sm, WarpId warp) {
  LATDIV_ASSERT(sm < sms_ && warp < warps_per_sm_,
                "replay outside trace geometry");
  const std::size_t wi = warp_index(sm, warp);

  if (file_ == nullptr) {
    // In-memory replay (v1 always; v2 under ReplayMode::kInMemory).
    WarpStream& ws = streams_[wi];
    if (ws.instrs.empty()) {
      // A warp with no recorded activity idles on compute.
      WarpInstr idle;
      idle.kind = WarpInstr::Kind::kCompute;
      idle.latency = 16;
      return idle;
    }
    const WarpInstr& instr = ws.instrs[ws.pos];
    ws.pos = (ws.pos + 1) % ws.instrs.size();
    return instr;
  }

  WarpCursor& c = cursors_[wi];
  if (c.records == 0) {
    WarpInstr idle;
    idle.kind = WarpInstr::Kind::kCompute;
    idle.latency = 16;
    return idle;
  }
  const std::uint64_t chunk = c.pos / chunk_records_;
  const auto target = static_cast<std::uint32_t>(c.pos % chunk_records_);
  if (!c.loaded || c.loaded_chunk != chunk) {
    load_chunk(wi, chunk);
  } else if (target < c.chunk_pos) {
    // Wrapped back to the start of the (still loaded) chunk — a
    // single-chunk stream cycling, or a restore() to an earlier record.
    c.chunk_pos = 0;
    c.byte_pos = 0;
  }
  // After a restore() the cursor may point mid-chunk: decode forward to
  // it (records are variable-size, so there is no random access inside a
  // chunk).  In sequential replay this loop never runs.
  while (c.chunk_pos < target) {
    (void)decode_record(c.payload.data(), c.payload.size(), c.byte_pos,
                        path_);
    ++c.chunk_pos;
  }
  const WarpInstr instr =
      decode_record(c.payload.data(), c.payload.size(), c.byte_pos, path_);
  ++c.chunk_pos;
  c.pos = (c.pos + 1) % c.records;
  return instr;
}

std::vector<std::uint64_t> TraceReplayer::cursor() const {
  std::vector<std::uint64_t> out;
  if (file_ == nullptr) {
    out.reserve(streams_.size());
    for (const WarpStream& ws : streams_) out.push_back(ws.pos);
  } else {
    out.reserve(cursors_.size());
    for (const WarpCursor& c : cursors_) out.push_back(c.pos);
  }
  return out;
}

void TraceReplayer::ckpt_save(ckpt::CkptWriter& ar) const {
  const std::vector<std::uint64_t> cur = cursor();
  std::uint64_t n = cur.size();
  ar.u64(n);
  for (const std::uint64_t pos : cur) ar.u64(pos);
}

void TraceReplayer::ckpt_load(ckpt::CkptReader& ar) {
  std::uint64_t n = 0;
  ar.u64(n);
  const std::size_t warp_count =
      static_cast<std::size_t>(sms_) * warps_per_sm_;
  if (n != warp_count) {
    throw ckpt::CkptError(
        "snapshot trace cursor does not match the trace geometry");
  }
  std::vector<std::uint64_t> cur(warp_count, 0);
  for (std::uint64_t& pos : cur) ar.u64(pos);
  restore(cur);
}

void TraceReplayer::restore(const std::vector<std::uint64_t>& cursor) {
  const std::size_t warp_count =
      static_cast<std::size_t>(sms_) * warps_per_sm_;
  if (cursor.size() != warp_count) {
    fail("cursor does not match trace geometry", path_);
  }
  for (std::size_t wi = 0; wi < warp_count; ++wi) {
    const std::uint64_t limit = file_ == nullptr
                                    ? streams_[wi].instrs.size()
                                    : cursors_[wi].records;
    if (cursor[wi] != 0 && cursor[wi] >= limit) {
      fail("cursor position beyond end of warp stream", path_);
    }
  }
  for (std::size_t wi = 0; wi < warp_count; ++wi) {
    if (file_ == nullptr) {
      streams_[wi].pos = cursor[wi];
    } else {
      cursors_[wi].pos = cursor[wi];
      cursors_[wi].loaded = false;
      cursors_[wi].payload.clear();
    }
  }
}

// ---------------------------------------------------------------------------
// scan_trace

namespace {

/// Running aggregation shared by the v1 and v2 scan paths.
struct ScanAccum {
  TraceStats stats;
  std::set<Addr> lines;  // ordered: deterministic and lint-clean
  std::uint64_t compute_latency_sum = 0;

  void add(const WarpInstr& instr) {
    switch (instr.kind) {
      case WarpInstr::Kind::kCompute:
        ++stats.computes;
        compute_latency_sum += instr.latency;
        break;
      case WarpInstr::Kind::kLoad:
        ++stats.loads;
        break;
      case WarpInstr::Kind::kStore:
        ++stats.stores;
        break;
    }
    if (instr.kind != WarpInstr::Kind::kCompute) {
      stats.mem_lanes += instr.active_lanes;
      for (std::uint8_t i = 0; i < instr.active_lanes; ++i) {
        lines.insert(instr.lane_addr[i] / 128);
      }
    }
  }

  void add_warp_records(std::uint64_t records) {
    if (records == 0) return;
    ++stats.active_warps;
    if (stats.active_warps == 1 || records < stats.min_warp_records) {
      stats.min_warp_records = records;
    }
    if (records > stats.max_warp_records) {
      stats.max_warp_records = records;
    }
  }

  TraceStats finish() {
    stats.distinct_lines = lines.size();
    if (stats.computes > 0) {
      stats.mean_compute_latency =
          static_cast<double>(compute_latency_sum) /
          static_cast<double>(stats.computes);
    }
    return stats;
  }
};

}  // namespace

TraceStats scan_trace(const std::string& path) {
  FileGuard guard{std::fopen(path.c_str(), "rb")};
  if (guard.f == nullptr) fail("cannot open trace file for reading", path);
  std::FILE* f = guard.f;
  ScanAccum acc;
  acc.stats.file_bytes = file_size(f, path);
  seek_to(f, 0, path);

  unsigned char head[8];
  read_exact(f, head, sizeof head, path);
  if (std::memcmp(head, kMagic, 4) != 0) {
    fail("not a latdiv trace file", path);
  }
  std::uint32_t version_host = 0;
  std::memcpy(&version_host, head + 4, 4);

  if (get_le32(head + 4) == kVersion2) {
    acc.stats.version = kVersion2;
    unsigned char hdr[kHeaderBytes];
    std::memcpy(hdr, head, 8);
    read_exact(f, hdr + 8, kHeaderBytes - 8, path);
    if (crc32(hdr, 36) != get_le32(hdr + 36)) {
      fail("header CRC mismatch", path);
    }
    acc.stats.sms = get_le32(hdr + 8);
    acc.stats.warps_per_sm = get_le32(hdr + 12);
    acc.stats.chunk_records = get_le32(hdr + 16);
    acc.stats.total_records = get_le64(hdr + 20);
    const std::uint64_t index_offset = get_le64(hdr + 28);
    if (acc.stats.sms == 0 || acc.stats.warps_per_sm == 0 ||
        static_cast<std::uint64_t>(acc.stats.sms) * acc.stats.warps_per_sm >
            kMaxWarpStreams) {
      fail("invalid trace geometry", path);
    }
    if (acc.stats.chunk_records == 0 ||
        acc.stats.chunk_records > kMaxChunkRecords) {
      fail("invalid chunk size", path);
    }
    const std::size_t warp_count =
        static_cast<std::size_t>(acc.stats.sms) * acc.stats.warps_per_sm;
    const std::vector<IndexEntry> entries =
        parse_index(f, index_offset, acc.stats.file_bytes, warp_count,
                    acc.stats.chunk_records, acc.stats.total_records, path);
    for (std::size_t wi = 0; wi < warp_count; ++wi) {
      const IndexEntry& e = entries[wi];
      acc.stats.chunks += e.chunk_offsets.size();
      for (std::uint64_t c = 0; c < e.chunk_offsets.size(); ++c) {
        const std::uint32_t count =
            chunk_record_count(e.records, acc.stats.chunk_records, c,
                               e.chunk_offsets.size());
        const std::vector<unsigned char> payload =
            read_chunk(f, e.chunk_offsets[c], wi, acc.stats.warps_per_sm,
                       count, path);
        std::size_t pos = 0;
        for (std::uint32_t r = 0; r < count; ++r) {
          acc.add(decode_record(payload.data(), payload.size(), pos, path));
        }
        if (pos != payload.size()) {
          fail("chunk payload has trailing bytes", path);
        }
        acc.stats.payload_bytes += payload.size();
      }
      acc.add_warp_records(e.records);
    }
    return acc.finish();
  }

  if (version_host != 1) fail("unsupported trace version", path);
  acc.stats.version = 1;
  unsigned char geom[8];
  read_exact(f, geom, sizeof geom, path);
  std::memcpy(&acc.stats.sms, geom, 4);
  std::memcpy(&acc.stats.warps_per_sm, geom + 4, 4);
  if (acc.stats.sms == 0 || acc.stats.warps_per_sm == 0 ||
      static_cast<std::uint64_t>(acc.stats.sms) * acc.stats.warps_per_sm >
          kMaxWarpStreams) {
    fail("invalid trace geometry", path);
  }
  std::vector<std::uint64_t> per_warp(
      static_cast<std::size_t>(acc.stats.sms) * acc.stats.warps_per_sm, 0);
  while (true) {
    SmId sm;
    const std::size_t got = std::fread(&sm, 1, sizeof sm, f);
    if (got == 0) break;  // clean EOF
    if (got != sizeof sm) fail("truncated mid-record", path);
    WarpId warp;
    std::uint8_t kind_raw;
    WarpInstr instr;
    read_exact(f, &warp, sizeof warp, path);
    read_exact(f, &kind_raw, sizeof kind_raw, path);
    read_exact(f, &instr.active_lanes, sizeof instr.active_lanes, path);
    read_exact(f, &instr.latency, sizeof instr.latency, path);
    if (kind_raw > static_cast<std::uint8_t>(WarpInstr::Kind::kStore)) {
      fail("corrupt record kind", path);
    }
    if (instr.active_lanes > kWarpLanes) fail("corrupt lane count", path);
    instr.kind = static_cast<WarpInstr::Kind>(kind_raw);
    std::size_t payload = 6;
    if (instr.kind != WarpInstr::Kind::kCompute) {
      read_exact(f, instr.lane_addr.data(),
                 sizeof(Addr) * instr.active_lanes, path);
      payload += sizeof(Addr) * instr.active_lanes;
    }
    if (sm >= acc.stats.sms || warp >= acc.stats.warps_per_sm) {
      fail("record outside declared geometry", path);
    }
    ++per_warp[static_cast<std::size_t>(sm) * acc.stats.warps_per_sm + warp];
    ++acc.stats.total_records;
    acc.stats.payload_bytes += payload;
    acc.add(instr);
  }
  for (const std::uint64_t records : per_warp) {
    acc.add_warp_records(records);
  }
  return acc.finish();
}

}  // namespace latdiv
