// Abstract source of warp instructions.
//
// The SM model pulls instructions from an InstrSource; the two providers
// are the statistical WorkloadGenerator (synthetic Table III workloads)
// and the TraceReplayer (captured streams, for reproducing a run exactly
// or feeding externally-generated traces into the memory system).
#pragma once

#include "common/types.hpp"
#include "workload/instr.hpp"

namespace latdiv {

class InstrSource {
 public:
  virtual ~InstrSource() = default;

  /// Next instruction for (sm, warp).  Must never exhaust: sources with
  /// finite content wrap around or idle with compute instructions.
  [[nodiscard]] virtual WarpInstr next(SmId sm, WarpId warp) = 0;
};

}  // namespace latdiv
