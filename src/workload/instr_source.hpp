// Abstract source of warp instructions.
//
// The SM model pulls instructions from an InstrSource; the two providers
// are the statistical WorkloadGenerator (synthetic Table III workloads)
// and the TraceReplayer (captured streams, for reproducing a run exactly
// or feeding externally-generated traces into the memory system).
#pragma once

#include "common/types.hpp"
#include "workload/instr.hpp"

namespace latdiv {

namespace ckpt {
class CkptWriter;
class CkptReader;
}  // namespace ckpt

class InstrSource {
 public:
  virtual ~InstrSource() = default;

  /// Next instruction for (sm, warp).  Must never exhaust: sources with
  /// finite content wrap around or idle with compute instructions.
  [[nodiscard]] virtual WarpInstr next(SmId sm, WarpId warp) = 0;

  /// Snapshot hooks (src/ckpt).  Deterministic sources (generator, kernel
  /// scenarios, trace replay) serialize their cursors/RNG streams so a
  /// resumed run draws the exact same instruction stream; the defaults
  /// throw ckpt::CkptError, which is how non-checkpointable sources (a
  /// RecordingSource mid-capture) surface the limitation to save paths.
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  virtual void ckpt_save(ckpt::CkptWriter& ar) const;
  virtual void ckpt_load(ckpt::CkptReader& ar);
};

}  // namespace latdiv
