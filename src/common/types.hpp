// Fundamental identifier and time types shared by every latdiv subsystem.
//
// The simulator uses a single global tick equal to one GDDR5 command-bus
// cycle (1.5 GHz, tCK = 0.667 ns).  All other clock domains (the GPU core
// domain, the interconnect) are expressed as divisors of this tick.
#pragma once

#include <cstdint>
#include <limits>

namespace latdiv {

/// Global simulation time, in GDDR5 command-clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "not yet scheduled / no deadline".
inline constexpr Cycle kNoCycle = std::numeric_limits<Cycle>::max();

/// Physical byte address in the simulated global memory space.
using Addr = std::uint64_t;

/// Streaming-multiprocessor (compute unit) index.
using SmId = std::uint16_t;

/// Warp index within one SM.
using WarpId = std::uint16_t;

/// Memory channel / memory-partition index.
using ChannelId = std::uint8_t;

/// DRAM bank index within a channel's single rank.
using BankId = std::uint8_t;

/// DRAM bank-group index.
using BankGroupId = std::uint8_t;

/// DRAM row index within a bank.
using RowId = std::uint32_t;

/// Sentinel row meaning "bank is precharged / no row open".
inline constexpr RowId kNoRow = std::numeric_limits<RowId>::max();

/// Globally unique identifier for one *dynamic* warp load/store instruction.
/// All memory requests coalesced out of the same vector memory instruction
/// share one WarpInstrUid; this is the unit the paper calls a "warp" at the
/// memory controller (a warp-group is the slice of one WarpInstrUid's
/// requests that lands in one controller).
using WarpInstrUid = std::uint64_t;

inline constexpr WarpInstrUid kNoWarpInstr =
    std::numeric_limits<WarpInstrUid>::max();

/// Pair identifying the *static* owner of a warp-group at a controller:
/// the paper's <SM-id, Warp-id> tuple plus the dynamic instruction uid.
struct WarpTag {
  SmId sm = 0;
  WarpId warp = 0;
  WarpInstrUid instr = kNoWarpInstr;

  friend bool operator==(const WarpTag&, const WarpTag&) = default;
};

}  // namespace latdiv
