// Shard-safety annotations for ROADMAP item 1 (channel-sharded simulation).
//
// The simulator's determinism contract extends to the coming threaded
// core: every mutable static and every pointer/reference/callback field
// crossing the MemoryController/Channel/Crossbar boundary must be
// classified *now*, before threads exist, so the threading PR inherits a
// fully annotated sharing map instead of discovering it in TSan reports.
// latdiv-lint (tools/latdiv-lint) enforces the classification at the
// source level; under Clang with -Wthread-safety (enabled by CMake for
// Clang builds) the LATDIV_GUARDED_BY family additionally compiles to the
// thread-safety-analysis attributes, so lock discipline is checked by the
// compiler too.  Under GCC every macro expands to nothing.
//
// Vocabulary:
//   LATDIV_SHARD_LOCAL       — owned by exactly one shard thread; never
//                              read or written across shards.  A marker
//                              (expands to nothing everywhere); it is the
//                              declaration the linter requires, and the
//                              claim TSan verifies at runtime.
//   LATDIV_GUARDED_BY(mu)    — read/written only while holding `mu`.
//   LATDIV_PT_GUARDED_BY(mu) — the *pointee* is guarded by `mu`.
//   LATDIV_REQUIRES(mu)      — function requires `mu` held on entry.
//   LATDIV_EXCLUDES(mu)      — function must not be called with `mu` held.
//
// latdiv::Mutex / latdiv::MutexLock are thin std::mutex wrappers carrying
// the capability attributes (std::mutex itself is unannotated in
// libstdc++, so GUARDED_BY on a bare std::mutex would be unverifiable).
// Use them for any lock a LATDIV_GUARDED_BY annotation names.
#pragma once

#include <mutex>

#if defined(__clang__)
#define LATDIV_TSA(x) __attribute__((x))
#else
#define LATDIV_TSA(x)  // no-op outside Clang
#endif

#define LATDIV_CAPABILITY(x) LATDIV_TSA(capability(x))
#define LATDIV_SCOPED_CAPABILITY LATDIV_TSA(scoped_lockable)
#define LATDIV_GUARDED_BY(x) LATDIV_TSA(guarded_by(x))
#define LATDIV_PT_GUARDED_BY(x) LATDIV_TSA(pt_guarded_by(x))
#define LATDIV_REQUIRES(...) LATDIV_TSA(requires_capability(__VA_ARGS__))
#define LATDIV_EXCLUDES(...) LATDIV_TSA(locks_excluded(__VA_ARGS__))
#define LATDIV_ACQUIRE(...) LATDIV_TSA(acquire_capability(__VA_ARGS__))
#define LATDIV_RELEASE(...) LATDIV_TSA(release_capability(__VA_ARGS__))
#define LATDIV_NO_TSA LATDIV_TSA(no_thread_safety_analysis)

/// Marker: owned exclusively by one shard thread (no lock needed).  The
/// linter reads it; it has no compiled effect.
#define LATDIV_SHARD_LOCAL

namespace latdiv {

/// std::mutex with Clang thread-safety capability attributes.
class LATDIV_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LATDIV_ACQUIRE() { mu_.lock(); }
  void unlock() LATDIV_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scoped lock over latdiv::Mutex (the annotated analogue of
/// std::lock_guard).
class LATDIV_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LATDIV_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() LATDIV_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace latdiv
