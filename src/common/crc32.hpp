// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk integrity checks.
//
// Trace format v2 protects every chunk payload and the per-warp index with
// a CRC so truncation and bit rot surface as clean fatal errors instead of
// silently corrupted workloads.  Table-driven, one table shared process-
// wide; the table is a pure function of the polynomial, so it is const
// after first construction.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace latdiv {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return kTable;
}

}  // namespace detail

/// CRC-32 of `n` bytes, continuing from `seed` (pass the previous return
/// value to checksum discontiguous regions as one stream; default starts
/// a fresh checksum).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t n,
                                         std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = detail::crc32_table()[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace latdiv
