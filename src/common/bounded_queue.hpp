// Fixed-capacity FIFO used for hardware queues (read queue, write queue,
// command queues, interconnect buffers).
//
// Hardware queues have a physical depth; modelling them with an unbounded
// std::deque hides back-pressure bugs, so capacity is a first-class part of
// the type and push() on a full queue is a programming error (callers must
// test full() first — exactly like hardware testing a "credit").
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <utility>

#include "common/log.hpp"

namespace latdiv {

/// `Alloc` lets hot queues draw node storage from a per-shard arena
/// (par::ArenaAllocator); the default is the global heap, behaviourally
/// identical.
template <typename T, typename Alloc = std::allocator<T>>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity, const Alloc& alloc = Alloc())
      : capacity_(capacity), items_(alloc) {
    LATDIV_ASSERT(capacity > 0, "queue capacity must be positive");
  }

  [[nodiscard]] bool full() const noexcept { return items_.size() >= capacity_; }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return capacity_ - items_.size();
  }

  void push(T item) {
    LATDIV_ASSERT(!full(), "push on full BoundedQueue");
    items_.push_back(std::move(item));
  }

  [[nodiscard]] T& front() {
    LATDIV_ASSERT(!empty(), "front on empty BoundedQueue");
    return items_.front();
  }
  [[nodiscard]] const T& front() const {
    LATDIV_ASSERT(!empty(), "front on empty BoundedQueue");
    return items_.front();
  }

  T pop() {
    LATDIV_ASSERT(!empty(), "pop on empty BoundedQueue");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Iteration support for schedulers that scan queue contents (a real
  // scheduler reads all valid entries of the request queue CAM).
  [[nodiscard]] auto begin() noexcept { return items_.begin(); }
  [[nodiscard]] auto end() noexcept { return items_.end(); }
  [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
  [[nodiscard]] auto end() const noexcept { return items_.end(); }

  /// Remove the element at iterator position (schedulers pick from the
  /// middle of the queue; hardware equivalently clears a CAM entry).
  auto erase(typename std::deque<T, Alloc>::iterator pos) {
    return items_.erase(pos);
  }

 private:
  std::size_t capacity_;
  std::deque<T, Alloc> items_;
};

}  // namespace latdiv
