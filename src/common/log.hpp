// Assertion and fatal-error helpers.
//
// LATDIV_ASSERT is active in all build types: a cycle-level simulator whose
// timing checker silently accepts an illegal command produces numbers that
// look plausible and are wrong, so internal invariants stay on even in
// release benchmarking builds (the cost is a well-predicted branch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace latdiv::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "latdiv: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace latdiv::detail

#define LATDIV_ASSERT(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::latdiv::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
    }                                                                \
  } while (false)

#define LATDIV_UNREACHABLE(msg) \
  ::latdiv::detail::assert_fail("unreachable", __FILE__, __LINE__, msg)
