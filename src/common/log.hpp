// Assertion and fatal-error helpers.
//
// Two tiers:
//
//   LATDIV_ASSERT(expr [, msg])  — active in all build types: a cycle-level
//     simulator whose timing checker silently accepts an illegal command
//     produces numbers that look plausible and are wrong, so internal
//     invariants stay on even in release benchmarking builds (the cost is
//     a well-predicted branch).
//
//   LATDIV_DCHECK(expr [, msg])  — debug-only checks for conditions that
//     are expensive to evaluate (conservation sums, cross-structure
//     audits).  Compiles out when NDEBUG is defined (Release /
//     RelWithDebInfo) unless LATDIV_ENABLE_DCHECKS is forced to 1 on the
//     command line (the sanitizer CI job does this).
//
// Both macros expand to a single statement (do { } while (false)) so they
// are safe as the sole body of an unbraced if/else, and the message
// argument is optional.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace latdiv::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg = nullptr) {
  std::fprintf(stderr, "latdiv: assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace latdiv::detail

#define LATDIV_ASSERT(expr, ...)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::latdiv::detail::assert_fail(#expr, __FILE__,                  \
                                    __LINE__ __VA_OPT__(, ) __VA_ARGS__); \
    }                                                                 \
  } while (false)

#define LATDIV_UNREACHABLE(...)                               \
  ::latdiv::detail::assert_fail("unreachable", __FILE__,      \
                                __LINE__ __VA_OPT__(, ) __VA_ARGS__)

#ifndef LATDIV_ENABLE_DCHECKS
#ifdef NDEBUG
#define LATDIV_ENABLE_DCHECKS 0
#else
#define LATDIV_ENABLE_DCHECKS 1
#endif
#endif

#if LATDIV_ENABLE_DCHECKS
#define LATDIV_DCHECK(expr, ...) LATDIV_ASSERT(expr __VA_OPT__(, ) __VA_ARGS__)
#else
// Swallow the condition without evaluating it; sizeof keeps the expression
// type-checked so a DCHECK cannot rot in release-only configurations.
#define LATDIV_DCHECK(expr, ...) \
  do {                           \
    (void)sizeof(!(expr));       \
  } while (false)
#endif
