// Byte-order conversion helpers for on-disk interchange formats.
//
// Trace files (workload/trace.hpp, format v2) are explicitly
// little-endian so a trace captured on one machine replays bit-identically
// on any other.  These helpers serialise through byte arithmetic rather
// than memcpy-and-swap, so they are correct on any host byte order without
// platform #ifdefs.
#pragma once

#include <cstdint>

namespace latdiv {

inline void put_le16(unsigned char* p, std::uint16_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
}

inline void put_le32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void put_le64(unsigned char* p, std::uint64_t v) {
  put_le32(p, static_cast<std::uint32_t>(v));
  put_le32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

[[nodiscard]] inline std::uint16_t get_le16(const unsigned char* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

[[nodiscard]] inline std::uint32_t get_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

[[nodiscard]] inline std::uint64_t get_le64(const unsigned char* p) {
  return static_cast<std::uint64_t>(get_le32(p)) |
         static_cast<std::uint64_t>(get_le32(p + 4)) << 32;
}

}  // namespace latdiv
