// Deterministic pseudo-random number generation for workload synthesis.
//
// Every stochastic choice in latdiv flows through an explicitly seeded
// Xoshiro256** instance so that a simulation is reproducible bit-for-bit
// from (config, seed).  std::mt19937_64 would also work but is ~5x slower
// and its distributions are not stable across standard libraries; we need
// identical workloads on any platform to compare schedulers fairly.
#pragma once

#include <cstdint>

#include "common/log.hpp"

namespace latdiv {

/// Xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via SplitMix64 (the
  /// recommended seeding procedure; avoids the all-zero state).
  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept {
    LATDIV_ASSERT(bound != 0, "Rng::below(0)");
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    LATDIV_ASSERT(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Geometric-ish positive integer with mean approximately `mean`
  /// (truncated at `cap`).  Used for burst-length style distributions.
  std::uint64_t geometric(double mean, std::uint64_t cap) noexcept {
    LATDIV_ASSERT(mean >= 1.0, "geometric mean must be >= 1");
    std::uint64_t n = 1;
    const double p_continue = 1.0 - 1.0 / mean;
    while (n < cap && chance(p_continue)) ++n;
    return n;
  }

  /// Snapshot serialization of the raw stream state (src/ckpt).  Defined
  /// inline: instruction sources in other translation units serialize
  /// their per-warp streams through this.
  template <class Ar>
  void ckpt_io(Ar& ar) {
    for (auto& word : state_) ar.u64(word);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace latdiv
