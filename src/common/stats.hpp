// Lightweight statistics primitives.
//
// Components own their statistics as plain members (no global registry, no
// string lookups on the hot path).  The sim layer aggregates them into
// report tables at the end of a run.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/log.hpp"

namespace latdiv {

/// Running sum + count; reports mean.
class Accumulator {
 public:
  void add(double value) noexcept {
    sum_ += value;
    ++count_;
    max_ = std::max(max_, value);
  }

  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  void merge(const Accumulator& other) noexcept {
    sum_ += other.sum_;
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
  }

  /// Snapshot serialization (src/ckpt); doubles travel as bit patterns,
  /// so a resumed run reports the exact same means.
  template <class Ar>
  void ckpt_io(Ar& ar) {
    ar.f64(sum_);
    ar.f64(max_);
    ar.u64(count_);
  }

 private:
  double sum_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Fixed-bin histogram over [0, bin_width * bins); overflow goes to the
/// last bin.  Used for latency and divergence distributions.
class Histogram {
 public:
  Histogram(double bin_width, std::size_t bins)
      : bin_width_(bin_width), counts_(bins, 0) {
    LATDIV_ASSERT(bin_width > 0.0 && bins > 0, "bad histogram shape");
  }

  void add(double value) noexcept {
    auto bin = static_cast<std::size_t>(std::max(value, 0.0) / bin_width_);
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const std::uint64_t> counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] double bin_width() const noexcept { return bin_width_; }

  /// Value below which `q` (in [0,1]) of the samples fall, estimated at
  /// bin granularity (upper edge of the containing bin).
  [[nodiscard]] double quantile(double q) const noexcept {
    if (total_ == 0) return 0.0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return bin_width_ * static_cast<double>(i + 1);
    }
    return bin_width_ * static_cast<double>(counts_.size());
  }

 private:
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Ratio of two counters, guarded against a zero denominator.
[[nodiscard]] inline double safe_ratio(double num, double den) noexcept {
  return den == 0.0 ? 0.0 : num / den;
}

/// Geometric mean of a positive series (0.0 for an empty one).
[[nodiscard]] double geomean(std::span<const double> values);

/// Render a fraction as a percentage string with one decimal, e.g. "12.3%".
[[nodiscard]] std::string percent(double fraction);

/// Fixed-width numeric cell used by the bench report printers.
[[nodiscard]] std::string fixed(double value, int decimals = 2);

}  // namespace latdiv
