#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace latdiv {

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace latdiv
