#include "common/stats.hpp"

#include <cstdio>

namespace latdiv {

std::string percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fixed(double value, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace latdiv
