// Golden-regression checker: pass/fail, tolerance arithmetic, structural
// mismatches.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exp/golden.hpp"

using namespace latdiv::exp;

namespace {

PointResult ok_point(const std::string& row, const std::string& col,
                     double ipc) {
  PointResult p;
  p.id = row + "/" + col + "/s1";
  p.row = row;
  p.col = col;
  p.workload = row;
  p.scheduler = col;
  p.seed = 1;
  p.ok = true;
  p.metrics["ipc"] = ipc;
  p.metrics["dram_reads"] = 1000.0;
  return p;
}

Artifact reference_artifact() {
  SweepSpec spec;
  spec.name = "unit";
  spec.primary_metric = "ipc";
  spec.baseline_col = "base";
  return make_artifact(spec, RunShape{},
                       {ok_point("w1", "base", 2.0), ok_point("w1", "opt", 3.0),
                        ok_point("w2", "base", 1.0),
                        ok_point("w2", "opt", 1.5)});
}

/// reference_artifact() with one cell's ipc scaled by `factor`.
Artifact drifted_artifact(double factor) {
  SweepSpec spec;
  spec.name = "unit";
  spec.primary_metric = "ipc";
  spec.baseline_col = "base";
  return make_artifact(spec, RunShape{},
                       {ok_point("w1", "base", 2.0),
                        ok_point("w1", "opt", 3.0 * factor),
                        ok_point("w2", "base", 1.0),
                        ok_point("w2", "opt", 1.5)});
}

}  // namespace

TEST(ExpGolden, IdenticalArtifactsPass) {
  const GoldenReport report =
      check_golden(reference_artifact(), reference_artifact());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells_checked, 4u);
  EXPECT_EQ(report.metrics_checked, 8u);  // 4 cells x {ipc, dram_reads}
}

TEST(ExpGolden, DriftWithinToleranceIsIgnored) {
  // Default tolerance is 2% relative; 1% drift passes.
  EXPECT_TRUE(check_golden(drifted_artifact(1.01), reference_artifact()).ok());
}

TEST(ExpGolden, DriftBeyondToleranceFails) {
  const GoldenReport report =
      check_golden(drifted_artifact(1.10), reference_artifact());
  ASSERT_FALSE(report.ok());
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].cell, "w1/opt");
  EXPECT_EQ(report.issues[0].metric, "ipc");
  EXPECT_DOUBLE_EQ(report.issues[0].golden, 3.0);
  EXPECT_DOUBLE_EQ(report.issues[0].current, 3.3);
}

TEST(ExpGolden, PerMetricToleranceOverridesDefault) {
  GoldenOptions opts;
  opts.per_metric["ipc"] = {.rel = 0.25, .abs = 1e-9};
  EXPECT_TRUE(
      check_golden(drifted_artifact(1.10), reference_artifact(), opts).ok());

  // And a pinned metric (rel 0) catches any drift at all.
  opts.per_metric["ipc"] = {.rel = 0.0, .abs = 1e-9};
  EXPECT_FALSE(
      check_golden(drifted_artifact(1.001), reference_artifact(), opts).ok());
}

TEST(ExpGolden, AbsoluteToleranceGuardsNearZeroMetrics) {
  Artifact golden = reference_artifact();
  Artifact current = reference_artifact();
  golden.cells[0].metrics["write_intensity"] = {.mean = 0.0, .stddev = 0.0};
  current.cells[0].metrics["write_intensity"] = {.mean = 5e-10, .stddev = 0.0};
  EXPECT_TRUE(check_golden(current, golden).ok());  // within abs=1e-9
  current.cells[0].metrics["write_intensity"].mean = 1e-3;
  EXPECT_FALSE(check_golden(current, golden).ok());
}

TEST(ExpGolden, StructuralMismatchesAreIssues) {
  // Different sweep name.
  Artifact other = reference_artifact();
  other.spec.name = "different";
  EXPECT_FALSE(check_golden(other, reference_artifact()).ok());

  // Different run shape.
  Artifact shaped = reference_artifact();
  shaped.shape.cycles += 1;
  EXPECT_FALSE(check_golden(shaped, reference_artifact()).ok());

  // A golden cell missing from the current artifact.
  Artifact golden = reference_artifact();
  CellAggregate extra;
  extra.row = "w9";
  extra.col = "opt";
  extra.n = 1;
  golden.cells.push_back(extra);
  const GoldenReport missing = check_golden(reference_artifact(), golden);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.issues[0].cell, "w9/opt");

  // Extra metrics in current are fine (the schema may grow).
  Artifact grown = reference_artifact();
  for (CellAggregate& c : grown.cells) {
    c.metrics["brand_new_metric"] = {.mean = 1.0, .stddev = 0.0};
  }
  EXPECT_TRUE(check_golden(grown, reference_artifact()).ok());
}

TEST(ExpGolden, FailedCurrentPointsAreRegressions) {
  Artifact golden = reference_artifact();
  PointResult bad;
  bad.id = "w1/base/s1";
  bad.row = "w1";
  bad.col = "base";
  bad.ok = false;
  bad.error = "boom";
  Artifact current = make_artifact(
      golden.spec, RunShape{},
      {bad, ok_point("w1", "opt", 3.0), ok_point("w2", "base", 1.0),
       ok_point("w2", "opt", 1.5)});
  const GoldenReport report = check_golden(current, golden);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.issues[0].cell, "w1/base/s1");
  EXPECT_NE(report.issues[0].what.find("boom"), std::string::npos);
}
