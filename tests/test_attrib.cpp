// AttributionProfiler (src/obs/attrib) contract suite.
//
// Three layers, mirroring the guarantees DESIGN.md "Latency attribution"
// states:
//   * sum exactness — per-cause components sum exactly to the measured
//     end-to-end latency of every attributed load, across every
//     scheduling policy x irregular workloads x seeds, with the
//     InvariantChecker auditing (and aborting on) any violation mid-run;
//   * byte identity — the attribution artifact and the metrics export
//     are byte-identical across shard counts, fast-forward on/off, and
//     a snapshot save/resume split mid-run;
//   * non-perturbation — enabling attribution changes no simulated
//     result (the profiler is a pure observer).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "exp/executor.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

// Byte-identity cases assert exact shard counts; pin the worker-thread
// budget pre-main so single-core hosts don't silently fall back (a
// caller's explicit setting wins).
const int kPinShardThreads = [] {
  ::setenv("LATDIV_SHARD_THREADS", "6", /*overwrite=*/0);
  return 0;
}();

SimConfig attrib_cfg(SchedulerKind sched, const char* workload,
                     std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = sched;
  cfg.workload = profile_by_name(workload);
  cfg.seed = seed;
  cfg.obs.attrib = true;
  return cfg;
}

std::uint64_t cause_cycle_sum(const obs::AttribSummary& a) {
  std::uint64_t sum = 0;
  for (std::size_t c = 0; c < obs::kAttribCauseCount; ++c) {
    sum += a.cause_cycles[c];
  }
  return sum;
}

std::uint64_t blame_count_sum(const obs::AttribSummary& a) {
  std::uint64_t sum = a.blame_none;
  for (std::size_t c = 0; c < obs::kAttribBlameCauses; ++c) {
    sum += a.blame[c];
  }
  return sum;
}

// ---------------------------------------------------------------------------
// Sum exactness across every policy x workloads x seeds.

class AttribSumExactness
    : public ::testing::TestWithParam<
          std::tuple<SchedulerKind, const char*, std::uint64_t>> {};

TEST_P(AttribSumExactness, ComponentsSumExactlyToEndToEndLatency) {
  const auto [sched, workload, seed] = GetParam();
  SimConfig cfg = attrib_cfg(sched, workload, seed);
  // The InvariantChecker audits attribution exactness during the run and
  // aborts on the first violation — passing means every audit held.
  cfg.check.invariants = true;
  const RunResult r = Simulator(cfg).run();

  ASSERT_TRUE(r.attrib.enabled);
  EXPECT_GT(r.attrib.loads, 0u) << "no loads attributed";
  EXPECT_EQ(r.attrib.mismatches, 0u) << "telescope broke on some load";
  EXPECT_EQ(r.attrib.unmatched, 0u) << "warp load with no lane data";
  EXPECT_EQ(r.attrib.dropped, 0u) << "request declined at ingest";
  EXPECT_EQ(r.attrib.drain_clamps, 0u) << "drain overlap exceeded queue wait";
  // Conservation: per-cause histogram sums partition the total exactly.
  EXPECT_EQ(cause_cycle_sum(r.attrib), r.attrib.total_cycles);
  // Every attributed load receives exactly one blame verdict.
  EXPECT_EQ(blame_count_sum(r.attrib), r.attrib.loads);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesXWorkloads, AttribSumExactness,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                          SchedulerKind::kGmc, SchedulerKind::kWafcfs,
                          SchedulerKind::kSbwas, SchedulerKind::kWg,
                          SchedulerKind::kWgM, SchedulerKind::kWgBw,
                          SchedulerKind::kWgW),
        ::testing::Values("bfs", "spmv", "kmeans"),
        ::testing::Values(1ull)),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_" + std::get<1>(info.param) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// Extra randomized seeds on the paper's headline pair — divergence-heavy
// bfs under the baseline and the full design.
class AttribSumExactnessSeeds
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AttribSumExactnessSeeds, HoldsAcrossSeeds) {
  for (const SchedulerKind sched :
       {SchedulerKind::kGmc, SchedulerKind::kWgW}) {
    SimConfig cfg = attrib_cfg(sched, "bfs", GetParam());
    cfg.check.invariants = true;
    const RunResult r = Simulator(cfg).run();
    ASSERT_TRUE(r.attrib.enabled);
    EXPECT_GT(r.attrib.loads, 0u);
    EXPECT_EQ(r.attrib.mismatches, 0u);
    EXPECT_EQ(r.attrib.unmatched, 0u);
    EXPECT_EQ(cause_cycle_sum(r.attrib), r.attrib.total_cycles);
    EXPECT_EQ(blame_count_sum(r.attrib), r.attrib.loads);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttribSumExactnessSeeds,
                         ::testing::Values(7ull, 42ull, 1337ull),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Byte identity of the attribution artifact and metric export.

TEST(AttribByteIdentity, ShardsAndFastForwardDoNotChangeArtifacts) {
  SimConfig cfg = attrib_cfg(SchedulerKind::kWgW, "bfs");

  std::string attrib1, metrics1;
  {
    SimConfig serial = cfg;
    serial.shards = 1;
    Simulator sim(serial);
    (void)sim.run();
    attrib1 = sim.obs()->attrib_json();
    metrics1 = sim.obs()->metrics_json();
  }
  ASSERT_FALSE(attrib1.empty());

  for (const std::uint32_t shards : {2u, 6u}) {
    SimConfig sh = cfg;
    sh.shards = shards;
    Simulator sim(sh);
    (void)sim.run();
    EXPECT_EQ(attrib1, sim.obs()->attrib_json()) << "shards=" << shards;
    EXPECT_EQ(metrics1, sim.obs()->metrics_json()) << "shards=" << shards;
  }
  {
    SimConfig noff = cfg;
    noff.idle_fast_forward = false;
    Simulator sim(noff);
    (void)sim.run();
    EXPECT_EQ(attrib1, sim.obs()->attrib_json()) << "fast-forward off";
    EXPECT_EQ(metrics1, sim.obs()->metrics_json()) << "fast-forward off";
  }
}

TEST(AttribByteIdentity, SnapshotResumeMatchesStraightRun) {
  SimConfig cfg = attrib_cfg(SchedulerKind::kWgM, "spmv");

  Simulator straight(cfg);
  straight.run_to(cfg.max_cycles);
  const RunResult rs = straight.finish();
  const std::string attrib1 = straight.obs()->attrib_json();
  const std::string metrics1 = straight.obs()->metrics_json();

  // Split the same run in half across a snapshot: open request and load
  // state must round-trip for the resumed half to attribute identically.
  Simulator paused(cfg);
  paused.run_to(cfg.max_cycles / 2);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);

  Simulator resumed(cfg);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  resumed.run_to(cfg.max_cycles);
  const RunResult rr = resumed.finish();

  EXPECT_EQ(rs.attrib.loads, rr.attrib.loads);
  EXPECT_EQ(attrib1, resumed.obs()->attrib_json());
  EXPECT_EQ(metrics1, resumed.obs()->metrics_json());
}

// ---------------------------------------------------------------------------
// Non-perturbation and off-path surface.

TEST(AttribNonPerturbation, EnablingAttributionChangesNoSimulatedResult) {
  SimConfig off;
  off.shrink_for_tests();
  off.scheduler = SchedulerKind::kWgW;
  off.workload = profile_by_name("bfs");
  SimConfig on = off;
  on.obs.attrib = true;

  const RunResult a = Simulator(off).run();
  const RunResult b = Simulator(on).run();
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(exp::metrics_from(a), exp::metrics_from(b));
  EXPECT_FALSE(a.attrib.enabled);
  EXPECT_TRUE(b.attrib.enabled);
}

TEST(AttribOffPath, DisabledRunsCarryNoAttributionState) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bfs");
  Simulator sim(cfg);
  const RunResult r = sim.run();
  EXPECT_EQ(sim.obs(), nullptr);  // hub not even constructed
  EXPECT_FALSE(r.attrib.enabled);
  EXPECT_EQ(r.attrib.loads, 0u);
}

// The artifact is the CI audit surface: the fields the attribution-smoke
// job greps for must read exactly zero on a healthy run.
TEST(AttribArtifact, AuditFieldsReadZeroOnHealthyRuns) {
  SimConfig cfg = attrib_cfg(SchedulerKind::kGmc, "bfs");
  Simulator sim(cfg);
  (void)sim.run();
  const std::string json = sim.obs()->attrib_json();
  EXPECT_NE(json.find("\"mismatches\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"unmatched\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"residual\": 0"), std::string::npos);
}

}  // namespace
}  // namespace latdiv
