#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace latdiv {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 6ULL, 97ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  std::array<int, 6> bins{};
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) ++bins[rng.below(6)];
  for (int count : bins) {
    EXPECT_NEAR(count, kDraws / 6, kDraws / 6 / 10);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.chance(0.3);
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Rng, GeometricMeanApproximatesTarget) {
  Rng rng(23);
  for (double mean : {1.5, 3.0, 8.0}) {
    double sum = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      sum += static_cast<double>(rng.geometric(mean, 1000));
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.05);
  }
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rng.geometric(100.0, 7), 7u);
    EXPECT_GE(rng.geometric(2.0, 7), 1u);
  }
}

}  // namespace
}  // namespace latdiv
