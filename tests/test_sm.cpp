// SM model behaviour: blocking-load semantics, coalescing, L1 filtering,
// LSU dispatch order and warp-group tagging.  The SM is driven against a
// bare crossbar; this test plays the role of the memory partitions.
#include "gpu/sm.hpp"

#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

namespace latdiv {
namespace {

WorkloadProfile compute_only() {
  WorkloadProfile p;
  p.name = "compute";
  p.mem_instr_frac = 0.0;
  return p;
}

WorkloadProfile all_loads(double divergent, double lines_mean) {
  WorkloadProfile p;
  p.name = "loads";
  p.mem_instr_frac = 1.0;
  p.store_frac = 0.0;
  p.divergent_load_frac = divergent;
  p.divergent_lines_mean = lines_mean;
  p.cluster_len_mean = 1.0;
  p.footprint_bytes = 16ULL << 20;
  p.hot_frac = 0.0;
  return p;
}

struct Harness {
  explicit Harness(const WorkloadProfile& profile, std::uint32_t warps = 2)
      : gen(profile, 1, warps, 42),
        amap(AddressMapConfig{}),
        xbar(icnt_cfg()) {
    SmConfig cfg;
    cfg.warps = warps;
    sm = std::make_unique<Sm>(0, cfg, gen, amap, xbar, tracker, 1, 1);
  }

  static IcntConfig icnt_cfg() {
    IcntConfig cfg;
    cfg.sms = 1;
    cfg.partitions = 6;
    cfg.request_latency = 1;
    cfg.response_latency = 1;
    return cfg;
  }

  /// Tick the SM in the core domain and echo every request back as a
  /// response after `mem_latency` cycles (a perfect memory).
  void run_to(Cycle end, Cycle mem_latency = 20) {
    for (; now < end; now += 2) {
      sm->tick(now);
      xbar.tick(now);
      for (ChannelId p = 0; p < 6; ++p) {
        while (const MemRequest* head = xbar.peek_request(p, now)) {
          requests.push_back(*head);
          if (head->kind == ReqKind::kRead) {
            pending[now + mem_latency].push_back(
                MemResponse{head->addr, head->tag, now + mem_latency, 1});
          }
          xbar.pop_request(p, now);
        }
      }
      for (auto it = pending.begin(); it != pending.end();) {
        if (it->first > now) break;
        for (const MemResponse& r : it->second) {
          xbar.inject_response(r.tag.instr % 6, r, now);  // any partition
        }
        it = pending.erase(it);
      }
    }
  }

  WorkloadGenerator gen;
  AddressMap amap;
  Crossbar xbar;
  InstrTracker tracker;
  std::unique_ptr<Sm> sm;
  std::vector<MemRequest> requests;
  std::map<Cycle, std::vector<MemResponse>> pending;
  Cycle now = 0;
};

TEST(Sm, ComputeOnlyIssuesEveryCycleEventually) {
  Harness h(compute_only(), 4);
  h.run_to(2000);
  EXPECT_GT(h.sm->stats().instructions, 100u);
  EXPECT_TRUE(h.requests.empty());
}

TEST(Sm, LoadsProduceRequestsAndBlockWarps) {
  Harness h(all_loads(1.0, 8.0), 1);
  h.run_to(40, /*mem_latency=*/100000);  // responses never arrive
  // The single warp issued one load and is now blocked: exactly one
  // instruction, and its coalesced requests are in flight.
  EXPECT_EQ(h.sm->stats().loads, 1u);
  EXPECT_GT(h.requests.size(), 1u);
  const std::uint64_t before = h.sm->stats().instructions;
  h.run_to(400, 100000);
  EXPECT_EQ(h.sm->stats().instructions, before) << "blocked warp issued";
}

TEST(Sm, WarpUnblocksWhenAllResponsesReturn) {
  Harness h(all_loads(1.0, 6.0), 1);
  h.run_to(3000, 30);
  EXPECT_GT(h.sm->stats().loads, 5u) << "warp must make repeated progress";
}

TEST(Sm, OtherWarpsIssueWhileOneBlocks) {
  Harness h(all_loads(1.0, 6.0), 8);
  h.run_to(600, 100000);
  // With 8 warps and no responses, several warps issue their first load
  // before the machine fills up.
  EXPECT_GT(h.sm->stats().loads, 3u);
}

TEST(Sm, L1HitsFilterRepeatLoads) {
  // Tiny footprint: after warm-up most loads hit in the 32KB L1 and
  // produce no interconnect traffic.
  WorkloadProfile p = all_loads(0.0, 1.0);
  p.footprint_bytes = 8 * 1024;
  Harness h(p, 1);
  h.run_to(6000, 20);
  EXPECT_GT(h.sm->stats().loads, 50u);
  EXPECT_LT(h.requests.size(), h.sm->stats().loads / 2)
      << "most loads should be L1 hits";
  EXPECT_GT(h.sm->l1().stats().hits, 0u);
}

TEST(Sm, RequestsCarryOwnerTag) {
  Harness h(all_loads(1.0, 4.0), 2);
  h.run_to(200, 100000);
  ASSERT_FALSE(h.requests.empty());
  for (const MemRequest& r : h.requests) {
    EXPECT_EQ(r.tag.sm, 0);
    EXPECT_NE(r.tag.instr, kNoWarpInstr);
  }
}

TEST(Sm, LastOfGroupTaggedOncePerChannel) {
  Harness h(all_loads(1.0, 12.0), 1);
  h.run_to(400, 100000);
  ASSERT_FALSE(h.requests.empty());
  // All requests belong to the single warp's first load.
  std::map<ChannelId, int> last_flags;
  std::map<ChannelId, const MemRequest*> last_seen;
  for (const MemRequest& r : h.requests) {
    if (r.last_of_group_at_mc) ++last_flags[r.loc.channel];
    last_seen[r.loc.channel] = &r;
  }
  for (const auto& [ch, count] : last_flags) {
    EXPECT_EQ(count, 1) << "channel " << static_cast<int>(ch);
  }
  // The flagged request must be the channel's final request in order.
  for (const auto& [ch, req] : last_seen) {
    EXPECT_TRUE(req->last_of_group_at_mc)
        << "final request per channel must carry the tag";
  }
}

TEST(Sm, StoresDoNotBlockWarp) {
  WorkloadProfile p = all_loads(0.0, 1.0);
  p.store_frac = 1.0;  // all memory instructions are stores
  Harness h(p, 1);
  h.run_to(800, 100000);  // no responses ever sent for writes
  EXPECT_GT(h.sm->stats().stores, 5u)
      << "stores are fire-and-forget; the warp keeps issuing";
}

TEST(Sm, MshrLimitStallsIssueGracefully) {
  WorkloadProfile p = all_loads(1.0, 30.0);  // huge divergent loads
  Harness h(p, 8);
  h.run_to(2000, 100000);
  // 32 MSHRs with ~30-line loads: after one load the file is nearly
  // full; further loads must stall rather than half-issue.
  EXPECT_GT(h.sm->stats().issue_stall_mshr, 0u);
  EXPECT_LE(h.sm->mshr().outstanding(), 32u);
}

TEST(Sm, TrackerFinalizedOnUnblock) {
  Harness h(all_loads(1.0, 4.0), 1);
  h.run_to(3000, 30);
  EXPECT_GT(h.tracker.summary().loads_finalized, 3u);
  EXPECT_EQ(h.tracker.inflight(), h.sm->mshr().outstanding() > 0 ? 1u : 0u);
}

TEST(Sm, InstructionsCountAllKinds) {
  WorkloadProfile p = all_loads(0.3, 4.0);
  p.mem_instr_frac = 0.3;
  p.store_frac = 0.2;
  Harness h(p, 4);
  h.run_to(4000, 30);
  const SmStats& s = h.sm->stats();
  EXPECT_GT(s.instructions, s.loads + s.stores);
}

}  // namespace
}  // namespace latdiv
