#include "dram/params.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

TEST(DramTiming, PaperTableIIConversions) {
  // tCK = 0.667 ns; every ns parameter rounds UP to whole command cycles.
  const DramTiming t = DramTiming::from(DramParams{});
  EXPECT_EQ(t.trc, 60u);    // 40 / 0.667 = 59.97
  EXPECT_EQ(t.trcd, 18u);   // 12 / 0.667 = 17.99
  EXPECT_EQ(t.trp, 18u);
  EXPECT_EQ(t.tcas, 18u);
  EXPECT_EQ(t.tras, 42u);   // 28 / 0.667 = 41.98
  EXPECT_EQ(t.trrd, 9u);    // 5.5 / 0.667 = 8.25
  EXPECT_EQ(t.twtr, 8u);    // 5 / 0.667 = 7.50
  EXPECT_EQ(t.tfaw, 35u);   // 23 / 0.667 = 34.48
  EXPECT_EQ(t.trtp, 3u);    // 2 / 0.667 = 3.00
  EXPECT_EQ(t.twl, 4u);
  EXPECT_EQ(t.tburst, 2u);
  EXPECT_EQ(t.trtrs, 1u);
  EXPECT_EQ(t.tccdl, 3u);
  EXPECT_EQ(t.tccds, 2u);
}

TEST(DramTiming, GeometryCarriedThrough) {
  const DramTiming t = DramTiming::from(DramParams{});
  EXPECT_EQ(t.banks, 16u);
  EXPECT_EQ(t.banks_per_group, 4u);
}

TEST(DramTiming, RowMissVsHitLatencyRatioMatchesScorePremise) {
  // The WG score constants (hit=1, miss=3) encode 12ns vs 36ns (§IV-B1).
  const DramTiming t = DramTiming::from(DramParams{});
  const Cycle hit = t.tcas;
  const Cycle miss = t.trp + t.trcd + t.tcas;
  EXPECT_EQ(miss, 3 * hit);
}

TEST(DramTiming, TurnaroundFormulas) {
  const DramTiming t = DramTiming::from(DramParams{});
  EXPECT_EQ(t.read_to_write(), t.tcas + t.tburst + t.trtrs - t.twl);
  EXPECT_EQ(t.write_to_read(), t.twl + t.tburst + t.twtr);
  EXPECT_GT(t.read_to_write(), 0u);
}

TEST(DramTiming, ExactMultiplesDoNotRoundUp) {
  DramParams p;
  p.tck_ns = 1.0;
  p.trcd_ns = 12.0;
  const DramTiming t = DramTiming::from(p);
  EXPECT_EQ(t.trcd, 12u);
}

TEST(DramTiming, RefreshParameters) {
  const DramTiming t = DramTiming::from(DramParams{});
  EXPECT_TRUE(t.refresh_enabled);
  EXPECT_GT(t.trefi, t.trfc);
  // ~1.9us at 0.667ns => ~2849 cycles.
  EXPECT_NEAR(static_cast<double>(t.trefi), 1900.0 / 0.667, 2.0);
}

TEST(DramTiming, DisabledRefreshRespected) {
  DramParams p;
  p.refresh_enabled = false;
  EXPECT_FALSE(DramTiming::from(p).refresh_enabled);
}

}  // namespace
}  // namespace latdiv
