// Tests for the Fig. 4 Zero-Latency-Divergence idealised policy.
#include "core/ideal.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/params.hpp"
#include "mc/controller.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

MemRequest read_to(BankId bank, RowId row, std::uint32_t col,
                   WarpInstrUid uid) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  return r;
}

struct Harness {
  Harness()
      : coord(std::make_shared<ZldCoordinator>()),
        mc(0, McConfig{}, timing_no_refresh(),
           std::make_unique<ZldPolicy>(coord),
           [this](const MemRequest& req, Cycle) { order.push_back(req); }) {}

  void run_to(Cycle end) {
    for (; now < end; ++now) mc.tick(now);
  }

  Cycle now = 0;
  std::shared_ptr<ZldCoordinator> coord;
  std::vector<MemRequest> order;
  MemoryController mc;
};

TEST(ZldCoordinator, TracksStartedInstructions) {
  ZldCoordinator c;
  EXPECT_FALSE(c.started(5));
  c.mark_started(5);
  EXPECT_TRUE(c.started(5));
  EXPECT_FALSE(c.started(6));
}

TEST(Zld, PrimaryMarksInstructionStarted) {
  Harness h;
  h.mc.push(read_to(0, 1, 0, 42), 0);
  h.run_to(5);
  EXPECT_TRUE(h.coord->started(42));
}

TEST(Zld, SecondaryBecomesPureBandwidthCost) {
  Harness h;
  // Request A opens bank 0 row 1; request B of the same warp targets a
  // *different* bank and row, which would normally cost a full
  // activate.  Under ZLD, once A is dispatched, B is retargeted onto an
  // open row and completes within CAS spacing of A.
  h.mc.push(read_to(0, 1, 0, 42), 0);
  h.mc.push(read_to(3, 9, 0, 42), 0);
  h.run_to(500);
  ASSERT_EQ(h.order.size(), 2u);
  const DramTiming t = timing_no_refresh();
  const Cycle delta = h.order[1].completed - h.order[0].completed;
  EXPECT_LE(delta, t.tccdl + 2) << "secondary must not pay PRE+ACT";
}

TEST(Zld, IndependentWarpsStillQueueNormally) {
  Harness h;
  h.mc.push(read_to(0, 1, 0, 1), 0);
  h.mc.push(read_to(0, 9, 0, 2), 0);  // different warp: a real row miss
  h.run_to(500);
  ASSERT_EQ(h.order.size(), 2u);
  const DramTiming t = timing_no_refresh();
  const Cycle delta = h.order[1].completed - h.order[0].completed;
  EXPECT_GE(delta, t.trp) << "other warps keep full bank timing";
}

TEST(Zld, CrossControllerStartIsShared) {
  // Two controllers sharing one coordinator: a primary dispatched on
  // controller 0 makes the same warp's request on controller 1 a
  // secondary immediately.
  auto coord = std::make_shared<ZldCoordinator>();
  std::vector<MemRequest> done0, done1;
  MemoryController mc0(0, McConfig{}, timing_no_refresh(),
                       std::make_unique<ZldPolicy>(coord),
                       [&](const MemRequest& r, Cycle) { done0.push_back(r); });
  MemoryController mc1(1, McConfig{}, timing_no_refresh(),
                       std::make_unique<ZldPolicy>(coord),
                       [&](const MemRequest& r, Cycle) { done1.push_back(r); });
  // Occupy controller 1 with a competing stream first so the shared
  // warp's request would otherwise wait.
  for (int i = 0; i < 4; ++i) mc1.push(read_to(1, 10 + i, 0, 9), 0);
  mc0.push(read_to(0, 1, 0, 42), 0);
  mc1.push(read_to(2, 7, 0, 42), 0);
  for (Cycle c = 0; c < 600; ++c) {
    mc0.tick(c);
    mc1.tick(c);
  }
  ASSERT_EQ(done0.size(), 1u);
  ASSERT_EQ(done1.size(), 5u);
  // The shared warp's request on controller 1 was flushed as a pure
  // bandwidth secondary: everything after the one real miss is a row hit,
  // so the whole tail completes within CAS spacing — no second activate.
  const DramTiming t = timing_no_refresh();
  Cycle instr42_done = 0;
  for (const MemRequest& r : done1) {
    if (r.tag.instr == 42) instr42_done = r.completed;
  }
  ASSERT_GT(instr42_done, 0u);
  EXPECT_LE(instr42_done - done1[0].completed, 5 * t.tccdl)
      << "the shared warp's request must not pay its own PRE+ACT";
}

}  // namespace
}  // namespace latdiv
