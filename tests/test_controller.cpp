// Integration tests for the controller scaffold: queues, command
// scheduler, write drain, refresh — using the trivial FCFS policy so the
// observed timing is a pure function of the DRAM constraints.
#include "mc/controller.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "dram/params.hpp"
#include "mc/policy_fcfs.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

MemRequest read_to(BankId bank, RowId row, std::uint32_t col = 0,
                   WarpInstrUid uid = 1) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.addr = (static_cast<Addr>(row) << 15) | (static_cast<Addr>(col) << 7);
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  return r;
}

MemRequest write_to(BankId bank, RowId row, std::uint32_t col = 0) {
  MemRequest r = read_to(bank, row, col, kNoWarpInstr);
  r.kind = ReqKind::kWrite;
  return r;
}

struct Harness {
  explicit Harness(DramTiming t = timing_no_refresh(), McConfig cfg = {})
      : mc(0, cfg, t,
           std::make_unique<FcfsPolicy>(),
           [this](const MemRequest& req, Cycle at) {
             completions.emplace_back(req, at);
           }) {}

  void run_to(Cycle end) {
    for (; now < end; ++now) mc.tick(now);
  }

  Cycle now = 0;
  std::vector<std::pair<MemRequest, Cycle>> completions;
  MemoryController mc;
};

TEST(Controller, SingleReadColdBankTiming) {
  Harness h;
  h.mc.push(read_to(0, 7), 0);
  h.run_to(200);
  ASSERT_EQ(h.completions.size(), 1u);
  const DramTiming t = timing_no_refresh();
  // ACT at cycle 0, RD at tRCD, data complete tCAS+tBURST later.
  EXPECT_EQ(h.completions[0].first.completed, t.trcd + t.tcas + t.tburst);
}

TEST(Controller, RowHitPairUsesCcd) {
  Harness h;
  h.mc.push(read_to(0, 7, 0), 0);
  h.mc.push(read_to(0, 7, 1), 0);
  h.run_to(300);
  ASSERT_EQ(h.completions.size(), 2u);
  const DramTiming t = timing_no_refresh();
  const Cycle first = h.completions[0].first.completed;
  const Cycle second = h.completions[1].first.completed;
  EXPECT_EQ(second - first, t.tccdl);  // same bank group, back-to-back
}

TEST(Controller, RowMissPaysPrechargeActivate) {
  Harness h;
  h.mc.push(read_to(0, 7), 0);
  h.mc.push(read_to(0, 8), 0);
  h.run_to(400);
  ASSERT_EQ(h.completions.size(), 2u);
  const DramTiming t = timing_no_refresh();
  const Cycle gap =
      h.completions[1].first.completed - h.completions[0].first.completed;
  // Second read waits for tRAS (from ACT@0), then tRP + tRCD.
  EXPECT_GE(gap, t.trp + t.trcd);
}

TEST(Controller, BankParallelismOverlapsActivates) {
  Harness h;
  h.mc.push(read_to(0, 7), 0);
  h.mc.push(read_to(4, 7), 0);  // different bank group
  h.run_to(300);
  ASSERT_EQ(h.completions.size(), 2u);
  const DramTiming t = timing_no_refresh();
  const Cycle gap =
      h.completions[1].first.completed - h.completions[0].first.completed;
  // Much closer than a serialised miss (tRP+tRCD): only the staggered
  // ACT (tRRD) and CAS-to-CAS spacing remain.
  EXPECT_LE(gap, t.trrd + t.tccds + 2);
}

TEST(Controller, CompletionCallbackTimestampsMatch) {
  Harness h;
  h.mc.push(read_to(2, 3), 0);
  h.run_to(200);
  ASSERT_EQ(h.completions.size(), 1u);
  EXPECT_EQ(h.completions[0].first.completed, h.completions[0].second);
}

TEST(Controller, ReadStatsAccumulate) {
  Harness h;
  h.mc.push(read_to(0, 1), 0);
  h.mc.push(read_to(1, 1), 0);
  h.run_to(300);
  EXPECT_EQ(h.mc.stats().reads_served, 2u);
  EXPECT_EQ(h.mc.stats().read_service_cycles.count(), 2u);
  EXPECT_GT(h.mc.stats().read_service_cycles.mean(), 0.0);
}

TEST(Controller, HighWatermarkTriggersDrain) {
  Harness h;
  for (std::uint32_t i = 0; i < 32; ++i) {
    h.mc.push(write_to(i % 16, i / 16), 0);
  }
  EXPECT_FALSE(h.mc.in_write_drain());
  h.run_to(5);
  EXPECT_TRUE(h.mc.in_write_drain());
  EXPECT_EQ(h.mc.stats().drains_started, 1u);
  h.run_to(3000);
  // Drained down to (at most) the low watermark, then stopped.
  EXPECT_FALSE(h.mc.in_write_drain());
  EXPECT_GE(h.mc.stats().writes_served, 16u);
  EXPECT_LE(h.mc.write_queue().size(), 16u);
}

TEST(Controller, OpportunisticDrainWhenIdle) {
  Harness h;
  h.mc.push(write_to(0, 1), 0);
  h.mc.push(write_to(0, 1, 1), 0);
  h.run_to(500);
  // Far below the high watermark, but the read side is idle: the writes
  // drain anyway.
  EXPECT_EQ(h.mc.stats().writes_served, 2u);
  EXPECT_EQ(h.mc.stats().drains_started, 0u);  // not a watermark drain
}

TEST(Controller, ReadsResumeAfterDrain) {
  Harness h;
  for (std::uint32_t i = 0; i < 32; ++i) h.mc.push(write_to(i % 16, 1), 0);
  h.run_to(10);
  h.mc.push(read_to(0, 3), 10);
  h.run_to(4000);
  EXPECT_EQ(h.completions.size(), 1u);
}

TEST(Controller, PredictedRowFollowsQueueTail) {
  Harness h;
  EXPECT_EQ(h.mc.predicted_row(0), kNoRow);
  h.mc.push(read_to(0, 7), 0);
  h.run_to(1);  // scheduled into the bank queue
  EXPECT_EQ(h.mc.predicted_row(0), 7u);
}

TEST(Controller, TailStreakCountsPlannedRun) {
  Harness h;
  McConfig cfg;
  for (int i = 0; i < 3; ++i) h.mc.push(read_to(0, 7, i), 0);
  h.run_to(3);  // FCFS feeds one per cycle
  EXPECT_EQ(h.mc.tail_streak(0), 3u);
  (void)cfg;
}

TEST(Controller, BanksWithWorkCountsNonEmptyQueues) {
  Harness h;
  h.mc.push(read_to(0, 1), 0);
  h.mc.push(read_to(5, 1), 0);
  h.run_to(2);
  EXPECT_EQ(h.mc.banks_with_work(), 2u);
}

TEST(Controller, BankQueueBackpressure) {
  Harness h;
  // 10 reads to one bank with queue depth 8: at most 8 enter immediately.
  for (int i = 0; i < 10; ++i) h.mc.push(read_to(0, i), 0);
  h.run_to(8);
  EXPECT_FALSE(h.mc.bank_queue_has_space(0));
  h.run_to(3000);
  EXPECT_EQ(h.completions.size(), 10u);
}

TEST(Controller, RefreshHappensPeriodically) {
  DramParams p;  // refresh enabled
  const DramTiming t = DramTiming::from(p);
  Harness h(t);
  h.run_to(t.trefi * 3 + 100);
  EXPECT_GE(h.mc.channel().stats().refreshes, 2u);
}

TEST(Controller, RefreshInterruptsTraffic) {
  DramParams p;
  const DramTiming t = DramTiming::from(p);
  Harness h(t);
  // Keep a steady stream of row hits flowing across the refresh point.
  for (int i = 0; i < 40; ++i) h.mc.push(read_to(0, 1, i % 16), 0);
  h.run_to(t.trefi + t.trfc + 2000);
  EXPECT_GE(h.mc.channel().stats().refreshes, 1u);
  EXPECT_EQ(h.completions.size(), 40u);  // nothing lost
}

TEST(Controller, GroupCompleteReachesPolicy) {
  struct Probe : TransactionScheduler {
    const char* name() const override { return "probe"; }
    void schedule_reads(MemoryController&, Cycle) override {}
    void on_group_complete(MemoryController&, const WarpTag& tag,
                           Cycle) override {
      seen.push_back(tag.instr);
    }
    std::vector<WarpInstrUid> seen;
  };
  auto probe = std::make_unique<Probe>();
  Probe* raw = probe.get();
  MemoryController mc(0, McConfig{}, timing_no_refresh(), std::move(probe),
                      nullptr);
  mc.notify_group_complete(WarpTag{0, 0, 42}, 5);
  ASSERT_EQ(raw->seen.size(), 1u);
  EXPECT_EQ(raw->seen[0], 42u);
}

TEST(Controller, CoordinationMessagesRouteToPolicy) {
  struct Probe : TransactionScheduler {
    const char* name() const override { return "probe"; }
    void schedule_reads(MemoryController&, Cycle) override {}
    void on_remote_selection(MemoryController&, const CoordMsg& msg,
                             Cycle) override {
      scores.push_back(msg.score);
    }
    std::vector<std::uint32_t> scores;
  };
  auto probe = std::make_unique<Probe>();
  Probe* raw = probe.get();
  MemoryController mc(0, McConfig{}, timing_no_refresh(), std::move(probe),
                      nullptr);
  mc.deliver_coordination(CoordMsg{1, WarpTag{}, 9}, 3);
  ASSERT_EQ(raw->scores.size(), 1u);
  EXPECT_EQ(raw->scores[0], 9u);
}

TEST(ControllerDeath, BadWatermarksAbort) {
  McConfig cfg;
  cfg.wq_low_watermark = 40;
  cfg.wq_high_watermark = 32;
  EXPECT_DEATH(MemoryController(0, cfg, timing_no_refresh(),
                                std::make_unique<FcfsPolicy>(), nullptr),
               "watermark");
}

}  // namespace
}  // namespace latdiv
