// Statistical validation of every shipped workload profile against its
// own configuration — the property that makes scheduler comparisons
// meaningful is that each profile delivers the stream it promises.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "gpu/coalescer.hpp"
#include "mem/address_map.hpp"
#include "workload/generator.hpp"

namespace latdiv {
namespace {

struct Measured {
  double mem_frac = 0;
  double store_frac = 0;
  double divergent_frac = 0;
  double lines_per_load = 0;
  double mean_channels = 0;
  int loads = 0;
};

Measured measure(const WorkloadProfile& p, std::uint64_t seed) {
  WorkloadGenerator gen(p, 2, 8, seed);
  const AddressMap amap{AddressMapConfig{}};
  Coalescer coal;
  std::vector<Addr> lines;
  Measured m;
  int instrs = 0;
  int mems = 0;
  int stores = 0;
  int divergent = 0;
  double total_lines = 0;
  double total_channels = 0;
  for (int i = 0; i < 60000 && m.loads < 4000; ++i) {
    const SmId sm = static_cast<SmId>(i % 2);
    const WarpId w = static_cast<WarpId>((i / 2) % 8);
    const WarpInstr instr = gen.next(sm, w);
    ++instrs;
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    ++mems;
    if (instr.kind == WarpInstr::Kind::kStore) {
      ++stores;
      continue;
    }
    coal.coalesce(instr, lines);
    ++m.loads;
    divergent += lines.size() > 1;
    total_lines += static_cast<double>(lines.size());
    std::set<ChannelId> chans;
    for (Addr line : lines) chans.insert(amap.decode(line).channel);
    total_channels += static_cast<double>(chans.size());
  }
  m.mem_frac = static_cast<double>(mems) / instrs;
  m.store_frac = mems ? static_cast<double>(stores) / mems : 0;
  m.divergent_frac = static_cast<double>(divergent) / m.loads;
  m.lines_per_load = total_lines / m.loads;
  m.mean_channels = total_channels / m.loads;
  return m;
}

class IrregularProfile : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(Suite, IrregularProfile,
                         ::testing::Range<std::size_t>(0, 11),
                         [](const auto& info) {
                           return irregular_suite()[info.param].name;
                         });

TEST_P(IrregularProfile, MatchesConfiguredStatistics) {
  const WorkloadProfile p = irregular_suite()[GetParam()];
  const Measured m = measure(p, 5);
  ASSERT_GE(m.loads, 1000);
  EXPECT_NEAR(m.mem_frac, p.mem_instr_frac, 0.02) << p.name;
  EXPECT_NEAR(m.store_frac, p.store_frac, 0.04) << p.name;
  EXPECT_NEAR(m.divergent_frac, p.divergent_load_frac, 0.04) << p.name;
  // Lines/load = (1-p) + p*E[k_truncated]; bound loosely from the knobs.
  EXPECT_GT(m.lines_per_load, 1.0) << p.name;
  EXPECT_LT(m.lines_per_load, p.divergent_lines_mean + 2.0) << p.name;
}

TEST_P(IrregularProfile, StableAcrossSeeds) {
  const WorkloadProfile p = irregular_suite()[GetParam()];
  const Measured a = measure(p, 11);
  const Measured b = measure(p, 23);
  EXPECT_NEAR(a.divergent_frac, b.divergent_frac, 0.05) << p.name;
  EXPECT_NEAR(a.lines_per_load, b.lines_per_load, 0.6) << p.name;
}

TEST(WorkloadStats, ChannelGroupingMatchesPaperSplit) {
  // Fig. 3 discussion: cfd/sp/sssp/spmv spread wide; nw stays narrow.
  const double spmv =
      measure(profile_by_name("spmv"), 3).mean_channels;
  const double sssp =
      measure(profile_by_name("sssp"), 3).mean_channels;
  const double nw = measure(profile_by_name("nw"), 3).mean_channels;
  EXPECT_GT(spmv, 2.5);
  EXPECT_GT(sssp, 2.3);
  EXPECT_LT(nw, 2.1);
  EXPECT_GT(spmv, nw + 0.8);
}

TEST(WorkloadStats, RegularSuiteIsCoalescedAndStreaming) {
  for (const WorkloadProfile& p : regular_suite()) {
    const Measured m = measure(p, 7);
    EXPECT_LT(m.divergent_frac, 0.12) << p.name;
    EXPECT_LT(m.lines_per_load, 1.5) << p.name;
  }
}

TEST(WorkloadStats, SuiteAveragesMatchFig2) {
  double div = 0;
  double reqs = 0;
  for (const WorkloadProfile& p : irregular_suite()) {
    const Measured m = measure(p, 9);
    div += m.divergent_frac;
    reqs += m.lines_per_load;
  }
  EXPECT_NEAR(div / 11.0, 0.56, 0.05);   // paper: 56%
  EXPECT_NEAR(reqs / 11.0, 5.9, 1.0);    // paper: 5.9
}

}  // namespace
}  // namespace latdiv
