// Unit tests for the introspection layer's metric primitives: log2
// histogram bucketing and percentile math (including the empty /
// one-sample / extreme-value edge cases the exporter must survive), and
// the registry's deterministic JSON/CSV exports.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "exp/json.hpp"

namespace latdiv::obs {
namespace {

constexpr std::uint64_t kMax64 = std::numeric_limits<std::uint64_t>::max();

TEST(Log2Histogram, BucketOfMatchesBitWidth) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Log2Histogram::bucket_of((1ull << 31)), 32u);
  EXPECT_EQ(Log2Histogram::bucket_of((1ull << 32) - 1), 32u);
  EXPECT_EQ(Log2Histogram::bucket_of(1ull << 63), 64u);
  EXPECT_EQ(Log2Histogram::bucket_of(kMax64), 64u);
}

TEST(Log2Histogram, EdgesArePowersOfTwo) {
  // Bucket 0 holds exactly {0}.
  EXPECT_EQ(Log2Histogram::lower_edge(0), 0u);
  EXPECT_EQ(Log2Histogram::upper_edge(0), 0u);
  // Bucket i >= 1 holds [2^(i-1), 2^i - 1].
  for (std::size_t i = 1; i < 64; ++i) {
    EXPECT_EQ(Log2Histogram::lower_edge(i), 1ull << (i - 1));
    EXPECT_EQ(Log2Histogram::upper_edge(i), (1ull << i) - 1);
    // Edges partition the range: upper(i) + 1 == lower(i + 1).
    EXPECT_EQ(Log2Histogram::upper_edge(i) + 1, Log2Histogram::lower_edge(i + 1));
  }
  // The top bucket's upper edge saturates instead of overflowing.
  EXPECT_EQ(Log2Histogram::upper_edge(64), kMax64);
  // Every bucket contains its own edges.
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::lower_edge(i)), i);
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::upper_edge(i)), i);
  }
}

TEST(Log2Histogram, EmptyHistogramIsInert) {
  const Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
}

TEST(Log2Histogram, OneSampleDominatesEveryQuantile) {
  Log2Histogram h;
  h.add(37);  // bucket 6: [32, 63]
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.sum(), 37u);
  EXPECT_EQ(h.min(), 37u);
  EXPECT_EQ(h.max(), 37u);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 63u) << q;
  }
}

TEST(Log2Histogram, QuantileIsBucketUpperEdge) {
  Log2Histogram h;
  // 90 samples in bucket 1 (value 1), 10 in bucket 7 ([64, 127]).
  for (int i = 0; i < 90; ++i) h.add(1);
  for (int i = 0; i < 10; ++i) h.add(100);
  EXPECT_EQ(h.quantile(0.50), 1u);
  EXPECT_EQ(h.quantile(0.90), 1u);   // 90th sample is still in bucket 1
  EXPECT_EQ(h.quantile(0.91), 127u); // 91st crosses into bucket 7
  EXPECT_EQ(h.quantile(0.99), 127u);
  EXPECT_EQ(h.quantile(1.0), 127u);
  // Out-of-range fractions clamp instead of misbehaving.
  EXPECT_EQ(h.quantile(-0.5), 1u);
  EXPECT_EQ(h.quantile(2.0), 127u);
}

TEST(Log2Histogram, ExtremeValuesNeitherOverflowNorDrop) {
  Log2Histogram h;
  h.add(0);
  h.add(kMax64);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.count_in(0), 1u);
  EXPECT_EQ(h.count_in(64), 1u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), kMax64);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), kMax64);
}

TEST(Log2Histogram, MergeAddsCountsAndKeepsExtremes) {
  Log2Histogram a, b;
  a.add(5);
  a.add(9);
  b.add(2);
  b.add(1000);
  a.merge(b);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.sum(), 5u + 9u + 2u + 1000u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 1000u);
  // Merging an empty histogram changes nothing.
  const Log2Histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.min(), 2u);
}

TEST(MetricRegistry, FindOrCreateReturnsStableInstruments) {
  MetricRegistry reg;
  Counter& c = reg.counter("events");
  c.add(3);
  EXPECT_EQ(&reg.counter("events"), &c);  // same instrument, not a copy
  EXPECT_EQ(reg.counter("events").value(), 3u);
  EXPECT_EQ(reg.find_counter("events")->value(), 3u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  Gauge& g = reg.gauge("depth");
  g.set(7);
  g.set(4);
  EXPECT_EQ(reg.find_gauge("depth")->value(), 4u);

  Log2Histogram& h = reg.histogram("lat");
  h.add(10);
  EXPECT_EQ(reg.find_histogram("lat")->total(), 1u);
  EXPECT_EQ(reg.find_histogram("depth"), nullptr);  // kind-scoped lookup
}

TEST(MetricRegistry, JsonExportParsesAndRoundTripsValues) {
  MetricRegistry reg;
  reg.counter("c.events").add(42);
  reg.gauge("g.depth").set(9);
  Log2Histogram& h = reg.histogram("h.lat");
  for (int i = 0; i < 10; ++i) h.add(100);

  const exp::JsonValue doc = exp::JsonValue::parse(reg.to_json());
  EXPECT_EQ(doc.at("counters").at("c.events").as_number(), 42.0);
  EXPECT_EQ(doc.at("gauges").at("g.depth").as_number(), 9.0);
  const exp::JsonValue& hist = doc.at("histograms").at("h.lat");
  EXPECT_EQ(hist.at("count").as_number(), 10.0);
  EXPECT_EQ(hist.at("sum").as_number(), 1000.0);
  EXPECT_EQ(hist.at("p50").as_number(), 127.0);
  EXPECT_EQ(hist.at("p99").as_number(), 127.0);
  // Exactly one non-empty bucket: [64, 127] with count 10.
  const auto& buckets = hist.at("buckets").as_array();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].as_array()[0].as_number(), 64.0);
  EXPECT_EQ(buckets[0].as_array()[1].as_number(), 127.0);
  EXPECT_EQ(buckets[0].as_array()[2].as_number(), 10.0);
}

TEST(MetricRegistry, ExportsAreByteDeterministic) {
  const auto build = [] {
    auto reg = std::make_unique<MetricRegistry>();
    reg->counter("a").add(1);
    reg->gauge("b").set(2);
    reg->histogram("c").add(3);
    return reg;
  };
  const auto r1 = build();
  const auto r2 = build();
  EXPECT_EQ(r1->to_json(), r2->to_json());
  EXPECT_EQ(r1->to_csv(), r2->to_csv());
  // CSV is long format with a header.
  EXPECT_NE(r1->to_csv().find("kind,name,key,value"), std::string::npos);
  EXPECT_NE(r1->to_csv().find("counter,a,value,1"), std::string::npos);
}

}  // namespace
}  // namespace latdiv::obs
