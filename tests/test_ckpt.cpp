// Checkpoint determinism contract (src/ckpt): loading a snapshot taken
// at cycle C into a fresh simulator and running to the end must be
// byte-identical to the run that never paused — across schedulers,
// workload frontends, shard counts, and idle fast-forward.  DESIGN.md
// "Checkpoint, sampling & determinism contract" states the guarantee;
// this suite is its enforcement.
//
// Also covered here: snapshot-of-resume stability (re-saving at the same
// cycle reproduces the same bytes, the basis of CI's golden-hash job),
// the inspect walk, and the full CkptError taxonomy — truncation,
// corruption, version/fingerprint mismatches, and the save/load
// refusals — every failure is a pinned message, never silent UB.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "ckpt/snapshot.hpp"
#include "common/crc32.hpp"
#include "common/endian.hpp"
#include "exp/executor.hpp"
#include "mc/policy_gmc.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

SimConfig scenario_cfg(SchedulerKind sched, const std::string& scenario,
                       std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = sched;
  cfg.seed = seed;
  // The scenario replaces the statistical generator as the instruction
  // stream; keep its name in the workload identity so the config
  // fingerprint distinguishes snapshots of different kernels.
  cfg.workload.name = scenario;
  cfg.instr_source = [scenario](std::uint32_t sms, std::uint32_t warps,
                                std::uint64_t s) {
    return scenario::make_scenario(scenario::scenario_by_name(scenario), sms,
                                   warps, s);
  };
  cfg.max_cycles = 4'000;
  cfg.warmup_cycles = 400;
  return cfg;
}

/// Compare two finished runs on every reported metric plus the raw
/// counters the metric flattening rounds through doubles (same contract
/// as tests/test_shard.cpp).
void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(exp::metrics_from(a), exp::metrics_from(b));
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.dram_activates, b.dram_activates);
  EXPECT_EQ(a.coord_messages, b.coord_messages);
  EXPECT_EQ(a.sm_no_ready_warp_cycles, b.sm_no_ready_warp_cycles);
  EXPECT_EQ(a.wg_groups_selected, b.wg_groups_selected);
  EXPECT_EQ(a.wg_merb_deferrals, b.wg_merb_deferrals);
  ASSERT_EQ(a.bank_breakdown.size(), b.bank_breakdown.size());
  for (std::size_t c = 0; c < a.bank_breakdown.size(); ++c) {
    for (std::size_t bk = 0; bk < a.bank_breakdown[c].size(); ++bk) {
      EXPECT_EQ(a.bank_breakdown[c][bk].activates,
                b.bank_breakdown[c][bk].activates)
          << "channel " << c << " bank " << bk;
    }
  }
}

// ---------------------------------------------------------------------------
// The core contract: straight-through vs save/load/resume, across every
// axis that changes execution internals without changing semantics.

class CkptResume
    : public ::testing::TestWithParam<
          std::tuple<SchedulerKind, const char*, std::uint32_t, bool>> {};

TEST_P(CkptResume, ResumeMatchesStraightThrough) {
  const auto [sched, scenario, shards, ff] = GetParam();
  SimConfig cfg = scenario_cfg(sched, scenario);
  cfg.shards = shards;
  cfg.idle_fast_forward = ff;

  const RunResult straight = Simulator(cfg).run();

  Simulator paused(cfg);
  paused.run_to(cfg.max_cycles / 2);
  ASSERT_EQ(paused.now(), cfg.max_cycles / 2);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);

  Simulator resumed(cfg);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  ASSERT_EQ(resumed.now(), cfg.max_cycles / 2);

  // Snapshot-of-resume stability: the loaded simulator re-serializes to
  // the exact bytes it was loaded from (basis of CI's golden hash).
  EXPECT_EQ(ckpt::save_snapshot(resumed), snap);

  resumed.run_to(cfg.max_cycles);
  expect_same_result(straight, resumed.finish());
}

INSTANTIATE_TEST_SUITE_P(
    SchedXScenXShardsXFf, CkptResume,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::kGmc, SchedulerKind::kWgM,
                          SchedulerKind::kWgW),
        ::testing::Values("pointer-chase", "powerlaw-rows",
                          "threshold-compact"),
        ::testing::Values(1u, 2u, 6u), ::testing::Bool()),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param));
      n += '_';
      n += std::get<1>(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_shards" + std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_ff" : "_noff");
    });

// A snapshot records simulated state only, never execution policy: one
// taken under the serial core resumes under the sharded core (and the
// reverse) with identical results.
TEST(CkptResumeCross, SnapshotCrossesShardCounts) {
  SimConfig cfg = scenario_cfg(SchedulerKind::kWgW, "powerlaw-rows");

  SimConfig serial = cfg;
  serial.shards = 1;
  const RunResult straight = Simulator(serial).run();

  Simulator paused(serial);
  paused.run_to(cfg.max_cycles / 2);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);

  SimConfig sharded = cfg;
  sharded.shards = 6;
  Simulator resumed(sharded);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  resumed.run_to(cfg.max_cycles);
  expect_same_result(straight, resumed.finish());
}

// The statistical generator frontend (no custom source) round-trips its
// per-warp RNG streams the same way the scenario kernels do.
TEST(CkptResumeGenerator, GeneratorCursorsRoundTrip) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = SchedulerKind::kWgM;
  cfg.workload = profile_by_name("bfs");
  cfg.max_cycles = 4'000;
  cfg.warmup_cycles = 400;

  const RunResult straight = Simulator(cfg).run();
  Simulator paused(cfg);
  paused.run_to(1'000);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);
  Simulator resumed(cfg);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  resumed.run_to(cfg.max_cycles);
  expect_same_result(straight, resumed.finish());
}

// Observability artifacts (request trace, time series, metrics export)
// must also be byte-identical across a pause/resume: the obs hub's
// buffers, named-track sets and series CSV all travel in the snapshot.
TEST(CkptResumeObs, TraceTimeseriesAndMetricsBytesMatch) {
  SimConfig cfg = scenario_cfg(SchedulerKind::kWgM, "pointer-chase");
  cfg.obs.trace = true;
  cfg.obs.timeseries = true;
  cfg.obs.sample_interval = 250;

  std::string trace1, series1, metrics1;
  {
    Simulator sim(cfg);
    (void)sim.run();
    trace1 = sim.obs()->trace_json();
    series1 = sim.obs()->timeseries_csv();
    metrics1 = sim.obs()->metrics_json();
  }
  Simulator paused(cfg);
  paused.run_to(2'000);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);
  Simulator resumed(cfg);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  (void)resumed.run();
  EXPECT_EQ(trace1, resumed.obs()->trace_json());
  EXPECT_EQ(series1, resumed.obs()->timeseries_csv());
  EXPECT_EQ(metrics1, resumed.obs()->metrics_json());
}

// Checker shadow state (protocol timing shadows, invariant audit count)
// resumes mid-run without false violations.
TEST(CkptResumeCheckers, ShadowStateRoundTrips) {
  SimConfig cfg = scenario_cfg(SchedulerKind::kGmc, "threshold-compact");
  cfg.check.protocol = true;
  cfg.check.invariants = true;

  Simulator straight(cfg);
  (void)straight.run();
  Simulator paused(cfg);
  paused.run_to(2'000);
  const std::vector<unsigned char> snap = ckpt::save_snapshot(paused);
  Simulator resumed(cfg);
  ckpt::load_snapshot(resumed, snap.data(), snap.size());
  (void)resumed.run();

  for (std::size_t p = 0; p < cfg.icnt.partitions; ++p) {
    ASSERT_NE(straight.protocol_checker(p), nullptr);
    EXPECT_EQ(straight.protocol_checker(p)->violations().size(),
              resumed.protocol_checker(p)->violations().size());
    EXPECT_EQ(straight.protocol_checker(p)->commands_checked(),
              resumed.protocol_checker(p)->commands_checked());
  }
  ASSERT_NE(straight.invariant_checker(), nullptr);
  EXPECT_EQ(straight.invariant_checker()->violations().size(),
            resumed.invariant_checker()->violations().size());
}

// ---------------------------------------------------------------------------
// File round-trip and the inspect walk.

TEST(CkptFile, SaveLoadInspectRoundTrip) {
  SimConfig cfg = scenario_cfg(SchedulerKind::kWgM, "powerlaw-rows");
  Simulator paused(cfg);
  paused.run_to(1'500);

  const std::string path = ::testing::TempDir() + "latdiv_ckpt_test.snap";
  ckpt::save_snapshot_file(paused, path);

  const ckpt::SnapshotInfo info = ckpt::inspect_snapshot_file(path);
  EXPECT_EQ(info.version, ckpt::kSnapshotVersion);
  EXPECT_EQ(info.fingerprint, ckpt::config_fingerprint(cfg));
  EXPECT_EQ(info.cycle, 1'500u);
  ASSERT_EQ(info.sections.size(), 7u);
  const char* kOrder[] = {"CORE", "SRCE", "GPUS", "ICNT",
                          "MCTL", "CHKR", "OBSV"};
  std::uint64_t total = ckpt::kSnapshotHeaderBytes;
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    EXPECT_EQ(info.sections[i].tag, kOrder[i]);
    total += 8 + info.sections[i].payload_bytes + 4;
  }
  EXPECT_EQ(info.file_bytes, total);

  Simulator resumed(cfg);
  ckpt::load_snapshot_file(resumed, path);
  EXPECT_EQ(resumed.now(), 1'500u);
  std::remove(path.c_str());
}

TEST(CkptFile, MissingFileThrows) {
  SimConfig cfg = scenario_cfg(SchedulerKind::kGmc, "pointer-chase");
  Simulator sim(cfg);
  EXPECT_THROW(
      ckpt::load_snapshot_file(sim, "/nonexistent/latdiv.snap"),
      ckpt::CkptError);
  EXPECT_THROW((void)ckpt::inspect_snapshot_file("/nonexistent/latdiv.snap"),
               ckpt::CkptError);
}

// ---------------------------------------------------------------------------
// Error taxonomy: every malformed input is a pinned CkptError message.

class CkptErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = scenario_cfg(SchedulerKind::kWgM, "pointer-chase");
    Simulator sim(cfg_);
    sim.run_to(1'000);
    snap_ = ckpt::save_snapshot(sim);
  }

  void expect_load_error(const std::vector<unsigned char>& bytes,
                         const std::string& message) {
    Simulator sim(cfg_);
    try {
      ckpt::load_snapshot(sim, bytes.data(), bytes.size());
      FAIL() << "expected CkptError: " << message;
    } catch (const ckpt::CkptError& e) {
      EXPECT_EQ(std::string(e.what()), message);
    }
  }

  /// Recompute the header CRC after patching header fields, so the edit
  /// under test is the only corruption the loader sees.
  static void fix_header_crc(std::vector<unsigned char>& bytes) {
    put_le32(bytes.data() + 20, crc32(bytes.data(), 20));
  }

  SimConfig cfg_;
  std::vector<unsigned char> snap_;
};

TEST_F(CkptErrors, EmptyInput) {
  expect_load_error({}, "snapshot truncated: missing header");
}

TEST_F(CkptErrors, BadMagic) {
  std::vector<unsigned char> bad = snap_;
  bad[0] = 'X';
  expect_load_error(bad, "not a latdiv snapshot (bad magic)");
}

TEST_F(CkptErrors, HeaderCrcMismatch) {
  std::vector<unsigned char> bad = snap_;
  bad[12] ^= 0xff;  // cycle field; CRC not recomputed
  expect_load_error(bad, "snapshot corrupt: header CRC mismatch");
}

TEST_F(CkptErrors, UnsupportedVersion) {
  std::vector<unsigned char> bad = snap_;
  put_le32(bad.data() + 4, 2);
  fix_header_crc(bad);
  expect_load_error(bad, "unsupported snapshot version 2 (expected 1)");
}

TEST_F(CkptErrors, FingerprintMismatch) {
  SimConfig other = cfg_;
  other.seed = cfg_.seed + 1;
  Simulator sim(other);
  try {
    ckpt::load_snapshot(sim, snap_.data(), snap_.size());
    FAIL() << "expected fingerprint mismatch";
  } catch (const ckpt::CkptError& e) {
    EXPECT_EQ(std::string(e.what()),
              "snapshot configuration fingerprint mismatch: the snapshot "
              "was taken under a different simulation configuration");
  }
}

TEST_F(CkptErrors, TruncatedBody) {
  std::vector<unsigned char> bad(snap_.begin(), snap_.begin() + 64);
  Simulator sim(cfg_);
  EXPECT_THROW(ckpt::load_snapshot(sim, bad.data(), bad.size()),
               ckpt::CkptError);
  EXPECT_THROW((void)ckpt::inspect_snapshot(bad.data(), bad.size()),
               ckpt::CkptError);
}

TEST_F(CkptErrors, CorruptedPayloadFailsSectionCrc) {
  std::vector<unsigned char> bad = snap_;
  bad[ckpt::kSnapshotHeaderBytes + 8 + 2] ^= 0xff;  // inside CORE payload
  expect_load_error(bad, "snapshot corrupt: CRC mismatch in section 'CORE'");
  EXPECT_THROW((void)ckpt::inspect_snapshot(bad.data(), bad.size()),
               ckpt::CkptError);
}

TEST_F(CkptErrors, CustomPolicyRefusesToSnapshot) {
  SimConfig cfg = cfg_;
  cfg.custom_policy = [gmc = cfg.gmc](ChannelId, const DramTiming&) {
    return std::make_unique<GmcPolicy>(gmc);
  };
  Simulator sim(cfg);
  try {
    (void)ckpt::save_snapshot(sim);
    FAIL() << "expected custom-policy refusal";
  } catch (const ckpt::CkptError& e) {
    EXPECT_EQ(std::string(e.what()),
              "cannot snapshot a run with a custom scheduling policy");
  }
}

TEST_F(CkptErrors, RecordingRunRefusesToSnapshot) {
  SimConfig cfg = cfg_;
  cfg.record_trace_path = ::testing::TempDir() + "latdiv_ckpt_rec.trace";
  Simulator sim(cfg);
  try {
    (void)ckpt::save_snapshot(sim);
    FAIL() << "expected trace-recording refusal";
  } catch (const ckpt::CkptError& e) {
    EXPECT_EQ(std::string(e.what()), "cannot snapshot a trace-recording run");
  }
  std::remove(cfg.record_trace_path.c_str());
}

TEST_F(CkptErrors, NonCheckpointableSourceRefusesToSnapshot) {
  struct IdleSource final : InstrSource {
    [[nodiscard]] WarpInstr next(SmId, WarpId) override {
      WarpInstr instr;
      instr.kind = WarpInstr::Kind::kCompute;
      instr.latency = 8;
      instr.active_lanes = 0;
      return instr;
    }
  };
  SimConfig cfg = cfg_;
  cfg.instr_source = [](std::uint32_t, std::uint32_t, std::uint64_t) {
    return std::unique_ptr<InstrSource>(new IdleSource);
  };
  Simulator sim(cfg);
  try {
    (void)ckpt::save_snapshot(sim);
    FAIL() << "expected non-checkpointable source refusal";
  } catch (const ckpt::CkptError& e) {
    EXPECT_EQ(std::string(e.what()),
              "instruction source does not support checkpointing (save)");
  }
}

}  // namespace
}  // namespace latdiv
