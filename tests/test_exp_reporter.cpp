// Artifact aggregation and serialisation: mean/stddev over seeds,
// speedups vs. the baseline column, JSON/CSV round trips.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/reporter.hpp"

using namespace latdiv::exp;

namespace {

PointResult ok_point(const std::string& row, const std::string& col,
                     std::uint64_t seed, double ipc) {
  PointResult p;
  p.id = row + "/" + col + "/s" + std::to_string(seed);
  p.row = row;
  p.col = col;
  p.workload = row;
  p.scheduler = col;
  p.seed = seed;
  p.ok = true;
  p.wall_ms = 12.5;
  p.metrics["ipc"] = ipc;
  p.metrics["loads"] = 100.0;
  return p;
}

PointResult failed_point(const std::string& row, const std::string& col) {
  PointResult p;
  p.id = row + "/" + col + "/s1";
  p.row = row;
  p.col = col;
  p.seed = 1;
  p.ok = false;
  p.error = "simulated crash";
  return p;
}

SweepSpec spec_with_baseline() {
  SweepSpec spec;
  spec.name = "unit";
  spec.title = "unit sweep";
  spec.primary_metric = "ipc";
  spec.baseline_col = "base";
  return spec;
}

/// Two rows x {base, opt}, two seeds each; opt is exactly 2x / 4x base.
std::vector<PointResult> two_by_two() {
  return {
      ok_point("w1", "base", 1, 1.0), ok_point("w1", "base", 2, 3.0),
      ok_point("w1", "opt", 1, 4.0),  ok_point("w1", "opt", 2, 4.0),
      ok_point("w2", "base", 1, 2.0), ok_point("w2", "base", 2, 2.0),
      ok_point("w2", "opt", 1, 8.0),  ok_point("w2", "opt", 2, 8.0),
  };
}

}  // namespace

TEST(ExpReporter, AggregatesMeanAndPopulationStddev) {
  RunShape shape{.seeds = 2};
  const Artifact a = make_artifact(spec_with_baseline(), shape, two_by_two());
  ASSERT_EQ(a.cells.size(), 4u);

  const CellAggregate& w1_base = a.cells[0];
  EXPECT_EQ(w1_base.row, "w1");
  EXPECT_EQ(w1_base.col, "base");
  EXPECT_EQ(w1_base.n, 2u);
  EXPECT_EQ(w1_base.failed, 0u);
  EXPECT_DOUBLE_EQ(w1_base.metrics.at("ipc").mean, 2.0);   // (1+3)/2
  EXPECT_DOUBLE_EQ(w1_base.metrics.at("ipc").stddev, 1.0); // population
  EXPECT_DOUBLE_EQ(w1_base.metrics.at("loads").stddev, 0.0);
}

TEST(ExpReporter, SpeedupsAndColumnGeomean) {
  RunShape shape{.seeds = 2};
  const Artifact a = make_artifact(spec_with_baseline(), shape, two_by_two());

  // w1: 4.0/2.0 = 2x.  w2: 8.0/2.0 = 4x.  Baseline column has no speedup.
  EXPECT_DOUBLE_EQ(a.cells[0].speedup, 0.0);
  EXPECT_DOUBLE_EQ(a.cells[1].speedup, 2.0);
  EXPECT_DOUBLE_EQ(a.cells[3].speedup, 4.0);

  ASSERT_EQ(a.col_geomean.size(), 1u);  // baseline column omitted
  EXPECT_NEAR(a.col_geomean.at("opt"), std::sqrt(2.0 * 4.0), 1e-12);
}

TEST(ExpReporter, NoBaselineMeansAbsoluteGeomeans) {
  SweepSpec spec = spec_with_baseline();
  spec.baseline_col.clear();
  const Artifact a = make_artifact(spec, RunShape{.seeds = 2}, two_by_two());
  for (const CellAggregate& c : a.cells) EXPECT_DOUBLE_EQ(c.speedup, 0.0);
  EXPECT_NEAR(a.col_geomean.at("base"), std::sqrt(2.0 * 2.0), 1e-12);
  EXPECT_NEAR(a.col_geomean.at("opt"), std::sqrt(4.0 * 8.0), 1e-12);
}

TEST(ExpReporter, FailedPointsAreCountedNotAggregated) {
  auto points = two_by_two();
  points.push_back(failed_point("w3", "base"));
  const Artifact a =
      make_artifact(spec_with_baseline(), RunShape{}, std::move(points));
  EXPECT_EQ(failed_points(a), 1u);

  const CellAggregate& w3 = a.cells.back();
  EXPECT_EQ(w3.row, "w3");
  EXPECT_EQ(w3.n, 0u);
  EXPECT_EQ(w3.failed, 1u);
  EXPECT_TRUE(w3.metrics.empty());
}

TEST(ExpReporter, JsonRoundTripPreservesEveryField) {
  auto points = two_by_two();
  points.push_back(failed_point("w3", "opt"));
  SweepSpec spec = spec_with_baseline();
  spec.reference = "paper claim";
  spec.col_order = {"base", "opt"};
  RunShape shape{.cycles = 12'500, .warmup = 1'250, .base_seed = 7,
                 .seeds = 2};
  const Artifact a = make_artifact(spec, shape, std::move(points));

  const std::string text = to_json(a);
  const Artifact back = artifact_from_json(text);
  EXPECT_EQ(back.spec.name, "unit");
  EXPECT_EQ(back.spec.reference, "paper claim");
  EXPECT_EQ(back.spec.col_order, spec.col_order);
  EXPECT_EQ(back.shape.cycles, 12'500u);
  EXPECT_EQ(back.shape.base_seed, 7u);
  EXPECT_EQ(back.points.size(), a.points.size());
  EXPECT_EQ(back.points.back().ok, false);
  EXPECT_EQ(back.points.back().error, "simulated crash");
  EXPECT_EQ(back.cells.size(), a.cells.size());
  EXPECT_DOUBLE_EQ(back.cells[1].speedup, 2.0);

  // Serialising the parsed artifact reproduces the bytes exactly.
  EXPECT_EQ(to_json(back), text);
}

TEST(ExpReporter, TimingIsOptInBecauseItIsNondeterministic) {
  const Artifact a =
      make_artifact(spec_with_baseline(), RunShape{}, {ok_point("w", "base",
                                                               1, 1.0)});
  EXPECT_EQ(to_json(a).find("wall_ms"), std::string::npos);
  EXPECT_NE(to_json(a, /*include_timing=*/true).find("wall_ms"),
            std::string::npos);
}

TEST(ExpReporter, RejectsUnknownSchema) {
  const Artifact a = make_artifact(spec_with_baseline(), RunShape{}, {});
  std::string text = to_json(a);
  const std::size_t pos = text.find("latdiv-sweep/1");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, std::string("latdiv-sweep/1").size(), "latdiv-sweep/9");
  EXPECT_THROW((void)artifact_from_json(text), std::runtime_error);
}

TEST(ExpReporter, CsvHasPointAndCellRows) {
  const Artifact a =
      make_artifact(spec_with_baseline(), RunShape{.seeds = 2}, two_by_two());
  const std::string csv = to_csv(a);
  EXPECT_EQ(csv.find("kind,id,row,col,workload,scheduler,seed,status,metric,"
                     "value,stddev,n,failed\n"),
            0u);
  EXPECT_NE(csv.find("point,w1/base/s1,w1,base,w1,base,1,ok,ipc,1,"),
            std::string::npos);
  EXPECT_NE(csv.find("cell,,w1,base,,,,ok,ipc,2,1,2,0"), std::string::npos);
  EXPECT_NE(csv.find("speedup_vs_base,2,,2,0"), std::string::npos);
}
