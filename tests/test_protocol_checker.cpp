// The checkers must themselves be checked: a verifier that never fires is
// indistinguishable from a correct design.  The negative-path tests feed
// ProtocolChecker deliberately illegal command sequences and assert each
// rule trips; the positive-path tests replay legal sequences (including
// everything the real Channel emits) and assert silence; the end-to-end
// tests run the full simulator under both checkers for every shipped
// scheduling policy.
#include "check/protocol_checker.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "check/invariant_checker.hpp"
#include "dram/channel.hpp"
#include "mc/policy_fcfs.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

DramTiming gddr5_timing(bool refresh = false) {
  DramParams p = gddr5_params();
  p.refresh_enabled = refresh;
  return DramTiming::from(p);
}

DramCommand act(BankId bank, RowId row) {
  return {DramCmd::kActivate, bank, row};
}
DramCommand pre(BankId bank) { return {DramCmd::kPrecharge, bank, kNoRow}; }
DramCommand rd(BankId bank, RowId row) { return {DramCmd::kRead, bank, row}; }
DramCommand wr(BankId bank, RowId row) { return {DramCmd::kWrite, bank, row}; }
DramCommand ref() { return {DramCmd::kRefresh, 0, kNoRow}; }

/// True iff some recorded violation matches `rule`.
bool fired(const ProtocolChecker& pc, const std::string& rule) {
  for (const ProtocolViolation& v : pc.violations()) {
    if (v.rule == rule) return true;
  }
  return false;
}

// ---- negative paths: every rule must actually fire --------------------

TEST(ProtocolChecker, CatchesFawOverflow) {
  // GDDR5's tFAW (35 cycles) is covered by four tRRD gaps (4 x 9), so an
  // otherwise-legal ACT train can never trip it; widen the window so the
  // tFAW rule binds on its own.
  DramParams p = gddr5_params();
  p.refresh_enabled = false;
  p.tfaw_ns = 4.0 * p.trrd_ns + 20.0;
  const DramTiming t = DramTiming::from(p);
  ProtocolChecker pc(t);
  // Four activates to different bank groups, spaced by tRRD (legal), then
  // a fifth inside the four-activate window.
  Cycle now = 10;
  for (BankId b = 0; b < 4; ++b) {
    pc.on_command(act(static_cast<BankId>(b * t.banks_per_group), 1), now);
    now += t.trrd;
  }
  ASSERT_TRUE(pc.clean()) << pc.violations().front().detail;
  ASSERT_LT(now, 10 + t.tfaw) << "spacing too wide to exercise tFAW";
  pc.on_command(act(1, 1), now);  // fifth ACT, window still open
  EXPECT_TRUE(fired(pc, "tFAW"));
  EXPECT_FALSE(fired(pc, "tRRD"));
}

TEST(ProtocolChecker, CatchesCcdlViolation) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  ASSERT_GT(t.tccdl, t.tccds) << "bank-group fast path missing";
  pc.on_command(act(0, 7), 0);
  pc.on_command(act(1, 9), t.trrd);  // same bank group (banks 0..3)
  const Cycle cas = 100;
  pc.on_command(rd(0, 7), cas);
  // tCCDS after the first CAS: legal across groups, illegal within one.
  pc.on_command(rd(1, 9), cas + t.tccds);
  EXPECT_TRUE(fired(pc, "tCCDL"));
  EXPECT_FALSE(fired(pc, "tCCDS"));
}

TEST(ProtocolChecker, CatchesReadToClosedRow) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(rd(3, 42), 5);  // no ACT ever happened
  EXPECT_TRUE(fired(pc, "RD-closed"));
}

TEST(ProtocolChecker, CatchesReadToWrongRow) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(3, 42), 0);
  pc.on_command(rd(3, 43), t.trcd);
  EXPECT_TRUE(fired(pc, "RD-row"));
}

TEST(ProtocolChecker, CatchesRefreshWhileBankOpen) {
  const DramTiming t = gddr5_timing(/*refresh=*/true);
  ProtocolChecker pc(t);
  pc.on_command(act(5, 11), 100);
  pc.on_command(ref(), t.trefi);
  EXPECT_TRUE(fired(pc, "REF-open"));
}

TEST(ProtocolChecker, CatchesEarlyRefresh) {
  const DramTiming t = gddr5_timing(/*refresh=*/true);
  ProtocolChecker pc(t);
  pc.on_command(ref(), t.trefi / 2);
  EXPECT_TRUE(fired(pc, "tREFI-early"));
}

TEST(ProtocolChecker, CatchesMissedRefreshAtFinalize) {
  const DramTiming t = gddr5_timing(/*refresh=*/true);
  ProtocolChecker pc(t);
  pc.finalize(3 * t.trefi);  // run ended, no REF ever issued
  EXPECT_TRUE(fired(pc, "tREFI-missed"));
}

TEST(ProtocolChecker, CatchesActBeforeTrp) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(2, 1), 0);
  pc.on_command(pre(2), t.tras);
  pc.on_command(act(2, 2), t.tras + t.trp - 1);
  EXPECT_TRUE(fired(pc, "tRP"));
}

TEST(ProtocolChecker, CatchesActBeforeTrc) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(2, 1), 0);
  pc.on_command(pre(2), t.tras);
  // tRP satisfied but tRC (ACT->ACT same bank) not: needs tras+trp >= trc
  // to be distinguishable; GDDR5 has trc > tras + trp - 1.
  const Cycle at = t.tras + t.trp;
  if (at < t.trc) {
    pc.on_command(act(2, 2), at);
    EXPECT_TRUE(fired(pc, "tRC"));
  }
}

TEST(ProtocolChecker, CatchesPrematurePrecharge) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(0, 1), 0);
  pc.on_command(pre(0), t.tras - 1);
  EXPECT_TRUE(fired(pc, "tRAS"));
}

TEST(ProtocolChecker, CatchesCasBeforeTrcd) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(0, 1), 0);
  pc.on_command(rd(0, 1), t.trcd - 1);
  EXPECT_TRUE(fired(pc, "tRCD"));
}

TEST(ProtocolChecker, CatchesWriteToReadTurnaround) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(0, 1), 0);
  pc.on_command(act(4, 2), t.trrd);  // different group: tCCDS applies
  const Cycle cas = 100;
  pc.on_command(wr(0, 1), cas);
  pc.on_command(rd(4, 2), cas + t.twl + t.tburst + t.twtr - 1);
  EXPECT_TRUE(fired(pc, "tWTR"));
}

TEST(ProtocolChecker, CatchesTwoCommandsInOneCycle) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(0, 1), 7);
  pc.on_command(act(4, 1), 7);
  EXPECT_TRUE(fired(pc, "command-bus"));
}

TEST(ProtocolChecker, ViolationReportIncludesHistory) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  pc.on_command(act(0, 3), 0);
  pc.on_command(rd(0, 99), t.trcd);
  ASSERT_FALSE(pc.clean());
  const ProtocolViolation& v = pc.violations().front();
  EXPECT_NE(v.detail.find("recent command history"), std::string::npos);
  EXPECT_NE(v.detail.find("ACT"), std::string::npos) << v.detail;
}

// ---- positive path: legal sequences stay silent -----------------------

TEST(ProtocolChecker, AcceptsLegalRowCycle) {
  const DramTiming t = gddr5_timing();
  ProtocolChecker pc(t);
  Cycle now = 0;
  pc.on_command(act(0, 1), now);
  now += t.trcd;
  pc.on_command(rd(0, 1), now);
  now += std::max(t.trtp, t.tccdl);
  pc.on_command(rd(0, 1), now);
  now += std::max(t.trtp, t.tras);  // generous
  pc.on_command(pre(0), now);
  now += std::max(t.trp, t.trc);
  pc.on_command(act(0, 2), now);
  EXPECT_TRUE(pc.clean()) << pc.violations().front().detail;
  EXPECT_EQ(pc.commands_checked(), 5u);
}

TEST(ProtocolChecker, ShadowsTheRealChannelSilently) {
  // Drive the real Channel with its own can_issue() across a mixed
  // workload; the independent shadow model must agree on every command.
  const DramTiming t = gddr5_timing();
  Channel chan(t);
  ProtocolChecker pc(t);
  chan.add_command_observer(
      [&pc](const DramCommand& cmd, Cycle at) { pc.on_command(cmd, at); });

  const DramCommand script[] = {
      act(0, 1), act(4, 2),  act(8, 3), rd(0, 1), rd(4, 2),  wr(8, 3),
      rd(0, 1),  pre(4),     act(4, 9), rd(4, 9), wr(0, 1),  pre(8),
      act(8, 1), rd(8, 1),   pre(0),    act(0, 5), rd(0, 5), rd(4, 9),
  };
  Cycle now = 0;
  for (const DramCommand& cmd : script) {
    while (!chan.can_issue(cmd, now)) ++now;
    chan.issue(cmd, now);
    ++now;  // one command bus slot per cycle
  }
  EXPECT_TRUE(pc.clean()) << pc.violations().front().detail;
  EXPECT_EQ(pc.commands_checked(), std::size(script));
}

// ---- invariant checker unit coverage ----------------------------------

TEST(InvariantChecker, TrackerMismatchIsReported) {
  InvariantChecker ic(/*abort_on_violation=*/false);
  InstrTracker tracker;
  tracker.on_issue(1, 0);  // one live record, but zero blocked warps
  ic.audit_tracker(tracker, 0, 10);
  ASSERT_EQ(ic.violations().size(), 1u);
  EXPECT_EQ(ic.violations().front().invariant, "tracker-liveness");
}

TEST(InvariantChecker, CleanControllerPassesAudit) {
  InvariantChecker ic(/*abort_on_violation=*/false);
  const DramTiming t = gddr5_timing();
  MemoryController mc(0, McConfig{}, t,
                      std::make_unique<FcfsPolicy>(), nullptr);
  MemRequest req;
  req.kind = ReqKind::kRead;
  req.loc.bank = 0;
  req.loc.row = 1;
  mc.push(req, 0);
  for (Cycle c = 0; c < 200; ++c) mc.tick(c);
  ic.audit_controller(mc, 200);
  EXPECT_TRUE(ic.clean()) << ic.violations().front().detail;
  EXPECT_GT(ic.audits_run(), 0u);
}

// ---- end-to-end: full simulator under both checkers, every policy -----

class CheckedSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(
    Conformance, CheckedSchedulers,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                      SchedulerKind::kGmc, SchedulerKind::kWafcfs,
                      SchedulerKind::kSbwas, SchedulerKind::kWg,
                      SchedulerKind::kWgM, SchedulerKind::kWgBw,
                      SchedulerKind::kWgW),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(CheckedSchedulers, FullRunIsProtocolAndConservationClean) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = GetParam();
  cfg.workload = profile_by_name("bfs");
  // Exercise the refresh rules too (shrink_for_tests turns refresh off
  // for exact-arithmetic unit tests; conformance wants it on).
  cfg.dram.refresh_enabled = true;
  cfg.check.protocol = true;
  cfg.check.invariants = true;
  cfg.check.abort_on_violation = false;  // collect, then assert empty

  Simulator sim(cfg);
  const RunResult r = sim.run();
  EXPECT_GT(r.instructions, 100u);

  std::uint64_t commands = 0;
  for (std::size_t i = 0; i < cfg.icnt.partitions; ++i) {
    const ProtocolChecker* pc = sim.protocol_checker(i);
    ASSERT_NE(pc, nullptr);
    commands += pc->commands_checked();
    EXPECT_TRUE(pc->clean())
        << to_string(GetParam()) << " channel " << i << ": "
        << pc->violations().front().rule << "\n"
        << pc->violations().front().detail;
  }
  EXPECT_GT(commands, 0u) << "checker observed no commands";

  const InvariantChecker* ic = sim.invariant_checker();
  ASSERT_NE(ic, nullptr);
  EXPECT_GT(ic->audits_run(), 0u);
  EXPECT_TRUE(ic->clean()) << to_string(GetParam()) << ": "
                           << ic->violations().front().invariant << " — "
                           << ic->violations().front().detail;
}

}  // namespace
}  // namespace latdiv
