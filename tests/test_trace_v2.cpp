// Trace format v2 tests: byte determinism, streaming vs in-memory
// equivalence, v1 read-compat against a pinned raw layout, checkpoint
// cursors, scan_trace accounting, the malformed-input error catalogue,
// and the full-simulator round trip (generator-driven vs replayed runs
// must serialise to byte-identical metric JSON).
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/json.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

std::string temp_path(const char* tag) {
  return std::string(::testing::TempDir()) + "latdiv_v2_" + tag + ".trace";
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

void expect_instr_eq(const WarpInstr& a, const WarpInstr& b) {
  ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
  ASSERT_EQ(a.latency, b.latency);
  ASSERT_EQ(a.active_lanes, b.active_lanes);
  for (std::uint32_t l = 0; l < a.active_lanes; ++l) {
    ASSERT_EQ(a.lane_addr[l], b.lane_addr[l]);
  }
}

/// Record `records` instructions of a scenario at 2x3 geometry with a
/// small chunk size, so streams span several chunks plus a partial one.
void write_scenario_trace(const std::string& path, std::uint64_t records,
                          std::uint32_t chunk = 8, std::uint64_t seed = 11) {
  const scenario::ScenarioSpec& spec =
      scenario::scenario_by_name("phase-shift");
  const auto source = scenario::make_scenario(spec, 2, 3, seed);
  TraceWriter writer(path, 2, 3, chunk);
  while (writer.records_written() < records) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        writer.record(sm, w, source->next(sm, w));
      }
    }
  }
  writer.close();
}

TEST(TraceV2, SameInputsProduceByteIdenticalFiles) {
  const std::string a = temp_path("det_a");
  const std::string b = temp_path("det_b");
  write_scenario_trace(a, 300);
  write_scenario_trace(b, 300);
  const std::string bytes_a = read_bytes(a);
  EXPECT_GT(bytes_a.size(), 40u);
  EXPECT_EQ(bytes_a, read_bytes(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceV2, StreamingMatchesInMemory) {
  const std::string path = temp_path("modes");
  write_scenario_trace(path, 200);
  TraceReplayer stream(path, ReplayMode::kStreaming);
  TraceReplayer mem(path, ReplayMode::kInMemory);
  EXPECT_TRUE(stream.streaming());
  EXPECT_FALSE(mem.streaming());
  EXPECT_EQ(stream.total_records(), mem.total_records());
  // 3 passes over every stream, so the comparison crosses the wrap.
  for (int i = 0; i < 120; ++i) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        expect_instr_eq(stream.next(sm, w), mem.next(sm, w));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceV2, CursorCheckpointResumesExactStream) {
  const std::string path = temp_path("cursor");
  write_scenario_trace(path, 200);
  TraceReplayer first(path, ReplayMode::kStreaming);
  // Uneven progress per warp, past the wrap for warp (0,0).
  for (int i = 0; i < 41; ++i) (void)first.next(0, 0);
  for (int i = 0; i < 7; ++i) (void)first.next(1, 2);
  (void)first.next(0, 1);
  const std::vector<std::uint64_t> saved = first.cursor();
  EXPECT_EQ(saved.size(), 6u);

  TraceReplayer resumed(path, ReplayMode::kStreaming);
  resumed.restore(saved);
  for (int i = 0; i < 60; ++i) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        expect_instr_eq(resumed.next(sm, w), first.next(sm, w));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceV2, CursorRestoreWorksAcrossModes) {
  const std::string path = temp_path("cursor_mode");
  write_scenario_trace(path, 120);
  TraceReplayer stream(path, ReplayMode::kStreaming);
  for (int i = 0; i < 25; ++i) (void)stream.next(1, 1);
  // A streaming cursor restores into an in-memory replayer and vice
  // versa: positions are logical record indices, not file offsets.
  TraceReplayer mem(path, ReplayMode::kInMemory);
  mem.restore(stream.cursor());
  for (int i = 0; i < 50; ++i) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        expect_instr_eq(mem.next(sm, w), stream.next(sm, w));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(TraceV2, RestoreRejectsBadCursors) {
  const std::string path = temp_path("cursor_bad");
  write_scenario_trace(path, 60);
  TraceReplayer replay(path, ReplayMode::kStreaming);
  EXPECT_THROW(replay.restore(std::vector<std::uint64_t>(5, 0)), TraceError);
  std::vector<std::uint64_t> beyond(6, 0);
  beyond[0] = 1u << 20;  // far past the stream length
  EXPECT_THROW(replay.restore(beyond), TraceError);
  std::remove(path.c_str());
}

TEST(TraceV2, EmptyTraceOpensAndIdles) {
  const std::string path = temp_path("empty");
  {
    TraceWriter writer(path, 1, 2);
    writer.close();
  }
  TraceReplayer replay(path, ReplayMode::kStreaming);
  EXPECT_EQ(replay.version(), 2u);
  EXPECT_EQ(replay.total_records(), 0u);
  const WarpInstr idle = replay.next(0, 1);
  EXPECT_EQ(static_cast<int>(idle.kind),
            static_cast<int>(WarpInstr::Kind::kCompute));
  std::remove(path.c_str());
}

TEST(TraceV2, ScanTraceAccountsEveryRecord) {
  const std::string path = temp_path("scan");
  write_scenario_trace(path, 300, /*chunk=*/16);
  const TraceStats st = scan_trace(path);
  EXPECT_EQ(st.version, 2u);
  EXPECT_EQ(st.sms, 2u);
  EXPECT_EQ(st.warps_per_sm, 3u);
  EXPECT_EQ(st.chunk_records, 16u);
  EXPECT_EQ(st.total_records, 300u);
  EXPECT_EQ(st.computes + st.loads + st.stores, 300u);
  EXPECT_GT(st.loads + st.stores, 0u);
  EXPECT_GT(st.distinct_lines, 0u);
  EXPECT_EQ(st.active_warps, 6u);
  EXPECT_EQ(st.min_warp_records, 50u);
  EXPECT_EQ(st.max_warp_records, 50u);
  // 50 records per warp at 16/chunk -> 4 chunks per warp.
  EXPECT_EQ(st.chunks, 6u * 4u);
  EXPECT_EQ(st.file_bytes, read_bytes(path).size());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// v1 read-compat.  The raw bytes are written by hand so this test pins
// the legacy layout itself, not whatever the current code happens to do:
// "LDTR", u32 version=1, u32 sms, u32 warps_per_sm (host order), then
// flat records of (u16 sm, u16 warp, u8 kind, u8 lanes, u32 latency,
// lanes x u64 addresses for memory records).

void append_raw(std::string& out, const void* data, std::size_t n) {
  out.append(static_cast<const char*>(data), n);
}

template <typename T>
void append_host(std::string& out, T value) {
  append_raw(out, &value, sizeof value);
}

void append_v1_record(std::string& out, std::uint16_t sm, std::uint16_t warp,
                      std::uint8_t kind, std::uint8_t lanes,
                      std::uint32_t latency,
                      const std::vector<std::uint64_t>& addrs) {
  append_host(out, sm);
  append_host(out, warp);
  append_host(out, kind);
  append_host(out, lanes);
  append_host(out, latency);
  for (const std::uint64_t a : addrs) append_host(out, a);
}

std::string v1_header(std::uint32_t sms, std::uint32_t warps) {
  std::string out = "LDTR";
  append_host(out, std::uint32_t{1});
  append_host(out, sms);
  append_host(out, warps);
  return out;
}

TEST(TraceV1Compat, ReadsPinnedLegacyLayout) {
  const std::string path = temp_path("v1");
  std::string raw = v1_header(1, 2);
  append_v1_record(raw, 0, 0, /*kind=*/0, /*lanes=*/32, /*latency=*/5, {});
  append_v1_record(raw, 0, 0, /*kind=*/1, /*lanes=*/2, /*latency=*/1,
                   {128, 4096});
  append_v1_record(raw, 0, 1, /*kind=*/2, /*lanes=*/1, /*latency=*/1,
                   {1u << 20});
  write_bytes(path, raw);

  TraceReplayer replay(path);
  EXPECT_EQ(replay.version(), 1u);
  EXPECT_FALSE(replay.streaming());  // v1 has no index to stream by
  EXPECT_EQ(replay.sms(), 1u);
  EXPECT_EQ(replay.warps_per_sm(), 2u);
  EXPECT_EQ(replay.total_records(), 3u);

  const WarpInstr c = replay.next(0, 0);
  EXPECT_EQ(static_cast<int>(c.kind),
            static_cast<int>(WarpInstr::Kind::kCompute));
  EXPECT_EQ(c.latency, 5u);
  const WarpInstr ld = replay.next(0, 0);
  EXPECT_EQ(static_cast<int>(ld.kind),
            static_cast<int>(WarpInstr::Kind::kLoad));
  EXPECT_EQ(ld.active_lanes, 2u);
  EXPECT_EQ(ld.lane_addr[0], 128u);
  EXPECT_EQ(ld.lane_addr[1], 4096u);
  const WarpInstr st = replay.next(0, 1);
  EXPECT_EQ(static_cast<int>(st.kind),
            static_cast<int>(WarpInstr::Kind::kStore));
  EXPECT_EQ(st.lane_addr[0], 1u << 20);

  const TraceStats stats = scan_trace(path);
  EXPECT_EQ(stats.version, 1u);
  EXPECT_EQ(stats.total_records, 3u);
  EXPECT_EQ(stats.computes, 1u);
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(stats.chunks, 0u);
  std::remove(path.c_str());
}

TEST(TraceV1Compat, EmptyV1Rejected) {
  const std::string path = temp_path("v1_empty");
  write_bytes(path, v1_header(1, 1));
  EXPECT_THROW({ TraceReplayer r(path); }, TraceError);
  std::remove(path.c_str());
}

TEST(TraceV1Compat, RecordOutsideGeometryRejected) {
  const std::string path = temp_path("v1_geom");
  std::string raw = v1_header(1, 1);
  append_v1_record(raw, 3, 0, 0, 32, 1, {});  // sm 3 of a 1-SM trace
  write_bytes(path, raw);
  EXPECT_THROW({ TraceReplayer r(path); }, TraceError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Error catalogue: every corruption class maps to a TraceError with a
// specific message, never silent UB.

void expect_open_fails(const std::string& path, const char* needle,
                       ReplayMode mode = ReplayMode::kInMemory) {
  try {
    TraceReplayer r(path, mode);
    FAIL() << "expected TraceError mentioning '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(TraceV2Error, TruncatedHeader) {
  const std::string path = temp_path("trunc_hdr");
  const std::string full = temp_path("trunc_hdr_full");
  write_scenario_trace(full, 40);
  write_bytes(path, read_bytes(full).substr(0, 20));
  expect_open_fails(path, "truncated or unreadable");
  std::remove(path.c_str());
  std::remove(full.c_str());
}

TEST(TraceV2Error, HeaderCrcMismatch) {
  const std::string path = temp_path("hdr_crc");
  write_scenario_trace(path, 40);
  std::string bytes = read_bytes(path);
  bytes[12] = static_cast<char>(bytes[12] ^ 0x40);  // corrupt the geometry
  write_bytes(path, bytes);
  expect_open_fails(path, "header CRC mismatch");
  std::remove(path.c_str());
}

TEST(TraceV2Error, ChunkCrcMismatch) {
  const std::string path = temp_path("chunk_crc");
  write_scenario_trace(path, 40);
  std::string bytes = read_bytes(path);
  // First chunk payload starts after the 40B header + 16B chunk header.
  bytes[60] = static_cast<char>(bytes[60] ^ 0x01);
  write_bytes(path, bytes);
  expect_open_fails(path, "chunk CRC mismatch");
  // The streaming replayer opens lazily; the same corruption surfaces on
  // the first pull of the damaged warp instead.
  TraceReplayer stream(path, ReplayMode::kStreaming);
  EXPECT_THROW((void)stream.next(0, 0), TraceError);
  EXPECT_THROW((void)scan_trace(path), TraceError);
  std::remove(path.c_str());
}

TEST(TraceV2Error, IndexCrcMismatch) {
  const std::string path = temp_path("idx_crc");
  write_scenario_trace(path, 40);
  std::string bytes = read_bytes(path);
  bytes[bytes.size() - 10] ^= 0x04;  // inside the index body
  write_bytes(path, bytes);
  expect_open_fails(path, "index CRC mismatch");
  expect_open_fails(path, "index CRC mismatch", ReplayMode::kStreaming);
  std::remove(path.c_str());
}

TEST(TraceV2Error, TruncatedFileLosesIndex) {
  const std::string path = temp_path("trunc_tail");
  write_scenario_trace(path, 40);
  const std::string bytes = read_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 25));
  EXPECT_THROW({ TraceReplayer r(path); }, TraceError);
  std::remove(path.c_str());
}

TEST(TraceV2Error, UnsupportedVersion) {
  const std::string path = temp_path("version");
  write_scenario_trace(path, 40);
  std::string bytes = read_bytes(path);
  bytes[4] = 3;  // version field (LE low byte)
  write_bytes(path, bytes);
  expect_open_fails(path, "unsupported trace version");
  std::remove(path.c_str());
}

TEST(TraceV2Error, WriterRejectsBadInputs) {
  EXPECT_THROW(
      { TraceWriter w("/nonexistent_dir_xyz/t.trace", 1, 1); }, TraceError);
  const std::string path = temp_path("writer");
  EXPECT_THROW({ TraceWriter w(path, 0, 4); }, TraceError);
  EXPECT_THROW({ TraceWriter w(path, 4, 4, 0); }, TraceError);
  {
    TraceWriter w(path, 1, 1);
    WarpInstr instr;
    EXPECT_THROW(w.record(2, 0, instr), TraceError);  // outside geometry
    w.close();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Full-simulator round trip: a scenario-driven run and its
// RecordingSource -> TraceReplayer rerun must serialise to byte-identical
// metric JSON (the artifact serialisation the sweep engine commits).

std::string metrics_json(const RunResult& r) {
  exp::JsonValue obj{exp::JsonValue::Object{}};
  for (const auto& [key, value] : exp::metrics_from(r)) {
    obj.set(key, exp::JsonValue{value});
  }
  return obj.dump();
}

TEST(TraceV2Sim, RecordedReplayIsByteIdentical) {
  const std::string path = temp_path("sim_rt");
  const scenario::ScenarioSpec& spec =
      scenario::scenario_by_name("threshold-compact");
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = SchedulerKind::kWgW;
  cfg.workload.name = spec.name;
  cfg.instr_source = [&spec](std::uint32_t sms, std::uint32_t warps,
                             std::uint64_t seed) {
    return scenario::make_scenario(spec, sms, warps, seed);
  };
  cfg.record_trace_path = path;
  const RunResult live = Simulator(cfg).run();

  SimConfig replay_cfg = cfg;
  replay_cfg.instr_source = nullptr;
  replay_cfg.record_trace_path.clear();
  replay_cfg.replay_trace_path = path;
  const RunResult replayed = Simulator(replay_cfg).run();

  EXPECT_EQ(metrics_json(live), metrics_json(replayed));
  EXPECT_GT(live.instructions, 100u);
  std::remove(path.c_str());
}

TEST(TraceV2Sim, StreamingAndInMemoryReplayRunsMatch) {
  const std::string path = temp_path("sim_modes");
  const scenario::ScenarioSpec& spec =
      scenario::scenario_by_name("powerlaw-rows");
  {
    const auto source = scenario::make_scenario(spec, 2, 4, 9);
    TraceWriter writer(path, 2, 4);
    RecordingSource rec(*source, writer);
    for (int i = 0; i < 400; ++i) {
      for (SmId sm = 0; sm < 2; ++sm) {
        for (WarpId w = 0; w < 4; ++w) (void)rec.next(sm, w);
      }
    }
  }
  // The simulator always opens traces in streaming mode; equivalence of
  // the decode paths is proven record-by-record here (the sim-level
  // equivalence then follows from RecordedReplayIsByteIdentical).
  TraceReplayer stream(path, ReplayMode::kStreaming);
  TraceReplayer mem(path, ReplayMode::kInMemory);
  for (int i = 0; i < 900; ++i) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 4; ++w) {
        expect_instr_eq(stream.next(sm, w), mem.next(sm, w));
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace latdiv
