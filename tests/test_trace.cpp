// Trace capture/replay round-trip tests.
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace latdiv {
namespace {

std::string temp_trace(const char* tag) {
  return std::string(::testing::TempDir()) + "latdiv_trace_" + tag + ".bin";
}

WorkloadProfile small_profile() {
  WorkloadProfile p = profile_by_name("bfs");
  p.footprint_bytes = 8ULL << 20;
  return p;
}

TEST(Trace, RoundTripPreservesInstructions) {
  const std::string path = temp_trace("roundtrip");
  WorkloadGenerator gen(small_profile(), 2, 3, 42);
  WorkloadGenerator ref(small_profile(), 2, 3, 42);
  {
    TraceWriter writer(path, 2, 3);
    RecordingSource rec(gen, writer);
    for (int i = 0; i < 500; ++i) {
      for (SmId sm = 0; sm < 2; ++sm) {
        for (WarpId w = 0; w < 3; ++w) (void)rec.next(sm, w);
      }
    }
    EXPECT_EQ(writer.records_written(), 500u * 6u);
  }
  TraceReplayer replay(path);
  EXPECT_EQ(replay.sms(), 2u);
  EXPECT_EQ(replay.warps_per_sm(), 3u);
  EXPECT_EQ(replay.total_records(), 3000u);
  for (int i = 0; i < 500; ++i) {
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        const WarpInstr a = replay.next(sm, w);
        const WarpInstr b = ref.next(sm, w);
        ASSERT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
        ASSERT_EQ(a.latency, b.latency);
        ASSERT_EQ(a.active_lanes, b.active_lanes);
        for (std::uint32_t l = 0; l < a.active_lanes; ++l) {
          ASSERT_EQ(a.lane_addr[l], b.lane_addr[l]);
        }
      }
    }
  }
  std::remove(path.c_str());
}

TEST(Trace, ReplayWrapsAround) {
  const std::string path = temp_trace("wrap");
  WorkloadGenerator gen(small_profile(), 1, 1, 7);
  {
    TraceWriter writer(path, 1, 1);
    RecordingSource rec(gen, writer);
    for (int i = 0; i < 10; ++i) (void)rec.next(0, 0);
  }
  TraceReplayer replay(path);
  WarpInstr first = replay.next(0, 0);
  for (int i = 1; i < 10; ++i) (void)replay.next(0, 0);
  const WarpInstr wrapped = replay.next(0, 0);  // 11th pull == 1st record
  EXPECT_EQ(static_cast<int>(wrapped.kind), static_cast<int>(first.kind));
  EXPECT_EQ(wrapped.latency, first.latency);
  EXPECT_EQ(wrapped.lane_addr, first.lane_addr);
  std::remove(path.c_str());
}

TEST(Trace, SimulatorRecordThenReplayIsDeterministic) {
  const std::string path = temp_trace("sim");
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = small_profile();
  cfg.scheduler = SchedulerKind::kGmc;
  cfg.record_trace_path = path;
  const RunResult recorded = Simulator(cfg).run();

  SimConfig replay_cfg = cfg;
  replay_cfg.record_trace_path.clear();
  replay_cfg.replay_trace_path = path;
  const RunResult replayed = Simulator(replay_cfg).run();

  // The replayed run consumes the exact instruction stream the recorded
  // run consumed, so the memory system sees identical traffic.
  EXPECT_EQ(recorded.instructions, replayed.instructions);
  EXPECT_EQ(recorded.dram_reads, replayed.dram_reads);
  EXPECT_DOUBLE_EQ(recorded.ipc, replayed.ipc);
  std::remove(path.c_str());
}

TEST(Trace, ReplayUnderDifferentSchedulerStillRuns) {
  const std::string path = temp_trace("sched");
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = small_profile();
  cfg.record_trace_path = path;
  (void)Simulator(cfg).run();

  SimConfig replay_cfg = cfg;
  replay_cfg.record_trace_path.clear();
  replay_cfg.replay_trace_path = path;
  replay_cfg.scheduler = SchedulerKind::kWgW;
  const RunResult r = Simulator(replay_cfg).run();
  EXPECT_GT(r.instructions, 100u);
  EXPECT_GT(r.dram_reads, 0u);
  std::remove(path.c_str());
}

TEST(Trace, IdleWarpGetsComputeFiller) {
  const std::string path = temp_trace("idle");
  {
    // Record activity for warp 0 only; warp 1 stays silent.
    WorkloadGenerator gen(small_profile(), 1, 2, 3);
    TraceWriter writer(path, 1, 2);
    RecordingSource rec(gen, writer);
    for (int i = 0; i < 5; ++i) (void)rec.next(0, 0);
  }
  TraceReplayer replay(path);
  const WarpInstr idle = replay.next(0, 1);
  EXPECT_EQ(static_cast<int>(idle.kind),
            static_cast<int>(WarpInstr::Kind::kCompute));
  std::remove(path.c_str());
}

TEST(TraceError_, MissingFileThrows) {
  EXPECT_THROW({ TraceReplayer bad("/nonexistent/path/trace.bin"); },
               TraceError);
}

TEST(TraceError_, GarbageFileThrows) {
  const std::string path = temp_trace("garbage");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a trace", f);
  std::fclose(f);
  try {
    TraceReplayer bad(path);
    FAIL() << "garbage file must not parse";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find("not a latdiv trace"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace latdiv
