// Idle-cycle fast-forward equivalence: Simulator::run with
// idle_fast_forward on and off must produce bit-identical results — the
// skipped cycles are provably dead, and every per-cycle idle counter is
// credited in bulk (DESIGN.md "Hot path & determinism contract").
//
// The comparison goes through exp::metrics_from, the same flattening the
// sweep artifacts use, so every reported metric is covered, and then
// spot-checks the raw counters the flattening rounds through doubles.
#include <gtest/gtest.h>

#include "exp/executor.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

SimConfig small_cfg(SchedulerKind sched, const char* workload) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = sched;
  cfg.workload = profile_by_name(workload);
  return cfg;
}

/// Run `cfg` with fast-forward off and on; every metric must match.
void expect_equivalent(SimConfig cfg) {
  cfg.idle_fast_forward = false;
  const RunResult off = Simulator(cfg).run();
  cfg.idle_fast_forward = true;
  const RunResult on = Simulator(cfg).run();

  EXPECT_EQ(exp::metrics_from(off), exp::metrics_from(on));
  EXPECT_EQ(off.instructions, on.instructions);
  EXPECT_EQ(off.core_cycles, on.core_cycles);
  EXPECT_EQ(off.dram_cycles, on.dram_cycles);
  EXPECT_EQ(off.dram_reads, on.dram_reads);
  EXPECT_EQ(off.dram_writes, on.dram_writes);
  EXPECT_EQ(off.dram_activates, on.dram_activates);
  EXPECT_EQ(off.sm_no_ready_warp_cycles, on.sm_no_ready_warp_cycles);
  EXPECT_EQ(off.sm_issue_stall_mshr, on.sm_issue_stall_mshr);
  EXPECT_EQ(off.wg_groups_selected, on.wg_groups_selected);
  EXPECT_EQ(off.wg_fallback_selections, on.wg_fallback_selections);
  EXPECT_EQ(off.wg_merb_deferrals, on.wg_merb_deferrals);
}

class FastForwardAllSchedulers
    : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schedulers, FastForwardAllSchedulers,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                      SchedulerKind::kGmc, SchedulerKind::kWafcfs,
                      SchedulerKind::kSbwas, SchedulerKind::kWg,
                      SchedulerKind::kWgM, SchedulerKind::kWgBw,
                      SchedulerKind::kWgW, SchedulerKind::kWgShared,
                      SchedulerKind::kZld),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(FastForwardAllSchedulers, IdenticalResultsOnIrregularWorkload) {
  expect_equivalent(small_cfg(GetParam(), "bfs"));
}

TEST_P(FastForwardAllSchedulers, IdenticalResultsUnderWritePressure) {
  // spmv is the most write-intensive profile: drain-mode flips and the
  // write/read mode boundaries must all survive the jump logic.
  expect_equivalent(small_cfg(GetParam(), "spmv"));
}

TEST(FastForward, IdenticalWithCheckersDisabled) {
  // shrink_for_tests enables the protocol/invariant checkers, which clamp
  // jumps to the audit grid; with them off the jumps run unclamped and
  // must still be exact.
  SimConfig cfg = small_cfg(SchedulerKind::kWgW, "sssp");
  cfg.check.protocol = false;
  cfg.check.invariants = false;
  expect_equivalent(cfg);
}

TEST(FastForward, IdenticalAcrossWarmupBoundary) {
  // The warmup snapshot must be taken at exactly warmup_cycles even when
  // the machine is idle around it, so jumps clamp to the boundary.
  SimConfig cfg = small_cfg(SchedulerKind::kGmc, "nw");
  cfg.warmup_cycles = 97;  // deliberately off any natural event cycle
  expect_equivalent(cfg);
}

TEST(FastForward, IdenticalWithRefreshDisabled) {
  // Without refresh the only DRAM-side wake-up left is in-flight reads;
  // an idle controller must still never sleep past one.
  SimConfig cfg = small_cfg(SchedulerKind::kWgBw, "kmeans");
  cfg.dram.refresh_enabled = false;
  expect_equivalent(cfg);
}

TEST(FastForward, CustomPolicyDefaultQuiescentIsSafe) {
  // A custom policy that keeps the conservative quiescent() default
  // (always true) but holds no hidden state: results must match the
  // built-in path bit for bit.
  SimConfig cfg = small_cfg(SchedulerKind::kGmc, "bfs");
  cfg.custom_policy = [gmc = cfg.gmc](ChannelId, const DramTiming&) {
    return std::make_unique<GmcPolicy>(gmc);
  };
  expect_equivalent(cfg);
}

}  // namespace
}  // namespace latdiv
