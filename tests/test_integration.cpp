// System-level integration invariants: conservation, blocking semantics,
// back-pressure liveness and clock-domain flexibility, checked on the
// fully-wired simulator rather than per module.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace latdiv {
namespace {

SimConfig base_cfg(const char* workload = "sssp") {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name(workload);
  cfg.scheduler = SchedulerKind::kWgW;
  return cfg;
}

TEST(Integration, DramReadsMatchL2MissTraffic) {
  Simulator sim(base_cfg());
  const RunResult r = sim.run();
  // Every DRAM read is an L2 miss fetch; misses can exceed reads by the
  // MSHR merges and by fetches still in flight at the end.
  std::uint64_t l2_misses = 0;
  std::uint64_t merges = 0;
  for (std::size_t p = 0; p < sim.config().icnt.partitions; ++p) {
    l2_misses += sim.partition(p).l2().stats().misses;
    merges += sim.partition(p).stats().mshr_merges;
  }
  EXPECT_LE(r.dram_reads, l2_misses);
  EXPECT_GE(r.dram_reads + merges + 200 /*in flight at cut-off*/, l2_misses);
}

TEST(Integration, ColumnAccessesMatchServedRequests) {
  Simulator sim(base_cfg());
  const RunResult r = sim.run();
  // Channel-level CAS counts vs controller-level retirement: they differ
  // only by reads whose data burst is still in flight at the cut-off.
  std::uint64_t served = 0;
  for (std::size_t p = 0; p < sim.config().icnt.partitions; ++p) {
    served += sim.partition(p).mc().stats().reads_served +
              sim.partition(p).mc().stats().writes_served;
  }
  EXPECT_LE(served, r.dram_reads + r.dram_writes);
  EXPECT_GE(served + 12 * sim.config().icnt.partitions,
            r.dram_reads + r.dram_writes)
      << "difference must be bounded by in-flight bursts";
}

TEST(Integration, ActivatesImplyColumnWork) {
  const RunResult r = Simulator(base_cfg()).run();
  // Open-page policy: a row is only opened to serve at least one access.
  EXPECT_LE(r.dram_activates, r.dram_reads + r.dram_writes);
}

TEST(Integration, FinalizedLoadsNeverExceedIssued) {
  Simulator sim(base_cfg());
  const RunResult r = sim.run();
  std::uint64_t issued_loads = 0;
  for (std::size_t s = 0; s < sim.config().num_sms; ++s) {
    issued_loads += sim.sm(s).stats().loads;
  }
  EXPECT_LE(r.tracker.loads_finalized, issued_loads);
  // Nearly everything issued early in the run has completed by the end.
  EXPECT_GT(r.tracker.loads_finalized, issued_loads * 8 / 10);
}

TEST(Integration, TinyQueuesStayLive) {
  SimConfig cfg = base_cfg("spmv");
  cfg.mc.read_queue_size = 16;
  cfg.mc.write_queue_size = 16;
  cfg.mc.wq_high_watermark = 8;
  cfg.mc.wq_low_watermark = 4;
  cfg.mc.bank_queue_depth = 2;
  cfg.icnt.sm_queue_depth = 4;
  cfg.icnt.partition_in_depth = 2;
  const RunResult r = Simulator(cfg).run();
  EXPECT_GT(r.instructions, 100u) << "back-pressure must not deadlock";
  EXPECT_GT(r.dram_reads, 50u);
}

TEST(Integration, CoreClockRatioOneAndFourWork) {
  for (std::uint32_t ratio : {1u, 4u}) {
    SimConfig cfg = base_cfg();
    cfg.sm.core_clock_ratio = ratio;
    const RunResult r = Simulator(cfg).run();
    EXPECT_GT(r.instructions, 50u) << "ratio=" << ratio;
    EXPECT_EQ(r.core_cycles, r.dram_cycles / ratio);
  }
}

TEST(Integration, FasterCoreClockMeansMoreMemoryPressure) {
  SimConfig slow = base_cfg("bfs");
  slow.sm.core_clock_ratio = 4;  // core at 1/4 of DRAM clock
  SimConfig fast = base_cfg("bfs");
  fast.sm.core_clock_ratio = 1;  // core at DRAM clock
  const RunResult r_slow = Simulator(slow).run();
  const RunResult r_fast = Simulator(fast).run();
  EXPECT_GT(r_fast.bandwidth_utilization, r_slow.bandwidth_utilization);
}

TEST(Integration, WarpsBlockUntilLastRequest) {
  // With one warp per SM, IPC is bounded by the full memory round trip:
  // the warp cannot run ahead of its own loads.
  SimConfig cfg = base_cfg("spmv");
  cfg.sm.warps = 1;
  cfg.num_sms = 2;
  cfg.icnt.sms = 2;
  const RunResult r = Simulator(cfg).run();
  EXPECT_LT(r.ipc, 0.6) << "a single blocked warp cannot sustain IPC";
  EXPECT_GT(r.tracker.loads_finalized, 10u);
}

TEST(Integration, MoreWarpsHideMoreLatency) {
  SimConfig few = base_cfg("bfs");
  few.sm.warps = 2;
  SimConfig many = base_cfg("bfs");
  many.sm.warps = 16;
  const RunResult r_few = Simulator(few).run();
  const RunResult r_many = Simulator(many).run();
  EXPECT_GT(r_many.ipc, 1.5 * r_few.ipc);
}

TEST(Integration, WriteTrafficIsCacheFiltered) {
  Simulator sim(base_cfg("nw"));
  const RunResult r = sim.run();
  // DRAM writes are exclusively L2 dirty evictions: bounded by the
  // partitions' writeback counters.
  std::uint64_t writebacks = 0;
  for (std::size_t p = 0; p < sim.config().icnt.partitions; ++p) {
    writebacks += sim.partition(p).stats().writebacks;
  }
  EXPECT_LE(r.dram_writes, writebacks);
}

TEST(Integration, RefreshStealsThroughputButNothingBreaks) {
  SimConfig with_ref = base_cfg("bfs");
  with_ref.dram.refresh_enabled = true;
  SimConfig without = base_cfg("bfs");
  const RunResult r_ref = Simulator(with_ref).run();
  const RunResult r_no = Simulator(without).run();
  EXPECT_GT(r_ref.instructions, 100u);
  // Refresh costs a few percent at most at GDDR5's tREFI/tRFC ratio.
  EXPECT_GT(r_ref.ipc, 0.85 * r_no.ipc);
}

}  // namespace
}  // namespace latdiv
