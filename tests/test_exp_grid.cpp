// ExpGrid builders: cross-product expansion, id scheme, filtering.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/point.hpp"
#include "workload/profile.hpp"

using namespace latdiv;
using namespace latdiv::exp;

namespace {

std::vector<WorkloadProfile> two_workloads() {
  return {profile_by_name("bfs"), profile_by_name("spmv")};
}

}  // namespace

TEST(ExpGrid, AddColumnExpandsWorkloadsTimesSeeds) {
  RunShape shape;
  shape.seeds = 3;
  shape.base_seed = 10;
  ExpGrid grid;
  grid.add_column("GMC", two_workloads(), SchedulerKind::kGmc, shape);
  ASSERT_EQ(grid.size(), 2u * 3u);

  // Ids follow "<row>/<col>/s<seed>" with seeds base..base+seeds-1.
  EXPECT_EQ(grid.points()[0].id, "bfs/GMC/s10");
  EXPECT_EQ(grid.points()[2].id, "bfs/GMC/s12");
  EXPECT_EQ(grid.points()[3].id, "spmv/GMC/s10");
  for (const ExpPoint& p : grid.points()) {
    EXPECT_EQ(p.col, "GMC");
    EXPECT_EQ(p.cycles, shape.cycles);
    EXPECT_EQ(p.warmup, shape.warmup);
    EXPECT_GE(p.seed, 10u);
    EXPECT_LE(p.seed, 12u);
  }
}

TEST(ExpGrid, AddMatrixExpandsFullCrossProduct) {
  RunShape shape;
  shape.seeds = 2;
  ExpGrid grid;
  grid.add_matrix(two_workloads(), {SchedulerKind::kGmc, SchedulerKind::kWg,
                                    SchedulerKind::kWgW},
                  shape);
  EXPECT_EQ(grid.size(), 2u * 3u * 2u);

  // Scheduler display names become the columns; every id is unique.
  std::set<std::string> ids, cols;
  for (const ExpPoint& p : grid.points()) {
    ids.insert(p.id);
    cols.insert(p.col);
  }
  EXPECT_EQ(ids.size(), grid.size());
  EXPECT_EQ(cols, (std::set<std::string>{"GMC", "WG", "WG-W"}));
}

TEST(ExpGrid, KeepMatchingFiltersOnIdSubstring) {
  RunShape shape;
  ExpGrid grid;
  grid.add_matrix(two_workloads(), {SchedulerKind::kGmc, SchedulerKind::kWgW},
                  shape);
  ASSERT_EQ(grid.size(), 4u);

  grid.keep_matching("bfs/");
  ASSERT_EQ(grid.size(), 2u);
  for (const ExpPoint& p : grid.points()) EXPECT_EQ(p.row, "bfs");

  // An empty filter keeps everything; a non-matching one empties the grid.
  grid.keep_matching("");
  EXPECT_EQ(grid.size(), 2u);
  grid.keep_matching("no-such-point");
  EXPECT_TRUE(grid.empty());
}

TEST(ExpGrid, AnalyticPointsCarryTheirFunction) {
  ExpGrid grid;
  ExpPoint p;
  p.id = "banks=4/MERB";
  p.row = "banks=4";
  p.col = "MERB";
  p.analytic = [] { return MetricMap{{"merb", 7.0}}; };
  grid.add(std::move(p));
  ASSERT_EQ(grid.size(), 1u);
  ASSERT_TRUE(grid.points()[0].analytic);
  EXPECT_DOUBLE_EQ(grid.points()[0].analytic().at("merb"), 7.0);
}
