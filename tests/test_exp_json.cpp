// JSON document model used by the sweep artifacts: parse/dump round
// trips, deterministic number rendering, strict error reporting.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>
#include <string>

#include "exp/json.hpp"

using latdiv::exp::JsonValue;
using latdiv::exp::json_escape;
using latdiv::exp::json_number;

TEST(ExpJson, ScalarKinds) {
  EXPECT_TRUE(JsonValue().is_null());
  EXPECT_TRUE(JsonValue(true).as_bool());
  EXPECT_DOUBLE_EQ(JsonValue(2.5).as_number(), 2.5);
  EXPECT_EQ(JsonValue("hi").as_string(), "hi");
  EXPECT_THROW((void)JsonValue(2.5).as_string(), std::runtime_error);
  EXPECT_THROW((void)JsonValue("hi").as_number(), std::runtime_error);
}

TEST(ExpJson, ObjectPreservesInsertionOrder) {
  JsonValue obj{JsonValue::Object{}};
  obj.set("zebra", 1.0);
  obj.set("apple", 2.0);
  obj.set("mango", 3.0);
  const std::string text = obj.dump();
  EXPECT_LT(text.find("zebra"), text.find("apple"));
  EXPECT_LT(text.find("apple"), text.find("mango"));

  // And parsing preserves the document's order too.
  const JsonValue back = JsonValue::parse(text);
  ASSERT_EQ(back.as_object().size(), 3u);
  EXPECT_EQ(back.as_object()[0].first, "zebra");
  EXPECT_EQ(back.as_object()[2].first, "mango");
}

TEST(ExpJson, FindAndAt) {
  JsonValue obj{JsonValue::Object{}};
  obj.set("ipc", 1.25);
  ASSERT_NE(obj.find("ipc"), nullptr);
  EXPECT_DOUBLE_EQ(obj.at("ipc").as_number(), 1.25);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW((void)obj.at("missing"), std::runtime_error);
  EXPECT_EQ(JsonValue(1.0).find("x"), nullptr);  // non-object
}

TEST(ExpJson, DumpParseRoundTripIsByteStable) {
  JsonValue doc{JsonValue::Object{}};
  doc.set("name", "fig8");
  doc.set("ok", true);
  doc.set("nothing", JsonValue());
  JsonValue arr{JsonValue::Array{}};
  arr.push_back(1.0);
  arr.push_back(0.30000000000000004);  // classic non-representable sum
  arr.push_back("x\"y\\z\n");
  doc.set("vals", std::move(arr));

  const std::string once = doc.dump();
  const std::string twice = JsonValue::parse(once).dump();
  EXPECT_EQ(once, twice);
  EXPECT_EQ(once.back(), '\n');
}

TEST(ExpJson, NumberRenderingShortestRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-7.0), "-7");
  EXPECT_EQ(json_number(0.1), "0.1");
  EXPECT_EQ(json_number(1.5), "1.5");
  // Non-finite values are not representable in JSON.
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");

  // Shortest form must strtod back to the identical double.
  for (const double v : {1.0 / 3.0, 0.30000000000000004, 6.02214076e23,
                         1e-300, 123456789.123456789}) {
    const std::string s = json_number(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(ExpJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(ExpJson, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("tru"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{} extra"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(ExpJson, ParseAcceptsNestedDocument) {
  const JsonValue doc = JsonValue::parse(
      R"({"cells": [{"row": "bfs", "metrics": {"ipc": {"mean": 1.5}}}],
          "n": 3, "neg": -2.5e-3})");
  EXPECT_DOUBLE_EQ(doc.at("n").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(doc.at("neg").as_number(), -2.5e-3);
  const JsonValue& cell = doc.at("cells").as_array()[0];
  EXPECT_EQ(cell.at("row").as_string(), "bfs");
  EXPECT_DOUBLE_EQ(
      cell.at("metrics").at("ipc").at("mean").as_number(), 1.5);
}
