#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, MeanAndMax) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  a.add(6.0);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 9.0);
}

TEST(Accumulator, MergeCombines) {
  Accumulator a;
  Accumulator b;
  a.add(2.0);
  b.add(4.0);
  b.add(12.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  EXPECT_DOUBLE_EQ(a.max(), 12.0);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(10.0, 4);  // [0,10) [10,20) [20,30) [30,inf)
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(35.0);
  h.add(1000.0);
  ASSERT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 2u);
}

TEST(Histogram, NegativeClampsToFirstBin) {
  Histogram h(1.0, 4);
  h.add(-5.0);
  EXPECT_EQ(h.counts()[0], 1u);
}

TEST(Histogram, QuantileAtBinGranularity) {
  Histogram h(10.0, 10);
  for (int i = 0; i < 90; ++i) h.add(5.0);
  for (int i = 0; i < 10; ++i) h.add(95.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 100.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1.0, 4);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(StatsFormat, SafeRatio) {
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(safe_ratio(6.0, 0.0), 0.0);
}

TEST(StatsFormat, Percent) {
  EXPECT_EQ(percent(0.123), "12.3%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

TEST(StatsFormat, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace latdiv
