#include "dram/power.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

ChannelStats busy_stats(std::uint64_t acts, std::uint64_t reads,
                        std::uint64_t writes, Cycle elapsed) {
  ChannelStats s;
  s.activates = acts;
  s.reads = reads;
  s.writes = writes;
  s.data_bus_busy_cycles = (reads + writes) * 2;
  s.all_banks_idle_cycles = elapsed / 2;
  return s;
}

TEST(PowerModel, IdleChannelDrawsOnlyBackground) {
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  ChannelStats s;
  s.all_banks_idle_cycles = 100000;
  const PowerBreakdown p = pm.compute(s, 100000);
  EXPECT_GT(p.background, 0.0);
  EXPECT_DOUBLE_EQ(p.activate, 0.0);
  EXPECT_DOUBLE_EQ(p.read, 0.0);
  EXPECT_DOUBLE_EQ(p.io, 0.0);
  EXPECT_NEAR(p.total(), p.background, 1e-12);
}

TEST(PowerModel, MoreActivatesMorePower) {
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  const Cycle elapsed = 1'000'000;
  const PowerBreakdown lo = pm.compute(busy_stats(1000, 10000, 0, elapsed),
                                       elapsed);
  const PowerBreakdown hi = pm.compute(busy_stats(5000, 10000, 0, elapsed),
                                       elapsed);
  EXPECT_GT(hi.activate, lo.activate);
  EXPECT_GT(hi.total(), lo.total());
}

TEST(PowerModel, IoDominatesAtHighBandwidth) {
  // The paper's §VI-B argument: GDDR5 power is I/O-heavy, so a 16% drop
  // in row-hit rate (more activates) costs only ~2% of device power.
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  const Cycle elapsed = 1'000'000;
  // ~66% bus utilisation with moderate locality.
  const PowerBreakdown p =
      pm.compute(busy_stats(80'000, 300'000, 30'000, elapsed), elapsed);
  EXPECT_GT(p.io, p.activate);
  EXPECT_GT(p.io, 0.3 * p.total());
}

TEST(PowerModel, RowHitRateDropCostsFewPercent) {
  // Same column traffic, 16% fewer row hits => proportionally more
  // activates; total power should rise by low single digits.
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  const Cycle elapsed = 1'000'000;
  const std::uint64_t cas = 330'000;
  const std::uint64_t acts_base = 120'000;   // hit rate ~0.64
  const std::uint64_t acts_wgw = 155'000;    // hit rate ~0.53 (16% lower)
  const double base =
      pm.compute(busy_stats(acts_base, 300'000, 30'000, elapsed), elapsed)
          .total();
  const double wgw =
      pm.compute(busy_stats(acts_wgw, 300'000, 30'000, elapsed), elapsed)
          .total();
  const double increase = wgw / base - 1.0;
  EXPECT_GT(increase, 0.0);
  EXPECT_LT(increase, 0.06);
  (void)cas;
}

TEST(PowerModel, RefreshContributes) {
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  ChannelStats s;
  s.refreshes = 500;
  s.all_banks_idle_cycles = 1'000'000;
  const PowerBreakdown p = pm.compute(s, 1'000'000);
  EXPECT_GT(p.refresh, 0.0);
}

TEST(PowerModel, ScalesWithDeviceCount) {
  Gddr5PowerParams one;
  one.devices_per_channel = 1;
  Gddr5PowerParams two;
  two.devices_per_channel = 2;
  const PowerModel pm1(one, DramParams{});
  const PowerModel pm2(two, DramParams{});
  const ChannelStats s = busy_stats(1000, 10000, 1000, 100000);
  EXPECT_NEAR(pm2.compute(s, 100000).activate,
              2.0 * pm1.compute(s, 100000).activate, 1e-9);
}

TEST(PowerModelDeath, ZeroIntervalAborts) {
  const PowerModel pm(Gddr5PowerParams{}, DramParams{});
  EXPECT_DEATH((void)pm.compute(ChannelStats{}, 0), "interval");
}

}  // namespace
}  // namespace latdiv
