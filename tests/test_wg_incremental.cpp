// Randomized differential test for WgPolicy's incremental read-queue
// index (the warp sorter's per-group bookkeeping).
//
// The policy no longer scans the controller's read queue to enumerate
// candidates, order them, or score them — it maintains per-group per-bank
// slots incrementally.  This test reimplements the original O(read-queue)
// reference scans directly against MemoryController::read_queue() and,
// after every cycle of a randomized event stream (pushes, completions,
// coordination messages, ticks that drain and fill banks), asserts that
// the index, the candidate ordering, and every group score are identical
// to the reference.  Thousands of events per configuration exercise the
// add/remove/erase paths of all WG variants.
#include "core/policy_wg.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dram/params.hpp"
#include "mc/controller.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

/// Deterministic 64-bit LCG so the event stream is identical on every
/// run and platform (std::mt19937 would also do, but this keeps the
/// stream trivially reproducible from the seed alone).
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 11;
  }
  std::uint32_t below(std::uint32_t n) {
    return static_cast<std::uint32_t>(next() % n);
  }
};

MemRequest make_read(BankId bank, RowId row, std::uint32_t col,
                     WarpInstrUid uid) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.addr = (static_cast<Addr>(bank) << 28) | (static_cast<Addr>(row) << 15) |
           (static_cast<Addr>(col) << 7);
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  r.tag.warp = static_cast<WarpId>(uid % 48);
  r.tag.sm = static_cast<SmId>(uid % 30);
  return r;
}

// ---- reference scans (the original O(read-queue) implementations) -----

/// Requests of `instr` in the read queue, in queue order.
std::vector<MemRequest> ref_pending(const MemoryController& mc,
                                    WarpInstrUid instr) {
  std::vector<MemRequest> out;
  for (const MemRequest& r : mc.read_queue()) {
    if (r.tag.instr == instr) out.push_back(r);
  }
  return out;
}

/// Groups in read-queue first-occurrence order (the reference candidate
/// order of the original selection loop).
std::vector<WarpInstrUid> ref_candidate_order(const MemoryController& mc) {
  std::vector<WarpInstrUid> order;
  for (const MemRequest& r : mc.read_queue()) {
    if (std::find(order.begin(), order.end(), r.tag.instr) == order.end()) {
      order.push_back(r.tag.instr);
    }
  }
  return order;
}

/// Reference bank backlog score: walk the bank's command queue from the
/// channel's open row (score_hit per extending request, score_miss per
/// row change).
std::uint32_t ref_bank_queue_score(const MemoryController& mc, BankId bank,
                                   const WgConfig& cfg) {
  std::uint32_t score = 0;
  RowId running = mc.channel().open_row(bank);
  for (const MemRequest& q : mc.bank_queue(bank)) {
    score += (q.loc.row == running) ? cfg.score_hit : cfg.score_miss;
    running = q.loc.row;
  }
  return score;
}

/// Reference group score (paper §IV-B1): per touched bank, simulate the
/// planned row sequence from the controller's predictor across the
/// group's queued requests in queue order; group score is the max.
WgPolicy::Score ref_score(const MemoryController& mc, const WgConfig& cfg,
                          WarpInstrUid instr) {
  WgPolicy::Score out;
  std::vector<BankId> banks;
  for (const MemRequest& r : ref_pending(mc, instr)) {
    if (std::find(banks.begin(), banks.end(), r.loc.bank) == banks.end()) {
      banks.push_back(r.loc.bank);
    }
  }
  for (const BankId bank : banks) {
    RowId running = mc.predicted_row(bank);
    std::uint32_t score = ref_bank_queue_score(mc, bank, cfg);
    for (const MemRequest& r : ref_pending(mc, instr)) {
      if (r.loc.bank != bank) continue;
      const bool hit = r.loc.row == running;
      score += hit ? cfg.score_hit : cfg.score_miss;
      if (hit) ++out.row_hits;
      running = r.loc.row;
    }
    out.completion = std::max(out.completion, score);
  }
  return out;
}

// ---- the differential harness -----------------------------------------

struct DiffHarness {
  explicit DiffHarness(WgConfig cfg)
      : cfg_(cfg),
        mc(0, McConfig{}, timing_no_refresh(), make_policy(cfg),
           [](const MemRequest&, Cycle) {}) {}

  std::unique_ptr<WgPolicy> make_policy(const WgConfig& cfg) {
    auto p = std::make_unique<WgPolicy>(cfg, timing_no_refresh());
    wg = p.get();
    return p;
  }

  /// Assert the incremental index mirrors the read queue exactly.
  void check_index() const {
    // Per-group totals and per-bank (seq-ordered) item lists.
    const auto order = ref_candidate_order(mc);
    for (const WarpInstrUid instr : order) {
      const auto git = wg->groups().find(instr);
      ASSERT_NE(git, wg->groups().end()) << "queued group not tracked";
      const WgGroupMeta& meta = git->second;
      const auto pending = ref_pending(mc, instr);
      ASSERT_EQ(meta.queued(), pending.size()) << "instr " << instr;

      // Each bank slot must hold exactly the queue's (row, arrival)
      // subsequence for that bank, in order.
      std::map<BankId, std::vector<const MemRequest*>> by_bank;
      for (const MemRequest& r : pending) by_bank[r.loc.bank].push_back(&r);
      std::size_t nonempty = 0;
      for (const WgGroupMeta::BankSlot& slot : meta.slots) {
        if (slot.items.empty()) continue;
        ++nonempty;
        const auto bit = by_bank.find(slot.bank);
        ASSERT_NE(bit, by_bank.end()) << "stale slot bank " << int{slot.bank};
        ASSERT_EQ(slot.items.size(), bit->second.size());
        for (std::size_t i = 0; i < slot.items.size(); ++i) {
          EXPECT_EQ(slot.items[i].row, bit->second[i]->loc.row);
          EXPECT_EQ(slot.items[i].arrival, bit->second[i]->arrived_at_mc);
        }
      }
      ASSERT_EQ(nonempty, by_bank.size());
    }

    // Candidate order: groups sorted by min slot-front seq must equal the
    // queue's first-occurrence order.
    std::vector<std::pair<std::uint64_t, WarpInstrUid>> by_seq;
    for (const auto& [instr, meta] : wg->groups()) {
      std::uint64_t head = ~std::uint64_t{0};
      for (const WgGroupMeta::BankSlot& slot : meta.slots) {
        if (!slot.items.empty()) {
          head = std::min(head, slot.items.front().seq);
        }
      }
      if (head != ~std::uint64_t{0}) by_seq.emplace_back(head, instr);
    }
    std::sort(by_seq.begin(), by_seq.end());
    ASSERT_EQ(by_seq.size(), order.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(by_seq[i].second, order[i]) << "candidate rank " << i;
    }
  }

  /// Assert every queued group's incremental score equals the reference.
  void check_scores() const {
    for (const WarpInstrUid instr : ref_candidate_order(mc)) {
      const WgPolicy::Score inc = wg->score_group(mc, instr);
      const WgPolicy::Score ref = ref_score(mc, cfg_, instr);
      EXPECT_EQ(inc.completion, ref.completion) << "instr " << instr;
      EXPECT_EQ(inc.row_hits, ref.row_hits) << "instr " << instr;
      // Scored twice: the cache path must return the same answer.
      const WgPolicy::Score again = wg->score_group(mc, instr);
      EXPECT_EQ(again.completion, ref.completion);
      EXPECT_EQ(again.row_hits, ref.row_hits);
    }
  }

  WgConfig cfg_;
  WgPolicy* wg = nullptr;
  MemoryController mc;
};

/// Drive `cycles` of randomized traffic through the controller, checking
/// the index and the scores after every cycle.
void run_differential(WgConfig cfg, std::uint64_t seed, Cycle cycles) {
  DiffHarness h(cfg);
  Lcg rng{seed};
  WarpInstrUid next_uid = 1;
  // Open groups: uid -> remaining requests to emit before completion.
  std::map<WarpInstrUid, std::pair<WarpTag, std::uint32_t>> open;

  for (Cycle now = 0; now < cycles; ++now) {
    // Maybe start a new group (up to 8 requests over up to 4 banks).
    if (open.size() < 6 && rng.below(4) == 0) {
      const WarpInstrUid uid = next_uid++;
      open[uid] = {WarpTag{}, 1 + rng.below(8)};
    }
    // Emit requests of open groups while the read queue has room.
    for (auto it = open.begin(); it != open.end();) {
      auto& [uid, entry] = *it;
      bool advanced = false;
      while (entry.second > 0 &&
             h.mc.read_queue().size() + 2 < h.mc.read_queue().capacity() &&
             rng.below(3) == 0) {
        const BankId bank = static_cast<BankId>(rng.below(4) * 4);
        const RowId row = 1 + rng.below(3);
        const MemRequest r = make_read(bank, row, rng.below(64), uid);
        entry.first = r.tag;
        h.mc.push(r, now);
        --entry.second;
        advanced = true;
      }
      if (entry.second == 0) {
        // All requests arrived: complete the group (sometimes late).
        if (rng.below(2) == 0) {
          h.mc.notify_group_complete(entry.first, now);
          it = open.erase(it);
          continue;
        }
      }
      ++it;
      (void)advanced;
    }
    // WG-M: occasionally inject a remote-selection message for a live or
    // future group (exercises the replay path).
    if (cfg.multi_channel && rng.below(16) == 0) {
      CoordMsg msg;
      msg.tag.instr = 1 + rng.below(static_cast<std::uint32_t>(next_uid) + 2);
      msg.score = rng.below(12);
      h.mc.deliver_coordination(msg, now);
    }

    h.mc.tick(now);
    h.check_index();
    h.check_scores();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(WgIncremental, DifferentialWg) {
  run_differential(WgConfig{}, 0x1234, 1500);
}

TEST(WgIncremental, DifferentialWgM) {
  WgConfig cfg;
  cfg.multi_channel = true;
  run_differential(cfg, 0x5678, 1500);
}

TEST(WgIncremental, DifferentialWgBw) {
  WgConfig cfg;
  cfg.multi_channel = true;
  cfg.merb = true;
  run_differential(cfg, 0x9abc, 1500);
}

TEST(WgIncremental, DifferentialWgW) {
  WgConfig cfg;
  cfg.multi_channel = true;
  cfg.merb = true;
  cfg.write_aware = true;
  run_differential(cfg, 0xdef0, 1500);
}

TEST(WgIncremental, DifferentialWgShared) {
  WgConfig cfg;
  cfg.merb = true;
  cfg.shared_data_boost = true;
  run_differential(cfg, 0x2468, 1500);
}

TEST(WgIncremental, DifferentialShortFallbackAge) {
  // A tiny fallback age forces frequent incomplete-group drains, hitting
  // the index-remove path for partially-arrived groups.
  WgConfig cfg;
  cfg.fallback_age = 32;
  run_differential(cfg, 0x1357, 1500);
}

}  // namespace
}  // namespace latdiv
