// Integration tests for the introspection layer end to end: enabling
// tracing / time-series must not perturb simulated results, trace events
// must exactly reconcile with the RunResult aggregates (the simulator's
// own statistics are the tracing layer's ground truth), and every
// artifact must be byte-identical regardless of idle fast-forward or
// executor thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "exp/executor.hpp"
#include "exp/json.hpp"
#include "obs/event.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

SimConfig obs_cfg(const char* workload = "bfs", bool trace = true,
                  bool timeseries = true) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name(workload);
  cfg.max_cycles = 8'000;
  cfg.warmup_cycles = 0;  // trace covers the whole run; keep stats aligned
  cfg.obs.trace = trace;
  cfg.obs.timeseries = timeseries;
  cfg.obs.sample_interval = 250;
  return cfg;
}

/// Per-event trace tallies extracted from the Chrome JSON.
struct TraceTally {
  std::uint64_t cas = 0, data = 0, wr = 0, loads = 0;
  std::uint64_t service_sum = 0;  ///< sum of data events' "service" args
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> acts;
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> pres;
};

std::uint64_t arg_u64(const exp::JsonValue& ev, const char* key) {
  const exp::JsonValue* args = ev.find("args");
  if (args == nullptr) return 0;
  const exp::JsonValue* v = args->find(key);
  return v == nullptr ? 0 : static_cast<std::uint64_t>(v->as_number());
}

TraceTally tally(const std::string& json) {
  TraceTally t;
  const exp::JsonValue doc = exp::JsonValue::parse(json);
  for (const exp::JsonValue& ev : doc.at("traceEvents").as_array()) {
    const std::string& name = ev.at("name").as_string();
    const auto pid = static_cast<std::uint64_t>(ev.at("pid").as_number());
    const auto tid = static_cast<std::uint64_t>(ev.at("tid").as_number());
    if (name == "cas") {
      ++t.cas;
    } else if (name == "data") {
      ++t.data;
      t.service_sum += arg_u64(ev, "service");
    } else if (name == "wr") {
      ++t.wr;
    } else if (name == "load") {
      ++t.loads;
      // Internal consistency of each warp slice: first + gap == last and
      // the slice lasts at least until the last request returned.
      EXPECT_EQ(arg_u64(ev, "first") + arg_u64(ev, "gap"), arg_u64(ev, "last"));
      EXPECT_GE(static_cast<std::uint64_t>(ev.at("dur").as_number()),
                arg_u64(ev, "last"));
    } else if (name == "ACT") {
      ++t.acts[{pid, tid}];
    } else if (name == "PRE") {
      ++t.pres[{pid, tid}];
    }
  }
  return t;
}

TEST(ObsTrace, TracingDoesNotPerturbSimulation) {
  const RunResult base = Simulator(obs_cfg("bfs", false, false)).run();
  Simulator traced(obs_cfg("bfs", true, true));
  const RunResult r = traced.run();
  ASSERT_NE(traced.obs(), nullptr);
  EXPECT_GT(traced.obs()->trace_events(), 0u);

  EXPECT_EQ(base.instructions, r.instructions);
  EXPECT_EQ(base.dram_reads, r.dram_reads);
  EXPECT_EQ(base.dram_writes, r.dram_writes);
  EXPECT_EQ(base.dram_activates, r.dram_activates);
  EXPECT_DOUBLE_EQ(base.ipc, r.ipc);
  EXPECT_DOUBLE_EQ(base.effective_mem_latency_ns, r.effective_mem_latency_ns);
  EXPECT_DOUBLE_EQ(base.mc_read_service_cycles, r.mc_read_service_cycles);
}

TEST(ObsTrace, TraceReconcilesWithRunResultAggregates) {
  Simulator sim(obs_cfg("sssp"));
  const RunResult r = sim.run();
  ASSERT_NE(sim.obs(), nullptr);
  const TraceTally t = tally(sim.obs()->trace_json());

  // Command counts: every DRAM read CAS is a "cas" without a matching
  // "wr"; every write CAS retires exactly one "wr".
  EXPECT_GT(t.cas, 0u);
  EXPECT_EQ(t.cas - t.wr, r.dram_reads);
  EXPECT_EQ(t.wr, r.dram_writes);

  // Per-request read service latencies in the trace average to exactly
  // the RunResult aggregate (both are integer cycle sums under the hood).
  ASSERT_GT(t.data, 0u);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(t.service_sum) / static_cast<double>(t.data),
      r.mc_read_service_cycles);

  // The read-queueing aggregate reconciles against the hub's histogram
  // (the histogram records reads only; the trace's "cas" events cover
  // writes too, so the registry is the right cross-check here).
  const obs::Log2Histogram* q =
      sim.obs()->metrics().find_histogram("req.read_queue_wait");
  ASSERT_NE(q, nullptr);
  ASSERT_GT(q->total(), 0u);
  EXPECT_DOUBLE_EQ(
      static_cast<double>(q->sum()) / static_cast<double>(q->total()),
      r.mc_read_queueing_cycles);

  // Divergence histogram total matches the emitted warp-load slices.
  const obs::Log2Histogram* gap =
      sim.obs()->metrics().find_histogram("warp.divergence_gap");
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->total(), t.loads);
  EXPECT_GT(t.loads, 0u);
}

TEST(ObsTrace, PerBankEventCountsMatchBankBreakdown) {
  Simulator sim(obs_cfg("bfs"));
  const RunResult r = sim.run();
  ASSERT_NE(sim.obs(), nullptr);
  const TraceTally t = tally(sim.obs()->trace_json());

  ASSERT_FALSE(r.bank_breakdown.empty());
  std::uint64_t acts = 0, pres = 0, classified = 0, banks = 0;
  for (std::size_t ch = 0; ch < r.bank_breakdown.size(); ++ch) {
    for (std::size_t b = 0; b < r.bank_breakdown[ch].size(); ++b) {
      const BankCounters& bc = r.bank_breakdown[ch][b];
      const std::pair<std::uint64_t, std::uint64_t> key{
          obs::kPidMcBase + ch, b};
      const auto a = t.acts.find(key);
      const auto p = t.pres.find(key);
      EXPECT_EQ(a == t.acts.end() ? 0u : a->second, bc.activates)
          << "ch" << ch << " bank" << b;
      EXPECT_EQ(p == t.pres.end() ? 0u : p->second, bc.precharges)
          << "ch" << ch << " bank" << b;
      acts += bc.activates;
      pres += bc.precharges;
      classified += bc.row_hits + bc.row_misses + bc.row_conflicts;
      ++banks;
    }
  }
  // The per-bank breakdown sums back to the run aggregates.  Every CAS
  // was classified as exactly one of hit/miss/conflict; a head request
  // is classified when its first command issues, which can lead its CAS
  // by a few cycles, so at the run-end cutoff each bank may hold at most
  // one classified-but-not-yet-CAS'd head.
  EXPECT_EQ(acts, r.dram_activates);
  EXPECT_GE(classified, t.cas);
  EXPECT_LE(classified - t.cas, banks);
  EXPECT_GT(pres, 0u);
}

TEST(ObsTrace, ArtifactsAreByteIdenticalAcrossFastForward) {
  SimConfig on = obs_cfg("bfs");
  SimConfig off = obs_cfg("bfs");
  on.idle_fast_forward = true;
  off.idle_fast_forward = false;
  Simulator a(on);
  Simulator b(off);
  a.run();
  b.run();
  ASSERT_NE(a.obs(), nullptr);
  ASSERT_NE(b.obs(), nullptr);
  EXPECT_EQ(a.obs()->timeseries_csv(), b.obs()->timeseries_csv());
  EXPECT_EQ(a.obs()->metrics_json(), b.obs()->metrics_json());
  EXPECT_EQ(a.obs()->trace_json(), b.obs()->trace_json());
}

TEST(ObsTrace, ArtifactsAreByteIdenticalAcrossExecutorJobs) {
  namespace fs = std::filesystem;
  const fs::path root = fs::path(::testing::TempDir()) / "latdiv_obs_jobs";
  fs::remove_all(root);

  const auto build_grid = [&root](const char* sub) {
    const fs::path dir = root / sub;
    fs::create_directories(dir);
    exp::ExpGrid grid;
    for (const char* wl : {"bfs", "sssp", "spmv"}) {
      exp::ExpPoint p;
      p.id = wl;
      p.row = wl;
      p.col = "GMC";
      p.workload = profile_by_name(wl);
      p.cycles = 4'000;
      p.seed = 7;
      const std::string trace = (dir / (std::string(wl) + ".json")).string();
      const std::string series = (dir / (std::string(wl) + ".csv")).string();
      p.hook = [trace, series](SimConfig& cfg) {
        cfg.shrink_for_tests();
        cfg.max_cycles = 4'000;
        cfg.warmup_cycles = 0;
        cfg.obs.trace = true;
        cfg.obs.trace_path = trace;
        cfg.obs.timeseries = true;
        cfg.obs.timeseries_path = series;
        cfg.obs.sample_interval = 250;
      };
      grid.add(std::move(p));
    }
    return grid;
  };

  const auto results1 = exp::run_grid(build_grid("jobs1"), 1, {});
  const auto results3 = exp::run_grid(build_grid("jobs3"), 3, {});
  for (const auto& r : results1) ASSERT_TRUE(r.ok) << r.error;
  for (const auto& r : results3) ASSERT_TRUE(r.ok) << r.error;

  const auto slurp = [](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    EXPECT_TRUE(in) << p;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  for (const char* wl : {"bfs", "sssp", "spmv"}) {
    for (const char* ext : {".json", ".csv"}) {
      const std::string a = slurp(root / "jobs1" / (std::string(wl) + ext));
      const std::string b = slurp(root / "jobs3" / (std::string(wl) + ext));
      EXPECT_FALSE(a.empty()) << wl << ext;
      EXPECT_EQ(a, b) << wl << ext;
    }
  }
  fs::remove_all(root);
}

TEST(ObsTrace, ExecutorSurfacesObsPercentileMetrics) {
  exp::ExpPoint p;
  p.id = "bfs";
  p.workload = profile_by_name("bfs");
  p.cycles = 4'000;
  p.hook = [](SimConfig& cfg) {
    cfg.shrink_for_tests();
    cfg.max_cycles = 4'000;
    cfg.warmup_cycles = 0;
    cfg.obs.timeseries = true;  // enables the hub without file output
  };
  const exp::PointResult res = exp::execute_point(p);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.metrics.count("obs.divergence_gap_p50"), 1u);
  EXPECT_EQ(res.metrics.count("obs.last_latency_p99"), 1u);
  EXPECT_EQ(res.metrics.count("obs.read_service_p90"), 1u);

  // Without the obs layer, no obs.* keys appear — the base artifact
  // metric set (and its committed goldens) is unchanged.
  exp::ExpPoint plain = p;
  plain.hook = [](SimConfig& cfg) {
    cfg.shrink_for_tests();
    cfg.max_cycles = 4'000;
  };
  const exp::PointResult res2 = exp::execute_point(plain);
  ASSERT_TRUE(res2.ok) << res2.error;
  for (const auto& [k, v] : res2.metrics) {
    EXPECT_EQ(k.rfind("obs.", 0), std::string::npos) << k;
  }
}

}  // namespace
}  // namespace latdiv
