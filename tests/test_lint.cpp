// latdiv-lint engine tests: the fixture corpus (tests/lint_fixtures)
// pins every rule's positive and suppressed behaviour, and the self-check
// asserts the production tree under src/ lints clean — the same gate CI
// applies.  Expected findings are declared in the fixtures themselves:
//   // expect: <rule>        a finding with <rule> on this line
//   // expect-below: <rule>  a finding with <rule> on the next line
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "lint_engine.hpp"
#include "lint_rules.hpp"

namespace {

namespace fs = std::filesystem;
using latdiv::lint::LintResult;
using latdiv::lint::run_lint;

using Expected = std::tuple<std::string, int, std::string>;  // file, line, rule

std::string fixture_dir() { return std::string(LATDIV_SOURCE_DIR) + "/tests/lint_fixtures"; }

/// Collect (file, line, rule) triples from `// expect:` markers in every
/// fixture file under `dir`.
std::set<Expected> collect_expected(const std::string& dir) {
  std::set<Expected> out;
  std::vector<fs::path> files;
  for (const auto& e : fs::recursive_directory_iterator(dir)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& p : files) {
    std::ifstream in(p);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      for (const auto& [marker, offset] :
           {std::pair<const char*, int>{"// expect-below: ", 1},
            std::pair<const char*, int>{"// expect: ", 0}}) {
        std::size_t pos = line.find(marker);
        if (pos == std::string::npos) continue;
        std::string rule = line.substr(pos + std::string(marker).size());
        while (!rule.empty() && (rule.back() == ' ' || rule.back() == '\r')) {
          rule.pop_back();
        }
        out.emplace(p.string(), lineno + offset, rule);
        break;
      }
    }
  }
  return out;
}

std::set<Expected> as_triples(const LintResult& r) {
  std::set<Expected> out;
  for (const auto& f : r.findings) out.emplace(f.file, f.line, f.rule);
  return out;
}

TEST(LintFixtures, BadCorpusMatchesExpectMarkers) {
  const std::string bad = fixture_dir() + "/bad";
  const std::set<Expected> expected = collect_expected(bad);
  ASSERT_GE(expected.size(), 15u) << "fixture corpus lost its markers?";

  const LintResult r = run_lint({bad});
  ASSERT_TRUE(r.errors.empty());
  const std::set<Expected> actual = as_triples(r);

  for (const Expected& e : expected) {
    EXPECT_TRUE(actual.count(e) != 0)
        << "missed: " << std::get<0>(e) << ":" << std::get<1>(e) << ": "
        << std::get<2>(e);
  }
  for (const Expected& a : actual) {
    EXPECT_TRUE(expected.count(a) != 0)
        << "unexpected: " << std::get<0>(a) << ":" << std::get<1>(a) << ": "
        << std::get<2>(a);
  }
}

TEST(LintFixtures, BadCorpusCoversEveryRule) {
  const LintResult r = run_lint({fixture_dir() + "/bad"});
  std::set<std::string> fired;
  for (const auto& f : r.findings) fired.insert(f.rule);
  for (const std::string& id : latdiv::lint::rule_ids()) {
    EXPECT_TRUE(fired.count(id) != 0) << "no fixture exercises rule " << id;
  }
}

TEST(LintFixtures, GoodCorpusIsCleanAndUsesEverySuppression) {
  const LintResult r = run_lint({fixture_dir() + "/good"});
  ASSERT_TRUE(r.errors.empty());
  for (const auto& f : r.findings) {
    ADD_FAILURE() << "unexpected finding: " << f.file << ":" << f.line << ": "
                  << f.rule << ": " << f.message;
  }
  // One suppressed case per rule family plus the trace-reader and
  // ckpt-reader fixtures' measurement/aggregation directives, all
  // consumed (an unused directive would have been reported as a finding
  // above).
  EXPECT_EQ(r.suppressions_used, 16u);
  EXPECT_EQ(r.files_analyzed, 8u);
}

TEST(LintSelfCheck, ProductionTreeIsClean) {
  const LintResult r = run_lint({std::string(LATDIV_SOURCE_DIR) + "/src"});
  ASSERT_TRUE(r.errors.empty());
  for (const auto& f : r.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  EXPECT_GT(r.files_analyzed, 50u);
  EXPECT_GT(r.suppressions_used, 0u);
}

TEST(LintReport, TextFormatIsFileLineRuleMessage) {
  const LintResult r = run_lint({fixture_dir() + "/bad/shard.hpp"});
  const std::string text = latdiv::lint::to_text(r);
  EXPECT_NE(text.find("shard.hpp:18: shard-boundary: "), std::string::npos)
      << text;
}

TEST(LintReport, JsonReportHasToolMetadataAndFindings) {
  const LintResult r = run_lint({fixture_dir() + "/bad"});
  const std::string json = latdiv::lint::to_json(r);
  EXPECT_NE(json.find("\"tool\": \"latdiv-lint\""), std::string::npos);
  EXPECT_NE(json.find("\"finding_count\": "), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"unordered-iter\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressions_used\": "), std::string::npos);
}

TEST(LintReport, RunIsDeterministic) {
  const std::string bad = fixture_dir() + "/bad";
  const std::string a = latdiv::lint::to_json(run_lint({bad}));
  const std::string b = latdiv::lint::to_json(run_lint({bad}));
  EXPECT_EQ(a, b);
}

}  // namespace
