// Positive fixtures for the shard-safety family.  The class is named
// after a real shard-boundary class on purpose: the rule matches fields
// of MemoryController/Channel/Crossbar by class name, and every
// pointer/reference/callback field must carry LATDIV_GUARDED_BY(...) or
// LATDIV_SHARD_LOCAL.
#pragma once

#include <cstdint>
#include <functional>

namespace fixture {

class Crossbar {
 public:
  using HandoffFn = std::function<void(int)>;

 private:
  HandoffFn on_handoff_;  // expect: shard-boundary
  std::uint64_t* remote_count_ = nullptr;  // expect: shard-boundary
  static std::uint64_t instances_;  // expect: mutable-static
  std::uint64_t local_count_ = 0;  // value field: shard-private, fine
};

inline int next_fixture_id() {
  static int counter = 0;  // expect: mutable-static
  return ++counter;
}

}  // namespace fixture
