// Path-based shard-boundary enforcement: this file lives under a par/
// directory, so *every* class in it is on the shard boundary — the rule
// fires on unannotated escape-hatch fields regardless of the class name.
#pragma once

#include <cstdint>
#include <functional>

namespace fixture {

class EpochRunner {
 public:
  using StageFn = std::function<void(std::uint32_t)>;

 private:
  StageFn on_stage_;  // expect: shard-boundary
  std::uint64_t* merge_count_ = nullptr;  // expect: shard-boundary
  std::uint64_t epochs_ = 0;  // value field: shard-private, fine
};

}  // namespace fixture
