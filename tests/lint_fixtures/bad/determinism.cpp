// Positive fixtures for the determinism rule family.  Each `// expect:`
// marker names the rule latdiv-lint must report on that exact line
// (tests/test_lint.cpp compares the two sets).  This file is never
// compiled — it exists only to be linted.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>

namespace fixture {

double now_ms() {
  auto t0 = std::chrono::steady_clock::now();  // expect: wall-clock
  (void)t0;
  return 0.0;
}

long stamp() {
  return time(nullptr);  // expect: wall-clock
}

void fill_tm() {
  gettimeofday(nullptr, nullptr);  // expect: wall-clock
}

int noise() {
  return rand();  // expect: unseeded-rng
}

unsigned entropy_seed() {
  std::random_device rd;  // expect: unseeded-rng
  return rd();
}

double max_latency() {
  std::unordered_map<int, double> local;
  double worst = 0.0;
  for (auto it = local.begin(); it != local.end(); ++it) {  // expect: unordered-iter
    if (it->second > worst) worst = it->second;
  }
  return worst;
}

double biased_sum() {
  std::unordered_map<int, double> weights;
  double sum = 0.0;
  // The loop itself is vouched order-independent, but float accumulation
  // inside it must still be reported: FP addition does not commute across
  // reorderings.
  // lint: order-independent
  for (const auto& [k, w] : weights) {
    (void)k;
    sum += w;  // expect: float-accum
  }
  return sum;
}

}  // namespace fixture
