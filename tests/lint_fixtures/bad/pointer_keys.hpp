// Positive fixtures for pointer-key: ordered containers keyed by pointer
// values iterate in allocation order, which differs run to run.
#pragma once

#include <map>
#include <set>

namespace fixture {

struct Request {};

class RequestIndex {
 private:
  std::map<Request*, int> by_req_;  // expect: pointer-key
  std::set<const Request*> live_;  // expect: pointer-key
  std::map<int, Request*> by_id_;  // pointer *values* are fine
};

}  // namespace fixture
