// Source half of the cross-file unordered-iter fixture (see
// warp_table.hpp): iterating an accessor whose return type is declared
// unordered in another file must be caught, as must float accumulation
// inside that loop.
#include "warp_table.hpp"

namespace fixture {

double sum_latencies(const WarpTable& wt) {
  double acc = 0.0;
  for (const auto& [uid, lat] : wt.latencies()) {  // expect: unordered-iter
    (void)uid;
    acc += lat;  // expect: float-accum
  }
  return acc;
}

}  // namespace fixture
