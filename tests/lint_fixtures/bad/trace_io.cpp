// Trace-I/O idioms done wrong: what the trace capture/replay layer
// (src/workload/trace.cpp) must never do.  Wall-clock stamps in headers,
// unseeded shuffling, hash-ordered chunk flushing and pointer-keyed
// stream indexes all make trace *bytes* nondeterministic across runs —
// breaking the committed-sha256 gate in CI.  Each marker names the rule
// that guards against the idiom.  Never compiled, only linted.
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct ChunkBuf {
  std::vector<unsigned char> payload;
  double mean_latency = 0.0;
};

long header_timestamp() {
  // Stamping trace headers with capture time breaks byte-identical
  // re-capture of the same (scenario, geometry, seed).
  return time(nullptr);  // expect: wall-clock
}

unsigned chunk_shuffle_seed() {
  return rand();  // expect: unseeded-rng
}

double flush_open_chunks() {
  std::unordered_map<unsigned, ChunkBuf> open_chunks;
  double mean = 0.0;
  // Flushing chunks in hash order writes them to the file in a
  // different order every run.
  for (auto it = open_chunks.begin(); it != open_chunks.end(); ++it) {  // expect: unordered-iter
    mean += it->second.mean_latency;  // expect: float-accum
  }
  return mean;
}

class StreamIndex {
 private:
  // Chunk offsets keyed by buffer address serialize in allocation order.
  std::map<ChunkBuf*, unsigned long> offsets_;  // expect: pointer-key
};

}  // namespace fixture
