// Positive fixtures for unused-suppression: a directive that suppresses
// nothing (or names no known rule) is itself a finding.  The
// `// expect-below:` marker refers to the line after it.
namespace fixture {

// expect-below: unused-suppression
// lint: pointer-key-ok
inline double stale() { return 1.0; }

// expect-below: unused-suppression
// lint: frobnicate
inline int unknown_directive() { return 0; }

}  // namespace fixture
