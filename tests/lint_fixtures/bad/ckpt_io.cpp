// Checkpoint-serialization idioms done wrong: what the snapshot layer
// (src/ckpt/snapshot.cpp) must never do.  Wall-clock stamps in the
// header, rand()-salted nonces, hash-ordered section emission and
// pointer-keyed offset indexes all make snapshot *bytes* nondeterministic
// across runs — breaking the committed-sha256 gate and the resume
// byte-identity contract.  Each marker names the guarding rule.  Never
// compiled, only linted.
#include <cstdlib>
#include <ctime>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

struct SectionBuf {
  std::vector<unsigned char> payload;
  double fill_ratio = 0.0;
};

long snapshot_header_stamp() {
  // Stamping snapshot headers with save time breaks byte-identical
  // re-snapshot of the same simulator state.
  return time(nullptr);  // expect: wall-clock
}

unsigned snapshot_nonce() {
  // A random nonce makes every save of identical state a new file.
  return rand();  // expect: unseeded-rng
}

double emit_dirty_sections() {
  std::unordered_map<unsigned, SectionBuf> dirty_sections;
  double mean_fill = 0.0;
  // Writing sections in hash order reorders the file every run; the
  // section walk must follow the fixed CORE..OBSV order.
  for (const auto& [tag, buf] : dirty_sections) {  // expect: unordered-iter
    mean_fill += buf.fill_ratio;  // expect: float-accum
  }
  return mean_fill;
}

class SectionOffsetIndex {
 private:
  // Offsets keyed by buffer address serialize in allocation order.
  std::map<SectionBuf*, unsigned long> offsets_;  // expect: pointer-key
};

}  // namespace fixture
