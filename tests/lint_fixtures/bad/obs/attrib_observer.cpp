// Positive fixtures for observer-purity on the attribution-profiler
// shape: request-lifecycle entry points under an obs/ directory that
// take simulation state mutably must be reported; const references and
// by-value parameters are fine.
namespace fixture {

class MemRequest;
class InstrTracker;

class AttribObserver {
 public:
  void req_enqueued(MemRequest& req, unsigned long now);  // expect: observer-purity
  void attach(InstrTracker* tracker);  // expect: observer-purity
  void req_data(const MemRequest& req, unsigned long done);  // const: fine
  void warp_load(unsigned long uid, unsigned reqs);  // by value: fine
};

}  // namespace fixture
