// Positive fixtures for observer-purity: this file lives under an obs/
// directory, so every entry point taking simulation state by non-const
// reference or pointer must be reported.
#pragma once

namespace fixture {

class Channel;
class MemRequest;

class MutatingObserver {
 public:
  void on_command(Channel& ch);  // expect: observer-purity
  void on_request(MemRequest* req);  // expect: observer-purity
  void on_retire(const MemRequest& req);  // const: fine
  void on_cycle(int now);  // by value: fine
};

}  // namespace fixture
