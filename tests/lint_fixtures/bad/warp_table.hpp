// Header half of the cross-file unordered-iter fixture: the member and
// its accessor are declared here, the offending iteration lives in
// warp_iter.cpp.  The linter must connect the two through its pooled
// symbol tables.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

class WarpTable {
 public:
  const std::unordered_map<std::uint32_t, double>& latencies() const {
    return latencies_;
  }

 private:
  std::unordered_map<std::uint32_t, double> latencies_;
};

}  // namespace fixture
