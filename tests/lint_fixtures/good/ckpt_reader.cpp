// Checkpoint-reading idioms done right, mirroring src/ckpt/snapshot.cpp:
// section tables in ordered containers keyed by integer position,
// wall-clock reads only for load-time measurement (suppressed as such),
// and integer CRC aggregation where iteration order is vouched.
// latdiv-lint must report nothing here and count every directive as used.
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture_good {

struct SectionFrame {
  std::vector<unsigned char> payload;
  std::uint32_t crc = 0;
};

class SectionTable {
 private:
  // Integer file-position keys: iteration order is the on-disk section
  // order, identical on every run.
  std::map<std::uint64_t, SectionFrame> frames_;
};

double load_throughput_s(std::uint64_t snapshot_bytes) {
  // Timing a snapshot load is measurement, never serialized state.
  const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const auto t1 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  (void)snapshot_bytes;
  return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t cached_payload_total() {
  std::unordered_map<std::uint32_t, SectionFrame> frame_cache;
  std::uint64_t payload_sum = 0;
  // Integer sum: commutative, so hash order cannot change the result.
  // lint: order-independent
  for (const auto& [pos, frame] : frame_cache) {
    (void)pos;
    payload_sum += frame.payload.size();
  }
  return payload_sum;
}

}  // namespace fixture_good
