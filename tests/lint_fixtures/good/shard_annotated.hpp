// Shard-safety family, satisfied three ways: LATDIV_SHARD_LOCAL and
// LATDIV_GUARDED_BY annotations on boundary fields and statics, and a
// comment suppression for a legacy static.
#pragma once

#include <cstdint>
#include <functional>

namespace fixture_good {

class Channel {
 public:
  using DrainFn = std::function<void()>;

 private:
  DrainFn on_drain_ LATDIV_SHARD_LOCAL;
  std::uint64_t* shared_ctr_ LATDIV_GUARDED_BY(mu_) = nullptr;
  std::uint64_t ticks_ = 0;
};

inline std::uint64_t bump() {
  static std::uint64_t calls LATDIV_SHARD_LOCAL = 0;
  return ++calls;
}

inline int legacy_bump() {
  static int legacy = 0;  // lint: mutable-static-ok
  return ++legacy;
}

}  // namespace fixture_good
