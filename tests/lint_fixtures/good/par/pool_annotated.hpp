// Path-based shard-boundary enforcement, satisfied every accepted way:
// LATDIV_SHARD_LOCAL / LATDIV_GUARDED_BY annotations, a const-qualified
// reference (immutable shared state needs no classification), and a
// justified comment suppression.
#pragma once

#include <cstdint>
#include <functional>

namespace fixture_good {

struct Timing {};

class EpochRunner {
 public:
  using StageFn = std::function<void(std::uint32_t)>;

 private:
  StageFn on_stage_ LATDIV_SHARD_LOCAL;
  std::uint64_t* merge_count_ LATDIV_GUARDED_BY(mu_) = nullptr;
  const Timing& timing_;  // const ref: immutable shared state, fine
  // Shared by design: each worker dereferences only its own slot.
  std::uint64_t** slots_ = nullptr;  // lint: shard-boundary-ok
  std::uint64_t epochs_ = 0;
};

}  // namespace fixture_good
