// Trace-I/O idioms done right, mirroring src/workload/trace.cpp: stream
// state in ordered containers keyed by integer warp index, wall-clock
// reads only for measurement (suppressed as such), and integer
// aggregation where iteration order is vouched.  latdiv-lint must report
// nothing here and count every directive as used.
#include <chrono>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture_good {

struct WarpStreamBuf {
  std::vector<unsigned char> payload;
  std::uint64_t records = 0;
};

class TraceIndex {
 private:
  // Integer warp-index keys: iteration order is the SM-major warp order,
  // identical on every run.
  std::map<std::uint32_t, WarpStreamBuf> streams_;
};

double decode_throughput_s(std::uint64_t payload_bytes) {
  // Timing a decode is measurement, never simulator or file-format state.
  const auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  const auto t1 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  (void)payload_bytes;
  return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t cached_record_total() {
  std::unordered_map<std::uint32_t, WarpStreamBuf> cache;
  std::uint64_t record_sum = 0;
  // Integer sum: commutative, so hash order cannot change the result.
  // lint: order-independent
  for (const auto& [wi, ws] : cache) {
    (void)wi;
    record_sum += ws.records;
  }
  return record_sum;
}

}  // namespace fixture_good
