// Observer-purity on the attribution-profiler shape: the real
// AttributionProfiler sees every request through const references and
// folds into private state only.  A deliberately mutating hook needs a
// justification suppression.
namespace fixture_good {

class MemRequest;

class AttribObserver {
 public:
  void req_enqueued(const MemRequest& req, unsigned long now);
  void req_data(const MemRequest& req, unsigned long done);
  void warp_load(unsigned long uid, unsigned reqs);
  void recycle(MemRequest& req);  // lint: observer-purity-ok
};

}  // namespace fixture_good
