// Observer-purity under obs/: const access is fine, and a deliberately
// mutating hook can be justified with a suppression.
#pragma once

namespace fixture_good {

class Channel;

class ConstObserver {
 public:
  void on_command(const Channel& ch);
  void reset(Channel& ch);  // lint: observer-purity-ok
};

}  // namespace fixture_good
