// Suppressed-but-justified cases for the determinism rule family:
// latdiv-lint must report nothing in this directory, and every directive
// here must be counted as used (an unused one is itself a finding).
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

namespace fixture_good {

double wall_ms() {
  auto t0 = std::chrono::steady_clock::now();  // lint: wall-clock-ok
  (void)t0;
  return 0.0;
}

int jitter() {
  return rand();  // lint: unseeded-rng-ok
}

int count_entries() {
  std::unordered_map<int, int> m;
  int n = 0;
  // Pure aggregation with integer arithmetic: order-independent.
  // lint: order-independent
  for (const auto& [k, v] : m) {
    (void)k;
    n += v;
  }
  return n;
}

struct Tag {};

class TagIndex {
 private:
  std::map<Tag*, int> order_;  // lint: pointer-key-ok
};

double float_total() {
  std::unordered_map<int, double> m;
  double total = 0.0;
  // lint: order-independent
  for (const auto& [k, w] : m) {
    (void)k;
    total += w;  // lint: float-accum-ok
  }
  return total;
}

}  // namespace fixture_good
