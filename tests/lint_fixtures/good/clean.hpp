// Plain deterministic code: ordered containers, no wall clock, no global
// randomness — latdiv-lint has nothing to say and no suppressions to use.
#pragma once

#include <cstdint>
#include <map>

namespace fixture_good {

class LatencyHistogram {
 public:
  void record(std::uint64_t ns) { ++bins_[ns / 100]; }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& [bin, count] : bins_) {
      (void)bin;
      n += count;
    }
    return n;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> bins_;
};

}  // namespace fixture_good
