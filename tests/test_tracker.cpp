#include "gpu/tracker.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

DramLoc loc(ChannelId ch, BankId bank, RowId row) {
  DramLoc l;
  l.channel = ch;
  l.bank = bank;
  l.row = row;
  return l;
}

TEST(Tracker, LoadWithoutDramIsCountedButNotMeasured) {
  InstrTracker t;
  t.on_issue(1, 100);
  t.finalize(1, 150);
  EXPECT_EQ(t.summary().loads_finalized, 1u);
  EXPECT_EQ(t.summary().loads_touching_dram, 0u);
  EXPECT_EQ(t.inflight(), 0u);
}

TEST(Tracker, SingleRequestLatencies) {
  InstrTracker t;
  t.on_issue(1, 100);
  t.on_dram_request(1, loc(0, 0, 1));
  t.on_dram_complete(1, 400);
  t.finalize(1, 420);
  const TrackerSummary& s = t.summary();
  EXPECT_EQ(s.loads_touching_dram, 1u);
  EXPECT_DOUBLE_EQ(s.first_req_latency.mean(), 300.0);
  EXPECT_DOUBLE_EQ(s.last_req_latency.mean(), 300.0);
  EXPECT_DOUBLE_EQ(s.divergence_gap.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.last_to_first_ratio.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.dram_reqs_per_load.mean(), 1.0);
}

TEST(Tracker, DivergenceGapAndRatio) {
  InstrTracker t;
  t.on_issue(7, 1000);
  t.on_dram_request(7, loc(0, 0, 1));
  t.on_dram_request(7, loc(1, 0, 1));
  t.on_dram_complete(7, 1200);  // first: 200 cycles
  t.on_dram_complete(7, 1320);  // last: 320 cycles
  t.finalize(7, 1330);
  const TrackerSummary& s = t.summary();
  EXPECT_DOUBLE_EQ(s.divergence_gap.mean(), 120.0);
  EXPECT_DOUBLE_EQ(s.last_to_first_ratio.mean(), 1.6);
}

TEST(Tracker, CompletionOrderIndependence) {
  // A later-completing request reported before an earlier one must not
  // corrupt first/last.
  InstrTracker t;
  t.on_issue(1, 0);
  t.on_dram_request(1, loc(0, 0, 1));
  t.on_dram_request(1, loc(1, 0, 1));
  t.on_dram_complete(1, 500);
  t.on_dram_complete(1, 300);  // earlier completion arrives second
  t.finalize(1, 510);
  // first_done keeps the chronologically-first *report*; the tracker is
  // fed in completion order by the controllers, so report order is
  // completion order in practice — but max() must still hold for last.
  EXPECT_DOUBLE_EQ(t.summary().last_req_latency.mean(), 500.0);
}

TEST(Tracker, ChannelsAndBanksCounted) {
  InstrTracker t;
  t.on_issue(1, 0);
  t.on_dram_request(1, loc(0, 0, 1));
  t.on_dram_request(1, loc(0, 1, 1));
  t.on_dram_request(1, loc(3, 0, 1));
  t.on_dram_complete(1, 100);
  t.on_dram_complete(1, 110);
  t.on_dram_complete(1, 120);
  t.finalize(1, 130);
  EXPECT_DOUBLE_EQ(t.summary().channels_per_load.mean(), 2.0);
  EXPECT_DOUBLE_EQ(t.summary().banks_per_load.mean(), 3.0);
}

TEST(Tracker, SameRowFraction) {
  InstrTracker t;
  t.on_issue(1, 0);
  // Two requests share (channel 0, bank 0, row 5); one is alone.
  t.on_dram_request(1, loc(0, 0, 5));
  t.on_dram_request(1, loc(0, 0, 5));
  t.on_dram_request(1, loc(0, 0, 9));
  t.on_dram_complete(1, 100);
  t.finalize(1, 110);
  EXPECT_NEAR(t.summary().same_row_frac.mean(), 2.0 / 3.0, 1e-12);
}

TEST(Tracker, SameBankDifferentChannelDoesNotShareRow) {
  InstrTracker t;
  t.on_issue(1, 0);
  t.on_dram_request(1, loc(0, 0, 5));
  t.on_dram_request(1, loc(1, 0, 5));  // same bank/row id, other channel
  t.on_dram_complete(1, 100);
  t.finalize(1, 110);
  EXPECT_DOUBLE_EQ(t.summary().same_row_frac.mean(), 0.0);
}

TEST(Tracker, UnknownUidEventsIgnored) {
  InstrTracker t;
  t.on_dram_request(99, loc(0, 0, 1));
  t.on_dram_complete(99, 10);
  t.finalize(99, 20);
  EXPECT_EQ(t.summary().loads_finalized, 0u);
}

TEST(Tracker, MultipleLoadsAggregate) {
  InstrTracker t;
  for (WarpInstrUid uid = 1; uid <= 3; ++uid) {
    t.on_issue(uid, 0);
    t.on_dram_request(uid, loc(0, 0, 1));
    t.on_dram_complete(uid, 100 * uid);
    t.finalize(uid, 400);
  }
  EXPECT_EQ(t.summary().loads_touching_dram, 3u);
  EXPECT_DOUBLE_EQ(t.summary().first_req_latency.mean(), 200.0);
}

TEST(TrackerDeath, DuplicateIssueAborts) {
  InstrTracker t;
  t.on_issue(1, 0);
  EXPECT_DEATH(t.on_issue(1, 5), "duplicate");
}

}  // namespace
}  // namespace latdiv
