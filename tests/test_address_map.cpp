#include "mem/address_map.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace latdiv {
namespace {

AddressMap make_map(bool xor_channel = true, bool xor_bank = true) {
  AddressMapConfig cfg;
  cfg.xor_channel_hash = xor_channel;
  cfg.xor_bank_permutation = xor_bank;
  return AddressMap(cfg);
}

TEST(AddressMap, LineBaseAligns) {
  const AddressMap m = make_map();
  EXPECT_EQ(m.line_base(0), 0u);
  EXPECT_EQ(m.line_base(127), 0u);
  EXPECT_EQ(m.line_base(128), 128u);
  EXPECT_EQ(m.line_base(0xABCDEF), 0xABCDEF & ~0x7Full);
}

TEST(AddressMap, FieldsInRange) {
  const AddressMap m = make_map();
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const DramLoc loc = m.decode(rng.next() & ((1ULL << 40) - 1));
    EXPECT_LT(loc.channel, 6);
    EXPECT_LT(loc.bank, 16);
    EXPECT_LT(loc.bank_group, 4);
    EXPECT_EQ(loc.bank_group, loc.bank / 4);
    EXPECT_LT(loc.col, 16u);
  }
}

TEST(AddressMap, DecodeIsDeterministic) {
  const AddressMap m = make_map();
  EXPECT_EQ(m.decode(0x12345680), m.decode(0x12345680));
}

TEST(AddressMap, LinesWithinGranuleShareEverything) {
  // Two 128B lines inside one 256B granule: same channel, bank, row.
  const AddressMap m = make_map();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const Addr base = (rng.next() & ((1ULL << 38) - 1)) & ~0xFFull;
    const DramLoc a = m.decode(base);
    const DramLoc b = m.decode(base + 128);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.bank, b.bank);
    EXPECT_EQ(a.row, b.row);
    EXPECT_NE(a.col, b.col);
  }
}

TEST(AddressMap, ConsecutiveGranulesSpreadChannels) {
  // A 2KB contiguous span must not camp on one channel.
  const AddressMap m = make_map();
  std::set<ChannelId> channels;
  const Addr base = 0x4000000;
  for (Addr off = 0; off < 2048; off += 256) {
    channels.insert(m.decode(base + off).channel);
  }
  EXPECT_GE(channels.size(), 4u);
}

TEST(AddressMap, ConsecutiveLinesShareRowAndBankWithinRowSpan) {
  // Within one 2KB row span the row and bank ids are constant.
  const AddressMap m = make_map();
  const Addr base = 0x10000000;  // 2KB-aligned (bits [10:0] zero)
  const DramLoc first = m.decode(base);
  for (Addr off = 0; off < 2048; off += 128) {
    const DramLoc loc = m.decode(base + off);
    EXPECT_EQ(loc.row, first.row);
    EXPECT_EQ(loc.bank, first.bank);
  }
}

TEST(AddressMap, ChannelHashBreaksPowerOfTwoStrides) {
  // A 2048-byte stride keeps addr[10:8] fixed; without the XOR hash all
  // accesses with the same addr[10:8] residue would hammer a subset of
  // channels determined by the modulo alone.  With the hash the high bits
  // get mixed in, spreading the stream.
  const AddressMap hashed = make_map(true, true);
  std::set<ChannelId> with_hash;
  for (Addr i = 0; i < 64; ++i) {
    with_hash.insert(hashed.decode(i * 2048).channel);
  }
  EXPECT_EQ(with_hash.size(), 6u);
}

TEST(AddressMap, BankPermutationBreaks32KbStrides) {
  // Stride of 32KB keeps addr[14:11] constant: without permutation every
  // access maps to one bank.
  const AddressMap plain = make_map(true, false);
  const AddressMap permuted = make_map(true, true);
  std::set<BankId> banks_plain;
  std::set<BankId> banks_perm;
  for (Addr i = 0; i < 64; ++i) {
    banks_plain.insert(plain.decode(i * 32768).bank);
    banks_perm.insert(permuted.decode(i * 32768).bank);
  }
  EXPECT_EQ(banks_plain.size(), 1u);
  EXPECT_GT(banks_perm.size(), 8u);
}

TEST(AddressMap, ChannelsRoughlyBalancedOnRandomTraffic) {
  const AddressMap m = make_map();
  Rng rng(3);
  std::vector<int> counts(6, 0);
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[m.decode(rng.next() & ((1ULL << 36) - 1)).channel];
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / 6, kDraws / 6 / 5);
}

TEST(AddressMap, BanksRoughlyBalancedOnRandomTraffic) {
  const AddressMap m = make_map();
  Rng rng(4);
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 64000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[m.decode(rng.next() & ((1ULL << 36) - 1)).bank];
  }
  for (int c : counts) EXPECT_NEAR(c, kDraws / 16, kDraws / 16 / 5);
}

}  // namespace
}  // namespace latdiv
