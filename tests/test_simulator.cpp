// End-to-end simulator tests: every scheduler runs to completion on a
// shrunken GPU, results are deterministic, and the idealised models bound
// the realistic ones from above.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

SimConfig small_cfg(SchedulerKind sched, const char* workload = "bfs") {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = sched;
  cfg.workload = profile_by_name(workload);
  return cfg;
}

class AllSchedulers : public ::testing::TestWithParam<SchedulerKind> {};

INSTANTIATE_TEST_SUITE_P(
    Schedulers, AllSchedulers,
    ::testing::Values(SchedulerKind::kFcfs, SchedulerKind::kFrFcfs,
                      SchedulerKind::kGmc, SchedulerKind::kWafcfs,
                      SchedulerKind::kSbwas, SchedulerKind::kWg,
                      SchedulerKind::kWgM, SchedulerKind::kWgBw,
                      SchedulerKind::kWgW, SchedulerKind::kZld),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

TEST_P(AllSchedulers, RunsAndMakesProgress) {
  Simulator sim(small_cfg(GetParam()));
  const RunResult r = sim.run();
  EXPECT_GT(r.instructions, 100u) << r.scheduler;
  EXPECT_GT(r.ipc, 0.0);
  EXPECT_GT(r.dram_reads, 0u);
  EXPECT_GT(r.bandwidth_utilization, 0.0);
  EXPECT_LE(r.bandwidth_utilization, 1.0);
  EXPECT_GE(r.row_hit_rate, 0.0);
  EXPECT_LE(r.row_hit_rate, 1.0);
}

TEST_P(AllSchedulers, DeterministicAcrossRuns) {
  const RunResult a = Simulator(small_cfg(GetParam())).run();
  const RunResult b = Simulator(small_cfg(GetParam())).run();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.effective_mem_latency_ns, b.effective_mem_latency_ns);
}

TEST_P(AllSchedulers, TrackedLatenciesAreOrdered) {
  const RunResult r = Simulator(small_cfg(GetParam(), "sssp")).run();
  // last >= first by construction; divergence gap consistent.
  EXPECT_GE(r.tracker.last_req_latency.mean(),
            r.tracker.first_req_latency.mean());
  EXPECT_GE(r.tracker.last_to_first_ratio.mean(), 1.0);
  EXPECT_GE(r.divergence_gap_ns, 0.0);
}

TEST(Simulator, SeedChangesWorkloadButNotValidity) {
  SimConfig cfg = small_cfg(SchedulerKind::kGmc);
  cfg.seed = 7;
  const RunResult a = Simulator(cfg).run();
  cfg.seed = 8;
  const RunResult b = Simulator(cfg).run();
  EXPECT_NE(a.dram_reads, b.dram_reads);
}

TEST(Simulator, PerfectCoalescingBeatsBaselineHandily) {
  SimConfig base = small_cfg(SchedulerKind::kGmc, "spmv");
  SimConfig perfect = base;
  perfect.sm.perfect_coalescing = true;
  const RunResult r_base = Simulator(base).run();
  const RunResult r_perf = Simulator(perfect).run();
  EXPECT_GT(r_perf.ipc, 1.5 * r_base.ipc);
  EXPECT_NEAR(r_perf.requests_per_load, 1.0, 1e-9);
}

TEST(Simulator, ZeroLatencyDivergenceShrinksTheGap) {
  const RunResult gmc =
      Simulator(small_cfg(SchedulerKind::kGmc, "sssp")).run();
  const RunResult zld =
      Simulator(small_cfg(SchedulerKind::kZld, "sssp")).run();
  EXPECT_LT(zld.divergence_gap_ns, 0.7 * gmc.divergence_gap_ns);
  EXPECT_GT(zld.ipc, gmc.ipc);
}

TEST(Simulator, WafcfsUsesStickyInterconnect) {
  Simulator sim(small_cfg(SchedulerKind::kWafcfs));
  // Config plumbed through: sticky arbitration mode.
  EXPECT_EQ(sim.config().scheduler, SchedulerKind::kWafcfs);
  const RunResult r = sim.run();
  EXPECT_GT(r.instructions, 0u);
}

TEST(Simulator, CoordinationOnlyChattersForWgM) {
  const RunResult wg = Simulator(small_cfg(SchedulerKind::kWg, "sssp")).run();
  const RunResult wgm =
      Simulator(small_cfg(SchedulerKind::kWgM, "sssp")).run();
  EXPECT_EQ(wg.coord_messages, 0u);
  EXPECT_GT(wgm.coord_messages, 0u);
}

TEST(Simulator, MerbOnlyActsForWgBw) {
  // MERB deferral needs enough queue pressure that a selected group's
  // row miss finds pending row hits from other warps, so this test runs
  // a fuller machine than the other shrunken-config tests.
  auto cfg = [](SchedulerKind k) {
    SimConfig c = small_cfg(k, "sad");
    c.num_sms = 10;
    c.icnt.sms = 10;
    c.sm.warps = 16;
    c.max_cycles = 30'000;
    return c;
  };
  const RunResult wgm = Simulator(cfg(SchedulerKind::kWgM)).run();
  const RunResult wgbw = Simulator(cfg(SchedulerKind::kWgBw)).run();
  EXPECT_EQ(wgm.wg_merb_deferrals, 0u);
  EXPECT_GT(wgbw.wg_merb_deferrals, 0u);
}

TEST(Simulator, CoalescingStatsMatchProfileShape) {
  const RunResult r = Simulator(small_cfg(SchedulerKind::kGmc, "spmv")).run();
  // spmv: 70% divergent loads configured; measured within tolerance.
  EXPECT_NEAR(r.divergent_load_frac, 0.70, 0.08);
  EXPECT_GT(r.requests_per_load, 4.0);
}

TEST(Simulator, RegularWorkloadCoalescesWell) {
  const RunResult r =
      Simulator(small_cfg(SchedulerKind::kGmc, "streamcluster")).run();
  EXPECT_LT(r.divergent_load_frac, 0.10);
  EXPECT_LT(r.requests_per_load, 1.5);
  EXPECT_GT(r.row_hit_rate, 0.3) << "streaming should produce row hits";
}

TEST(Simulator, StepAdvancesOneCycle) {
  Simulator sim(small_cfg(SchedulerKind::kGmc));
  EXPECT_EQ(sim.now(), 0u);
  sim.step();
  EXPECT_EQ(sim.now(), 1u);
}

TEST(Simulator, CustomPolicyHookIsUsed) {
  struct EchoFcfs : TransactionScheduler {
    const char* name() const override { return "custom-echo"; }
    void schedule_reads(MemoryController& mc, Cycle now) override {
      auto& rq = mc.read_queue();
      if (rq.empty() || !mc.bank_queue_has_space(rq.front().loc.bank)) return;
      MemRequest req = rq.pop();
      mc.send_to_bank(req, now);
    }
  };
  SimConfig cfg = small_cfg(SchedulerKind::kGmc);
  cfg.custom_policy = [](ChannelId, const DramTiming&) {
    return std::make_unique<EchoFcfs>();
  };
  const RunResult r = Simulator(cfg).run();
  EXPECT_EQ(r.scheduler, "custom-echo");
  EXPECT_GT(r.instructions, 100u);
}

TEST(Simulator, PowerBreakdownPopulated) {
  const RunResult r = Simulator(small_cfg(SchedulerKind::kGmc)).run();
  EXPECT_GT(r.power.total(), 0.0);
  EXPECT_GT(r.power.background, 0.0);
  EXPECT_GT(r.power.io, 0.0);
}

TEST(Simulator, WriteIntensityReflectsWorkload) {
  const RunResult nw = Simulator(small_cfg(SchedulerKind::kGmc, "nw")).run();
  const RunResult spmv =
      Simulator(small_cfg(SchedulerKind::kGmc, "spmv")).run();
  EXPECT_GT(nw.write_intensity, spmv.write_intensity)
      << "nw is the write-heavy benchmark";
}

}  // namespace
}  // namespace latdiv
