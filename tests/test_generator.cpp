#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gpu/coalescer.hpp"

namespace latdiv {
namespace {

WorkloadProfile test_profile() {
  WorkloadProfile p;
  p.name = "test";
  p.divergent_load_frac = 0.5;
  p.divergent_lines_mean = 8.0;
  p.cluster_len_mean = 2.0;
  p.store_frac = 0.2;
  p.mem_instr_frac = 0.5;
  p.footprint_bytes = 64ULL << 20;
  p.hot_frac = 0.1;
  p.hot_bytes = 1ULL << 20;
  return p;
}

TEST(Generator, DeterministicAcrossInstances) {
  WorkloadGenerator a(test_profile(), 2, 4, 99);
  WorkloadGenerator b(test_profile(), 2, 4, 99);
  for (int i = 0; i < 2000; ++i) {
    const WarpInstr x = a.next(1, 2);
    const WarpInstr y = b.next(1, 2);
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    ASSERT_EQ(x.latency, y.latency);
    ASSERT_EQ(x.lane_addr, y.lane_addr);
  }
}

TEST(Generator, SeedChangesStream) {
  WorkloadGenerator a(test_profile(), 1, 1, 1);
  WorkloadGenerator b(test_profile(), 1, 1, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next(0, 0).lane_addr == b.next(0, 0).lane_addr;
  }
  EXPECT_LT(same, 100);
}

TEST(Generator, WarpsAreIndependentStreams) {
  WorkloadGenerator g(test_profile(), 1, 2, 5);
  // Interleaving warp 0 and warp 1 must not change warp 0's stream.
  WorkloadGenerator ref(test_profile(), 1, 2, 5);
  for (int i = 0; i < 500; ++i) {
    const WarpInstr a = g.next(0, 0);
    (void)g.next(0, 1);
    const WarpInstr b = ref.next(0, 0);
    ASSERT_EQ(a.lane_addr, b.lane_addr);
  }
}

TEST(Generator, MemoryFractionApproximatesConfig) {
  WorkloadGenerator g(test_profile(), 1, 1, 7);
  int mem = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    mem += g.next(0, 0).kind != WarpInstr::Kind::kCompute;
  }
  EXPECT_NEAR(mem / static_cast<double>(kDraws), 0.5, 0.02);
}

TEST(Generator, StoreFractionApproximatesConfig) {
  WorkloadGenerator g(test_profile(), 1, 1, 7);
  int stores = 0;
  int mem = 0;
  for (int i = 0; i < 40000; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    ++mem;
    stores += instr.kind == WarpInstr::Kind::kStore;
  }
  EXPECT_NEAR(stores / static_cast<double>(mem), 0.2, 0.02);
}

TEST(Generator, DivergenceStatisticsMatchProfile) {
  WorkloadGenerator g(test_profile(), 1, 1, 11);
  Coalescer coal;
  std::vector<Addr> lines;
  int loads = 0;
  int divergent = 0;
  double total_lines = 0;
  for (int i = 0; i < 60000 && loads < 5000; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind != WarpInstr::Kind::kLoad) continue;
    coal.coalesce(instr, lines);
    ++loads;
    divergent += lines.size() > 1;
    total_lines += static_cast<double>(lines.size());
  }
  ASSERT_GE(loads, 5000);
  EXPECT_NEAR(divergent / static_cast<double>(loads), 0.5, 0.03);
  // Mean lines/load = 1*(1-p) + p*E[k]; E[k] ~ 8 (truncated) => ~4.5.
  EXPECT_NEAR(total_lines / loads, 0.5 + 0.5 * 8.0, 0.6);
}

TEST(Generator, AddressesStayInFootprint) {
  WorkloadGenerator g(test_profile(), 2, 2, 13);
  const Addr limit = test_profile().footprint_bytes + 8 * 128;  // cluster tail
  for (int i = 0; i < 20000; ++i) {
    const WarpInstr instr = g.next(1, 1);
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    for (std::uint32_t lane = 0; lane < instr.active_lanes; ++lane) {
      EXPECT_LT(instr.lane_addr[lane], limit);
    }
  }
}

TEST(Generator, MultiLineClustersAreGranuleAligned) {
  // Divergent loads must produce adjacent-line pairs inside one 256B
  // granule so intra-warp row locality exists (see generator comment).
  WorkloadProfile p = test_profile();
  p.divergent_load_frac = 1.0;
  p.cluster_len_mean = 4.0;
  WorkloadGenerator g(p, 1, 1, 17);
  Coalescer coal;
  std::vector<Addr> lines;
  int pairs = 0;
  int loads = 0;
  for (int i = 0; i < 2000 && loads < 300; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind != WarpInstr::Kind::kLoad) continue;
    ++loads;
    coal.coalesce(instr, lines);
    std::set<Addr> granules;
    for (Addr line : lines) {
      if (granules.contains(line & ~Addr{255})) {
        ++pairs;
        break;
      }
      granules.insert(line & ~Addr{255});
    }
  }
  // With mean cluster length 4, most loads contain at least one
  // same-granule pair.
  EXPECT_GT(pairs, loads / 2);
}

TEST(Generator, CoalescedLoadsSpanOneLine) {
  WorkloadProfile p = test_profile();
  p.divergent_load_frac = 0.0;
  WorkloadGenerator g(p, 1, 1, 19);
  Coalescer coal;
  std::vector<Addr> lines;
  for (int i = 0; i < 2000; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    coal.coalesce(instr, lines);
    EXPECT_EQ(lines.size(), 1u);
  }
}

TEST(Generator, StreamingWarpsAdvanceSequentially) {
  WorkloadProfile p = test_profile();
  p.divergent_load_frac = 0.0;
  p.streaming_frac = 1.0;
  p.hot_frac = 0.0;
  WorkloadGenerator g(p, 1, 1, 23);
  Addr prev = 0;
  bool first = true;
  for (int i = 0; i < 3000; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind == WarpInstr::Kind::kCompute) continue;
    const Addr line = instr.lane_addr[0] & ~Addr{127};
    if (!first && line != 0) {
      EXPECT_EQ(line, prev + 128);
    }
    prev = line;
    first = false;
  }
}

TEST(Generator, SuitesHaveExpectedMembers) {
  EXPECT_EQ(irregular_suite().size(), 11u);
  EXPECT_EQ(regular_suite().size(), 6u);
  EXPECT_EQ(profile_by_name("bfs").name, "bfs");
  EXPECT_EQ(profile_by_name("streamcluster").name, "streamcluster");
}

TEST(Generator, IrregularSuiteMatchesPaperAggregates) {
  // Fig. 2: ~56% of loads divergent, ~5.9 requests per load on average
  // across the irregular suite (bounds here are deliberately loose; the
  // bench reproduces the exact numbers).
  double div_sum = 0;
  double req_sum = 0;
  for (const WorkloadProfile& p : irregular_suite()) {
    WorkloadGenerator g(p, 1, 4, 3);
    Coalescer coal;
    std::vector<Addr> lines;
    int loads = 0;
    int divergent = 0;
    double total = 0;
    for (int i = 0; i < 40000 && loads < 2500; ++i) {
      const WarpInstr instr = g.next(0, i % 4);
      if (instr.kind != WarpInstr::Kind::kLoad) continue;
      coal.coalesce(instr, lines);
      ++loads;
      divergent += lines.size() > 1;
      total += static_cast<double>(lines.size());
    }
    div_sum += divergent / static_cast<double>(loads);
    req_sum += total / loads;
  }
  EXPECT_NEAR(div_sum / 11.0, 0.56, 0.08);
  EXPECT_NEAR(req_sum / 11.0, 5.9, 1.2);
}

TEST(GeneratorDeath, UnknownProfileAborts) {
  EXPECT_DEATH((void)profile_by_name("nope"), "unknown");
}

}  // namespace
}  // namespace latdiv
