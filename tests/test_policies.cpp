// Behavioural tests for the baseline transaction schedulers: FCFS,
// FR-FCFS, GMC (streak cap + age threshold), WAFCFS and SBWAS.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/params.hpp"
#include "mc/controller.hpp"
#include "mc/policy_fcfs.hpp"
#include "mc/policy_frfcfs.hpp"
#include "mc/policy_gmc.hpp"
#include "mc/policy_sbwas.hpp"
#include "mc/policy_wafcfs.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

MemRequest read_to(BankId bank, RowId row, std::uint32_t col = 0,
                   WarpInstrUid uid = 1) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.addr = (static_cast<Addr>(row) << 15) | (static_cast<Addr>(col) << 7) |
           (static_cast<Addr>(bank) << 28);
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  return r;
}

struct Harness {
  explicit Harness(std::unique_ptr<TransactionScheduler> policy,
                   McConfig cfg = {})
      : mc(0, cfg, timing_no_refresh(), std::move(policy),
           [this](const MemRequest& req, Cycle) {
             order.push_back(req);
           }) {}

  void run_to(Cycle end) {
    for (; now < end; ++now) mc.tick(now);
  }

  Cycle now = 0;
  std::vector<MemRequest> order;
  MemoryController mc;
};

// --- FCFS ---------------------------------------------------------------

TEST(Fcfs, ServesStrictArrivalOrderSameBank) {
  Harness h(std::make_unique<FcfsPolicy>());
  h.mc.push(read_to(0, 1, 0, 10), 0);
  h.mc.push(read_to(0, 9, 0, 20), 0);  // row miss in between
  h.mc.push(read_to(0, 1, 1, 30), 0);  // would be a hit if reordered
  h.run_to(1000);
  ASSERT_EQ(h.order.size(), 3u);
  EXPECT_EQ(h.order[0].tag.instr, 10u);
  EXPECT_EQ(h.order[1].tag.instr, 20u);
  EXPECT_EQ(h.order[2].tag.instr, 30u);
}

TEST(Fcfs, HeadOfLineBlocksOnFullBankQueue) {
  Harness h(std::make_unique<FcfsPolicy>());
  for (int i = 0; i < 9; ++i) h.mc.push(read_to(0, i, 0, i), 0);
  h.mc.push(read_to(5, 1, 0, 99), 0);  // different, idle bank
  h.run_to(12);
  // Bank 0's queue (depth 8) is full; the request to bank 5 is behind the
  // 9th bank-0 request and must NOT have been scheduled yet.
  EXPECT_EQ(h.mc.bank_queue_size(5), 0u);
}

// --- FR-FCFS ------------------------------------------------------------

TEST(FrFcfs, PrefersRowHitOverOlderMiss) {
  Harness h(std::make_unique<FrFcfsPolicy>());
  h.mc.push(read_to(0, 1, 0, 10), 0);
  h.run_to(30);  // row 1 is now the predicted/open row
  h.mc.push(read_to(0, 9, 0, 20), 30);  // older miss
  h.mc.push(read_to(0, 1, 1, 30), 30);  // younger hit
  h.run_to(1000);
  ASSERT_EQ(h.order.size(), 3u);
  EXPECT_EQ(h.order[1].tag.instr, 30u) << "row hit should jump the miss";
  EXPECT_EQ(h.order[2].tag.instr, 20u);
}

TEST(FrFcfs, FallsBackToOldestWhenNoHits) {
  Harness h(std::make_unique<FrFcfsPolicy>());
  h.mc.push(read_to(0, 5, 0, 10), 0);
  h.mc.push(read_to(0, 6, 0, 20), 0);
  h.run_to(1000);
  ASSERT_EQ(h.order.size(), 2u);
  EXPECT_EQ(h.order[0].tag.instr, 10u);
}

TEST(FrFcfs, SkipsRequestsForFullBanks) {
  Harness h(std::make_unique<FrFcfsPolicy>());
  for (int i = 0; i < 8; ++i) h.mc.push(read_to(0, i, 0, i), 0);
  h.mc.push(read_to(5, 1, 0, 99), 0);
  h.run_to(12);
  // Unlike FCFS, FR-FCFS schedules around the saturated bank.
  EXPECT_EQ(h.mc.bank_queue_size(5), 1u);
}

// --- GMC ----------------------------------------------------------------

TEST(Gmc, StreakCapBreaksRowMonopoly) {
  GmcConfig cfg;
  cfg.max_hit_streak = 4;
  Harness h(std::make_unique<GmcPolicy>(cfg));
  // 8 hits to row 1 and one miss to row 9, all present from cycle 0.
  for (int i = 0; i < 8; ++i) h.mc.push(read_to(0, 1, i, 10 + i), 0);
  h.mc.push(read_to(0, 9, 0, 99), 0);
  h.run_to(2000);
  ASSERT_EQ(h.order.size(), 9u);
  // The miss must be serviced before the full streak of 8 hits finishes.
  std::size_t miss_pos = 0;
  for (std::size_t i = 0; i < h.order.size(); ++i) {
    if (h.order[i].tag.instr == 99) miss_pos = i;
  }
  EXPECT_LT(miss_pos, 8u);
}

TEST(Gmc, AgeThresholdRescuesStarvedRequest) {
  GmcConfig cfg;
  cfg.age_threshold = 100;
  cfg.max_hit_streak = 1000;  // disable the streak valve
  Harness h(std::make_unique<GmcPolicy>(cfg));
  // Establish row 1 as the open stream first.
  for (int i = 0; i < 4; ++i) h.mc.push(read_to(0, 1, i, i), 0);
  h.run_to(30);
  h.mc.push(read_to(0, 9, 0, 99), 30);  // the would-be-starved miss
  // A *continuous* supply of row-1 hits (arrival rate above the drain
  // rate of one CAS per tCCDL) that would starve the miss forever
  // without the age valve (streaks are uncapped here).
  int pushed = 0;
  while (pushed < 40) {
    for (int j = 0; j < 4 && pushed < 40; ++j, ++pushed) {
      h.mc.push(read_to(0, 1, pushed % 16, 100 + pushed), h.now);
    }
    h.run_to(h.now + 10);
  }
  h.run_to(4000);
  ASSERT_EQ(h.order.size(), 45u);
  std::size_t miss_pos = h.order.size();
  for (std::size_t i = 0; i < h.order.size(); ++i) {
    if (h.order[i].tag.instr == 99) miss_pos = i;
  }
  EXPECT_GT(miss_pos, 4u) << "hits younger than the threshold go first";
  EXPECT_LT(miss_pos, 44u) << "aged request must pre-empt the hit stream";
}

TEST(Gmc, ExploitsRowHitsLikeFrFcfs) {
  Harness h(std::make_unique<GmcPolicy>());
  h.mc.push(read_to(0, 1, 0, 10), 0);
  h.run_to(30);
  h.mc.push(read_to(0, 9, 0, 20), 30);
  h.mc.push(read_to(0, 1, 1, 30), 30);
  h.run_to(1000);
  ASSERT_EQ(h.order.size(), 3u);
  EXPECT_EQ(h.order[1].tag.instr, 30u);
}

// --- WAFCFS -------------------------------------------------------------

TEST(Wafcfs, InOrderLikeFcfs) {
  Harness h(std::make_unique<WafcfsPolicy>());
  h.mc.push(read_to(0, 1, 0, 10), 0);
  h.mc.push(read_to(0, 9, 0, 20), 0);
  h.mc.push(read_to(0, 1, 1, 30), 0);
  h.run_to(1000);
  ASSERT_EQ(h.order.size(), 3u);
  EXPECT_EQ(h.order[0].tag.instr, 10u);
  EXPECT_EQ(h.order[1].tag.instr, 20u);
  EXPECT_EQ(h.order[2].tag.instr, 30u);
}

// --- SBWAS --------------------------------------------------------------

TEST(Sbwas, InterleavedWritesFlag) {
  SbwasPolicy p;
  EXPECT_TRUE(p.wants_interleaved_writes());
}

TEST(Sbwas, HighAlphaFavoursShortWarp) {
  // Warp 7 has a single request (a row miss); warp 1 has a long row-hit
  // stream.  With alpha=0.75 the potential of the unit warp
  // (0.75/1) beats a hit (0.25), so it must be served first.
  SbwasConfig cfg;
  cfg.alpha = 0.75;
  Harness h(std::make_unique<SbwasPolicy>(cfg));
  h.mc.push(read_to(0, 1, 0, 1), 0);
  h.run_to(30);
  for (int i = 1; i < 8; ++i) h.mc.push(read_to(0, 1, i, 1), 30);
  h.mc.push(read_to(0, 9, 0, 7), 30);
  h.run_to(2000);
  ASSERT_EQ(h.order.size(), 9u);
  EXPECT_EQ(h.order[1].tag.instr, 7u);
}

TEST(Sbwas, LowAlphaFavoursRowHits) {
  SbwasConfig cfg;
  cfg.alpha = 0.25;
  Harness h(std::make_unique<SbwasPolicy>(cfg));
  h.mc.push(read_to(0, 1, 0, 1), 0);
  h.run_to(30);
  for (int i = 1; i < 8; ++i) h.mc.push(read_to(0, 1, i, 1), 30);
  h.mc.push(read_to(0, 9, 0, 7), 30);
  h.run_to(2000);
  ASSERT_EQ(h.order.size(), 9u);
  // With alpha=0.25 a hit (0.75) always beats the short-warp potential
  // (<= 0.25): the miss drains last.
  EXPECT_EQ(h.order.back().tag.instr, 7u);
}

TEST(Sbwas, DrainsWritesUnderPressure) {
  SbwasConfig cfg;
  cfg.write_pressure = 4;
  Harness h(std::make_unique<SbwasPolicy>(cfg));
  for (int i = 0; i < 6; ++i) {
    MemRequest w = read_to(0, 2, i, kNoWarpInstr);
    w.kind = ReqKind::kWrite;
    h.mc.push(w, 0);
  }
  for (int i = 0; i < 4; ++i) h.mc.push(read_to(1, 1, i, 5), 0);
  h.run_to(2000);
  EXPECT_EQ(h.mc.stats().writes_served, 6u);
  EXPECT_EQ(h.order.size(), 4u);
}

TEST(Sbwas, NeverEntersDrainMode) {
  SbwasConfig cfg;
  Harness h(std::make_unique<SbwasPolicy>(cfg));
  for (int i = 0; i < 40; ++i) {
    MemRequest w = read_to(i % 16, 2, i / 16, kNoWarpInstr);
    w.kind = ReqKind::kWrite;
    h.mc.push(w, 0);
  }
  h.run_to(100);
  EXPECT_FALSE(h.mc.in_write_drain());
  h.run_to(5000);
  EXPECT_EQ(h.mc.stats().writes_served, 40u);
}

}  // namespace
}  // namespace latdiv
