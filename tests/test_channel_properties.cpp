// Parameterised timing properties: the channel's constraints must hold
// for ANY self-consistent device parameters, not just the two shipped
// presets.  Each trial varies the device, drives a canonical command
// pattern, and checks constraint-derived invariants.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "dram/channel.hpp"
#include "dram/params.hpp"

namespace latdiv {
namespace {

struct Device {
  const char* name;
  DramParams params;
};

std::vector<Device> devices() {
  DramParams g = gddr5_params();
  g.refresh_enabled = false;
  DramParams d = ddr3_1600_params();
  d.refresh_enabled = false;
  DramParams slow = g;  // a deliberately sluggish hypothetical part
  slow.trcd_ns *= 2.0;
  slow.trp_ns *= 2.0;
  slow.tras_ns *= 1.5;
  slow.trc_ns = slow.tras_ns + slow.trp_ns;
  DramParams fast = g;  // near-degenerate fast part
  fast.trrd_ns = 1.0;
  fast.tfaw_ns = 4.0;
  return {{"gddr5", g}, {"ddr3", d}, {"slow", slow}, {"fast", fast}};
}

class DeviceProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  Device device() const { return devices()[GetParam()]; }
};

INSTANTIATE_TEST_SUITE_P(Devices, DeviceProperty,
                         ::testing::Values(0u, 1u, 2u, 3u),
                         [](const auto& info) {
                           return std::string(devices()[info.param].name);
                         });

Cycle first_legal(Channel& ch, const DramCommand& cmd, Cycle from) {
  Cycle c = from;
  while (!ch.can_issue(cmd, c)) {
    ++c;
    EXPECT_LT(c, from + 1'000'000) << "never became legal";
  }
  return c;
}

TEST_P(DeviceProperty, ActToReadIsExactlyTrcd) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  EXPECT_EQ(first_legal(ch, {DramCmd::kRead, 0, 1}, 1), 1 + t.trcd);
}

TEST_P(DeviceProperty, ActToPreIsExactlyTras) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  EXPECT_EQ(first_legal(ch, {DramCmd::kPrecharge, 0, kNoRow}, 1), 1 + t.tras);
}

TEST_P(DeviceProperty, RowCycleIsExactlyTrc) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  const Cycle pre = first_legal(ch, {DramCmd::kPrecharge, 0, kNoRow}, 1);
  ch.issue({DramCmd::kPrecharge, 0, kNoRow}, pre);
  const Cycle act2 = first_legal(ch, {DramCmd::kActivate, 0, 2}, pre);
  EXPECT_EQ(act2, std::max(1 + t.trc, pre + t.trp));
}

TEST_P(DeviceProperty, BackToBackReadsRespectCcd) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  const Cycle rd1 = first_legal(ch, {DramCmd::kRead, 0, 1}, 1);
  ch.issue({DramCmd::kRead, 0, 1}, rd1);
  const Cycle rd2 = first_legal(ch, {DramCmd::kRead, 0, 1}, rd1 + 1);
  EXPECT_EQ(rd2, rd1 + t.tccdl);
}

TEST_P(DeviceProperty, FourActWindowHolds) {
  const DramTiming t = DramTiming::from(device().params);
  if (t.banks < 5) GTEST_SKIP() << "needs 5 banks";
  Channel ch(t);
  Cycle c = 1;
  Cycle first_act = 0;
  for (BankId b = 0; b < 4; ++b) {
    c = first_legal(ch, {DramCmd::kActivate, b, 1}, c);
    if (b == 0) first_act = c;
    ch.issue({DramCmd::kActivate, b, 1}, c);
    ++c;
  }
  const Cycle fifth = first_legal(ch, {DramCmd::kActivate, 4, 1}, c);
  EXPECT_GE(fifth, first_act + t.tfaw);
}

TEST_P(DeviceProperty, WriteReadTurnaroundBothWays) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  const Cycle wr = first_legal(ch, {DramCmd::kWrite, 0, 1}, 1);
  ch.issue({DramCmd::kWrite, 0, 1}, wr);
  EXPECT_EQ(first_legal(ch, {DramCmd::kRead, 0, 1}, wr + 1),
            wr + t.write_to_read());
}

TEST_P(DeviceProperty, RandomLegalStreamNeverOverlapsDataBus) {
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  Rng rng(GetParam() + 100);
  Cycle now = 0;
  for (int step = 0; step < 30000; ++step) {
    ++now;
    DramCommand cmd;
    cmd.bank = static_cast<BankId>(rng.below(t.banks));
    switch (rng.below(4)) {
      case 0:
        cmd.cmd = DramCmd::kActivate;
        cmd.row = static_cast<RowId>(rng.below(32));
        break;
      case 1:
        cmd.cmd = DramCmd::kPrecharge;
        break;
      default:
        cmd.cmd = rng.chance(0.6) ? DramCmd::kRead : DramCmd::kWrite;
        cmd.row = ch.open_row(cmd.bank);
        if (cmd.row == kNoRow) continue;
    }
    // issue() itself asserts data-bus integrity and timing legality.
    if (ch.can_issue(cmd, now)) ch.issue(cmd, now);
  }
  EXPECT_LE(ch.stats().data_bus_busy_cycles, now);
}

TEST_P(DeviceProperty, ThroughputCeilingRespectsBurstLength) {
  // Stream row hits flat out on one bank: the achieved CAS rate can never
  // beat one per tCCDL.
  const DramTiming t = DramTiming::from(device().params);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  Cycle now = 1 + t.trcd;
  const Cycle start = now;
  std::uint64_t reads = 0;
  while (now < start + 3000) {
    if (ch.can_issue({DramCmd::kRead, 0, 1}, now)) {
      ch.issue({DramCmd::kRead, 0, 1}, now);
      ++reads;
    }
    ++now;
  }
  EXPECT_LE(reads, 3000 / t.tccdl + 1);
  EXPECT_GE(reads, 3000 / t.tccdl - 1);
}

}  // namespace
}  // namespace latdiv
