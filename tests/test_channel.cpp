// The GDDR5 channel timing checker is the foundation everything above it
// trusts; these tests pin each constraint from Table II individually.
#include "dram/channel.hpp"

#include <gtest/gtest.h>

#include "dram/params.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

class ChannelTest : public ::testing::Test {
 protected:
  ChannelTest() : t_(timing_no_refresh()), ch_(t_) {}

  /// Issue `cmd` at the first legal cycle at or after `from`; returns the
  /// pair (issue cycle, data-completion cycle).
  std::pair<Cycle, Cycle> issue_when_legal(const DramCommand& cmd,
                                           Cycle from) {
    Cycle c = from;
    while (!ch_.can_issue(cmd, c)) {
      ++c;
      EXPECT_LT(c, from + 100000) << "command never became legal";
    }
    return {c, ch_.issue(cmd, c)};
  }

  DramTiming t_;
  Channel ch_;
};

TEST_F(ChannelTest, BanksStartClosed) {
  for (BankId b = 0; b < 16; ++b) EXPECT_EQ(ch_.open_row(b), kNoRow);
  EXPECT_TRUE(ch_.all_banks_closed());
}

TEST_F(ChannelTest, ReadIllegalOnClosedBank) {
  EXPECT_FALSE(ch_.can_issue({DramCmd::kRead, 0, 5}, 10));
}

TEST_F(ChannelTest, ActivateOpensRow) {
  ASSERT_TRUE(ch_.can_issue({DramCmd::kActivate, 3, 77}, 1));
  ch_.issue({DramCmd::kActivate, 3, 77}, 1);
  EXPECT_EQ(ch_.open_row(3), 77u);
  EXPECT_FALSE(ch_.all_banks_closed());
}

TEST_F(ChannelTest, TrcdGatesFirstRead) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  const DramCommand rd{DramCmd::kRead, 0, 9};
  EXPECT_FALSE(ch_.can_issue(rd, 1 + t_.trcd - 1));
  EXPECT_TRUE(ch_.can_issue(rd, 1 + t_.trcd));
}

TEST_F(ChannelTest, ReadToWrongRowIllegal) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  EXPECT_FALSE(ch_.can_issue({DramCmd::kRead, 0, 10}, 1 + t_.trcd));
}

TEST_F(ChannelTest, ReadCompletionIsCasPlusBurst) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  const Cycle rd_at = 1 + t_.trcd;
  const Cycle done = ch_.issue({DramCmd::kRead, 0, 9}, rd_at);
  EXPECT_EQ(done, rd_at + t_.tcas + t_.tburst);
}

TEST_F(ChannelTest, TrasGatesPrecharge) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  const DramCommand pre{DramCmd::kPrecharge, 0, kNoRow};
  EXPECT_FALSE(ch_.can_issue(pre, 1 + t_.tras - 1));
  EXPECT_TRUE(ch_.can_issue(pre, 1 + t_.tras));
}

TEST_F(ChannelTest, TrtpExtendsPrechargeAfterLateRead) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  // Read issued near the end of tRAS pushes the precharge point to
  // read + tRTP.
  const Cycle rd_at = 1 + t_.tras - 1;
  ch_.issue({DramCmd::kRead, 0, 9}, rd_at);
  const DramCommand pre{DramCmd::kPrecharge, 0, kNoRow};
  EXPECT_FALSE(ch_.can_issue(pre, rd_at + t_.trtp - 1));
  EXPECT_TRUE(ch_.can_issue(pre, rd_at + t_.trtp));
}

TEST_F(ChannelTest, TrpGatesReactivation) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  const auto [pre_at, _] =
      issue_when_legal({DramCmd::kPrecharge, 0, kNoRow}, 1);
  const DramCommand act{DramCmd::kActivate, 0, 10};
  EXPECT_FALSE(ch_.can_issue(act, pre_at + t_.trp - 1));
  EXPECT_TRUE(ch_.can_issue(act, pre_at + t_.trp));
  EXPECT_EQ(ch_.open_row(0), kNoRow);
}

TEST_F(ChannelTest, TrcGatesSameBankActToAct) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  issue_when_legal({DramCmd::kPrecharge, 0, kNoRow}, 1);
  // Even though tRP elapsed, tRC from the first ACT must also hold.
  const DramCommand act{DramCmd::kActivate, 0, 10};
  Cycle c = 1;
  while (!ch_.can_issue(act, c)) ++c;
  EXPECT_GE(c, 1 + t_.trc);
}

TEST_F(ChannelTest, TrrdGatesDifferentBankActivates) {
  ch_.issue({DramCmd::kActivate, 0, 9}, 1);
  const DramCommand act{DramCmd::kActivate, 1, 9};
  EXPECT_FALSE(ch_.can_issue(act, 1 + t_.trrd - 1));
  EXPECT_TRUE(ch_.can_issue(act, 1 + t_.trrd));
}

TEST_F(ChannelTest, TfawLimitsFourActivatesInWindow) {
  // Four activates at the tRRD rate, then the fifth must wait for tFAW
  // from the first.
  Cycle c = 1;
  for (BankId b = 0; b < 4; ++b) {
    auto [at, _] = issue_when_legal({DramCmd::kActivate, b, 1}, c);
    c = at;
  }
  const Cycle first_act = 1;
  const DramCommand fifth{DramCmd::kActivate, 4, 1};
  Cycle fifth_at = c;
  while (!ch_.can_issue(fifth, fifth_at)) ++fifth_at;
  EXPECT_GE(fifth_at, first_act + t_.tfaw);
}

TEST_F(ChannelTest, CcdLongWithinBankGroupShortAcross) {
  // Banks 0 and 1 share a group; bank 4 is in the next group.
  ch_.issue({DramCmd::kActivate, 0, 1}, 1);
  issue_when_legal({DramCmd::kActivate, 1, 1}, 2);
  issue_when_legal({DramCmd::kActivate, 4, 1}, 20);
  auto [rd0_at, _] = issue_when_legal({DramCmd::kRead, 0, 1}, 60);

  // Same group: tCCDL.
  const DramCommand rd_same{DramCmd::kRead, 1, 1};
  EXPECT_FALSE(ch_.can_issue(rd_same, rd0_at + t_.tccdl - 1));
  EXPECT_TRUE(ch_.can_issue(rd_same, rd0_at + t_.tccdl));
  // Different group: tCCDS (shorter).
  const DramCommand rd_diff{DramCmd::kRead, 4, 1};
  EXPECT_FALSE(ch_.can_issue(rd_diff, rd0_at + t_.tccds - 1));
  EXPECT_TRUE(ch_.can_issue(rd_diff, rd0_at + t_.tccds));
}

TEST_F(ChannelTest, WriteToReadTurnaround) {
  ch_.issue({DramCmd::kActivate, 0, 1}, 1);
  auto [wr_at, _] = issue_when_legal({DramCmd::kWrite, 0, 1}, 1 + t_.trcd);
  const DramCommand rd{DramCmd::kRead, 0, 1};
  EXPECT_FALSE(ch_.can_issue(rd, wr_at + t_.write_to_read() - 1));
  EXPECT_TRUE(ch_.can_issue(rd, wr_at + t_.write_to_read()));
}

TEST_F(ChannelTest, ReadToWriteTurnaround) {
  ch_.issue({DramCmd::kActivate, 0, 1}, 1);
  auto [rd_at, _] = issue_when_legal({DramCmd::kRead, 0, 1}, 1 + t_.trcd);
  const DramCommand wr{DramCmd::kWrite, 0, 1};
  EXPECT_FALSE(ch_.can_issue(wr, rd_at + t_.read_to_write() - 1));
  EXPECT_TRUE(ch_.can_issue(wr, rd_at + t_.read_to_write()));
}

TEST_F(ChannelTest, WriteRecoveryGatesPrecharge) {
  ch_.issue({DramCmd::kActivate, 0, 1}, 1);
  auto [wr_at, data_end] = issue_when_legal({DramCmd::kWrite, 0, 1}, 200);
  EXPECT_EQ(data_end, wr_at + t_.twl + t_.tburst);
  const DramCommand pre{DramCmd::kPrecharge, 0, kNoRow};
  EXPECT_FALSE(ch_.can_issue(pre, data_end + t_.twr - 1));
  EXPECT_TRUE(ch_.can_issue(pre, data_end + t_.twr));
}

TEST_F(ChannelTest, StatsCountCommands) {
  ch_.issue({DramCmd::kActivate, 0, 1}, 1);
  issue_when_legal({DramCmd::kRead, 0, 1}, 1 + t_.trcd);
  issue_when_legal({DramCmd::kRead, 0, 1}, 1 + t_.trcd + t_.tccdl);
  issue_when_legal({DramCmd::kPrecharge, 0, kNoRow}, 200);
  const ChannelStats& s = ch_.stats();
  EXPECT_EQ(s.activates, 1u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.precharges, 1u);
  EXPECT_EQ(s.data_bus_busy_cycles, 2 * t_.tburst);
}

TEST_F(ChannelTest, PrechargeOnClosedBankIllegal) {
  EXPECT_FALSE(ch_.can_issue({DramCmd::kPrecharge, 2, kNoRow}, 5));
}

TEST(ChannelRefresh, DueAfterTrefi) {
  DramParams p;  // refresh on
  const DramTiming t = DramTiming::from(p);
  Channel ch(t);
  EXPECT_FALSE(ch.refresh_due(t.trefi - 1));
  EXPECT_TRUE(ch.refresh_due(t.trefi));
}

TEST(ChannelRefresh, RequiresAllBanksClosed) {
  DramParams p;
  const DramTiming t = DramTiming::from(p);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  const DramCommand ref{DramCmd::kRefresh, 0, kNoRow};
  EXPECT_FALSE(ch.can_issue(ref, t.trefi));
  Cycle c = 1;
  while (!ch.can_issue({DramCmd::kPrecharge, 0, kNoRow}, c)) ++c;
  ch.issue({DramCmd::kPrecharge, 0, kNoRow}, c);
  Cycle r = c + 1;
  while (!ch.can_issue(ref, r)) ++r;
  EXPECT_GE(r, c + t.trp);  // precharge must complete first
  ch.issue(ref, r);
  EXPECT_EQ(ch.stats().refreshes, 1u);
  // Banks blocked for tRFC.
  EXPECT_FALSE(ch.can_issue({DramCmd::kActivate, 5, 1}, r + t.trfc - 1));
  EXPECT_TRUE(ch.can_issue({DramCmd::kActivate, 5, 1}, r + t.trfc));
}

TEST(ChannelDeath, IllegalIssueAborts) {
  DramParams p;
  p.refresh_enabled = false;
  Channel ch(DramTiming::from(p));
  EXPECT_DEATH(ch.issue({DramCmd::kRead, 0, 1}, 1), "illegal");
}

TEST(ChannelDeath, TwoCommandsSameCycleAborts) {
  DramParams p;
  p.refresh_enabled = false;
  const DramTiming t = DramTiming::from(p);
  Channel ch(t);
  ch.issue({DramCmd::kActivate, 0, 1}, 1);
  // At cycle 1 + tRCD both a read to bank 0 and an activate to bank 4 are
  // individually legal — issuing both in one cycle must trip the
  // single-command-bus assertion.
  const Cycle at = 1 + t.trcd;
  ch.issue({DramCmd::kRead, 0, 1}, at);
  ASSERT_TRUE(ch.can_issue({DramCmd::kActivate, 4, 1}, at));
  EXPECT_DEATH(ch.issue({DramCmd::kActivate, 4, 1}, at), "command bus");
}

TEST(ChannelIdle, IdleCycleAccounting) {
  DramParams p;
  p.refresh_enabled = false;
  Channel ch(DramTiming::from(p));
  ch.on_cycle_end(0);
  ch.on_cycle_end(1);
  EXPECT_EQ(ch.stats().all_banks_idle_cycles, 2u);
  ch.issue({DramCmd::kActivate, 0, 1}, 2);
  ch.on_cycle_end(2);
  EXPECT_EQ(ch.stats().all_banks_idle_cycles, 2u);
}

}  // namespace
}  // namespace latdiv
