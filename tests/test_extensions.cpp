// Tests for features beyond the paper's core configurations: the DDR3
// device preset, the LRR warp scheduler, the shared-data warp-group
// boost (paper Conclusions), and the scan-policy bank lookahead.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/merb.hpp"
#include "core/policy_wg.hpp"
#include "dram/params.hpp"
#include "gpu/coalescer.hpp"
#include "mc/controller.hpp"
#include "mc/policy_gmc.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace latdiv {
namespace {

// --- DDR3 preset --------------------------------------------------------

TEST(Ddr3, TimingsConvertAtItsOwnClock) {
  const DramTiming t = DramTiming::from(ddr3_1600_params());
  EXPECT_EQ(t.trcd, 11u);  // 13.75 / 1.25
  EXPECT_EQ(t.tburst, 4u);
  EXPECT_EQ(t.banks, 8u);
  EXPECT_EQ(t.banks_per_group, 8u);
  EXPECT_EQ(t.tccdl, t.tccds) << "DDR3 has no bank-group fast path";
}

TEST(Ddr3, HidingAMissCostsMoreTimeOnDdr3) {
  // MERB counts *transfers*, and a DDR3 transfer (BL8, 4 tCK @1.25ns) is
  // ~4x longer than a GDDR5 burst (2 tCK @0.667ns): compare the wall
  // time of the hiding run, which is the §II-B claim.
  const DramParams gp = gddr5_params();
  const DramParams dp = ddr3_1600_params();
  const MerbTable g(DramTiming::from(gp));
  const MerbTable d(DramTiming::from(dp));
  for (std::uint32_t b = 2; b <= 8; ++b) {
    const double g_ns = g.value(b) * gp.tburst_ck * gp.tck_ns;
    const double d_ns = d.value(b) * dp.tburst_ck * dp.tck_ns;
    EXPECT_GT(d_ns, g_ns) << "banks=" << b;
  }
  // And the single-bank case saturates the 5-bit counter on both.
  EXPECT_EQ(g.value(1), 31u);
  EXPECT_EQ(d.value(1), 31u);
}

TEST(Ddr3, SimulatorRunsOnDdr3) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bfs");
  cfg.scheduler = SchedulerKind::kWgW;
  cfg.dram = ddr3_1600_params();
  cfg.dram.refresh_enabled = false;
  const RunResult r = Simulator(cfg).run();
  EXPECT_GT(r.instructions, 100u);
  EXPECT_GT(r.dram_reads, 0u);
}

// --- LRR warp scheduler -------------------------------------------------

TEST(WarpSched, LrrRunsAndDiffersFromGto) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("sssp");
  const RunResult gto = Simulator(cfg).run();
  cfg.sm.warp_sched = WarpSchedPolicy::kLrr;
  const RunResult lrr = Simulator(cfg).run();
  EXPECT_GT(lrr.instructions, 100u);
  EXPECT_NE(gto.instructions, lrr.instructions)
      << "issue policy must change the schedule";
}

// --- shared-data boost (kWgShared) ---------------------------------------

MemRequest read_to(BankId bank, RowId row, std::uint32_t col,
                   WarpInstrUid uid) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  return r;
}

TEST(WgShared, SharedRowsFlipSelection) {
  DramParams p;
  p.refresh_enabled = false;
  const DramTiming t = DramTiming::from(p);
  WgConfig cfg;
  cfg.shared_data_boost = true;
  cfg.shared_weight = 2;
  auto policy = std::make_unique<WgPolicy>(cfg, t);
  WgPolicy* wg = policy.get();
  std::vector<WarpInstrUid> order;
  MemoryController mc(0, McConfig{}, t, std::move(policy),
                      [&](const MemRequest& r, Cycle) {
                        order.push_back(r.tag.instr);
                      });
  // Group 1: one miss to bank 0 row 7 — but row 7 is ALSO needed by the
  // (incomplete) group 3, so group 1 carries a shared-row discount.
  // Group 2: one miss to bank 1 (same base score, older).  Without the
  // boost the tie-break by age serves 2 first; the boost flips it.
  mc.push(read_to(1, 1, 0, 2), 0);
  mc.notify_group_complete(WarpTag{0, 2, 2}, 0);
  mc.push(read_to(0, 7, 0, 1), 0);
  mc.notify_group_complete(WarpTag{0, 1, 1}, 0);
  mc.push(read_to(0, 7, 1, 3), 0);  // incomplete sharer
  for (Cycle c = 0; c < 600; ++c) mc.tick(c);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 1u) << "shared-row group must be boosted ahead";
  EXPECT_GE(wg->wg_stats()->shared_boosts, 1u);
}

TEST(WgShared, EndToEndSchedulerKind) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bh");  // strong hot region => sharing
  cfg.scheduler = SchedulerKind::kWgShared;
  const RunResult r = Simulator(cfg).run();
  EXPECT_EQ(r.scheduler, "WG-Sh");
  EXPECT_GT(r.instructions, 100u);
}

TEST(WgShared, OffByDefault) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bh");
  cfg.scheduler = SchedulerKind::kWgW;
  const RunResult r = Simulator(cfg).run();
  EXPECT_EQ(r.wg_shared_boosts, 0u);
}

// --- generator gather-order shuffle --------------------------------------

TEST(GeneratorShuffle, LinesNotEmittedInAddressOrder) {
  WorkloadProfile p;
  p.name = "shuffle-test";
  p.mem_instr_frac = 1.0;
  p.store_frac = 0.0;
  p.divergent_load_frac = 1.0;
  p.divergent_lines_mean = 10.0;
  p.cluster_len_mean = 3.0;
  WorkloadGenerator g(p, 1, 1, 7);
  Coalescer coal;
  std::vector<Addr> lines;
  int sorted_runs = 0;
  int loads = 0;
  for (int i = 0; i < 300; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind != WarpInstr::Kind::kLoad) continue;
    coal.coalesce(instr, lines);
    if (lines.size() < 4) continue;
    ++loads;
    sorted_runs += std::is_sorted(lines.begin(), lines.end());
  }
  ASSERT_GT(loads, 50);
  // Shuffled gathers are almost never emitted in ascending address order.
  EXPECT_LT(sorted_runs, loads / 10);
}

TEST(GeneratorShuffle, LocalityStatisticsPreserved) {
  // Shuffling must not change WHICH lines are touched: same-granule
  // pairs still exist somewhere in each multi-cluster load.
  WorkloadProfile p;
  p.name = "pairs";
  p.mem_instr_frac = 1.0;
  p.store_frac = 0.0;
  p.divergent_load_frac = 1.0;
  p.divergent_lines_mean = 8.0;
  p.cluster_len_mean = 4.0;
  WorkloadGenerator g(p, 1, 1, 11);
  Coalescer coal;
  std::vector<Addr> lines;
  int with_pair = 0;
  int loads = 0;
  for (int i = 0; i < 400 && loads < 200; ++i) {
    const WarpInstr instr = g.next(0, 0);
    if (instr.kind != WarpInstr::Kind::kLoad) continue;
    ++loads;
    coal.coalesce(instr, lines);
    std::set<Addr> granules;
    for (Addr line : lines) {
      if (!granules.insert(line & ~Addr{255}).second) {
        ++with_pair;
        break;
      }
    }
  }
  EXPECT_GT(with_pair, loads / 2);
}

// --- scan-policy lookahead ------------------------------------------------

TEST(GmcLookahead, ShallowFeedKeepsDecisionsLate) {
  // With lookahead 2 a bank's command queue never exceeds 2 entries under
  // GMC, even with a deep backlog to one bank.
  DramParams p;
  p.refresh_enabled = false;
  MemoryController mc(0, McConfig{}, DramTiming::from(p),
                      std::make_unique<GmcPolicy>(), nullptr);
  for (int i = 0; i < 20; ++i) mc.push(read_to(0, i, 0, 1 + i), 0);
  for (Cycle c = 0; c < 10; ++c) mc.tick(c);
  EXPECT_LE(mc.bank_queue_size(0), 2u);
}

}  // namespace
}  // namespace latdiv
