#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace latdiv {
namespace {

CacheConfig tiny() { return CacheConfig{1024, 128, 2}; }  // 4 sets x 2 ways

TEST(Cache, MissThenHit) {
  Cache c(tiny());
  EXPECT_FALSE(c.touch(0x1000));
  c.fill(0x1000);
  EXPECT_TRUE(c.touch(0x1000));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Cache c(tiny());
  c.fill(0x1000);
  EXPECT_TRUE(c.touch(0x1000 + 127));
  EXPECT_FALSE(c.touch(0x1000 + 128));
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache c(tiny());
  c.fill(0x1000);
  EXPECT_TRUE(c.probe(0x1000));
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(tiny());  // 2 ways per set; lines 0x0, 0x200, 0x400 share set 0
  c.fill(0x0000);
  c.fill(0x0200);
  c.touch(0x0000);  // 0x200 becomes LRU
  c.fill(0x0400);   // evicts 0x200
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_FALSE(c.probe(0x0200));
  EXPECT_TRUE(c.probe(0x0400));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionReturnsVictimAddress) {
  Cache c(tiny());
  c.fill(0x0000, /*dirty=*/true);
  c.fill(0x0200);
  const auto wb = c.fill(0x0400);  // evicts dirty 0x0000
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x0000u);
  EXPECT_EQ(c.stats().dirty_evictions, 1u);
}

TEST(Cache, CleanEvictionReturnsNothing) {
  Cache c(tiny());
  c.fill(0x0000);
  c.fill(0x0200);
  EXPECT_FALSE(c.fill(0x0400).has_value());
}

TEST(Cache, VictimAddressReconstructionExact) {
  // Use a distinctive high address and verify the reconstructed
  // writeback address matches the original line base.
  Cache c(tiny());
  const Addr line = 0xDEADBE00 & ~Addr{127};
  c.fill(line, true);
  // Two more fills into the same set to force the eviction.
  const Addr set_stride = 4 * 128;  // 4 sets
  const Addr a = line + set_stride * 4;
  const Addr b = line + set_stride * 8;
  c.fill(a, false);
  const auto wb = c.fill(b, false);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, line);
}

TEST(Cache, RefillOfPresentLineMergesDirty) {
  Cache c(tiny());
  c.fill(0x1000, false);
  EXPECT_FALSE(c.fill(0x1000, true).has_value());  // merge, no eviction
  // Fill the second way, then force the eviction of 0x1000 and observe
  // that the merged dirtiness produces a writeback.
  const Addr set_stride = 4 * 128;
  c.fill(0x1000 + set_stride * 4);
  const auto wb = c.fill(0x1000 + set_stride * 8);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x1000u);
}

TEST(Cache, MarkDirtyCausesWriteback) {
  Cache c(tiny());
  c.fill(0x1000);
  c.mark_dirty(0x1000);
  const Addr set_stride = 4 * 128;
  c.fill(0x1000 + set_stride * 4);
  const auto wb = c.fill(0x1000 + set_stride * 8);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x1000u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(tiny());
  c.fill(0x1000, true);
  EXPECT_TRUE(c.invalidate(0x1000));
  EXPECT_FALSE(c.probe(0x1000));
  EXPECT_FALSE(c.invalidate(0x1000));
}

TEST(Cache, HitRateComputation) {
  Cache c(tiny());
  c.fill(0x0);
  c.touch(0x0);
  c.touch(0x0);
  c.touch(0x80000);
  EXPECT_NEAR(c.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Cache, SetCountMatchesGeometry) {
  Cache c(CacheConfig{128 * 1024, 128, 16});  // the paper's L2 slice
  EXPECT_EQ(c.sets(), 64u);
}

TEST(Cache, StressManyFillsStayConsistent) {
  Cache c(CacheConfig{32 * 1024, 128, 8});  // the paper's L1
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    const Addr addr = (rng.next() & 0xFFFFF) & ~Addr{127};
    if (!c.touch(addr)) c.fill(addr, rng.chance(0.3));
  }
  // Capacity invariant: hits+misses == touches.
  EXPECT_EQ(c.stats().hits + c.stats().misses, 50000u);
}

TEST(CacheDeath, MarkDirtyAbsentAborts) {
  Cache c(tiny());
  EXPECT_DEATH(c.mark_dirty(0x5000), "absent");
}

}  // namespace
}  // namespace latdiv
