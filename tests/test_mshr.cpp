#include "cache/mshr.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

MemRequest req_for(Addr line, WarpInstrUid uid = 1) {
  MemRequest r;
  r.addr = line;
  r.tag.instr = uid;
  return r;
}

TEST(Mshr, FirstAddAllocates) {
  MshrFile m(MshrConfig{4, 2});
  EXPECT_FALSE(m.tracking(0x100));
  EXPECT_TRUE(m.add(0x100, req_for(0x100)));
  EXPECT_TRUE(m.tracking(0x100));
  EXPECT_EQ(m.outstanding(), 1u);
  EXPECT_EQ(m.stats().allocations, 1u);
}

TEST(Mshr, SecondAddMerges) {
  MshrFile m(MshrConfig{4, 2});
  m.add(0x100, req_for(0x100, 1));
  EXPECT_FALSE(m.add(0x100, req_for(0x100, 2)));
  EXPECT_EQ(m.outstanding(), 1u);
  EXPECT_EQ(m.stats().merges, 1u);
}

TEST(Mshr, MergeLimitEnforced) {
  MshrFile m(MshrConfig{4, 2});
  m.add(0x100, req_for(0x100, 1));
  m.add(0x100, req_for(0x100, 2));
  EXPECT_FALSE(m.can_accept(0x100));
  EXPECT_TRUE(m.can_accept(0x200));  // fresh entries still available
}

TEST(Mshr, EntryLimitEnforced) {
  MshrFile m(MshrConfig{2, 8});
  m.add(0x100, req_for(0x100));
  m.add(0x200, req_for(0x200));
  EXPECT_FALSE(m.can_accept(0x300));
  EXPECT_TRUE(m.can_accept(0x100));  // merging is still fine
  EXPECT_EQ(m.free_entries(), 0u);
}

TEST(Mshr, ReleaseReturnsAllWaitersInOrder) {
  MshrFile m(MshrConfig{4, 4});
  m.add(0x100, req_for(0x100, 11));
  m.add(0x100, req_for(0x100, 22));
  m.add(0x100, req_for(0x100, 33));
  const auto waiters = m.release(0x100);
  ASSERT_EQ(waiters.size(), 3u);
  EXPECT_EQ(waiters[0].tag.instr, 11u);
  EXPECT_EQ(waiters[1].tag.instr, 22u);
  EXPECT_EQ(waiters[2].tag.instr, 33u);
  EXPECT_FALSE(m.tracking(0x100));
  EXPECT_EQ(m.outstanding(), 0u);
}

TEST(Mshr, ReleaseFreesCapacity) {
  MshrFile m(MshrConfig{1, 1});
  m.add(0x100, req_for(0x100));
  EXPECT_FALSE(m.can_accept(0x200));
  (void)m.release(0x100);
  EXPECT_TRUE(m.can_accept(0x200));
}

TEST(Mshr, StallCounter) {
  MshrFile m(MshrConfig{1, 1});
  m.count_stall();
  m.count_stall();
  EXPECT_EQ(m.stats().stalls_full, 2u);
}

TEST(MshrDeath, AddBeyondCapacityAborts) {
  MshrFile m(MshrConfig{1, 1});
  m.add(0x100, req_for(0x100));
  EXPECT_DEATH(m.add(0x200, req_for(0x200)), "overflow");
}

TEST(MshrDeath, ReleaseUntrackedAborts) {
  MshrFile m(MshrConfig{1, 1});
  EXPECT_DEATH((void)m.release(0x500), "untracked");
}

}  // namespace
}  // namespace latdiv
