// Sweep executor: deterministic artifacts across thread counts, failure
// isolation, monotonic progress reporting.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "exp/reporter.hpp"
#include "workload/profile.hpp"

using namespace latdiv;
using namespace latdiv::exp;

namespace {

// Tiny but real simulations: shrunken machine, protocol checkers on.
ConfigHook tiny() {
  return [](SimConfig& c) {
    c.shrink_for_tests();
    c.max_cycles = 3'000;
    c.warmup_cycles = 300;
  };
}

ExpGrid small_grid(std::uint32_t seeds = 1) {
  RunShape shape;
  shape.seeds = seeds;
  ExpGrid grid;
  grid.add_matrix({profile_by_name("bfs"), profile_by_name("spmv")},
                  {SchedulerKind::kGmc, SchedulerKind::kWgW}, shape, tiny());
  return grid;
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "test";
  spec.primary_metric = "ipc";
  spec.baseline_col = "GMC";
  return spec;
}

}  // namespace

TEST(ExpExecutor, SimulatedPointProducesMetrics) {
  ExpGrid grid = small_grid();
  const PointResult res = execute_point(grid.points()[0]);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.id, "bfs/GMC/s1");
  EXPECT_EQ(res.workload, "bfs");
  EXPECT_EQ(res.scheduler, "GMC");
  EXPECT_GT(res.metrics.at("ipc"), 0.0);
  EXPECT_GT(res.metrics.at("instructions"), 0.0);
  EXPECT_GE(res.wall_ms, 0.0);
}

TEST(ExpExecutor, AnalyticPointNeedsNoSimulator) {
  ExpPoint p;
  p.id = "banks=4/MERB";
  p.row = "banks=4";
  p.col = "MERB";
  p.analytic = [] { return MetricMap{{"merb", 7.0}}; };
  const PointResult res = execute_point(p);
  ASSERT_TRUE(res.ok);
  EXPECT_TRUE(res.workload.empty());
  EXPECT_DOUBLE_EQ(res.metrics.at("merb"), 7.0);
}

TEST(ExpExecutor, ThrowingPointIsIsolated) {
  ExpGrid grid = small_grid();
  // Poison the second point's hook; siblings must be unaffected.
  ExpPoint poisoned = grid.points()[1];
  poisoned.id = "poisoned/GMC/s1";
  poisoned.hook = [](SimConfig&) {
    throw std::runtime_error("bad ablation knob");
  };
  ExpGrid mixed;
  mixed.add(grid.points()[0]).add(poisoned).add(grid.points()[2]);

  const std::vector<PointResult> results = run_grid(mixed, 2);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error, "bad ablation knob");
  EXPECT_TRUE(results[1].metrics.empty());
  EXPECT_TRUE(results[2].ok) << results[2].error;
}

TEST(ExpExecutor, ProgressIsMonotonicAndComplete) {
  const ExpGrid grid = small_grid();
  std::vector<std::size_t> done_seq;
  const std::vector<PointResult> results =
      run_grid(grid, 4, [&](std::size_t done, std::size_t total,
                            const PointResult& res) {
        EXPECT_EQ(total, grid.size());
        EXPECT_FALSE(res.id.empty());
        done_seq.push_back(done);
      });
  ASSERT_EQ(done_seq.size(), grid.size());
  for (std::size_t i = 0; i < done_seq.size(); ++i) {
    EXPECT_EQ(done_seq[i], i + 1);  // strictly increasing 1..total
  }
  for (const PointResult& r : results) EXPECT_TRUE(r.ok) << r.error;
}

TEST(ExpExecutor, ResultsArriveInGridOrderRegardlessOfJobs) {
  const ExpGrid grid = small_grid();
  const std::vector<PointResult> serial = run_grid(grid, 1);
  const std::vector<PointResult> threaded = run_grid(grid, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].id, grid.points()[i].id);
    EXPECT_EQ(threaded[i].id, serial[i].id);
  }
}

TEST(ExpExecutor, ArtifactBytesIdenticalAcrossThreadCounts) {
  const ExpGrid grid = small_grid(2);
  const RunShape shape{.seeds = 2};

  const Artifact serial =
      make_artifact(small_spec(), shape, run_grid(grid, 1));
  const Artifact threaded =
      make_artifact(small_spec(), shape, run_grid(grid, 8));

  // The determinism contract: byte-identical JSON for any --jobs value.
  EXPECT_EQ(to_json(serial), to_json(threaded));
  EXPECT_EQ(to_csv(serial), to_csv(threaded));
}
