// Scenario microkernel library tests: catalogue integrity, the per-warp
// determinism contract (seed-stable, interleaving-independent streams),
// the exact memory-fraction accumulator, full-simulator runs for every
// kernel, and the `kernels` manifest (shape + byte-identical artifacts
// across --jobs and fast-forward on/off).
#include "scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "exp/driver.hpp"
#include "exp/manifest.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

using scenario::ScenarioSpec;

std::vector<WarpInstr> pull(InstrSource& src, SmId sm, WarpId warp, int n) {
  std::vector<WarpInstr> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(src.next(sm, warp));
  return out;
}

void expect_streams_eq(const std::vector<WarpInstr>& a,
                       const std::vector<WarpInstr>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind)) << i;
    ASSERT_EQ(a[i].latency, b[i].latency) << i;
    ASSERT_EQ(a[i].active_lanes, b[i].active_lanes) << i;
    for (std::uint32_t l = 0; l < a[i].active_lanes; ++l) {
      ASSERT_EQ(a[i].lane_addr[l], b[i].lane_addr[l]) << i;
    }
  }
}

TEST(ScenarioCatalog, HasSixUniqueKernels) {
  const std::vector<ScenarioSpec>& cat = scenario::scenario_catalog();
  ASSERT_GE(cat.size(), 6u);
  std::set<std::string> names;
  for (const ScenarioSpec& s : cat) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.summary.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
    EXPECT_EQ(&scenario::scenario_by_name(s.name), &s);
  }
}

TEST(ScenarioCatalog, UnknownNameListsValidOnes) {
  try {
    (void)scenario::scenario_by_name("no-such-kernel");
    FAIL() << "lookup must throw";
  } catch (const std::invalid_argument& e) {
    // The message names at least one valid scenario, so CLI typos are
    // self-correcting.
    EXPECT_NE(std::string(e.what()).find("pointer-chase"),
              std::string::npos)
        << e.what();
  }
}

TEST(ScenarioDeterminism, SameSeedSameStream) {
  for (const ScenarioSpec& spec : scenario::scenario_catalog()) {
    const auto a = scenario::make_scenario(spec, 2, 3, 42);
    const auto b = scenario::make_scenario(spec, 2, 3, 42);
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 3; ++w) {
        expect_streams_eq(pull(*a, sm, w, 200), pull(*b, sm, w, 200));
      }
    }
  }
}

TEST(ScenarioDeterminism, DifferentSeedsDiverge) {
  const ScenarioSpec& spec = scenario::scenario_by_name("pointer-chase");
  const auto a = scenario::make_scenario(spec, 1, 1, 1);
  const auto b = scenario::make_scenario(spec, 1, 1, 2);
  const std::vector<WarpInstr> sa = pull(*a, 0, 0, 200);
  const std::vector<WarpInstr> sb = pull(*b, 0, 0, 200);
  bool diverged = false;
  for (std::size_t i = 0; i < sa.size() && !diverged; ++i) {
    if (sa[i].kind != sb[i].kind) diverged = true;
    for (std::uint32_t l = 0; l < sa[i].active_lanes && !diverged; ++l) {
      if (sa[i].lane_addr[l] != sb[i].lane_addr[l]) diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(ScenarioDeterminism, WarpInterleavingDoesNotMatter) {
  // Source A is drained round-robin (the simulator's natural order),
  // source B warp-at-a-time; per-warp streams must match exactly.  This
  // is the property that makes recorded traces order-independent.
  for (const ScenarioSpec& spec : scenario::scenario_catalog()) {
    const auto a = scenario::make_scenario(spec, 2, 2, 7);
    const auto b = scenario::make_scenario(spec, 2, 2, 7);
    std::vector<std::vector<WarpInstr>> rr(4);
    for (int i = 0; i < 150; ++i) {
      for (SmId sm = 0; sm < 2; ++sm) {
        for (WarpId w = 0; w < 2; ++w) {
          rr[static_cast<std::size_t>(sm) * 2 + w].push_back(a->next(sm, w));
        }
      }
    }
    for (SmId sm = 0; sm < 2; ++sm) {
      for (WarpId w = 0; w < 2; ++w) {
        expect_streams_eq(rr[static_cast<std::size_t>(sm) * 2 + w],
                          pull(*b, sm, w, 150));
      }
    }
  }
}

TEST(ScenarioContract, MemFractionIsExact) {
  // vecadd-uncoal declares mem_instr_frac 0.5; the integer per-mille
  // accumulator must deliver exactly one memory instruction per two
  // issued (never a float-drift approximation).
  const ScenarioSpec& spec = scenario::scenario_by_name("vecadd-uncoal");
  const auto src = scenario::make_scenario(spec, 1, 1, 3);
  std::uint64_t mem = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (src->next(0, 0).kind != WarpInstr::Kind::kCompute) ++mem;
  }
  EXPECT_NEAR(static_cast<double>(mem), n * 0.5, 1.0);
}

TEST(ScenarioContract, AddressesStayInsideFootprint) {
  for (const ScenarioSpec& spec : scenario::scenario_catalog()) {
    const auto src = scenario::make_scenario(spec, 2, 2, 5);
    for (int i = 0; i < 500; ++i) {
      for (SmId sm = 0; sm < 2; ++sm) {
        for (WarpId w = 0; w < 2; ++w) {
          const WarpInstr instr = src->next(sm, w);
          if (instr.kind == WarpInstr::Kind::kCompute) continue;
          ASSERT_GT(instr.active_lanes, 0u) << spec.name;
          for (std::uint32_t l = 0; l < instr.active_lanes; ++l) {
            ASSERT_LT(instr.lane_addr[l], spec.params.footprint_bytes)
                << spec.name;
          }
        }
      }
    }
  }
}

TEST(ScenarioSim, EveryKernelDrivesAFullSimulation) {
  for (const ScenarioSpec& spec : scenario::scenario_catalog()) {
    SimConfig cfg;
    cfg.shrink_for_tests();
    cfg.scheduler = SchedulerKind::kGmc;
    cfg.workload.name = spec.name;
    cfg.instr_source = [&spec](std::uint32_t sms, std::uint32_t warps,
                               std::uint64_t seed) {
      return scenario::make_scenario(spec, sms, warps, seed);
    };
    const RunResult r = Simulator(cfg).run();
    EXPECT_GT(r.instructions, 100u) << spec.name;
    EXPECT_GT(r.dram_reads + r.dram_writes, 0u) << spec.name;
  }
}

TEST(ScenarioSim, InstrSourceFactoryIsDeterministic) {
  const ScenarioSpec& spec = scenario::scenario_by_name("framebuffer");
  auto run_once = [&spec] {
    SimConfig cfg;
    cfg.shrink_for_tests();
    cfg.scheduler = SchedulerKind::kWgW;
    cfg.instr_source = [&spec](std::uint32_t sms, std::uint32_t warps,
                               std::uint64_t seed) {
      return scenario::make_scenario(spec, sms, warps, seed);
    };
    return Simulator(cfg).run();
  };
  const RunResult a = run_once();
  const RunResult b = run_once();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

// ---------------------------------------------------------------------------
// The `kernels` manifest.

TEST(KernelsManifest, CoversCatalogTimesAllPolicies) {
  exp::SweepOptions opts;
  const exp::Manifest m = exp::make_manifest("kernels", opts);
  EXPECT_EQ(m.spec.col_order.size(), 9u);
  EXPECT_EQ(m.spec.baseline_col, to_string(SchedulerKind::kGmc));
  EXPECT_EQ(m.grid.size(), scenario::scenario_catalog().size() * 9u);
  bool listed = false;
  for (const std::string& name : exp::manifest_names()) {
    if (name == "kernels") listed = true;
  }
  EXPECT_TRUE(listed);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(KernelsManifest, ArtifactBytesStableAcrossJobsAndFastForward) {
  // One scenario column, short runs: the artifact must be byte-identical
  // whether points run serially, on 2 executor threads, or with idle
  // fast-forward disabled — the determinism contract CI enforces on the
  // full grid.
  auto run_with = [](unsigned jobs, bool fast_forward,
                     const std::string& out) {
    exp::SweepRunArgs args;
    args.opts.cycles = 4000;
    args.opts.warmup = 400;
    args.opts.filter = "vecadd-uncoal/";
    args.opts.jobs = jobs;
    args.fast_forward = fast_forward;
    args.progress = false;
    args.out_json = out;
    return exp::run_manifest("kernels", args);
  };
  const std::string a = std::string(::testing::TempDir()) + "kernels_a.json";
  const std::string b = std::string(::testing::TempDir()) + "kernels_b.json";
  const std::string c = std::string(::testing::TempDir()) + "kernels_c.json";
  EXPECT_EQ(run_with(1, true, a), 0);
  EXPECT_EQ(run_with(2, true, b), 0);
  EXPECT_EQ(run_with(2, false, c), 0);
  const std::string bytes = slurp(a);
  EXPECT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, slurp(b));
  EXPECT_EQ(bytes, slurp(c));
  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

}  // namespace
}  // namespace latdiv
