// Trace/attribution report renderers (src/exp/trace_report).
//
// The regression this suite pins: a trace with zero warp-load events
// must still render the complete summary — drain totals included — with
// explicit "(none)" placeholders for the empty sections, instead of a
// report that silently truncates.  Plus: the attribution section renders
// every cause and blame entry, and both renderers are deterministic.
#include <gtest/gtest.h>

#include <string>

#include "exp/json.hpp"
#include "exp/trace_report.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

using exp::JsonValue;

TEST(TraceReport, EmptyTracePrintsDrainTotalsAndPlaceholders) {
  const JsonValue doc = JsonValue::parse(R"({"traceEvents":[]})");
  const std::string s = exp::trace_summary(doc, "empty", 10);
  EXPECT_NE(s.find("span       : 0 cycles, 0 events"), std::string::npos)
      << s;
  EXPECT_NE(s.find("drains     : 0 episodes, 0 cycles, 0 writes flushed"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("slowest warp loads (0 of 0):\n    (none)"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("per-bank ACT/PRE (0 REF):\n    (none)"),
            std::string::npos)
      << s;
}

// A drain-only window (writes flushed, no reads completed, no warp
// loads) keeps its totals — the original motivating case.
TEST(TraceReport, DrainOnlyWindowKeepsDrainTotals) {
  const JsonValue doc = JsonValue::parse(R"({"traceEvents":[
    {"name":"drain","ph":"X","pid":100,"tid":0,"ts":10,"dur":40,
     "args":{"writes":7}},
    {"name":"drain","ph":"X","pid":100,"tid":0,"ts":90,"dur":60,
     "args":{"writes":5}}
  ]})");
  const std::string s = exp::trace_summary(doc, "drain-only", 5);
  EXPECT_NE(s.find("drains     : 2 episodes, 100 cycles, 12 writes flushed"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("slowest warp loads (0 of 0):\n    (none)"),
            std::string::npos)
      << s;
}

TEST(TraceReport, MissingTraceEventsThrows) {
  EXPECT_THROW((void)exp::trace_summary(JsonValue::parse("{}"), "x", 5),
               std::runtime_error);
  EXPECT_THROW((void)exp::trace_summary(JsonValue::parse("[1,2]"), "x", 5),
               std::runtime_error);
}

TEST(TraceReport, RendersDeterministically) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bfs");
  cfg.obs.trace = true;
  Simulator sim(cfg);
  (void)sim.run();
  const JsonValue doc = JsonValue::parse(sim.obs()->trace_json());
  const std::string a = exp::trace_summary(doc, "t", 10);
  const std::string b = exp::trace_summary(doc, "t", 10);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("(none)"), std::string::npos)
      << "a real trace should have no empty sections:\n"
      << a;
}

// ---------------------------------------------------------------------------
// Attribution section.

TEST(AttribReport, RendersCausesBlameAndAuditLine) {
  const JsonValue doc = JsonValue::parse(R"({"attrib":{
    "loads": 10, "mismatches": 0, "unmatched": 0, "dropped": 0,
    "drain_clamps": 0, "inflight_at_end": 2,
    "total_cycles": 1000, "cause_cycles_sum": 1000, "residual": 0,
    "causes": {
      "queue": {"count": 10, "sum": 600, "min": 1, "max": 200,
                "p50": 63, "p90": 127, "p99": 255},
      "bus": {"count": 10, "sum": 400, "min": 20, "max": 40,
              "p50": 31, "p90": 31, "p99": 31}
    },
    "blame": {"queue": 6, "bus": 1, "none": 3}
  }})");
  const std::string s = exp::attrib_summary(doc, "demo");
  EXPECT_NE(s.find("10 attributed, 0 mismatched, 0 unmatched, 0 dropped"),
            std::string::npos)
      << s;
  EXPECT_NE(s.find("residual 0 cycles"), std::string::npos) << s;
  EXPECT_NE(s.find("queue"), std::string::npos) << s;
  EXPECT_NE(s.find("60.0%"), std::string::npos) << s;  // 600 / 1000
  EXPECT_NE(s.find("blame      : queue 6, bus 1, none 3"),
            std::string::npos)
      << s;
}

TEST(AttribReport, EmptySectionsRenderNone) {
  const JsonValue doc = JsonValue::parse(
      R"({"attrib":{"loads":0,"total_cycles":0,"causes":{},"blame":{}}})");
  const std::string s = exp::attrib_summary(doc, "empty");
  EXPECT_NE(s.find("0 attributed"), std::string::npos) << s;
  EXPECT_NE(s.find("    (none)"), std::string::npos) << s;
  EXPECT_NE(s.find("blame      : (none)"), std::string::npos) << s;
}

TEST(AttribReport, MissingAttribObjectThrows) {
  EXPECT_THROW((void)exp::attrib_summary(JsonValue::parse("{}"), "x"),
               std::runtime_error);
}

// End-to-end: the artifact a real run writes parses as JSON and renders
// with a clean audit line.
TEST(AttribReport, RealArtifactParsesAndRendersClean) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.workload = profile_by_name("bfs");
  cfg.obs.attrib = true;
  Simulator sim(cfg);
  (void)sim.run();
  const JsonValue doc = JsonValue::parse(sim.obs()->attrib_json());
  const std::string s = exp::attrib_summary(doc, "real");
  EXPECT_NE(s.find("residual 0 cycles"), std::string::npos) << s;
  EXPECT_NE(s.find("0 mismatched, 0 unmatched, 0 dropped"),
            std::string::npos)
      << s;
}

}  // namespace
}  // namespace latdiv
