#include "icnt/crossbar.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace latdiv {
namespace {

IcntConfig small_cfg() {
  IcntConfig cfg;
  cfg.sms = 4;
  cfg.partitions = 2;
  cfg.request_latency = 3;
  cfg.response_latency = 3;
  return cfg;
}

MemRequest req_to(ChannelId part, SmId sm, WarpInstrUid uid) {
  MemRequest r;
  r.loc.channel = part;
  r.tag.sm = sm;
  r.tag.instr = uid;
  return r;
}

MemResponse resp_to(SmId sm, WarpInstrUid uid) {
  MemResponse r;
  r.tag.sm = sm;
  r.tag.instr = uid;
  return r;
}

TEST(Crossbar, RequestDeliveredAfterLatency) {
  Crossbar x(small_cfg());
  x.inject_request(0, req_to(1, 0, 7), 0);
  x.tick(0);
  EXPECT_EQ(x.peek_request(1, 2), nullptr);
  ASSERT_NE(x.peek_request(1, 3), nullptr);
  EXPECT_EQ(x.pop_request(1, 3).tag.instr, 7u);
}

TEST(Crossbar, PerSmOrderPreserved) {
  Crossbar x(small_cfg());
  for (WarpInstrUid u = 0; u < 5; ++u) {
    x.inject_request(2, req_to(0, 2, u), 0);
  }
  std::vector<WarpInstrUid> seen;
  for (Cycle c = 0; c < 20; ++c) {
    x.tick(c);
    while (x.peek_request(0, c) != nullptr) {
      seen.push_back(x.pop_request(0, c).tag.instr);
    }
  }
  ASSERT_EQ(seen.size(), 5u);
  for (WarpInstrUid u = 0; u < 5; ++u) EXPECT_EQ(seen[u], u);
}

TEST(Crossbar, HeadOfLineBlockingPreservesOrderAcrossPartitions) {
  // SM 0's head targets partition 0, which refuses to pop; the later
  // request for partition 1 must NOT overtake it in flight beyond the
  // partition buffers: partition 1 receives nothing until partition 0's
  // buffer accepts the head.  (One in-flight buffer slot exists, so the
  // head moves off the SM queue; the point is order *within* the SM
  // stream, which we check by popping everything at the end.)
  IcntConfig cfg = small_cfg();
  cfg.partition_in_depth = 1;
  Crossbar x(cfg);
  x.inject_request(0, req_to(0, 0, 1), 0);
  x.inject_request(0, req_to(0, 0, 2), 0);
  x.inject_request(0, req_to(1, 0, 3), 0);
  for (Cycle c = 0; c < 10; ++c) x.tick(c);
  // Request 1 sits in partition 0's single-entry buffer; request 2 is
  // stuck at the SM head; request 3 behind it must not have reached
  // partition 1.
  EXPECT_EQ(x.peek_request(1, 9), nullptr);
  // Drain partition 0 and let the crossbar move on.
  (void)x.pop_request(0, 9);
  for (Cycle c = 10; c < 30; ++c) x.tick(c);
  ASSERT_NE(x.peek_request(0, 29), nullptr);
  EXPECT_EQ(x.pop_request(0, 29).tag.instr, 2u);
  for (Cycle c = 30; c < 40; ++c) x.tick(c);
  ASSERT_NE(x.peek_request(1, 39), nullptr);
  EXPECT_EQ(x.pop_request(1, 39).tag.instr, 3u);
}

TEST(Crossbar, RoundRobinSharesPartitionBandwidth) {
  Crossbar x(small_cfg());
  // All four SMs target partition 0; one grant per cycle.
  for (SmId sm = 0; sm < 4; ++sm) {
    x.inject_request(sm, req_to(0, sm, sm), 0);
  }
  std::vector<SmId> grant_order;
  for (Cycle c = 0; c < 10; ++c) {
    x.tick(c);
    while (x.peek_request(0, c) != nullptr) {
      grant_order.push_back(x.pop_request(0, c).tag.sm);
    }
  }
  ASSERT_EQ(grant_order.size(), 4u);
  // Every SM served exactly once (fairness), in round-robin order.
  EXPECT_EQ(grant_order, (std::vector<SmId>{0, 1, 2, 3}));
}

TEST(Crossbar, StickyArbitrationKeepsSmStreak) {
  IcntConfig cfg = small_cfg();
  cfg.sticky_arbitration = true;
  Crossbar x(cfg);
  // SM 0 has a 3-request train; SM 1 has one request; all to partition 0.
  for (WarpInstrUid u = 0; u < 3; ++u) x.inject_request(0, req_to(0, 0, u), 0);
  x.inject_request(1, req_to(0, 1, 100), 0);
  std::vector<SmId> order;
  for (Cycle c = 0; c < 12; ++c) {
    x.tick(c);
    while (x.peek_request(0, c) != nullptr) {
      order.push_back(x.pop_request(0, c).tag.sm);
    }
  }
  ASSERT_EQ(order.size(), 4u);
  // Non-interleaving: SM 0's whole train first (Yuan et al. model).
  EXPECT_EQ(order, (std::vector<SmId>{0, 0, 0, 1}));
}

TEST(Crossbar, WithoutStickinessTrainsInterleave) {
  Crossbar x(small_cfg());
  for (WarpInstrUid u = 0; u < 3; ++u) x.inject_request(0, req_to(0, 0, u), 0);
  x.inject_request(1, req_to(0, 1, 100), 0);
  std::vector<SmId> order;
  for (Cycle c = 0; c < 12; ++c) {
    x.tick(c);
    while (x.peek_request(0, c) != nullptr) {
      order.push_back(x.pop_request(0, c).tag.sm);
    }
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[1], 1) << "round-robin must interleave SM 1";
}

TEST(Crossbar, ResponseRoutedToSmAfterLatency) {
  Crossbar x(small_cfg());
  x.inject_response(1, resp_to(2, 9), 0);
  x.tick(0);
  EXPECT_FALSE(x.pop_response(2, 2).has_value());
  const auto r = x.pop_response(2, 3);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->tag.instr, 9u);
  EXPECT_FALSE(x.pop_response(0, 3).has_value());
}

TEST(Crossbar, OneResponsePerSmPerCycle) {
  Crossbar x(small_cfg());
  x.inject_response(0, resp_to(0, 1), 0);
  x.inject_response(1, resp_to(0, 2), 0);
  x.tick(0);  // only one can move to SM 0 this cycle
  x.tick(1);
  int delivered = 0;
  delivered += x.pop_response(0, 3).has_value();
  delivered += x.pop_response(0, 4).has_value();
  EXPECT_EQ(delivered, 2);
}

TEST(Crossbar, InjectionBackpressure) {
  IcntConfig cfg = small_cfg();
  cfg.sm_queue_depth = 2;
  Crossbar x(cfg);
  EXPECT_TRUE(x.can_inject_request(0));
  x.inject_request(0, req_to(0, 0, 1), 0);
  x.inject_request(0, req_to(0, 0, 2), 0);
  EXPECT_FALSE(x.can_inject_request(0));
  EXPECT_TRUE(x.can_inject_request(1));
}

TEST(Crossbar, StatsCountMoves) {
  Crossbar x(small_cfg());
  x.inject_request(0, req_to(0, 0, 1), 0);
  x.inject_response(0, resp_to(0, 1), 0);
  x.tick(0);
  EXPECT_EQ(x.stats().requests_moved, 1u);
  EXPECT_EQ(x.stats().responses_moved, 1u);
}

}  // namespace
}  // namespace latdiv
