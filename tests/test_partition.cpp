// Partition (L2 slice + controller glue) behaviour: hits respond without
// DRAM, misses fetch through the controller, stores allocate dirty lines,
// evictions write back, and warp-group completion tags are forwarded.
#include "gpu/partition.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gpu/tracker.hpp"
#include "mc/policy_fcfs.hpp"
#include "mc/policy.hpp"

namespace latdiv {
namespace {

struct CompletionProbe : TransactionScheduler {
  const char* name() const override { return "probe"; }
  void schedule_reads(MemoryController& mc, Cycle now) override {
    fcfs.schedule_reads(mc, now);
  }
  void on_group_complete(MemoryController&, const WarpTag& tag,
                         Cycle) override {
    completed.push_back(tag.instr);
  }
  FcfsPolicy fcfs;
  std::vector<WarpInstrUid> completed;
};

struct Harness {
  Harness() : amap(AddressMapConfig{}), xbar(make_icnt()) {
    DramParams dp;
    dp.refresh_enabled = false;
    auto probe = std::make_unique<CompletionProbe>();
    probe_raw = probe.get();
    part = std::make_unique<Partition>(kPart, PartitionConfig{}, McConfig{},
                                       DramTiming::from(dp), std::move(probe),
                                       amap, xbar, tracker);
  }

  static IcntConfig make_icnt() {
    IcntConfig cfg;
    cfg.sms = 2;
    cfg.partitions = 6;
    cfg.request_latency = 2;
    cfg.response_latency = 2;
    return cfg;
  }

  /// An address guaranteed to live on partition 0 (searched).
  Addr addr_on_partition(std::uint64_t salt) const {
    for (Addr a = salt * 131072;; a += 128) {
      if (amap.decode(a).channel == kPart) return a;
    }
  }

  MemRequest read_req(Addr addr, WarpInstrUid uid, bool last = false) {
    MemRequest r;
    r.addr = amap.line_base(addr);
    r.kind = ReqKind::kRead;
    r.loc = amap.decode(r.addr);
    r.tag = WarpTag{0, 0, uid};
    r.last_of_group_at_mc = last;
    return r;
  }

  void run_to(Cycle end) {
    for (; now < end; ++now) {
      if (now % 2 == 0) {
        xbar.tick(now);
        part->tick_core(now);
      }
      part->tick_dram(now);
      // Collect responses as the SM side would.
      while (auto resp = xbar.pop_response(0, now)) {
        responses.push_back(*resp);
      }
    }
  }

  static constexpr ChannelId kPart = 0;
  AddressMap amap;
  Crossbar xbar;
  InstrTracker tracker;
  CompletionProbe* probe_raw = nullptr;
  std::unique_ptr<Partition> part;
  std::vector<MemResponse> responses;
  Cycle now = 0;
};

TEST(Partition, ColdReadMissFetchesFromDram) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  ASSERT_EQ(h.responses.size(), 1u);
  EXPECT_EQ(h.responses[0].addr, a);
  EXPECT_EQ(h.part->stats().read_misses, 1u);
  EXPECT_EQ(h.part->mc().stats().reads_served, 1u);
}

TEST(Partition, SecondReadHitsInL2) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  h.xbar.inject_request(0, h.read_req(a, 2), h.now);
  h.run_to(500);
  ASSERT_EQ(h.responses.size(), 2u);
  EXPECT_EQ(h.part->stats().read_hits, 1u);
  EXPECT_EQ(h.part->mc().stats().reads_served, 1u);  // still one DRAM read
}

TEST(Partition, ConcurrentMissesMergeInMshr) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.xbar.inject_request(1, h.read_req(a, 2), 0);
  h.run_to(500);
  ASSERT_EQ(h.responses.size() +
                [&] {
                  std::size_t n = 0;
                  Harness* hp = &h;
                  while (hp->xbar.pop_response(1, hp->now)) ++n;
                  return n;
                }(),
            2u);
  EXPECT_EQ(h.part->stats().mshr_merges, 1u);
  EXPECT_EQ(h.part->mc().stats().reads_served, 1u);
}

TEST(Partition, L2HitLatencyIsPipelineDelayNotDram) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  const Cycle warm_start = h.now;
  h.xbar.inject_request(0, h.read_req(a, 2), h.now);
  h.run_to(warm_start + 120);
  ASSERT_EQ(h.responses.size(), 2u);
  // Hit latency: crossbar (2+2) + pipeline (16) + core-tick rounding;
  // far below a DRAM round trip (~40+ cycles of array timing alone).
  EXPECT_LT(h.responses[1].completed - warm_start, 40u);
}

TEST(Partition, StoreMissAllocatesDirtyWithoutDramRead) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  MemRequest w = h.read_req(a, 1);
  w.kind = ReqKind::kWrite;
  h.xbar.inject_request(0, w, 0);
  h.run_to(200);
  EXPECT_EQ(h.part->stats().write_misses, 1u);
  EXPECT_EQ(h.part->mc().stats().reads_served, 0u);
  // A read to the same line now hits.
  h.xbar.inject_request(0, h.read_req(a, 2), h.now);
  h.run_to(400);
  EXPECT_EQ(h.part->stats().read_hits, 1u);
}

TEST(Partition, StoreHitMarksDirtyOnly) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  MemRequest w = h.read_req(a, 2);
  w.kind = ReqKind::kWrite;
  h.xbar.inject_request(0, w, h.now);
  h.run_to(h.now + 100);
  EXPECT_EQ(h.part->stats().write_hits, 1u);
  EXPECT_EQ(h.part->stats().writebacks, 0u);
}

TEST(Partition, CapacityEvictionOfDirtyLineWritesBack) {
  Harness h;
  // Fill one L2 set (16 ways) with dirty store-allocated lines, then one
  // more: the LRU victim must be written back to DRAM.
  // Lines in the same L2 set on partition 0: set stride = sets*128.
  const std::uint32_t sets = h.part->l2().sets();
  std::vector<Addr> lines;
  for (Addr a = 0; lines.size() < 17; a += 128) {
    const DramLoc loc = h.amap.decode(a);
    if (loc.channel == Harness::kPart &&
        ((a / 128) % sets) == 0) {
      lines.push_back(a);
    }
  }
  Cycle t = 0;
  for (Addr a : lines) {
    MemRequest w = h.read_req(a, 1);
    w.kind = ReqKind::kWrite;
    h.run_to(t);
    h.xbar.inject_request(0, w, t);
    t += 16;
  }
  h.run_to(t + 3000);
  EXPECT_GE(h.part->stats().writebacks, 1u);
  EXPECT_GE(h.part->mc().stats().writes_served +
                h.part->mc().write_queue().size(),
            1u);
}

TEST(Partition, GroupCompletionForwardedOnMiss) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 5, /*last=*/true), 0);
  h.run_to(100);
  ASSERT_EQ(h.probe_raw->completed.size(), 1u);
  EXPECT_EQ(h.probe_raw->completed[0], 5u);
}

TEST(Partition, GroupCompletionForwardedEvenOnL2Hit) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  h.xbar.inject_request(0, h.read_req(a, 6, /*last=*/true), h.now);
  h.run_to(h.now + 100);
  ASSERT_EQ(h.probe_raw->completed.size(), 1u);
  EXPECT_EQ(h.probe_raw->completed[0], 6u);
  EXPECT_EQ(h.part->mc().stats().reads_served, 1u);
}

TEST(Partition, TrackerSeesDramRequestAndCompletion) {
  Harness h;
  const Addr a = h.addr_on_partition(1);
  h.tracker.on_issue(1, 0);
  h.xbar.inject_request(0, h.read_req(a, 1), 0);
  h.run_to(400);
  h.tracker.finalize(1, h.now);
  EXPECT_EQ(h.tracker.summary().loads_touching_dram, 1u);
  EXPECT_GT(h.tracker.summary().first_req_latency.mean(), 0.0);
}

}  // namespace
}  // namespace latdiv
