#include "core/merb.hpp"

#include <gtest/gtest.h>

#include "dram/params.hpp"

namespace latdiv {
namespace {

TEST(Merb, ReproducesPaperTableI) {
  // Table I (GDDR5): banks 1..5 => {31, 20, 10, 7, 5}; 6..16 => 5.
  const MerbTable merb(DramTiming::from(DramParams{}));
  EXPECT_EQ(merb.value(1), 31u);
  EXPECT_EQ(merb.value(2), 20u);
  EXPECT_EQ(merb.value(3), 10u);
  EXPECT_EQ(merb.value(4), 7u);
  EXPECT_EQ(merb.value(5), 5u);
  for (std::uint32_t b = 6; b <= 16; ++b) {
    EXPECT_EQ(merb.value(b), 5u) << "banks=" << b;
  }
}

TEST(Merb, ZeroPendingTreatedAsSingleBank) {
  const MerbTable merb(DramTiming::from(DramParams{}));
  EXPECT_EQ(merb.value(0), MerbTable::kSingleBankMerb);
}

TEST(Merb, ClampsBeyondBankCount) {
  const MerbTable merb(DramTiming::from(DramParams{}));
  EXPECT_EQ(merb.value(100), merb.value(16));
}

TEST(Merb, MonotonicNonIncreasing) {
  // More banks with pending work -> more overlap available -> the
  // threshold can only shrink (or stay at the activate-rate floor).
  const MerbTable merb(DramTiming::from(DramParams{}));
  for (std::uint32_t b = 2; b <= 16; ++b) {
    EXPECT_LE(merb.value(b), merb.value(b - 1));
  }
}

TEST(Merb, ActivateRateFloorBinds) {
  // With many banks, the per-bank share of the miss overhead is tiny but
  // tRRD/tFAW still limit how fast rows can rotate: the floor
  // max(tRRD, tFAW/4)/tBURST = max(9, 8.75)/2 = 4.5 -> 5 must hold.
  const MerbTable merb(DramTiming::from(DramParams{}));
  EXPECT_EQ(merb.value(16), 5u);
}

TEST(Merb, SlowPartGrowsThresholds) {
  // Double the precharge/activate overheads: every multi-bank threshold
  // should grow accordingly.
  DramParams slow;
  slow.trp_ns *= 2.0;
  slow.trcd_ns *= 2.0;
  const MerbTable fast(DramTiming::from(DramParams{}));
  const MerbTable merb(DramTiming::from(slow));
  EXPECT_GT(merb.value(2), fast.value(2));
}

TEST(Merb, TableSpansAllBanks) {
  const MerbTable merb(DramTiming::from(DramParams{}));
  EXPECT_EQ(merb.table().size(), 16u);
}

TEST(Merb, FiveBitCounterCeiling) {
  // No threshold may exceed the 5-bit hardware counter.
  const MerbTable merb(DramTiming::from(DramParams{}));
  for (std::uint32_t v : merb.table()) EXPECT_LE(v, 31u);
}

}  // namespace
}  // namespace latdiv
