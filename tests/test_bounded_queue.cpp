#include "common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace latdiv {
namespace {

TEST(BoundedQueue, StartsEmpty) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.full());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_EQ(q.free_slots(), 4u);
}

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BoundedQueue, FullAtCapacity) {
  BoundedQueue<int> q(2);
  q.push(1);
  EXPECT_FALSE(q.full());
  q.push(2);
  EXPECT_TRUE(q.full());
  EXPECT_EQ(q.free_slots(), 0u);
}

TEST(BoundedQueue, EraseFromMiddle) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) q.push(i);
  auto it = q.begin();
  ++it;
  ++it;  // points at 2
  q.erase(it);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.pop(), 0);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.pop(), 4);
}

TEST(BoundedQueue, IterationSeesArrivalOrder) {
  BoundedQueue<std::string> q(4);
  q.push("a");
  q.push("b");
  std::string joined;
  for (const auto& s : q) joined += s;
  EXPECT_EQ(joined, "ab");
}

TEST(BoundedQueue, FrontPeeksWithoutRemoval) {
  BoundedQueue<int> q(2);
  q.push(9);
  EXPECT_EQ(q.front(), 9);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueDeath, PushOnFullAborts) {
  BoundedQueue<int> q(1);
  q.push(1);
  EXPECT_DEATH(q.push(2), "full");
}

TEST(BoundedQueueDeath, PopOnEmptyAborts) {
  BoundedQueue<int> q(1);
  EXPECT_DEATH((void)q.pop(), "empty");
}

}  // namespace
}  // namespace latdiv
