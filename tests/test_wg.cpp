// Tests for the paper's warp-group scheduler family (WG / WG-M / WG-Bw /
// WG-W): completeness gating, BASJF scoring, coordination, MERB admission
// and write-drain awareness.
#include "core/policy_wg.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/params.hpp"
#include "mc/controller.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

MemRequest read_to(BankId bank, RowId row, std::uint32_t col,
                   WarpInstrUid uid) {
  MemRequest r;
  r.kind = ReqKind::kRead;
  r.addr = (static_cast<Addr>(row) << 15) | (static_cast<Addr>(col) << 7) |
           (static_cast<Addr>(bank) << 28);
  r.loc.bank = bank;
  r.loc.bank_group = bank / 4;
  r.loc.row = row;
  r.loc.col = col;
  r.tag.instr = uid;
  r.tag.warp = static_cast<WarpId>(uid % 48);
  return r;
}

struct Harness {
  explicit Harness(WgConfig cfg = {}, DramTiming t = timing_no_refresh(),
                   McConfig mc_cfg = {})
      : mc(0, mc_cfg, t, make_policy(cfg, t),
           [this](const MemRequest& req, Cycle) { order.push_back(req); }) {}

  std::unique_ptr<WgPolicy> make_policy(const WgConfig& cfg,
                                        const DramTiming& t) {
    auto p = std::make_unique<WgPolicy>(cfg, t);
    wg = p.get();
    return p;
  }

  void push_group(WarpInstrUid /*uid*/, std::vector<MemRequest> reqs,
                  bool complete = true) {
    for (const MemRequest& r : reqs) mc.push(r, now);
    if (complete) mc.notify_group_complete(reqs.front().tag, now);
  }

  void run_to(Cycle end) {
    for (; now < end; ++now) mc.tick(now);
  }

  std::vector<WarpInstrUid> service_order() const {
    std::vector<WarpInstrUid> uids;
    for (const MemRequest& r : order) uids.push_back(r.tag.instr);
    return uids;
  }

  Cycle now = 0;
  std::vector<MemRequest> order;
  WgPolicy* wg = nullptr;
  MemoryController mc;
};

TEST(Wg, IncompleteGroupIsNotScheduled) {
  Harness h;
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 1, 1, 1)},
               /*complete=*/false);
  h.run_to(200);
  EXPECT_TRUE(h.order.empty());
  EXPECT_EQ(h.mc.commands_pending(), 0u);
}

TEST(Wg, CompletionSignalReleasesGroup) {
  Harness h;
  h.push_group(1, {read_to(0, 1, 0, 1)}, /*complete=*/false);
  h.run_to(50);
  EXPECT_TRUE(h.order.empty());
  h.mc.notify_group_complete(WarpTag{0, 1, 1}, h.now);
  h.run_to(300);
  EXPECT_EQ(h.order.size(), 1u);
  EXPECT_EQ(h.wg->wg_stats()->groups_completed, 1u);
}

TEST(Wg, ShortestJobFirst) {
  Harness h;
  // Group 1: three row-misses to one bank (score 9).  Group 2: one miss
  // (score 3).  Both fully formed at cycle 0: group 2 must be served
  // first even though group 1 arrived first.
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 5, 0, 1),
                   read_to(0, 9, 0, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2)});
  h.run_to(1000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 4u);
  EXPECT_EQ(uids[0], 2u);
}

TEST(Wg, BankParallelGroupBeatsSerialGroup) {
  Harness h;
  // Two requests to different banks (max per-bank score 3) beat two
  // same-bank different-row requests (score 6) — the paper's point that
  // request count alone is not the job length.
  h.push_group(1, {read_to(2, 1, 0, 1), read_to(2, 7, 0, 1)});
  h.push_group(2, {read_to(3, 1, 0, 2), read_to(4, 1, 0, 2)});
  h.run_to(1000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 4u);
  EXPECT_EQ(uids.back(), 1u)
      << "serial same-bank group finishes last despite equal size";
}

TEST(Wg, GroupServicedAsAUnitWithinBank) {
  Harness h;
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 1, 1, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2), read_to(0, 2, 1, 2)});
  h.run_to(2000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 4u);
  // No interleaving: xxyy, never xyxy.
  EXPECT_EQ(uids[0], uids[1]);
  EXPECT_EQ(uids[2], uids[3]);
}

TEST(Wg, QueueBacklogRaisesScore) {
  Harness h;
  // Saturate bank 0 with a large complete group first.
  std::vector<MemRequest> big;
  for (int i = 0; i < 6; ++i) big.push_back(read_to(0, 10 + i, 0, 9));
  h.push_group(9, big);
  h.run_to(10);  // group 9 now occupies bank 0's command queue
  // Group 1 targets the congested bank, group 2 an idle one; same shape.
  h.push_group(1, {read_to(0, 1, 0, 1)});
  h.push_group(2, {read_to(1, 1, 0, 2)});
  h.run_to(3000);
  const auto uids = h.service_order();
  // Group 2's single request must finish before group 1's, which sits
  // behind the backlog.
  auto pos = [&](WarpInstrUid u) {
    for (std::size_t i = 0; i < uids.size(); ++i) {
      if (uids[i] == u) return i;
    }
    return uids.size();
  };
  EXPECT_LT(pos(2), pos(1));
}

TEST(Wg, TieBreakPrefersRowHits) {
  Harness h;
  // Establish row 5 in bank 0 and row 6 in bank 1 via a first group.
  h.push_group(9, {read_to(0, 5, 0, 9), read_to(1, 6, 0, 9)});
  h.run_to(60);
  // Group 1: one hit on bank 0 (score 1).  Group 2: one hit on bank 1
  // (score 1).  Scores tie; group 2 has the same hits; fall back to
  // arrival order — but make group 2 a MISS instead to check hits win.
  h.push_group(1, {read_to(0, 5, 1, 1)});   // hit, score 1
  h.push_group(2, {read_to(1, 7, 0, 2)});   // miss, score 3
  h.run_to(2000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 4u);
  EXPECT_EQ(uids[2], 1u) << "hit-rich group goes first";
}

TEST(WgM, RemoteLaggardBoostApplied) {
  WgConfig cfg;
  cfg.multi_channel = true;
  Harness h(cfg);
  // Group 1: expensive here (two misses same bank, score 6).
  // Group 2: cheap (score 3).  Plain WG serves 2 first.
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 5, 0, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2)});
  // A remote controller reports it finishes warp 1 at score 0: we are the
  // laggard by 6, so group 1's local score collapses below group 2's.
  h.mc.deliver_coordination(CoordMsg{1, WarpTag{0, 1, 1}, 0}, 0);
  h.run_to(1000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_EQ(uids[0], 1u);
  EXPECT_EQ(uids[1], 1u);
  EXPECT_EQ(h.wg->wg_stats()->coord_msgs_applied, 1u);
}

TEST(WgM, RemoteAheadOfUsIsIgnored) {
  WgConfig cfg;
  cfg.multi_channel = true;
  Harness h(cfg);
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 5, 0, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2)});
  // Remote score larger than our local score: no action (RC > LC).
  h.mc.deliver_coordination(CoordMsg{1, WarpTag{0, 1, 1}, 1000}, 0);
  h.run_to(1000);
  EXPECT_EQ(h.service_order()[0], 2u);
  EXPECT_EQ(h.wg->wg_stats()->coord_msgs_applied, 0u);
}

TEST(WgM, MessageBeforeArrivalIsReplayed) {
  WgConfig cfg;
  cfg.multi_channel = true;
  Harness h(cfg);
  // The remote selection lands BEFORE any of warp 1's requests arrive
  // here (crossbar slower than the coordination network): the message is
  // cached and replayed when the group forms, flipping the selection.
  h.mc.deliver_coordination(CoordMsg{1, WarpTag{0, 1, 1}, 0}, 0);
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 5, 0, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2)});
  h.run_to(1000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_EQ(uids[0], 1u);
  EXPECT_EQ(h.wg->wg_stats()->coord_msgs_applied, 1u);
}

TEST(WgM, StaleMessagesExpire) {
  WgConfig cfg;
  cfg.multi_channel = true;
  cfg.coord_msg_ttl = 10;
  Harness h(cfg);
  h.mc.deliver_coordination(CoordMsg{1, WarpTag{0, 1, 1}, 0}, 0);
  h.run_to(50);  // well past the TTL
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(0, 5, 0, 1)});
  h.push_group(2, {read_to(0, 2, 0, 2)});
  h.run_to(1000);
  EXPECT_EQ(h.service_order()[0], 2u) << "expired message must not boost";
  EXPECT_EQ(h.wg->wg_stats()->coord_msgs_applied, 0u);
}

TEST(WgM, SelectionsAreAnnounced) {
  WgConfig cfg;
  cfg.multi_channel = true;
  Harness h(cfg);
  h.push_group(1, {read_to(0, 1, 0, 1)});
  h.run_to(5);
  EXPECT_FALSE(h.mc.outbox().empty());
  EXPECT_EQ(h.mc.outbox()[0].tag.instr, 1u);
}

TEST(WgBw, MerbDefersRowMissBehindFillers) {
  WgConfig cfg;
  cfg.merb = true;
  Harness h(cfg);
  // Establish row 5 as bank 0's stream with a complete group and let it
  // drain fully so the row predictor points at row 5.
  h.push_group(9, {read_to(0, 5, 0, 9), read_to(0, 5, 1, 9)});
  h.run_to(80);
  // Row-hit fillers from an incomplete group (it cannot win selection).
  h.push_group(7,
               {read_to(0, 5, 2, 7), read_to(0, 5, 3, 7), read_to(0, 5, 4, 7)},
               /*complete=*/false);
  // The selected group's row miss on the same bank.
  h.push_group(1, {read_to(0, 9, 0, 1)});
  h.run_to(3000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 6u);
  // All of group 7's row hits must be serviced before group 1's miss
  // (single-bank MERB threshold is 31, far above the 5 available hits).
  EXPECT_EQ(uids.back(), 1u);
  EXPECT_GE(h.wg->wg_stats()->merb_deferrals, 3u);
}

TEST(WgPlain, NoMerbMeansMissGoesStraightIn) {
  Harness h;  // merb off
  h.push_group(9, {read_to(0, 5, 0, 9), read_to(0, 5, 1, 9)});
  h.run_to(80);
  h.push_group(7, {read_to(0, 5, 2, 7), read_to(0, 5, 3, 7)},
               /*complete=*/false);
  h.push_group(1, {read_to(0, 9, 0, 1)});
  h.run_to(3000);
  const auto uids = h.service_order();
  ASSERT_EQ(uids.size(), 3u);  // group 7 stays incomplete and unserved
  EXPECT_EQ(uids.back(), 1u);
  EXPECT_EQ(h.wg->wg_stats()->merb_deferrals, 0u);
}

TEST(WgW, UnitGroupJumpsQueueUnderWritePressure) {
  WgConfig cfg;
  cfg.write_aware = true;
  McConfig mc_cfg;  // high watermark 32, guard 8 -> trigger at 24
  Harness h(cfg, timing_no_refresh(), mc_cfg);
  for (std::uint32_t i = 0; i < 24; ++i) {
    MemRequest w = read_to(i % 16, 3, 0, kNoWarpInstr);
    w.kind = ReqKind::kWrite;
    h.mc.push(w, 0);
  }
  // Group 1: two requests, cheap.  Group 2: one request on a congested
  // bank (expensive by score).  WG-W must still pick the unit group 2.
  std::vector<MemRequest> backlog;
  for (int i = 0; i < 6; ++i) backlog.push_back(read_to(2, 20 + i, 0, 9));
  h.push_group(9, backlog);
  h.run_to(10);
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(1, 1, 0, 1)});
  h.push_group(2, {read_to(2, 1, 0, 2)});
  h.run_to(20);
  EXPECT_GE(h.wg->wg_stats()->writeaware_selections, 1u);
}

TEST(Wg, FallbackRescuesIncompleteGroupsUnderPressure) {
  WgConfig cfg;
  cfg.fallback_age = 500;
  Harness h(cfg);
  // 64 requests from 32 incomplete groups fill the read queue exactly.
  for (WarpInstrUid uid = 1; uid <= 32; ++uid) {
    h.push_group(uid,
                 {read_to(uid % 16, 1, 0, uid), read_to(uid % 16, 2, 0, uid)},
                 /*complete=*/false);
  }
  EXPECT_FALSE(h.mc.can_accept_read());
  h.run_to(5000);
  EXPECT_GT(h.order.size(), 0u) << "liveness: queue must drain";
  EXPECT_GT(h.wg->wg_stats()->fallback_selections, 0u);
}

TEST(Wg, AgedIncompleteGroupDrainsEventually) {
  WgConfig cfg;
  cfg.fallback_age = 200;
  Harness h(cfg);
  h.push_group(1, {read_to(0, 1, 0, 1)}, /*complete=*/false);
  h.run_to(150);
  EXPECT_TRUE(h.order.empty());
  h.run_to(1000);
  EXPECT_EQ(h.order.size(), 1u);
}

TEST(Wg, LateCompletionServesOrphanRemainder) {
  WgConfig cfg;
  cfg.fallback_age = 100;
  Harness h(cfg);
  // Incomplete group drains via fallback; its remaining request arrives
  // later together with the completion signal.
  h.push_group(1, {read_to(0, 1, 0, 1)}, /*complete=*/false);
  h.run_to(400);  // fallback served the first request
  ASSERT_EQ(h.order.size(), 1u);
  h.mc.push(read_to(0, 1, 1, 1), h.now);
  h.mc.notify_group_complete(WarpTag{0, 1 % 48, 1}, h.now);
  h.run_to(1000);
  EXPECT_EQ(h.order.size(), 2u);
}

TEST(Wg, GroupSizeStatTracksSeenRequests) {
  Harness h;
  h.push_group(1, {read_to(0, 1, 0, 1), read_to(1, 1, 0, 1),
                   read_to(2, 1, 0, 1)});
  h.run_to(100);
  EXPECT_EQ(h.wg->wg_stats()->groups_selected, 1u);
  EXPECT_DOUBLE_EQ(h.wg->wg_stats()->group_size.mean(), 3.0);
}

TEST(Wg, GroupLargerThanBankQueueStillDrains) {
  // 12 requests to one bank exceed the 8-deep command queue: the group
  // must still be selected and drain incrementally (no deadlock).
  Harness h;
  std::vector<MemRequest> big;
  for (int i = 0; i < 12; ++i) big.push_back(read_to(0, 1, i % 16, 1));
  h.push_group(1, big);
  h.run_to(4000);
  EXPECT_EQ(h.order.size(), 12u);
}

TEST(Wg, NamesReflectFeatureFlags) {
  const DramTiming t = timing_no_refresh();
  EXPECT_STREQ(WgPolicy(WgConfig{}, t).name(), "WG");
  WgConfig m;
  m.multi_channel = true;
  EXPECT_STREQ(WgPolicy(m, t).name(), "WG-M");
  WgConfig bw = m;
  bw.merb = true;
  EXPECT_STREQ(WgPolicy(bw, t).name(), "WG-Bw");
  WgConfig w = bw;
  w.write_aware = true;
  EXPECT_STREQ(WgPolicy(w, t).name(), "WG-W");
}

}  // namespace
}  // namespace latdiv
