#include "core/coordination.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "dram/params.hpp"
#include "mc/controller.hpp"

namespace latdiv {
namespace {

DramTiming timing_no_refresh() {
  DramParams p;
  p.refresh_enabled = false;
  return DramTiming::from(p);
}

struct Probe : TransactionScheduler {
  const char* name() const override { return "probe"; }
  void schedule_reads(MemoryController&, Cycle) override {}
  void on_remote_selection(MemoryController&, const CoordMsg& msg,
                           Cycle now) override {
    received.emplace_back(msg, now);
  }
  std::vector<std::pair<CoordMsg, Cycle>> received;
};

struct Net {
  Net(std::size_t n, Cycle latency) {
    for (std::size_t i = 0; i < n; ++i) {
      auto probe = std::make_unique<Probe>();
      probes.push_back(probe.get());
      mcs.push_back(std::make_unique<MemoryController>(
          static_cast<ChannelId>(i), McConfig{}, timing_no_refresh(),
          std::move(probe), nullptr));
    }
    std::vector<MemoryController*> raw;
    for (auto& mc : mcs) raw.push_back(mc.get());
    net = std::make_unique<CoordinationNetwork>(raw, latency);
  }
  std::vector<Probe*> probes;
  std::vector<std::unique_ptr<MemoryController>> mcs;
  std::unique_ptr<CoordinationNetwork> net;
};

TEST(Coordination, BroadcastReachesAllOthersNotSource) {
  Net n(6, 4);
  n.mcs[2]->announce_selection(WarpTag{1, 2, 42}, 7);
  for (Cycle c = 0; c < 10; ++c) n.net->tick(c);
  for (std::size_t i = 0; i < 6; ++i) {
    if (i == 2) {
      EXPECT_TRUE(n.probes[i]->received.empty());
    } else {
      ASSERT_EQ(n.probes[i]->received.size(), 1u) << "controller " << i;
      EXPECT_EQ(n.probes[i]->received[0].first.tag.instr, 42u);
      EXPECT_EQ(n.probes[i]->received[0].first.score, 7u);
      EXPECT_EQ(n.probes[i]->received[0].first.source, 2);
    }
  }
}

TEST(Coordination, DeliveryHonoursLatency) {
  Net n(2, 4);
  n.mcs[0]->announce_selection(WarpTag{0, 0, 1}, 3);
  n.net->tick(0);  // message picked up at cycle 0
  n.net->tick(3);
  EXPECT_TRUE(n.probes[1]->received.empty());
  n.net->tick(4);
  ASSERT_EQ(n.probes[1]->received.size(), 1u);
  EXPECT_EQ(n.probes[1]->received[0].second, 4u);
}

TEST(Coordination, OutboxDrainedOnTick) {
  Net n(2, 1);
  n.mcs[0]->announce_selection(WarpTag{0, 0, 1}, 3);
  EXPECT_EQ(n.mcs[0]->outbox().size(), 1u);
  n.net->tick(0);
  EXPECT_TRUE(n.mcs[0]->outbox().empty());
  EXPECT_EQ(n.net->messages_sent(), 1u);
}

TEST(Coordination, MultipleMessagesKeepOrder) {
  Net n(2, 2);
  n.mcs[0]->announce_selection(WarpTag{0, 0, 1}, 1);
  n.net->tick(0);
  n.mcs[0]->announce_selection(WarpTag{0, 0, 2}, 2);
  n.net->tick(1);
  for (Cycle c = 2; c < 6; ++c) n.net->tick(c);
  ASSERT_EQ(n.probes[1]->received.size(), 2u);
  EXPECT_EQ(n.probes[1]->received[0].first.tag.instr, 1u);
  EXPECT_EQ(n.probes[1]->received[1].first.tag.instr, 2u);
}

TEST(Coordination, NoTrafficNoMessages) {
  Net n(3, 2);
  for (Cycle c = 0; c < 100; ++c) n.net->tick(c);
  EXPECT_EQ(n.net->messages_sent(), 0u);
}

}  // namespace
}  // namespace latdiv
