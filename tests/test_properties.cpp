// Property-based sweeps: randomised traffic against module invariants.
// TEST_P over seeds gives independent trials; each trial asserts
// invariants that must hold for *every* legal input, not one scripted
// scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "dram/channel.hpp"
#include "dram/params.hpp"
#include "mc/controller.hpp"
#include "mc/policy_frfcfs.hpp"
#include "mc/policy_gmc.hpp"
#include "core/policy_wg.hpp"
#include "mem/address_map.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: a random-but-legal command stream never violates channel
// invariants — the channel's own assertions are armed, and the bus
// accounting can never exceed elapsed time.
TEST_P(SeededProperty, ChannelAcceptsAnyLegalCommandStream) {
  DramParams p;
  p.refresh_enabled = false;
  const DramTiming t = DramTiming::from(p);
  Channel ch(t);
  Rng rng(GetParam());

  Cycle now = 0;
  for (int step = 0; step < 20000; ++step) {
    ++now;
    // Propose a random command; issue only if legal.
    DramCommand cmd;
    const auto pick = rng.below(4);
    cmd.bank = static_cast<BankId>(rng.below(16));
    switch (pick) {
      case 0:
        cmd.cmd = DramCmd::kActivate;
        cmd.row = static_cast<RowId>(rng.below(64));
        break;
      case 1:
        cmd.cmd = DramCmd::kPrecharge;
        break;
      default:
        cmd.cmd = rng.chance(0.7) ? DramCmd::kRead : DramCmd::kWrite;
        cmd.row = ch.open_row(cmd.bank);
        if (cmd.row == kNoRow) continue;
        break;
    }
    if (ch.can_issue(cmd, now)) ch.issue(cmd, now);
    ch.on_cycle_end(now);
  }
  EXPECT_LE(ch.stats().data_bus_busy_cycles, now);
  EXPECT_LE(ch.stats().all_banks_idle_cycles, now);
  // Column accesses require an activate first, so every read/write maps
  // to some activate: acts >= 1 whenever cas happened.
  if (ch.stats().reads + ch.stats().writes > 0) {
    EXPECT_GE(ch.stats().activates, 1u);
  }
}

// Property: under any random request mix, a controller never loses or
// duplicates a request: reads in == read completions, writes in == write
// issues, across all policies under test.
template <typename MakePolicy>
void conservation_trial(std::uint64_t seed, MakePolicy make_policy) {
  DramParams p;
  p.refresh_enabled = false;
  const DramTiming t = DramTiming::from(p);

  std::vector<MemRequest> completed;
  MemoryController mc(0, McConfig{}, t, make_policy(t),
                      [&](const MemRequest& req, Cycle) {
                        completed.push_back(req);
                      });
  Rng rng(seed);
  std::uint64_t reads_in = 0;
  std::uint64_t writes_in = 0;
  std::set<WarpInstrUid> groups;

  Cycle now = 0;
  for (; now < 60000; ++now) {
    if (rng.chance(0.2)) {
      MemRequest r;
      const WarpInstrUid uid = 1 + rng.below(2000);
      r.kind = rng.chance(0.25) ? ReqKind::kWrite : ReqKind::kRead;
      r.loc.bank = static_cast<BankId>(rng.below(16));
      r.loc.bank_group = r.loc.bank / 4;
      r.loc.row = static_cast<RowId>(rng.below(32));
      r.loc.col = static_cast<std::uint32_t>(rng.below(16));
      r.tag.instr = r.kind == ReqKind::kRead ? uid : kNoWarpInstr;
      if (r.kind == ReqKind::kRead && mc.can_accept_read()) {
        mc.push(r, now);
        ++reads_in;
        // Mark the group complete immediately with some probability, or
        // after a delay via a second chance below.
        if (rng.chance(0.8)) {
          mc.notify_group_complete(r.tag, now);
          groups.insert(uid);
        }
      } else if (r.kind == ReqKind::kWrite && mc.can_accept_write()) {
        mc.push(r, now);
        ++writes_in;
      }
    }
    mc.tick(now);
  }
  // Drain: stop injecting, complete all groups, run long enough.
  for (Cycle end = now + 200000; now < end; ++now) {
    mc.tick(now);
    if (completed.size() == reads_in &&
        mc.stats().writes_served == writes_in) {
      break;
    }
  }
  EXPECT_EQ(completed.size(), reads_in);
  EXPECT_EQ(mc.stats().writes_served, writes_in);
}

TEST_P(SeededProperty, FrFcfsConservesRequests) {
  conservation_trial(GetParam(), [](const DramTiming&) {
    return std::make_unique<FrFcfsPolicy>();
  });
}

TEST_P(SeededProperty, GmcConservesRequests) {
  conservation_trial(GetParam(), [](const DramTiming&) {
    return std::make_unique<GmcPolicy>();
  });
}

TEST_P(SeededProperty, WgConservesRequests) {
  conservation_trial(GetParam(), [](const DramTiming& t) {
    WgConfig cfg;
    cfg.fallback_age = 2000;  // un-completed groups must still drain
    return std::make_unique<WgPolicy>(cfg, t);
  });
}

TEST_P(SeededProperty, WgBwConservesRequests) {
  conservation_trial(GetParam(), [](const DramTiming& t) {
    WgConfig cfg;
    cfg.multi_channel = true;
    cfg.merb = true;
    cfg.write_aware = true;
    cfg.fallback_age = 2000;
    return std::make_unique<WgPolicy>(cfg, t);
  });
}

// Property: the address map is a function (stable) and always in range,
// and flipping any single address bit keeps the decode in range.
TEST_P(SeededProperty, AddressMapTotalAndStable) {
  const AddressMap m{AddressMapConfig{}};
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Addr a = rng.next() & ((1ULL << 44) - 1);
    const DramLoc base = m.decode(a);
    EXPECT_EQ(base, m.decode(a));
    for (int bit = 0; bit < 44; bit += 7) {
      const DramLoc flipped = m.decode(a ^ (1ULL << bit));
      EXPECT_LT(flipped.channel, 6);
      EXPECT_LT(flipped.bank, 16);
    }
  }
}

// Property: end-to-end, the warp-aware family never deadlocks and always
// retires instructions on any workload/seed combination.
TEST_P(SeededProperty, EndToEndLivenessWgW) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.max_cycles = 12000;
  cfg.scheduler = SchedulerKind::kWgW;
  const auto suite = irregular_suite();
  cfg.workload = suite[GetParam() % suite.size()];
  cfg.seed = GetParam();
  const RunResult r = Simulator(cfg).run();
  EXPECT_GT(r.instructions, 50u) << cfg.workload.name;
  EXPECT_GT(r.tracker.loads_finalized, 0u);
}

}  // namespace
}  // namespace latdiv
