// SMARTS-style interval sampling (src/ckpt/sampler.*): accuracy bounds
// against straight-through detailed runs, strict determinism of the
// sampled estimates, and the config refusals.
//
// The tolerances here are pinned, not aspirational: they document the
// measured estimator quality on the shrunk test geometry, and a change
// that degrades them is a regression even if nothing crashes.  The
// full-size throughput/accuracy gate (>= 5x fewer detailed cycles, <= 2%
// geomean IPC error on >= 1M-cycle runs) lives in bench_throughput.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/sampler.hpp"
#include "ckpt/snapshot.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

SimConfig sampling_cfg(const std::string& scenario, Cycle max_cycles) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = SchedulerKind::kWgM;
  cfg.workload.name = scenario;
  cfg.instr_source = [scenario](std::uint32_t sms, std::uint32_t warps,
                                std::uint64_t s) {
    return scenario::make_scenario(scenario::scenario_by_name(scenario), sms,
                                   warps, s);
  };
  cfg.max_cycles = max_cycles;
  cfg.warmup_cycles = 0;
  // shrink_for_tests() enables the checkers; sampled mode teleports past
  // state they audit per-cycle, so it requires them (and the hub) off.
  cfg.check = CheckConfig{};
  cfg.obs = obs::ObsConfig{};
  return cfg;
}

ckpt::SamplingConfig test_schedule() {
  ckpt::SamplingConfig s;
  s.detail_cycles = 4'000;
  s.warm_cycles = 2'000;
  s.period_cycles = 24'000;
  return s;
}

/// |sampled - detailed| / detailed.
double rel_err(double sampled, double detailed) {
  return std::abs(sampled - detailed) / detailed;
}

// ---------------------------------------------------------------------------
// Accuracy: the sampled estimates track the detailed run within pinned
// bounds while simulating a quarter of the cycles in detail.

class SamplingAccuracy : public ::testing::TestWithParam<const char*> {};

TEST_P(SamplingAccuracy, IpcWithinPinnedBound) {
  const SimConfig cfg = sampling_cfg(GetParam(), 240'000);
  const RunResult detailed = Simulator(cfg).run();
  ASSERT_GT(detailed.ipc, 0.0);

  Simulator sim(cfg);
  ckpt::SampledRunner runner(sim, test_schedule());
  const ckpt::SampledResult sampled = runner.run();

  // 10 periods of 24k cycles, 6k detailed each: a 4x cycle reduction.
  EXPECT_EQ(sampled.windows.size(), 10u);
  EXPECT_EQ(sampled.detailed_cycles, 60'000u);
  EXPECT_EQ(sim.now(), cfg.max_cycles);

  // IPC is the headline estimate: relative bound.  The DRAM fractions
  // live in [0, 1] and sit near zero on low-locality kernels, where a
  // relative bound is meaningless — pin them absolutely instead.
  EXPECT_LE(rel_err(sampled.ipc, detailed.ipc), 0.03)
      << "ipc: sampled " << sampled.ipc << " vs detailed " << detailed.ipc;
  EXPECT_LE(std::abs(sampled.row_hit_rate - detailed.row_hit_rate), 0.02)
      << "row_hit_rate: sampled " << sampled.row_hit_rate << " vs detailed "
      << detailed.row_hit_rate;
  EXPECT_LE(
      std::abs(sampled.bandwidth_utilization - detailed.bandwidth_utilization),
      0.02)
      << "bandwidth: sampled " << sampled.bandwidth_utilization
      << " vs detailed " << detailed.bandwidth_utilization;
}

INSTANTIATE_TEST_SUITE_P(Scenarios, SamplingAccuracy,
                         ::testing::Values("powerlaw-rows", "pointer-chase",
                                           "threshold-compact"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Functional warming is what keeps the estimates honest across skips:
// with it disabled, source cursors freeze during each skip and the
// measured windows see a stream that lags simulated time.
TEST(SamplingWarming, WarmingDrawsInstructionsAndStaysDeterministic) {
  const SimConfig cfg = sampling_cfg("powerlaw-rows", 240'000);
  ckpt::SamplingConfig sched = test_schedule();

  Simulator warm_sim(cfg);
  ckpt::SampledRunner warm_runner(warm_sim, sched);
  const ckpt::SampledResult with_warm = warm_runner.run();
  EXPECT_GT(with_warm.warm_instructions, 0u);

  sched.functional_warming = false;
  Simulator cold_sim(cfg);
  ckpt::SampledRunner cold_runner(cold_sim, sched);
  const ckpt::SampledResult no_warm = cold_runner.run();
  EXPECT_EQ(no_warm.warm_instructions, 0u);
  EXPECT_GT(no_warm.ipc, 0.0);
}

// ---------------------------------------------------------------------------
// Determinism: the sampled path inherits the simulator's contract — same
// config, same estimates, bit for bit, every time.

TEST(SamplingDeterminism, RepeatRunsBitIdentical) {
  const SimConfig cfg = sampling_cfg("pointer-chase", 240'000);
  ckpt::SampledResult a, b;
  {
    Simulator sim(cfg);
    ckpt::SampledRunner runner(sim, test_schedule());
    a = runner.run();
  }
  {
    Simulator sim(cfg);
    ckpt::SampledRunner runner(sim, test_schedule());
    b = runner.run();
  }
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].instructions, b.windows[i].instructions);
    EXPECT_EQ(a.windows[i].dram_reads, b.windows[i].dram_reads);
    EXPECT_EQ(a.windows[i].dram_activates, b.windows[i].dram_activates);
  }
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.warm_instructions, b.warm_instructions);
}

// Sampling composes with snapshots: restore the same snapshot twice and
// sample the remainder — identical estimates (the exp fan-out relies on
// this to distribute windows across workers).
TEST(SamplingDeterminism, SampledResumeFromSnapshotBitIdentical) {
  const SimConfig cfg = sampling_cfg("powerlaw-rows", 240'000);
  std::vector<unsigned char> snap;
  {
    Simulator sim(cfg);
    sim.run_to(24'000);
    snap = ckpt::save_snapshot(sim);
  }
  ckpt::SampledResult a, b;
  for (ckpt::SampledResult* out : {&a, &b}) {
    Simulator sim(cfg);
    ckpt::load_snapshot(sim, snap.data(), snap.size());
    ckpt::SampledRunner runner(sim, test_schedule());
    *out = runner.run();
  }
  EXPECT_EQ(a.start, 24'000u);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.warm_instructions, b.warm_instructions);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].instructions, b.windows[i].instructions);
  }
}

// ---------------------------------------------------------------------------
// Fan-out: run_sampled with jobs > 1 snapshots once after the priming
// window and measures the remaining windows on a worker pool.  The whole
// point of freezing the rate estimator is that the answer must not depend
// on how many workers the host happens to have.

TEST(SamplingFanOut, ResultIndependentOfJobCount) {
  const SimConfig cfg = sampling_cfg("powerlaw-rows", 240'000);
  const ckpt::SamplingConfig sched = test_schedule();
  const ckpt::SampledResult two = ckpt::run_sampled(cfg, sched, 2);
  const ckpt::SampledResult six = ckpt::run_sampled(cfg, sched, 6);

  ASSERT_EQ(two.windows.size(), six.windows.size());
  for (std::size_t i = 0; i < two.windows.size(); ++i) {
    EXPECT_EQ(two.windows[i].start, six.windows[i].start);
    EXPECT_EQ(two.windows[i].instructions, six.windows[i].instructions);
    EXPECT_EQ(two.windows[i].dram_reads, six.windows[i].dram_reads);
    EXPECT_EQ(two.windows[i].dram_activates, six.windows[i].dram_activates);
  }
  EXPECT_EQ(two.ipc, six.ipc);
  EXPECT_EQ(two.instructions, six.instructions);
  EXPECT_EQ(two.warm_instructions, six.warm_instructions);
}

// The fan-out estimate differs from the sequential schedule only through
// the frozen rate estimator, so it must stay close to both the sequential
// sampled estimate and the detailed truth.
TEST(SamplingFanOut, TracksSequentialAndDetailed) {
  const SimConfig cfg = sampling_cfg("powerlaw-rows", 240'000);
  const ckpt::SamplingConfig sched = test_schedule();
  const RunResult detailed = Simulator(cfg).run();
  const ckpt::SampledResult seq = ckpt::run_sampled(cfg, sched, 1);
  const ckpt::SampledResult fan = ckpt::run_sampled(cfg, sched, 4);

  EXPECT_EQ(fan.windows.size(), seq.windows.size());
  EXPECT_EQ(fan.end, seq.end);
  EXPECT_LE(rel_err(fan.ipc, detailed.ipc), 0.03)
      << "fan-out ipc " << fan.ipc << " vs detailed " << detailed.ipc;
  EXPECT_LE(rel_err(fan.ipc, seq.ipc), 0.03)
      << "fan-out ipc " << fan.ipc << " vs sequential " << seq.ipc;
}

// jobs == 1 goes through the plain sequential runner; pin that the free
// function and a hand-driven SampledRunner agree exactly.
TEST(SamplingFanOut, SequentialPathMatchesRunner) {
  const SimConfig cfg = sampling_cfg("pointer-chase", 240'000);
  const ckpt::SamplingConfig sched = test_schedule();
  const ckpt::SampledResult free_fn = ckpt::run_sampled(cfg, sched, 1);
  Simulator sim(cfg);
  ckpt::SampledRunner runner(sim, sched);
  const ckpt::SampledResult direct = runner.run();
  EXPECT_EQ(free_fn.ipc, direct.ipc);
  EXPECT_EQ(free_fn.instructions, direct.instructions);
  EXPECT_EQ(free_fn.detailed_cycles, direct.detailed_cycles);
  ASSERT_EQ(free_fn.windows.size(), direct.windows.size());
}

// ---------------------------------------------------------------------------
// Refusals: invalid schedules and observing configurations fail fast.

TEST(SamplingErrors, RejectsBadSchedules) {
  const SimConfig cfg = sampling_cfg("pointer-chase", 100'000);
  Simulator sim(cfg);
  ckpt::SamplingConfig sched = test_schedule();
  sched.detail_cycles = 0;
  EXPECT_THROW(ckpt::SampledRunner(sim, sched), std::invalid_argument);
  sched = test_schedule();
  sched.period_cycles = sched.warm_cycles + sched.detail_cycles - 1;
  EXPECT_THROW(ckpt::SampledRunner(sim, sched), std::invalid_argument);
}

TEST(SamplingErrors, RejectsCheckersAndObs) {
  SimConfig cfg = sampling_cfg("pointer-chase", 100'000);
  cfg.check.protocol = true;
  {
    Simulator sim(cfg);
    EXPECT_THROW(ckpt::SampledRunner(sim, test_schedule()),
                 std::invalid_argument);
  }
  cfg.check.protocol = false;
  cfg.obs.timeseries = true;
  cfg.obs.sample_interval = 500;
  {
    Simulator sim(cfg);
    EXPECT_THROW(ckpt::SampledRunner(sim, test_schedule()),
                 std::invalid_argument);
  }
}

}  // namespace
}  // namespace latdiv
