#include "gpu/coalescer.hpp"

#include <gtest/gtest.h>

namespace latdiv {
namespace {

WarpInstr load_with(std::initializer_list<Addr> addrs) {
  WarpInstr instr;
  instr.kind = WarpInstr::Kind::kLoad;
  instr.active_lanes = static_cast<std::uint8_t>(addrs.size());
  std::size_t i = 0;
  for (Addr a : addrs) instr.lane_addr[i++] = a;
  return instr;
}

TEST(Coalescer, SingleLineForContiguousLanes) {
  Coalescer c;
  WarpInstr instr;
  instr.kind = WarpInstr::Kind::kLoad;
  instr.active_lanes = 32;
  for (std::uint32_t lane = 0; lane < 32; ++lane) {
    instr.lane_addr[lane] = 0x1000 + lane * 4;
  }
  std::vector<Addr> out;
  c.coalesce(instr, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0x1000u);
}

TEST(Coalescer, DistinctLinesPreserveFirstLaneOrder) {
  Coalescer c;
  std::vector<Addr> out;
  c.coalesce(load_with({0x500, 0x100, 0x300, 0x110}), out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0x500u);  // line of 0x500 (already aligned)
  EXPECT_EQ(out[1], 0x100u);  // line of 0x100 (0x110 merges into it)
  EXPECT_EQ(out[2], 0x300u);  // line of 0x300 (already aligned)
}

TEST(Coalescer, StraddlingLanesDeduplicate) {
  Coalescer c;
  std::vector<Addr> out;
  c.coalesce(load_with({0x80, 0x81, 0xFF, 0x80}), out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Coalescer, PartialWarpOnlyActiveLanes) {
  Coalescer c;
  WarpInstr instr = load_with({0x0, 0x1000});
  instr.active_lanes = 1;  // second lane inactive
  std::vector<Addr> out;
  c.coalesce(instr, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Coalescer, PerfectModeCollapsesToOneRequest) {
  Coalescer c(128, /*perfect=*/true);
  std::vector<Addr> out;
  c.coalesce(load_with({0x0, 0x1000, 0x2000, 0x3000}), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0x0u);
}

TEST(Coalescer, RecordAccumulatesLoadStats) {
  Coalescer c;
  c.record(WarpInstr::Kind::kLoad, 1);
  c.record(WarpInstr::Kind::kLoad, 5);
  c.record(WarpInstr::Kind::kLoad, 6);
  const CoalescerStats& s = c.stats();
  EXPECT_EQ(s.loads, 3u);
  EXPECT_EQ(s.divergent_loads, 2u);
  EXPECT_DOUBLE_EQ(s.requests_per_load(), 4.0);
  EXPECT_DOUBLE_EQ(s.divergent_frac(), 2.0 / 3.0);
}

TEST(Coalescer, RecordSeparatesStores) {
  Coalescer c;
  c.record(WarpInstr::Kind::kStore, 4);
  EXPECT_EQ(c.stats().loads, 0u);
  EXPECT_EQ(c.stats().stores, 1u);
  EXPECT_EQ(c.stats().store_requests, 4u);
}

TEST(Coalescer, CoalesceAloneDoesNotTouchStats) {
  Coalescer c;
  std::vector<Addr> out;
  c.coalesce(load_with({0x0, 0x1000}), out);
  c.coalesce(load_with({0x0, 0x1000}), out);
  EXPECT_EQ(c.stats().loads, 0u);
}

TEST(CoalescerDeath, ComputeInstructionAborts) {
  Coalescer c;
  WarpInstr instr;
  instr.kind = WarpInstr::Kind::kCompute;
  std::vector<Addr> out;
  EXPECT_DEATH(c.coalesce(instr, out), "compute");
}

}  // namespace
}  // namespace latdiv
