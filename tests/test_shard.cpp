// Parallel channel-sharded core (src/par) determinism contract: every
// artifact a run produces — RunResult metrics, the request-lifecycle
// trace, the sampled time-series — must be byte-identical at any shard
// count, with fast-forward on or off, whatever the worker-thread count.
// DESIGN.md "Parallel core & determinism contract" states the guarantee;
// this suite is its enforcement.
//
// Layers, strongest first:
//   * per-cycle differential: step() a sharded and a serial simulator in
//     lockstep over randomized workloads and compare a hash of the full
//     externally visible machine state after every cycle — divergence is
//     caught at the first cycle it appears, not at end of run;
//   * end-to-end byte identity: metrics_from + obs artifacts across
//     shards x fast-forward, including the coordination-heavy WG-W
//     scheduler whose cross-channel messages exercise the epoch merge;
//   * fallback behaviour: configurations that share scheduler state
//     across channels (ZLD) must silently run serial and still match.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "exp/executor.hpp"
#include "sim/simulator.hpp"

namespace latdiv {
namespace {

// The suite asserts exact shard counts (sim.shards() == 6), but the
// constructor falls back to the serial core when pick_worker_threads()
// sees a single-hardware-thread host.  Pin the thread budget pre-main so
// the assertions hold on any machine; a caller's explicit setting wins.
const int kPinShardThreads = [] {
  ::setenv("LATDIV_SHARD_THREADS", "6", /*overwrite=*/0);
  return 0;
}();

SimConfig small_cfg(SchedulerKind sched, const char* workload,
                    std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.shrink_for_tests();
  cfg.scheduler = sched;
  cfg.workload = profile_by_name(workload);
  cfg.seed = seed;
  return cfg;
}

/// FNV-1a over every externally visible counter the simulator exposes:
/// instruction counts, tracker occupancy, crossbar queues, per-channel
/// queue depths and DRAM command counters.  Any cross-shard ordering bug
/// perturbs at least one of these.
std::uint64_t state_hash(Simulator& sim) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(sim.now());
  mix(sim.tracker().inflight());
  for (std::size_t s = 0; s < sim.config().num_sms; ++s) {
    mix(sim.sm(s).stats().instructions);
    mix(sim.sm(s).warps_blocked_on_loads());
  }
  for (std::size_t p = 0; p < sim.config().icnt.partitions; ++p) {
    const MemoryController& mc = sim.partition(p).mc();
    mix(mc.read_queue().size());
    mix(mc.write_queue().size());
    mix(mc.commands_pending());
    mix(mc.inflight_reads());
    mix(mc.in_write_drain() ? 1 : 0);
    const ChannelStats& cs = mc.channel().stats();
    mix(cs.reads);
    mix(cs.writes);
    mix(cs.activates);
    mix(cs.precharges);
    mix(sim.partition(p).fills_pending());
    mix(sim.partition(p).stats().read_hits);
    mix(sim.partition(p).stats().read_misses);
  }
  return h;
}

/// Compare two finished runs on every reported metric plus the raw
/// counters the metric flattening rounds through doubles.
void expect_same_result(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(exp::metrics_from(a), exp::metrics_from(b));
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.dram_reads, b.dram_reads);
  EXPECT_EQ(a.dram_writes, b.dram_writes);
  EXPECT_EQ(a.dram_activates, b.dram_activates);
  EXPECT_EQ(a.coord_messages, b.coord_messages);
  EXPECT_EQ(a.sm_no_ready_warp_cycles, b.sm_no_ready_warp_cycles);
  EXPECT_EQ(a.wg_groups_selected, b.wg_groups_selected);
  EXPECT_EQ(a.wg_merb_deferrals, b.wg_merb_deferrals);
  ASSERT_EQ(a.bank_breakdown.size(), b.bank_breakdown.size());
  for (std::size_t c = 0; c < a.bank_breakdown.size(); ++c) {
    for (std::size_t bk = 0; bk < a.bank_breakdown[c].size(); ++bk) {
      EXPECT_EQ(a.bank_breakdown[c][bk].activates,
                b.bank_breakdown[c][bk].activates)
          << "channel " << c << " bank " << bk;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-cycle differential: the strongest form of the contract.

class ShardDifferential
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, std::uint64_t>> {
};

TEST_P(ShardDifferential, PerCycleStateHashMatchesSerial) {
  const auto [sched, seed] = GetParam();
  SimConfig cfg = small_cfg(sched, "bfs", seed);
  cfg.max_cycles = 4'000;  // differential stepping is per-cycle; keep short
  cfg.warmup_cycles = 400;

  SimConfig serial = cfg;
  serial.shards = 1;
  SimConfig sharded = cfg;
  sharded.shards = 6;

  Simulator a(serial);
  Simulator b(sharded);
  ASSERT_EQ(a.shards(), 1u);
  ASSERT_EQ(b.shards(), 6u);
  while (a.now() < serial.max_cycles) {
    a.step();
    b.step();
    ASSERT_EQ(state_hash(a), state_hash(b))
        << "state diverged at cycle " << a.now();
  }
  expect_same_result(a.run(), b.run());
}

INSTANTIATE_TEST_SUITE_P(
    Schedulers, ShardDifferential,
    ::testing::Combine(::testing::Values(SchedulerKind::kGmc,
                                         SchedulerKind::kWgM,
                                         SchedulerKind::kWgW),
                       ::testing::Values(1ull, 7ull, 42ull)),
    [](const auto& info) {
      std::string n = to_string(std::get<0>(info.param));
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n + "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// End-to-end byte identity across shard counts x fast-forward.

class ShardByteIdentity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>> {};

TEST_P(ShardByteIdentity, RunResultMatchesSerial) {
  const auto [shards, ff] = GetParam();
  SimConfig cfg = small_cfg(SchedulerKind::kWgW, "spmv");
  cfg.idle_fast_forward = ff;

  SimConfig serial = cfg;
  serial.shards = 1;
  const RunResult base = Simulator(serial).run();

  SimConfig sh = cfg;
  sh.shards = shards;
  Simulator sim(sh);
  EXPECT_EQ(sim.shards(), std::min(shards, cfg.icnt.partitions));
  expect_same_result(base, sim.run());
}

INSTANTIATE_TEST_SUITE_P(
    ShardsXFastForward, ShardByteIdentity,
    ::testing::Combine(::testing::Values(2u, 3u, 6u),
                       ::testing::Bool()),
    [](const auto& info) {
      return "shards" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_ff" : "_noff");
    });

TEST(ShardByteIdentityObs, TraceTimeseriesAndMetricsBytesMatch) {
  SimConfig cfg = small_cfg(SchedulerKind::kWgM, "bfs");
  cfg.obs.trace = true;
  cfg.obs.timeseries = true;
  cfg.obs.sample_interval = 250;

  std::string trace1, series1, metrics1;
  {
    SimConfig serial = cfg;
    serial.shards = 1;
    Simulator sim(serial);
    (void)sim.run();
    trace1 = sim.obs()->trace_json();
    series1 = sim.obs()->timeseries_csv();
    metrics1 = sim.obs()->metrics_json();
  }
  for (std::uint32_t shards : {2u, 6u}) {
    SimConfig sh = cfg;
    sh.shards = shards;
    Simulator sim(sh);
    (void)sim.run();
    EXPECT_EQ(trace1, sim.obs()->trace_json()) << "shards=" << shards;
    EXPECT_EQ(series1, sim.obs()->timeseries_csv()) << "shards=" << shards;
    EXPECT_EQ(metrics1, sim.obs()->metrics_json()) << "shards=" << shards;
  }
}

// Oversubscription clamps to the partition count instead of failing.
TEST(ShardConfig, ShardCountClampsToPartitions) {
  SimConfig cfg = small_cfg(SchedulerKind::kGmc, "bfs");
  cfg.shards = 64;
  Simulator sim(cfg);
  EXPECT_EQ(sim.shards(), cfg.icnt.partitions);
  SimConfig serial = cfg;
  serial.shards = 1;
  expect_same_result(Simulator(serial).run(), sim.run());
}

// ---------------------------------------------------------------------------
// Serial fallbacks: shared-state configurations must not shard, and must
// still produce the canonical result.

TEST(ShardFallback, ZldSharesACoordinatorSoRunsSerial) {
  SimConfig cfg = small_cfg(SchedulerKind::kZld, "bfs");
  cfg.shards = 6;
  Simulator sim(cfg);
  EXPECT_EQ(sim.shards(), 1u);
  SimConfig serial = cfg;
  serial.shards = 1;
  expect_same_result(Simulator(serial).run(), sim.run());
}

// A one-thread budget (single-core host, or LATDIV_SHARD_THREADS=1) must
// bypass the whole WorkerPool/epoch apparatus — shards() reports 1 even
// though the config asked for 6 — and the bypass must be invisible in
// the results.
TEST(ShardFallback, OneThreadBudgetBypassesEpochMachinery) {
  SimConfig cfg = small_cfg(SchedulerKind::kWgW, "spmv");
  cfg.shards = 6;

  ::setenv("LATDIV_SHARD_THREADS", "1", /*overwrite=*/1);
  Simulator serial(cfg);
  EXPECT_EQ(serial.shards(), 1u);
  EXPECT_EQ(serial.shard_worker_threads(), 0u);

  ::setenv("LATDIV_SHARD_THREADS", "6", /*overwrite=*/1);
  Simulator sharded(cfg);
  EXPECT_EQ(sharded.shards(), 6u);

  expect_same_result(serial.run(), sharded.run());
}

TEST(ShardFallback, ShortCoordinationLatencyRunsSerial) {
  SimConfig cfg = small_cfg(SchedulerKind::kWgM, "bfs");
  cfg.shards = 6;
  cfg.coordination_latency = 1;  // < core_clock_ratio: epoch precondition fails
  Simulator sim(cfg);
  EXPECT_EQ(sim.shards(), 1u);
  SimConfig serial = cfg;
  serial.shards = 1;
  expect_same_result(Simulator(serial).run(), sim.run());
}

// ---------------------------------------------------------------------------
// Arena: queue churn must reach a steady state, not grow slabs forever.

TEST(ShardArenaUse, SlabCountReachesSteadyState) {
  SimConfig cfg = small_cfg(SchedulerKind::kGmc, "spmv");
  cfg.shards = 6;
  cfg.max_cycles = 16'000;
  Simulator sim(cfg);
  while (sim.now() < 8'000) sim.step();
  std::vector<std::size_t> at_half;
  for (std::size_t p = 0; p < cfg.icnt.partitions; ++p) {
    at_half.push_back(sim.partition(p).arena_slabs());
    EXPECT_GE(at_half.back(), 1u) << "arena unused by partition " << p;
  }
  while (sim.now() < cfg.max_cycles) sim.step();
  for (std::size_t p = 0; p < cfg.icnt.partitions; ++p) {
    EXPECT_EQ(sim.partition(p).arena_slabs(), at_half[p])
        << "slabs still growing in steady state (free lists not recycling)";
  }
}

}  // namespace
}  // namespace latdiv
