// latdiv-lint — rule catalogue.
//
// Rules run over the pooled FileModels of every analyzed file, so type
// information crosses file boundaries (a member declared in a header is
// recognized when iterated in any .cpp).  Each finding carries a stable
// rule id; `// lint: <rule>-ok` on the finding's line or the line above
// suppresses it (`// lint: order-independent` is the legacy spelling for
// `unordered-iter-ok`).  Suppressions that suppress nothing are themselves
// findings (`unused-suppression`).
//
// Families and ids:
//   determinism:     wall-clock, unseeded-rng, unordered-iter,
//                    pointer-key, float-accum
//   observer-purity: observer-purity
//   shard-safety:    mutable-static, shard-boundary
//   meta:            unused-suppression
#pragma once

#include <vector>

#include "lint_model.hpp"

namespace latdiv::lint {

/// All rule ids, in reporting order.
const std::vector<std::string>& rule_ids();

/// Run every rule over `files` (mutates suppression bookkeeping in place)
/// and return the unsuppressed findings, sorted by file/line/rule.
std::vector<Finding> run_rules(std::vector<FileModel>& files);

}  // namespace latdiv::lint
