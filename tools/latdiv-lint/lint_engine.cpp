#include "lint_engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint_lexer.hpp"
#include "lint_parser.hpp"
#include "lint_rules.hpp"

namespace latdiv::lint {
namespace {

namespace fs = std::filesystem;

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

LintResult run_lint(const std::vector<std::string>& paths) {
  LintResult result;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && is_source_file(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) result.errors.push_back(p + ": " + ec.message());
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      result.errors.push_back(p + ": not a file or directory");
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      result.errors.push_back(path + ": unreadable");
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    FileModel m;
    m.path = path;
    const std::string text = buf.str();
    lex(text, m);
    collect_suppressions(m);
    parse(m);
    models.push_back(std::move(m));
  }
  result.files_analyzed = models.size();
  result.findings = run_rules(models);
  for (const FileModel& m : models) {
    for (const Suppression& s : m.sups) {
      if (s.used) ++result.suppressions_used;
    }
  }
  return result;
}

std::string to_text(const LintResult& r) {
  std::ostringstream out;
  for (const std::string& e : r.errors) out << "latdiv-lint: error: " << e << "\n";
  for (const Finding& f : r.findings) {
    out << f.file << ":" << f.line << ": " << f.rule << ": " << f.message
        << "\n";
  }
  return out.str();
}

std::string to_json(const LintResult& r) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"latdiv-lint\",\n  \"version\": 1,\n";
  out << "  \"files_analyzed\": " << r.files_analyzed << ",\n";
  out << "  \"suppressions_used\": " << r.suppressions_used << ",\n";
  out << "  \"finding_count\": " << r.findings.size() << ",\n";
  out << "  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
        << f.line << ", \"rule\": \"" << json_escape(f.rule)
        << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (r.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

}  // namespace latdiv::lint
