#include "lint_rules.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace latdiv::lint {
namespace {

// Classes whose fields the shard-safety rule audits: the boundary set for
// the channel-sharded core (src/par; ROADMAP item 1).  Fields of these
// classes that hold pointers, references, or callbacks are the escape
// hatches through which cross-shard sharing can happen, so each must be
// classified with LATDIV_GUARDED_BY(...) or LATDIV_SHARD_LOCAL — this is
// enforcement now that the threaded core exists, not pre-threading
// classification.  Classes declared in files under src/par/ are audited
// unconditionally (see is_par_file), whatever their name.
const std::set<std::string> kShardClasses = {
    "MemoryController", "Channel",     "Crossbar",
    "Partition",        "Simulator",   "ShardEngine",
    "ShardEffectBuffer", "WorkerPool", "ShardArena",
    "ArenaAllocator"};

// Simulation-state types observers may only see through const: seeded with
// the core component classes, extended with every class discovered outside
// src/obs and src/check.
const std::set<std::string> kSimStateSeed = {
    "MemoryController", "Channel",  "Crossbar",    "Partition",
    "Sm",               "Simulator", "InstrTracker", "MshrFile",
    "CoordinationNetwork", "BoundedQueue", "MemRequest", "MemResponse",
};

bool path_contains(const std::string& path, const char* dir) {
  return path.find(dir) != std::string::npos;
}

bool is_observer_file(const std::string& path) {
  return path_contains(path, "/obs/") || path_contains(path, "/check/") ||
         path.rfind("obs/", 0) == 0 || path.rfind("check/", 0) == 0;
}

/// Everything under src/par/ is inside the parallel core: every class
/// there is on the shard boundary by construction.
bool is_par_file(const std::string& path) {
  return path_contains(path, "/par/") || path.rfind("par/", 0) == 0;
}

std::vector<std::string> split_tokens(const std::string& type) {
  std::vector<std::string> out;
  std::istringstream in(type);
  std::string t;
  while (in >> t) out.push_back(t);
  return out;
}

/// Render a space-joined token type compactly for messages.
std::string pretty_type(const std::string& type) {
  std::vector<std::string> toks = split_tokens(type);
  std::string out;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i];
    const bool tight = t == "::" || t == "<" || t == ">" || t == "," ||
                       t == "*" || t == "&";
    const bool prev_tight =
        i > 0 && (toks[i - 1] == "::" || toks[i - 1] == "<" ||
                  toks[i - 1] == ",");
    if (!out.empty() && !tight && !prev_tight) out += ' ';
    if (t == ",") {
      out += ", ";
      continue;
    }
    out += t;
  }
  return out;
}

/// One-level alias expansion: replace any token that names an alias with
/// the alias's definition (enough for `using ResponseFn = std::function<…>`
/// style indirection; deliberately not recursive to stay cycle-proof).
std::string expand_aliases(const std::string& type,
                           const std::map<std::string, std::string>& aliases) {
  std::vector<std::string> toks = split_tokens(type);
  std::string out;
  for (const std::string& t : toks) {
    auto it = aliases.find(t);
    if (!out.empty()) out += ' ';
    out += (it != aliases.end()) ? it->second : t;
  }
  return out;
}

bool contains_token(const std::string& type, const std::string& needle) {
  for (const std::string& t : split_tokens(type)) {
    if (t == needle) return true;
  }
  return false;
}

bool is_unordered_type(const std::string& expanded) {
  return contains_token(expanded, "unordered_map") ||
         contains_token(expanded, "unordered_set");
}

bool is_float_type(const std::string& expanded) {
  std::vector<std::string> toks = split_tokens(expanded);
  std::erase_if(toks, [](const std::string& t) {
    return t == "const" || t == "&" || t == "&&" || t == "constexpr" ||
           t == "volatile";
  });
  return toks.size() == 1 && (toks[0] == "float" || toks[0] == "double");
}

// --- pooled symbol tables ------------------------------------------------

struct Tables {
  std::map<std::string, std::string> aliases;  // merged across files
  std::set<std::string> unordered_vars;
  std::map<std::string, const VarDecl*> unordered_decl;  // exemplar per name
  std::set<std::string> unordered_funcs;  // accessors returning unordered
  std::set<std::string> float_vars;
  std::set<std::string> simstate;
};

Tables build_tables(const std::vector<FileModel>& files) {
  Tables tb;
  tb.simstate = kSimStateSeed;
  for (const FileModel& f : files) {
    for (const auto& [name, type] : f.aliases) tb.aliases[name] = type;
    if (!is_observer_file(f.path)) {
      for (const std::string& c : f.classes) tb.simstate.insert(c);
    }
  }
  for (const FileModel& f : files) {
    for (const VarDecl& v : f.vars) {
      const std::string t = expand_aliases(v.type, tb.aliases);
      if (is_unordered_type(t)) {
        tb.unordered_vars.insert(v.name);
        tb.unordered_decl.emplace(v.name, &v);
      }
      if (is_float_type(t)) tb.float_vars.insert(v.name);
    }
    for (const FuncDecl& fn : f.funcs) {
      const std::string rt = expand_aliases(fn.return_type, tb.aliases);
      if (is_unordered_type(rt)) tb.unordered_funcs.insert(fn.name);
    }
  }
  return tb;
}

// --- suppression bookkeeping ---------------------------------------------

class SupIndex {
 public:
  explicit SupIndex(FileModel& f) {
    for (Suppression& s : f.sups) {
      by_line_[s.line].push_back(&s);
    }
  }

  /// True (and marks the suppression used) if `rule` is suppressed at
  /// `line` — directive on the same line or the line above.
  bool suppressed(const std::string& rule, int line) {
    for (int l : {line, line - 1}) {
      auto it = by_line_.find(l);
      if (it == by_line_.end()) continue;
      for (Suppression* s : it->second) {
        if (s->rule == rule) {
          s->used = true;
          return true;
        }
      }
    }
    return false;
  }

 private:
  std::map<int, std::vector<Suppression*>> by_line_;
};

// --- per-file rule passes -------------------------------------------------

class Checker {
 public:
  Checker(FileModel& f, const Tables& tb, std::vector<Finding>& out)
      : f_(f), tb_(tb), out_(out), sups_(f) {}

  void run() {
    wall_clock();
    unseeded_rng();
    unordered_iter_and_float_accum();
    pointer_key();
    if (is_observer_file(f_.path)) observer_purity();
    mutable_static();
    shard_boundary();
  }

 private:
  FileModel& f_;
  const Tables& tb_;
  std::vector<Finding>& out_;
  SupIndex sups_;

  void emit(const std::string& rule, int line, std::string message) {
    if (sups_.suppressed(rule, line)) return;
    out_.push_back(Finding{f_.path, line, rule, std::move(message)});
  }

  const std::string& tok(std::size_t k) const {
    static const std::string kEmpty;
    return k < f_.tokens.size() ? f_.tokens[k].text : kEmpty;
  }
  bool is_ident(std::size_t k) const {
    return k < f_.tokens.size() &&
           f_.tokens[k].kind == Token::Kind::kIdent;
  }

  /// Member access / qualification guard for C-library calls: `x.time(`
  /// and `foo::time(` are not the libc function, but `std::time(` and a
  /// bare `time(` are.
  bool is_free_call(std::size_t k) const {
    if (k == 0) return true;
    const std::string& prev = tok(k - 1);
    if (prev == "." || prev == "->") return false;
    if (prev == "::") return k >= 2 && tok(k - 2) == "std";
    return true;
  }

  void wall_clock() {
    static const std::set<std::string> kClocks = {
        "system_clock", "steady_clock", "high_resolution_clock"};
    static const std::set<std::string> kCalls = {
        "gettimeofday", "clock_gettime", "timespec_get", "localtime",
        "gmtime"};
    for (std::size_t k = 0; k < f_.tokens.size(); ++k) {
      if (!is_ident(k)) continue;
      const std::string& s = tok(k);
      if (kClocks.count(s) != 0) {
        emit("wall-clock", f_.tokens[k].line,
             "std::chrono::" + s +
                 " reads wall-clock time; simulator state must depend only "
                 "on simulated cycles (measurement-only uses: `// lint: "
                 "wall-clock-ok`)");
      } else if (kCalls.count(s) != 0 && tok(k + 1) == "(") {
        emit("wall-clock", f_.tokens[k].line,
             s + "() reads wall-clock time; banned in the simulator");
      } else if ((s == "time" || s == "clock") && tok(k + 1) == "(" &&
                 is_free_call(k)) {
        emit("wall-clock", f_.tokens[k].line,
             s + "() reads wall-clock time; banned in the simulator");
      }
    }
  }

  void unseeded_rng() {
    static const std::set<std::string> kCalls = {"rand", "srand", "rand_r",
                                                 "drand48", "lrand48"};
    for (std::size_t k = 0; k < f_.tokens.size(); ++k) {
      if (!is_ident(k)) continue;
      const std::string& s = tok(k);
      if (s == "random_device") {
        emit("unseeded-rng", f_.tokens[k].line,
             "std::random_device is unseeded; all randomness must flow "
             "through the seeded Rng in common/rng.hpp");
      } else if (kCalls.count(s) != 0 && tok(k + 1) == "(" &&
                 is_free_call(k)) {
        emit("unseeded-rng", f_.tokens[k].line,
             s + "() is unseeded global randomness; use the seeded Rng in "
                 "common/rng.hpp");
      }
    }
  }

  void unordered_iter_and_float_accum() {
    for (const LoopSite& loop : f_.loops) {
      bool unordered = false;
      std::string origin;
      if (loop.iter_is_call) {
        if (tb_.unordered_funcs.count(loop.iter_name) != 0) {
          unordered = true;
          origin = loop.iter_name + "() returns an unordered container";
        }
      } else if (tb_.unordered_vars.count(loop.iter_name) != 0) {
        unordered = true;
        auto it = tb_.unordered_decl.find(loop.iter_name);
        origin = "'" + loop.iter_name + "' is declared " +
                 (it != tb_.unordered_decl.end()
                      ? pretty_type(it->second->type) + " (" +
                            it->second->file + ":" +
                            std::to_string(it->second->line) + ")"
                      : "unordered");
      }
      if (!unordered) continue;
      emit("unordered-iter", loop.line,
           "iteration over unordered container: " + origin +
               "; iteration order depends on hashing salt and pointer "
               "values (aggregation-only loops: `// lint: "
               "order-independent`)");
      // Float accumulation inside the loop body is order-dependent even
      // when the loop itself is vouched order-independent — floating-point
      // addition does not commute across reorderings.
      for (std::size_t k = loop.body_begin;
           k < loop.body_end && k < f_.tokens.size(); ++k) {
        const std::string& s = tok(k);
        if (s != "+=" && s != "-=" && s != "*=" && s != "/=") continue;
        if (k == 0 || !is_ident(k - 1)) continue;
        const std::string& lhs = tok(k - 1);
        if (tb_.float_vars.count(lhs) == 0) continue;
        emit("float-accum", f_.tokens[k].line,
             "float accumulation into '" + lhs +
                 "' inside a loop over unordered container '" +
                 loop.iter_name +
                 "'; result depends on iteration order (justified: `// "
                 "lint: float-accum-ok`)");
      }
    }
  }

  void pointer_key() {
    for (const VarDecl& v : f_.vars) {
      const std::string expanded = expand_aliases(v.type, tb_.aliases);
      std::vector<std::string> toks = split_tokens(expanded);
      for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
        if ((toks[k] != "map" && toks[k] != "set") || toks[k + 1] != "<") {
          continue;
        }
        // First top-level template argument.
        int depth = 0;
        bool ptr = false;
        for (std::size_t j = k + 1; j < toks.size(); ++j) {
          if (toks[j] == "<") ++depth;
          else if (toks[j] == ">") {
            if (--depth == 0) break;
          } else if (toks[j] == "," && depth == 1) {
            break;
          } else if (toks[j] == "*" && depth == 1) {
            ptr = true;
          }
        }
        if (ptr) {
          emit("pointer-key", v.line,
               "ordered container '" + v.name +
                   "' is keyed by a pointer; pointer order is allocation "
                   "order, which is nondeterministic across runs "
                   "(justified: `// lint: pointer-key-ok`)");
        }
      }
    }
  }

  void observer_purity() {
    for (const FuncDecl& fn : f_.funcs) {
      for (const Param& p : fn.params) {
        const std::string expanded = expand_aliases(p.type, tb_.aliases);
        if (contains_token(expanded, "const")) continue;
        const bool by_ref = contains_token(expanded, "&") ||
                            contains_token(expanded, "&&") ||
                            contains_token(expanded, "*");
        if (!by_ref) continue;
        bool sim_state = false;
        std::string which;
        for (const std::string& t : split_tokens(expanded)) {
          if (tb_.simstate.count(t) != 0) {
            sim_state = true;
            which = t;
            break;
          }
        }
        if (!sim_state) continue;
        emit("observer-purity", fn.line,
             "observer entry point '" + fn.name +
                 "' takes mutable simulation state (" + which +
                 "); code under src/obs and src/check may only take const "
                 "references (justified: `// lint: observer-purity-ok`)");
      }
    }
  }

  void mutable_static() {
    for (const VarDecl& v : f_.vars) {
      if (!v.is_static || v.is_const || v.annotated) continue;
      emit("mutable-static", v.line,
           "mutable static '" + v.name +
               "' is cross-shard shared state; annotate with "
               "LATDIV_GUARDED_BY(lock) or LATDIV_SHARD_LOCAL "
               "(common/annotations.hpp), or make it const");
    }
  }

  void shard_boundary() {
    for (const VarDecl& v : f_.vars) {
      if (!v.is_member || v.annotated) continue;
      if (kShardClasses.count(v.klass) == 0 && !is_par_file(v.file)) {
        continue;
      }
      const std::string expanded = expand_aliases(v.type, tb_.aliases);
      if (expanded.find("unique_ptr") != std::string::npos) continue;
      if (contains_token(expanded, "char")) continue;  // const char* names
      // A const-qualified reference/pointer is immutable shared state —
      // safe to read from any shard without classification.
      if (contains_token(expanded, "const")) continue;
      const bool escape = contains_token(expanded, "*") ||
                          contains_token(expanded, "&") ||
                          contains_token(expanded, "function");
      if (!escape) continue;
      emit("shard-boundary", v.line,
           "field '" + v.klass + "::" + v.name +
               "' holds a pointer/reference/callback across the "
               "channel-shard boundary (src/par runs partitions on worker "
               "threads); annotate with LATDIV_GUARDED_BY(lock) or "
               "LATDIV_SHARD_LOCAL (common/annotations.hpp), or justify "
               "with `// lint: shard-boundary-ok`");
    }
  }
};

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      "wall-clock",     "unseeded-rng",  "unordered-iter",
      "pointer-key",    "float-accum",   "observer-purity",
      "mutable-static", "shard-boundary", "unused-suppression",
  };
  return kIds;
}

std::vector<Finding> run_rules(std::vector<FileModel>& files) {
  Tables tb = build_tables(files);
  std::vector<Finding> out;
  for (FileModel& f : files) {
    Checker(f, tb, out).run();
  }
  // Unused (or unknown) suppressions are findings themselves: a
  // suppression that suppresses nothing is stale and hides intent.
  for (FileModel& f : files) {
    for (const Suppression& s : f.sups) {
      if (s.used) continue;
      if (s.rule.empty()) {
        out.push_back(Finding{
            f.path, s.line, "unused-suppression",
            "unknown lint directive '" + s.directive +
                "'; expected `<rule>-ok` or `order-independent`"});
      } else {
        out.push_back(Finding{
            f.path, s.line, "unused-suppression",
            "suppression '" + s.directive +
                "' suppresses nothing on this or the next line; remove it"});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.file == b.file && a.line == b.line &&
                                 a.rule == b.rule;
                        }),
            out.end());
  return out;
}

}  // namespace latdiv::lint
