#include "lint_lexer.hpp"

#include <cctype>
#include <cstddef>

namespace latdiv::lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Two-character punctuators worth keeping whole.  Deliberately absent:
// ">>" (template closers) and "<<" (so "<" always opens a template when
// the parser balances angle brackets).
constexpr std::string_view kTwoCharPuncts[] = {
    "::", "->", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "[[", "]]",
};

}  // namespace

void lex(std::string_view s, FileModel& out) {
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto push = [&](Token::Kind k, std::string text, int ln) {
    out.tokens.push_back(Token{k, std::move(text), ln});
  };

  while (i < s.size()) {
    char c = s[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < s.size()) {
        if (s[i] == '\\' && i + 1 < s.size() && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t j = i + 2;
      while (j < s.size() && s[j] != '\n') ++j;
      out.comments.push_back(Comment{line, std::string(s.substr(i + 2, j - i - 2))});
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < s.size() && !(s[j] == '*' && s[j + 1] == '/')) {
        if (s[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(
          Comment{start_line, std::string(s.substr(i + 2, j - i - 2))});
      i = (j + 1 < s.size()) ? j + 2 : s.size();
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < s.size() && s[j] != '(') delim += s[j++];
      std::string closer = ")" + delim + "\"";
      std::size_t end = s.find(closer, j);
      if (end == std::string_view::npos) end = s.size();
      for (std::size_t k = i; k < end && k < s.size(); ++k) {
        if (s[k] == '\n') ++line;
      }
      push(Token::Kind::kString, "<raw-string>", line);
      i = (end == s.size()) ? end : end + closer.size();
      continue;
    }
    // String literal.
    if (c == '"') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '"') {
        if (s[j] == '\\' && j + 1 < s.size()) ++j;
        ++j;
      }
      push(Token::Kind::kString, "<string>", line);
      i = (j < s.size()) ? j + 1 : j;
      continue;
    }
    // Char literal (only when it cannot be a digit separator context;
    // identifiers/numbers are consumed before we ever see their ').
    if (c == '\'') {
      std::size_t j = i + 1;
      while (j < s.size() && s[j] != '\'') {
        if (s[j] == '\\' && j + 1 < s.size()) ++j;
        ++j;
      }
      push(Token::Kind::kChar, "<char>", line);
      i = (j < s.size()) ? j + 1 : j;
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < s.size() && ident_char(s[j])) ++j;
      push(Token::Kind::kIdent, std::string(s.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Number (accepts digit separators, suffixes, hex, floats).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < s.size() &&
             (ident_char(s[j]) || s[j] == '.' || s[j] == '\'' ||
              ((s[j] == '+' || s[j] == '-') && j > i &&
               (s[j - 1] == 'e' || s[j - 1] == 'E' || s[j - 1] == 'p' ||
                s[j - 1] == 'P')))) {
        ++j;
      }
      push(Token::Kind::kNumber, std::string(s.substr(i, j - i)), line);
      i = j;
      continue;
    }
    // Punctuation: try two-char forms first.
    if (i + 1 < s.size()) {
      std::string_view two = s.substr(i, 2);
      bool matched = false;
      for (std::string_view p : kTwoCharPuncts) {
        if (two == p) {
          push(Token::Kind::kPunct, std::string(two), line);
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) continue;
    }
    push(Token::Kind::kPunct, std::string(1, c), line);
    ++i;
  }
}

void collect_suppressions(FileModel& out) {
  for (const Comment& c : out.comments) {
    std::size_t pos = c.text.find("lint:");
    if (pos == std::string::npos) continue;
    std::size_t j = pos + 5;
    // Directives: comma-separated kebab-case words after "lint:".
    while (j < c.text.size()) {
      while (j < c.text.size() &&
             (c.text[j] == ' ' || c.text[j] == '\t' || c.text[j] == ',')) {
        ++j;
      }
      std::size_t k = j;
      while (k < c.text.size() &&
             (std::isalnum(static_cast<unsigned char>(c.text[k])) ||
              c.text[k] == '-')) {
        ++k;
      }
      if (k == j) break;
      std::string word = c.text.substr(j, k - j);
      j = k;
      // Only the first directive group is parsed; trailing prose after a
      // space that is not a directive ends the list.
      Suppression sup;
      sup.line = c.line;
      sup.directive = word;
      if (word == "order-independent") {
        sup.rule = "unordered-iter";
      } else if (word.size() > 3 && word.ends_with("-ok")) {
        sup.rule = word.substr(0, word.size() - 3);
      } else {
        sup.rule = "";  // unknown directive; reported by unused-suppression
      }
      out.sups.push_back(std::move(sup));
      break;  // one directive per comment (matches tools/lint.sh behavior)
    }
  }
}

}  // namespace latdiv::lint
