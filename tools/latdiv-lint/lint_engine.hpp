// latdiv-lint — analysis driver.
//
// Expands the given paths (files, or directories searched recursively for
// *.hpp / *.cpp), lexes and parses each file, pools the models, and runs
// the rule catalogue.  Exposed as a library so the fixture tests and the
// repo self-check run the analyzer in-process.
#pragma once

#include <string>
#include <vector>

#include "lint_model.hpp"

namespace latdiv::lint {

struct LintResult {
  std::vector<Finding> findings;
  std::size_t files_analyzed = 0;
  std::size_t suppressions_used = 0;
  std::vector<std::string> errors;  ///< unreadable paths etc.
};

/// Analyze every .hpp/.cpp reachable from `paths` (sorted, deduplicated —
/// the result is independent of argument order and filesystem enumeration
/// order; the linter holds itself to its own determinism contract).
LintResult run_lint(const std::vector<std::string>& paths);

/// `file:line: rule: message` lines, one per finding.
std::string to_text(const LintResult& r);

/// Machine-readable report (CI artifact).
std::string to_json(const LintResult& r);

}  // namespace latdiv::lint
