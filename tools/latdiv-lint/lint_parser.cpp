#include "lint_parser.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace latdiv::lint {
namespace {

bool is_annotation_macro(const std::string& t) {
  return t.rfind("LATDIV_GUARDED_BY", 0) == 0 ||
         t.rfind("LATDIV_PT_GUARDED_BY", 0) == 0 ||
         t == "LATDIV_SHARD_LOCAL";
}

// Modifier tokens stripped from declaration heads.
bool is_decl_modifier(const std::string& t) {
  return t == "virtual" || t == "inline" || t == "explicit" ||
         t == "mutable" || t == "extern" || t == "register" ||
         t == "typename" || t == "struct" || t == "class" || t == "final" ||
         t == "consteval" || t == "constinit";
}

// First tokens that may lead a *local* declaration (function scope only;
// class/namespace scope accepts any identifier).  Keeps expression
// statements from being misread as declarations.
bool is_type_lead(const std::string& t) {
  return t == "const" || t == "static" || t == "constexpr" ||
         t == "thread_local" || t == "auto" || t == "float" ||
         t == "double" || t == "unsigned" || t == "signed" || t == "long" ||
         t == "short" || t == "bool" || t == "int" || t == "char" ||
         t == "std";
}

class Parser {
 public:
  explicit Parser(FileModel& m) : m_(m), t_(m.tokens), n_(m.tokens.size()) {}

  void run() {
    while (i_ < n_) step();
  }

 private:
  struct Scope {
    enum class Kind { kNamespace, kClass, kFunction, kBlock };
    Kind kind;
    std::string name;
  };

  FileModel& m_;
  const std::vector<Token>& t_;
  std::size_t n_;
  std::size_t i_ = 0;
  std::vector<Scope> scopes_;

  // --- token helpers -----------------------------------------------------
  const std::string& tok(std::size_t k) const {
    static const std::string kEmpty;
    return k < n_ ? t_[k].text : kEmpty;
  }
  bool is_ident(std::size_t k) const {
    return k < n_ && t_[k].kind == Token::Kind::kIdent;
  }
  int line(std::size_t k) const { return k < n_ ? t_[k].line : 0; }

  /// Innermost class scope name ("" if none).
  std::string current_class() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return it->name;
      if (it->kind == Scope::Kind::kFunction) break;
    }
    return {};
  }
  bool at_type_scope() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass ||
          it->kind == Scope::Kind::kNamespace) {
        return true;
      }
      if (it->kind == Scope::Kind::kFunction ||
          it->kind == Scope::Kind::kBlock) {
        return false;
      }
    }
    return true;  // file scope
  }

  /// Index just past the group opened by the bracket at `k` (which must be
  /// "(", "{", or "["); angle brackets are balanced alongside so templates
  /// containing parens do not desynchronize.
  std::size_t skip_group(std::size_t k) const {
    const std::string& open = tok(k);
    const std::string close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    while (k < n_) {
      const std::string& s = tok(k);
      if (s == open) {
        ++depth;
      } else if (s == close) {
        if (--depth == 0) return k + 1;
      }
      ++k;
    }
    return n_;
  }

  /// Skip a balanced template argument list starting at "<".
  std::size_t skip_angles(std::size_t k) const {
    int depth = 0;
    while (k < n_) {
      const std::string& s = tok(k);
      if (s == "<") {
        ++depth;
      } else if (s == ">") {
        if (--depth == 0) return k + 1;
      } else if (s == ";" || s == "{") {
        return k;  // not a template after all; bail out
      }
      ++k;
    }
    return n_;
  }

  std::size_t skip_to_semi(std::size_t k) const {
    while (k < n_) {
      const std::string& s = tok(k);
      if (s == ";") return k + 1;
      if (s == "(" || s == "{" || s == "[") {
        k = skip_group(k);
        continue;
      }
      if (s == "}") return k;  // malformed; stop at scope close
      ++k;
    }
    return n_;
  }

  // --- grammar fragments -------------------------------------------------
  void step() {
    const std::string& s = tok(i_);
    if (s == "namespace") {
      parse_namespace();
    } else if ((s == "class" || s == "struct") && tok(i_ - 1) != "enum") {
      parse_class();
    } else if (s == "enum") {
      parse_enum();
    } else if (s == "using") {
      parse_using();
    } else if (s == "typedef") {
      parse_typedef();
    } else if (s == "template") {
      ++i_;
      if (tok(i_) == "<") i_ = skip_angles(i_);
    } else if (s == "friend") {
      skip_friend();
    } else if (s == "for") {
      parse_for();
    } else if ((s == "public" || s == "private" || s == "protected") &&
               tok(i_ + 1) == ":") {
      i_ += 2;
    } else if (s == "{") {
      scopes_.push_back({Scope::Kind::kBlock, ""});
      ++i_;
    } else if (s == "}") {
      if (!scopes_.empty()) scopes_.pop_back();
      ++i_;
    } else if (s == "~") {
      skip_destructor();
    } else if (s == ";") {
      ++i_;
    } else if (at_type_scope()) {
      parse_declaration(/*require_type_lead=*/false);
    } else {
      parse_statement();
    }
  }

  void parse_namespace() {
    ++i_;
    while (is_ident(i_) || tok(i_) == "::") ++i_;
    if (tok(i_) == "{") {
      scopes_.push_back({Scope::Kind::kNamespace, ""});
      ++i_;
    } else {
      i_ = skip_to_semi(i_);  // namespace alias / declaration
    }
  }

  void parse_class() {
    ++i_;
    // Skip attributes and annotation-like macros before the name.
    while (i_ < n_) {
      if (tok(i_) == "[[") {
        while (i_ < n_ && tok(i_) != "]]") ++i_;
        ++i_;
      } else if (is_ident(i_) && tok(i_).rfind("LATDIV_", 0) == 0) {
        ++i_;
        if (tok(i_) == "(") i_ = skip_group(i_);
      } else {
        break;
      }
    }
    std::string name;
    if (is_ident(i_)) {
      name = tok(i_);
      ++i_;
    }
    if (tok(i_) == "final") ++i_;
    if (tok(i_) == ";") {  // forward declaration
      ++i_;
      return;
    }
    if (tok(i_) == ":") {  // base clause
      while (i_ < n_ && tok(i_) != "{") {
        if (tok(i_) == "<") {
          i_ = skip_angles(i_);
          continue;
        }
        if (tok(i_) == ";") return;  // malformed
        ++i_;
      }
    }
    if (tok(i_) == "{") {
      if (!name.empty()) m_.classes.push_back(name);
      scopes_.push_back({Scope::Kind::kClass, name});
      ++i_;
      return;
    }
    // `class X y;` style variable of class type — rewind-free fallback.
    i_ = skip_to_semi(i_);
  }

  void parse_enum() {
    ++i_;
    if (tok(i_) == "class" || tok(i_) == "struct") ++i_;
    if (is_ident(i_)) ++i_;
    if (tok(i_) == ":") {  // underlying type
      while (i_ < n_ && tok(i_) != "{" && tok(i_) != ";") ++i_;
    }
    if (tok(i_) == "{") i_ = skip_group(i_);
    if (tok(i_) == ";") ++i_;
  }

  void parse_using() {
    ++i_;
    if (tok(i_) == "namespace") {
      i_ = skip_to_semi(i_);
      return;
    }
    if (is_ident(i_) && tok(i_ + 1) == "=") {
      std::string name = tok(i_);
      std::size_t k = i_ + 2;
      std::string type;
      while (k < n_ && tok(k) != ";") {
        if (!type.empty()) type += ' ';
        type += tok(k);
        ++k;
      }
      m_.aliases[name] = type;
      i_ = (k < n_) ? k + 1 : n_;
      return;
    }
    i_ = skip_to_semi(i_);  // using-declaration (Base::member)
  }

  void parse_typedef() {
    // typedef TYPE NAME;  (name is the last identifier before ';')
    std::size_t start = ++i_;
    std::size_t k = start;
    std::size_t last_ident = n_;
    while (k < n_ && tok(k) != ";") {
      if (tok(k) == "<") {
        k = skip_angles(k);
        continue;
      }
      if (is_ident(k)) last_ident = k;
      ++k;
    }
    if (last_ident != n_ && last_ident > start) {
      std::string type;
      for (std::size_t j = start; j < last_ident; ++j) {
        if (!type.empty()) type += ' ';
        type += tok(j);
      }
      m_.aliases[tok(last_ident)] = type;
    }
    i_ = (k < n_) ? k + 1 : n_;
  }

  void skip_friend() {
    // `friend class X;` or an inline friend function — skip declaration,
    // including a brace body if one is attached.
    while (i_ < n_) {
      const std::string& s = tok(i_);
      if (s == ";") {
        ++i_;
        return;
      }
      if (s == "(") {
        i_ = skip_group(i_);
        continue;
      }
      if (s == "{") {
        i_ = skip_group(i_);
        if (tok(i_) == ";") ++i_;
        return;
      }
      ++i_;
    }
  }

  void skip_destructor() {
    ++i_;  // "~"
    if (is_ident(i_)) ++i_;
    if (tok(i_) == "(") i_ = skip_group(i_);
    // "= default;" / ";" handled by the main loop; a body brace is pushed
    // as a block scope naturally.
    while (i_ < n_ && tok(i_) != ";" && tok(i_) != "{") ++i_;
    if (tok(i_) == ";") ++i_;
  }

  void parse_for() {
    std::size_t kw = i_;
    ++i_;
    if (tok(i_) != "(") return;
    std::size_t open = i_;
    std::size_t close = skip_group(open) - 1;  // index of ")"
    // Classify: range-for has a top-level ":" inside the parens.
    std::size_t colon = n_;
    {
      int pd = 0, ad = 0, bd = 0;
      for (std::size_t k = open + 1; k < close; ++k) {
        const std::string& s = tok(k);
        if (s == "(") ++pd;
        else if (s == ")") --pd;
        else if (s == "[") ++bd;
        else if (s == "]") --bd;
        else if (s == "<") ++ad;
        else if (s == ">") ad = std::max(0, ad - 1);
        else if (s == ";") { colon = n_; break; }  // classic for
        else if (s == ":" && pd == 0 && ad == 0 && bd == 0 &&
                 tok(k + 1) != ":" && tok(k - 1) != ":") {
          colon = k;
          break;
        }
      }
    }
    LoopSite loop;
    loop.file = m_.path;
    loop.line = line(kw);
    if (colon != n_) {
      // Range-for: trailing identifier of the iterated expression.
      std::size_t end = close;  // exclusive
      std::size_t last = end - 1;
      if (tok(last) == ")") {
        // Expression ends in a call: find its open paren, name precedes it.
        int depth = 0;
        std::size_t k = last;
        for (;; --k) {
          if (tok(k) == ")") ++depth;
          else if (tok(k) == "(") {
            if (--depth == 0) break;
          }
          if (k == colon + 1) break;
        }
        if (k > colon + 1 && is_ident(k - 1)) {
          loop.iter_name = tok(k - 1);
          loop.iter_is_call = true;
        }
      } else if (is_ident(last)) {
        loop.iter_name = tok(last);
      }
    } else {
      // Iterator loop: look for X.begin() / X->cbegin() in the init part.
      for (std::size_t k = open + 1; k + 1 < close; ++k) {
        if ((tok(k) == "begin" || tok(k) == "cbegin") &&
            tok(k + 1) == "(" &&
            (tok(k - 1) == "." || tok(k - 1) == "->") && is_ident(k - 2)) {
          loop.iter_name = tok(k - 2);
          break;
        }
      }
    }
    i_ = close + 1;
    if (!loop.iter_name.empty()) {
      loop.body_begin = i_;
      loop.body_end =
          (tok(i_) == "{") ? skip_group(i_) : skip_to_semi(i_);
      m_.loops.push_back(std::move(loop));
    }
    // The body itself is walked by the main loop (nested decls & loops).
  }

  void parse_statement() {
    const std::string& s = tok(i_);
    if (s == "if" || s == "while" || s == "switch") {
      ++i_;
      if (tok(i_) == "(") i_ = skip_group(i_);
      return;  // body brace / statement handled by main loop
    }
    if (s == "do" || s == "else" || s == "try") {
      ++i_;
      return;
    }
    if (s == "return" || s == "case" || s == "goto" || s == "throw" ||
        s == "break" || s == "continue" || s == "default" || s == "delete") {
      i_ = skip_to_semi(i_);
      return;
    }
    if (is_ident(i_) && is_type_lead(s)) {
      parse_declaration(/*require_type_lead=*/true);
      return;
    }
    if (is_ident(i_) &&
        (m_.aliases.count(s) != 0 ||
         std::find(m_.classes.begin(), m_.classes.end(), s) !=
             m_.classes.end())) {
      parse_declaration(/*require_type_lead=*/true);
      return;
    }
    // Expression statement: skip to ';' but stop before '{' / '}' so
    // lambdas and compound statements keep scope tracking intact.
    while (i_ < n_) {
      const std::string& u = tok(i_);
      if (u == ";") {
        ++i_;
        return;
      }
      if (u == "{" || u == "}") return;
      if (u == "(" || u == "[") {
        i_ = skip_group(i_);
        continue;
      }
      ++i_;
    }
  }

  /// Parse one declaration statement at the current position: either a
  /// variable declaration (recorded) or a function declaration/definition
  /// (signature recorded; body left to the main loop).  Falls back to
  /// skipping the statement when the shape is not recognized.
  void parse_declaration(bool require_type_lead) {
    std::size_t start = i_;
    bool is_static = false;
    bool annotated = false;
    bool saw_operator = false;

    std::vector<std::size_t> head;  // indices of type/name tokens
    std::size_t k = i_;
    std::string term;
    while (k < n_) {
      const std::string& s = tok(k);
      if (s == ";" || s == "=" || s == "{" || s == "(") {
        term = s;
        break;
      }
      if (s == "}" || s == ":" || s == "case") {
        // Bit-field, label, or something we do not model: skip statement.
        i_ = skip_to_semi(k);
        if (i_ <= start) i_ = start + 1;
        return;
      }
      if (s == "[[") {
        while (k < n_ && tok(k) != "]]") ++k;
        ++k;
        continue;
      }
      if (s == "static" || s == "thread_local") {
        is_static = true;
        ++k;
        continue;
      }
      if (is_decl_modifier(s)) {
        ++k;
        continue;
      }
      if (is_annotation_macro(s)) {
        annotated = true;
        ++k;
        if (tok(k) == "(") k = skip_group(k);
        continue;
      }
      if (s == "operator") {
        saw_operator = true;
        ++k;
        while (k < n_ && tok(k) != "(") ++k;  // consume the operator symbol
        continue;
      }
      if (s == "<") {
        std::size_t after = skip_angles(k);
        for (std::size_t j = k; j < after; ++j) head.push_back(j);
        k = after;
        continue;
      }
      if (is_ident(k) || s == "::" || s == "*" || s == "&" || s == "&&" ||
          s == "," || s == "[" || s == "]" || s == "." || s == "->") {
        if (s == "." || s == "->") {
          // Member access: expression, not a declaration.
          i_ = skip_to_semi(start);
          if (i_ <= start) i_ = start + 1;
          return;
        }
        if (s == "[") {
          k = skip_group(k);  // array extent
          continue;
        }
        head.push_back(k);
        ++k;
        continue;
      }
      // Unrecognized token in a declaration head: treat as expression.
      i_ = skip_to_semi(start);
      if (i_ <= start) i_ = start + 1;
      return;
    }
    if (k >= n_) {
      i_ = n_;
      return;
    }

    if (term == "(") {
      if (!at_type_scope()) {
        // Inside a function body: `Type name(args);` is a declaration when
        // the identifier before '(' is a declarator (not part of a
        // qualified call chain like `std::sort(`).
        if (head.size() >= 2 && is_ident(head.back()) &&
            tok(head[head.size() - 2]) != "::") {
          record_var(head, head.back(), is_static, annotated);
        }
        i_ = skip_to_semi(k);
        return;
      }
      parse_function(start, head, k, saw_operator);
      return;
    }

    // Variable declaration: last identifier in head is the name.
    std::size_t name_idx = n_;
    for (auto it = head.rbegin(); it != head.rend(); ++it) {
      if (is_ident(*it) && !is_annotation_macro(tok(*it))) {
        name_idx = *it;
        break;
      }
    }
    (void)require_type_lead;
    if (name_idx == n_ || head.size() < 2) {
      i_ = skip_to_semi(k);
      return;
    }
    record_var(head, name_idx, is_static, annotated);
    // Advance past the initializer / to the semicolon.
    if (term == "=" || term == "{") {
      i_ = skip_to_semi(k);
    } else {
      i_ = k + 1;
    }
  }

  /// Record a variable declaration whose head token indices are `head` and
  /// whose declarator name sits at `name_idx`.
  void record_var(const std::vector<std::size_t>& head, std::size_t name_idx,
                  bool is_static, bool annotated) {
    VarDecl v;
    v.name = tok(name_idx);
    v.file = m_.path;
    v.line = line(name_idx);
    v.klass = current_class();
    v.is_member = at_type_scope() && !v.klass.empty();
    v.is_static = is_static;
    v.annotated = annotated;
    bool saw_const = false;
    bool saw_constexpr = false;
    for (std::size_t idx : head) {
      if (idx == name_idx) continue;
      const std::string& s = tok(idx);
      if (!v.type.empty()) v.type += ' ';
      v.type += s;
      if (s == "*") {
        saw_const = false;  // const before '*' binds to the pointee
      } else if (s == "const") {
        saw_const = true;
      } else if (s == "constexpr") {
        saw_constexpr = true;
      }
    }
    v.is_const = saw_constexpr || saw_const;
    if (!v.type.empty()) m_.vars.push_back(std::move(v));
  }

  void parse_function(std::size_t start, const std::vector<std::size_t>& head,
                      std::size_t paren, bool saw_operator) {
    FuncDecl f;
    f.file = m_.path;
    f.line = line(start);
    f.klass = current_class();
    // Name: last identifier of the head; preceding "X ::" chain overrides
    // the scope class (out-of-line definitions).
    std::size_t name_idx = n_;
    for (auto it = head.rbegin(); it != head.rend(); ++it) {
      if (is_ident(*it)) {
        name_idx = *it;
        break;
      }
    }
    if (saw_operator) {
      f.name = "operator";
    } else if (name_idx == n_) {
      i_ = skip_past_function(paren);
      return;
    } else {
      f.name = tok(name_idx);
      // Macro invocations at class/namespace scope (static_assert,
      // ALL_CAPS macros) are not functions; skip without recording.
      bool macro_like = f.name == "static_assert";
      if (!macro_like) {
        macro_like = true;
        for (char c : f.name) {
          if (!(std::isupper(static_cast<unsigned char>(c)) || c == '_' ||
                std::isdigit(static_cast<unsigned char>(c)))) {
            macro_like = false;
            break;
          }
        }
      }
      if (macro_like) {
        i_ = skip_to_semi(paren);
        return;
      }
      // Everything before the (optionally "Class ::"-qualified) name is
      // the return type.
      std::size_t rt_end = name_idx;
      if (name_idx >= 2 && tok(name_idx - 1) == "::" &&
          is_ident(name_idx - 2)) {
        f.klass = tok(name_idx - 2);
        rt_end = name_idx - 2;
      }
      for (std::size_t idx : head) {
        if (idx >= rt_end) break;
        if (!f.return_type.empty()) f.return_type += ' ';
        f.return_type += tok(idx);
      }
    }
    // Parameters.
    std::size_t close = skip_group(paren) - 1;
    std::size_t p = paren + 1;
    while (p < close) {
      std::size_t q = p;
      int ad = 0, pd = 0;
      std::vector<std::size_t> part;
      while (q < close) {
        const std::string& s = tok(q);
        if (s == "<") ++ad;
        else if (s == ">") ad = std::max(0, ad - 1);
        else if (s == "(") ++pd;
        else if (s == ")") --pd;
        else if (s == "," && ad == 0 && pd == 0) break;
        part.push_back(q);
        ++q;
      }
      if (!part.empty()) {
        // Drop a default argument.
        std::vector<std::size_t> sig;
        for (std::size_t idx : part) {
          if (tok(idx) == "=") break;
          sig.push_back(idx);
        }
        Param prm;
        std::size_t pname = n_;
        if (!sig.empty() && is_ident(sig.back())) {
          pname = sig.back();
          prm.name = tok(pname);
        }
        for (std::size_t idx : sig) {
          if (idx == pname) continue;
          if (!prm.type.empty()) prm.type += ' ';
          prm.type += tok(idx);
        }
        if (prm.type.empty() && pname != n_) {
          prm.type = prm.name;  // unnamed parameter: lone token is the type
          prm.name.clear();
        }
        if (!prm.type.empty() && prm.type != "void") {
          // Record the parameter as a typed variable too (loop-name
          // resolution inside the body).
          if (!prm.name.empty()) {
            VarDecl v;
            v.name = prm.name;
            v.type = prm.type;
            v.file = m_.path;
            v.line = line(sig.front());
            m_.vars.push_back(std::move(v));
          }
          f.params.push_back(std::move(prm));
        }
      }
      p = q + 1;
    }
    m_.funcs.push_back(std::move(f));
    i_ = skip_past_function(paren);
  }

  /// Advance past a function's qualifiers / ctor-init-list up to (but not
  /// into) its body brace, or past the ';' of a pure declaration.
  std::size_t skip_past_function(std::size_t paren) {
    std::size_t k = skip_group(paren);  // past ")"
    bool in_init_list = false;
    bool prev_ident = false;
    while (k < n_) {
      const std::string& s = tok(k);
      if (s == ";") return k + 1;
      if (s == ":") in_init_list = true;
      if (s == "{") {
        // In a ctor-init-list, `member{...}` brace-inits are groups; the
        // body brace follows ")" or "}" instead of an identifier.
        if (in_init_list && prev_ident) {
          k = skip_group(k);
          prev_ident = false;
          continue;
        }
        return k;  // body: main loop pushes a block scope
      }
      if (s == "(") {  // ctor-init-list member initializer / noexcept(...)
        k = skip_group(k);
        prev_ident = false;
        continue;
      }
      if (s == "<") {
        k = skip_angles(k);
        prev_ident = false;
        continue;
      }
      prev_ident = is_ident(k);
      ++k;
    }
    return n_;
  }
};

}  // namespace

void parse(FileModel& m) { Parser(m).run(); }

}  // namespace latdiv::lint
