// latdiv-lint — data model shared by the lexer, parser, and rules.
//
// The analyzer is deliberately *lightweight*: it lexes real C++ tokens and
// recovers just enough structure (scopes, class members, function
// signatures, loops, type aliases) to make the determinism / observer-purity
// / shard-safety rules scope- and type-aware, without a full C++ frontend.
// Everything it knows about a translation unit lives in a FileModel; the
// rules run over the pooled models of every analyzed file, so a member
// declared in one header is recognized when iterated in any .cpp.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace latdiv::lint {

struct Token {
  enum class Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

/// One comment, attributed to the line it starts on (block comments too).
struct Comment {
  int line = 0;
  std::string text;
};

/// A `// lint: <directive>` suppression.  `rule` is the canonical rule id
/// the directive maps to ("" for directives that name no known rule).
struct Suppression {
  int line = 0;
  std::string directive;  ///< as written, e.g. "wall-clock-ok"
  std::string rule;       ///< canonical id, e.g. "wall-clock"
  bool used = false;
};

/// A variable declaration the parser recovered: class member, static,
/// namespace-scope global, function parameter, or (type-led) local.
struct VarDecl {
  std::string name;
  std::string type;    ///< space-joined type tokens, aliases pre-expansion
  std::string klass;   ///< enclosing class ("" at namespace/function scope)
  std::string file;
  int line = 0;
  bool is_static = false;  ///< `static` or `thread_local` storage
  bool is_const = false;   ///< the variable itself is immutable
  bool is_member = false;  ///< declared at class scope
  bool annotated = false;  ///< carries LATDIV_GUARDED_BY / LATDIV_SHARD_LOCAL
};

struct Param {
  std::string type;
  std::string name;
};

/// A function declaration or definition (member or free).
struct FuncDecl {
  std::string name;
  std::string klass;  ///< enclosing class, or qualifier of out-of-line def
  std::string file;
  int line = 0;
  std::string return_type;
  std::vector<Param> params;
};

/// A `for` loop: range-for (`for (x : expr)`) or an iterator loop whose
/// init calls `.begin()` / `.cbegin()`.  `iter_name` is the trailing
/// identifier of the iterated expression — a variable name, or a function
/// name when the expression ends in a call (accessor iteration).
struct LoopSite {
  std::string file;
  int line = 0;
  std::string iter_name;
  bool iter_is_call = false;
  std::size_t body_begin = 0;  ///< token index range of the loop body
  std::size_t body_end = 0;    ///< exclusive
};

struct FileModel {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Suppression> sups;
  std::vector<VarDecl> vars;
  std::vector<FuncDecl> funcs;
  std::vector<LoopSite> loops;
  std::vector<std::string> classes;            ///< classes defined here
  std::map<std::string, std::string> aliases;  ///< using/typedef name -> type
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

}  // namespace latdiv::lint
